package unikraft

// SDK-level tests for the warm-pool serving layer: Runtime.NewPool over
// real specs, spec validation at pool construction, and concurrent
// Serve through the public API (exercised under -race in CI).

import (
	"sync"
	"testing"
	"time"
)

func TestRuntimeNewPoolServes(t *testing.T) {
	rt := NewRuntime()
	pool, err := rt.NewPool(
		NewSpec("helloworld", WithVMM("firecracker"), WithMemory(8<<20)),
		WithPoolWarm(4), WithPoolMaxInstances(64))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const n = 100_000
	rep, err := pool.Serve(PoissonWorkload(1, 150_000, n, 256))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != n {
		t.Fatalf("served %d, want %d", rep.Requests, n)
	}
	if hit := rep.WarmHitRatio(); hit < 0.9 {
		t.Errorf("warm-hit ratio %.3f, want > 0.9", hit)
	}
	// The helloworld firecracker boot lands in the paper's calibrated
	// range: past the 2.4ms VMM floor, well under qemu's ~40ms.
	if p50 := rep.Boot.Quantile(0.5); p50 < 2400*time.Microsecond || p50 > 10*time.Millisecond {
		t.Errorf("boot p50 = %v, want firecracker regime", p50)
	}
	if rep.Latency.Quantile(0.5) >= rep.Boot.Quantile(0.5) {
		t.Error("median latency not warm")
	}
}

func TestNewPoolValidatesSpec(t *testing.T) {
	rt := NewRuntime()
	if _, err := rt.NewPool(NewSpec("notepad")); err == nil {
		t.Error("NewPool accepted unknown app")
	}
	if _, err := rt.NewPool(NewSpec("nginx", WithVMM("vmware"))); err == nil {
		t.Error("NewPool accepted unknown VMM")
	}
	if _, err := rt.NewPool(NewSpec("nginx", WithStackBytes(-1))); err == nil {
		t.Error("NewPool accepted negative stack")
	}
}

func TestPoolConcurrentServe(t *testing.T) {
	rt := NewRuntime()
	pool, err := rt.NewPool(NewSpec("helloworld", WithVMM("firecracker"), WithMemory(8<<20)),
		WithPoolWarm(2))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := pool.Serve(PoissonWorkload(uint64(i), 50_000, 2_000, 128))
			if err != nil {
				errs[i] = err
				return
			}
			if rep.Requests != 2_000 {
				t.Errorf("stream %d served %d", i, rep.Requests)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("stream %d: %v", i, err)
		}
	}
}

func TestBurstyPoolAutoscales(t *testing.T) {
	rt := NewRuntime()
	pool, err := rt.NewPool(NewSpec("helloworld", WithVMM("firecracker"), WithMemory(8<<20)),
		WithPoolWarm(2), WithPoolMaxInstances(128), WithPoolColdBurst(4),
		WithPoolServiceCost(4, 170_000), WithPoolScaleWindow(10*time.Millisecond),
		WithPoolTargetP99(time.Millisecond), WithPoolHeadroom(2))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	rep, err := pool.Serve(BurstyWorkload(9, 20_000, 200_000, 200*time.Millisecond, 0.4, 50_000, 128))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ColdBoots == 0 {
		t.Error("bursty load never cold-booted")
	}
	if rep.ScaleUps == 0 && rep.ScaleDowns == 0 {
		t.Errorf("autoscaler never acted: %v", rep)
	}
	if rep.PeakInstances <= 2 {
		t.Error("fleet never grew")
	}
}
