package unikraft

import "fmt"

// Spec is the declarative description of one unikernel: which
// application to specialize, for which platform and monitor, with which
// micro-library choices and build flags — the programmatic analog of a
// kraftfile plus its Kconfig selections. The zero value of every field
// means "use the application profile's default"; a Spec is a plain value
// and can be copied, extended with With, and validated up front with
// Runtime.Validate before any build work happens.
type Spec struct {
	// App names a registered application profile ("nginx", "redis", ...;
	// see Apps and RegisterApp).
	App string

	// Platform targets "kvm", "xen", "solo5" or "linuxu" (default kvm).
	Platform string

	// VMM selects the monitor: "qemu" (default), "qemu-microvm",
	// "firecracker", "solo5-hvt", "xl", or "none" for linuxu. Setting a
	// VMM implies its platform; setting both is validated for agreement.
	VMM string

	// Allocator overrides the profile's ukalloc backend. Both backend
	// names ("tlsf") and catalog provider names ("ukalloctlsf") are
	// accepted.
	Allocator string

	// MemBytes is total guest memory (default 64 MiB).
	MemBytes int

	// StackBytes is the boot stack size (default 64 KiB).
	StackBytes int

	// DCE enables dead code elimination (--gc-sections); LTO enables
	// link-time optimization — the two Fig 8 switches.
	DCE, LTO bool

	// DynamicPageTable selects §6.1's dynamic paging (default static).
	DynamicPageTable bool

	// Mount9pfs adds the virtio-9p mount step (§5.2 boot cost).
	Mount9pfs bool

	// RootFS mounts a populated root filesystem at boot: "ramfs" (the
	// general vfscore path), "shfs" (the specialized MiniCache volume of
	// §6.3, bypassing vfscore) or "9pfs" (a shared host export over
	// virtio-9p). Empty means no filesystem state — the calibrated
	// baseline. Booted VMs expose the result as VM.VFS / VM.SHFS.
	RootFS string

	// Files populates the root filesystem (absolute path -> content);
	// setting it without RootFS implies "ramfs". Snapshot-forked clones
	// share the populated tree copy-on-write.
	Files map[string][]byte

	// PageCachePages bounds the instance's VFS page cache in 4 KiB
	// pages (0 disables). The cache backs the zero-copy Sendfile path;
	// it requires a vfscore-backed RootFS ("ramfs" or "9pfs").
	PageCachePages int

	// ZeroCopy enables the zero-copy data path (§3.1): socket layers
	// hand buffers through by reference instead of copying, so the
	// per-request cost model drops its per-byte copy charges. Off by
	// default — the copying path is the calibrated baseline.
	ZeroCopy bool

	// TxKickBatch coalesces guest→host virtqueue kicks: one
	// VM-exit-class notification per batch of N frames (0 or 1 means
	// kick per burst, the paper's default driver behaviour).
	TxKickBatch int

	// RxIRQBatch moderates host→guest interrupts: an armed RX queue
	// fires only once N frames are pending (0 or 1 fires on the first
	// frame).
	RxIRQBatch int

	// SnapshotBoot instantiates instances by snapshot-fork: the runtime
	// boots one template per spec, captures its post-init state, and
	// clones arrive copy-on-write — charging only the monitor's restore
	// cost plus private-page faults instead of the full boot pipeline
	// (Runtime.Boot, Runtime.Run and pool cold boots all fork). Off by
	// default: the full pipeline is the calibrated Fig 10/14 baseline.
	SnapshotBoot bool

	// InitStages charges independent boot constructors in topologically
	// sorted parallel stages (max per stage instead of sum), keeping
	// the allocator→scheduler→NIC ordering invariants. Off by default.
	InitStages bool

	// VCPUs is the guest vCPU count (0 or 1 = the calibrated
	// single-core image). SMP guests boot one netstack/allocator shard
	// and one scheduler run queue per core; boot charges AP bringup per
	// extra core. Capped at 32.
	VCPUs int

	// NetQueues is the RX/TX queue-pair count per NIC (0 or 1 = single
	// queue). Multi-queue devices steer flows to queues by RSS hash of
	// the 4-tuple, one queue per polling vCPU; boot charges monitor and
	// guest per-queue setup. Capped at the virtio-net maximum of 8.
	NetQueues int

	// Affinity selects the front door's balancing policy when the spec
	// serves through Runtime.NewCluster: "least-loaded" (default),
	// "round-robin", or "hash" for consistent-hash session affinity
	// (requests with the same Request.Key keep hitting the same host).
	// Single-host serving ignores it.
	Affinity string

	// Placement biases the cluster autoscaler: "spread" (default)
	// spills to standby hosts eagerly at moderate backlog, "pack"
	// tolerates several times more backlog per core before paying for
	// another host. Single-host serving ignores it.
	Placement string

	// ExtraLibs lists additional micro-libraries whose constructors run
	// at boot, beyond the ones the profile implies.
	ExtraLibs []string

	// badProfiles records unknown names passed to Profile; validation
	// reports them instead of silently booting an untuned spec.
	badProfiles []string
}

// Option mutates a Spec; NewSpec and Spec.With apply options in order,
// so later options win.
type Option func(*Spec)

// NewSpec builds a Spec for a registered application with the given
// options applied.
func NewSpec(app string, opts ...Option) Spec {
	s := Spec{App: app}
	return s.With(opts...)
}

// With returns a copy of s with more options applied — specs compose:
//
//	base := unikraft.NewSpec("nginx", unikraft.WithDCE(), unikraft.WithLTO())
//	fast := base.With(unikraft.WithAllocator("mimalloc"))
func (s Spec) With(opts ...Option) Spec {
	if len(s.ExtraLibs) > 0 {
		s.ExtraLibs = append([]string(nil), s.ExtraLibs...)
	}
	if len(s.badProfiles) > 0 {
		s.badProfiles = append([]string(nil), s.badProfiles...)
	}
	if len(s.Files) > 0 {
		files := make(map[string][]byte, len(s.Files))
		for p, data := range s.Files {
			files[p] = data
		}
		s.Files = files
	}
	for _, opt := range opts {
		opt(&s)
	}
	return s
}

// String renders the spec compactly for logs and errors.
func (s Spec) String() string {
	out := "spec(" + s.App
	if s.Platform != "" {
		out += " plat=" + s.Platform
	}
	if s.VMM != "" {
		out += " vmm=" + s.VMM
	}
	if s.Allocator != "" {
		out += " alloc=" + s.Allocator
	}
	if s.MemBytes != 0 {
		out += fmt.Sprintf(" mem=%dMiB", s.MemBytes>>20)
	}
	if s.StackBytes != 0 {
		out += fmt.Sprintf(" stack=%dKiB", s.StackBytes>>10)
	}
	if s.DCE {
		out += " +dce"
	}
	if s.LTO {
		out += " +lto"
	}
	if s.DynamicPageTable {
		out += " +dynpt"
	}
	if s.Mount9pfs {
		out += " +9pfs"
	}
	if s.RootFS != "" {
		out += " rootfs=" + s.RootFS
	}
	if len(s.Files) > 0 {
		out += fmt.Sprintf(" files=%d", len(s.Files))
	}
	if s.PageCachePages > 0 {
		out += fmt.Sprintf(" pcache=%d", s.PageCachePages)
	}
	if s.ZeroCopy {
		out += " +zc"
	}
	if s.TxKickBatch > 1 {
		out += fmt.Sprintf(" kick=%d", s.TxKickBatch)
	}
	if s.RxIRQBatch > 1 {
		out += fmt.Sprintf(" irq=%d", s.RxIRQBatch)
	}
	if s.SnapshotBoot {
		out += " +snap"
	}
	if s.InitStages {
		out += " +stages"
	}
	if s.VCPUs > 1 {
		out += fmt.Sprintf(" vcpus=%d", s.VCPUs)
	}
	if s.NetQueues > 1 {
		out += fmt.Sprintf(" queues=%d", s.NetQueues)
	}
	if s.Affinity != "" {
		out += " aff=" + s.Affinity
	}
	if s.Placement != "" {
		out += " place=" + s.Placement
	}
	if len(s.ExtraLibs) > 0 {
		out += fmt.Sprintf(" libs=%v", s.ExtraLibs)
	}
	return out + ")"
}

// WithPlatform targets a platform ("kvm", "xen", "solo5", "linuxu").
func WithPlatform(platform string) Option {
	return func(s *Spec) { s.Platform = platform }
}

// WithVMM selects the monitor ("qemu", "qemu-microvm", "firecracker",
// "solo5-hvt", "xl", "none").
func WithVMM(vmm string) Option {
	return func(s *Spec) { s.VMM = vmm }
}

// WithAllocator overrides the ukalloc backend ("tlsf", "buddy",
// "tinyalloc", "mimalloc", "bootalloc", or a catalog provider name).
func WithAllocator(name string) Option {
	return func(s *Spec) { s.Allocator = name }
}

// WithMemory sets total guest memory in bytes.
func WithMemory(bytes int) Option {
	return func(s *Spec) { s.MemBytes = bytes }
}

// WithStackBytes sets the boot stack size in bytes.
func WithStackBytes(bytes int) Option {
	return func(s *Spec) { s.StackBytes = bytes }
}

// WithDCE enables dead code elimination.
func WithDCE() Option {
	return func(s *Spec) { s.DCE = true }
}

// WithLTO enables link-time optimization.
func WithLTO() Option {
	return func(s *Spec) { s.LTO = true }
}

// WithBuildFlags sets both Fig 8 link switches at once.
func WithBuildFlags(dce, lto bool) Option {
	return func(s *Spec) { s.DCE, s.LTO = dce, lto }
}

// WithDynamicPageTable selects §6.1's dynamic paging strategy.
func WithDynamicPageTable() Option {
	return func(s *Spec) { s.DynamicPageTable = true }
}

// With9pfs adds the virtio-9p mount step to the boot pipeline.
func With9pfs() Option {
	return func(s *Spec) { s.Mount9pfs = true }
}

// WithRootFS mounts a root filesystem at boot: "ramfs", "shfs" or
// "9pfs". Pick ramfs for the general standard path, shfs for the
// specialized ~300-cycle open path (Fig 22), 9pfs for a shared host
// export.
func WithRootFS(name string) Option {
	return func(s *Spec) { s.RootFS = name }
}

// WithFiles populates the root filesystem (absolute path -> content),
// defaulting RootFS to "ramfs" when none is selected. The map is copied
// so later mutation by the caller cannot leak into the spec.
func WithFiles(files map[string][]byte) Option {
	return func(s *Spec) {
		if s.Files == nil {
			s.Files = make(map[string][]byte, len(files))
		}
		for p, data := range files {
			s.Files[p] = data
		}
	}
}

// WithFile adds one file to the root filesystem (see WithFiles).
func WithFile(path string, data []byte) Option {
	return func(s *Spec) {
		if s.Files == nil {
			s.Files = map[string][]byte{}
		}
		s.Files[path] = data
	}
}

// WithPageCache bounds the instance's VFS page cache (4 KiB pages) —
// the store behind the zero-copy Sendfile path.
func WithPageCache(pages int) Option {
	return func(s *Spec) { s.PageCachePages = pages }
}

// WithZeroCopy enables the zero-copy data path: buffer handoff by
// reference through the socket layers and driver, no per-byte copy
// charges.
func WithZeroCopy() Option {
	return func(s *Spec) { s.ZeroCopy = true }
}

// WithTxBatch coalesces TX virtqueue kicks to one per n frames (n <= 1
// restores kick-per-burst).
func WithTxBatch(n int) Option {
	return func(s *Spec) { s.TxKickBatch = n }
}

// WithIRQCoalesce moderates RX interrupts to one per n pending frames
// (n <= 1 restores interrupt-per-arrival).
func WithIRQCoalesce(n int) Option {
	return func(s *Spec) { s.RxIRQBatch = n }
}

// WithSnapshotBoot enables snapshot-fork instantiation: one template
// boot per spec, then copy-on-write clones that skip the lib-init
// chain. Cold instantiation drops well below the Fig 10 boot times;
// clones are observationally identical to fresh boots.
func WithSnapshotBoot() Option {
	return func(s *Spec) { s.SnapshotBoot = true }
}

// WithInitStages enables the staged init-table scheduler: independent
// boot constructors charge max instead of sum, honoring the
// allocator→scheduler→NIC ordering constraints.
func WithInitStages() Option {
	return func(s *Spec) { s.InitStages = true }
}

// SMP sizing limits, enforced by Runtime.Validate.
const (
	// MaxVCPUs caps WithVCPUs: the largest guest the boot model's AP
	// bringup calibration covers.
	MaxVCPUs = 32
	// MaxNetQueues caps WithNetQueues at the virtio-net device maximum
	// of 8 RX/TX queue pairs.
	MaxNetQueues = 8
)

// WithVCPUs sets the guest vCPU count (n <= 1 keeps the calibrated
// single-core image). An SMP guest pairs naturally with WithNetQueues(n)
// so each core polls its own device queue; ProfileSMP sets both.
func WithVCPUs(n int) Option {
	return func(s *Spec) { s.VCPUs = n }
}

// WithNetQueues sets the RX/TX queue-pair count per NIC (n <= 1 keeps
// the single-queue device). Incoming flows spread across queues by a
// deterministic RSS hash of the connection 4-tuple.
func WithNetQueues(n int) Option {
	return func(s *Spec) { s.NetQueues = n }
}

// WithAffinity selects the cluster front door's balancing policy
// ("least-loaded", "round-robin", "hash") for Runtime.NewCluster.
func WithAffinity(policy string) Option {
	return func(s *Spec) { s.Affinity = policy }
}

// WithPlacement biases the cluster autoscaler ("spread" or "pack") for
// Runtime.NewCluster.
func WithPlacement(strategy string) Option {
	return func(s *Spec) { s.Placement = strategy }
}

// WithExtraLibs appends micro-libraries to initialize at boot.
func WithExtraLibs(libs ...string) Option {
	return func(s *Spec) { s.ExtraLibs = append(s.ExtraLibs, libs...) }
}
