package unikraft

import (
	"time"

	"unikraft/internal/ukboot"
	"unikraft/internal/ukbuild"
	"unikraft/internal/ukcluster"
	"unikraft/internal/ukfault"
	"unikraft/internal/ukpool"
)

// Cluster is the multi-host serving layer: N simulated hosts, each
// running its own warm pool of one Spec, behind a front-door router
// with autoscaling and snapshot-image handoff — see Runtime.NewCluster.
type Cluster = ukcluster.Cluster

// ClusterReport is the outcome of one Cluster.Serve run: the merged
// pool report (end-to-end latencies), control-plane counters
// (activations, handoffs, drains, requeues) and a per-host breakdown.
type ClusterReport = ukcluster.Report

// ClusterHostReport is one host's share of a cluster serve.
type ClusterHostReport = ukcluster.HostReport

// ClusterOption tunes a Cluster at construction.
type ClusterOption func(*clusterSettings)

type clusterSettings struct {
	hosts, cores, active, minActive int
	link                            ukcluster.Link
	noHandoff                       bool
	poolOpts                        []PoolOption

	faults       *ukfault.Plan
	retryLimit   int
	retryBackoff time.Duration
	retryBudget  int
	shedWater    float64

	deadline    time.Duration
	admitTarget time.Duration
	retryRatio  float64
	retryBurst  float64
}

// WithHosts sets the total host count, standby included (default 1).
func WithHosts(n int) ClusterOption {
	return func(c *clusterSettings) { c.hosts = n }
}

// WithCoresPerHost sets each host's serving parallelism: its sub-trace
// runs over n deterministic event-loop shards (default 1).
func WithCoresPerHost(n int) ClusterOption {
	return func(c *clusterSettings) { c.cores = n }
}

// WithActiveHosts sets how many hosts serve from the start; the rest
// are standby, activated when load spills (default: all of them).
func WithActiveHosts(n int) ClusterOption {
	return func(c *clusterSettings) { c.active = n }
}

// WithMinActiveHosts sets the scale-down floor (default 1). Host 0 —
// the template holder — is never drained regardless.
func WithMinActiveHosts(n int) ClusterOption {
	return func(c *clusterSettings) { c.minActive = n }
}

// WithClusterLink prices the network between the front door and the
// hosts (default: 10 GbE, 40µs RTT). The same link carries snapshot
// images during handoff.
func WithClusterLink(bytesPerSec int64, rtt time.Duration) ClusterOption {
	return func(c *clusterSettings) {
		c.link = ukcluster.Link{BytesPerSec: bytesPerSec, RTT: rtt}
	}
}

// WithoutHandoff disables snapshot-image handoff: standby hosts then
// activate by minting their template through the full boot pipeline
// remotely (the scale-out price handoff exists to avoid).
func WithoutHandoff() ClusterOption {
	return func(c *clusterSettings) { c.noHandoff = true }
}

// WithHostPoolOptions passes pool options (WithPoolWarm,
// WithPoolMaxInstances, ...) through to every host's pool.
func WithHostPoolOptions(opts ...PoolOption) ClusterOption {
	return func(c *clusterSettings) { c.poolOpts = append(c.poolOpts, opts...) }
}

// DiurnalWorkload is the cluster-scale trace shape: a Poisson process
// whose rate swings sinusoidally between baseRate and peakRate per
// period, spiking to flashRate inside [flashAt, flashAt+flashDur) — a
// flash crowd — with session keys drawn from a population of sessions
// (0 leaves requests anonymous; keys drive "hash" affinity).
func DiurnalWorkload(seed uint64, baseRate, peakRate float64, period time.Duration,
	flashAt, flashDur time.Duration, flashRate float64, sessions, n, bytes int) Workload {
	return ukpool.NewDiurnal(seed, baseRate, peakRate, period, flashAt, flashDur, flashRate, sessions, n, bytes)
}

// NewCluster builds a multi-host serving cluster for the spec. Each
// host gets its own pool — constructed exactly like Runtime.NewPool,
// with host-distinct deterministic instance seeds — and the front door
// balances per the spec's Affinity policy, autoscales the host set per
// its Placement bias, and (for SnapshotBoot specs) activates standby
// hosts by shipping the template snapshot image over the cluster link
// instead of re-minting it remotely.
//
//	spec := unikraft.NewSpec("nginx", unikraft.WithVMM("firecracker"),
//	    unikraft.WithSnapshotBoot(), unikraft.WithAffinity("least-loaded"))
//	c, err := rt.NewCluster(spec, unikraft.WithHosts(8), unikraft.WithActiveHosts(2))
//	report, err := c.Serve(unikraft.DiurnalWorkload(...))
//
// A cluster of one single-core host bypasses the front door entirely
// and reports byte-identically to NewPool(spec).Serve — clustering
// costs nothing until there is something to cluster.
func (rt *Runtime) NewCluster(s Spec, opts ...ClusterOption) (*Cluster, error) {
	r, err := rt.resolve(s)
	if err != nil {
		return nil, err
	}
	var set clusterSettings
	for _, opt := range opts {
		opt(&set)
	}
	// An SMP spec defaults each host's serving parallelism to its vCPU
	// count; WithCoresPerHost still overrides.
	if set.cores == 0 && s.VCPUs > 1 {
		set.cores = s.VCPUs
	}
	policy, err := ukcluster.PolicyByName(s.Affinity)
	if err != nil {
		return nil, err
	}

	cfg := ukcluster.Config{
		Hosts: set.hosts, Cores: set.cores,
		InitialActive: set.active, MinActive: set.minActive,
		Policy: policy,
		Link:   set.link,
		NewPool: func(host int) (*ukpool.Pool, error) {
			// SplitMix64's increment constant, squared odd — any fixed
			// odd multiplier keeps host salts distinct; salt 0 keeps
			// host 0 identical to a standalone NewPool.
			opts := set.poolOpts[:len(set.poolOpts):len(set.poolOpts)]
			if set.faults != nil && set.faults.VM.Hazard > 0 {
				// Host-distinct hazard sub-seed: crash draws stay
				// independent across hosts but fixed for a plan seed.
				opts = append(opts,
					ukpool.WithCrashHazard(set.faults.VM.Hazard,
						ukfault.Mix(set.faults.Seed, uint64(host))))
			}
			if sl, ok := set.faults.SlowOf(host); ok {
				// The plan's slow-host window runs in the same absolute
				// virtual time the forwarded arrivals carry, so the pool
				// stretches exactly the services the router models as
				// inflated backlog.
				opts = append(opts, ukpool.WithSlowdown(sl.From, sl.To, sl.Factor))
			}
			return rt.newPoolSalted(s, uint64(host)*0xA24BAED4963EE407, opts...)
		},
		Faults:             set.faults,
		RetryLimit:         set.retryLimit,
		RetryBackoff:       set.retryBackoff,
		RetryBudget:        set.retryBudget,
		ShedWater:          set.shedWater,
		DefaultDeadline:    set.deadline,
		AdmitTarget:        set.admitTarget,
		RetryThrottleRatio: set.retryRatio,
		RetryThrottleBurst: set.retryBurst,
	}
	if set.faults != nil {
		// Domain-separate admission draws per plan; a planless cluster
		// keeps seed 0 (the draws are keyed on request identity anyway).
		cfg.AdmitSeed = set.faults.Seed
	}
	if s.Placement == "pack" {
		cfg.HighWater = 32
		cfg.SpillAfter = 4
	}

	// Price standby activation off the spec's real boot economics: the
	// template snapshot's size and mint time, measured once here.
	if set.hosts > 1 {
		img, err := ukbuild.Build(rt.Catalog(), r.profile, r.platform.Name, r.build)
		if err != nil {
			return nil, err
		}
		bootCfg := rt.bootConfig(r, s, img.Bytes)
		if s.SnapshotBoot && !set.noHandoff {
			e, err := rt.snapshotFor(bootCfg)
			if err != nil {
				return nil, err
			}
			// The receiving host already holds the kernel image (the
			// registry distributes those); the handoff ships only the
			// template's post-boot delta: the privatized page-table
			// pages, the heap allocator's write-set, and a descriptor
			// per COW-marked page so the receiver can rebuild the
			// share map — a diff snapshot, not a memory dump.
			const pageDescBytes = 16
			cfg.Activation = ukcluster.Activation{
				Handoff: true,
				ImageBytes: e.snap.PrivateOverheadBytes() + e.snap.HeapMetaBytes() +
					e.snap.MarkedPages()*pageDescBytes,
				ColdBoot: e.snap.Template().Report.Total(),
				Attach:   r.platform.ForkSetup + time.Duration(r.profile.NICs)*r.platform.ForkNICSetup,
			}
		} else {
			// No template to ship: a spill boots the image remotely
			// through the whole pipeline. Measure one probe boot.
			ctx, err := ukboot.NewContext(bootCfg)
			if err != nil {
				return nil, err
			}
			vm, err := ctx.Boot(rt.newMachine())
			if err != nil {
				return nil, err
			}
			cfg.Activation = ukcluster.Activation{ColdBoot: vm.Report.Total()}
			vm.Close()
		}
	}
	return ukcluster.New(cfg)
}
