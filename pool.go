package unikraft

import (
	"hash/fnv"
	"time"

	"unikraft/internal/sim"
	"unikraft/internal/ukboot"
	"unikraft/internal/ukbuild"
	"unikraft/internal/ukpool"
)

// Pool is the warm-pool serving layer: a fleet of pre-booted instances
// of one Spec that serves request streams, cold-booting on demand and
// autoscaling the warm set — see Runtime.NewPool.
type Pool = ukpool.Pool

// PoolOption tunes a Pool at construction (WithPoolWarm,
// WithPoolMaxInstances, WithPoolServiceCost, ...).
type PoolOption = ukpool.Option

// ServeReport is the outcome of one Pool.Serve run: throughput,
// warm/cold routing counts, autoscaler activity, and boot-time and
// request-latency histograms.
type ServeReport = ukpool.Report

// ServeHistogram is the log-bucketed latency histogram inside a
// ServeReport.
type ServeHistogram = ukpool.Histogram

// Workload is a stream of requests for Pool.Serve, in arrival order.
type Workload = ukpool.Workload

// Request is one unit of offered load.
type Request = ukpool.Request

// NewPool builds a serving pool for the spec: the image is linked once,
// the boot pipeline is pre-validated into a reusable ukboot.Context,
// and every instance then boots from that context on its own simulated
// machine (seeded deterministically per instance, derived from the
// spec). No instances boot until Serve or Prewarm.
//
//	rt := unikraft.NewRuntime()
//	pool, err := rt.NewPool(unikraft.NewSpec("nginx", unikraft.WithVMM("firecracker")),
//	    unikraft.WithPoolWarm(16))
//	report, err := pool.Serve(unikraft.PoissonWorkload(1, 200_000, 1_000_000, 256))
//	fmt.Println(report)
func (rt *Runtime) NewPool(s Spec, opts ...PoolOption) (*Pool, error) {
	return rt.newPoolSalted(s, 0, opts...)
}

// newPoolSalted is NewPool with a seed salt mixed into the per-instance
// machine seeds. Zero salt is NewPool exactly; the cluster layer gives
// each host a distinct salt so host fleets stay deterministic yet
// independent, while host 0 (salt 0) remains byte-identical to a
// standalone pool of the same spec.
func (rt *Runtime) newPoolSalted(s Spec, salt uint64, opts ...PoolOption) (*Pool, error) {
	r, err := rt.resolve(s)
	if err != nil {
		return nil, err
	}
	img, err := ukbuild.Build(rt.Catalog(), r.profile, r.platform.Name, r.build)
	if err != nil {
		return nil, err
	}
	ctx, err := ukboot.NewContext(rt.bootConfig(r, s, img.Bytes))
	if err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write([]byte(s.String()))
	seed := h.Sum64() + salt
	machine := func(id int) *sim.Machine {
		// SplitMix64 increment keeps per-instance seeds well spread.
		return sim.NewMachineWithSeed(seed + uint64(id)*0x9E3779B97F4A7C15)
	}
	boot := func(id int) (*ukboot.VM, error) {
		return ctx.Boot(machine(id))
	}
	// The spec's data-path options feed the pool's per-request cost
	// model; caller options come after so they can still override.
	var specOpts []PoolOption
	if s.ZeroCopy {
		specOpts = append(specOpts, ukpool.WithZeroCopy())
	}
	if s.TxKickBatch > 1 {
		specOpts = append(specOpts, ukpool.WithKickBatch(s.TxKickBatch))
	}
	if s.SnapshotBoot {
		// The pool owns its boot template: one full-pipeline boot at
		// construction, snapshot-fork clones from then on (warm floor,
		// demand cold boots and scale-ups alike), released on Close.
		snap, err := ctx.Snapshot(sim.NewMachineWithSeed(seed))
		if err != nil {
			return nil, err
		}
		specOpts = append(specOpts,
			ukpool.WithForkBoot(func(id int) (*ukboot.VM, error) {
				return ctx.Fork(machine(id), snap)
			}),
			ukpool.WithOnClose(snap.Close))
	}
	return ukpool.New(boot, append(specOpts, opts...)...), nil
}

// PoissonWorkload is an open-loop Poisson arrival process: n requests
// of size bytes at rate requests/second, derived from seed.
func PoissonWorkload(seed uint64, rate float64, n, bytes int) Workload {
	return ukpool.NewPoisson(seed, rate, n, bytes)
}

// BurstyWorkload is an on/off modulated Poisson process: within each
// period the first duty fraction runs at burstRate, the rest at
// baseRate — the trace shape that exercises cold boots and the
// autoscaler.
func BurstyWorkload(seed uint64, baseRate, burstRate float64, period time.Duration, duty float64, n, bytes int) Workload {
	return ukpool.NewBursty(seed, baseRate, burstRate, period, duty, n, bytes)
}

// TraceWorkload replays a fixed request slice (sorted by arrival).
func TraceWorkload(reqs []Request) Workload { return ukpool.NewTrace(reqs) }

// OverloadOption shapes an OverloadWorkload (WithPriorityMix,
// WithWorkloadDeadlines, WithWorkloadSessions, WithSurge).
type OverloadOption func(*ukpool.Overload)

// WithPriorityMix sets the interactive share of an overload trace in
// [0, 1]; the remainder is batch-class traffic, which staged admission
// control sacrifices first (default 1: all interactive).
func WithPriorityMix(interactiveShare float64) OverloadOption {
	return func(o *ukpool.Overload) { o.Mix(interactiveShare) }
}

// WithWorkloadDeadlines stamps per-class relative deadlines on an
// overload trace: each request's absolute deadline is its arrival plus
// its class's allowance (0 leaves that class deadline-free).
func WithWorkloadDeadlines(interactive, batch time.Duration) OverloadOption {
	return func(o *ukpool.Overload) { o.Deadlines(interactive, batch) }
}

// WithWorkloadSessions draws request keys from a population of n
// sessions (for hash affinity); <= 0 leaves requests anonymous.
func WithWorkloadSessions(n int) OverloadOption {
	return func(o *ukpool.Overload) { o.Sessions(n) }
}

// WithSurge multiplies the overload trace's arrival rate by factor
// inside [at, at+dur) — a flash-crowd spike on top of the sustained
// overload.
func WithSurge(at, dur time.Duration, factor float64) OverloadOption {
	return func(o *ukpool.Overload) { o.Surge(at, dur, factor) }
}

// OverloadWorkload is the open-loop overload trace: n requests of size
// bytes arriving Poisson at a fixed rate — typically a multiple of
// serving capacity — with no client backpressure, the regime where
// uncontrolled FIFO queues collapse. Options attach a priority mix,
// per-class deadlines, session keys and a surge window; the deadlines
// ride each request end to end, from generation through the front door
// into the pool queue.
func OverloadWorkload(seed uint64, rate float64, n, bytes int, opts ...OverloadOption) Workload {
	o := ukpool.NewOverload(seed, rate, n, bytes)
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// Pool option re-exports. The canonical names carry the Pool prefix —
// they configure a Pool, not a Spec, and the prefix keeps them from
// colliding with spec options (WithZeroCopy the spec option vs
// WithPoolZeroCopy the pool option was the first casualty of the
// unprefixed scheme). The old unprefixed names remain as deprecated
// aliases.

// WithPoolWarm sets the pool's warm-instance floor (default 8).
func WithPoolWarm(n int) PoolOption { return ukpool.WithWarm(n) }

// WithPoolMaxInstances caps the pool's fleet size (default 1024).
func WithPoolMaxInstances(n int) PoolOption { return ukpool.WithMaxInstances(n) }

// WithPoolColdBurst bounds demand-driven cold boots in flight at once
// (default 32); misses beyond it queue for the autoscaler to fix.
func WithPoolColdBurst(n int) PoolOption { return ukpool.WithColdBurst(n) }

// WithPoolServiceCost sets the per-request cost model: shim syscall
// count and application cycles.
func WithPoolServiceCost(syscalls int, appCycles uint64) PoolOption {
	return ukpool.WithServiceCost(syscalls, appCycles)
}

// WithPoolRecycleEvery resets an instance's heap after n served
// requests (default 4096; 0 disables).
func WithPoolRecycleEvery(n int) PoolOption { return ukpool.WithRecycleEvery(n) }

// WithPoolScaleWindow sets the autoscaler tick period (default 50ms of
// virtual time).
func WithPoolScaleWindow(d time.Duration) PoolOption { return ukpool.WithScaleWindow(d) }

// WithPoolTargetP99 sets the latency SLO that triggers scale-ups
// (default 2ms).
func WithPoolTargetP99(d time.Duration) PoolOption { return ukpool.WithTargetP99(d) }

// WithPoolHeadroom sets the autoscaler's capacity margin over the
// Little's-law estimate (default 2.0).
func WithPoolHeadroom(h float64) PoolOption { return ukpool.WithHeadroom(h) }

// DisablePoolAutoscale pins the warm set at the floor; cold boots still
// happen on demand.
func DisablePoolAutoscale() PoolOption { return ukpool.DisableAutoscale() }

// DisablePoolPerRequestHeap drops the per-request malloc/free pair from
// the pool's service-time model (for apps that serve from static
// buffers).
func DisablePoolPerRequestHeap() PoolOption { return ukpool.DisablePerRequestHeap() }

// WithPoolZeroCopy drops the per-request payload copy charges from the
// pool's service-time model (NewPool applies it automatically for specs
// built with WithZeroCopy).
func WithPoolZeroCopy() PoolOption { return ukpool.WithZeroCopy() }

// WithPoolKickBatch amortizes per-request virtqueue kicks over batches
// of n requests (NewPool applies it for specs built with WithTxBatch).
func WithPoolKickBatch(n int) PoolOption { return ukpool.WithKickBatch(n) }

// WithPoolForkBoot instantiates the fleet by snapshot-fork through the
// given boot func (NewPool wires it automatically for specs built with
// WithSnapshotBoot, pointing at a pool-owned template).
func WithPoolForkBoot(fork func(id int) (*VM, error)) PoolOption {
	return ukpool.WithForkBoot(fork)
}

// WithPoolDeadline stamps arrival + d as the deadline on every request
// that reaches the pool without one. Expired requests — dead on
// arrival or timed out while queued — are dropped before any service
// time is charged and counted Expired, so a standalone pool gets the
// same deadline discipline the cluster front door provides.
func WithPoolDeadline(d time.Duration) PoolOption { return ukpool.WithDeadline(d) }

// WithPoolBrownout serves requests in degraded mode (half the
// application cycles, no per-request attachment work) whenever the
// shard's queue is depth deep — degrade before you drop. Counted in
// Report.Browned.
func WithPoolBrownout(depth int) PoolOption { return ukpool.WithBrownout(depth) }

// WithPoolSlowdown stretches every service started in [from, to) by
// factor (to <= from: until the trace ends) — the noisy-neighbor /
// thermal-throttle hazard. The cluster layer wires this automatically
// for hosts a fault plan marks slow.
func WithPoolSlowdown(from, to time.Duration, factor float64) PoolOption {
	return ukpool.WithSlowdown(from, to, factor)
}

// WithPoolRequestWork attaches per-request instance work to the pool:
// fn runs inside every request's service window with the serving
// instance's VM and the request ordinal, and whatever it charges to the
// VM's machine lands in that request's service time. This is how a
// file-serving spec drives each instance's VFS (open/sendfile/close)
// under pool traffic.
func WithPoolRequestWork(fn func(vm *VM, seq int)) PoolOption {
	return ukpool.WithRequestWork(fn)
}

// Deprecated aliases for the pre-Pool-prefix option names. They behave
// identically to their canonical forms and exist only so older call
// sites keep compiling; new code should use the WithPool* names.

// WithWarm is a deprecated alias.
//
// Deprecated: use WithPoolWarm.
func WithWarm(n int) PoolOption { return WithPoolWarm(n) }

// WithMaxInstances is a deprecated alias.
//
// Deprecated: use WithPoolMaxInstances.
func WithMaxInstances(n int) PoolOption { return WithPoolMaxInstances(n) }

// WithColdBurst is a deprecated alias.
//
// Deprecated: use WithPoolColdBurst.
func WithColdBurst(n int) PoolOption { return WithPoolColdBurst(n) }

// WithServiceCost is a deprecated alias.
//
// Deprecated: use WithPoolServiceCost.
func WithServiceCost(syscalls int, appCycles uint64) PoolOption {
	return WithPoolServiceCost(syscalls, appCycles)
}

// WithRecycleEvery is a deprecated alias.
//
// Deprecated: use WithPoolRecycleEvery.
func WithRecycleEvery(n int) PoolOption { return WithPoolRecycleEvery(n) }

// WithScaleWindow is a deprecated alias.
//
// Deprecated: use WithPoolScaleWindow.
func WithScaleWindow(d time.Duration) PoolOption { return WithPoolScaleWindow(d) }

// WithTargetP99 is a deprecated alias.
//
// Deprecated: use WithPoolTargetP99.
func WithTargetP99(d time.Duration) PoolOption { return WithPoolTargetP99(d) }

// WithHeadroom is a deprecated alias.
//
// Deprecated: use WithPoolHeadroom.
func WithHeadroom(h float64) PoolOption { return WithPoolHeadroom(h) }

// DisableAutoscale is a deprecated alias.
//
// Deprecated: use DisablePoolAutoscale.
func DisableAutoscale() PoolOption { return DisablePoolAutoscale() }

// WithRequestWork is a deprecated alias.
//
// Deprecated: use WithPoolRequestWork.
func WithRequestWork(fn func(vm *VM, seq int)) PoolOption {
	return WithPoolRequestWork(fn)
}
