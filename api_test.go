package unikraft

// Tests for the Spec/Runtime SDK: validation errors, functional options,
// zero-value defaults, deprecated-wrapper equivalence, and end-to-end
// build+boot of an app registered at run time.

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestSpecOptions(t *testing.T) {
	s := NewSpec("nginx",
		WithVMM("firecracker"),
		WithAllocator("tlsf"),
		WithMemory(128<<20),
		WithDCE(), WithLTO(),
		WithDynamicPageTable(),
		With9pfs(),
		WithExtraLibs("shfs"))
	if s.App != "nginx" || s.VMM != "firecracker" || s.Allocator != "tlsf" ||
		s.MemBytes != 128<<20 || !s.DCE || !s.LTO ||
		!s.DynamicPageTable || !s.Mount9pfs ||
		len(s.ExtraLibs) != 1 || s.ExtraLibs[0] != "shfs" {
		t.Errorf("options not applied: %+v", s)
	}
	if got := NewSpec("redis", WithPlatform(PlatformXen)).Platform; got != "xen" {
		t.Errorf("WithPlatform = %q", got)
	}
	if s := NewSpec("redis", WithBuildFlags(true, false)); !s.DCE || s.LTO {
		t.Errorf("WithBuildFlags = %+v", s)
	}
}

func TestSpecNetOptions(t *testing.T) {
	s := NewSpec("nginx", WithZeroCopy(), WithTxBatch(32), WithIRQCoalesce(4))
	if !s.ZeroCopy || s.TxKickBatch != 32 || s.RxIRQBatch != 4 {
		t.Errorf("net options not applied: %+v", s)
	}
	str := s.String()
	for _, want := range []string{"+zc", "kick=32", "irq=4"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q, missing %q", str, want)
		}
	}
	rt := NewRuntime()
	tuning, err := rt.NetTuning(s)
	if err != nil {
		t.Fatal(err)
	}
	if tuning.TxKickBatch != 32 || tuning.RxIRQBatch != 4 {
		t.Errorf("NetTuning = %+v", tuning)
	}
	if _, err := rt.NetTuning(NewSpec("notepad")); err == nil {
		t.Error("NetTuning accepted an invalid spec")
	}
}

// TestSpecSnapshotBoot: the snapshot-fork options reach the Spec, its
// rendering, and the Runtime boot path — a second Boot of a
// SnapshotBoot spec forks the cached template instead of replaying the
// pipeline, and the clone is observationally a booted VM.
func TestSpecSnapshotBoot(t *testing.T) {
	s := NewSpec("nginx", WithVMM("firecracker"), WithSnapshotBoot(), WithInitStages())
	if !s.SnapshotBoot || !s.InitStages {
		t.Fatalf("options not applied: %+v", s)
	}
	for _, want := range []string{"+snap", "+stages"} {
		if !strings.Contains(s.String(), want) {
			t.Errorf("String() = %q, missing %q", s.String(), want)
		}
	}

	rt := NewRuntime()
	cold, err := rt.Boot(NewSpec("nginx", WithVMM("firecracker")))
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	// First SnapshotBoot call pays the template boot; later ones fork.
	first, err := rt.Boot(s)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	forked, err := rt.Boot(s)
	if err != nil {
		t.Fatal(err)
	}
	defer forked.Close()
	if !forked.Forked || !first.Forked {
		t.Error("SnapshotBoot spec did not fork")
	}
	if 5*forked.Report.Total() > cold.Report.Total() {
		t.Errorf("fork %v not 5x below cold boot %v", forked.Report.Total(), cold.Report.Total())
	}
	cs, rs := forked.Heap.Stats(), cold.Heap.Stats()
	if cs.HeapBytes != rs.HeapBytes {
		t.Errorf("forked heap %d bytes vs booted %d", cs.HeapBytes, rs.HeapBytes)
	}
	if !reflect.DeepEqual(forked.InitLibs, cold.InitLibs) {
		t.Errorf("forked lib set %v vs booted %v", forked.InitLibs, cold.InitLibs)
	}

	// Close releases the cached template; the runtime stays usable and
	// re-captures on the next SnapshotBoot call.
	rt.Close()
	again, err := rt.Boot(s)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if !again.Forked {
		t.Error("post-Close SnapshotBoot did not fork")
	}

	// Specs differing below Spec.String()'s MiB rounding render the
	// same "mem=64MiB" but must not share a template: the cache keys on
	// exact memory/stack sizes.
	whole, err := rt.Boot(s.With(WithMemory(64 << 20)))
	if err != nil {
		t.Fatal(err)
	}
	defer whole.Close()
	half, err := rt.Boot(s.With(WithMemory(64<<20 + 512<<10)))
	if err != nil {
		t.Fatal(err)
	}
	defer half.Close()
	if half.Config.MemBytes != 64<<20+512<<10 || half.Config.MemBytes == whole.Config.MemBytes {
		t.Errorf("sub-MiB spec forked from a colliding template: mem=%d vs %d",
			half.Config.MemBytes, whole.Config.MemBytes)
	}
}

// TestPoolSpecSnapshotBoot: a SnapshotBoot spec produces a pool whose
// fleet forks every instantiation from a pool-owned template.
func TestPoolSpecSnapshotBoot(t *testing.T) {
	rt := NewRuntime()
	serve := func(spec Spec) *ServeReport {
		pool, err := rt.NewPool(spec, WithPoolWarm(2), WithPoolMaxInstances(32), WithPoolColdBurst(2))
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		rep, err := pool.Serve(BurstyWorkload(3, 10_000, 200_000, 50*time.Millisecond, 0.3, 20_000, 256))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := serve(NewSpec("nginx", WithVMM("firecracker")))
	snap := serve(NewSpec("nginx", WithVMM("firecracker"), WithSnapshotBoot()))
	if snap.ForkBoots == 0 || snap.ForkBoots != int(snap.Boot.Count) {
		t.Errorf("snapshot pool forked %d of %d boots", snap.ForkBoots, snap.Boot.Count)
	}
	if base.ForkBoots != 0 {
		t.Errorf("plain pool reports %d forks", base.ForkBoots)
	}
	if snap.ColdBoot.Count > 0 && base.ColdBoot.Count > 0 &&
		snap.ColdBoot.Quantile(0.99) >= base.ColdBoot.Quantile(0.99) {
		t.Errorf("fork cold p99 %v not below boot cold p99 %v",
			snap.ColdBoot.Quantile(0.99), base.ColdBoot.Quantile(0.99))
	}
}

// TestPoolSpecZeroCopy: a zero-copy, kick-batched spec must produce a
// pool whose requests finish faster than the copying default.
func TestPoolSpecZeroCopy(t *testing.T) {
	rt := NewRuntime()
	serve := func(spec Spec) *ServeReport {
		pool, err := rt.NewPool(spec, WithPoolWarm(2), DisablePoolAutoscale())
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		rep, err := pool.Serve(PoissonWorkload(1, 10_000, 2_000, 1024))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := serve(NewSpec("nginx", WithVMM("firecracker")))
	zc := serve(NewSpec("nginx", WithVMM("firecracker"), WithZeroCopy(), WithTxBatch(16)))
	if zc.Latency.Sum >= base.Latency.Sum {
		t.Errorf("zero-copy spec latency sum %v >= copying %v", zc.Latency.Sum, base.Latency.Sum)
	}
}

// TestPoolServeParallelFacade: the sharded serving engine is reachable
// through the SDK facade and matches sequential aggregates on a steady
// trace.
func TestPoolServeParallelFacade(t *testing.T) {
	rt := NewRuntime()
	spec := NewSpec("nginx", WithVMM("firecracker"))
	mkTrace := func() Workload {
		reqs := make([]Request, 400)
		for i := range reqs {
			reqs[i] = Request{Arrival: time.Duration(i+1) * time.Millisecond, Bytes: 128}
		}
		return TraceWorkload(reqs)
	}
	seqPool, err := rt.NewPool(spec, WithPoolWarm(4), WithPoolMaxInstances(4), DisablePoolAutoscale())
	if err != nil {
		t.Fatal(err)
	}
	defer seqPool.Close()
	seq, err := seqPool.Serve(mkTrace())
	if err != nil {
		t.Fatal(err)
	}
	parPool, err := rt.NewPool(spec, WithPoolWarm(4), WithPoolMaxInstances(4), DisablePoolAutoscale())
	if err != nil {
		t.Fatal(err)
	}
	defer parPool.Close()
	par, err := parPool.ServeParallel(mkTrace(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel facade report diverged:\n%v\nvs\n%v", seq, par)
	}
}

func TestSpecWithDoesNotMutate(t *testing.T) {
	base := NewSpec("nginx", WithExtraLibs("shfs"))
	derived := base.With(WithExtraLibs("uklock"), WithAllocator("buddy"))
	if len(base.ExtraLibs) != 1 || base.Allocator != "" {
		t.Errorf("With mutated the base spec: %+v", base)
	}
	if len(derived.ExtraLibs) != 2 || derived.Allocator != "buddy" {
		t.Errorf("derived spec wrong: %+v", derived)
	}
}

func TestValidateErrors(t *testing.T) {
	rt := NewRuntime()
	cases := []struct {
		spec Spec
		want string // substring of the error
	}{
		{NewSpec(""), "no app"},
		{NewSpec("notepad"), `unknown app "notepad"`},
		{NewSpec("nginx", WithVMM("vmware")), `unknown VMM "vmware"`},
		{NewSpec("nginx", WithPlatform("hyperv")), `unknown platform "hyperv"`},
		{NewSpec("nginx", WithPlatform("xen"), WithVMM("qemu")), `runs on platform "kvm", not "xen"`},
		{NewSpec("nginx", WithAllocator("jemalloc")), `unknown allocator "jemalloc"`},
		{NewSpec("nginx", WithMemory(-1)), "memory must not be negative"},
		{NewSpec("nginx", WithExtraLibs("shsf")), `unknown extra library "shsf"`},
		{NewSpec("nginx", WithTxBatch(-2)), "TX kick batch must not be negative"},
		{NewSpec("nginx", WithIRQCoalesce(-1)), "RX IRQ batch must not be negative"},
	}
	for _, c := range cases {
		err := rt.Validate(c.spec)
		if err == nil {
			t.Errorf("Validate(%v) accepted", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%v) = %q, want substring %q", c.spec, err, c.want)
		}
	}
	// A fully defaulted spec for every registered app validates.
	for _, app := range rt.Apps() {
		if err := rt.Validate(NewSpec(app)); err != nil {
			t.Errorf("Validate(%s) = %v", app, err)
		}
	}
	// Catalog libraries and bare boot-step names are both valid extras.
	if err := rt.Validate(NewSpec("nginx", WithExtraLibs("shfs", "pthreads"))); err != nil {
		t.Errorf("valid extra libs rejected: %v", err)
	}
}

func TestZeroValueDefaults(t *testing.T) {
	rt := NewRuntime()
	inst, err := rt.Run(NewSpec("helloworld"))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	vm := inst.VM
	if vm.Platform.Name != "kvm" || vm.Platform.VMM != "qemu" {
		t.Errorf("default platform = %s/%s, want kvm/qemu", vm.Platform.Name, vm.Platform.VMM)
	}
	if vm.Config.MemBytes != 64<<20 {
		t.Errorf("default memory = %d, want 64MiB", vm.Config.MemBytes)
	}
	// helloworld's profile allocator is ukallocbuddy -> buddy heap.
	if vm.Heap.Name() != "buddy" {
		t.Errorf("default heap = %s, want the profile's buddy", vm.Heap.Name())
	}
	if inst.Image.Platform != "kvm" {
		t.Errorf("image platform = %s", inst.Image.Platform)
	}
}

func TestAllocatorOverrideReachesImageAndHeap(t *testing.T) {
	rt := NewRuntime()
	inst, err := rt.Run(NewSpec("nginx", WithAllocator("mimalloc"), WithMemory(128<<20)))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.VM.Heap.Name() != "mimalloc" {
		t.Errorf("heap = %s, want mimalloc", inst.VM.Heap.Name())
	}
	found := false
	for _, lib := range inst.Image.Libs {
		if lib == "ukallocmim" {
			found = true
		}
	}
	if !found {
		t.Errorf("image libs %v missing ukallocmim provider", inst.Image.Libs)
	}
}

func TestDeprecatedWrappersMatchRuntime(t *testing.T) {
	rt := NewRuntime()
	old, err := BuildApp("nginx", "kvm", BuildOptions{DCE: true, LTO: true})
	if err != nil {
		t.Fatal(err)
	}
	spec := NewSpec("nginx", WithPlatform(PlatformKVM), WithDCE(), WithLTO())
	img, err := rt.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if old.Bytes != img.Bytes || len(old.Libs) != len(img.Libs) {
		t.Errorf("BuildApp %d bytes / %d libs, Runtime.Build %d / %d",
			old.Bytes, len(old.Libs), img.Bytes, len(img.Libs))
	}

	vm, err := BootApp("helloworld", BootOptions{VMM: "firecracker", MemBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Close()
	if vm.Platform.VMM != "firecracker" || vm.Config.MemBytes != 8<<20 {
		t.Errorf("BootApp config = %s/%d", vm.Platform.VMM, vm.Config.MemBytes)
	}

	if _, err := BuildApp("notepad", "kvm", BuildOptions{}); err == nil {
		t.Error("BuildApp accepted unknown app")
	}
	if _, err := BootApp("nginx", BootOptions{VMM: "vmware"}); err == nil {
		t.Error("BootApp accepted unknown VMM")
	}
}

// TestDeprecatedWrappersFullParity pins every remaining string-keyed
// wrapper to its Spec-API equivalent, option by option: the wrappers
// must stay thin veneers, never a second code path.
func TestDeprecatedWrappersFullParity(t *testing.T) {
	rt := NewRuntime()

	// BootApp forwards every option; boot reports must agree exactly.
	old, err := BootApp("redis", BootOptions{
		VMM: "qemu-microvm", MemBytes: 32 << 20, Allocator: "tinyalloc",
		DynamicPageTable: true, Mount9pfs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	inst, err := rt.Run(NewSpec("redis",
		WithVMM("qemu-microvm"), WithMemory(32<<20), WithAllocator("tinyalloc"),
		WithDynamicPageTable(), With9pfs(), WithDCE(), WithLTO()))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if old.Report.VMM != inst.VM.Report.VMM || old.Report.Guest != inst.VM.Report.Guest {
		t.Errorf("BootApp report %v+%v, Spec path %v+%v",
			old.Report.VMM, old.Report.Guest, inst.VM.Report.VMM, inst.VM.Report.Guest)
	}
	if old.Heap.Name() != inst.VM.Heap.Name() {
		t.Errorf("heaps differ: %s vs %s", old.Heap.Name(), inst.VM.Heap.Name())
	}

	// MinMemory wrapper pins the tlsf allocator; so does the Spec path.
	oldMin, err := MinMemory("nginx")
	if err != nil {
		t.Fatal(err)
	}
	newMin, err := rt.MinMemory(NewSpec("nginx", WithAllocator("tlsf")))
	if err != nil {
		t.Fatal(err)
	}
	if oldMin != newMin {
		t.Errorf("MinMemory wrapper = %d, Runtime = %d", oldMin, newMin)
	}

	// RunExperiment wrapper and method regenerate identical tables.
	oldRes, err := RunExperiment("fig8")
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := rt.RunExperiment("fig8")
	if err != nil {
		t.Fatal(err)
	}
	if oldRes.Render() != newRes.Render() {
		t.Error("RunExperiment wrapper and Runtime.RunExperiment disagree")
	}
}

func TestSpecStackBytes(t *testing.T) {
	rt := NewRuntime()
	s := NewSpec("helloworld", WithStackBytes(128<<10))
	if s.StackBytes != 128<<10 {
		t.Fatalf("WithStackBytes not applied: %+v", s)
	}
	if got := s.String(); !strings.Contains(got, "stack=128KiB") {
		t.Errorf("String() = %q, want stack rendered", got)
	}
	if err := rt.Validate(NewSpec("helloworld", WithStackBytes(-1))); err == nil ||
		!strings.Contains(err.Error(), "stack size must not be negative") {
		t.Errorf("negative stack validation = %v", err)
	}
	inst, err := rt.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.VM.Config.StackBytes != 128<<10 {
		t.Errorf("stack did not reach boot config: %d", inst.VM.Config.StackBytes)
	}
}

// register tolerates "already registered" so tests stay idempotent
// under -count=N (the registry is process-global).
func register(t *testing.T, err error) {
	t.Helper()
	if err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
}

func TestRegisteredAppBuildsAndBoots(t *testing.T) {
	register(t, RegisterLibrary("app-apitest", LibraryConfig{
		UsedBytes: 24 << 10, UnusedBytes: 8 << 10, App: true,
		Needs: []string{"libc", "ukalloc"},
		Deps:  []string{"ukboot"},
	}))
	register(t, RegisterApp(AppProfile{Name: "apitest", Lib: "app-apitest"}))
	rt := NewRuntime()
	found := false
	for _, a := range rt.Apps() {
		if a == "apitest" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered app missing from Apps(): %v", rt.Apps())
	}
	inst, err := rt.Run(NewSpec("apitest",
		WithDCE(), WithLTO(), WithMemory(8<<20), WithAllocator("tinyalloc")))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.Image.PerLib["app-apitest"] != 24<<10 {
		t.Errorf("app library contributes %d bytes, want the 24KB used set", inst.Image.PerLib["app-apitest"])
	}
	full, err := rt.Build(NewSpec("apitest", WithAllocator("tinyalloc")))
	if err != nil {
		t.Fatal(err)
	}
	if full.Bytes <= inst.Image.Bytes {
		t.Errorf("default link %d bytes not larger than DCE+LTO %d (unused 8KB not stripped)",
			full.Bytes, inst.Image.Bytes)
	}
	if inst.VM.Heap.Name() != "tinyalloc" {
		t.Errorf("custom app heap = %s", inst.VM.Heap.Name())
	}
	if inst.VM.Report.Total() <= 0 {
		t.Error("no boot time recorded")
	}
}

func TestProfileBackendNameNormalized(t *testing.T) {
	// A profile may name its allocator by backend ("mimalloc") instead
	// of provider ("ukallocmim"); builds must normalize it so Validate
	// and Build agree.
	register(t, RegisterLibrary("app-backendname", LibraryConfig{
		UsedBytes: 4 << 10, App: true, Deps: []string{"ukboot"},
	}))
	register(t, RegisterApp(AppProfile{
		Name: "backendname", Lib: "app-backendname", Allocator: "mimalloc",
	}))
	rt := NewRuntime()
	if err := rt.Validate(NewSpec("backendname")); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	img, err := rt.Build(NewSpec("backendname"))
	if err != nil {
		t.Fatalf("Build after clean Validate: %v", err)
	}
	found := false
	for _, lib := range img.Libs {
		if lib == "ukallocmim" {
			found = true
		}
	}
	if !found {
		t.Errorf("image libs %v missing normalized ukallocmim provider", img.Libs)
	}
}

func TestAppsSortedAndStable(t *testing.T) {
	names := Apps()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Apps() not sorted: %v", names)
	}
	again := Apps()
	if strings.Join(names, ",") != strings.Join(again, ",") {
		t.Errorf("Apps() unstable: %v vs %v", names, again)
	}
	if allocs := Allocators(); !sort.StringsAreSorted(allocs) {
		t.Errorf("Allocators() not sorted: %v", allocs)
	}
}

func TestRuntimeExperiments(t *testing.T) {
	rt := NewRuntime()
	ids := rt.Experiments()
	if len(ids) == 0 || !sort.StringsAreSorted(ids) {
		t.Fatalf("Experiments() = %v", ids)
	}
	res, err := rt.RunExperiment("fig3")
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "fig3" || len(res.Rows) == 0 {
		t.Errorf("fig3 result: %+v", res)
	}
	if _, err := rt.RunExperiment("fig99"); err == nil {
		t.Error("unknown experiment ran")
	}
}

func TestMinMemorySpec(t *testing.T) {
	rt := NewRuntime()
	min, err := rt.MinMemory(NewSpec("helloworld", WithAllocator("tlsf")))
	if err != nil {
		t.Fatal(err)
	}
	if min < 1<<20 || min > 8<<20 {
		t.Errorf("helloworld min memory = %dMB, want the paper's ~2MB regime", min>>20)
	}
	if _, err := rt.MinMemory(NewSpec("notepad")); err == nil {
		t.Error("MinMemory accepted unknown app")
	}
}
