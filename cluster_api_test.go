package unikraft

// SDK-level tests for the cluster layer: Runtime.NewCluster over real
// specs, the single-host identity guarantee, spec-driven affinity and
// placement, and handoff economics against the spec's actual snapshot.

import (
	"reflect"
	"testing"
	"time"
)

func clusterTrace(n int) Workload {
	return DiurnalWorkload(17, 3000, 8000, 2*time.Second,
		250*time.Millisecond, 300*time.Millisecond, 150_000, 128, n, 256)
}

// TestClusterSingleHostIdentity: a 1-host cluster's Pool section is
// byte-identical to NewPool(spec).Serve on the same trace — the front
// door is bypassed, and host 0's pool is seeded exactly like a
// standalone pool.
func TestClusterSingleHostIdentity(t *testing.T) {
	spec := NewSpec("helloworld", WithVMM("firecracker"), WithMemory(8<<20))
	rt := NewRuntime()

	pool, err := rt.NewPool(spec, WithPoolWarm(4), WithPoolMaxInstances(64))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	want, err := pool.Serve(clusterTrace(30_000))
	if err != nil {
		t.Fatal(err)
	}

	c, err := rt.NewCluster(spec, WithHostPoolOptions(WithPoolWarm(4), WithPoolMaxInstances(64)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Serve(clusterTrace(30_000))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*want, rep.Pool) {
		t.Errorf("1-host cluster diverged from Pool.Serve\npool:    %v\ncluster: %v", want, &rep.Pool)
	}
}

// TestClusterSpillsWithHandoff: a SnapshotBoot spec under a flash crowd
// spills to standby hosts via snapshot-image handoff, serves everything
// and prices activation below the remote cold mint.
func TestClusterSpillsWithHandoff(t *testing.T) {
	spec := NewSpec("helloworld", WithVMM("firecracker"), WithMemory(8<<20),
		WithSnapshotBoot())
	rt := NewRuntime()
	defer rt.Close()

	c, err := rt.NewCluster(spec, WithHosts(8), WithActiveHosts(2), WithCoresPerHost(2),
		WithHostPoolOptions(WithPoolWarm(4), WithPoolMaxInstances(64)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Serve(clusterTrace(60_000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped() != 0 {
		t.Errorf("dropped %d requests", rep.Dropped())
	}
	if rep.Activations == 0 || rep.Handoffs != rep.Activations {
		t.Errorf("want all activations via handoff, got %d handoffs of %d activations",
			rep.Handoffs, rep.Activations)
	}
	if rep.HandoffBytes == 0 {
		t.Error("handoff shipped zero bytes — image sizing broken")
	}
	// Handoff must beat re-minting the template remotely: the
	// activation price (transfer + attach) stays under the template's
	// own full-pipeline boot time, which the report carries as the
	// alternative.
	if rep.Activation.MaxV <= 0 {
		t.Fatal("no activation latency recorded")
	}

	cold, err := rt.NewCluster(spec, WithHosts(8), WithActiveHosts(2), WithCoresPerHost(2),
		WithoutHandoff(), WithHostPoolOptions(WithPoolWarm(4), WithPoolMaxInstances(64)))
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	crep, err := cold.Serve(clusterTrace(60_000))
	if err != nil {
		t.Fatal(err)
	}
	if crep.RemoteColdBoots == 0 {
		t.Fatal("no-handoff cluster never cold-minted")
	}
	if rep.Activation.Mean() >= crep.Activation.Mean() {
		t.Errorf("handoff activation (%v) not cheaper than remote cold mint (%v)",
			rep.Activation.Mean(), crep.Activation.Mean())
	}
}

// TestClusterAffinityFromSpec: the spec's Affinity field drives the
// front door, and bad values fail at construction.
func TestClusterAffinityFromSpec(t *testing.T) {
	rt := NewRuntime()
	spec := NewSpec("helloworld", WithVMM("firecracker"), WithMemory(8<<20),
		WithAffinity("hash"))
	c, err := rt.NewCluster(spec, WithHosts(4), WithMinActiveHosts(4),
		WithHostPoolOptions(WithPoolWarm(2), WithPoolMaxInstances(64)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Serve(DiurnalWorkload(5, 20_000, 20_000, time.Second, 0, 0, 0, 64, 10_000, 128))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped() != 0 {
		t.Errorf("dropped %d", rep.Dropped())
	}
	served := 0
	for _, h := range rep.PerHost {
		if h.Requests > 0 {
			served++
		}
	}
	if served < 2 {
		t.Errorf("hash affinity used %d hosts, want the ring to spread sessions", served)
	}

	if _, err := rt.NewCluster(NewSpec("helloworld", WithAffinity("random"))); err == nil {
		t.Error("NewCluster accepted unknown affinity policy")
	}
	if err := rt.Validate(NewSpec("helloworld", WithPlacement("diagonal"))); err == nil {
		t.Error("Validate accepted unknown placement")
	}
}
