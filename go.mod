module unikraft

go 1.24
