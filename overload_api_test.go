package unikraft

// SDK-level tests for the overload-control layer: deadlines, adaptive
// admission, retry throttling and brownout through the public option
// surface, plus the armed-but-idle identity guarantee.

import (
	"reflect"
	"testing"
	"time"
)

// overloadSpec pins one instance per core so the SDK cluster has a
// real capacity ceiling for the overload trace to exceed.
func overloadClusterOpts(extra ...ClusterOption) []ClusterOption {
	return append([]ClusterOption{
		WithHosts(2), WithActiveHosts(2), WithMinActiveHosts(2),
		WithCoresPerHost(2),
		WithHostPoolOptions(WithPoolWarm(2), WithPoolMaxInstances(2)),
	}, extra...)
}

// TestOverloadArmedIdleIdentitySDK: at the SDK level — real specs,
// snapshot handoff, the full option surface — overload control that
// never triggers must serve byte-identically to a cluster built
// without it.
func TestOverloadArmedIdleIdentitySDK(t *testing.T) {
	spec := NewSpec("helloworld", WithVMM("firecracker"), WithMemory(8<<20),
		WithSnapshotBoot(), WithAffinity("least-loaded"))
	rt := NewRuntime()
	defer rt.Close()

	serve := func(opts ...ClusterOption) *ClusterReport {
		c, err := rt.NewCluster(spec, overloadClusterOpts(opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rep, err := c.Serve(OverloadWorkload(7, 20_000, 30_000, 256))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := serve()
	armed := serve(WithDeadline(time.Hour), WithAdmission(time.Hour),
		WithRetryThrottle(0.1, 0))
	if !reflect.DeepEqual(plain, armed) {
		t.Errorf("armed-but-idle overload control diverged at the SDK level:\n%v\n----\n%v", plain, armed)
	}
}

// TestOverloadControlSDK: the stack armed through public options
// against a deadline-stamped priority-mix trace well past capacity.
// First with the adaptive admission controller: it sheds batch first
// and keeps the pools drained. Then with brownout instead: queues
// build to the deadline bound and the pools degrade before dropping.
// (Admission holds queues too short for brownout to trigger — the two
// layers are alternatives at the same margin, so they are asserted in
// separate serves.)
func TestOverloadControlSDK(t *testing.T) {
	spec := NewSpec("helloworld", WithVMM("firecracker"), WithMemory(8<<20),
		WithAffinity("least-loaded"))
	rt := NewRuntime()
	defer rt.Close()

	serve := func(opts ...ClusterOption) *ClusterReport {
		c, err := rt.NewCluster(spec, overloadClusterOpts(opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rep, err := c.Serve(OverloadWorkload(7, 2_000_000, 100_000, 256,
			WithPriorityMix(0.3),
			WithWorkloadDeadlines(10*time.Millisecond, 100*time.Millisecond),
			WithWorkloadSessions(64)))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Dropped() != 0 {
			t.Fatalf("%d requests unaccounted for", rep.Dropped())
		}
		return rep
	}

	admitted := serve(WithDeadline(10*time.Millisecond), WithAdmission(time.Millisecond))
	if admitted.Shed == 0 {
		t.Error("overload never shed through the admission controller")
	}
	if admitted.ShedBatch <= admitted.Shed-admitted.ShedBatch {
		t.Errorf("shedding not staged: batch=%d interactive=%d",
			admitted.ShedBatch, admitted.Shed-admitted.ShedBatch)
	}
	if g := admitted.Goodput(); g <= 0 {
		t.Errorf("goodput %.4f under controlled overload", g)
	}

	browned := serve(WithDeadline(10*time.Millisecond), WithBrownout(32))
	if browned.Pool.Browned == 0 {
		t.Error("brownout never engaged with queues at the deadline bound")
	}
	if browned.Expired+browned.Pool.Expired == 0 {
		t.Error("deadlines never expired a request under overload")
	}
}

// TestOverloadWorkloadSurge: the surge option multiplies the open-loop
// rate inside its window — more arrivals land in the same virtual time
// than the flat trace delivers.
func TestOverloadWorkloadSurge(t *testing.T) {
	last := func(w Workload) time.Duration {
		var at time.Duration
		for {
			req, ok := w.Next()
			if !ok {
				return at
			}
			at = req.Arrival
		}
	}
	flat := last(OverloadWorkload(7, 50_000, 20_000, 256))
	surged := last(OverloadWorkload(7, 50_000, 20_000, 256,
		WithSurge(0, time.Second, 4)))
	if surged >= flat {
		t.Errorf("surged trace makespan %v >= flat %v", surged, flat)
	}
}

// TestPoolOverloadOptionsSDK: deadline, brownout and slowdown ride the
// public pool option surface.
func TestPoolOverloadOptionsSDK(t *testing.T) {
	spec := NewSpec("helloworld", WithVMM("firecracker"), WithMemory(8<<20))
	rt := NewRuntime()
	defer rt.Close()
	pool, err := rt.NewPool(spec,
		WithPoolWarm(2), WithPoolMaxInstances(2),
		WithPoolDeadline(5*time.Millisecond),
		WithPoolBrownout(16),
		WithPoolSlowdown(0, 100*time.Millisecond, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	rep, err := pool.Serve(OverloadWorkload(7, 2_000_000, 50_000, 256))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Expired == 0 {
		t.Error("pool deadline never expired a request under overload")
	}
	if rep.Browned == 0 {
		t.Error("pool brownout never engaged under overload")
	}
	if rep.Requests != rep.Completed()+rep.Failed+rep.Expired {
		t.Errorf("conservation broken: %d != %d + %d + %d",
			rep.Requests, rep.Completed(), rep.Failed, rep.Expired)
	}
}
