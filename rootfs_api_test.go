package unikraft_test

import (
	"strings"
	"testing"

	"unikraft"
	"unikraft/internal/vfscore"
)

var apiSite = map[string][]byte{
	"/index.html": []byte("<html>api</html>"),
	"/a/b.txt":    []byte("nested"),
}

// TestSpecRootFSOptions: the options compose, render in String, and
// WithFiles implies ramfs.
func TestSpecRootFSOptions(t *testing.T) {
	s := unikraft.NewSpec("nginx",
		unikraft.WithRootFS("shfs"),
		unikraft.WithFiles(apiSite))
	if s.RootFS != "shfs" || len(s.Files) != 2 {
		t.Fatalf("spec = %+v", s)
	}
	for _, want := range []string{"rootfs=shfs", "files=2"} {
		if !strings.Contains(s.String(), want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	cached := s.With(unikraft.WithRootFS("ramfs"), unikraft.WithPageCache(128))
	if !strings.Contains(cached.String(), "pcache=128") {
		t.Errorf("String() = %q, missing pcache", cached)
	}

	// Implied ramfs: files without a RootFS validate and boot with a
	// VFS.
	rt := unikraft.NewRuntime()
	implied := unikraft.NewSpec("nginx", unikraft.WithFiles(apiSite))
	if err := rt.Validate(implied); err != nil {
		t.Fatalf("implied ramfs rejected: %v", err)
	}

	// With copies the file map: mutating the child never leaks into the
	// parent.
	child := s.With(unikraft.WithFile("/extra.txt", []byte("x")))
	if len(s.Files) != 2 || len(child.Files) != 3 {
		t.Errorf("WithFile mutated the parent: parent=%d child=%d", len(s.Files), len(child.Files))
	}
}

// TestSpecRootFSValidation: precise errors for unknown backends,
// negative caches, caches without a vfscore root, relative paths.
func TestSpecRootFSValidation(t *testing.T) {
	rt := unikraft.NewRuntime()
	cases := []struct {
		name string
		spec unikraft.Spec
		want string
	}{
		{"unknown backend", unikraft.NewSpec("nginx", unikraft.WithRootFS("ext4")), "unknown root filesystem"},
		{"negative cache", unikraft.NewSpec("nginx", unikraft.WithRootFS("ramfs"), unikraft.WithPageCache(-1)), "must not be negative"},
		{"cache without vfs root", unikraft.NewSpec("nginx", unikraft.WithRootFS("shfs"), unikraft.WithPageCache(64)), "vfscore-backed"},
		{"cache without any root", unikraft.NewSpec("nginx", unikraft.WithPageCache(64)), "vfscore-backed"},
		{"relative path", unikraft.NewSpec("nginx", unikraft.WithRootFS("ramfs"), unikraft.WithFile("rel.txt", nil)), "absolute"},
	}
	for _, tc := range cases {
		err := rt.Validate(tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestRunWithRootFS: the whole SDK path — spec to booted instance with
// a live filesystem, for each backend, snapshot-forked included.
func TestRunWithRootFS(t *testing.T) {
	rt := unikraft.NewRuntime()
	defer rt.Close()
	for _, rootfs := range []string{"ramfs", "9pfs"} {
		spec := unikraft.NewSpec("nginx",
			unikraft.WithRootFS(rootfs),
			unikraft.WithFiles(apiSite),
			unikraft.WithPageCache(32))
		inst, err := rt.Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", rootfs, err)
		}
		if inst.VM.VFS == nil {
			t.Fatalf("%s: no VFS on the booted VM", rootfs)
		}
		fd, err := inst.VM.VFS.Open("/a/b.txt", vfscore.ORdOnly)
		if err != nil {
			t.Fatalf("%s: open: %v", rootfs, err)
		}
		var got []byte
		if _, err := inst.VM.VFS.Sendfile(fd, 0, -1, func(p []byte) error {
			got = append(got, p...)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if string(got) != "nested" {
			t.Errorf("%s: /a/b.txt = %q", rootfs, got)
		}
		inst.Close()
	}

	shfsInst, err := rt.Run(unikraft.NewSpec("nginx",
		unikraft.WithRootFS("shfs"), unikraft.WithFiles(apiSite)))
	if err != nil {
		t.Fatal(err)
	}
	defer shfsInst.Close()
	if shfsInst.VM.SHFS == nil || shfsInst.VM.SHFS.Count() != 2 {
		t.Fatalf("shfs boot: %+v", shfsInst.VM.SHFS)
	}

	// Snapshot-boot: the second Run forks, and the clone still owns a
	// working COW filesystem view.
	snapSpec := unikraft.NewSpec("nginx",
		unikraft.WithSnapshotBoot(),
		unikraft.WithFiles(apiSite), unikraft.WithPageCache(32))
	first, err := rt.Run(snapSpec)
	if err != nil {
		t.Fatal(err)
	}
	first.Close()
	clone, err := rt.Run(snapSpec)
	if err != nil {
		t.Fatal(err)
	}
	defer clone.Close()
	if !clone.VM.Forked {
		t.Fatal("second SnapshotBoot run did not fork")
	}
	if clone.VM.VFS == nil {
		t.Fatal("forked clone has no VFS")
	}
	if _, err := clone.VM.VFS.StatPath("/index.html"); err != nil {
		t.Errorf("clone stat: %v", err)
	}
}

// TestPoolWithRequestWork: the SDK pool facade drives per-request VFS
// work on a file-serving spec.
func TestPoolWithRequestWork(t *testing.T) {
	rt := unikraft.NewRuntime()
	defer rt.Close()
	served := 0
	pool, err := rt.NewPool(
		unikraft.NewSpec("nginx", unikraft.WithVMM("firecracker"),
			unikraft.WithMemory(16<<20),
			unikraft.WithFiles(apiSite), unikraft.WithPageCache(32)),
		unikraft.WithWarm(2), unikraft.WithMaxInstances(8),
		unikraft.WithRequestWork(func(vm *unikraft.VM, seq int) {
			served++
			fd, err := vm.VFS.Open("/index.html", vfscore.ORdOnly)
			if err != nil {
				t.Fatal(err)
			}
			vm.VFS.Sendfile(fd, 0, -1, func([]byte) error { return nil })
			vm.VFS.Close(fd)
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	rep, err := pool.Serve(unikraft.PoissonWorkload(5, 40_000, 300, 128))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 300 || served != 300 {
		t.Fatalf("requests=%d hook calls=%d, want 300", rep.Requests, served)
	}
}
