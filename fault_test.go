package unikraft

// SDK-level tests for the fault-injection layer: plans built through
// the public API, the empty-plan identity guarantee, deterministic
// failover through Runtime.NewCluster, and the per-pool hazard options.

import (
	"reflect"
	"testing"
	"time"
)

// TestFaultPlanEmptyIdentity: a cluster built with an empty fault plan
// must serve byte-identically to one built without a plan at all — at
// the SDK level, through real specs and snapshot handoff.
func TestFaultPlanEmptyIdentity(t *testing.T) {
	spec := NewSpec("helloworld", WithVMM("firecracker"), WithMemory(8<<20),
		WithSnapshotBoot())
	rt := NewRuntime()
	defer rt.Close()

	serve := func(opts ...ClusterOption) *ClusterReport {
		all := append([]ClusterOption{
			WithHosts(4), WithActiveHosts(2), WithCoresPerHost(2),
			WithHostPoolOptions(WithPoolWarm(4), WithPoolMaxInstances(64)),
		}, opts...)
		c, err := rt.NewCluster(spec, all...)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rep, err := c.Serve(clusterTrace(30_000))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := serve()
	empty := serve(WithFaultPlan(NewFaultPlan(99)))
	if !reflect.DeepEqual(plain, empty) {
		t.Errorf("empty fault plan diverged from fault-free serve:\n%v\n----\n%v", plain, empty)
	}
}

// TestFaultPlanFailoverDeterministic: the same plan and seed reproduce
// the same crash, detection, retries and goodput bit-for-bit through
// the public API.
func TestFaultPlanFailoverDeterministic(t *testing.T) {
	spec := NewSpec("helloworld", WithVMM("firecracker"), WithMemory(8<<20),
		WithSnapshotBoot())
	rt := NewRuntime()
	defer rt.Close()

	run := func() *ClusterReport {
		plan := NewFaultPlan(55).
			CrashHost(1, 200*time.Millisecond).
			WithVMHazard(1e-3)
		c, err := rt.NewCluster(spec,
			WithHosts(4), WithActiveHosts(2), WithCoresPerHost(2),
			WithMinActiveHosts(2),
			WithHostPoolOptions(WithPoolWarm(4), WithPoolMaxInstances(64)),
			WithFaultPlan(plan),
			WithRetryPolicy(3, 250*time.Microsecond, 0))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rep, err := c.Serve(clusterTrace(30_000))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical fault runs diverged:\n%v\n----\n%v", a, b)
	}
	if a.Crashes != 1 {
		t.Errorf("crashes = %d, want 1", a.Crashes)
	}
	if a.Pool.Crashes == 0 {
		t.Error("VM hazard never crashed an instance")
	}
	if a.Dropped() != 0 {
		t.Errorf("%d requests unaccounted for", a.Dropped())
	}
	if g := a.Goodput(); g < 0.95 {
		t.Errorf("goodput %.4f collapsed under a single-host crash", g)
	}
}

// TestPoolCrashOptionsSDK: the pool-level hazard, retry cap and breaker
// ride the public option surface, and the accounting identity holds.
func TestPoolCrashOptionsSDK(t *testing.T) {
	spec := NewSpec("helloworld", WithVMM("firecracker"), WithMemory(8<<20))
	rt := NewRuntime()
	pool, err := rt.NewPool(spec,
		WithPoolWarm(4), WithPoolMaxInstances(32),
		WithPoolCrashHazard(0.01, 77),
		WithPoolCrashRetries(2), WithPoolBreaker(3),
		WithPoolLatencySeries(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	rep, err := pool.Serve(PoissonWorkload(3, 40_000, 40_000, 256))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes == 0 {
		t.Fatal("1% hazard over 40K requests produced no crashes")
	}
	if rep.Requests != rep.Completed()+rep.Failed {
		t.Errorf("conservation broken: %d != %d + %d", rep.Requests, rep.Completed(), rep.Failed)
	}
	if len(rep.Series) == 0 {
		t.Error("latency series not recorded")
	}
}
