// Command ukdeps exports and compares dependency graphs (Figures 1-3),
// resolving image closures through the Runtime SDK.
//
//	ukdeps -linux            DOT of the Linux kernel component graph
//	ukdeps -app nginx        DOT of an image's micro-library graph
//	ukdeps -compare nginx    density comparison vs Linux
package main

import (
	"flag"
	"fmt"
	"os"

	"unikraft"
	"unikraft/internal/depgraph"
)

func imageGraph(rt *unikraft.Runtime, appName string) (*depgraph.Graph, error) {
	closure, providers, err := rt.Closure(unikraft.NewSpec(appName))
	if err != nil {
		return nil, err
	}
	return depgraph.FromClosure(appName, closure, providers), nil
}

func main() {
	linux := flag.Bool("linux", false, "emit the Linux kernel graph (Fig 1)")
	app := flag.String("app", "", "emit an image graph (Figs 2-3)")
	compare := flag.String("compare", "", "compare an image graph against Linux")
	flag.Parse()

	rt := unikraft.NewRuntime()
	switch {
	case *linux:
		fmt.Print(depgraph.LinuxKernelGraph().DOT())
	case *app != "":
		g, err := imageGraph(rt, *app)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ukdeps:", err)
			os.Exit(1)
		}
		fmt.Print(g.DOT())
	case *compare != "":
		g, err := imageGraph(rt, *compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ukdeps:", err)
			os.Exit(1)
		}
		l := depgraph.LinuxKernelGraph()
		c := depgraph.Analyze(l, g)
		fmt.Printf("linux: %d nodes, %d edges, density %.2f, %.0f refs/component\n",
			l.NodeCount(), l.EdgeCount(), l.Density(), c.LinuxWeightPerNode)
		fmt.Printf("%s: %d nodes, %d edges, density %.2f, %.1f deps/library\n",
			*compare, g.NodeCount(), g.EdgeCount(), g.Density(), c.ImageWeightPerNode)
		fmt.Printf("linux is %.1fx denser\n", c.DensityRatio)
	default:
		fmt.Fprintln(os.Stderr, "usage: ukdeps -linux | -app <name> | -compare <name>")
		os.Exit(2)
	}
}
