// Command ukbench regenerates the paper's tables and figures against a
// Runtime.
//
//	ukbench -list            enumerate experiments
//	ukbench fig12 tab4 ...   run selected experiments
//	ukbench -all             run everything concurrently (several minutes)
//	ukbench -json fig8 ...   machine-readable results (CI consumes this)
//	ukbench -compare BENCH_baseline.json
//	                         re-run the baseline's experiments and fail
//	                         on >10% throughput regressions (CI gate)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"unikraft"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs")
	all := flag.Bool("all", false, "run every experiment (concurrently)")
	jsonOut := flag.Bool("json", false, "emit results as a JSON array instead of text tables")
	compare := flag.String("compare", "", "baseline JSON to compare against (fails on >10% throughput regressions)")
	current := flag.String("current", "", "with -compare: diff this results JSON instead of re-running experiments")
	flag.Parse()

	rt := unikraft.NewRuntime()
	if *list {
		for _, id := range rt.Experiments() {
			fmt.Printf("%-7s %s\n", id, rt.ExperimentTitle(id))
		}
		return
	}
	if *compare != "" {
		if err := runCompare(rt, *compare, *current); err != nil {
			fmt.Fprintln(os.Stderr, "ukbench:", err)
			os.Exit(1)
		}
		return
	}

	emit := func(results []*unikraft.ExperimentResult) error {
		// Failed experiments leave nil slots (RunAllExperiments);
		// neither output mode should surface them.
		ok := results[:0:0]
		for _, res := range results {
			if res != nil {
				ok = append(ok, res)
			}
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(ok)
		}
		for _, res := range ok {
			fmt.Println(res.Render())
		}
		return nil
	}

	if *all {
		results, err := rt.RunAllExperiments()
		if eerr := emit(results); eerr != nil {
			fmt.Fprintln(os.Stderr, "ukbench:", eerr)
			os.Exit(1)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ukbench:", err)
			os.Exit(1)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ukbench [-list|-all] [-json] [experiment-id...]")
		os.Exit(2)
	}
	results := make([]*unikraft.ExperimentResult, 0, len(ids))
	for _, id := range ids {
		res, err := rt.RunExperiment(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ukbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		results = append(results, res)
	}
	if err := emit(results); err != nil {
		fmt.Fprintln(os.Stderr, "ukbench:", err)
		os.Exit(1)
	}
}
