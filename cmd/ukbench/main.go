// Command ukbench regenerates the paper's tables and figures.
//
//	ukbench -list            enumerate experiments
//	ukbench fig12 tab4 ...   run selected experiments
//	ukbench -all             run everything (several minutes)
package main

import (
	"flag"
	"fmt"
	"os"

	"unikraft/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs")
	all := flag.Bool("all", false, "run every experiment")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-7s %s\n", id, experiments.Title(id))
		}
		return
	}
	ids := flag.Args()
	if *all {
		ids = experiments.IDs()
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ukbench [-list|-all] [experiment-id...]")
		os.Exit(2)
	}
	for _, id := range ids {
		res, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ukbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
	}
}
