// Command ukbench regenerates the paper's tables and figures against a
// Runtime.
//
//	ukbench -list            enumerate experiments
//	ukbench fig12 tab4 ...   run selected experiments
//	ukbench -all             run everything concurrently (several minutes)
package main

import (
	"flag"
	"fmt"
	"os"

	"unikraft"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs")
	all := flag.Bool("all", false, "run every experiment (concurrently)")
	flag.Parse()

	rt := unikraft.NewRuntime()
	if *list {
		for _, id := range rt.Experiments() {
			fmt.Printf("%-7s %s\n", id, rt.ExperimentTitle(id))
		}
		return
	}
	if *all {
		results, err := rt.RunAllExperiments()
		for _, res := range results {
			if res != nil {
				fmt.Println(res.Render())
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ukbench:", err)
			os.Exit(1)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ukbench [-list|-all] [experiment-id...]")
		os.Exit(2)
	}
	for _, id := range ids {
		res, err := rt.RunExperiment(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ukbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
	}
}
