package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"unikraft"
)

// compare re-runs every experiment recorded in a committed baseline
// (ukbench -json output) and flags throughput regressions beyond the
// tolerance. The simulator is deterministic, so honest results
// reproduce exactly; the tolerance exists so intentional recalibrations
// within the paper's error bars don't trip CI, while a >10% throughput
// loss fails the build.
const regressionTolerance = 0.10

// throughputColumn reports whether a column holds a higher-is-better
// rate (the only cells compare judges; sizes, latencies and notes pass
// through untouched).
func throughputColumn(header string) bool {
	return strings.Contains(header, "req/s") ||
		strings.Contains(header, "Mp/s") ||
		strings.Contains(header, "speedup") ||
		strings.Contains(header, "warm-hit") ||
		strings.Contains(header, "cache-hit") ||
		strings.Contains(header, "goodput") ||
		header == "served"
}

// parseRate extracts the numeric value of a rendered rate cell
// ("432.9K", "250.0K/s", "2.03M", "1.47x", "99.98%").
func parseRate(cell string) (float64, bool) {
	c := strings.TrimSuffix(cell, "/s")
	mult := 1.0
	switch {
	case strings.HasSuffix(c, "K"):
		mult, c = 1e3, strings.TrimSuffix(c, "K")
	case strings.HasSuffix(c, "M"):
		mult, c = 1e6, strings.TrimSuffix(c, "M")
	case strings.HasSuffix(c, "x"), strings.HasSuffix(c, "%"):
		c = c[:len(c)-1]
	}
	v, err := strconv.ParseFloat(c, 64)
	if err != nil {
		return 0, false
	}
	return v * mult, true
}

// identityColumns name the label columns that identify a row across
// runs. Only these go into the row key — measured cells (latencies,
// counts, sizes) must not, or any recalibration that moves them would
// orphan the row and hard-fail the compare regardless of the
// throughput tolerance.
var identityColumns = map[string]bool{
	"system": true, "setup": true, "mode": true, "datapath": true,
	"trace": true, "allocator": true, "configuration": true,
	"source": true, "vmm": true, "platform": true, "app": true,
	"backend": true, "engine": true, "scenario": true,
}

// rowKey joins the identity cells so baseline and current rows match
// even if row order shifts. Results without any identity column fall
// back to the first cell.
func rowKey(headers, row []string) string {
	var parts []string
	for i, cell := range row {
		if i < len(headers) && identityColumns[headers[i]] {
			parts = append(parts, cell)
		}
	}
	if len(parts) == 0 && len(row) > 0 {
		parts = append(parts, row[0])
	}
	return strings.Join(parts, "|")
}

// runCompare checks current results against the baseline. When
// currentPath is non-empty it diffs two JSON snapshots (no experiment
// re-runs — CI produces BENCH_current.json once and reuses it);
// otherwise each baseline experiment is re-run in process.
func runCompare(rt *unikraft.Runtime, baselinePath, currentPath string) error {
	baseline, err := loadResults(baselinePath)
	if err != nil {
		return err
	}
	current := map[string]*unikraft.ExperimentResult{}
	if currentPath != "" {
		results, err := loadResults(currentPath)
		if err != nil {
			return err
		}
		for _, res := range results {
			current[res.ID] = res
		}
	}

	regressions := 0
	for _, base := range baseline {
		cur := current[base.ID]
		if cur == nil {
			if currentPath != "" {
				fmt.Printf("MISSING  %s: experiment absent from %s\n", base.ID, currentPath)
				regressions++
				continue
			}
			var err error
			cur, err = rt.RunExperiment(base.ID)
			if err != nil {
				return fmt.Errorf("rerun %s: %w", base.ID, err)
			}
		}
		curRows := map[string][]string{}
		for _, row := range cur.Rows {
			curRows[rowKey(cur.Headers, row)] = row
		}
		for _, brow := range base.Rows {
			key := rowKey(base.Headers, brow)
			crow, ok := curRows[key]
			if !ok {
				fmt.Printf("MISSING  %s: row %q gone from current run\n", base.ID, key)
				regressions++
				continue
			}
			for i, cell := range brow {
				if i >= len(base.Headers) || i >= len(crow) || !throughputColumn(base.Headers[i]) {
					continue
				}
				bv, bok := parseRate(cell)
				cv, cok := parseRate(crow[i])
				if !bok || !cok || bv <= 0 {
					continue
				}
				delta := (cv - bv) / bv
				status := "ok      "
				if delta < -regressionTolerance {
					status = "REGRESS "
					regressions++
				}
				fmt.Printf("%s %s %-40s %-12s %10s -> %-10s %+6.1f%%\n",
					status, base.ID, key, base.Headers[i], cell, crow[i], 100*delta)
			}
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%d throughput regression(s) beyond %.0f%% vs %s",
			regressions, 100*regressionTolerance, baselinePath)
	}
	fmt.Printf("baseline %s: all throughput cells within %.0f%%\n", baselinePath, 100*regressionTolerance)
	return nil
}

func loadResults(path string) ([]*unikraft.ExperimentResult, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read results: %w", err)
	}
	var results []*unikraft.ExperimentResult
	if err := json.Unmarshal(raw, &results); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("%s holds no experiments", path)
	}
	return results, nil
}
