// Command uksyscalls runs the application-compatibility analysis
// (Figures 5 and 7) via the Runtime SDK.
//
//	uksyscalls -heatmap      the Fig 5 text heatmap
//	uksyscalls -apps         per-app support progression (Fig 7)
//	uksyscalls -missing 10   most-wanted unimplemented syscalls
package main

import (
	"flag"
	"fmt"

	"unikraft"
	"unikraft/internal/syscalls"
)

func main() {
	heatmap := flag.Bool("heatmap", false, "render the Fig 5 heatmap")
	apps := flag.Bool("apps", false, "per-app support table (Fig 7)")
	missing := flag.Int("missing", 0, "show top-N missing syscalls")
	flag.Parse()

	a := unikraft.NewRuntime().SyscallAnalysis()
	did := false
	if *heatmap {
		did = true
		fmt.Println("Fig 5 heatmap: shade = how many of 30 apps need the syscall")
		fmt.Println("('!' = needed but unsupported; blank = unused+unsupported)")
		fmt.Print(a.Heatmap(32))
	}
	if *apps {
		did = true
		fmt.Printf("%-15s %10s %8s %8s\n", "app", "supported%", "+top5%", "+top10%")
		for _, row := range a.Fig7() {
			fmt.Printf("%-15s %10.1f %8.1f %8.1f\n", row.App, row.Base, row.Top5, row.Top10)
		}
	}
	if *missing > 0 {
		did = true
		fmt.Printf("top %d missing syscalls by app demand:\n", *missing)
		for _, nr := range a.TopMissing(*missing) {
			fmt.Printf("  %3d %-16s needed by %d/30 apps\n", nr, syscalls.Name(nr), a.UsageCount[nr])
		}
	}
	if !did {
		fmt.Printf("unikraft supports %d syscalls; run with -heatmap, -apps or -missing N\n",
			len(syscalls.SupportedNumbers))
	}
}
