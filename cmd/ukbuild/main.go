// Command ukbuild builds unikernel images from the micro-library
// catalog, the CLI face of the paper's Kconfig+make pipeline.
//
//	ukbuild -app nginx -plat kvm -dce -lto
//	ukbuild -app redis -alloc ukallocmim -v
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"unikraft/internal/core"
	"unikraft/internal/ukbuild"
)

func main() {
	appName := flag.String("app", "helloworld", "application profile")
	plat := flag.String("plat", "kvm", "platform: kvm, xen, linuxu")
	dce := flag.Bool("dce", false, "dead code elimination")
	lto := flag.Bool("lto", false, "link-time optimization")
	alloc := flag.String("alloc", "", "override ukalloc provider")
	verbose := flag.Bool("v", false, "per-library size breakdown")
	flag.Parse()

	app, ok := core.AppByName(*appName)
	if !ok {
		var names []string
		for _, a := range core.Apps() {
			names = append(names, a.Name)
		}
		fmt.Fprintf(os.Stderr, "ukbuild: unknown app %q (have %v)\n", *appName, names)
		os.Exit(2)
	}
	if *alloc != "" {
		app.Allocator = *alloc
	}
	img, err := ukbuild.Build(core.DefaultCatalog(), app, *plat, ukbuild.Options{DCE: *dce, LTO: *lto})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ukbuild:", err)
		os.Exit(1)
	}
	fmt.Printf("%s_%s: %s (%d micro-libraries, %d symbols, %s removed)\n",
		img.App, img.Platform, ukbuild.KB(img.Bytes), len(img.Libs), img.Symbols, ukbuild.KB(img.RemovedBytes))
	if *verbose {
		libs := append([]string(nil), img.Libs...)
		sort.Slice(libs, func(i, j int) bool { return img.PerLib[libs[i]] > img.PerLib[libs[j]] })
		for _, lib := range libs {
			fmt.Printf("  %-16s %10s\n", lib, ukbuild.KB(img.PerLib[lib]))
		}
	}
}
