// Command ukbuild builds unikernel images from the micro-library
// catalog, the CLI face of the paper's Kconfig+make pipeline. Flags map
// onto Spec options; validation errors name the valid choices.
//
//	ukbuild -app nginx -plat kvm -dce -lto
//	ukbuild -app redis -alloc mimalloc -v
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"unikraft"
	"unikraft/internal/ukbuild"
)

func main() {
	appName := flag.String("app", "helloworld", "application profile")
	plat := flag.String("plat", "kvm", "platform: kvm, xen, solo5, linuxu")
	dce := flag.Bool("dce", false, "dead code elimination")
	lto := flag.Bool("lto", false, "link-time optimization")
	alloc := flag.String("alloc", "", "override ukalloc backend/provider")
	verbose := flag.Bool("v", false, "per-library size breakdown")
	flag.Parse()

	rt := unikraft.NewRuntime()
	spec := unikraft.NewSpec(*appName,
		unikraft.WithPlatform(*plat),
		unikraft.WithBuildFlags(*dce, *lto))
	if *alloc != "" {
		spec = spec.With(unikraft.WithAllocator(*alloc))
	}
	if err := rt.Validate(spec); err != nil {
		fmt.Fprintln(os.Stderr, "ukbuild:", err)
		os.Exit(2)
	}
	img, err := rt.Build(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ukbuild:", err)
		os.Exit(1)
	}
	fmt.Printf("%s_%s: %s (%d micro-libraries, %d symbols, %s removed)\n",
		img.App, img.Platform, ukbuild.KB(img.Bytes), len(img.Libs), img.Symbols, ukbuild.KB(img.RemovedBytes))
	if *verbose {
		libs := append([]string(nil), img.Libs...)
		sort.Slice(libs, func(i, j int) bool { return img.PerLib[libs[i]] > img.PerLib[libs[j]] })
		for _, lib := range libs {
			fmt.Printf("  %-16s %10s\n", lib, ukbuild.KB(img.PerLib[lib]))
		}
	}
}
