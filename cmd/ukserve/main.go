// Command ukserve drives the warm-pool serving layer: it builds one
// spec, boots a pool of unikernel instances over it and pushes a
// synthetic traffic trace (Poisson or bursty, millions of requests)
// through the fleet, printing the serve report.
//
// With -hosts N (N > 1) it serves through the cluster layer instead:
// N simulated hosts behind the front-door router, each with its own
// pool, spilling to standby hosts under load via snapshot handoff.
//
//	ukserve                                    1M-request steady default
//	ukserve -requests 5000000 -rate 400000     heavier steady load
//	ukserve -trace bursty -burst-rate 500000   on/off load, autoscaler working
//	ukserve -hosts 8 -active 2 -fork \
//	        -affinity least-loaded -trace diurnal   flash crowd over a cluster
//	ukserve -vcpus 4 -queues 4                 SMP guests: 4 cores, 4 NIC queue pairs
//	ukserve -profile fastpath                  named option profile (zero-copy + batching + forks)
//	ukserve -json                              machine-readable report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"unikraft"
)

func main() {
	var (
		app    = flag.String("app", "nginx", "application profile to serve")
		vmm    = flag.String("vmm", "firecracker", "monitor: qemu, qemu-microvm, firecracker, solo5-hvt, xl")
		alloc  = flag.String("alloc", "", "ukalloc backend override (profile default if empty)")
		memMB  = flag.Int("mem", 8, "guest memory per instance, MiB")
		fork   = flag.Bool("fork", false, "snapshot-fork instantiation: boot one template, clone the fleet copy-on-write")
		stages = flag.Bool("stages", false, "staged init tables: independent boot constructors charge max, not sum")
		vcpus  = flag.Int("vcpus", 0, "guest vCPUs per instance (0 = single core)")
		queues = flag.Int("queues", 0, "NIC TX/RX queue pairs per instance (0 = one pair)")
		prof   = flag.String("profile", "", "apply a named option profile first (see unikraft.Profiles)")

		hosts     = flag.Int("hosts", 1, "cluster size; >1 serves through the front-door router")
		cores     = flag.Int("cores", 0, "event-loop shards per host (0 = guest vCPU count)")
		active    = flag.Int("active", 0, "hosts active from the start (default all)")
		minActive = flag.Int("min-active", 1, "scale-down floor")
		affinity  = flag.String("affinity", "", "front-door policy: least-loaded, round-robin, hash")
		placement = flag.String("placement", "", "autoscale bias: spread (default) or pack")
		noHandoff = flag.Bool("no-handoff", false, "activate standby hosts by remote cold mint instead of snapshot handoff")

		warm      = flag.Int("warm", 8, "warm-instance floor")
		maxInst   = flag.Int("max", 256, "fleet cap")
		coldBurst = flag.Int("cold-burst", 32, "max cold boots in flight")
		window    = flag.Duration("window", 50*time.Millisecond, "autoscaler window (virtual time)")
		p99       = flag.Duration("p99", 2*time.Millisecond, "latency SLO driving scale-ups")
		noScale   = flag.Bool("no-autoscale", false, "pin the warm set at the floor")

		requests  = flag.Int("requests", 1_000_000, "trace length")
		rate      = flag.Float64("rate", 250_000, "arrival rate, requests/second")
		bytes     = flag.Int("bytes", 256, "request payload size")
		seed      = flag.Uint64("seed", 1, "trace seed")
		trace     = flag.String("trace", "poisson", "trace shape: poisson, bursty, diurnal or overload")
		burstRate = flag.Float64("burst-rate", 0, "bursty/diurnal: burst or flash-crowd rate (default 10x -rate)")
		period    = flag.Duration("period", 200*time.Millisecond, "bursty: on/off period")
		duty      = flag.Float64("duty", 0.2, "bursty: burst fraction of each period")
		day       = flag.Duration("day", 2*time.Second, "diurnal: sinusoid period (the virtual day)")
		peakRate  = flag.Float64("peak-rate", 0, "diurnal: daily peak rate (default 2x -rate)")
		flashAt   = flag.Duration("flash-at", 250*time.Millisecond, "diurnal: flash-crowd start")
		flashDur  = flag.Duration("flash-dur", 300*time.Millisecond, "diurnal: flash-crowd length")
		sessions  = flag.Int("sessions", 1024, "diurnal: session-key population (keys drive hash affinity)")

		syscalls  = flag.Int("syscalls", 4, "shim syscalls per request")
		appCycles = flag.Uint64("app-cycles", 12_000, "application cycles per request")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")

		deadline      = flag.Duration("deadline", 0, "end-to-end request deadline; expired requests are dropped unserved (0 = none)")
		priorityMix   = flag.Float64("priority-mix", 1, "overload trace: interactive share of traffic in [0,1]; the rest is batch")
		admission     = flag.Duration("admission", 0, "front-door adaptive admission: queue-delay target (0 = off; clusters only)")
		retryThrottle = flag.Float64("retry-throttle", 0, "retry token-bucket refill per successful forward (0 = off; clusters only)")
		brownout      = flag.Int("brownout", 0, "queue depth that switches pools to degraded half-work responses (0 = off)")

		chaos       = flag.Bool("chaos", false, "inject a fault plan: crash the last initially-active host at -crash-at (clusters), plus the -hazard VM crash rate")
		crashAt     = flag.Duration("crash-at", 300*time.Millisecond, "chaos: when the host fails (virtual time)")
		rejoin      = flag.Duration("rejoin", 0, "chaos: how long after the crash the host rejoins (0 = never)")
		hazard      = flag.Float64("hazard", 0, "per-request VM crash probability (works with or without -chaos)")
		retries     = flag.Int("retries", 3, "front-door retry limit per lost forward")
		retryBudget = flag.Int("retry-budget", 0, "total front-door retries per trace (0 = unbounded)")
	)
	flag.Parse()

	rt := unikraft.NewRuntime()
	base := []unikraft.Option{}
	if *prof != "" {
		base = append(base, unikraft.Profile(*prof))
	}
	base = append(base,
		unikraft.WithVMM(*vmm),
		unikraft.WithMemory(*memMB<<20),
		unikraft.WithDCE(), unikraft.WithLTO())
	spec := unikraft.NewSpec(*app, base...)
	if *vcpus > 0 {
		spec = spec.With(unikraft.WithVCPUs(*vcpus))
	}
	if *queues > 0 {
		spec = spec.With(unikraft.WithNetQueues(*queues))
	}
	if *alloc != "" {
		spec = spec.With(unikraft.WithAllocator(*alloc))
	}
	if *fork {
		spec = spec.With(unikraft.WithSnapshotBoot())
	}
	if *stages {
		spec = spec.With(unikraft.WithInitStages())
	}
	if *affinity != "" {
		spec = spec.With(unikraft.WithAffinity(*affinity))
	}
	if *placement != "" {
		spec = spec.With(unikraft.WithPlacement(*placement))
	}

	opts := []unikraft.PoolOption{
		unikraft.WithPoolWarm(*warm),
		unikraft.WithPoolMaxInstances(*maxInst),
		unikraft.WithPoolColdBurst(*coldBurst),
		unikraft.WithPoolScaleWindow(*window),
		unikraft.WithPoolTargetP99(*p99),
		unikraft.WithPoolServiceCost(*syscalls, *appCycles),
	}
	if *noScale {
		opts = append(opts, unikraft.DisablePoolAutoscale())
	}
	if *brownout > 0 {
		opts = append(opts, unikraft.WithPoolBrownout(*brownout))
	}
	if *deadline > 0 && *hosts == 1 {
		// Cluster runs stamp the deadline at the front door instead.
		opts = append(opts, unikraft.WithPoolDeadline(*deadline))
	}
	if *hazard > 0 && *hosts == 1 {
		// Cluster runs get the hazard through the fault plan instead,
		// so each host draws from its own sub-seed.
		opts = append(opts, unikraft.WithPoolCrashHazard(*hazard, *seed))
	}

	var w unikraft.Workload
	switch *trace {
	case "poisson":
		w = unikraft.PoissonWorkload(*seed, *rate, *requests, *bytes)
	case "bursty":
		br := *burstRate
		if br <= 0 {
			br = 10 * *rate
		}
		w = unikraft.BurstyWorkload(*seed, *rate, br, *period, *duty, *requests, *bytes)
	case "diurnal":
		pr := *peakRate
		if pr <= 0 {
			pr = 2 * *rate
		}
		fr := *burstRate
		if fr <= 0 {
			fr = 10 * *rate
		}
		w = unikraft.DiurnalWorkload(*seed, *rate, pr, *day,
			*flashAt, *flashDur, fr, *sessions, *requests, *bytes)
	case "overload":
		w = unikraft.OverloadWorkload(*seed, *rate, *requests, *bytes,
			unikraft.WithPriorityMix(*priorityMix),
			unikraft.WithWorkloadSessions(*sessions))
	default:
		fatal(fmt.Errorf("unknown trace %q (have poisson, bursty, diurnal, overload)", *trace))
	}

	if *hosts > 1 {
		copts := []unikraft.ClusterOption{
			unikraft.WithHosts(*hosts),
			unikraft.WithMinActiveHosts(*minActive),
			unikraft.WithHostPoolOptions(opts...),
		}
		if *cores > 0 {
			copts = append(copts, unikraft.WithCoresPerHost(*cores))
		}
		if *active > 0 {
			copts = append(copts, unikraft.WithActiveHosts(*active))
		}
		if *noHandoff {
			copts = append(copts, unikraft.WithoutHandoff())
		}
		if *deadline > 0 {
			copts = append(copts, unikraft.WithDeadline(*deadline))
		}
		if *admission > 0 {
			copts = append(copts, unikraft.WithAdmission(*admission))
		}
		if *retryThrottle > 0 {
			copts = append(copts, unikraft.WithRetryThrottle(*retryThrottle, 0))
		}
		if *chaos || *hazard > 0 {
			plan := unikraft.NewFaultPlan(*seed)
			if *chaos {
				// Crash the highest-id host that serves from t=0: it is
				// carrying live traffic at the crash, so detection, lost
				// forwards, retries and replacement all have work to do.
				victim := 0
				if *active > 1 {
					victim = *active - 1
				}
				if *rejoin > 0 {
					plan.CrashHostRejoin(victim, *crashAt, *rejoin)
				} else {
					plan.CrashHost(victim, *crashAt)
				}
			}
			if *hazard > 0 {
				plan.WithVMHazard(*hazard)
			}
			copts = append(copts,
				unikraft.WithFaultPlan(plan),
				unikraft.WithRetryPolicy(*retries, 250*time.Microsecond, *retryBudget))
		}
		c, err := rt.NewCluster(spec, copts...)
		if err != nil {
			fatal(err)
		}
		defer c.Close()
		rep, err := c.Serve(w)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			emit(clusterJSON(spec, rep))
			return
		}
		fmt.Printf("spec     %s\n%s\n", spec, rep)
		return
	}

	pool, err := rt.NewPool(spec, opts...)
	if err != nil {
		fatal(err)
	}
	defer pool.Close()
	rep, err := pool.Serve(w)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		emit(reportJSON(spec, rep))
		return
	}
	fmt.Printf("spec     %s\n%s\n", spec, rep)
}

func emit(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

// reportJSON flattens the report (histograms to percentile summaries)
// for machine consumers.
func reportJSON(spec unikraft.Spec, r *unikraft.ServeReport) map[string]any {
	hist := func(h *unikraft.ServeHistogram) map[string]any {
		return map[string]any{
			"count": h.Count, "min_ns": h.MinV.Nanoseconds(),
			"p50_ns": h.Quantile(0.50).Nanoseconds(),
			"p90_ns": h.Quantile(0.90).Nanoseconds(),
			"p99_ns": h.Quantile(0.99).Nanoseconds(),
			"max_ns": h.MaxV.Nanoseconds(), "mean_ns": h.Mean().Nanoseconds(),
		}
	}
	return map[string]any{
		"spec":           spec.String(),
		"requests":       r.Requests,
		"duration_ns":    r.Duration.Nanoseconds(),
		"throughput_rps": r.Throughput(),
		"warm_hits":      r.WarmHits,
		"warm_hit_ratio": r.WarmHitRatio(),
		"cold_boots":     r.ColdBoots,
		"fork_boots":     r.ForkBoots,
		"queued":         r.Queued,
		"failed":         r.Failed,
		"expired":        r.Expired,
		"browned":        r.Browned,
		"retried":        r.Retried,
		"crashes":        r.Crashes,
		"breaker_trips":  r.BreakerTrips,
		"resets":         r.Resets,
		"retired":        r.Retired,
		"scale_ups":      r.ScaleUps,
		"scale_downs":    r.ScaleDowns,
		"peak_instances": r.PeakInstances,
		"final_warm":     r.FinalInstances,
		"boot":           hist(&r.Boot),
		"coldboot":       hist(&r.ColdBoot),
		"latency":        hist(&r.Latency),
	}
}

// clusterJSON flattens a cluster report: control-plane counters, the
// merged pool section, and the per-host breakdown.
func clusterJSON(spec unikraft.Spec, r *unikraft.ClusterReport) map[string]any {
	perHost := make([]map[string]any, 0, len(r.PerHost))
	for _, h := range r.PerHost {
		perHost = append(perHost, map[string]any{
			"host": h.Host, "requests": h.Requests,
			"warm_hits": h.WarmHits, "cold_boots": h.ColdBoots, "fork_boots": h.ForkBoots,
			"utilization":     h.Utilization,
			"latency_p50_ns":  h.LatencyP50.Nanoseconds(),
			"latency_p99_ns":  h.LatencyP99.Nanoseconds(),
			"activated_at_ns": h.ActivatedAt.Nanoseconds(),
			"drained":         h.Drained,
			"crashed":         h.Crashed,
		})
	}
	return map[string]any{
		"spec":              spec.String(),
		"hosts":             r.Hosts,
		"cores_per_host":    r.Cores,
		"policy":            r.Policy.String(),
		"offered":           r.Offered,
		"dropped":           r.Dropped(),
		"active_start":      r.ActiveStart,
		"active_peak":       r.ActivePeak,
		"active_end":        r.ActiveEnd,
		"activations":       r.Activations,
		"handoffs":          r.Handoffs,
		"remote_cold_boots": r.RemoteColdBoots,
		"handoff_bytes":     r.HandoffBytes,
		"drains":            r.Drains,
		"requeued":          r.Requeued,
		"crashes":           r.Crashes,
		"rejoins":           r.Rejoins,
		"replacements":      r.Replacements,
		"probes":            r.Probes,
		"retried":           r.Retried,
		"failed":            r.Failed,
		"shed":              r.Shed,
		"shed_batch":        r.ShedBatch,
		"expired":           r.Expired,
		"throttled":         r.Throttled,
		"goodput":           r.Goodput(),
		"route_p99_ns":      r.Route.Quantile(0.99).Nanoseconds(),
		"pool":              reportJSON(spec, &r.Pool),
		"per_host":          perHost,
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ukserve:", err)
	os.Exit(1)
}
