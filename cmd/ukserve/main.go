// Command ukserve drives the warm-pool serving layer: it builds one
// spec, boots a pool of unikernel instances over it and pushes a
// synthetic traffic trace (Poisson or bursty, millions of requests)
// through the fleet, printing the serve report.
//
//	ukserve                                    1M-request steady default
//	ukserve -requests 5000000 -rate 400000     heavier steady load
//	ukserve -trace bursty -burst-rate 500000   on/off load, autoscaler working
//	ukserve -json                              machine-readable report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"unikraft"
)

func main() {
	var (
		app    = flag.String("app", "nginx", "application profile to serve")
		vmm    = flag.String("vmm", "firecracker", "monitor: qemu, qemu-microvm, firecracker, solo5-hvt, xl")
		alloc  = flag.String("alloc", "", "ukalloc backend override (profile default if empty)")
		memMB  = flag.Int("mem", 8, "guest memory per instance, MiB")
		fork   = flag.Bool("fork", false, "snapshot-fork instantiation: boot one template, clone the fleet copy-on-write")
		stages = flag.Bool("stages", false, "staged init tables: independent boot constructors charge max, not sum")

		warm      = flag.Int("warm", 8, "warm-instance floor")
		maxInst   = flag.Int("max", 256, "fleet cap")
		coldBurst = flag.Int("cold-burst", 32, "max cold boots in flight")
		window    = flag.Duration("window", 50*time.Millisecond, "autoscaler window (virtual time)")
		p99       = flag.Duration("p99", 2*time.Millisecond, "latency SLO driving scale-ups")
		noScale   = flag.Bool("no-autoscale", false, "pin the warm set at the floor")

		requests  = flag.Int("requests", 1_000_000, "trace length")
		rate      = flag.Float64("rate", 250_000, "arrival rate, requests/second")
		bytes     = flag.Int("bytes", 256, "request payload size")
		seed      = flag.Uint64("seed", 1, "trace seed")
		trace     = flag.String("trace", "poisson", "trace shape: poisson or bursty")
		burstRate = flag.Float64("burst-rate", 0, "bursty: in-burst rate (default 10x -rate)")
		period    = flag.Duration("period", 200*time.Millisecond, "bursty: on/off period")
		duty      = flag.Float64("duty", 0.2, "bursty: burst fraction of each period")

		syscalls  = flag.Int("syscalls", 4, "shim syscalls per request")
		appCycles = flag.Uint64("app-cycles", 12_000, "application cycles per request")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()

	rt := unikraft.NewRuntime()
	spec := unikraft.NewSpec(*app,
		unikraft.WithVMM(*vmm),
		unikraft.WithMemory(*memMB<<20),
		unikraft.WithDCE(), unikraft.WithLTO())
	if *alloc != "" {
		spec = spec.With(unikraft.WithAllocator(*alloc))
	}
	if *fork {
		spec = spec.With(unikraft.WithSnapshotBoot())
	}
	if *stages {
		spec = spec.With(unikraft.WithInitStages())
	}

	opts := []unikraft.PoolOption{
		unikraft.WithWarm(*warm),
		unikraft.WithMaxInstances(*maxInst),
		unikraft.WithColdBurst(*coldBurst),
		unikraft.WithScaleWindow(*window),
		unikraft.WithTargetP99(*p99),
		unikraft.WithServiceCost(*syscalls, *appCycles),
	}
	if *noScale {
		opts = append(opts, unikraft.DisableAutoscale())
	}
	pool, err := rt.NewPool(spec, opts...)
	if err != nil {
		fatal(err)
	}
	defer pool.Close()

	var w unikraft.Workload
	switch *trace {
	case "poisson":
		w = unikraft.PoissonWorkload(*seed, *rate, *requests, *bytes)
	case "bursty":
		br := *burstRate
		if br <= 0 {
			br = 10 * *rate
		}
		w = unikraft.BurstyWorkload(*seed, *rate, br, *period, *duty, *requests, *bytes)
	default:
		fatal(fmt.Errorf("unknown trace %q (have poisson, bursty)", *trace))
	}

	rep, err := pool.Serve(w)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reportJSON(spec, rep)); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("spec     %s\n%s\n", spec, rep)
}

// reportJSON flattens the report (histograms to percentile summaries)
// for machine consumers.
func reportJSON(spec unikraft.Spec, r *unikraft.ServeReport) map[string]any {
	hist := func(h *unikraft.ServeHistogram) map[string]any {
		return map[string]any{
			"count": h.Count, "min_ns": h.MinV.Nanoseconds(),
			"p50_ns": h.Quantile(0.50).Nanoseconds(),
			"p90_ns": h.Quantile(0.90).Nanoseconds(),
			"p99_ns": h.Quantile(0.99).Nanoseconds(),
			"max_ns": h.MaxV.Nanoseconds(), "mean_ns": h.Mean().Nanoseconds(),
		}
	}
	return map[string]any{
		"spec":           spec.String(),
		"requests":       r.Requests,
		"duration_ns":    r.Duration.Nanoseconds(),
		"throughput_rps": r.Throughput(),
		"warm_hits":      r.WarmHits,
		"warm_hit_ratio": r.WarmHitRatio(),
		"cold_boots":     r.ColdBoots,
		"fork_boots":     r.ForkBoots,
		"queued":         r.Queued,
		"resets":         r.Resets,
		"retired":        r.Retired,
		"scale_ups":      r.ScaleUps,
		"scale_downs":    r.ScaleDowns,
		"peak_instances": r.PeakInstances,
		"final_warm":     r.FinalInstances,
		"boot":           hist(&r.Boot),
		"coldboot":       hist(&r.ColdBoot),
		"latency":        hist(&r.Latency),
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ukserve:", err)
	os.Exit(1)
}
