package unikraft

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// A profile must be indistinguishable from its expanded options: the
// resulting specs compare deeply equal.
func TestProfileParity(t *testing.T) {
	expanded := NewSpec("nginx",
		WithZeroCopy(), WithTxBatch(32), WithIRQCoalesce(8),
		WithSnapshotBoot(), WithInitStages())
	profiled := NewSpec("nginx", ProfileFastPath())
	if !reflect.DeepEqual(expanded, profiled) {
		t.Errorf("ProfileFastPath != expanded options:\n%+v\nvs\n%+v", expanded, profiled)
	}
	named := NewSpec("nginx", Profile("fastpath"))
	if !reflect.DeepEqual(expanded, named) {
		t.Errorf("Profile(\"fastpath\") != expanded options:\n%+v\nvs\n%+v", expanded, named)
	}

	smpExpanded := NewSpec("redis", WithVCPUs(8), WithNetQueues(8))
	smpProfiled := NewSpec("redis", ProfileSMP(8))
	if !reflect.DeepEqual(smpExpanded, smpProfiled) {
		t.Errorf("ProfileSMP(8) != expanded options:\n%+v\nvs\n%+v", smpExpanded, smpProfiled)
	}
	// ProfileSMP caps queues at the virtio-net maximum.
	wide := NewSpec("redis", ProfileSMP(16))
	if wide.VCPUs != 16 || wide.NetQueues != MaxNetQueues {
		t.Errorf("ProfileSMP(16) = vcpus=%d queues=%d, want 16/%d", wide.VCPUs, wide.NetQueues, MaxNetQueues)
	}
}

// Profiles compose like plain options: application order wins.
func TestProfileComposition(t *testing.T) {
	s := NewSpec("nginx", ProfileSMP(8), WithVCPUs(2))
	if s.VCPUs != 2 {
		t.Errorf("later option did not override profile: vcpus=%d", s.VCPUs)
	}
	s = NewSpec("nginx", WithVCPUs(2), ProfileSMP(8))
	if s.VCPUs != 8 {
		t.Errorf("profile did not override earlier option: vcpus=%d", s.VCPUs)
	}
	grouped := WithProfile(ProfileFastPath(), WithVCPUs(4))
	s = NewSpec("nginx", grouped)
	if !s.ZeroCopy || s.VCPUs != 4 {
		t.Errorf("nested profile group misapplied: %+v", s)
	}
}

func TestProfileRegistry(t *testing.T) {
	RegisterProfile("test-tuned", WithTxBatch(16), WithVCPUs(2))
	found := false
	for _, name := range Profiles() {
		if name == "test-tuned" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Profiles() = %v, missing test-tuned", Profiles())
	}
	s := NewSpec("nginx", Profile("test-tuned"))
	if s.TxKickBatch != 16 || s.VCPUs != 2 {
		t.Errorf("registered profile misapplied: %+v", s)
	}
}

// Unknown profile names fail at validation with a precise error, not
// silently and not by panic.
func TestUnknownProfileFailsValidation(t *testing.T) {
	rt := NewRuntime()
	err := rt.Validate(NewSpec("nginx", Profile("no-such-profile")))
	if err == nil {
		t.Fatal("unknown profile validated")
	}
	if !strings.Contains(err.Error(), "no-such-profile") {
		t.Errorf("error does not name the bad profile: %v", err)
	}
	// The spec is still buildable once the bad option is absent.
	if err := rt.Validate(NewSpec("nginx", Profile("fastpath"))); err != nil {
		t.Errorf("known profile failed validation: %v", err)
	}
}

func TestSMPSpecValidation(t *testing.T) {
	rt := NewRuntime()
	for _, tc := range []struct {
		opt Option
		ok  bool
	}{
		{WithVCPUs(0), true},
		{WithVCPUs(1), true},
		{WithVCPUs(MaxVCPUs), true},
		{WithVCPUs(-1), false},
		{WithVCPUs(MaxVCPUs + 1), false},
		{WithNetQueues(MaxNetQueues), true},
		{WithNetQueues(MaxNetQueues + 1), false},
		{WithNetQueues(-2), false},
	} {
		err := rt.Validate(NewSpec("nginx", tc.opt))
		if tc.ok && err != nil {
			t.Errorf("valid SMP spec rejected: %v", err)
		}
		if !tc.ok && err == nil {
			t.Errorf("invalid SMP spec accepted (%+v)", NewSpec("nginx", tc.opt))
		}
	}
}

func TestSpecStringSMP(t *testing.T) {
	s := NewSpec("nginx", WithVCPUs(4), WithNetQueues(2))
	str := s.String()
	if !strings.Contains(str, "vcpus=4") || !strings.Contains(str, "queues=2") {
		t.Errorf("String() = %q, missing SMP fields", str)
	}
	if strings.Contains(NewSpec("nginx").String(), "vcpus") {
		t.Errorf("default spec renders vcpus: %q", NewSpec("nginx").String())
	}
}

// WithVCPUs(1)/WithNetQueues(1) must be byte-identical to the default
// single-core spec: same boot report, same serve report — the shards=1
// ≡ Serve contract extended down into the guest.
func TestSingleCoreSMPIdentity(t *testing.T) {
	rt := NewRuntime()
	base := NewSpec("nginx", WithVMM("firecracker"))
	smp1 := base.With(WithVCPUs(1), WithNetQueues(1))

	bvm, err := rt.Boot(base)
	if err != nil {
		t.Fatal(err)
	}
	defer bvm.Close()
	svm, err := rt.Boot(smp1)
	if err != nil {
		t.Fatal(err)
	}
	defer svm.Close()
	if !reflect.DeepEqual(bvm.Report, svm.Report) {
		t.Errorf("vcpus=1 boot report diverged:\n%+v\nvs\n%+v", bvm.Report, svm.Report)
	}

	mkTrace := func() Workload {
		reqs := make([]Request, 300)
		for i := range reqs {
			reqs[i] = Request{Arrival: time.Duration(i+1) * time.Millisecond, Bytes: 256}
		}
		return TraceWorkload(reqs)
	}
	serve := func(s Spec) *ServeReport {
		t.Helper()
		// Pin the machine seed inputs: the pool seeds from s.String(),
		// which intentionally differs once vcpus>1 — but vcpus=1 renders
		// identically to the default, which is the point of this test.
		p, err := rt.NewPool(s, WithPoolWarm(4), DisablePoolAutoscale())
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		rep, err := p.Serve(mkTrace())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if a, b := serve(base), serve(smp1); !reflect.DeepEqual(a, b) {
		t.Errorf("vcpus=1 serve report diverged:\n%v\nvs\n%v", a, b)
	}
}

// SMP boots pay for what they configure: AP bringup per extra core,
// queue setup per extra queue pair — and nothing at the defaults.
func TestSMPBootCharges(t *testing.T) {
	rt := NewRuntime()
	boot := func(opts ...Option) time.Duration {
		t.Helper()
		vm, err := rt.Boot(NewSpec("nginx", append([]Option{WithVMM("firecracker")}, opts...)...))
		if err != nil {
			t.Fatal(err)
		}
		defer vm.Close()
		return vm.Report.Total()
	}
	base := boot()
	smp := boot(WithVCPUs(4))
	if smp <= base {
		t.Errorf("4-vCPU boot (%v) not dearer than 1-vCPU (%v)", smp, base)
	}
	mq := boot(WithNetQueues(4))
	if mq <= base {
		t.Errorf("4-queue boot (%v) not dearer than 1-queue (%v)", mq, base)
	}
	both := boot(WithVCPUs(4), WithNetQueues(4))
	if both <= smp || both <= mq {
		t.Errorf("combined SMP boot (%v) not dearer than its parts (%v, %v)", both, smp, mq)
	}
}

// The deprecated unprefixed pool option aliases stay behaviourally
// identical to their canonical WithPool* forms.
func TestPoolOptionAliasParity(t *testing.T) {
	rt := NewRuntime()
	spec := NewSpec("nginx", WithVMM("firecracker"))
	mkTrace := func() Workload {
		reqs := make([]Request, 200)
		for i := range reqs {
			reqs[i] = Request{Arrival: time.Duration(i+1) * time.Millisecond, Bytes: 128}
		}
		return TraceWorkload(reqs)
	}
	serve := func(opts ...PoolOption) *ServeReport {
		t.Helper()
		p, err := rt.NewPool(spec, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		rep, err := p.Serve(mkTrace())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	canonical := serve(WithPoolWarm(2), WithPoolMaxInstances(16), DisablePoolAutoscale())
	aliased := serve(WithWarm(2), WithMaxInstances(16), DisableAutoscale())
	if !reflect.DeepEqual(canonical, aliased) {
		t.Errorf("alias serve report diverged:\n%v\nvs\n%v", canonical, aliased)
	}
}
