package unikraft

// One testing.B benchmark per table and figure of the paper's
// evaluation. Each bench regenerates its experiment end to end and
// reports the headline metric via b.ReportMetric, so `go test -bench .`
// reproduces the entire evaluation. The rendered tables come from
// cmd/ukbench; EXPERIMENTS.md records paper-vs-measured.

import (
	"strconv"
	"strings"
	"testing"

	"unikraft/internal/experiments"
)

// runExperiment executes one experiment per benchmark iteration.
func runExperiment(b *testing.B, id string) *experiments.Result {
	b.Helper()
	env := experiments.DefaultEnv()
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Run(env, id)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// metric extracts a numeric cell for ReportMetric: the first row whose
// first or second column contains rowKey; non-numeric suffixes
// (K/M/KB/MB/ms/us) are stripped.
func metric(res *experiments.Result, rowKey string, col int) float64 {
	for _, row := range res.Rows {
		if len(row) <= col {
			continue
		}
		match := strings.Contains(row[0], rowKey)
		if !match && len(row) > 1 {
			match = strings.Contains(row[1], rowKey)
		}
		if !match {
			continue
		}
		cell := strings.TrimRight(row[col], "KMBsmu%")
		if v, err := strconv.ParseFloat(cell, 64); err == nil {
			return v
		}
	}
	return 0
}

func BenchmarkTable1(b *testing.B) {
	res := runExperiment(b, "tab1")
	b.ReportMetric(metric(res, "unikraft-kvm", 2), "unikraft-syscall-cycles")
	b.ReportMetric(metric(res, "linux-kvm", 2), "linux-syscall-cycles")
}

func BenchmarkTable2(b *testing.B) {
	res := runExperiment(b, "tab2")
	b.ReportMetric(float64(len(res.Rows)), "libraries-ported")
}

func BenchmarkTable4(b *testing.B) {
	res := runExperiment(b, "tab4")
	b.ReportMetric(metric(res, "uknetdev-polling", 2)*1e3, "uknetdev-req/s")
	b.ReportMetric(metric(res, "lwip-sockets", 2)*1e3, "lwip-req/s")
}

func BenchmarkFig01(b *testing.B) {
	res := runExperiment(b, "fig1")
	b.ReportMetric(metric(res, "dependency edges", 1), "linux-edges")
}

func BenchmarkFig02(b *testing.B) {
	res := runExperiment(b, "fig2")
	b.ReportMetric(metric(res, "micro-libraries", 1), "nginx-libs")
}

func BenchmarkFig03(b *testing.B) {
	res := runExperiment(b, "fig3")
	b.ReportMetric(metric(res, "micro-libraries", 1), "hello-libs")
}

func BenchmarkFig05(b *testing.B) {
	res := runExperiment(b, "fig5")
	b.ReportMetric(metric(res, "supported by unikraft", 1), "syscalls-supported")
}

func BenchmarkFig06(b *testing.B) {
	res := runExperiment(b, "fig6")
	b.ReportMetric(metric(res, "Q1-2020", 5), "final-quarter-days")
}

func BenchmarkFig07(b *testing.B) {
	res := runExperiment(b, "fig7")
	b.ReportMetric(metric(res, "redis", 1), "redis-support-pct")
}

func BenchmarkFig08(b *testing.B) {
	res := runExperiment(b, "fig8")
	b.ReportMetric(metric(res, "helloworld", 3), "hello-dce-KB")
}

func BenchmarkFig09(b *testing.B) {
	res := runExperiment(b, "fig9")
	b.ReportMetric(metric(res, "unikraft", 1), "unikraft-hello-KB")
}

func BenchmarkFig10(b *testing.B) {
	res := runExperiment(b, "fig10")
	b.ReportMetric(metric(res, "firecracker", 3), "fc-total-ms")
}

func BenchmarkFig11(b *testing.B) {
	res := runExperiment(b, "fig11")
	b.ReportMetric(metric(res, "unikraft", 1), "hello-min-MB")
}

func BenchmarkFig12(b *testing.B) {
	res := runExperiment(b, "fig12")
	b.ReportMetric(metric(res, "unikraft-kvm", 1)*1e6, "redis-get-req/s")
}

func BenchmarkFig13(b *testing.B) {
	res := runExperiment(b, "fig13")
	b.ReportMetric(metric(res, "unikraft-kvm", 1)*1e3, "nginx-req/s")
}

func BenchmarkFig14(b *testing.B) {
	res := runExperiment(b, "fig14")
	b.ReportMetric(metric(res, "buddy", 1), "buddy-boot-ms")
	b.ReportMetric(metric(res, "bootalloc", 1), "bootalloc-boot-ms")
}

func BenchmarkFig15(b *testing.B) {
	res := runExperiment(b, "fig15")
	b.ReportMetric(metric(res, "tinyalloc", 1)*1e3, "tinyalloc-req/s")
}

func BenchmarkFig16(b *testing.B) {
	res := runExperiment(b, "fig16")
	b.ReportMetric(metric(res, "60000", 2), "tinyalloc-speedup-60k-pct")
}

func BenchmarkFig17(b *testing.B) {
	res := runExperiment(b, "fig17")
	b.ReportMetric(metric(res, "musl-native", 1), "musl-60k-seconds")
}

func BenchmarkFig18(b *testing.B) {
	res := runExperiment(b, "fig18")
	b.ReportMetric(metric(res, "tinyalloc", 2)*1e6, "tinyalloc-set-req/s")
}

func BenchmarkFig19(b *testing.B) {
	res := runExperiment(b, "fig19")
	b.ReportMetric(metric(res, "64", 1), "64B-vhost-user-Mpps")
}

func BenchmarkFig20(b *testing.B) {
	res := runExperiment(b, "fig20")
	b.ReportMetric(metric(res, "4", 1), "9pfs-4K-read-us")
}

func BenchmarkFig21(b *testing.B) {
	res := runExperiment(b, "fig21")
	b.ReportMetric(metric(res, "static", 2), "static-1GB-us")
}

func BenchmarkFig22(b *testing.B) {
	res := runExperiment(b, "fig22")
	b.ReportMetric(metric(res, "unikraft-shfs", 1), "shfs-open-cycles")
	b.ReportMetric(metric(res, "unikraft-vfs", 1), "vfs-open-cycles")
}

func BenchmarkText9pfsBoot(b *testing.B) {
	res := runExperiment(b, "txt1")
	b.ReportMetric(metric(res, "qemu", 1), "kvm-9pfs-mount-ms")
}

func BenchmarkZeroCopy(b *testing.B) {
	res := runExperiment(b, "zerocopy")
	b.ReportMetric(metric(res, "copy", 1)*1e3, "nginx-copy-req/s")
	b.ReportMetric(metric(res, "zerocopy+kick32", 1)*1e3, "nginx-zc-batched-req/s")
}

func BenchmarkServe(b *testing.B) {
	res := runExperiment(b, "serve")
	b.ReportMetric(metric(res, "poisson-steady", 4), "steady-warm-hit-pct")
	b.ReportMetric(metric(res, "poisson-steady", 8), "boot-p50-ms")
	b.ReportMetric(metric(res, "bursty-5x", 4), "bursty-warm-hit-pct")
}

func BenchmarkSnapboot(b *testing.B) {
	res := runExperiment(b, "snapboot")
	b.ReportMetric(metric(res, "bursty-1M-fork", 2), "bursty-fork-p99-ms")
	// nginx fork speedup: cold ms / fork ms from the sweep rows.
	var cold, fork float64
	for _, row := range res.Rows {
		if row[0] == "nginx" && row[1] == "cold" {
			cold, _ = strconv.ParseFloat(row[2], 64)
		}
		if row[0] == "nginx" && row[1] == "fork" {
			fork, _ = strconv.ParseFloat(row[2], 64)
		}
	}
	if fork > 0 {
		b.ReportMetric(cold/fork, "nginx-fork-speedup-x")
	}
}

func BenchmarkEngine(b *testing.B) {
	res := runExperiment(b, "engine")
	// metric matches on the first two columns; the wheel's cluster row
	// is the headline (events/sec in M, allocs per event, speedup vs
	// the heap reference engine).
	for _, row := range res.Rows {
		if row[0] != "wheel" || !strings.Contains(row[1], "replay") {
			continue
		}
		if v, err := strconv.ParseFloat(strings.TrimRight(row[4], "KM"), 64); err == nil {
			b.ReportMetric(v, "wheel-Mev/s")
		}
		if v, err := strconv.ParseFloat(row[5], 64); err == nil {
			b.ReportMetric(v, "wheel-allocs/ev")
		}
		if v, err := strconv.ParseFloat(strings.TrimSuffix(row[6], "x"), 64); err == nil {
			b.ReportMetric(v, "wheel-vs-heap-x")
		}
	}
}

// TestPublicAPI exercises the facade end to end (build, boot, min
// memory, experiment registry).
func TestPublicAPI(t *testing.T) {
	rt := NewRuntime()
	img, err := rt.Build(NewSpec("nginx",
		WithPlatform(PlatformKVM), WithDCE(), WithLTO()))
	if err != nil {
		t.Fatal(err)
	}
	if img.Bytes < 700<<10 || img.Bytes > 900<<10 {
		t.Errorf("nginx dce+lto image = %d bytes, want ~832.8KB", img.Bytes)
	}
	vm, err := rt.Boot(NewSpec("nginx", WithDCE(), WithLTO(),
		WithVMM("firecracker"), WithMemory(128<<20)))
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Close()
	if vm.Report.Total() <= 0 {
		t.Error("zero boot time")
	}
	if len(Experiments()) < 20 {
		t.Errorf("only %d experiments registered", len(Experiments()))
	}
	for _, app := range Apps() {
		if _, err := rt.Build(NewSpec(app, WithPlatform(PlatformKVM))); err != nil {
			t.Errorf("Build(%s): %v", app, err)
		}
	}
	if _, err := rt.Build(NewSpec("no-such-app", WithPlatform(PlatformKVM))); err == nil {
		t.Error("unknown app built successfully")
	}
	if _, err := NewAllocator("tlsf", 1<<20); err != nil {
		t.Error(err)
	}
}
