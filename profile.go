package unikraft

import (
	"sort"
	"sync"
)

// Option profiles: composable configuration units. A profile bundles
// the options that only make sense together — the zero-copy datapath
// plus its batching knobs, or the SMP core/queue pairing — into one
// named Option, so call sites say what they want ("the fast path",
// "8 cores") instead of re-deriving five flag settings. Profiles are
// plain Options: they compose with each other and with individual
// options, later settings winning as always, and a spec built from a
// profile is indistinguishable from one built from the expanded options
// (the parity tests assert exact equality).

// WithProfile groups options into one: applying the group is identical
// to applying its members in order. Use it to define project-local
// profiles:
//
//	tuned := unikraft.WithProfile(
//		unikraft.WithZeroCopy(),
//		unikraft.WithTxBatch(32),
//	)
//	spec := unikraft.NewSpec("nginx", tuned)
func WithProfile(opts ...Option) Option {
	return func(s *Spec) {
		for _, opt := range opts {
			opt(s)
		}
	}
}

// ProfileFastPath is the throughput-tuned serving configuration: the
// zero-copy datapath with batched TX kicks and moderated RX IRQs, plus
// snapshot-fork instantiation over staged init tables. It collapses the
// WithZeroCopy + WithTxBatch(32) + WithIRQCoalesce(8) + WithSnapshotBoot
// + WithInitStages stanza that every tuned benchmark had grown.
func ProfileFastPath() Option {
	return WithProfile(
		WithZeroCopy(),
		WithTxBatch(32),
		WithIRQCoalesce(8),
		WithSnapshotBoot(),
		WithInitStages(),
	)
}

// ProfileSMP configures an n-core guest with matched networking: n
// vCPUs and one RX/TX queue pair per core (capped at the virtio-net
// maximum of 8 queues), so every core polls its own queue.
func ProfileSMP(n int) Option {
	queues := n
	if queues > MaxNetQueues {
		queues = MaxNetQueues
	}
	return WithProfile(
		WithVCPUs(n),
		WithNetQueues(queues),
	)
}

// profileRegistry maps names to option groups for Profile(name).
var (
	profileMu  sync.RWMutex
	profileReg = map[string]Option{
		"fastpath": ProfileFastPath(),
		"smp":      ProfileSMP(8),
	}
)

// RegisterProfile names an option group for lookup via Profile. It
// overwrites an existing registration (latest wins, like SetDefault in
// the allocator registry).
func RegisterProfile(name string, opts ...Option) {
	profileMu.Lock()
	defer profileMu.Unlock()
	profileReg[name] = WithProfile(opts...)
}

// Profiles lists registered profile names, sorted.
func Profiles() []string {
	profileMu.RLock()
	defer profileMu.RUnlock()
	names := make([]string, 0, len(profileReg))
	for n := range profileReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Profile resolves a registered profile by name ("fastpath", "smp", or
// anything added with RegisterProfile). An unknown name is not a
// panic and not silently ignored: it is recorded on the spec and
// surfaces as a precise error from Runtime.Validate/Build — the same
// up-front-validation contract every other option follows.
func Profile(name string) Option {
	profileMu.RLock()
	opt, ok := profileReg[name]
	profileMu.RUnlock()
	if !ok {
		return func(s *Spec) { s.badProfiles = append(s.badProfiles, name) }
	}
	return opt
}
