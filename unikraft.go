// Package unikraft is the public API of the Unikraft reproduction: a
// micro-library operating system construction kit (Kuenzer et al.,
// EuroSys'21) over a deterministic full-system simulator.
//
// The typical pipeline mirrors the paper's workflow:
//
//	cat := unikraft.Catalog()                  // micro-library catalog
//	img, _ := unikraft.BuildApp("nginx", "kvm",
//	    unikraft.BuildOptions{DCE: true, LTO: true})
//	vm, _ := unikraft.BootApp("nginx", unikraft.BootOptions{})
//	defer vm.Close()
//	fmt.Println(img.Bytes, vm.Report.Total())
//
// Everything the paper's evaluation measures is regenerable through
// RunExperiment / Experiments; see EXPERIMENTS.md for paper-vs-measured.
package unikraft

import (
	"fmt"
	"time"

	_ "unikraft/internal/allocators/bootalloc"
	_ "unikraft/internal/allocators/buddy"
	_ "unikraft/internal/allocators/mimalloc"
	_ "unikraft/internal/allocators/tinyalloc"
	_ "unikraft/internal/allocators/tlsf"
	"unikraft/internal/core"
	"unikraft/internal/experiments"
	"unikraft/internal/sim"
	"unikraft/internal/ukalloc"
	"unikraft/internal/ukboot"
	"unikraft/internal/ukbuild"
	"unikraft/internal/ukplat"
)

// BuildOptions are the link-time switches from the paper's Fig 8 sweep.
type BuildOptions = ukbuild.Options

// Image is a linked unikernel image.
type Image = ukbuild.Image

// VM is a booted unikernel instance.
type VM = ukboot.VM

// BootReport is the timing breakdown of a boot.
type BootReport = ukboot.Report

// ExperimentResult is a regenerated table/figure.
type ExperimentResult = experiments.Result

// Platform names accepted by BuildApp/BootApp.
const (
	PlatformKVM    = "kvm"
	PlatformXen    = "xen"
	PlatformLinuxU = "linuxu"
)

// Allocator backend names (the five ukalloc backends of §3.2/§5.5).
var Allocators = []string{"buddy", "tlsf", "tinyalloc", "mimalloc", "bootalloc"}

// Apps lists the canonical application profiles (helloworld, nginx,
// redis, sqlite, webcache, udpkv).
func Apps() []string {
	var out []string
	for _, a := range core.Apps() {
		out = append(out, a.Name)
	}
	return out
}

// Catalog returns the calibrated micro-library catalog.
func Catalog() *core.Catalog { return core.DefaultCatalog() }

// BuildApp resolves and links an application image for a platform.
func BuildApp(app, platform string, opts BuildOptions) (*Image, error) {
	profile, ok := core.AppByName(app)
	if !ok {
		return nil, fmt.Errorf("unikraft: unknown app %q (have %v)", app, Apps())
	}
	return ukbuild.Build(core.DefaultCatalog(), profile, platform, opts)
}

// BootOptions parameterize BootApp.
type BootOptions struct {
	// VMM selects the monitor: "qemu" (default), "qemu-microvm",
	// "firecracker", "solo5-hvt", "xl".
	VMM string
	// MemBytes is guest memory (default 64 MiB).
	MemBytes int
	// Allocator overrides the app profile's ukalloc backend.
	Allocator string
	// DynamicPageTable selects §6.1's dynamic paging (default static).
	DynamicPageTable bool
	// Mount9pfs adds the virtio-9p mount step.
	Mount9pfs bool
}

// BootApp builds and boots an application image, returning the VM with
// its timing report. The caller must Close the VM.
func BootApp(app string, opts BootOptions) (*VM, error) {
	profile, ok := core.AppByName(app)
	if !ok {
		return nil, fmt.Errorf("unikraft: unknown app %q (have %v)", app, Apps())
	}
	platform := ukplat.KVMQemu
	if opts.VMM != "" {
		p, found := ukplat.ByVMM(opts.VMM)
		if !found {
			return nil, fmt.Errorf("unikraft: unknown VMM %q", opts.VMM)
		}
		platform = p
	}
	img, err := ukbuild.Build(core.DefaultCatalog(), profile, platform.Name, BuildOptions{DCE: true, LTO: true})
	if err != nil {
		return nil, err
	}
	mem := opts.MemBytes
	if mem == 0 {
		mem = 64 << 20
	}
	alloc := opts.Allocator
	if alloc == "" {
		alloc = backendOf(profile.Allocator)
	}
	pt := ukboot.PTStatic
	if opts.DynamicPageTable {
		pt = ukboot.PTDynamic
	}
	cfg := ukboot.Config{
		Platform:   platform,
		MemBytes:   mem,
		ImageBytes: img.Bytes,
		PTMode:     pt,
		Allocator:  alloc,
		NICs:       profile.NICs,
		Mount9pfs:  opts.Mount9pfs,
	}
	if profile.NICs > 0 {
		cfg.Libs = append(cfg.Libs, "lwip")
	}
	cfg.Libs = append(cfg.Libs, "vfscore", "ramfs")
	if profile.Scheduler != "" {
		cfg.Libs = append(cfg.Libs, "uksched")
	}
	return ukboot.Boot(sim.NewMachine(), cfg)
}

// backendOf maps catalog provider names to ukalloc backend names.
func backendOf(provider string) string {
	switch provider {
	case "ukallocbuddy":
		return "buddy"
	case "ukalloctlsf":
		return "tlsf"
	case "ukalloctiny":
		return "tinyalloc"
	case "ukallocmim":
		return "mimalloc"
	case "ukallocboot":
		return "bootalloc"
	}
	return "tlsf"
}

// NewAllocator builds and initializes a named ukalloc backend over a
// fresh heap (for library users who want just an allocator).
func NewAllocator(name string, heapBytes int) (ukalloc.Allocator, error) {
	a, err := ukalloc.NewBackend(name, nil)
	if err != nil {
		return nil, err
	}
	if err := a.Init(make([]byte, heapBytes)); err != nil {
		return nil, err
	}
	return a, nil
}

// Experiments lists the regenerable tables/figures.
func Experiments() []string { return experiments.IDs() }

// ExperimentTitle returns an experiment's display title.
func ExperimentTitle(id string) string { return experiments.Title(id) }

// RunExperiment regenerates one table/figure by ID ("fig12", "tab1"...).
func RunExperiment(id string) (*ExperimentResult, error) {
	return experiments.Run(id)
}

// MinMemory probes the minimum guest memory for an app (Fig 11).
func MinMemory(app string) (int, error) {
	profile, ok := core.AppByName(app)
	if !ok {
		return 0, fmt.Errorf("unikraft: unknown app %q", app)
	}
	img, err := ukbuild.Build(core.DefaultCatalog(), profile, "kvm", BuildOptions{})
	if err != nil {
		return 0, err
	}
	floors := map[string]int{"helloworld": 256 << 10, "nginx": 2 << 20, "redis": 4 << 20, "sqlite": 1 << 20}
	floor := floors[app]
	if floor == 0 {
		floor = 1 << 20
	}
	return ukboot.MinMemory(ukboot.Config{
		Platform:   ukplat.KVMQemu,
		ImageBytes: img.Bytes,
		PTMode:     ukboot.PTStatic,
		Allocator:  "tlsf",
	}, floor)
}

// Version is the library version string.
const Version = "1.0.0"

// DefaultCPUHz is the simulated clock rate (the paper's i7-9700K).
const DefaultCPUHz = sim.DefaultHz

// FormatBootReport renders a boot report breakdown.
func FormatBootReport(r BootReport) string {
	out := fmt.Sprintf("vmm %v + guest %v = total %v\n", r.VMM, r.Guest, r.Total())
	for _, s := range r.Steps {
		out += fmt.Sprintf("  %-16s %10v\n", s.Name, s.Duration)
	}
	return out
}

// Since is a tiny helper for examples measuring virtual durations.
func Since(d time.Duration) string { return d.String() }
