// Package unikraft is the public API of the Unikraft reproduction: a
// micro-library operating system construction kit (Kuenzer et al.,
// EuroSys'21) over a deterministic full-system simulator.
//
// The SDK is built around two concepts. A Spec declaratively describes
// one unikernel — the application, platform, monitor, allocator, memory
// and build flags, the programmatic analog of a kraftfile — and a
// Runtime owns the catalog and simulator and turns specs into images and
// running VMs:
//
//	rt := unikraft.NewRuntime()
//	spec := unikraft.NewSpec("nginx",
//	    unikraft.WithPlatform(unikraft.PlatformKVM),
//	    unikraft.WithAllocator("tlsf"),
//	    unikraft.WithDCE(), unikraft.WithLTO())
//	img, _ := rt.Build(spec)                   // linked image (Fig 8 pipeline)
//	inst, _ := rt.Run(spec)                    // build + boot in one call
//	defer inst.Close()
//	fmt.Println(img.Bytes, inst.VM.Report.Total())
//
// New workloads register without touching the core catalog:
//
//	unikraft.RegisterLibrary("app-myapp", unikraft.LibraryConfig{
//	    UsedBytes: 64 << 10, App: true, Deps: []string{"ukboot"}})
//	unikraft.RegisterApp(unikraft.AppProfile{Name: "myapp", Lib: "app-myapp"})
//	inst, _ := rt.Run(unikraft.NewSpec("myapp"))
//
// Everything the paper's evaluation measures is regenerable through
// Runtime.RunExperiment / Runtime.RunAllExperiments; see EXPERIMENTS.md
// for paper-vs-measured.
package unikraft

import (
	"fmt"
	"time"

	_ "unikraft/internal/allocators/bootalloc"
	_ "unikraft/internal/allocators/buddy"
	_ "unikraft/internal/allocators/mimalloc"
	_ "unikraft/internal/allocators/tinyalloc"
	_ "unikraft/internal/allocators/tlsf"
	"unikraft/internal/core"
	"unikraft/internal/experiments"
	"unikraft/internal/sim"
	"unikraft/internal/ukalloc"
	"unikraft/internal/ukboot"
	"unikraft/internal/ukbuild"
)

// BuildOptions are the link-time switches from the paper's Fig 8 sweep.
type BuildOptions = ukbuild.Options

// Image is a linked unikernel image.
type Image = ukbuild.Image

// VM is a booted unikernel instance.
type VM = ukboot.VM

// BootReport is the timing breakdown of a boot.
type BootReport = ukboot.Report

// ExperimentResult is a regenerated table/figure.
type ExperimentResult = experiments.Result

// AppProfile describes a buildable application target for RegisterApp.
type AppProfile = core.AppProfile

// LibraryConfig describes a custom micro-library for RegisterLibrary.
type LibraryConfig = core.LibraryConfig

// Platform names accepted by specs.
const (
	PlatformKVM    = "kvm"
	PlatformXen    = "xen"
	PlatformSolo5  = "solo5"
	PlatformLinuxU = "linuxu"
)

// Allocators lists the currently registered ukalloc backends (the five
// backends of §3.2/§5.5 plus any added via ukalloc.RegisterBackend),
// sorted.
func Allocators() []string { return ukalloc.BackendNames() }

// Apps lists the registered application profiles, sorted.
func Apps() []string { return core.AppNames() }

// Catalog returns the calibrated micro-library catalog (including
// libraries added via RegisterLibrary).
func Catalog() *core.Catalog { return core.DefaultCatalog() }

// RegisterApp adds an application profile to the app registry so specs
// can name it; its Lib must exist in the catalog (see RegisterLibrary).
func RegisterApp(p AppProfile) error { return core.RegisterApp(p) }

// RegisterLibrary adds a custom micro-library to every catalog built
// after the call.
func RegisterLibrary(name string, cfg LibraryConfig) error {
	return core.RegisterLibrary(name, cfg)
}

// BuildApp resolves and links an application image for a platform.
//
// Deprecated: use NewRuntime and Runtime.Build with a Spec.
func BuildApp(app, platform string, opts BuildOptions) (*Image, error) {
	return NewRuntime().Build(NewSpec(app,
		WithPlatform(platform), WithBuildFlags(opts.DCE, opts.LTO)))
}

// BootOptions parameterize BootApp.
//
// Deprecated: use a Spec with functional options instead.
type BootOptions struct {
	// VMM selects the monitor: "qemu" (default), "qemu-microvm",
	// "firecracker", "solo5-hvt", "xl".
	VMM string
	// MemBytes is guest memory (default 64 MiB).
	MemBytes int
	// Allocator overrides the app profile's ukalloc backend.
	Allocator string
	// DynamicPageTable selects §6.1's dynamic paging (default static).
	DynamicPageTable bool
	// Mount9pfs adds the virtio-9p mount step.
	Mount9pfs bool
}

// BootApp builds and boots an application image, returning the VM with
// its timing report. The caller must Close the VM.
//
// Deprecated: use NewRuntime and Runtime.Boot (or Runtime.Run) with a
// Spec.
func BootApp(app string, opts BootOptions) (*VM, error) {
	spec := NewSpec(app, WithDCE(), WithLTO())
	if opts.VMM != "" {
		spec = spec.With(WithVMM(opts.VMM))
	}
	if opts.MemBytes != 0 {
		spec = spec.With(WithMemory(opts.MemBytes))
	}
	if opts.Allocator != "" {
		spec = spec.With(WithAllocator(opts.Allocator))
	}
	if opts.DynamicPageTable {
		spec = spec.With(WithDynamicPageTable())
	}
	if opts.Mount9pfs {
		spec = spec.With(With9pfs())
	}
	return NewRuntime().Boot(spec)
}

// NewAllocator builds and initializes a named ukalloc backend over a
// fresh heap (for library users who want just an allocator). Backend and
// catalog provider names are both accepted.
func NewAllocator(name string, heapBytes int) (ukalloc.Allocator, error) {
	return ukalloc.NewInitialized(name, nil, heapBytes)
}

// Experiments lists the regenerable tables/figures.
func Experiments() []string { return experiments.IDs() }

// ExperimentTitle returns an experiment's display title.
func ExperimentTitle(id string) string { return experiments.Title(id) }

// RunExperiment regenerates one table/figure by ID ("fig12", "tab1"...)
// against a default runtime.
//
// Deprecated: use NewRuntime and Runtime.RunExperiment.
func RunExperiment(id string) (*ExperimentResult, error) {
	return NewRuntime().RunExperiment(id)
}

// MinMemory probes the minimum guest memory for an app (Fig 11).
//
// Deprecated: use NewRuntime and Runtime.MinMemory with a Spec.
func MinMemory(app string) (int, error) {
	return NewRuntime().MinMemory(NewSpec(app, WithAllocator("tlsf")))
}

// Version is the library version string.
const Version = "2.0.0"

// DefaultCPUHz is the simulated clock rate (the paper's i7-9700K).
const DefaultCPUHz = sim.DefaultHz

// FormatBootReport renders a boot report breakdown.
func FormatBootReport(r BootReport) string {
	out := fmt.Sprintf("vmm %v + guest %v = total %v\n", r.VMM, r.Guest, r.Total())
	for _, s := range r.Steps {
		out += fmt.Sprintf("  %-16s %10v\n", s.Name, s.Duration)
	}
	return out
}

// Since is a tiny helper for examples measuring virtual durations.
func Since(d time.Duration) string { return d.String() }
