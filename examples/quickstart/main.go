// Quickstart: the Spec/Runtime pipeline end to end. Build a specialized
// helloworld unikernel for two platforms, sweep the Fig 8 link flags,
// boot it under several VMMs (Fig 10), and register a brand-new
// application without touching the core catalog — the paper's "easy
// specialization" claim as a dozen library calls.
package main

import (
	"fmt"
	"log"

	"unikraft"
)

func main() {
	rt := unikraft.NewRuntime()

	fmt.Println("== building helloworld images (Fig 8 pipeline) ==")
	for _, platform := range []string{unikraft.PlatformKVM, unikraft.PlatformXen} {
		base := unikraft.NewSpec("helloworld", unikraft.WithPlatform(platform))
		for _, spec := range []unikraft.Spec{base, base.With(unikraft.WithDCE(), unikraft.WithLTO())} {
			img, err := rt.Build(spec)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-6s dce=%-5v lto=%-5v -> %7.1fKB (%d micro-libraries, %d symbols)\n",
				platform, spec.DCE, spec.LTO, float64(img.Bytes)/1024, len(img.Libs), img.Symbols)
		}
	}

	fmt.Println("\n== booting under different VMMs (Fig 10) ==")
	for _, vmm := range []string{"qemu", "qemu-microvm", "firecracker", "solo5-hvt"} {
		inst, err := rt.Run(unikraft.NewSpec("helloworld",
			unikraft.WithVMM(vmm), unikraft.WithMemory(8<<20),
			unikraft.WithDCE(), unikraft.WithLTO()))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s vmm=%-10v guest=%-10v total=%v\n",
			vmm, inst.VM.Report.VMM, inst.VM.Report.Guest, inst.VM.Report.Total())
		inst.Close()
	}

	fmt.Println("\n== guest boot breakdown (qemu) ==")
	vm, err := rt.Boot(unikraft.NewSpec("helloworld", unikraft.WithMemory(8<<20)))
	if err != nil {
		log.Fatal(err)
	}
	defer vm.Close()
	fmt.Print(unikraft.FormatBootReport(vm.Report))

	min, err := rt.MinMemory(unikraft.NewSpec("helloworld", unikraft.WithAllocator("tlsf")))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nminimum memory to boot helloworld: %dMB (paper Fig 11: 2MB)\n", min>>20)

	// A new workload is a registration, not a core patch: a tiny UDP
	// echo app linked against the netstack.
	fmt.Println("\n== registering a custom app ==")
	if err := unikraft.RegisterLibrary("app-udpecho", unikraft.LibraryConfig{
		UsedBytes: 16 << 10, UnusedBytes: 4 << 10, App: true,
		Needs: []string{"libc", "ukalloc"},
		Deps:  []string{"uknetdev", "ukboot"},
	}); err != nil {
		log.Fatal(err)
	}
	if err := unikraft.RegisterApp(unikraft.AppProfile{
		Name: "udpecho", Lib: "app-udpecho", Allocator: "ukallocboot", NICs: 1,
	}); err != nil {
		log.Fatal(err)
	}
	inst, err := rt.Run(unikraft.NewSpec("udpecho",
		unikraft.WithDCE(), unikraft.WithLTO(), unikraft.WithMemory(8<<20)))
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()
	fmt.Printf("  udpecho image %0.1fKB, booted in %v (apps now: %v)\n",
		float64(inst.Image.Bytes)/1024, inst.VM.Report.Total(), rt.Apps())
}
