// Quickstart: build a specialized helloworld unikernel for three
// platforms, inspect the image sizes with and without dead code
// elimination, and boot it under several VMMs — the paper's §3 and
// Fig 10 pipeline in a dozen lines of library calls.
package main

import (
	"fmt"
	"log"

	"unikraft"
)

func main() {
	fmt.Println("== building helloworld images (Fig 8 pipeline) ==")
	for _, platform := range []string{unikraft.PlatformKVM, unikraft.PlatformXen} {
		for _, opts := range []unikraft.BuildOptions{{}, {DCE: true, LTO: true}} {
			img, err := unikraft.BuildApp("helloworld", platform, opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-6s dce=%-5v lto=%-5v -> %7.1fKB (%d micro-libraries, %d symbols)\n",
				platform, opts.DCE, opts.LTO, float64(img.Bytes)/1024, len(img.Libs), img.Symbols)
		}
	}

	fmt.Println("\n== booting under different VMMs (Fig 10) ==")
	for _, vmm := range []string{"qemu", "qemu-microvm", "firecracker", "solo5-hvt"} {
		vm, err := unikraft.BootApp("helloworld", unikraft.BootOptions{VMM: vmm, MemBytes: 8 << 20})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s vmm=%-10v guest=%-10v total=%v\n",
			vmm, vm.Report.VMM, vm.Report.Guest, vm.Report.Total())
		vm.Close()
	}

	fmt.Println("\n== guest boot breakdown (qemu) ==")
	vm, err := unikraft.BootApp("helloworld", unikraft.BootOptions{MemBytes: 8 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer vm.Close()
	fmt.Print(unikraft.FormatBootReport(vm.Report))

	min, err := unikraft.MinMemory("helloworld")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nminimum memory to boot helloworld: %dMB (paper Fig 11: 2MB)\n", min>>20)
}
