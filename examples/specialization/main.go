// Specialization: the paper's §6.4 story as a program. The same UDP
// key-value store is served twice — once through the full socket path
// (netstack + socket layer), once coded directly against the uknetdev
// API in polling mode — and the per-request CPU budgets are compared.
// This is Table 4's 20x specialization win.
package main

import (
	"fmt"
	"log"

	"unikraft"
	"unikraft/internal/apps/udpkv"
	"unikraft/internal/netstack"
	"unikraft/internal/sim"
	"unikraft/internal/uknetdev"
)

const requests = 4000

func socketPath() (float64, error) {
	cm, sm := sim.NewMachine(), sim.NewMachine()
	cd, sd, err := uknetdev.NewPair(cm, sm, uknetdev.VhostUser)
	if err != nil {
		return 0, err
	}
	client := netstack.New(cm, cd, netstack.Config{Addr: netstack.IP(10, 0, 0, 1)})
	server := netstack.New(sm, sd, netstack.Config{
		Addr:                   netstack.IP(10, 0, 0, 2),
		PerDatagramSocketExtra: 4300, // lwIP socket-layer cost (see Table 4)
	})
	srv, err := udpkv.NewSocketServer(server, 5000, udpkv.NewStore())
	if err != nil {
		return 0, err
	}
	cli, err := udpkv.NewClient(client, netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 5000})
	if err != nil {
		return 0, err
	}
	cli.Set("motd", []byte("hello"))
	netstack.Pump(client, server)
	srv.Poll()
	netstack.Pump(client, server)
	cli.Drain()

	start := sm.CPU.Cycles()
	done := 0
	for done < requests {
		for i := 0; i < 32; i++ {
			cli.Get("motd")
		}
		netstack.Pump(client, server)
		srv.Poll()
		netstack.Pump(client, server)
		done += len(cli.Drain())
	}
	return float64(sm.CPU.Hz) / (float64(sm.CPU.Cycles()-start) / float64(done)), nil
}

func rawPath() (float64, error) {
	cm, sm := sim.NewMachine(), sim.NewMachine()
	cd, sd, err := uknetdev.NewPair(cm, sm, uknetdev.VhostUser)
	if err != nil {
		return 0, err
	}
	client := netstack.New(cm, cd, netstack.Config{Addr: netstack.IP(10, 0, 0, 1)})
	srv := udpkv.NewRawServer(sd, netstack.IP(10, 0, 0, 2), 5000, udpkv.NewStore())
	cli, err := udpkv.NewClient(client, netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 5000})
	if err != nil {
		return 0, err
	}
	cli.Set("motd", []byte("hello"))
	client.Poll()
	srv.Poll()
	client.Poll()
	cli.Drain()

	start := sm.CPU.Cycles()
	done := 0
	for done < requests {
		for i := 0; i < 32; i++ {
			cli.Get("motd")
		}
		client.Poll()
		srv.Poll()
		client.Poll()
		done += len(cli.Drain())
	}
	return float64(sm.CPU.Hz) / (float64(sm.CPU.Cycles()-start) / float64(done)), nil
}

func main() {
	// The image half of the story: the specialized udpkv profile links
	// directly against uknetdev, while the general nginx profile carries
	// the whole socket + netstack stack.
	rt := unikraft.NewRuntime()
	for _, app := range []string{"udpkv", "nginx"} {
		img, err := rt.Build(unikraft.NewSpec(app, unikraft.WithDCE(), unikraft.WithLTO()))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %7.1fKB (%d micro-libraries)\n",
			app+" image:", float64(img.Bytes)/1024, len(img.Libs))
	}
	fmt.Println()

	sock, err := socketPath()
	if err != nil {
		log.Fatal(err)
	}
	raw, err := rawPath()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("socket path (lwip-style):    %8.0fK req/s\n", sock/1e3)
	fmt.Printf("specialized uknetdev path:   %8.0fK req/s\n", raw/1e3)
	fmt.Printf("specialization speedup:      %8.1fx\n", raw/sock)
	fmt.Println("(paper Table 4: 319K vs 6.3M req/s, ~20x)")
}
