// SQL database: the SQLite-analogue engine run over two ukalloc
// backends, demonstrating the paper's allocator-specialization result
// (§5.5, Fig 16): tinyalloc wins small workloads, a general-purpose
// allocator wins sustained ones — and the right pick is one Kconfig
// option away.
package main

import (
	"fmt"
	"log"

	"unikraft"
	"unikraft/internal/apps/sqldb"
	"unikraft/internal/sim"
	"unikraft/internal/ukalloc"
)

func insertRun(allocName string, rows int) (float64, error) {
	m := sim.NewMachine()
	a, err := ukalloc.NewInitialized(allocName, m, 128<<20)
	if err != nil {
		return 0, err
	}
	db := sqldb.New(a)
	if _, err := db.Exec("CREATE TABLE users (id INT, name TEXT, email TEXT)"); err != nil {
		return 0, err
	}
	for i := 0; i < rows; i++ {
		stmt := fmt.Sprintf("INSERT INTO users VALUES (%d, 'user%d', 'user%d@example.org')", i, i, i)
		if _, err := db.Exec(stmt); err != nil {
			return 0, err
		}
	}
	// Sanity: query back through the engine.
	res, err := db.Exec("SELECT COUNT(*) FROM users")
	if err != nil {
		return 0, err
	}
	if got := res.Rows[0][0].Int; got != int64(rows) {
		return 0, fmt.Errorf("row count %d, want %d", got, rows)
	}
	return m.CPU.Now().Seconds(), nil
}

func main() {
	// The sqlite profile, specialized two ways: the allocator is one
	// spec option, and the image/boot cost of each choice falls out of
	// the same pipeline that runs the workload.
	rt := unikraft.NewRuntime()
	for _, alloc := range []string{"tinyalloc", "mimalloc"} {
		inst, err := rt.Run(unikraft.NewSpec("sqlite",
			unikraft.WithAllocator(alloc),
			unikraft.WithDCE(), unikraft.WithLTO()))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sqlite_%-10s image=%7.1fKB guest-boot=%v\n",
			alloc, float64(inst.Image.Bytes)/1024, inst.VM.Report.Guest)
		inst.Close()
	}

	fmt.Println("\nINSERT workload, virtual seconds on the 3.6GHz simulated core:")
	for _, rows := range []int{100, 5000, 20000} {
		fmt.Printf("  %6d rows:", rows)
		for _, alloc := range []string{"tinyalloc", "mimalloc"} {
			secs, err := insertRun(alloc, rows)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s=%.4fs", alloc, secs)
		}
		fmt.Println()
	}
	fmt.Println("(Fig 16 shape: tinyalloc ahead at small row counts, behind under load)")

	// And a taste of the SQL surface.
	a, err := unikraft.NewAllocator("mimalloc", 16<<20)
	if err != nil {
		log.Fatal(err)
	}
	db := sqldb.New(a)
	must := func(sql string) *sqldb.Result {
		r, err := db.Exec(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return r
	}
	must("CREATE TABLE kv (k TEXT, v INT)")
	must("INSERT INTO kv VALUES ('answer', 42), ('pi', 3)")
	r := must("SELECT v FROM kv WHERE k = 'answer'")
	fmt.Printf("\nSELECT v FROM kv WHERE k = 'answer' -> %v\n", r.Rows[0][0].Int)
}
