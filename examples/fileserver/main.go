// Fileserver: mount a populated root filesystem per Spec (ramfs through
// vfscore vs the specialized SHFS volume), serve a small static site
// through the HTTP server's file backends, and print per-backend
// throughput — the Fig 22 open-cost gap driven end to end through the
// serving datapath, plus the zero-copy sendfile path against the
// copying read. `go run ./cmd/ukbench fileserve` is the full
// experiment; this is the minimal runnable walkthrough.
package main

import (
	"fmt"
	"log"

	"unikraft"
	"unikraft/internal/apps/httpd"
	"unikraft/internal/netstack"
	"unikraft/internal/ramfs"
	"unikraft/internal/shfs"
	"unikraft/internal/sim"
	"unikraft/internal/ukalloc"
	"unikraft/internal/ukboot"
	"unikraft/internal/uknetdev"
	"unikraft/internal/vfscore"
)

// site is the content both backends serve.
func site() map[string][]byte {
	files := map[string][]byte{"/index.html": httpd.DefaultPage}
	for i := 0; i < 8; i++ {
		page := make([]byte, 4096)
		for j := range page {
			page[j] = byte('a' + (i+j)%26)
		}
		files[fmt.Sprintf("/page%d.html", i)] = page
	}
	return files
}

// bootFS builds and boots a spec whose VMs own a live filesystem, and
// shows what the boot pipeline mounted.
func bootFS(rt *unikraft.Runtime, rootfs string) {
	spec := unikraft.NewSpec("nginx",
		unikraft.WithRootFS(rootfs),
		unikraft.WithFiles(site()),
		unikraft.WithDCE(), unikraft.WithLTO())
	if rootfs != "shfs" {
		spec = spec.With(unikraft.WithPageCache(256))
	}
	inst, err := rt.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()
	switch {
	case inst.VM.SHFS != nil:
		fmt.Printf("  %-6s boot=%-12v volume: %d objects, sealed=%v\n",
			rootfs, inst.VM.Report.Guest, inst.VM.SHFS.Count(), inst.VM.SHFS.Sealed())
	case inst.VM.VFS != nil:
		st, _ := inst.VM.VFS.StatPath("/index.html")
		fmt.Printf("  %-6s boot=%-12v /index.html: %d bytes via %s\n",
			rootfs, inst.VM.Report.Guest, st.Size, inst.VM.RootFS.FSName())
	}
}

// serve measures one backend/datapath configuration: requests of a
// small file mix through the HTTP file server over a virtio pair.
func serve(backendName string, sendfile bool, requests int) (float64, error) {
	clientM, serverM := sim.NewMachine(), sim.NewMachine()
	tuning := uknetdev.Tuning{}
	if sendfile {
		tuning.TxKickBatch = 8
	}
	clientDev, serverDev, err := uknetdev.NewTunedPair(clientM, serverM, uknetdev.VhostNet, tuning)
	if err != nil {
		return 0, err
	}
	client := netstack.New(clientM, clientDev, netstack.Config{Addr: netstack.IP(10, 0, 0, 1), ZeroCopy: sendfile})
	server := netstack.New(serverM, serverDev, netstack.Config{Addr: netstack.IP(10, 0, 0, 2), ZeroCopy: sendfile})
	alloc, err := ukalloc.NewInitialized("tlsf", serverM, 64<<20)
	if err != nil {
		return 0, err
	}

	// The backends are built the same way ukboot mounts them per Spec;
	// here they are wired by hand so the whole datapath is visible.
	var backend httpd.FileBackend
	if backendName == "shfs" {
		vol := unikraftSHFS(serverM)
		backend = &httpd.SHFSFiles{Vol: vol}
	} else {
		v := unikraftVFS(serverM)
		backend = &httpd.VFSFiles{VFS: v}
	}
	srv, err := httpd.NewFileServer(server, alloc, 80, backend, sendfile)
	if err != nil {
		return 0, err
	}
	gen := httpd.NewLoadGen(client, netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 80}, 30)
	gen.SetPaths([]string{"/index.html", "/page0.html", "/page1.html", "/page2.html"})

	pump := func() {
		for {
			moved := client.Poll() + server.Poll()
			srv.Poll()
			moved += server.Poll() + client.Poll()
			moved += gen.Collect()
			if moved == 0 {
				return
			}
		}
	}
	pump()
	if !gen.Ready() {
		return 0, fmt.Errorf("connections failed")
	}
	start := serverM.CPU.Cycles()
	for gen.Completed < uint64(requests) {
		gen.Fire(1)
		pump()
	}
	cyclesPerReq := float64(serverM.CPU.Cycles()-start) / float64(gen.Completed)
	return float64(serverM.CPU.Hz) / cyclesPerReq, nil
}

// unikraftVFS builds the vfscore backend: a populated ramfs behind a
// VFS with the page cache on.
func unikraftVFS(m *sim.Machine) *vfscore.VFS {
	fs := ramfs.New()
	if err := ukboot.PopulateRamfs(fs, site()); err != nil {
		log.Fatal(err)
	}
	v := vfscore.New(m)
	if err := v.Mount("/", fs); err != nil {
		log.Fatal(err)
	}
	v.EnablePageCache(256)
	return v
}

// unikraftSHFS builds the specialized backend: a sealed hash volume.
func unikraftSHFS(m *sim.Machine) *shfs.FS {
	vol := shfs.New(m, 64)
	for path, data := range site() {
		if err := vol.Add(path, data); err != nil {
			log.Fatal(err)
		}
	}
	vol.Seal()
	return vol
}

func main() {
	rt := unikraft.NewRuntime()
	fmt.Println("Booting file-serving specs (WithRootFS/WithFiles):")
	for _, rootfs := range []string{"ramfs", "shfs", "9pfs"} {
		bootFS(rt, rootfs)
	}

	const requests = 2000
	fmt.Println("\nServing a 4-file mix, 30 keep-alive connections:")
	type cfg struct {
		backend  string
		sendfile bool
		label    string
	}
	var baseline float64
	for _, c := range []cfg{
		{"vfscore", false, "vfscore + copying read"},
		{"vfscore", true, "vfscore + zero-copy sendfile"},
		{"shfs", true, "shfs    + zero-copy sendfile"},
	} {
		rate, err := serve(c.backend, c.sendfile, requests)
		if err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline = rate
		}
		fmt.Printf("  %-30s %8.1fK req/s  (%.2fx)\n", c.label, rate/1e3, rate/baseline)
	}
	fmt.Println("\n(Fig 22: SHFS opens ~5x cheaper than the VFS path; the fileserve")
	fmt.Println(" experiment holds that band end to end and gates it in CI)")
}
