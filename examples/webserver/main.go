// Webserver: build and boot the nginx profile through the Runtime SDK
// for two allocator choices, then drive the HTTP server analogue with a
// wrk-style load generator over the virtio pair — the Fig 13 / Fig 14 /
// Fig 15 scenario as a runnable program.
package main

import (
	"fmt"
	"log"

	"unikraft"
	"unikraft/internal/apps/httpd"
	"unikraft/internal/netstack"
	"unikraft/internal/sim"
	"unikraft/internal/ukalloc"
	"unikraft/internal/uknetdev"
)

func run(allocName string, requests int) (float64, error) {
	clientM, serverM := sim.NewMachine(), sim.NewMachine()
	clientDev, serverDev, err := uknetdev.NewPair(clientM, serverM, uknetdev.VhostNet)
	if err != nil {
		return 0, err
	}
	client := netstack.New(clientM, clientDev, netstack.Config{Addr: netstack.IP(10, 0, 0, 1)})
	server := netstack.New(serverM, serverDev, netstack.Config{Addr: netstack.IP(10, 0, 0, 2)})

	alloc, err := ukalloc.NewInitialized(allocName, serverM, 64<<20)
	if err != nil {
		return 0, err
	}
	srv, err := httpd.New(server, alloc, 80, nil)
	if err != nil {
		return 0, err
	}
	gen := httpd.NewLoadGen(client, netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 80}, 30)

	pump := func() {
		for {
			moved := client.Poll() + server.Poll()
			srv.Poll()
			moved += server.Poll() + client.Poll()
			moved += gen.Collect()
			if moved == 0 {
				return
			}
		}
	}
	pump()
	if !gen.Ready() {
		return 0, fmt.Errorf("connections failed")
	}
	start := serverM.CPU.Cycles()
	for gen.Completed < uint64(requests) {
		gen.Fire(1)
		pump()
	}
	cyclesPerReq := float64(serverM.CPU.Cycles()-start) / float64(gen.Completed)
	return float64(serverM.CPU.Hz) / cyclesPerReq, nil
}

func main() {
	const requests = 3000
	rt := unikraft.NewRuntime()
	fmt.Println("HTTP server throughput, 30 keep-alive connections, 612B page:")
	for _, alloc := range []string{"mimalloc", "tinyalloc"} {
		// Boot the nginx image with this allocator to get the Fig 14
		// boot-time side of the trade-off...
		inst, err := rt.Run(unikraft.NewSpec("nginx",
			unikraft.WithAllocator(alloc),
			unikraft.WithDCE(), unikraft.WithLTO()))
		if err != nil {
			log.Fatal(err)
		}
		boot := inst.VM.Report.Guest
		inst.Close()
		// ...then measure steady-state throughput (Fig 15's side).
		rate, err := run(alloc, requests)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  allocator=%-10s boot=%-12v %8.1fK req/s\n", alloc, boot, rate/1e3)
	}
	fmt.Println("(paper Fig 15: mimalloc 291.2K vs tinyalloc 217.1K — a ~25% gap)")
}
