// Cluster: the serving story scaled past one machine. Eight simulated
// hosts sit behind a front-door router; two serve from the start, the
// rest are standby. A diurnal trace with a mid-morning flash crowd
// overwhelms the initial pair, the autoscaler spills to standby hosts —
// activating each by shipping the spec's boot-template snapshot image
// over the cluster link instead of re-booting remotely — and drains
// back down once the crowd passes. Every request is served; none drop.
package main

import (
	"fmt"
	"log"
	"time"

	"unikraft"
)

func main() {
	rt := unikraft.NewRuntime()
	defer rt.Close()

	// A snapshot-boot spec: the template image is what handoff ships.
	// Affinity picks the front-door policy; try "hash" for session
	// stickiness or "round-robin" for the naive spread.
	spec := unikraft.NewSpec("nginx",
		unikraft.WithVMM("firecracker"),
		unikraft.WithMemory(8<<20),
		unikraft.WithDCE(), unikraft.WithLTO(),
		unikraft.WithSnapshotBoot(),
		unikraft.WithAffinity("least-loaded"))

	cluster, err := rt.NewCluster(spec,
		unikraft.WithHosts(8),
		unikraft.WithActiveHosts(2),
		unikraft.WithCoresPerHost(2),
		unikraft.WithHostPoolOptions(
			unikraft.WithPoolWarm(8), unikraft.WithPoolMaxInstances(128)))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// One virtual day in two seconds: load swings 40k..90k req/s, and a
	// flash crowd slams 500k req/s for 250ms starting at t=400ms —
	// roughly 6x what the two initial hosts can absorb.
	trace := func() unikraft.Workload {
		return unikraft.DiurnalWorkload(7, 40_000, 90_000, 2*time.Second,
			400*time.Millisecond, 250*time.Millisecond, 500_000,
			1024, 500_000, 256)
	}

	rep, err := cluster.Serve(trace())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— flash crowd over 8 hosts, snapshot handoff —")
	fmt.Println(rep)
	fmt.Printf("\nspill: %d activations, all by handoff (%d KiB shipped), %d dropped\n",
		rep.Activations, rep.HandoffBytes/1024, rep.Dropped())

	// The counterfactual: no handoff, standby hosts must re-mint the
	// template through the full boot pipeline. Same trace, slower
	// activation — the gap is what shipping the image buys.
	cold, err := rt.NewCluster(spec,
		unikraft.WithHosts(8),
		unikraft.WithActiveHosts(2),
		unikraft.WithCoresPerHost(2),
		unikraft.WithoutHandoff(),
		unikraft.WithHostPoolOptions(
			unikraft.WithPoolWarm(8), unikraft.WithPoolMaxInstances(128)))
	if err != nil {
		log.Fatal(err)
	}
	defer cold.Close()
	crep, err := cold.Serve(trace())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nactivation p50: handoff %v vs remote cold mint %v\n",
		rep.Activation.Quantile(0.5).Round(time.Microsecond),
		crep.Activation.Quantile(0.5).Round(time.Microsecond))
}
