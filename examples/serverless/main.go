// Serverless: the paper's boot-speed numbers (Fig 10/14) turned into a
// request-serving story. A warm pool of Firecracker nginx unikernels
// absorbs steady Poisson traffic almost entirely warm, then a 10x
// burst forces cold boots and autoscaling — the LightVM/Firecracker
// argument for microsecond-scale unikernels as a serverless substrate,
// runnable end to end on the simulator.
package main

import (
	"fmt"
	"log"
	"time"

	"unikraft"
)

func main() {
	rt := unikraft.NewRuntime()
	spec := unikraft.NewSpec("nginx",
		unikraft.WithVMM("firecracker"),
		unikraft.WithMemory(8<<20),
		unikraft.WithDCE(), unikraft.WithLTO())

	pool, err := rt.NewPool(spec,
		unikraft.WithPoolWarm(8),
		unikraft.WithPoolMaxInstances(128))
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	// Steady open-loop load: 200k requests at 150k req/s. The warm set
	// serves nearly everything; a cold boot is the rare tail event.
	rep, err := pool.Serve(unikraft.PoissonWorkload(1, 150_000, 200_000, 256))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— steady poisson —")
	fmt.Println(rep)

	// Bursty load: 8x rate for a fifth of every period. Cold boots pay
	// the full Fig 10 boot pipeline; the autoscaler grows the warm set
	// into the bursts and retires it in the valleys.
	bursty := func() unikraft.Workload {
		return unikraft.BurstyWorkload(2,
			50_000, 400_000, 200*time.Millisecond, 0.2, 200_000, 256)
	}
	rep, err = pool.Serve(bursty())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— bursty 8x —")
	fmt.Println(rep)

	fmt.Printf("\ncold start is %v at p50 — %.0fx a warm request\n",
		rep.Boot.Quantile(0.5).Round(time.Microsecond),
		float64(rep.Boot.Quantile(0.5))/float64(rep.Latency.Quantile(0.5)))

	// Snapshot-fork instantiation: the pool boots one template, then
	// clones the fleet copy-on-write — cold starts drop below a
	// millisecond and the burst tail follows.
	forkPool, err := rt.NewPool(spec.With(unikraft.WithSnapshotBoot()),
		unikraft.WithPoolWarm(8),
		unikraft.WithPoolMaxInstances(128))
	if err != nil {
		log.Fatal(err)
	}
	defer forkPool.Close()
	frep, err := forkPool.Serve(bursty())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n— bursty 8x, snapshot-fork cold starts —")
	fmt.Println(frep)
	fmt.Printf("\nforked cold start %v vs booted %v; p99 %v vs %v\n",
		frep.ColdBoot.Quantile(0.5).Round(time.Microsecond),
		rep.ColdBoot.Quantile(0.5).Round(time.Microsecond),
		frep.Latency.Quantile(0.99).Round(time.Microsecond),
		rep.Latency.Quantile(0.99).Round(time.Microsecond))
}
