package unikraft

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"unikraft/internal/experiments"
)

// TestBaselineByteIdentity: the simulator is deterministic, so the
// committed BENCH_baseline.json must regenerate cell for cell — +0.0%,
// not merely within compare's throughput tolerance. This is the
// regression gate for the engine swap: the timer wheel, the streaming
// histograms and the parallel shard scheduler may change how results
// are computed, never what they are. The engine experiment itself is
// exempt — its wall/ev-s/speedup cells are host measurements, gated
// separately by ukbench -compare.
func TestBaselineByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerating baseline experiments takes minutes")
	}
	raw, err := os.ReadFile("BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var baseline []*ExperimentResult
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatal(err)
	}
	deterministic := map[string]bool{
		"serve": true, "cluster": true, "chaos": true, "overload": true,
	}
	ran := 0
	for _, base := range baseline {
		if !deterministic[base.ID] {
			continue
		}
		ran++
		t.Run(base.ID, func(t *testing.T) {
			cur, err := experiments.Run(experiments.DefaultEnv(), base.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base.Headers, cur.Headers) {
				t.Fatalf("headers drifted:\nbaseline %v\ncurrent  %v", base.Headers, cur.Headers)
			}
			if len(base.Rows) != len(cur.Rows) {
				t.Fatalf("row count drifted: baseline %d, current %d", len(base.Rows), len(cur.Rows))
			}
			for i := range base.Rows {
				if !reflect.DeepEqual(base.Rows[i], cur.Rows[i]) {
					t.Errorf("row %d drifted:\nbaseline %v\ncurrent  %v", i, base.Rows[i], cur.Rows[i])
				}
			}
		})
	}
	if ran != len(deterministic) {
		t.Errorf("baseline holds %d of the %d byte-identity experiments", ran, len(deterministic))
	}
}
