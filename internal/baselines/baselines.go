// Package baselines carries the comparator systems of the paper's
// evaluation. Two kinds of baseline live here:
//
//   - Mechanistic Linux-family models (native, KVM guest, Docker,
//     Firecracker guest): the same application work as the simulated
//     Unikraft image, plus the syscall-trap and kernel-stack costs that
//     Unikraft eliminates. These are computed, not transcribed.
//
//   - Published-number baselines for the five other unikernel projects
//     (OSv, Rump, Lupine, HermiTux, Mirage) and for static properties of
//     all comparators (image size, minimum memory): we cannot rebuild
//     five operating systems, so their paper-reported figures are
//     encoded as data, clearly labelled, and used to render complete
//     figures (DESIGN.md, substitution table).
package baselines

import "unikraft/internal/sim"

// Runtime models the per-request overhead structure of a Linux-family
// runtime relative to the in-process application work.
type Runtime struct {
	Name string
	// SyscallCycles is the trap cost (Table 1: 222 with mitigations).
	SyscallCycles uint64
	// StackPerPacket is the kernel network stack cost per packet
	// (skb handling, qdisc, driver) on the request path.
	StackPerPacket uint64
	// VirtPerPacket is added per packet for virtualized I/O
	// (virtio-net + vhost handoff as seen from the guest's core).
	VirtPerPacket uint64
	// ContainerPerPacket is added per packet for veth/bridge hops.
	ContainerPerPacket uint64
	// AllocPenalty multiplies application allocator work (the glibc
	// allocator versus the unikernel's tuned backend; §5.3 discusses
	// the Mimalloc effect).
	AllocPenalty float64
}

// The Linux-family catalog. StackPerPacket values follow published
// kernel-path breakdowns (a few thousand cycles per packet through
// tcp/ip+driver); virtualization adds the vhost-net handoff.
var (
	LinuxNative = Runtime{
		Name:          "linux-native",
		SyscallCycles: 222, StackPerPacket: 2600,
		AllocPenalty: 1.15,
	}
	LinuxKVMGuest = Runtime{
		Name:          "linux-kvm",
		SyscallCycles: 222, StackPerPacket: 2600, VirtPerPacket: 2100,
		AllocPenalty: 1.15,
	}
	DockerNative = Runtime{
		Name:          "docker",
		SyscallCycles: 222, StackPerPacket: 2600, ContainerPerPacket: 900,
		AllocPenalty: 1.15,
	}
	LinuxFirecracker = Runtime{
		Name:          "linux-firecracker",
		SyscallCycles: 222, StackPerPacket: 2600, VirtPerPacket: 5200,
		AllocPenalty: 1.15,
	}
)

// RequestShape describes one request's interaction pattern, used to
// translate a Runtime into per-request overhead cycles.
type RequestShape struct {
	// Syscalls per request (amortized under pipelining/batching).
	Syscalls float64
	// Packets per request on the server side (rx+tx, amortized:
	// pipelined requests share segments).
	Packets float64
	// AllocCycles of application allocator work per request.
	AllocCycles float64
}

// OverheadCycles computes the runtime's per-request overhead versus an
// in-process (syscall-free) run of the same application.
func (r Runtime) OverheadCycles(s RequestShape) float64 {
	perPacket := float64(r.StackPerPacket + r.VirtPerPacket + r.ContainerPerPacket)
	return s.Syscalls*float64(r.SyscallCycles) +
		s.Packets*perPacket +
		s.AllocCycles*(r.AllocPenalty-1)
}

// Throughput converts application-work cycles plus runtime overhead
// into requests/second on the paper's 3.6GHz core.
func (r Runtime) Throughput(m *sim.Machine, appCyclesPerReq float64, shape RequestShape) float64 {
	total := appCyclesPerReq + r.OverheadCycles(shape)
	return float64(m.CPU.Hz) / total
}

// --- published-number baselines -----------------------------------------

// PaperThroughput records a comparator's published result for one
// application benchmark, in requests/second, as reported in Fig 12/13.
type PaperThroughput struct {
	System   string
	GetRPS   float64 // Fig 12 GET (or Fig 13 req/s in Get field)
	SetRPS   float64 // Fig 12 SET; 0 for nginx
	Source   string
	Measured bool // false = transcribed from the paper
}

// RedisFig12 is the Fig 12 dataset for systems we do not rebuild.
func RedisFig12() []PaperThroughput {
	return []PaperThroughput{
		{System: "hermitux-uhyve", GetRPS: 0.37e6, SetRPS: 0.24e6, Source: "Fig 12"},
		{System: "linux-fc", GetRPS: 1.14e6, SetRPS: 1.06e6, Source: "Fig 12"},
		{System: "lupine-fc", GetRPS: 1.26e6, SetRPS: 0.93e6, Source: "Fig 12"},
		{System: "rump-kvm", GetRPS: 1.33e6, SetRPS: 1.17e6, Source: "Fig 12"},
		{System: "linux-kvm", GetRPS: 1.54e6, SetRPS: 1.31e6, Source: "Fig 12"},
		{System: "lupine-kvm", GetRPS: 1.82e6, SetRPS: 1.52e6, Source: "Fig 12"},
		{System: "docker-native", GetRPS: 1.95e6, SetRPS: 1.68e6, Source: "Fig 12"},
		{System: "osv-kvm", GetRPS: 1.98e6, SetRPS: 1.54e6, Source: "Fig 12"},
		{System: "linux-native", GetRPS: 2.44e6, SetRPS: 2.01e6, Source: "Fig 12"},
		{System: "unikraft-kvm", GetRPS: 2.68e6, SetRPS: 2.26e6, Source: "Fig 12"},
	}
}

// NginxFig13 is the Fig 13 dataset (requests/second).
func NginxFig13() []PaperThroughput {
	return []PaperThroughput{
		{System: "mirage-solo5", GetRPS: 25.9e3, Source: "Fig 13"},
		{System: "linux-fc", GetRPS: 60.1e3, Source: "Fig 13"},
		{System: "lupine-fc", GetRPS: 71.6e3, Source: "Fig 13"},
		{System: "linux-kvm", GetRPS: 104.5e3, Source: "Fig 13"},
		{System: "rump-kvm", GetRPS: 152.6e3, Source: "Fig 13"},
		{System: "docker-native", GetRPS: 160.3e3, Source: "Fig 13"},
		{System: "linux-native", GetRPS: 175.6e3, Source: "Fig 13"},
		{System: "lupine-kvm", GetRPS: 189.0e3, Source: "Fig 13"},
		{System: "osv-kvm", GetRPS: 232.7e3, Source: "Fig 13"},
		{System: "unikraft-kvm", GetRPS: 291.8e3, Source: "Fig 13"},
	}
}

// ImageSize is one Fig 9 bar (stripped images, no LTO/DCE), bytes.
type ImageSize struct {
	System                      string
	Hello, Nginx, Redis, SQLite int // 0 = not reported
}

// Fig9Sizes transcribes the comparative image sizes for other OSes; the
// Unikraft row is computed by our build system.
func Fig9Sizes() []ImageSize {
	const kb = 1024
	mb := func(v float64) int { return int(v * 1024 * 1024) }
	return []ImageSize{
		{System: "hermitux", Hello: 1300 * kb, Redis: 1500 * kb, SQLite: 2100 * kb},
		{System: "linux-userspace", Hello: 16 * kb, Nginx: 1200 * kb, Redis: 1800 * kb, SQLite: 1100 * kb},
		{System: "lupine", Hello: 1700 * kb, Nginx: mb(3.6), Redis: mb(2.6), SQLite: mb(3.2)},
		{System: "mirage", Hello: mb(3.3)},
		{System: "osv", Hello: mb(4.5), Nginx: mb(5.4), Redis: mb(8.1), SQLite: mb(5.4)},
		{System: "rumprun", Hello: mb(2.8), Nginx: mb(5.4), Redis: mb(3.7), SQLite: mb(3.9)},
	}
}

// MinMemory is one Fig 11 bar (MB to boot each app).
type MinMemory struct {
	System                      string
	Hello, Nginx, Redis, SQLite int // MB; 0 = not reported
}

// Fig11MinMemory transcribes the comparative minimum-memory rows; the
// Unikraft row is probed by ukboot.MinMemory.
func Fig11MinMemory() []MinMemory {
	return []MinMemory{
		{System: "docker", Hello: 6, Nginx: 7, Redis: 7, SQLite: 6},
		{System: "rumprun", Hello: 8, Nginx: 12, Redis: 13, SQLite: 10},
		{System: "hermitux", Hello: 11, Nginx: 0, Redis: 13, SQLite: 10},
		{System: "lupine", Hello: 20, Nginx: 21, Redis: 21, SQLite: 21},
		{System: "osv", Hello: 24, Nginx: 26, Redis: 40, SQLite: 26},
		{System: "linux-microvm", Hello: 29, Nginx: 29, Redis: 30, SQLite: 29},
	}
}

// BootTime is a published comparator boot time (§5.1 text).
type BootTime struct {
	System string
	MS     float64
	VMM    string
}

// PublishedBootTimes lists the §5.1 comparison points.
func PublishedBootTimes() []BootTime {
	return []BootTime{
		{System: "mirage", MS: 1.5, VMM: "solo5"},
		{System: "osv", MS: 4.5, VMM: "firecracker"},
		{System: "rump", MS: 14.5, VMM: "solo5"},
		{System: "hermitux", MS: 31, VMM: "uhyve"},
		{System: "lupine", MS: 70, VMM: "firecracker"},
		{System: "lupine-nokml", MS: 18, VMM: "firecracker"},
		{System: "alpine", MS: 330, VMM: "firecracker"},
	}
}

// Table4Row is one row of the UDP key-value store comparison.
type Table4Row struct {
	Setup, Mode string
	ReqPerSec   float64
	Measured    bool
}

// Table4Published lists the rows our substrate cannot run natively
// (bare-metal Linux, Linux guest, DPDK-in-guest); the Unikraft rows are
// measured from the simulator.
func Table4Published() []Table4Row {
	return []Table4Row{
		{Setup: "linux-baremetal", Mode: "single", ReqPerSec: 769e3},
		{Setup: "linux-baremetal", Mode: "batch", ReqPerSec: 1.1e6},
		{Setup: "linux-guest", Mode: "single", ReqPerSec: 418e3},
		{Setup: "linux-guest", Mode: "batch", ReqPerSec: 627e3},
		{Setup: "linux-guest", Mode: "dpdk", ReqPerSec: 6.4e6},
	}
}
