package baselines

import (
	"testing"

	"unikraft/internal/sim"
)

func TestRuntimeOverheadOrdering(t *testing.T) {
	shape := RequestShape{Syscalls: 2, Packets: 2, AllocCycles: 100}
	native := LinuxNative.OverheadCycles(shape)
	docker := DockerNative.OverheadCycles(shape)
	kvm := LinuxKVMGuest.OverheadCycles(shape)
	fc := LinuxFirecracker.OverheadCycles(shape)
	if !(native < docker && docker < kvm && kvm < fc) {
		t.Fatalf("overhead ordering broken: native=%f docker=%f kvm=%f fc=%f", native, docker, kvm, fc)
	}
}

func TestThroughputInversion(t *testing.T) {
	m := sim.NewMachine()
	shape := RequestShape{Syscalls: 2, Packets: 2}
	app := 8000.0
	tn := LinuxNative.Throughput(m, app, shape)
	tk := LinuxKVMGuest.Throughput(m, app, shape)
	if tn <= tk {
		t.Fatalf("native %.0f <= kvm %.0f", tn, tk)
	}
	// Zero overhead = pure app rate.
	bare := Runtime{}
	if got := bare.Throughput(m, app, RequestShape{}); got != float64(m.CPU.Hz)/app {
		t.Fatalf("bare throughput = %f", got)
	}
}

func TestBatchingReducesOverhead(t *testing.T) {
	single := RequestShape{Syscalls: 2, Packets: 2}
	batched := RequestShape{Syscalls: 2.0 / 16, Packets: 2.0 / 16}
	if LinuxKVMGuest.OverheadCycles(batched) >= LinuxKVMGuest.OverheadCycles(single) {
		t.Fatal("batching did not amortize overhead")
	}
}

func TestPaperDatasetsComplete(t *testing.T) {
	if len(RedisFig12()) != 10 {
		t.Fatalf("fig12 rows = %d", len(RedisFig12()))
	}
	if len(NginxFig13()) != 10 {
		t.Fatalf("fig13 rows = %d", len(NginxFig13()))
	}
	// Unikraft tops both charts in the paper's data.
	top12 := RedisFig12()[len(RedisFig12())-1]
	if top12.System != "unikraft-kvm" {
		t.Fatalf("fig12 top = %s", top12.System)
	}
	for _, r := range RedisFig12()[:len(RedisFig12())-1] {
		if r.GetRPS >= top12.GetRPS {
			t.Fatalf("%s above unikraft in fig12 data", r.System)
		}
	}
	if len(Fig9Sizes()) != 6 || len(Fig11MinMemory()) != 6 {
		t.Fatal("comparative datasets incomplete")
	}
	if len(Table4Published()) != 5 {
		t.Fatal("table4 rows missing")
	}
	for _, b := range PublishedBootTimes() {
		if b.MS <= 0 {
			t.Fatalf("%s boot time %f", b.System, b.MS)
		}
	}
}
