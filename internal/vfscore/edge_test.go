package vfscore_test

import (
	"bytes"
	"testing"

	"unikraft/internal/ramfs"
	"unikraft/internal/sim"
	"unikraft/internal/vfscore"
)

// Edge cases the static-file serving path leans on: descriptor-table
// exhaustion under sustained open/close churn (the pool's per-request
// open), OAppend's interaction with Seek, and reads past EOF.

// TestFDTableExhaustion: the fd table fills to its bound, recovers
// per-close, and sustained churn at the bound (the pool's per-request
// open/sendfile/close pattern) never leaks a slot.
func TestFDTableExhaustion(t *testing.T) {
	v, _ := newVFSWithFile(t, "/f.txt", []byte("hello"))
	v.SetMaxFDs(8)
	var fds []int
	for i := 0; i < 8; i++ {
		fd, err := v.Open("/f.txt", vfscore.ORdOnly)
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		fds = append(fds, fd)
	}
	if _, err := v.Open("/f.txt", vfscore.ORdOnly); err != vfscore.ErrTooManyFD {
		t.Fatalf("open past the table = %v, want ErrTooManyFD", err)
	}
	// One close frees exactly one slot, and the freed slot is reused.
	if err := v.Close(fds[3]); err != nil {
		t.Fatal(err)
	}
	fd, err := v.Open("/f.txt", vfscore.ORdOnly)
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	if fd != fds[3] {
		t.Errorf("freed slot not reused: got fd %d, want %d", fd, fds[3])
	}
	if _, err := v.Open("/f.txt", vfscore.ORdOnly); err != vfscore.ErrTooManyFD {
		t.Fatalf("table should be full again, got %v", err)
	}
	// Serving-style churn at the bound: open/read/close a thousand
	// times against one remaining slot. Any leak fails fast.
	if err := v.Close(fd); err != nil {
		t.Fatal(err)
	}
	var buf [8]byte
	for i := 0; i < 1000; i++ {
		fd, err := v.Open("/f.txt", vfscore.ORdOnly)
		if err != nil {
			t.Fatalf("churn open %d: %v", i, err)
		}
		if _, err := v.PRead(fd, buf[:], 0); err != nil {
			t.Fatal(err)
		}
		if err := v.Close(fd); err != nil {
			t.Fatal(err)
		}
	}
	if got := v.OpenFDs(); got != 7 {
		t.Errorf("OpenFDs after churn = %d, want 7", got)
	}
}

// TestAppendSeekInteraction: OAppend pins every write to EOF no matter
// where Seek moved the offset, while reads honor the seeked position —
// POSIX semantics the log-style writers rely on.
func TestAppendSeekInteraction(t *testing.T) {
	v, _ := newVFSWithFile(t, "/log", []byte("base:"))
	fd, err := v.Open("/log", vfscore.OAppend|vfscore.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	// Seek to the start, then write: the write must append, not
	// overwrite.
	if _, err := v.Seek(fd, 0, vfscore.SeekSet); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Write(fd, []byte("one")); err != nil {
		t.Fatal(err)
	}
	// Offset now sits at EOF; seek back and read the whole file.
	if _, err := v.Seek(fd, 0, vfscore.SeekSet); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, err := v.Read(fd, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(buf[:n]); got != "base:one" {
		t.Fatalf("after append+seek, file = %q, want %q", got, "base:one")
	}
	// A second seeked write still appends.
	if _, err := v.Seek(fd, 2, vfscore.SeekSet); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Write(fd, []byte("two")); err != nil {
		t.Fatal(err)
	}
	st, err := v.StatFD(fd)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != int64(len("base:onetwo")) {
		t.Fatalf("size = %d, want %d", st.Size, len("base:onetwo"))
	}
}

// TestPReadPastEOF: positional reads at and past EOF return 0 bytes
// with no error (the EOF convention the sendfile loop terminates on),
// and partial reads straddling EOF are clipped.
func TestPReadPastEOF(t *testing.T) {
	v, _ := newVFSWithFile(t, "/f.txt", []byte("0123456789"))
	fd, err := v.Open("/f.txt", vfscore.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	// Exactly at EOF.
	if n, err := v.PRead(fd, buf, 10); n != 0 || err != nil {
		t.Errorf("PRead at EOF = %d, %v, want 0, nil", n, err)
	}
	// Far past EOF.
	if n, err := v.PRead(fd, buf, 1000); n != 0 || err != nil {
		t.Errorf("PRead past EOF = %d, %v, want 0, nil", n, err)
	}
	// Straddling EOF: clipped, not erroring.
	n, err := v.PRead(fd, buf, 6)
	if err != nil || n != 4 {
		t.Errorf("PRead straddling EOF = %d, %v, want 4, nil", n, err)
	}
	if string(buf[:n]) != "6789" {
		t.Errorf("PRead content = %q", buf[:n])
	}
	// The fd's sequential offset is untouched by positional reads.
	n, err = v.Read(fd, buf)
	if err != nil || string(buf[:n]) != "01234567" {
		t.Errorf("sequential read after PReads = %q, %v", buf[:n], err)
	}
}

// TestVFSReset: Reset drops every descriptor (the recycle path) but
// keeps mounts and cache.
func TestVFSReset(t *testing.T) {
	v, _ := newVFSWithFile(t, "/f.txt", []byte("keep"))
	v.EnablePageCache(8)
	fd, err := v.Open("/f.txt", vfscore.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	sendAll(t, v, fd, 0, -1)
	if v.OpenFDs() == 0 {
		t.Fatal("no open fds before reset")
	}
	v.Reset()
	if got := v.OpenFDs(); got != 0 {
		t.Fatalf("OpenFDs after Reset = %d", got)
	}
	if _, err := v.Read(fd, make([]byte, 4)); err != vfscore.ErrBadFD {
		t.Errorf("stale fd after Reset = %v, want ErrBadFD", err)
	}
	// Mounts survive: the file reopens, and the cache still holds its
	// page.
	fd2, err := v.Open("/f.txt", vfscore.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	before := v.CacheStats().Hits
	if got := sendAll(t, v, fd2, 0, -1); !bytes.Equal(got, []byte("keep")) {
		t.Fatal("content lost across Reset")
	}
	if v.CacheStats().Hits == before {
		t.Error("page cache did not survive Reset")
	}
}

// TestCowFS: reads pass through to the shared base, writes privatize
// (invisible to the base and to sibling views), creations and removals
// overlay, and zero-copy slices come from the base until privatized.
func TestCowFS(t *testing.T) {
	base := ramfs.New()
	f, err := base.Root().Create("shared.txt", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("template"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := base.Root().Create("dir", true); err != nil {
		t.Fatal(err)
	}

	m1, m2 := sim.NewMachine(), sim.NewMachine()
	cowA, cowB := vfscore.NewCOW(base), vfscore.NewCOW(base)
	cowA.Charge = m1.Charge
	cowB.Charge = m2.Charge
	vA, vB := vfscore.New(m1), vfscore.New(m2)
	if err := vA.Mount("/", cowA); err != nil {
		t.Fatal(err)
	}
	if err := vB.Mount("/", cowB); err != nil {
		t.Fatal(err)
	}

	read := func(v *vfscore.VFS, path string) string {
		t.Helper()
		fd, err := v.Open(path, vfscore.ORdOnly)
		if err != nil {
			t.Fatalf("open %s: %v", path, err)
		}
		defer v.Close(fd)
		buf := make([]byte, 64)
		n, err := v.PRead(fd, buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		return string(buf[:n])
	}

	// Both clones read the shared content.
	if got := read(vA, "/shared.txt"); got != "template" {
		t.Fatalf("clone A reads %q", got)
	}
	if got := read(vB, "/shared.txt"); got != "template" {
		t.Fatalf("clone B reads %q", got)
	}

	// Clone A writes: only A sees it; B and the template stay pristine.
	fd, err := vA.Open("/shared.txt", vfscore.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vA.Write(fd, []byte("CLONE-A!")); err != nil {
		t.Fatal(err)
	}
	vA.Close(fd)
	if got := read(vA, "/shared.txt"); got != "CLONE-A!" {
		t.Fatalf("clone A after write reads %q", got)
	}
	if got := read(vB, "/shared.txt"); got != "template" {
		t.Fatalf("COW leak: clone B reads %q after A's write", got)
	}
	tbuf := make([]byte, 64)
	n, _ := f.ReadAt(tbuf, 0)
	if string(tbuf[:n]) != "template" {
		t.Fatalf("COW leak: template mutated to %q", tbuf[:n])
	}
	if cowA.Privatized != 1 {
		t.Errorf("clone A privatized %d nodes, want 1", cowA.Privatized)
	}
	if m1.CPU.Cycles() == 0 {
		t.Error("privatization charged nothing to the clone")
	}

	// Private creations and whiteouts stay clone-local.
	if fd, err = vA.Open("/only-a.txt", vfscore.OCreate|vfscore.OWrOnly); err != nil {
		t.Fatal(err)
	}
	vA.Close(fd)
	if _, err := vB.Open("/only-a.txt", vfscore.ORdOnly); err != vfscore.ErrNotExist {
		t.Errorf("clone B sees A's private file: %v", err)
	}
	if err := vA.Unlink("/shared.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := vA.Open("/shared.txt", vfscore.ORdOnly); err != vfscore.ErrNotExist {
		t.Errorf("whiteout ignored in clone A: %v", err)
	}
	if got := read(vB, "/shared.txt"); got != "template" {
		t.Fatalf("clone A's unlink leaked to B: %q", got)
	}

	// Remove of a private child shadowing a base entry must keep the
	// whiteout: delete /shared.txt's replacement and the template's
	// original must NOT resurrect.
	if fd, err = vA.Open("/shared.txt", vfscore.OCreate|vfscore.OWrOnly); err != nil {
		t.Fatal(err)
	}
	vA.Close(fd)
	if err := vA.Unlink("/shared.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := vA.Open("/shared.txt", vfscore.ORdOnly); err != vfscore.ErrNotExist {
		t.Errorf("base file resurrected after remove of its shadow: %v", err)
	}

	// Directory merge: base entries plus private ones, minus whiteouts.
	ents, err := vA.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name)
	}
	want := []string{"dir", "only-a.txt"}
	if len(names) != len(want) || names[0] != want[0] || names[1] != want[1] {
		t.Errorf("clone A ReadDir = %v, want %v", names, want)
	}
}

// TestCowSharedSlices: clean CowFS nodes hand out zero-copy views of
// the template's bytes — the fleet-wide page sharing — and privatized
// nodes stop doing so.
func TestCowSharedSlices(t *testing.T) {
	base := ramfs.New()
	f, _ := base.Root().Create("f.bin", false)
	data := pattern(2 * vfscore.PageSize)
	f.WriteAt(data, 0)

	cow := vfscore.NewCOW(base)
	node, err := cow.Root().Lookup("f.bin")
	if err != nil {
		t.Fatal(err)
	}
	sr, ok := node.(vfscore.SliceReader)
	if !ok {
		t.Fatal("clean cow node does not expose SliceReader")
	}
	view, ok := sr.ReadSlice(0, vfscore.PageSize)
	if !ok || len(view) != vfscore.PageSize {
		t.Fatalf("ReadSlice = %d bytes, ok=%v", len(view), ok)
	}
	bsr, _ := mustLookup(t, base).(vfscore.SliceReader)
	bv, _ := bsr.ReadSlice(0, vfscore.PageSize)
	if &view[0] != &bv[0] {
		t.Error("cow slice is a copy, want the template's backing bytes")
	}

	// After privatization the view must come from private data.
	if _, err := node.WriteAt([]byte("X"), 0); err != nil {
		t.Fatal(err)
	}
	view2, ok := sr.ReadSlice(0, vfscore.PageSize)
	if !ok {
		t.Fatal("no slice after privatize")
	}
	if &view2[0] == &bv[0] {
		t.Error("privatized node still aliases template bytes")
	}
	if bv[0] != data[0] {
		t.Error("template bytes mutated by clone write")
	}
}

func mustLookup(t *testing.T, fs *ramfs.FS) vfscore.Node {
	t.Helper()
	n, err := fs.Root().Lookup("f.bin")
	if err != nil {
		t.Fatal(err)
	}
	return n
}
