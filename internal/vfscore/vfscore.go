// Package vfscore is the virtual filesystem micro-library (scenario ➂ in
// the paper's Figure 4): mount table, path resolution, file-descriptor
// table, and the standard operation set that applications link against
// for file I/O. Concrete filesystems (ramfs, 9pfs, SHFS) plug in
// underneath via the FS/Node interfaces.
//
// Every operation charges the calibrated "standard path" cost that the
// paper's Figure 22 experiment measures against the specialized SHFS
// path: an open() through vfscore costs ~1600 cycles (path walk, vnode
// handling, fd allocation) where SHFS's hash lookup costs ~300.
//
// Beyond the standard operation set, the package implements the
// storage half of the zero-copy serving datapath: a bounded page cache
// whose fills are zero-copy views when the filesystem implements
// SliceReader, Sendfile (cached pages handed to the caller by
// reference — ~150 cycles per 4 KiB page against the ~476 a copying
// read charges), and CowFS, the copy-on-write view snapshot-forked
// clones mount over a shared template tree (reads shared, first write
// privatizes and charges the copy).
package vfscore

import (
	"errors"
	"strings"

	"unikraft/internal/sim"
)

// Filesystem errors (errno analogues).
var (
	ErrNotExist  = errors.New("vfscore: no such file or directory")
	ErrExist     = errors.New("vfscore: file exists")
	ErrIsDir     = errors.New("vfscore: is a directory")
	ErrNotDir    = errors.New("vfscore: not a directory")
	ErrBadFD     = errors.New("vfscore: bad file descriptor")
	ErrNotEmpty  = errors.New("vfscore: directory not empty")
	ErrInvalid   = errors.New("vfscore: invalid argument")
	ErrReadOnly  = errors.New("vfscore: read-only filesystem")
	ErrNoSpace   = errors.New("vfscore: no space left on device")
	ErrTooManyFD = errors.New("vfscore: file descriptor table full")
)

// Open flags (subset of POSIX).
const (
	ORdOnly = 0x0
	OWrOnly = 0x1
	ORdWr   = 0x2
	OCreate = 0x40
	OTrunc  = 0x200
	OAppend = 0x400
	OExcl   = 0x80
)

// Whence values for Seek.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// DirEnt is one directory entry.
type DirEnt struct {
	Name  string
	IsDir bool
}

// Stat describes a file.
type Stat struct {
	Name  string
	Size  int64
	IsDir bool
}

// Node is an inode-level object inside a filesystem.
type Node interface {
	IsDir() bool
	Size() int64

	// Directory operations.
	Lookup(name string) (Node, error)
	Create(name string, dir bool) (Node, error)
	Remove(name string) error
	ReadDir() ([]DirEnt, error)

	// File operations.
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Truncate(size int64) error
}

// FS is a mountable filesystem.
type FS interface {
	FSName() string
	Root() Node
	// LookupCost is the per-component cycle cost of this filesystem's
	// directory lookup, charged by the VFS path walk.
	LookupCost() uint64
}

// VFS operation costs (cycles), calibrated against Fig 22's Unikraft VFS
// numbers: a one-component open-hit lands near 1637 cycles and an open
// miss near 2219 (negative lookups pay the full directory scan plus
// error unwinding).
const (
	costFDAlloc      = 90
	costPathBase     = 260 // normalization + mount resolution
	costPerComponent = 240 // dentry handling per path element
	costVnode        = 420 // vnode alloc + init on open
	costLockUnlock   = 300 // vfs_lock/unlock pair per op
	costMissPenalty  = 580 // negative-lookup unwinding
	costRWBase       = 220 // per read/write call overhead
	costPerByteDen   = 16  // copy throughput, bytes/cycle
)

// file is one open file description.
type file struct {
	node   Node
	flags  int
	offset int64
	path   string
}

// mount is one mount-table entry.
type mount struct {
	prefix string // normalized, "/" or "/mnt/x"
	fs     FS
}

// VFS is the per-image virtual filesystem state.
type VFS struct {
	machine *sim.Machine
	mounts  []mount
	fds     []*file
	maxFDs  int
	// cache is the optional page cache behind Sendfile (see
	// EnablePageCache); scratch is the cacheless sendfile's read buffer.
	cache   *PageCache
	scratch []byte
}

// New creates a VFS on machine m with an empty mount table.
func New(m *sim.Machine) *VFS {
	return &VFS{machine: m, maxFDs: 1024, fds: make([]*file, 0, 64)}
}

// Mount attaches fs at path ("/" for the root filesystem). Longer
// prefixes shadow shorter ones, as in a real mount table.
func (v *VFS) Mount(path string, fs FS) error {
	p, err := normalize(path)
	if err != nil {
		return err
	}
	for _, m := range v.mounts {
		if m.prefix == p {
			return ErrExist
		}
	}
	v.mounts = append(v.mounts, mount{prefix: p, fs: fs})
	return nil
}

// resolveMount finds the longest-prefix mount for a normalized path and
// returns the fs plus the path remainder.
func (v *VFS) resolveMount(p string) (FS, string, error) {
	best := -1
	bestLen := -1
	for i, m := range v.mounts {
		if p == m.prefix || strings.HasPrefix(p, m.prefix+"/") || m.prefix == "/" {
			if len(m.prefix) > bestLen {
				best, bestLen = i, len(m.prefix)
			}
		}
	}
	if best < 0 {
		return nil, "", ErrNotExist
	}
	rest := strings.TrimPrefix(p, v.mounts[best].prefix)
	rest = strings.TrimPrefix(rest, "/")
	return v.mounts[best].fs, rest, nil
}

// normalize cleans a path: must be absolute; "." and ".." resolved;
// result has no trailing slash (except root).
func normalize(path string) (string, error) {
	if path == "" || path[0] != '/' {
		return "", ErrInvalid
	}
	parts := strings.Split(path, "/")
	out := make([]string, 0, len(parts))
	for _, part := range parts {
		switch part {
		case "", ".":
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, part)
		}
	}
	if len(out) == 0 {
		return "/", nil
	}
	return "/" + strings.Join(out, "/"), nil
}

// walk resolves a normalized relative path within fs, charging per
// component.
func (v *VFS) walk(fs FS, rel string) (Node, error) {
	node := fs.Root()
	if rel == "" {
		return node, nil
	}
	for _, comp := range strings.Split(rel, "/") {
		v.machine.Charge(costPerComponent + fs.LookupCost())
		next, err := node.Lookup(comp)
		if err != nil {
			return nil, err
		}
		node = next
	}
	return node, nil
}

// walkParent resolves everything but the last component.
func (v *VFS) walkParent(fs FS, rel string) (Node, string, error) {
	i := strings.LastIndexByte(rel, '/')
	if i < 0 {
		return fs.Root(), rel, nil
	}
	parent, err := v.walk(fs, rel[:i])
	if err != nil {
		return nil, "", err
	}
	return parent, rel[i+1:], nil
}

// Open opens path with flags and returns a file descriptor.
func (v *VFS) Open(path string, flags int) (int, error) {
	v.machine.Charge(costPathBase + costLockUnlock)
	p, err := normalize(path)
	if err != nil {
		return -1, err
	}
	fs, rel, err := v.resolveMount(p)
	if err != nil {
		return -1, err
	}
	node, err := v.walk(fs, rel)
	if err == ErrNotExist && flags&OCreate != 0 {
		parent, name, perr := v.walkParent(fs, rel)
		if perr != nil {
			v.machine.Charge(costMissPenalty)
			return -1, perr
		}
		if name == "" {
			return -1, ErrInvalid
		}
		node, err = parent.Create(name, false)
		if err != nil {
			return -1, err
		}
	} else if err != nil {
		v.machine.Charge(costMissPenalty)
		return -1, err
	} else if flags&OCreate != 0 && flags&OExcl != 0 {
		return -1, ErrExist
	}
	if node.IsDir() && flags&(OWrOnly|ORdWr) != 0 {
		return -1, ErrIsDir
	}
	if flags&OTrunc != 0 && !node.IsDir() {
		if err := node.Truncate(0); err != nil {
			return -1, err
		}
		v.invalidateCache(node)
	}
	v.machine.Charge(costVnode + costFDAlloc)
	f := &file{node: node, flags: flags, path: p}
	if flags&OAppend != 0 {
		f.offset = node.Size()
	}
	return v.installFD(f)
}

func (v *VFS) installFD(f *file) (int, error) {
	for i, slot := range v.fds {
		if slot == nil {
			v.fds[i] = f
			return i + 3, nil // 0,1,2 reserved for stdio
		}
	}
	if len(v.fds) >= v.maxFDs {
		return -1, ErrTooManyFD
	}
	v.fds = append(v.fds, f)
	return len(v.fds) - 1 + 3, nil
}

func (v *VFS) lookupFD(fd int) (*file, error) {
	i := fd - 3
	if i < 0 || i >= len(v.fds) || v.fds[i] == nil {
		return nil, ErrBadFD
	}
	return v.fds[i], nil
}

// Close releases a descriptor.
func (v *VFS) Close(fd int) error {
	i := fd - 3
	if i < 0 || i >= len(v.fds) || v.fds[i] == nil {
		return ErrBadFD
	}
	v.machine.Charge(costFDAlloc)
	v.fds[i] = nil
	return nil
}

// Read reads from the current offset.
func (v *VFS) Read(fd int, p []byte) (int, error) {
	f, err := v.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if f.node.IsDir() {
		return 0, ErrIsDir
	}
	v.machine.Charge(costRWBase + uint64(len(p))/costPerByteDen)
	n, err := f.node.ReadAt(p, f.offset)
	f.offset += int64(n)
	return n, err
}

// Write writes at the current offset.
func (v *VFS) Write(fd int, p []byte) (int, error) {
	f, err := v.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if f.flags&(OWrOnly|ORdWr) == 0 {
		return 0, ErrInvalid
	}
	v.machine.Charge(costRWBase + uint64(len(p))/costPerByteDen)
	if f.flags&OAppend != 0 {
		f.offset = f.node.Size()
	}
	n, err := f.node.WriteAt(p, f.offset)
	f.offset += int64(n)
	if n > 0 {
		v.invalidateCache(f.node)
	}
	return n, err
}

// PRead / PWrite are positional variants (no offset update).
func (v *VFS) PRead(fd int, p []byte, off int64) (int, error) {
	f, err := v.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	v.machine.Charge(costRWBase + uint64(len(p))/costPerByteDen)
	return f.node.ReadAt(p, off)
}

// PWrite writes at an explicit offset.
func (v *VFS) PWrite(fd int, p []byte, off int64) (int, error) {
	f, err := v.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if f.flags&(OWrOnly|ORdWr) == 0 {
		return 0, ErrInvalid
	}
	v.machine.Charge(costRWBase + uint64(len(p))/costPerByteDen)
	n, err := f.node.WriteAt(p, off)
	if n > 0 {
		v.invalidateCache(f.node)
	}
	return n, err
}

// Seek repositions the offset.
func (v *VFS) Seek(fd int, off int64, whence int) (int64, error) {
	f, err := v.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = f.offset
	case SeekEnd:
		base = f.node.Size()
	default:
		return 0, ErrInvalid
	}
	if base+off < 0 {
		return 0, ErrInvalid
	}
	f.offset = base + off
	return f.offset, nil
}

// StatPath stats by path.
func (v *VFS) StatPath(path string) (Stat, error) {
	v.machine.Charge(costPathBase)
	p, err := normalize(path)
	if err != nil {
		return Stat{}, err
	}
	fs, rel, err := v.resolveMount(p)
	if err != nil {
		return Stat{}, err
	}
	node, err := v.walk(fs, rel)
	if err != nil {
		v.machine.Charge(costMissPenalty)
		return Stat{}, err
	}
	name := p
	if i := strings.LastIndexByte(p, '/'); i >= 0 && p != "/" {
		name = p[i+1:]
	}
	return Stat{Name: name, Size: node.Size(), IsDir: node.IsDir()}, nil
}

// StatFD stats an open descriptor.
func (v *VFS) StatFD(fd int) (Stat, error) {
	f, err := v.lookupFD(fd)
	if err != nil {
		return Stat{}, err
	}
	name := f.path
	if i := strings.LastIndexByte(f.path, '/'); i >= 0 && f.path != "/" {
		name = f.path[i+1:]
	}
	return Stat{Name: name, Size: f.node.Size(), IsDir: f.node.IsDir()}, nil
}

// Mkdir creates a directory.
func (v *VFS) Mkdir(path string) error {
	v.machine.Charge(costPathBase + costLockUnlock)
	p, err := normalize(path)
	if err != nil {
		return err
	}
	fs, rel, err := v.resolveMount(p)
	if err != nil {
		return err
	}
	if rel == "" {
		return ErrExist
	}
	parent, name, err := v.walkParent(fs, rel)
	if err != nil {
		return err
	}
	_, err = parent.Create(name, true)
	return err
}

// Unlink removes a file or empty directory.
func (v *VFS) Unlink(path string) error {
	v.machine.Charge(costPathBase + costLockUnlock)
	p, err := normalize(path)
	if err != nil {
		return err
	}
	fs, rel, err := v.resolveMount(p)
	if err != nil {
		return err
	}
	if rel == "" {
		return ErrInvalid // cannot unlink a mount root
	}
	parent, name, err := v.walkParent(fs, rel)
	if err != nil {
		return err
	}
	return parent.Remove(name)
}

// ReadDir lists a directory by path.
func (v *VFS) ReadDir(path string) ([]DirEnt, error) {
	v.machine.Charge(costPathBase)
	p, err := normalize(path)
	if err != nil {
		return nil, err
	}
	fs, rel, err := v.resolveMount(p)
	if err != nil {
		return nil, err
	}
	node, err := v.walk(fs, rel)
	if err != nil {
		return nil, err
	}
	return node.ReadDir()
}

// OpenFDs counts live descriptors (tests, leak checks).
func (v *VFS) OpenFDs() int {
	n := 0
	for _, f := range v.fds {
		if f != nil {
			n++
		}
	}
	return n
}

// SetMaxFDs bounds the descriptor table (default 1024) — tests use it
// to exercise ErrTooManyFD without opening a thousand files.
func (v *VFS) SetMaxFDs(n int) {
	if n > 0 {
		v.maxFDs = n
	}
}

// Reset closes every open descriptor — the VFS half of recycling an
// instance (ukboot's VM.Reset). The mount table and page cache survive,
// like a kernel's across process churn.
func (v *VFS) Reset() {
	v.fds = v.fds[:0]
}
