package vfscore

// CowFS is the copy-on-write filesystem view snapshot-forked clones
// mount: reads pass straight through to the shared, read-only base
// filesystem (the template's populated ramfs/9pfs tree), while the
// first write to any file privatizes it into clone-local storage — the
// node-granularity analog of the page-table COW in ukboot (a write
// fault copies the data and redirects the clone's mapping; siblings
// and the template never observe it). Because clean CowFS nodes expose
// the base node's zero-copy ReadSlice views, a fleet of clones serving
// the same site shares one copy of the file bytes — and one source for
// their page caches — until somebody writes.

import "sort"

// CowFS wraps a base FS with clone-private copy-on-write state.
type CowFS struct {
	base FS
	// nodes memoizes wrappers so one base node maps to one cow node —
	// page-cache keys and fd-table aliasing stay stable.
	nodes map[Node]*cowNode
	root  *cowNode
	// Charge, when set, receives the cycle cost of COW privatization
	// copies (the clone machine's write faults at file granularity).
	Charge func(cycles uint64)

	// Privatized counts copy-up events (tests, experiments).
	Privatized int
}

// NewCOW builds a copy-on-write view over base. The base filesystem
// must not be mutated directly afterwards (clones only reach it through
// the view).
func NewCOW(base FS) *CowFS {
	fs := &CowFS{base: base, nodes: map[Node]*cowNode{}}
	fs.root = fs.wrap(base.Root())
	return fs
}

// FSName implements FS.
func (fs *CowFS) FSName() string { return "cow-" + fs.base.FSName() }

// Root implements FS.
func (fs *CowFS) Root() Node { return fs.root }

// LookupCost implements FS: the clean path is the base filesystem's
// lookup plus one overlay probe.
func (fs *CowFS) LookupCost() uint64 { return fs.base.LookupCost() + 20 }

// wrap memoizes the cow wrapper for a base node.
func (fs *CowFS) wrap(base Node) *cowNode {
	if n, ok := fs.nodes[base]; ok {
		return n
	}
	n := &cowNode{fs: fs, base: base, dir: base.IsDir()}
	fs.nodes[base] = n
	return n
}

// charge reports a privatization copy to the clone's machine.
func (fs *CowFS) charge(bytes int) {
	fs.Privatized++
	if fs.Charge != nil {
		// Same currency as every other copy in the simulator: ~16
		// bytes/cycle, plus a page-fault-grade fixed cost per copy-up.
		fs.Charge(500 + uint64(bytes)/16)
	}
}

// cowNode is one node of the view: a clean delegate to the shared base
// node, or (after privatization/creation) clone-private state.
type cowNode struct {
	fs   *CowFS
	base Node // nil for nodes created inside the clone
	dir  bool

	// dirty means data holds the private content (files only).
	dirty bool
	data  []byte

	// children/removed overlay the base directory entries: private
	// creations and whiteouts. nil until first mutation.
	children map[string]*cowNode
	removed  map[string]bool
}

// IsDir implements Node.
func (n *cowNode) IsDir() bool { return n.dir }

// Size implements Node.
func (n *cowNode) Size() int64 {
	if n.dir {
		ents, _ := n.ReadDir()
		return int64(len(ents))
	}
	if n.dirty || n.base == nil {
		return int64(len(n.data))
	}
	return n.base.Size()
}

// Lookup implements Node: private entries and whiteouts shadow the
// base directory.
func (n *cowNode) Lookup(name string) (Node, error) {
	if !n.dir {
		return nil, ErrNotDir
	}
	if n.removed[name] {
		return nil, ErrNotExist
	}
	if child, ok := n.children[name]; ok {
		return child, nil
	}
	if n.base == nil {
		return nil, ErrNotExist
	}
	child, err := n.base.Lookup(name)
	if err != nil {
		return nil, err
	}
	return n.fs.wrap(child), nil
}

// Create implements Node: new entries are clone-private.
func (n *cowNode) Create(name string, dir bool) (Node, error) {
	if !n.dir {
		return nil, ErrNotDir
	}
	if name == "" {
		return nil, ErrInvalid
	}
	if _, err := n.Lookup(name); err == nil {
		return nil, ErrExist
	}
	child := &cowNode{fs: n.fs, dir: dir}
	if n.children == nil {
		n.children = map[string]*cowNode{}
	}
	n.children[name] = child
	delete(n.removed, name)
	return child, nil
}

// Remove implements Node: base entries are whiteout-ed, private ones
// dropped.
func (n *cowNode) Remove(name string) error {
	if !n.dir {
		return ErrNotDir
	}
	child, err := n.Lookup(name)
	if err != nil {
		return err
	}
	if child.IsDir() {
		if ents, _ := child.ReadDir(); len(ents) > 0 {
			return ErrNotEmpty
		}
	}
	delete(n.children, name)
	// Whiteout the name whenever the base still has an entry underneath
	// — including when a private child was shadowing it (created after
	// an earlier whiteout): dropping only the shadow would resurrect
	// the base file the clone had deleted.
	if n.base != nil {
		if _, err := n.base.Lookup(name); err == nil {
			if n.removed == nil {
				n.removed = map[string]bool{}
			}
			n.removed[name] = true
		}
	}
	return nil
}

// ReadDir implements Node, merging base entries (minus whiteouts) with
// private ones.
func (n *cowNode) ReadDir() ([]DirEnt, error) {
	if !n.dir {
		return nil, ErrNotDir
	}
	var out []DirEnt
	seen := map[string]bool{}
	if n.base != nil {
		ents, err := n.base.ReadDir()
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			if n.removed[e.Name] {
				continue
			}
			if _, shadowed := n.children[e.Name]; shadowed {
				continue
			}
			out = append(out, e)
			seen[e.Name] = true
		}
	}
	for name, child := range n.children {
		if !seen[name] {
			out = append(out, DirEnt{Name: name, IsDir: child.dir})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ReadAt implements Node.
func (n *cowNode) ReadAt(p []byte, off int64) (int, error) {
	if n.dir {
		return 0, ErrIsDir
	}
	if n.dirty || n.base == nil {
		if off < 0 {
			return 0, ErrInvalid
		}
		if off >= int64(len(n.data)) {
			return 0, nil
		}
		return copy(p, n.data[off:]), nil
	}
	return n.base.ReadAt(p, off)
}

// ReadSlice implements SliceReader: clean nodes expose the shared base
// view (zero-copy sharing across clones); privatized nodes expose their
// own data.
func (n *cowNode) ReadSlice(off int64, ln int) ([]byte, bool) {
	if n.dir || off < 0 {
		return nil, false
	}
	if n.dirty || n.base == nil {
		if off >= int64(len(n.data)) {
			return nil, false
		}
		end := off + int64(ln)
		if end > int64(len(n.data)) {
			end = int64(len(n.data))
		}
		return n.data[off:end], true
	}
	if sr, ok := n.base.(SliceReader); ok {
		return sr.ReadSlice(off, ln)
	}
	return nil, false
}

// privatize is the COW fault: copy the base content into clone-private
// storage, charging the copy to the clone.
func (n *cowNode) privatize() error {
	if n.dirty || n.base == nil {
		return nil
	}
	size := n.base.Size()
	n.data = make([]byte, size)
	if size > 0 {
		if _, err := n.base.ReadAt(n.data, 0); err != nil {
			n.data = nil
			return err
		}
	}
	n.dirty = true
	n.fs.charge(int(size))
	return nil
}

// WriteAt implements Node, privatizing on first write.
func (n *cowNode) WriteAt(p []byte, off int64) (int, error) {
	if n.dir {
		return 0, ErrIsDir
	}
	if off < 0 {
		return 0, ErrInvalid
	}
	if err := n.privatize(); err != nil {
		return 0, err
	}
	end := off + int64(len(p))
	if grow := end - int64(len(n.data)); grow > 0 {
		n.data = append(n.data, make([]byte, grow)...)
	}
	copy(n.data[off:end], p)
	return len(p), nil
}

// Truncate implements Node, privatizing first.
func (n *cowNode) Truncate(size int64) error {
	if n.dir {
		return ErrIsDir
	}
	if size < 0 {
		return ErrInvalid
	}
	if err := n.privatize(); err != nil {
		return err
	}
	switch cur := int64(len(n.data)); {
	case size < cur:
		n.data = n.data[:size]
	case size > cur:
		n.data = append(n.data, make([]byte, size-cur)...)
	}
	return nil
}
