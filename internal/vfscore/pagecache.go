package vfscore

// This file implements the VFS page cache and the Sendfile fast path —
// the storage half of the zero-copy datapath. Where a plain Read pays a
// per-byte copy out of the filesystem on every call, Sendfile serves
// file content page by page out of the cache and hands each page to the
// caller's emit function by reference; with a zero-copy socket layer
// underneath (netstack.Config.ZeroCopy, PR 3's pooled-netbuf TX path)
// the bytes cross from filesystem to wire without a single charged
// copy. Filesystems that can expose stable views of their content
// (ramfs, SHFS-backed nodes, CowFS over either) implement SliceReader
// and the cache stores those views directly — cached "pages" of a
// snapshot-forked fleet are then literal slices of the shared template
// data, which is what lets clones share a read-only page cache
// COW-safely: writes privatize the node (CowFS) and invalidate, they
// never mutate the shared bytes.

// PageSize is the cache's page granularity (4 KiB, matching the guest
// page size in ukboot).
const PageSize = 4096

// Page-cache and sendfile costs (cycles). The hit path is deliberately
// an order of magnitude below the Read path's per-byte copy: a 4 KiB
// page served from cache charges costPageHit+costSendfilePage = 150
// cycles against the ~476 (costRWBase + 4096/costPerByteDen) a copying
// read of the same page pays before it even reaches the socket.
const (
	costSendfileBase = 180 // per-call setup: fd lookup, range clamp
	costPageHit      = 60  // cache probe on a resident page
	costPageInsert   = 110 // insert + eviction bookkeeping on a miss
	costPageShare    = 30  // zero-copy fill: reference a SliceReader view
	costSendfilePage = 90  // per-page handoff into the socket layer
)

// SliceReader is an optional Node capability: return a read-only view
// of the file's bytes without copying. The returned slice must stay
// valid until the node's content is mutated (at which point the VFS
// invalidates any cached views). ramfs nodes, SHFS-backed nodes and
// CowFS nodes over either implement it; filesystems that materialize
// content per read (9pfs) do not, and the cache falls back to a
// copying fill for them.
type SliceReader interface {
	ReadSlice(off int64, n int) ([]byte, bool)
}

// PageCacheStats counts cache traffic.
type PageCacheStats struct {
	Hits, Misses  uint64
	Evictions     uint64
	Invalidations uint64
	// SharedFills counts misses filled by zero-copy SliceReader views
	// (no per-byte charge); the remainder were copying fills.
	SharedFills uint64
}

// HitRatio is Hits / (Hits + Misses).
func (s PageCacheStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// pageKey identifies one cached page.
type pageKey struct {
	node Node
	idx  int64
}

// cachedPage pairs the page bytes with the insertion sequence number
// that ties it to exactly one FIFO entry — a stale entry left behind
// by an invalidation can then never evict a page re-inserted later
// under the same key.
type cachedPage struct {
	data []byte
	seq  uint64
}

// fifoEntry is one eviction-queue slot.
type fifoEntry struct {
	key pageKey
	seq uint64
}

// PageCache caches file pages per VFS, bounded by a page budget with
// FIFO eviction. It is single-goroutine, like the VFS that owns it;
// forked clones each own their cache, while the cached slices may be
// shared views of template data (see SliceReader).
type PageCache struct {
	maxPages int
	pages    map[Node]map[int64]cachedPage
	fifo     []fifoEntry
	nextSeq  uint64
	total    int
	stats    PageCacheStats
}

// NewPageCache builds a cache bounded to maxPages pages (minimum 1).
func NewPageCache(maxPages int) *PageCache {
	if maxPages < 1 {
		maxPages = 1
	}
	return &PageCache{maxPages: maxPages, pages: map[Node]map[int64]cachedPage{}}
}

// Stats returns a copy of the traffic counters.
func (pc *PageCache) Stats() PageCacheStats { return pc.stats }

// Resident reports cached pages (tests).
func (pc *PageCache) Resident() int { return pc.total }

// get returns the cached page, or nil on a miss.
func (pc *PageCache) get(node Node, idx int64) []byte {
	if byIdx, ok := pc.pages[node]; ok {
		if p, ok := byIdx[idx]; ok {
			pc.stats.Hits++
			return p.data
		}
	}
	pc.stats.Misses++
	return nil
}

// put inserts a page, evicting FIFO past the budget.
func (pc *PageCache) put(node Node, idx int64, p []byte) {
	byIdx, ok := pc.pages[node]
	if !ok {
		byIdx = map[int64]cachedPage{}
		pc.pages[node] = byIdx
	}
	if _, dup := byIdx[idx]; !dup {
		pc.total++
	}
	pc.nextSeq++
	byIdx[idx] = cachedPage{data: p, seq: pc.nextSeq}
	pc.fifo = append(pc.fifo, fifoEntry{key: pageKey{node, idx}, seq: pc.nextSeq})
	// Invalidations leave stale FIFO entries behind; a write-heavy
	// workload that never crosses the page budget would otherwise grow
	// the queue one entry per refill forever. Compacting at a fixed
	// multiple keeps the queue O(maxPages) at amortized O(1) cost.
	if len(pc.fifo) > 4*pc.maxPages {
		pc.compactFIFO()
	}
	for pc.total > pc.maxPages && len(pc.fifo) > 0 {
		e := pc.fifo[0]
		pc.fifo = pc.fifo[1:]
		byIdx, ok := pc.pages[e.key.node]
		if !ok {
			continue // node already invalidated; stale FIFO entry
		}
		cp, ok := byIdx[e.key.idx]
		if !ok || cp.seq != e.seq {
			continue // evicted, or re-inserted later under a newer entry
		}
		delete(byIdx, e.key.idx)
		if len(byIdx) == 0 {
			delete(pc.pages, e.key.node)
		}
		pc.total--
		pc.stats.Evictions++
	}
}

// compactFIFO drops queue entries that no longer match a resident
// page's sequence number (at most one entry per page can match, so
// order — and therefore eviction order — is preserved exactly).
func (pc *PageCache) compactFIFO() {
	kept := pc.fifo[:0]
	for _, e := range pc.fifo {
		if byIdx, ok := pc.pages[e.key.node]; ok {
			if cp, ok := byIdx[e.key.idx]; ok && cp.seq == e.seq {
				kept = append(kept, e)
			}
		}
	}
	for i := len(kept); i < len(pc.fifo); i++ {
		pc.fifo[i] = fifoEntry{}
	}
	pc.fifo = kept
}

// invalidate drops every cached page of node — called by the VFS on any
// write or truncate, so a cached view can never serve stale (or, for
// shared slices, dangling) content.
func (pc *PageCache) invalidate(node Node) {
	byIdx, ok := pc.pages[node]
	if !ok {
		return
	}
	pc.total -= len(byIdx)
	pc.stats.Invalidations += uint64(len(byIdx))
	delete(pc.pages, node)
	// Stale FIFO entries are skipped lazily at eviction time (their
	// sequence numbers no longer match any resident page).
}

// EnablePageCache attaches a page cache of maxPages pages to the VFS.
// Passing 0 detaches it (Sendfile falls back to per-page copying
// reads).
func (v *VFS) EnablePageCache(maxPages int) {
	if maxPages <= 0 {
		v.cache = nil
		return
	}
	v.cache = NewPageCache(maxPages)
}

// CacheStats returns the page-cache counters (zero value when no cache
// is attached).
func (v *VFS) CacheStats() PageCacheStats {
	if v.cache == nil {
		return PageCacheStats{}
	}
	return v.cache.Stats()
}

// CacheFIFOLen reports the eviction queue length (tests: it must stay
// O(maxPages) even under invalidation-heavy workloads).
func (v *VFS) CacheFIFOLen() int {
	if v.cache == nil {
		return 0
	}
	return len(v.cache.fifo)
}

// invalidateCache drops node's cached pages after a content mutation.
func (v *VFS) invalidateCache(node Node) {
	if v.cache != nil {
		v.cache.invalidate(node)
	}
}

// cachedPage returns one page of node through the cache, filling on
// miss (zero-copy via SliceReader when the node supports it, a copying
// read otherwise). The returned slice may be shorter than PageSize at
// EOF; it is read-only.
func (v *VFS) cachedPage(node Node, idx int64) ([]byte, error) {
	if p := v.cache.get(node, idx); p != nil {
		v.machine.Charge(costPageHit)
		return p, nil
	}
	off := idx * PageSize
	if sr, ok := node.(SliceReader); ok {
		if p, ok := sr.ReadSlice(off, PageSize); ok {
			v.machine.Charge(costPageShare + costPageInsert)
			v.cache.stats.SharedFills++
			v.cache.put(node, idx, p)
			return p, nil
		}
	}
	buf := make([]byte, PageSize)
	n, err := node.ReadAt(buf, off)
	if err != nil {
		return nil, err
	}
	v.machine.Charge(costRWBase + uint64(n)/costPerByteDen + costPageInsert)
	p := buf[:n]
	v.cache.put(node, idx, p)
	return p, nil
}

// Sendfile streams n bytes of fd starting at off to emit, page by page,
// without the caller ever copying file content: each emitted slice is a
// view of a cached page (or, uncached, of a scratch page). n < 0 means
// "to EOF". It returns the bytes emitted. This is the storage half of
// the zero-copy datapath: pair it with a zero-copy socket write
// (netstack.Config.ZeroCopy) and the per-request cost drops from two
// per-byte copies to pointer handoffs — the file-serving analog of the
// paper's §3.1 zero-copy I/O design.
func (v *VFS) Sendfile(fd int, off, n int64, emit func(p []byte) error) (int64, error) {
	f, err := v.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if f.node.IsDir() {
		return 0, ErrIsDir
	}
	if off < 0 {
		return 0, ErrInvalid
	}
	v.machine.Charge(costSendfileBase)
	size := f.node.Size()
	end := size
	if n >= 0 && off+n < end {
		end = off + n
	}
	var total int64
	for pos := off; pos < end; {
		idx := pos / PageSize
		pstart := pos - idx*PageSize
		var page []byte
		if v.cache != nil {
			page, err = v.cachedPage(f.node, idx)
			if err != nil {
				return total, err
			}
		} else {
			// No cache: a per-page copying read into the VFS scratch
			// page (the pre-page-cache sendfile, still one copy short
			// of the Read+Write path).
			if v.scratch == nil {
				v.scratch = make([]byte, PageSize)
			}
			rn, err := f.node.ReadAt(v.scratch, idx*PageSize)
			if err != nil {
				return total, err
			}
			v.machine.Charge(costRWBase + uint64(rn)/costPerByteDen)
			page = v.scratch[:rn]
		}
		if pstart >= int64(len(page)) {
			break // sparse tail / concurrent truncate: stop at EOF
		}
		chunk := page[pstart:]
		if rem := end - pos; int64(len(chunk)) > rem {
			chunk = chunk[:rem]
		}
		v.machine.Charge(costSendfilePage)
		if err := emit(chunk); err != nil {
			return total, err
		}
		total += int64(len(chunk))
		pos += int64(len(chunk))
	}
	return total, nil
}
