package vfscore_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"unikraft/internal/ramfs"
	"unikraft/internal/sim"
	"unikraft/internal/vfscore"
)

func newVFS(t *testing.T) (*vfscore.VFS, *sim.Machine) {
	t.Helper()
	m := sim.NewMachine()
	v := vfscore.New(m)
	if err := v.Mount("/", ramfs.New()); err != nil {
		t.Fatal(err)
	}
	return v, m
}

func TestCreateWriteRead(t *testing.T) {
	v, _ := newVFS(t)
	fd, err := v.Open("/hello.txt", vfscore.OCreate|vfscore.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("unikernel contents")
	if n, err := v.Write(fd, msg); err != nil || n != len(msg) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if _, err := v.Seek(fd, 0, vfscore.SeekSet); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := v.Read(fd, buf)
	if err != nil || !bytes.Equal(buf[:n], msg) {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
	if err := v.Close(fd); err != nil {
		t.Fatal(err)
	}
	if v.OpenFDs() != 0 {
		t.Fatalf("OpenFDs = %d after close", v.OpenFDs())
	}
}

func TestOpenSemantics(t *testing.T) {
	v, _ := newVFS(t)
	if _, err := v.Open("/missing", vfscore.ORdOnly); err != vfscore.ErrNotExist {
		t.Errorf("open missing = %v, want ErrNotExist", err)
	}
	fd, err := v.Open("/f", vfscore.OCreate|vfscore.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	v.Write(fd, []byte("12345"))
	v.Close(fd)
	if _, err := v.Open("/f", vfscore.OCreate|vfscore.OExcl); err != vfscore.ErrExist {
		t.Errorf("O_EXCL on existing = %v, want ErrExist", err)
	}
	// O_TRUNC empties the file.
	fd, err = v.Open("/f", vfscore.OTrunc|vfscore.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := v.StatFD(fd)
	if st.Size != 0 {
		t.Errorf("size after O_TRUNC = %d", st.Size)
	}
	// Reading from a write-only fd is allowed (simplification) but
	// writing to a read-only fd is not.
	ro, _ := v.Open("/f", vfscore.ORdOnly)
	if _, err := v.Write(ro, []byte("x")); err != vfscore.ErrInvalid {
		t.Errorf("write on O_RDONLY = %v, want ErrInvalid", err)
	}
}

func TestAppendMode(t *testing.T) {
	v, _ := newVFS(t)
	fd, _ := v.Open("/log", vfscore.OCreate|vfscore.OWrOnly)
	v.Write(fd, []byte("one"))
	v.Close(fd)
	fd, _ = v.Open("/log", vfscore.OAppend|vfscore.OWrOnly)
	v.Write(fd, []byte("two"))
	v.Close(fd)
	fd, _ = v.Open("/log", vfscore.ORdOnly)
	buf := make([]byte, 16)
	n, _ := v.Read(fd, buf)
	if string(buf[:n]) != "onetwo" {
		t.Fatalf("append result = %q", buf[:n])
	}
}

func TestDirectories(t *testing.T) {
	v, _ := newVFS(t)
	if err := v.Mkdir("/etc"); err != nil {
		t.Fatal(err)
	}
	if err := v.Mkdir("/etc/nginx"); err != nil {
		t.Fatal(err)
	}
	fd, err := v.Open("/etc/nginx/nginx.conf", vfscore.OCreate|vfscore.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	v.Write(fd, []byte("worker_processes 1;"))
	v.Close(fd)

	ents, err := v.ReadDir("/etc")
	if err != nil || len(ents) != 1 || ents[0].Name != "nginx" || !ents[0].IsDir {
		t.Fatalf("ReadDir(/etc) = %v, %v", ents, err)
	}
	st, err := v.StatPath("/etc/nginx/nginx.conf")
	if err != nil || st.Size != 19 || st.IsDir {
		t.Fatalf("Stat = %+v, %v", st, err)
	}
	// Removing a non-empty directory fails; empty succeeds.
	if err := v.Unlink("/etc/nginx"); err != vfscore.ErrNotEmpty {
		t.Errorf("unlink non-empty dir = %v, want ErrNotEmpty", err)
	}
	if err := v.Unlink("/etc/nginx/nginx.conf"); err != nil {
		t.Fatal(err)
	}
	if err := v.Unlink("/etc/nginx"); err != nil {
		t.Fatal(err)
	}
	// Opening a directory for writing fails.
	if _, err := v.Open("/etc", vfscore.ORdWr); err != vfscore.ErrIsDir {
		t.Errorf("open dir rw = %v, want ErrIsDir", err)
	}
}

func TestMountPoints(t *testing.T) {
	m := sim.NewMachine()
	v := vfscore.New(m)
	root, data := ramfs.New(), ramfs.New()
	if err := v.Mount("/", root); err != nil {
		t.Fatal(err)
	}
	if err := v.Mkdir("/data"); err != nil {
		t.Fatal(err)
	}
	if err := v.Mount("/data", data); err != nil {
		t.Fatal(err)
	}
	fd, err := v.Open("/data/file", vfscore.OCreate|vfscore.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	v.Write(fd, []byte("in the data fs"))
	v.Close(fd)
	// The file lives in the mounted fs, not the root fs.
	if data.Used() == 0 {
		t.Error("mounted fs unused; file went to the wrong filesystem")
	}
	if root.Used() != 0 {
		t.Error("root fs has content; mount prefix not honored")
	}
	// Duplicate mount point rejected.
	if err := v.Mount("/data", ramfs.New()); err != vfscore.ErrExist {
		t.Errorf("dup mount = %v, want ErrExist", err)
	}
}

func TestPReadPWrite(t *testing.T) {
	v, _ := newVFS(t)
	fd, _ := v.Open("/f", vfscore.OCreate|vfscore.ORdWr)
	if _, err := v.PWrite(fd, []byte("0123456789"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := v.PWrite(fd, []byte("AB"), 4); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, err := v.PRead(fd, buf, 0)
	if err != nil || string(buf[:n]) != "0123AB6789" {
		t.Fatalf("PRead = %q, %v", buf[:n], err)
	}
	// Offset not disturbed by positional I/O.
	n, _ = v.Read(fd, buf)
	if string(buf[:n]) != "0123AB6789" {
		t.Fatalf("sequential read after PRead = %q", buf[:n])
	}
}

func TestSeekWhence(t *testing.T) {
	v, _ := newVFS(t)
	fd, _ := v.Open("/f", vfscore.OCreate|vfscore.ORdWr)
	v.Write(fd, []byte("0123456789"))
	if off, _ := v.Seek(fd, -3, vfscore.SeekEnd); off != 7 {
		t.Fatalf("SeekEnd(-3) = %d", off)
	}
	if off, _ := v.Seek(fd, 1, vfscore.SeekCur); off != 8 {
		t.Fatalf("SeekCur(+1) = %d", off)
	}
	if _, err := v.Seek(fd, -100, vfscore.SeekSet); err != vfscore.ErrInvalid {
		t.Fatalf("negative seek = %v", err)
	}
	if _, err := v.Seek(fd, 0, 99); err != vfscore.ErrInvalid {
		t.Fatalf("bad whence = %v", err)
	}
}

func TestBadFD(t *testing.T) {
	v, _ := newVFS(t)
	if _, err := v.Read(42, make([]byte, 4)); err != vfscore.ErrBadFD {
		t.Errorf("Read(bad) = %v", err)
	}
	if err := v.Close(0); err != vfscore.ErrBadFD {
		t.Errorf("Close(stdin) = %v (stdio not in table)", err)
	}
	fd, _ := v.Open("/f", vfscore.OCreate|vfscore.ORdWr)
	v.Close(fd)
	if err := v.Close(fd); err != vfscore.ErrBadFD {
		t.Errorf("double close = %v", err)
	}
}

func TestFDReuse(t *testing.T) {
	v, _ := newVFS(t)
	fd1, _ := v.Open("/a", vfscore.OCreate|vfscore.ORdWr)
	fd2, _ := v.Open("/b", vfscore.OCreate|vfscore.ORdWr)
	v.Close(fd1)
	fd3, _ := v.Open("/c", vfscore.OCreate|vfscore.ORdWr)
	if fd3 != fd1 {
		t.Errorf("fd not reused: got %d, want %d", fd3, fd1)
	}
	if fd2 == fd3 {
		t.Error("distinct files share an fd")
	}
}

// TestPathNormalization property: normalized paths are idempotent, have
// no dot segments, and open/stat agree on them.
func TestPathNormalization(t *testing.T) {
	v, _ := newVFS(t)
	v.Mkdir("/a")
	v.Mkdir("/a/b")
	fd, _ := v.Open("/a/b/f", vfscore.OCreate|vfscore.OWrOnly)
	v.Write(fd, []byte("x"))
	v.Close(fd)
	for _, alias := range []string{
		"/a/b/f", "/a/./b/f", "/a/b/../b/f", "//a//b//f", "/x/../a/b/f",
	} {
		if st, err := v.StatPath(alias); err != nil || st.Size != 1 {
			t.Errorf("StatPath(%q) = %+v, %v", alias, st, err)
		}
	}
	if _, err := v.StatPath("relative/path"); err != vfscore.ErrInvalid {
		t.Errorf("relative path = %v, want ErrInvalid", err)
	}
	// ".." cannot escape the root.
	if st, err := v.StatPath("/../../a/b/f"); err != nil || st.Size != 1 {
		t.Errorf("escape attempt = %+v, %v", st, err)
	}
}

// TestVFSOpenCost verifies the calibrated Fig 22 costs: an open hit
// lands near 1600 cycles and a miss charges more than a hit.
func TestVFSOpenCost(t *testing.T) {
	v, m := newVFS(t)
	fd, _ := v.Open("/file", vfscore.OCreate|vfscore.OWrOnly)
	v.Close(fd)

	before := m.CPU.Cycles()
	fd, err := v.Open("/file", vfscore.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	hit := m.CPU.Cycles() - before
	v.Close(fd)

	before = m.CPU.Cycles()
	if _, err := v.Open("/nope", vfscore.ORdOnly); err != vfscore.ErrNotExist {
		t.Fatal(err)
	}
	miss := m.CPU.Cycles() - before

	if hit < 1000 || hit > 2400 {
		t.Errorf("open hit = %d cycles, want ~1600 (Fig 22)", hit)
	}
	if miss <= hit {
		t.Errorf("open miss (%d) should cost more than hit (%d), Fig 22", miss, hit)
	}
}

// TestRandomTreeOps property: a random sequence of creates/removes
// mirrored against a Go map model never disagrees about existence.
func TestRandomTreeOps(t *testing.T) {
	f := func(ops []uint16) bool {
		v, _ := newVFS(t)
		model := map[string]bool{}
		names := []string{"/a", "/b", "/c", "/d", "/e"}
		for _, op := range ops {
			name := names[int(op)%len(names)]
			if op%2 == 0 {
				_, err := v.Open(name, vfscore.OCreate|vfscore.OWrOnly)
				created := err == nil
				if model[name] && !created {
					return false // existed; OCreate without EXCL opens fine
				}
				model[name] = true
			} else {
				err := v.Unlink(name)
				if model[name] != (err == nil) {
					return false
				}
				delete(model, name)
			}
			for _, n := range names {
				_, err := v.StatPath(n)
				if model[n] != (err == nil) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
