package vfscore_test

import (
	"bytes"
	"testing"

	"unikraft/internal/ramfs"
	"unikraft/internal/sim"
	"unikraft/internal/vfscore"
)

// newVFSWithFile builds a VFS over a ramfs holding one file.
func newVFSWithFile(t *testing.T, path string, data []byte) (*vfscore.VFS, *sim.Machine) {
	t.Helper()
	m := sim.NewMachine()
	v := vfscore.New(m)
	if err := v.Mount("/", ramfs.New()); err != nil {
		t.Fatal(err)
	}
	fd, err := v.Open(path, vfscore.OCreate|vfscore.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Write(fd, data); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(fd); err != nil {
		t.Fatal(err)
	}
	return v, m
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + i%26)
	}
	return b
}

// sendAll collects a full Sendfile run into one buffer.
func sendAll(t *testing.T, v *vfscore.VFS, fd int, off, n int64) []byte {
	t.Helper()
	var out bytes.Buffer
	total, err := v.Sendfile(fd, off, n, func(p []byte) error {
		out.Write(p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(out.Len()) != total {
		t.Fatalf("Sendfile reported %d bytes, emitted %d", total, out.Len())
	}
	return out.Bytes()
}

// TestSendfileContent: sendfile reproduces the file bytes exactly,
// cached and uncached, including unaligned ranges.
func TestSendfileContent(t *testing.T) {
	data := pattern(3*vfscore.PageSize + 123)
	for _, cached := range []bool{false, true} {
		v, _ := newVFSWithFile(t, "/blob.bin", data)
		if cached {
			v.EnablePageCache(64)
		}
		fd, err := v.Open("/blob.bin", vfscore.ORdOnly)
		if err != nil {
			t.Fatal(err)
		}
		if got := sendAll(t, v, fd, 0, -1); !bytes.Equal(got, data) {
			t.Fatalf("cached=%v: whole-file sendfile mismatch (%d vs %d bytes)", cached, len(got), len(data))
		}
		// Unaligned slice spanning a page boundary.
		if got := sendAll(t, v, fd, 4000, 500); !bytes.Equal(got, data[4000:4500]) {
			t.Fatalf("cached=%v: ranged sendfile mismatch", cached)
		}
		// Past EOF: empty, no error.
		if got := sendAll(t, v, fd, int64(len(data))+10, 100); len(got) != 0 {
			t.Fatalf("cached=%v: sendfile past EOF emitted %d bytes", cached, len(got))
		}
	}
}

// TestSendfileCacheCheaper: a second (cached) sendfile of the same file
// charges far fewer cycles than the first, and the cached pages of a
// SliceReader filesystem are shared views, not copies.
func TestSendfileCacheCheaper(t *testing.T) {
	data := pattern(16 * vfscore.PageSize)
	v, m := newVFSWithFile(t, "/big.bin", data)
	v.EnablePageCache(64)
	fd, err := v.Open("/big.bin", vfscore.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	emit := func(p []byte) error { return nil }
	before := m.CPU.Cycles()
	if _, err := v.Sendfile(fd, 0, -1, emit); err != nil {
		t.Fatal(err)
	}
	cold := m.CPU.Cycles() - before
	before = m.CPU.Cycles()
	if _, err := v.Sendfile(fd, 0, -1, emit); err != nil {
		t.Fatal(err)
	}
	warm := m.CPU.Cycles() - before
	if warm >= cold {
		t.Errorf("warm sendfile (%d cycles) not below cold (%d)", warm, cold)
	}
	st := v.CacheStats()
	if st.Hits != 16 || st.Misses != 16 {
		t.Errorf("stats = %+v, want 16 hits / 16 misses", st)
	}
	// ramfs implements SliceReader, so every fill must have been a
	// zero-copy shared view.
	if st.SharedFills != 16 {
		t.Errorf("SharedFills = %d, want 16 (ramfs pages are shared views)", st.SharedFills)
	}
}

// TestPageCacheInvalidationOnWrite: a write drops the file's cached
// pages and the next sendfile serves the new content — never stale
// bytes.
func TestPageCacheInvalidationOnWrite(t *testing.T) {
	data := pattern(2 * vfscore.PageSize)
	v, _ := newVFSWithFile(t, "/f.txt", data)
	v.EnablePageCache(64)
	fd, err := v.Open("/f.txt", vfscore.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if got := sendAll(t, v, fd, 0, -1); !bytes.Equal(got, data) {
		t.Fatal("priming read mismatch")
	}
	if v.CacheStats().Misses == 0 {
		t.Fatal("cache never filled")
	}

	// Overwrite the middle of page 0 through PWrite.
	patch := []byte("INVALIDATED!")
	if _, err := v.PWrite(fd, patch, 100); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), data...)
	copy(want[100:], patch)
	if got := sendAll(t, v, fd, 0, -1); !bytes.Equal(got, want) {
		t.Fatal("sendfile served stale cached content after PWrite")
	}
	if inv := v.CacheStats().Invalidations; inv == 0 {
		t.Error("write did not invalidate cached pages")
	}

	// Truncate-on-open invalidates too.
	fd2, err := v.Open("/f.txt", vfscore.OWrOnly|vfscore.OTrunc)
	if err != nil {
		t.Fatal(err)
	}
	v.Close(fd2)
	if got := sendAll(t, v, fd, 0, -1); len(got) != 0 {
		t.Fatalf("sendfile after truncate emitted %d stale bytes", len(got))
	}
}

// TestPageCacheEviction: the cache respects its page budget.
func TestPageCacheEviction(t *testing.T) {
	pc := vfscore.NewPageCache(4)
	if pc.Resident() != 0 {
		t.Fatal("fresh cache not empty")
	}
	v, _ := newVFSWithFile(t, "/big.bin", pattern(10*vfscore.PageSize))
	v.EnablePageCache(4)
	fd, err := v.Open("/big.bin", vfscore.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	sendAll(t, v, fd, 0, -1)
	st := v.CacheStats()
	if st.Evictions < 6 {
		t.Errorf("evictions = %d, want >= 6 (10 pages through a 4-page cache)", st.Evictions)
	}
}

// TestPageCacheStaleEntryEviction: a FIFO entry orphaned by an
// invalidation must never evict the page re-inserted later under the
// same key — the freshest page is not the eviction victim.
func TestPageCacheStaleEntryEviction(t *testing.T) {
	pageA := pattern(vfscore.PageSize)
	m := sim.NewMachine()
	v := vfscore.New(m)
	if err := v.Mount("/", ramfs.New()); err != nil {
		t.Fatal(err)
	}
	mk := func(name string, data []byte) int {
		t.Helper()
		fd, err := v.Open(name, vfscore.OCreate|vfscore.ORdWr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.Write(fd, data); err != nil {
			t.Fatal(err)
		}
		return fd
	}
	fdA := mk("/a", pageA)
	fdB := mk("/b", pattern(vfscore.PageSize))
	fdC := mk("/c", pattern(vfscore.PageSize))
	v.EnablePageCache(2)
	emit := func([]byte) error { return nil }
	read := func(fd int) {
		t.Helper()
		if _, err := v.Sendfile(fd, 0, -1, emit); err != nil {
			t.Fatal(err)
		}
	}
	read(fdA) // fifo: [A]
	read(fdB) // fifo: [A, B]
	// Invalidate A (write), refill it: the old [A] entry is stale, the
	// refilled A sits behind B in true insertion order.
	if _, err := v.PWrite(fdA, []byte{'!'}, 0); err != nil {
		t.Fatal(err)
	}
	read(fdA) // fifo: [A(stale), B, A']
	// Inserting C must evict B (the genuinely oldest page), not the
	// just-refilled A.
	read(fdC)
	hitsBefore := v.CacheStats().Hits
	read(fdA)
	if v.CacheStats().Hits == hitsBefore {
		t.Error("freshly refilled page was evicted through its stale FIFO entry")
	}
}

// TestPageCacheFIFOBounded: a workload that interleaves writes
// (invalidating, so residency never crosses the budget) with re-reads
// must not grow the eviction queue without bound.
func TestPageCacheFIFOBounded(t *testing.T) {
	v, _ := newVFSWithFile(t, "/f.bin", pattern(vfscore.PageSize))
	const budget = 8
	v.EnablePageCache(budget)
	fd, err := v.Open("/f.bin", vfscore.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	emit := func([]byte) error { return nil }
	for i := 0; i < 10_000; i++ {
		if _, err := v.Sendfile(fd, 0, -1, emit); err != nil {
			t.Fatal(err)
		}
		if _, err := v.PWrite(fd, []byte{byte(i)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	st := v.CacheStats()
	if st.Invalidations < 9_000 {
		t.Fatalf("workload did not exercise invalidation: %+v", st)
	}
	if got := v.CacheFIFOLen(); got > 4*budget+1 {
		t.Errorf("eviction queue grew to %d entries (budget %d): stale entries never compacted", got, budget)
	}
}

// TestSendfileWithoutCache: the cacheless fallback still streams whole
// files correctly (scratch-page reads).
func TestSendfileWithoutCache(t *testing.T) {
	data := pattern(vfscore.PageSize + 17)
	v, _ := newVFSWithFile(t, "/f.bin", data)
	fd, err := v.Open("/f.bin", vfscore.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	if got := sendAll(t, v, fd, 0, -1); !bytes.Equal(got, data) {
		t.Fatal("cacheless sendfile mismatch")
	}
	if st := v.CacheStats(); st.Hits+st.Misses != 0 {
		t.Errorf("cacheless sendfile touched cache stats: %+v", st)
	}
}

// TestSendfileErrors: bad descriptors and directories are rejected.
func TestSendfileErrors(t *testing.T) {
	v, _ := newVFSWithFile(t, "/f.txt", []byte("x"))
	if err := v.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Sendfile(99, 0, -1, func([]byte) error { return nil }); err != vfscore.ErrBadFD {
		t.Errorf("bad fd: got %v", err)
	}
	fd, err := v.Open("/d", vfscore.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Sendfile(fd, 0, -1, func([]byte) error { return nil }); err != vfscore.ErrIsDir {
		t.Errorf("dir sendfile: got %v", err)
	}
	fd2, _ := v.Open("/f.txt", vfscore.ORdOnly)
	if _, err := v.Sendfile(fd2, -1, 4, func([]byte) error { return nil }); err != vfscore.ErrInvalid {
		t.Errorf("negative offset: got %v", err)
	}
}
