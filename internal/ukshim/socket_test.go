package ukshim

import (
	"testing"

	"unikraft/internal/netstack"
	"unikraft/internal/sim"
	"unikraft/internal/uknetdev"
)

// sockWorld wires two shims (client + server) over a virtio pair, each
// with its own stack — a full POSIX-over-unikernel topology.
type sockWorld struct {
	cm, sm         *sim.Machine
	client, server *netstack.Stack
	cs, ss         *Shim
	cb, sb         *SocketBackend
}

func newSockWorld(t *testing.T) *sockWorld {
	t.Helper()
	cm, sm := sim.NewMachine(), sim.NewMachine()
	cd, sd, err := uknetdev.NewPair(cm, sm, uknetdev.VhostNet)
	if err != nil {
		t.Fatal(err)
	}
	w := &sockWorld{cm: cm, sm: sm}
	w.client = netstack.New(cm, cd, netstack.Config{Addr: netstack.IP(10, 0, 0, 1)})
	w.server = netstack.New(sm, sd, netstack.Config{Addr: netstack.IP(10, 0, 0, 2)})
	w.cs = New(cm, ModeUnikraftTrap)
	w.ss = New(sm, ModeUnikraftTrap)
	w.cb = &SocketBackend{Stack: w.client}
	w.sb = &SocketBackend{Stack: w.server}
	RegisterSocketSyscalls(w.cs, w.cb)
	RegisterSocketSyscalls(w.ss, w.sb)
	return w
}

func (w *sockWorld) pump() { netstack.Pump(w.client, w.server) }

func TestUDPSocketsThroughShim(t *testing.T) {
	w := newSockWorld(t)
	// Server: socket + bind.
	sfd := w.ss.Invoke(SysSocket, [6]uint64{0, SockDgram})
	if sfd < sockFDBase {
		t.Fatalf("socket = %d", sfd)
	}
	bindAddr := w.sb.StageAddr(netstack.AddrPort{Port: 7777})
	if rc := w.ss.Invoke(SysBind, [6]uint64{uint64(sfd), bindAddr}); rc != 0 {
		t.Fatalf("bind = %d", rc)
	}
	// Client: socket + sendto (autobind).
	cfd := w.cs.Invoke(SysSocket, [6]uint64{0, SockDgram})
	dst := w.cb.StageAddr(netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 7777})
	msg := w.cb.StageBytes([]byte("posix datagram"))
	if n := w.cs.Invoke(SysSendto, [6]uint64{uint64(cfd), msg, 0, 0, dst}); n != 14 {
		t.Fatalf("sendto = %d", n)
	}
	w.pump()
	// Server: recvfrom.
	buf := make([]byte, 64)
	bufIdx := w.sb.StageBytes(buf)
	n := w.ss.Invoke(SysRecvfrom, [6]uint64{uint64(sfd), bufIdx})
	if n != 14 || string(buf[:n]) != "posix datagram" {
		t.Fatalf("recvfrom = %d %q", n, buf[:n])
	}
	if from := w.sb.LastAddr(); from.Addr != netstack.IP(10, 0, 0, 1) {
		t.Fatalf("peer addr = %v", from)
	}
	// Empty queue -> EAGAIN.
	if rc := w.ss.Invoke(SysRecvfrom, [6]uint64{uint64(sfd), bufIdx}); rc != -EAGAIN {
		t.Fatalf("empty recvfrom = %d, want -EAGAIN", rc)
	}
}

func TestTCPSocketsThroughShim(t *testing.T) {
	w := newSockWorld(t)
	// Server: socket/bind/listen.
	sfd := w.ss.Invoke(SysSocket, [6]uint64{0, SockStream})
	bindAddr := w.sb.StageAddr(netstack.AddrPort{Port: 80})
	if rc := w.ss.Invoke(SysBind, [6]uint64{uint64(sfd), bindAddr}); rc != 0 {
		t.Fatalf("bind = %d", rc)
	}
	if rc := w.ss.Invoke(SysListen, [6]uint64{uint64(sfd), 8}); rc != 0 {
		t.Fatalf("listen = %d", rc)
	}
	// Accept before any connection: EAGAIN.
	if rc := w.ss.Invoke(SysAccept, [6]uint64{uint64(sfd)}); rc != -EAGAIN {
		t.Fatalf("early accept = %d", rc)
	}
	// Client: socket/connect.
	cfd := w.cs.Invoke(SysSocket, [6]uint64{0, SockStream})
	dst := w.cb.StageAddr(netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 80})
	if rc := w.cs.Invoke(SysConnect, [6]uint64{uint64(cfd), dst}); rc != 0 {
		t.Fatalf("connect = %d", rc)
	}
	w.pump()
	afd := w.ss.Invoke(SysAccept, [6]uint64{uint64(sfd)})
	if afd < sockFDBase {
		t.Fatalf("accept = %d", afd)
	}
	// Data both ways through sendto/recvfrom.
	req := w.cb.StageBytes([]byte("ping"))
	if n := w.cs.Invoke(SysSendto, [6]uint64{uint64(cfd), req}); n != 4 {
		t.Fatalf("send = %d", n)
	}
	w.pump()
	buf := make([]byte, 16)
	bufIdx := w.sb.StageBytes(buf)
	if n := w.ss.Invoke(SysRecvfrom, [6]uint64{uint64(afd), bufIdx}); n != 4 || string(buf[:4]) != "ping" {
		t.Fatalf("server recv = %d %q", n, buf[:4])
	}
	resp := w.sb.StageBytes([]byte("pong"))
	if n := w.ss.Invoke(SysSendto, [6]uint64{uint64(afd), resp}); n != 4 {
		t.Fatalf("server send = %d", n)
	}
	w.pump()
	cbuf := make([]byte, 16)
	cbufIdx := w.cb.StageBytes(cbuf)
	if n := w.cs.Invoke(SysRecvfrom, [6]uint64{uint64(cfd), cbufIdx}); n != 4 || string(cbuf[:4]) != "pong" {
		t.Fatalf("client recv = %d %q", n, cbuf[:4])
	}
}

// TestStagingTablesBounded: a serving loop staging one buffer and one
// address per request must not grow the staged-argument tables without
// bound — the ring recycles handles.
func TestStagingTablesBounded(t *testing.T) {
	w := newSockWorld(t)
	sfd := w.ss.Invoke(SysSocket, [6]uint64{0, SockDgram})
	bindAddr := w.sb.StageAddr(netstack.AddrPort{Port: 7777})
	if rc := w.ss.Invoke(SysBind, [6]uint64{uint64(sfd), bindAddr}); rc != 0 {
		t.Fatalf("bind = %d", rc)
	}
	cfd := w.cs.Invoke(SysSocket, [6]uint64{0, SockDgram})
	buf := make([]byte, 64)
	for i := 0; i < 10_000; i++ {
		dst := w.cb.StageAddr(netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 7777})
		msg := w.cb.StageBytes([]byte("req"))
		if n := w.cs.Invoke(SysSendto, [6]uint64{uint64(cfd), msg, 0, 0, dst}); n != 3 {
			t.Fatalf("sendto #%d = %d", i, n)
		}
		w.pump()
		bufIdx := w.sb.StageBytes(buf)
		if n := w.ss.Invoke(SysRecvfrom, [6]uint64{uint64(sfd), bufIdx}); n != 3 {
			t.Fatalf("recvfrom #%d = %d", i, n)
		}
		if from := w.sb.LastAddr(); from.Addr != netstack.IP(10, 0, 0, 1) {
			t.Fatalf("peer addr #%d = %v", i, from)
		}
	}
	for name, got := range map[string]int{
		"client Bytes": len(w.cb.Bytes), "client Addrs": len(w.cb.Addrs),
		"server Bytes": len(w.sb.Bytes), "server Addrs": len(w.sb.Addrs),
	} {
		if got > stagingRing {
			t.Errorf("%s table grew to %d entries (ring is %d)", name, got, stagingRing)
		}
	}
}

// TestShimOverZeroCopyStack: the same shim-level exchange charges fewer
// cycles on a zero-copy stack — the spec option reaches app-visible
// syscalls end to end.
func TestShimOverZeroCopyStack(t *testing.T) {
	exchange := func(zc bool) uint64 {
		cm, sm := sim.NewMachine(), sim.NewMachine()
		cd, sd, err := uknetdev.NewPair(cm, sm, uknetdev.VhostNet)
		if err != nil {
			t.Fatal(err)
		}
		client := netstack.New(cm, cd, netstack.Config{Addr: netstack.IP(10, 0, 0, 1), ZeroCopy: zc})
		server := netstack.New(sm, sd, netstack.Config{Addr: netstack.IP(10, 0, 0, 2), ZeroCopy: zc})
		if server.ZeroCopyEnabled() != zc {
			t.Fatalf("ZeroCopyEnabled = %v, want %v", server.ZeroCopyEnabled(), zc)
		}
		ss := New(sm, ModeUnikraftTrap)
		cs := New(cm, ModeUnikraftTrap)
		sb := &SocketBackend{Stack: server}
		cb := &SocketBackend{Stack: client}
		RegisterSocketSyscalls(ss, sb)
		RegisterSocketSyscalls(cs, cb)

		sfd := ss.Invoke(SysSocket, [6]uint64{0, SockDgram})
		bindAddr := sb.StageAddr(netstack.AddrPort{Port: 9000})
		ss.Invoke(SysBind, [6]uint64{uint64(sfd), bindAddr})
		cfd := cs.Invoke(SysSocket, [6]uint64{0, SockDgram})
		payload := make([]byte, 1024)
		buf := make([]byte, 2048)
		start := sm.CPU.Cycles()
		for i := 0; i < 50; i++ {
			dst := cb.StageAddr(netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 9000})
			msg := cb.StageBytes(payload)
			cs.Invoke(SysSendto, [6]uint64{uint64(cfd), msg, 0, 0, dst})
			netstack.Pump(client, server)
			bufIdx := sb.StageBytes(buf)
			if n := ss.Invoke(SysRecvfrom, [6]uint64{uint64(sfd), bufIdx}); n != 1024 {
				t.Fatalf("recvfrom = %d", n)
			}
		}
		return sm.CPU.Cycles() - start
	}
	copying, zc := exchange(false), exchange(true)
	if zc >= copying {
		t.Errorf("zero-copy shim path %d cycles >= copying %d", zc, copying)
	}
}

func TestSocketErrnoPaths(t *testing.T) {
	w := newSockWorld(t)
	if rc := w.ss.Invoke(SysSocket, [6]uint64{0, 99}); rc != -EINVAL {
		t.Errorf("bad type = %d", rc)
	}
	if rc := w.ss.Invoke(SysBind, [6]uint64{12345, 0}); rc != -EBADF {
		t.Errorf("bind bad fd = %d", rc)
	}
	if rc := w.ss.Invoke(SysListen, [6]uint64{42, 1}); rc != -EBADF {
		t.Errorf("listen bad fd = %d", rc)
	}
	sfd := w.ss.Invoke(SysSocket, [6]uint64{0, SockDgram})
	if rc := w.ss.Invoke(SysListen, [6]uint64{uint64(sfd), 1}); rc != -EBADF {
		t.Errorf("listen on dgram = %d", rc)
	}
	// Double bind to the same UDP port fails.
	a1 := w.sb.StageAddr(netstack.AddrPort{Port: 5353})
	if rc := w.ss.Invoke(SysBind, [6]uint64{uint64(sfd), a1}); rc != 0 {
		t.Fatalf("bind = %d", rc)
	}
	sfd2 := w.ss.Invoke(SysSocket, [6]uint64{0, SockDgram})
	if rc := w.ss.Invoke(SysBind, [6]uint64{uint64(sfd2), a1}); rc != -EINVAL {
		t.Errorf("double bind = %d", rc)
	}
}
