// Package ukshim is the syscall shim layer (§4): micro-libraries
// register system-call handlers with it, and the shim generates a
// syscall interface at libc level so that natively-compiled applications
// reach kernel functionality through plain function calls. A missing
// implementation returns -ENOSYS automatically, which the paper notes is
// enough for many applications to run (§4.1: "many applications work
// even if certain syscalls are stubbed or return ENOSYS").
//
// The shim also owns the Table 1 cost model: invoking a syscall charges
// the runtime's translation cost (84 cycles on Unikraft — barely more
// than a function call — versus 222 on Linux with mitigations).
package ukshim

import (
	"fmt"

	"unikraft/internal/sim"
)

// Errno values returned in-band (negative), Linux convention.
const (
	ENOSYS = 38
	EBADF  = 9
	EINVAL = 22
	ENOENT = 2
	EAGAIN = 11
)

// Handler executes one system call; args follow the Linux register
// convention. The return value is the syscall result (negative errno on
// failure).
type Handler func(args [6]uint64) int64

// Mode selects the invocation cost model.
type Mode int

// Invocation modes.
const (
	// ModeFunctionCall: syscalls compiled directly to function calls
	// (native Unikraft builds linked through the shim at compile time).
	ModeFunctionCall Mode = iota
	// ModeUnikraftTrap: binary-compatibility path with run-time syscall
	// translation (Table 1: 84 cycles).
	ModeUnikraftTrap
	// ModeLinuxTrap: a Linux syscall with default mitigations (222).
	ModeLinuxTrap
	// ModeLinuxTrapNoMitig: Linux without KPTI etc. (154).
	ModeLinuxTrapNoMitig
)

// Shim is one image's syscall table.
type Shim struct {
	machine  *sim.Machine
	mode     Mode
	handlers map[int]Handler
	names    map[int]string

	// Invocations and Stubbed count calls and ENOSYS returns.
	Invocations uint64
	Stubbed     uint64
}

// New creates an empty shim on machine m.
func New(m *sim.Machine, mode Mode) *Shim {
	return &Shim{
		machine:  m,
		mode:     mode,
		handlers: map[int]Handler{},
		names:    map[int]string{},
	}
}

// Register adds a handler for syscall nr (the UK_SYSCALL_R_DEFINE
// analogue). Duplicate registration indicates a build misconfiguration.
func (s *Shim) Register(nr int, name string, h Handler) {
	if _, dup := s.handlers[nr]; dup {
		panic(fmt.Sprintf("ukshim: syscall %d (%s) registered twice", nr, name))
	}
	s.handlers[nr] = h
	s.names[nr] = name
}

// Supports reports whether nr has a real handler.
func (s *Shim) Supports(nr int) bool {
	_, ok := s.handlers[nr]
	return ok
}

// Supported lists registered syscall numbers.
func (s *Shim) Supported() []int {
	out := make([]int, 0, len(s.handlers))
	for nr := range s.handlers {
		out = append(out, nr)
	}
	return out
}

// Name returns the name of a registered syscall.
func (s *Shim) Name(nr int) string { return s.names[nr] }

// Cost returns the per-invocation cycles for the shim's mode.
func (s *Shim) Cost() uint64 {
	c := s.machine.Costs
	switch s.mode {
	case ModeFunctionCall:
		return c.FunctionCall
	case ModeUnikraftTrap:
		return c.UnikraftSyscall
	case ModeLinuxTrap:
		return c.LinuxSyscall
	case ModeLinuxTrapNoMitig:
		return c.LinuxSyscallNoMitig
	}
	return c.LinuxSyscall
}

// Invoke executes syscall nr, charging the invocation cost. Missing
// handlers return -ENOSYS.
func (s *Shim) Invoke(nr int, args [6]uint64) int64 {
	s.machine.Charge(s.Cost())
	s.Invocations++
	h, ok := s.handlers[nr]
	if !ok {
		s.Stubbed++
		return -ENOSYS
	}
	return h(args)
}

// Mode reports the invocation mode.
func (s *Shim) InvocationMode() Mode { return s.mode }
