package ukshim

import (
	"unikraft/internal/netstack"
)

// This file is the posix-socket micro-library (Figure 4's ➁ path): BSD
// socket syscalls registered with the shim, backed by the netstack. It
// gives natively-built applications the "standard socket interface"
// while the specialized path codes straight against uknetdev (➆).

// Socket syscall numbers (x86-64).
const (
	SysSocket   = 41
	SysConnect  = 42
	SysAccept   = 43
	SysSendto   = 44
	SysRecvfrom = 45
	SysBind     = 49
	SysListen   = 50
)

// Socket type argument values.
const (
	SockStream = 1 // TCP
	SockDgram  = 2 // UDP
)

// SocketBackend binds socket syscalls to a stack. Socket descriptors
// live in their own table (Unikraft's posix-fdtab multiplexes files and
// sockets; keeping them separate here keeps both layers simple, with
// descriptor numbers offset so they never collide with file fds).
//
// When the backing stack runs in zero-copy mode (netstack
// Config.ZeroCopy), send and receive through these handlers charge the
// stack's pointer-handoff cost instead of per-byte copies — the staged
// buffer is the application's own memory, which is exactly the
// paper's "applications own all memory" netbuf contract carried up to
// the syscall boundary.
type SocketBackend struct {
	Stack *netstack.Stack
	socks []*sock
	// Bytes stages buffer arguments, like FileBackend, but as a bounded
	// ring: handles recycle after stagingRing further stagings, so a
	// server staging one buffer per request no longer grows the table
	// (and the Go heap) without bound over a million-request run.
	Bytes [][]byte
	// Addrs stages sockaddr arguments (same ring discipline).
	Addrs []netstack.AddrPort

	nextBytes, nextAddrs int
	lastAddr             netstack.AddrPort
}

// stagingRing bounds the staged-argument tables. A handle is meant to
// be consumed by the next syscall; keeping a generous window preserves
// the stage-several-then-invoke pattern while capping memory.
const stagingRing = 64

const sockFDBase = 1 << 20 // socket descriptors start here

type sock struct {
	typ  int
	port uint16
	udp  *netstack.UDPConn
	tcp  *netstack.TCPConn
	lis  *netstack.Listener
	used bool
}

// StageBytes registers a buffer argument and returns its handle. The
// handle stays valid for the next stagingRing stagings, then recycles.
func (sb *SocketBackend) StageBytes(b []byte) uint64 {
	if len(sb.Bytes) < stagingRing {
		sb.Bytes = append(sb.Bytes, b)
		return uint64(len(sb.Bytes) - 1)
	}
	i := sb.nextBytes
	sb.Bytes[i] = b
	sb.nextBytes = (i + 1) % stagingRing
	return uint64(i)
}

// StageAddr registers a sockaddr argument and returns its handle (same
// recycling window as StageBytes).
func (sb *SocketBackend) StageAddr(a netstack.AddrPort) uint64 {
	sb.lastAddr = a
	if len(sb.Addrs) < stagingRing {
		sb.Addrs = append(sb.Addrs, a)
		return uint64(len(sb.Addrs) - 1)
	}
	i := sb.nextAddrs
	sb.Addrs[i] = a
	sb.nextAddrs = (i + 1) % stagingRing
	return uint64(i)
}

// LastAddr returns the most recently recorded peer address (the
// recvfrom out-parameter in this staged ABI).
func (sb *SocketBackend) LastAddr() netstack.AddrPort { return sb.lastAddr }

func (sb *SocketBackend) install(s *sock) int64 {
	for i, slot := range sb.socks {
		if slot == nil || !slot.used {
			sb.socks[i] = s
			return int64(sockFDBase + i)
		}
	}
	sb.socks = append(sb.socks, s)
	return int64(sockFDBase + len(sb.socks) - 1)
}

func (sb *SocketBackend) lookup(fd uint64) *sock {
	i := int(fd) - sockFDBase
	if i < 0 || i >= len(sb.socks) || sb.socks[i] == nil || !sb.socks[i].used {
		return nil
	}
	return sb.socks[i]
}

// RegisterSocketSyscalls installs the posix-socket handlers.
func RegisterSocketSyscalls(s *Shim, sb *SocketBackend) {
	s.Register(SysSocket, "socket", func(a [6]uint64) int64 {
		typ := int(a[1])
		if typ != SockStream && typ != SockDgram {
			return -EINVAL
		}
		return sb.install(&sock{typ: typ, used: true})
	})

	s.Register(SysBind, "bind", func(a [6]uint64) int64 {
		sk := sb.lookup(a[0])
		if sk == nil {
			return -EBADF
		}
		if a[1] >= uint64(len(sb.Addrs)) {
			return -EINVAL
		}
		addr := sb.Addrs[a[1]]
		if sk.typ == SockDgram {
			conn, err := sb.Stack.BindUDP(addr.Port)
			if err != nil {
				return -EINVAL
			}
			sk.udp = conn
			return 0
		}
		// TCP bind records the port; listen() opens the socket.
		sk.tcp = nil
		sk.lis = nil
		sk.used = true
		sk.port = addr.Port
		return 0
	})

	s.Register(SysListen, "listen", func(a [6]uint64) int64 {
		sk := sb.lookup(a[0])
		if sk == nil || sk.typ != SockStream {
			return -EBADF
		}
		lis, err := sb.Stack.ListenTCP(sk.port, int(a[1]))
		if err != nil {
			return -EINVAL
		}
		sk.lis = lis
		return 0
	})

	s.Register(SysAccept, "accept", func(a [6]uint64) int64 {
		sk := sb.lookup(a[0])
		if sk == nil || sk.lis == nil {
			return -EBADF
		}
		conn, ok := sk.lis.Accept()
		if !ok {
			return -EAGAIN // non-blocking semantics
		}
		return sb.install(&sock{typ: SockStream, tcp: conn, used: true})
	})

	s.Register(SysConnect, "connect", func(a [6]uint64) int64 {
		sk := sb.lookup(a[0])
		if sk == nil || sk.typ != SockStream {
			return -EBADF
		}
		if a[1] >= uint64(len(sb.Addrs)) {
			return -EINVAL
		}
		conn, err := sb.Stack.ConnectTCP(sb.Addrs[a[1]])
		if err != nil {
			return -EINVAL
		}
		sk.tcp = conn
		return 0
	})

	s.Register(SysSendto, "sendto", func(a [6]uint64) int64 {
		sk := sb.lookup(a[0])
		if sk == nil {
			return -EBADF
		}
		if a[1] >= uint64(len(sb.Bytes)) {
			return -EINVAL
		}
		data := sb.Bytes[a[1]]
		switch sk.typ {
		case SockDgram:
			if sk.udp == nil {
				// Autobind, as Linux does on first send.
				conn, err := sb.Stack.BindUDP(0)
				if err != nil {
					return -EINVAL
				}
				sk.udp = conn
			}
			if a[4] >= uint64(len(sb.Addrs)) {
				return -EINVAL
			}
			if err := sk.udp.SendTo(sb.Addrs[a[4]], data); err != nil {
				return -EINVAL
			}
			return int64(len(data))
		case SockStream:
			if sk.tcp == nil {
				return -EBADF
			}
			n, err := sk.tcp.Write(data)
			if err != nil && n == 0 {
				return -EAGAIN
			}
			return int64(n)
		}
		return -EINVAL
	})

	s.Register(SysRecvfrom, "recvfrom", func(a [6]uint64) int64 {
		sk := sb.lookup(a[0])
		if sk == nil {
			return -EBADF
		}
		if a[1] >= uint64(len(sb.Bytes)) {
			return -EINVAL
		}
		buf := sb.Bytes[a[1]]
		switch sk.typ {
		case SockDgram:
			if sk.udp == nil {
				return -EBADF
			}
			d, ok := sk.udp.RecvFrom()
			if !ok {
				return -EAGAIN
			}
			n := copy(buf, d.Data)
			sb.lastAddr = d.From // out-param
			return int64(n)
		case SockStream:
			if sk.tcp == nil {
				return -EBADF
			}
			n, err := sk.tcp.Read(buf)
			if err == netstack.ErrWouldBlock {
				return -EAGAIN
			}
			if err != nil && n == 0 {
				return 0 // EOF convention
			}
			return int64(n)
		}
		return -EINVAL
	})
}
