package ukshim

import (
	"time"

	"unikraft/internal/vfscore"
)

// Linux x86-64 syscall numbers used by the standard registration.
const (
	SysRead         = 0
	SysWrite        = 1
	SysOpen         = 2
	SysClose        = 3
	SysStat         = 4
	SysFstat        = 5
	SysLseek        = 8
	SysMmap         = 9
	SysBrk          = 12
	SysPread64      = 17
	SysPwrite64     = 18
	SysGetpid       = 39
	SysExit         = 60
	SysUname        = 63
	SysGetcwd       = 79
	SysMkdir        = 83
	SysUnlink       = 87
	SysGettimeofday = 96
	SysClockGettime = 228
	SysNanosleep    = 35
	SysOpenat       = 257
)

// FileBackend binds file syscalls to a VFS; the registration mirrors how
// vfscore registers its handlers with the shim in Unikraft.
type FileBackend struct {
	VFS *vfscore.VFS
	// Buf translates guest "pointers" (offsets into a flat argument
	// buffer) for the simulated ABI: syscall args carry indexes into
	// Strings/Bytes staged by the caller.
	Strings []string
	Bytes   [][]byte
}

// StageString registers a string argument and returns its handle.
func (fb *FileBackend) StageString(s string) uint64 {
	fb.Strings = append(fb.Strings, s)
	return uint64(len(fb.Strings) - 1)
}

// StageBytes registers a byte-slice argument and returns its handle.
func (fb *FileBackend) StageBytes(b []byte) uint64 {
	fb.Bytes = append(fb.Bytes, b)
	return uint64(len(fb.Bytes) - 1)
}

func errno(err error) int64 {
	switch err {
	case nil:
		return 0
	case vfscore.ErrNotExist:
		return -ENOENT
	case vfscore.ErrBadFD:
		return -EBADF
	default:
		return -EINVAL
	}
}

// RegisterFileSyscalls installs the vfscore-backed handlers.
func RegisterFileSyscalls(s *Shim, fb *FileBackend) {
	s.Register(SysOpen, "open", func(a [6]uint64) int64 {
		if a[0] >= uint64(len(fb.Strings)) {
			return -EINVAL
		}
		fd, err := fb.VFS.Open(fb.Strings[a[0]], int(a[1]))
		if err != nil {
			return errno(err)
		}
		return int64(fd)
	})
	s.Register(SysOpenat, "openat", func(a [6]uint64) int64 {
		// dirfd ignored: absolute paths only in the simulated ABI.
		if a[1] >= uint64(len(fb.Strings)) {
			return -EINVAL
		}
		fd, err := fb.VFS.Open(fb.Strings[a[1]], int(a[2]))
		if err != nil {
			return errno(err)
		}
		return int64(fd)
	})
	s.Register(SysClose, "close", func(a [6]uint64) int64 {
		return errno(fb.VFS.Close(int(a[0])))
	})
	s.Register(SysRead, "read", func(a [6]uint64) int64 {
		if a[1] >= uint64(len(fb.Bytes)) {
			return -EINVAL
		}
		n, err := fb.VFS.Read(int(a[0]), fb.Bytes[a[1]])
		if err != nil {
			return errno(err)
		}
		return int64(n)
	})
	s.Register(SysWrite, "write", func(a [6]uint64) int64 {
		if a[1] >= uint64(len(fb.Bytes)) {
			return -EINVAL
		}
		n, err := fb.VFS.Write(int(a[0]), fb.Bytes[a[1]])
		if err != nil {
			return errno(err)
		}
		return int64(n)
	})
	s.Register(SysPread64, "pread64", func(a [6]uint64) int64 {
		if a[1] >= uint64(len(fb.Bytes)) {
			return -EINVAL
		}
		n, err := fb.VFS.PRead(int(a[0]), fb.Bytes[a[1]], int64(a[3]))
		if err != nil {
			return errno(err)
		}
		return int64(n)
	})
	s.Register(SysPwrite64, "pwrite64", func(a [6]uint64) int64 {
		if a[1] >= uint64(len(fb.Bytes)) {
			return -EINVAL
		}
		n, err := fb.VFS.PWrite(int(a[0]), fb.Bytes[a[1]], int64(a[3]))
		if err != nil {
			return errno(err)
		}
		return int64(n)
	})
	s.Register(SysLseek, "lseek", func(a [6]uint64) int64 {
		off, err := fb.VFS.Seek(int(a[0]), int64(a[1]), int(a[2]))
		if err != nil {
			return errno(err)
		}
		return off
	})
	s.Register(SysStat, "stat", func(a [6]uint64) int64 {
		if a[0] >= uint64(len(fb.Strings)) {
			return -EINVAL
		}
		st, err := fb.VFS.StatPath(fb.Strings[a[0]])
		if err != nil {
			return errno(err)
		}
		return st.Size
	})
	s.Register(SysFstat, "fstat", func(a [6]uint64) int64 {
		st, err := fb.VFS.StatFD(int(a[0]))
		if err != nil {
			return errno(err)
		}
		return st.Size
	})
	s.Register(SysMkdir, "mkdir", func(a [6]uint64) int64 {
		if a[0] >= uint64(len(fb.Strings)) {
			return -EINVAL
		}
		return errno(fb.VFS.Mkdir(fb.Strings[a[0]]))
	})
	s.Register(SysUnlink, "unlink", func(a [6]uint64) int64 {
		if a[0] >= uint64(len(fb.Strings)) {
			return -EINVAL
		}
		return errno(fb.VFS.Unlink(fb.Strings[a[0]]))
	})
}

// RegisterProcessSyscalls installs trivial process/identity syscalls.
func RegisterProcessSyscalls(s *Shim) {
	s.Register(SysGetpid, "getpid", func([6]uint64) int64 { return 1 }) // single process
	s.Register(SysUname, "uname", func([6]uint64) int64 { return 0 })
	s.Register(SysGetcwd, "getcwd", func([6]uint64) int64 { return 0 })
	s.Register(SysExit, "exit", func([6]uint64) int64 { return 0 })
	s.Register(SysBrk, "brk", func(a [6]uint64) int64 { return int64(a[0]) })
	s.Register(SysMmap, "mmap", func(a [6]uint64) int64 { return int64(a[0]) })
}

// RegisterTimeSyscalls installs clock syscalls against the machine
// clock.
func RegisterTimeSyscalls(s *Shim) {
	s.Register(SysClockGettime, "clock_gettime", func([6]uint64) int64 {
		return int64(s.machine.CPU.Now())
	})
	s.Register(SysGettimeofday, "gettimeofday", func([6]uint64) int64 {
		return int64(s.machine.CPU.Now().Microseconds())
	})
	s.Register(SysNanosleep, "nanosleep", func(a [6]uint64) int64 {
		s.machine.CPU.Advance(s.machine.CPU.ToCycles(time.Duration(a[0])))
		return 0
	})
}
