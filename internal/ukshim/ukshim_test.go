package ukshim

import (
	"testing"

	"unikraft/internal/ramfs"
	"unikraft/internal/sim"
	"unikraft/internal/vfscore"
)

func newShim(mode Mode) (*Shim, *sim.Machine) {
	m := sim.NewMachine()
	return New(m, mode), m
}

func TestTable1Costs(t *testing.T) {
	// The whole Table 1 story: per-mode invocation costs.
	cases := []struct {
		mode Mode
		want uint64
	}{
		{ModeFunctionCall, 4},
		{ModeUnikraftTrap, 84},
		{ModeLinuxTrap, 222},
		{ModeLinuxTrapNoMitig, 154},
	}
	for _, c := range cases {
		sh, m := newShim(c.mode)
		sh.Register(SysGetpid, "getpid", func([6]uint64) int64 { return 1 })
		before := m.CPU.Cycles()
		if got := sh.Invoke(SysGetpid, [6]uint64{}); got != 1 {
			t.Fatalf("getpid = %d", got)
		}
		if got := m.CPU.Cycles() - before; got != c.want {
			t.Errorf("mode %d cost = %d, want %d", c.mode, got, c.want)
		}
	}
}

func TestENOSYSStubbing(t *testing.T) {
	sh, _ := newShim(ModeUnikraftTrap)
	if got := sh.Invoke(999, [6]uint64{}); got != -ENOSYS {
		t.Fatalf("unregistered syscall = %d, want -ENOSYS", got)
	}
	if sh.Stubbed != 1 || sh.Invocations != 1 {
		t.Fatalf("counters = %d/%d", sh.Stubbed, sh.Invocations)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	sh, _ := newShim(ModeFunctionCall)
	sh.Register(1, "write", func([6]uint64) int64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate registration")
		}
	}()
	sh.Register(1, "write", func([6]uint64) int64 { return 0 })
}

func TestFileSyscallsOverVFS(t *testing.T) {
	sh, m := newShim(ModeUnikraftTrap)
	v := vfscore.New(m)
	if err := v.Mount("/", ramfs.New()); err != nil {
		t.Fatal(err)
	}
	fb := &FileBackend{VFS: v}
	RegisterFileSyscalls(sh, fb)
	RegisterProcessSyscalls(sh)
	RegisterTimeSyscalls(sh)

	if got := len(sh.Supported()); got < 15 {
		t.Fatalf("registered = %d syscalls", got)
	}

	// open(O_CREAT|O_RDWR) -> write -> lseek -> read -> close: the whole
	// file lifecycle through the syscall ABI.
	path := fb.StageString("/data.txt")
	fd := sh.Invoke(SysOpen, [6]uint64{path, uint64(vfscore.OCreate | vfscore.ORdWr)})
	if fd < 3 {
		t.Fatalf("open = %d", fd)
	}
	payload := fb.StageBytes([]byte("through the shim"))
	if n := sh.Invoke(SysWrite, [6]uint64{uint64(fd), payload}); n != 16 {
		t.Fatalf("write = %d", n)
	}
	if off := sh.Invoke(SysLseek, [6]uint64{uint64(fd), 0, vfscore.SeekSet}); off != 0 {
		t.Fatalf("lseek = %d", off)
	}
	out := make([]byte, 32)
	outIdx := fb.StageBytes(out)
	n := sh.Invoke(SysRead, [6]uint64{uint64(fd), outIdx})
	if n != 16 || string(out[:n]) != "through the shim" {
		t.Fatalf("read = %d %q", n, out[:n])
	}
	if rc := sh.Invoke(SysClose, [6]uint64{uint64(fd)}); rc != 0 {
		t.Fatalf("close = %d", rc)
	}
	// Errno paths.
	missing := fb.StageString("/missing")
	if rc := sh.Invoke(SysOpen, [6]uint64{missing, 0}); rc != -ENOENT {
		t.Fatalf("open missing = %d, want -ENOENT", rc)
	}
	if rc := sh.Invoke(SysClose, [6]uint64{77}); rc != -EBADF {
		t.Fatalf("close bad fd = %d, want -EBADF", rc)
	}
	if pid := sh.Invoke(SysGetpid, [6]uint64{}); pid != 1 {
		t.Fatalf("getpid = %d", pid)
	}
}

func TestSyscallCostsAccumulate(t *testing.T) {
	sh, m := newShim(ModeLinuxTrap)
	RegisterProcessSyscalls(sh)
	before := m.CPU.Cycles()
	const n = 100
	for i := 0; i < n; i++ {
		sh.Invoke(SysGetpid, [6]uint64{})
	}
	if got := m.CPU.Cycles() - before; got != n*222 {
		t.Fatalf("100 linux syscalls = %d cycles, want %d", got, n*222)
	}
}
