package shfs

import (
	"fmt"
	"testing"
	"testing/quick"

	"unikraft/internal/sim"
)

func fixture(m *sim.Machine) *FS {
	fs := New(m, 1024)
	for i := 0; i < 100; i++ {
		fs.Add(fmt.Sprintf("/obj%03d.html", i), []byte(fmt.Sprintf("content of object %d", i)))
	}
	return fs
}

func TestOpenHitAndMiss(t *testing.T) {
	fs := fixture(nil)
	h, err := fs.Open("/obj042.html")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := fs.ReadAt(h, buf, 0)
	if err != nil || string(buf[:n]) != "content of object 42" {
		t.Fatalf("ReadAt = %q, %v", buf[:n], err)
	}
	if _, err := fs.Open("/absent.html"); err != ErrNotExist {
		t.Fatalf("miss = %v", err)
	}
}

func TestOpenCostMatchesFig22(t *testing.T) {
	m := sim.NewMachine()
	fs := fixture(m)
	before := m.CPU.Cycles()
	if _, err := fs.Open("/obj007.html"); err != nil {
		t.Fatal(err)
	}
	hit := m.CPU.Cycles() - before

	before = m.CPU.Cycles()
	fs.Open("/definitely-not-there")
	miss := m.CPU.Cycles() - before

	// Fig 22: SHFS 308 cycles (hit) / 291 (miss); allow probe-chain
	// variance but keep both far under the ~1600-cycle VFS open.
	if hit < 250 || hit > 600 {
		t.Errorf("hit = %d cycles, want ~308", hit)
	}
	if miss < 200 || miss > 500 {
		t.Errorf("miss = %d cycles, want ~291", miss)
	}
}

func TestCollisionChains(t *testing.T) {
	// A tiny table forces probe chains; all objects must stay reachable.
	fs := New(nil, 16)
	var added []string
	for i := 0; ; i++ {
		name := fmt.Sprintf("k%d", i)
		if err := fs.Add(name, []byte(name)); err != nil {
			if err != ErrFull {
				t.Fatal(err)
			}
			break
		}
		added = append(added, name)
	}
	if len(added) == 0 {
		t.Fatal("nothing added")
	}
	for _, name := range added {
		h, err := fs.Open(name)
		if err != nil {
			t.Fatalf("Open(%q) after collisions: %v", name, err)
		}
		buf := make([]byte, 32)
		n, _ := fs.ReadAt(h, buf, 0)
		if string(buf[:n]) != name {
			t.Fatalf("content mismatch for %q", name)
		}
	}
}

func TestDuplicateAdd(t *testing.T) {
	fs := New(nil, 64)
	if err := fs.Add("x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Add("x", []byte("2")); err != ErrExist {
		t.Fatalf("dup add = %v", err)
	}
}

func TestBadHandle(t *testing.T) {
	fs := New(nil, 64)
	if _, err := fs.ReadAt(Handle(5), make([]byte, 4), 0); err != ErrBadHandle {
		t.Fatalf("ReadAt empty slot = %v", err)
	}
	if _, err := fs.Size(Handle(-1)); err != ErrBadHandle {
		t.Fatalf("Size(-1) = %v", err)
	}
	if _, err := fs.Size(Handle(9999)); err != ErrBadHandle {
		t.Fatalf("Size(oob) = %v", err)
	}
}

func TestReadAtOffsets(t *testing.T) {
	fs := New(nil, 64)
	fs.Add("f", []byte("0123456789"))
	h, _ := fs.Open("f")
	buf := make([]byte, 4)
	if n, _ := fs.ReadAt(h, buf, 3); n != 4 || string(buf) != "3456" {
		t.Fatalf("offset read = %q", buf[:n])
	}
	if n, _ := fs.ReadAt(h, buf, 100); n != 0 {
		t.Fatalf("past-EOF read = %d bytes", n)
	}
}

// TestQuickAddOpen property: any set of distinct names added can all be
// opened, and names never added cannot.
func TestQuickAddOpen(t *testing.T) {
	f := func(keys []string) bool {
		fs := New(nil, 4096)
		seen := map[string]bool{}
		for _, k := range keys {
			if len(k) == 0 || len(k) > 128 || seen[k] {
				continue
			}
			if fs.Count() >= fs.Capacity()*3/4-1 {
				break
			}
			if err := fs.Add(k, []byte(k)); err != nil {
				return false
			}
			seen[k] = true
		}
		for k := range seen {
			if _, err := fs.Open(k); err != nil {
				return false
			}
		}
		_, err := fs.Open("\x00never-a-key\x01")
		return err == ErrNotExist
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
