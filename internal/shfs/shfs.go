// Package shfs implements SHFS, the specialized hash-based filesystem
// ported from MiniCache [39] that the paper's §6.3 experiment hooks a
// web cache into *directly*, bypassing vfscore entirely. Where a VFS
// open() pays path normalization, per-component dentry walks, vnode
// allocation and locking (~1600 cycles), an SHFS open is a single hash
// probe into a flat bucket table (~300 cycles) — the 5-7x reduction of
// Figure 22.
//
// The design follows MiniCache's SHFS: a flat namespace (no directories),
// a fixed power-of-two bucket table addressed by name hash with linear
// probing, and content blobs referenced by table entries.
package shfs

import (
	"errors"

	"unikraft/internal/sim"
)

// Errors.
var (
	ErrNotExist  = errors.New("shfs: no such object")
	ErrExist     = errors.New("shfs: object exists")
	ErrFull      = errors.New("shfs: volume full")
	ErrBadHandle = errors.New("shfs: bad handle")
	ErrSealed    = errors.New("shfs: volume sealed")
)

// Open-path costs (cycles), calibrated to Fig 22's SHFS bars: 308 cycles
// when the file exists, 291 when it does not (a miss probes an empty
// bucket and returns without handle setup).
const (
	costReqBase = 230 // request setup: args, handle slot, return path
	costHash    = 26
	costProbe   = 35 // per bucket examined
	costCompare = 17 // name comparison on candidate hit
)

// Handle references an open SHFS object.
type Handle int32

// entry is one bucket-table slot.
type entry struct {
	used bool
	hash uint64
	name string
	data []byte
}

// FS is an SHFS volume.
type FS struct {
	machine *sim.Machine
	buckets []entry
	mask    uint64
	count   int
	// sealed freezes the bucket table (see Seal/View): Add fails, and
	// read-only views sharing the table become safe to hand to
	// concurrently running clones.
	sealed bool
}

// New creates a volume with the given bucket count (rounded up to a
// power of two; default 1024).
func New(m *sim.Machine, buckets int) *FS {
	if buckets < 16 {
		buckets = 1024
	}
	n := 16
	for n < buckets {
		n <<= 1
	}
	return &FS{machine: m, buckets: make([]entry, n), mask: uint64(n - 1)}
}

func (fs *FS) charge(c uint64) {
	if fs.machine != nil {
		fs.machine.Charge(c)
	}
}

// hashName is FNV-1a 64.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Add inserts an object at volume-population time (the MiniCache volume
// is built offline; Add is the builder). Sealed volumes refuse. The
// content is copied into the volume: sealed blobs — and every clone
// View's zero-copy ReadSlice of them — stay immutable even if the
// caller later reuses its buffer, matching how ramfs population copies
// through WriteAt.
func (fs *FS) Add(name string, data []byte) error {
	if fs.sealed {
		return ErrSealed
	}
	if fs.count >= len(fs.buckets)*3/4 {
		return ErrFull
	}
	data = append([]byte(nil), data...)
	h := hashName(name)
	i := h & fs.mask
	for fs.buckets[i].used {
		if fs.buckets[i].hash == h && fs.buckets[i].name == name {
			return ErrExist
		}
		i = (i + 1) & fs.mask
	}
	fs.buckets[i] = entry{used: true, hash: h, name: name, data: data}
	fs.count++
	return nil
}

// Open looks an object up by name: the specialized fast path. A hit
// charges ~308 cycles and a miss ~291 (one empty-bucket probe, no
// handle setup), matching Fig 22's SHFS bars.
func (fs *FS) Open(name string) (Handle, error) {
	fs.charge(costReqBase + costHash)
	h := hashName(name)
	i := h & fs.mask
	probes := uint64(1)
	for fs.buckets[i].used {
		if fs.buckets[i].hash == h {
			fs.charge(costCompare)
			if fs.buckets[i].name == name {
				fs.charge(probes * costProbe)
				return Handle(i), nil
			}
		}
		i = (i + 1) & fs.mask
		probes++
	}
	fs.charge(probes * costProbe)
	return -1, ErrNotExist
}

// Seal freezes the volume: no further Add calls succeed. A sealed
// volume's bucket table is immutable, which is what makes View safe.
func (fs *FS) Seal() { fs.sealed = true }

// Sealed reports whether the volume is frozen.
func (fs *FS) Sealed() bool { return fs.sealed }

// View returns a read-only handle on a sealed volume that charges its
// operations to m instead of the volume's own machine. Snapshot-forked
// clones each take a View: the bucket table and content blobs are
// shared (one copy of the site for the whole fleet, exactly like the
// COW-shared template pages), while every clone's opens and reads bill
// its own simulated CPU. Views of an unsealed volume are refused — a
// concurrent Add would race every clone.
func (fs *FS) View(m *sim.Machine) (*FS, error) {
	if !fs.sealed {
		return nil, ErrSealed
	}
	return &FS{machine: m, buckets: fs.buckets, mask: fs.mask, count: fs.count, sealed: true}, nil
}

// ReadSlice returns a zero-copy view of object content — the
// specialized sendfile path: no per-byte charge, just the handoff. The
// slice stays valid forever on a sealed volume (content blobs are
// immutable).
func (fs *FS) ReadSlice(h Handle, off int64, n int) ([]byte, error) {
	e, err := fs.entryOf(h)
	if err != nil {
		return nil, err
	}
	if off < 0 || off >= int64(len(e.data)) {
		return nil, nil
	}
	end := off + int64(n)
	if end > int64(len(e.data)) {
		end = int64(len(e.data))
	}
	fs.charge(40)
	return e.data[off:end], nil
}

// ReadAt copies object content.
func (fs *FS) ReadAt(h Handle, p []byte, off int64) (int, error) {
	e, err := fs.entryOf(h)
	if err != nil {
		return 0, err
	}
	if off < 0 || off >= int64(len(e.data)) {
		return 0, nil
	}
	n := copy(p, e.data[off:])
	fs.charge(40 + uint64(n)/16)
	return n, nil
}

// Size reports an object's content length.
func (fs *FS) Size(h Handle) (int64, error) {
	e, err := fs.entryOf(h)
	if err != nil {
		return 0, err
	}
	return int64(len(e.data)), nil
}

// Name reports an object's name.
func (fs *FS) Name(h Handle) (string, error) {
	e, err := fs.entryOf(h)
	if err != nil {
		return "", err
	}
	return e.name, nil
}

// Close releases a handle. SHFS handles are bucket references, so this
// is free — mirroring MiniCache, where "closing" is dropping the hash
// table pointer.
func (fs *FS) Close(h Handle) error {
	_, err := fs.entryOf(h)
	return err
}

// Count reports stored objects.
func (fs *FS) Count() int { return fs.count }

// Capacity reports the bucket count.
func (fs *FS) Capacity() int { return len(fs.buckets) }

func (fs *FS) entryOf(h Handle) (*entry, error) {
	if h < 0 || int(h) >= len(fs.buckets) || !fs.buckets[h].used {
		return nil, ErrBadHandle
	}
	return &fs.buckets[h], nil
}
