// Package tlsf implements the Two-Level Segregated Fit real-time memory
// allocator (Masmano et al., ECRTS'04 [53]), one of the five ukalloc
// backends evaluated in the paper. TLSF provides O(1) malloc and free
// with low, bounded fragmentation, which is why it both boots fast
// (Fig 14: 0.51ms) and sustains high steady-state throughput (Fig 15).
//
// The implementation follows the canonical design: a first-level bitmap
// segregates free blocks by power-of-two size ranges, a second-level
// bitmap subdivides each range into 16 linear subranges, and boundary
// tags (size words plus a physical-predecessor pointer in every block
// header) enable O(1) coalescing with both physical neighbours.
package tlsf

import (
	"fmt"
	"math/bits"

	"unikraft/internal/ukalloc"
)

func init() {
	ukalloc.RegisterBackend("tlsf", func(sink ukalloc.CostSink) ukalloc.Allocator {
		return New(sink)
	})
}

const (
	// slLog2 is the second-level subdivision: 2^4 = 16 lists per first
	// level range.
	slLog2 = 4
	slSize = 1 << slLog2

	// flShift: sizes below 1<<flShift all live in first-level bin 0,
	// linearly subdivided. 1<<8 = 256 bytes.
	flShift = 8
	// flMax supports heaps up to 2^40 bytes.
	flMax = 40
	flLen = flMax - flShift + 1

	headerSize = 16 // [0:8] size|flags, [8:16] prevPhys
	minPayload = 16 // room for free-list links
	minBlock   = headerSize + minPayload

	base = 64 // guard: offset 0 never returned

	flagFree = 1 << 0

	nilRef = -1
)

// Alloc is the TLSF allocator.
type Alloc struct {
	sink  ukalloc.CostSink
	arena []byte

	flBitmap uint64
	slBitmap [flLen]uint32
	heads    [flLen][slSize]int

	end int // offset of the terminating sentinel block

	stats ukalloc.Stats
	used  int
}

// New returns an uninitialized TLSF allocator. sink may be nil.
func New(sink ukalloc.CostSink) *Alloc { return &Alloc{sink: sink} }

// Name implements ukalloc.Allocator.
func (a *Alloc) Name() string { return "tlsf" }

func (a *Alloc) charge(c uint64) {
	if a.sink != nil {
		a.sink.Charge(c)
	}
}

// Init implements ukalloc.Allocator. TLSF initialization is O(1): clear
// two bitmaps and insert the whole heap as one free block.
func (a *Alloc) Init(arena []byte) error {
	if len(arena) < base+minBlock+headerSize {
		return ukalloc.ErrHeapTooSmall
	}
	a.arena = arena
	a.flBitmap = 0
	for i := range a.heads {
		a.slBitmap[i] = 0
		for j := range a.heads[i] {
			a.heads[i][j] = nilRef
		}
	}
	// Lay out one free block spanning [base, end) and a zero-size used
	// sentinel at the end so physical-next walks terminate.
	total := (len(arena) - base - 2*headerSize) &^ 15
	a.end = base + headerSize + total
	a.setHeader(base, total, true)
	a.setPrevPhys(base, nilRef)
	a.setHeader(a.end, 0, false)
	a.setPrevPhys(a.end, base)
	a.insertFree(base, total)

	a.used = 0
	a.stats = ukalloc.Stats{HeapBytes: len(arena), FreeBytes: total}
	a.charge(400) // bitmap clears + single insert
	return nil
}

// --- block accessors -------------------------------------------------
//
// Block layout at arena offset off:
//
//	off+0  : uint64 size<<8 | flags (payload size, excludes header)
//	off+8  : int64 offset of physical predecessor block (nilRef if first)
//	off+16 : payload; free blocks store nextFree/prevFree in first 16B

func (a *Alloc) setHeader(off, size int, free bool) {
	w := uint64(size) << 8
	if free {
		w |= flagFree
	}
	le64put(a.arena[off:], w)
}

func (a *Alloc) header(off int) (size int, free bool) {
	w := le64(a.arena[off:])
	return int(w >> 8), w&flagFree != 0
}

func (a *Alloc) setPrevPhys(off, prev int) { le64put(a.arena[off+8:], uint64(int64(prev))) }
func (a *Alloc) prevPhys(off int) int      { return int(int64(le64(a.arena[off+8:]))) }

func (a *Alloc) nextFree(off int) int   { return int(int64(le64(a.arena[off+16:]))) }
func (a *Alloc) prevFree(off int) int   { return int(int64(le64(a.arena[off+24:]))) }
func (a *Alloc) setNextFree(off, v int) { le64put(a.arena[off+16:], uint64(int64(v))) }
func (a *Alloc) setPrevFree(off, v int) { le64put(a.arena[off+24:], uint64(int64(v))) }

// physNext returns the offset of the physically following block.
func physNext(off, size int) int { return off + headerSize + size }

// --- two-level mapping -----------------------------------------------

// mappingInsert computes the (fl, sl) bin a free block of `size` belongs
// to.
func mappingInsert(size int) (fl, sl int) {
	if size < 1<<flShift {
		return 0, size >> (flShift - slLog2)
	}
	f := bits.Len(uint(size)) - 1
	sl = (size >> (f - slLog2)) & (slSize - 1)
	fl = f - flShift + 1
	if fl >= flLen {
		fl = flLen - 1
		sl = slSize - 1
	}
	return fl, sl
}

// mappingSearch rounds a request up so that any block found in the
// resulting bin is guaranteed large enough, then maps it.
func mappingSearch(size int) (fl, sl int, rounded int) {
	if size >= 1<<flShift {
		round := (1 << (bits.Len(uint(size)) - 1 - slLog2)) - 1
		if size <= (1<<(flMax+1))-round { // overflow guard
			size += round
			size &^= round
		}
	}
	fl, sl = mappingInsert(size)
	return fl, sl, size
}

func (a *Alloc) insertFree(off, size int) {
	fl, sl := mappingInsert(size)
	head := a.heads[fl][sl]
	a.setNextFree(off, head)
	a.setPrevFree(off, nilRef)
	if head != nilRef {
		a.setPrevFree(head, off)
	}
	a.heads[fl][sl] = off
	a.slBitmap[fl] |= 1 << uint(sl)
	a.flBitmap |= 1 << uint(fl)
	a.setHeader(off, size, true)
}

func (a *Alloc) removeFree(off, size int) {
	fl, sl := mappingInsert(size)
	next, prev := a.nextFree(off), a.prevFree(off)
	if prev == nilRef {
		a.heads[fl][sl] = next
		if next == nilRef {
			a.slBitmap[fl] &^= 1 << uint(sl)
			if a.slBitmap[fl] == 0 {
				a.flBitmap &^= 1 << uint(fl)
			}
		}
	} else {
		a.setNextFree(prev, next)
	}
	if next != nilRef {
		a.setPrevFree(next, prev)
	}
}

// findSuitable locates a free block for a request of `size` bytes using
// the two bitmap levels; O(1).
func (a *Alloc) findSuitable(size int) (off, blockSize int, ok bool) {
	fl, sl, _ := mappingSearch(size)
	slMap := a.slBitmap[fl] & (^uint32(0) << uint(sl))
	if slMap == 0 {
		flMap := a.flBitmap & (^uint64(0) << uint(fl+1))
		if flMap == 0 {
			return 0, 0, false
		}
		fl = bits.TrailingZeros64(flMap)
		slMap = a.slBitmap[fl]
	}
	sl = bits.TrailingZeros32(slMap)
	off = a.heads[fl][sl]
	if off == nilRef {
		return 0, 0, false
	}
	sz, _ := a.header(off)
	return off, sz, true
}

// Malloc implements ukalloc.Allocator.
func (a *Alloc) Malloc(n int) (ukalloc.Ptr, error) {
	if n < 0 {
		return 0, ukalloc.ErrNoMem
	}
	n = ukalloc.AlignUp(n, 16)
	if n < minPayload {
		n = minPayload
	}
	off, size, ok := a.findSuitable(n)
	if !ok || size < n {
		a.stats.Failures++
		return 0, ukalloc.ErrNoMem
	}
	a.removeFree(off, size)
	a.splitIfWorthwhile(off, size, n)
	sz, _ := a.header(off)
	a.setHeader(off, sz, false)
	a.accountAlloc(sz)
	a.charge(60)
	return ukalloc.Ptr(off + headerSize), nil
}

// splitIfWorthwhile trims block (off,size) down to `need` payload bytes,
// inserting the remainder as a new free block when it can hold minBlock.
func (a *Alloc) splitIfWorthwhile(off, size, need int) {
	if size-need < minBlock {
		return
	}
	restOff := off + headerSize + need
	restSize := size - need - headerSize
	a.setHeader(off, need, false)
	a.setHeader(restOff, restSize, true)
	a.setPrevPhys(restOff, off)
	next := physNext(restOff, restSize)
	if next <= a.end {
		a.setPrevPhys(next, restOff)
	}
	a.insertFree(restOff, restSize)
}

// Free implements ukalloc.Allocator.
func (a *Alloc) Free(p ukalloc.Ptr) error {
	if p.IsNil() {
		return nil
	}
	off := int(p) - headerSize
	if off < base || off >= a.end {
		return ukalloc.ErrBadPointer
	}
	size, free := a.header(off)
	if free || size <= 0 {
		return ukalloc.ErrBadPointer
	}
	a.accountFree(size)
	off, size = a.coalesce(off, size)
	a.insertFree(off, size)
	a.stats.Frees++
	a.charge(60)
	return nil
}

// coalesce merges block (off,size) with free physical neighbours.
func (a *Alloc) coalesce(off, size int) (int, int) {
	// Merge with next.
	next := physNext(off, size)
	if next < a.end {
		nsz, nfree := a.header(next)
		if nfree {
			a.removeFree(next, nsz)
			size += headerSize + nsz
		}
	}
	// Merge with previous.
	if prev := a.prevPhys(off); prev != nilRef {
		psz, pfree := a.header(prev)
		if pfree {
			a.removeFree(prev, psz)
			size += headerSize + psz
			off = prev
		}
	}
	a.setHeader(off, size, true)
	if n := physNext(off, size); n <= a.end {
		a.setPrevPhys(n, off)
	}
	return off, size
}

// Realloc implements ukalloc.Allocator.
func (a *Alloc) Realloc(p ukalloc.Ptr, n int) (ukalloc.Ptr, error) {
	if p.IsNil() {
		return a.Malloc(n)
	}
	if n == 0 {
		return 0, a.Free(p)
	}
	off := int(p) - headerSize
	size, free := a.header(off)
	if free || off < base {
		return 0, ukalloc.ErrBadPointer
	}
	n8 := ukalloc.AlignUp(n, 16)
	if n8 <= size {
		return p, nil // shrink in place (no split for simplicity)
	}
	// Try growing into a free successor.
	next := physNext(off, size)
	if next < a.end {
		nsz, nfree := a.header(next)
		if nfree && size+headerSize+nsz >= n8 {
			a.removeFree(next, nsz)
			merged := size + headerSize + nsz
			a.setHeader(off, merged, false)
			if nn := physNext(off, merged); nn <= a.end {
				a.setPrevPhys(nn, off)
			}
			a.splitIfWorthwhile(off, merged, n8)
			sz, _ := a.header(off)
			a.setHeader(off, sz, false)
			a.used += sz - size
			a.stats.FreeBytes -= sz - size
			a.charge(80)
			return p, nil
		}
	}
	np, err := a.Malloc(n)
	if err != nil {
		return 0, err
	}
	copy(a.arena[int(np):int(np)+size], a.arena[int(p):int(p)+size])
	a.charge(uint64(size) / 16)
	return np, a.Free(p)
}

// Memalign implements ukalloc.Allocator. It over-allocates and trims the
// leading slack into a free block so the aligned pointer begins a real
// block with its own header.
func (a *Alloc) Memalign(align, n int) (ukalloc.Ptr, error) {
	if !ukalloc.IsPow2(align) {
		return 0, ukalloc.ErrBadAlign
	}
	if align <= ukalloc.MinAlign {
		return a.Malloc(n)
	}
	n = ukalloc.AlignUp(n, 16)
	if n < minPayload {
		n = minPayload
	}
	worst := n + align + minBlock
	off, size, ok := a.findSuitable(worst)
	if !ok || size < worst {
		a.stats.Failures++
		return 0, ukalloc.ErrNoMem
	}
	a.removeFree(off, size)
	payload := off + headerSize
	aligned := ukalloc.AlignUp(payload, align)
	for aligned-payload != 0 && aligned-payload < minBlock {
		aligned += align
	}
	if gap := aligned - payload; gap > 0 {
		// Split the leading gap into its own free block.
		gapSize := gap - headerSize
		a.setHeader(off, gapSize, true)
		newOff := off + headerSize + gapSize
		a.setHeader(newOff, size-gap, false)
		a.setPrevPhys(newOff, off)
		if nn := physNext(newOff, size-gap); nn <= a.end {
			a.setPrevPhys(nn, newOff)
		}
		a.insertFree(off, gapSize)
		off = newOff
		size -= gap
	}
	a.splitIfWorthwhile(off, size, n)
	sz, _ := a.header(off)
	a.setHeader(off, sz, false)
	a.accountAlloc(sz)
	a.charge(100)
	return ukalloc.Ptr(off + headerSize), nil
}

func (a *Alloc) accountAlloc(sz int) {
	a.used += sz
	a.stats.Mallocs++
	a.stats.FreeBytes -= sz
	if a.used > a.stats.PeakUsed {
		a.stats.PeakUsed = a.used
	}
}

func (a *Alloc) accountFree(sz int) {
	a.used -= sz
	a.stats.FreeBytes += sz
}

// UsableSize implements ukalloc.Allocator.
func (a *Alloc) UsableSize(p ukalloc.Ptr) int {
	if p.IsNil() {
		return 0
	}
	off := int(p) - headerSize
	if off < base || off >= a.end {
		return 0
	}
	size, free := a.header(off)
	if free {
		return 0
	}
	return size
}

// Arena implements ukalloc.Allocator.
func (a *Alloc) Arena() []byte { return a.arena }

// Stats implements ukalloc.Allocator.
func (a *Alloc) Stats() ukalloc.Stats { return a.stats }

// CheckConsistency walks the physical block chain and the free lists,
// verifying boundary tags and bitmap coherence. Tests call it after
// random workloads.
func (a *Alloc) CheckConsistency() error {
	prev := nilRef
	off := base
	for off < a.end {
		size, free := a.header(off)
		if size < 0 || off+headerSize+size > a.end {
			return errf("block %d size %d escapes heap end %d", off, size, a.end)
		}
		if got := a.prevPhys(off); got != prev {
			return errf("block %d prevPhys=%d want %d", off, got, prev)
		}
		if free {
			nsz, nfree := a.header(physNext(off, size))
			if nfree && physNext(off, size) != a.end {
				return errf("adjacent free blocks at %d and %d (size %d/%d)", off, physNext(off, size), size, nsz)
			}
		}
		prev = off
		off = physNext(off, size)
	}
	if off != a.end {
		return errf("phys walk ended at %d, want %d", off, a.end)
	}
	// Free-list/bitmap coherence.
	for fl := 0; fl < flLen; fl++ {
		for sl := 0; sl < slSize; sl++ {
			head := a.heads[fl][sl]
			inMap := a.slBitmap[fl]&(1<<uint(sl)) != 0
			if (head != nilRef) != inMap {
				return errf("bitmap mismatch fl=%d sl=%d head=%d inMap=%v", fl, sl, head, inMap)
			}
			for b := head; b != nilRef; b = a.nextFree(b) {
				size, free := a.header(b)
				if !free {
					return errf("allocated block %d on free list", b)
				}
				gfl, gsl := mappingInsert(size)
				if gfl != fl || gsl != sl {
					return errf("block %d size %d in bin (%d,%d) want (%d,%d)", b, size, fl, sl, gfl, gsl)
				}
			}
		}
	}
	return nil
}

func errf(format string, args ...any) error {
	return fmt.Errorf("tlsf: "+format, args...)
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func le64put(b []byte, v uint64) {
	_ = b[7]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}
