package tlsf

import (
	"testing"
	"testing/quick"

	"unikraft/internal/allocators/alloctest"
	"unikraft/internal/ukalloc"
)

func mk(heap int) ukalloc.Allocator {
	a := New(nil)
	if err := a.Init(make([]byte, heap)); err != nil {
		panic(err)
	}
	return a
}

func TestConformance(t *testing.T) {
	var cur *Alloc
	mkTracked := func(heap int) ukalloc.Allocator {
		cur = mk(heap).(*Alloc)
		return cur
	}
	alloctest.Run(t, "tlsf", mkTracked, alloctest.Caps{
		Reclaims:         true,
		CheckConsistency: func() error { return cur.CheckConsistency() },
	})
}

// TestMappingMonotone property: the (fl, sl) mapping must be monotone in
// size — a larger size never maps to a strictly smaller bin. This is the
// core TLSF invariant that makes mappingSearch sound.
func TestMappingMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int(a%(1<<30))+1, int(b%(1<<30))+1
		if x > y {
			x, y = y, x
		}
		flx, slx := mappingInsert(x)
		fly, sly := mappingInsert(y)
		if flx > fly {
			return false
		}
		if flx == fly && slx > sly {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestMappingSearchSufficient property: any block that mappingInsert
// files into the bin located by mappingSearch(size) is >= size.
func TestMappingSearchSufficient(t *testing.T) {
	f := func(req uint32) bool {
		size := int(req%(1<<24)) + 16
		fl, sl, rounded := mappingSearch(size)
		if rounded < size {
			return false
		}
		// The smallest block that maps into (fl, sl) must be >= size.
		// Reconstruct that lower bound from the bin coordinates.
		var lower int
		if fl == 0 {
			lower = sl << (flShift - slLog2)
		} else {
			f2 := fl + flShift - 1
			lower = (1 << f2) | (sl << (f2 - slLog2))
		}
		return lower >= size || lower >= rounded-(1<<(fl+flShift-1-slLog2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMappingSmallSizes(t *testing.T) {
	for size := 0; size < 256; size++ {
		fl, sl := mappingInsert(size)
		if fl != 0 {
			t.Fatalf("mappingInsert(%d) fl = %d, want 0", size, fl)
		}
		if sl != size>>4 {
			t.Fatalf("mappingInsert(%d) sl = %d, want %d", size, sl, size>>4)
		}
	}
}

func TestCoalesceRestoresHeap(t *testing.T) {
	a := mk(1 << 20).(*Alloc)
	initial := a.Stats().FreeBytes
	var ptrs []ukalloc.Ptr
	for i := 0; i < 100; i++ {
		p, err := a.Malloc(1000)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	// Free odd then even indices: every free ends adjacent to a free
	// neighbour eventually, so full coalescing must yield one block.
	for i := 1; i < len(ptrs); i += 2 {
		if err := a.Free(ptrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < len(ptrs); i += 2 {
		if err := a.Free(ptrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().FreeBytes; got != initial {
		t.Fatalf("FreeBytes after drain = %d, want %d", got, initial)
	}
	// Nearly the whole heap must be allocatable as one block again
	// (exact-size requests can miss due to TLSF's bin round-up, a
	// property of the canonical algorithm).
	if _, err := a.Malloc(initial - initial/8); err != nil {
		t.Fatalf("Malloc(~whole heap) after drain: %v", err)
	}
}

func TestGrowInPlace(t *testing.T) {
	a := mk(1 << 20).(*Alloc)
	p, err := a.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing allocated after p, so growth happens in place.
	np, err := a.Realloc(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if np != p {
		t.Errorf("Realloc moved block (%d -> %d); want in-place growth into free successor", p, np)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFree(t *testing.T) {
	a := mk(1 << 20).(*Alloc)
	p, _ := a.Malloc(64)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err != ukalloc.ErrBadPointer {
		t.Errorf("double free = %v, want ErrBadPointer", err)
	}
}
