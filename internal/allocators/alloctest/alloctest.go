// Package alloctest provides a conformance and property-test harness run
// against every ukalloc backend. It verifies the invariants the paper's
// allocator experiments rely on: allocations never overlap, alignment
// guarantees hold, payload bytes survive until free, and (for reclaiming
// allocators) the heap is fully recoverable after frees.
package alloctest

import (
	"testing"
	"testing/quick"

	"unikraft/internal/sim"
	"unikraft/internal/ukalloc"
)

// Caps describes which optional behaviours a backend supports.
type Caps struct {
	// Reclaims is false for region allocators (bootalloc) whose Free is
	// a no-op: recovery and reuse tests are skipped.
	Reclaims bool
	// CheckConsistency, if non-nil, is invoked between operations in the
	// random-workload test (e.g. TLSF's structural validator).
	CheckConsistency func() error
}

// New constructs a fresh, initialized backend over a heap of the given
// size.
type New func(heapBytes int) ukalloc.Allocator

// live tracks one live allocation and its fill pattern.
type live struct {
	p       ukalloc.Ptr
	n       int
	pattern byte
}

// Run executes the full conformance suite against a backend.
func Run(t *testing.T, name string, mk New, caps Caps) {
	t.Helper()
	t.Run("Basics", func(t *testing.T) { testBasics(t, mk) })
	t.Run("Alignment", func(t *testing.T) { testAlignment(t, mk) })
	t.Run("ZeroAndNil", func(t *testing.T) { testZeroAndNil(t, mk) })
	t.Run("Calloc", func(t *testing.T) { testCalloc(t, mk) })
	t.Run("Realloc", func(t *testing.T) { testRealloc(t, mk) })
	t.Run("OOM", func(t *testing.T) { testOOM(t, mk, caps) })
	t.Run("RandomWorkload", func(t *testing.T) { testRandomWorkload(t, mk, caps) })
	t.Run("QuickNonOverlap", func(t *testing.T) { testQuickNonOverlap(t, mk) })
	if caps.Reclaims {
		t.Run("Recovery", func(t *testing.T) { testRecovery(t, mk) })
		t.Run("Churn", func(t *testing.T) { testChurn(t, mk, caps) })
	}
}

func testBasics(t *testing.T, mk New) {
	a := mk(1 << 20)
	p, err := a.Malloc(100)
	if err != nil {
		t.Fatalf("Malloc(100): %v", err)
	}
	if p.IsNil() {
		t.Fatal("Malloc returned nil Ptr without error")
	}
	if us := a.UsableSize(p); us < 100 {
		t.Fatalf("UsableSize = %d, want >= 100", us)
	}
	b := ukalloc.Bytes(a, p, 100)
	for i := range b {
		b[i] = 0xAB
	}
	if err := a.Free(p); err != nil {
		t.Fatalf("Free: %v", err)
	}
	st := a.Stats()
	if st.Mallocs != 1 || st.Frees != 1 {
		t.Fatalf("stats = %+v, want 1 malloc / 1 free", st)
	}
	if st.HeapBytes != 1<<20 {
		t.Fatalf("HeapBytes = %d, want %d", st.HeapBytes, 1<<20)
	}
}

func testAlignment(t *testing.T, mk New) {
	a := mk(4 << 20)
	for _, n := range []int{1, 7, 16, 100, 4096} {
		p, err := a.Malloc(n)
		if err != nil {
			t.Fatalf("Malloc(%d): %v", n, err)
		}
		if int(p)%ukalloc.MinAlign != 0 {
			t.Errorf("Malloc(%d) = offset %d, not %d-aligned", n, p, ukalloc.MinAlign)
		}
	}
	for _, align := range []int{16, 32, 64, 256, 4096} {
		p, err := a.Memalign(align, 64)
		if err != nil {
			t.Fatalf("Memalign(%d, 64): %v", align, err)
		}
		if int(p)%align != 0 {
			t.Errorf("Memalign(%d) = offset %d, not aligned", align, p)
		}
		if us := a.UsableSize(p); us < 64 {
			t.Errorf("Memalign(%d) usable = %d, want >= 64", align, us)
		}
		if err := a.Free(p); err != nil {
			t.Errorf("Free(memalign %d): %v", align, err)
		}
	}
	if _, err := a.Memalign(3, 8); err != ukalloc.ErrBadAlign {
		t.Errorf("Memalign(3, 8) err = %v, want ErrBadAlign", err)
	}
}

func testZeroAndNil(t *testing.T, mk New) {
	a := mk(1 << 20)
	if err := a.Free(0); err != nil {
		t.Errorf("Free(nil) = %v, want nil", err)
	}
	p, err := a.Malloc(0)
	if err != nil {
		t.Fatalf("Malloc(0): %v", err)
	}
	if p.IsNil() {
		t.Error("Malloc(0) returned nil Ptr; want a unique allocation")
	}
	if err := a.Free(p); err != nil {
		t.Errorf("Free(Malloc(0)): %v", err)
	}
	if _, err := a.Malloc(-1); err == nil {
		t.Error("Malloc(-1) succeeded; want error")
	}
}

func testCalloc(t *testing.T, mk New) {
	a := mk(1 << 20)
	// Dirty the heap first so Calloc's zeroing is observable.
	p, _ := a.Malloc(512)
	b := ukalloc.Bytes(a, p, 512)
	for i := range b {
		b[i] = 0xFF
	}
	if err := a.Free(p); err != nil {
		t.Fatalf("Free: %v", err)
	}
	cp, err := ukalloc.Calloc(a, 16, 32)
	if err != nil {
		t.Fatalf("Calloc: %v", err)
	}
	cb := ukalloc.Bytes(a, cp, 512)
	for i, v := range cb {
		if v != 0 {
			t.Fatalf("Calloc byte %d = %#x, want 0", i, v)
		}
	}
	if _, err := ukalloc.Calloc(a, 1<<40, 1<<40); err == nil {
		t.Error("Calloc overflow succeeded; want error")
	}
}

func testRealloc(t *testing.T, mk New) {
	a := mk(4 << 20)
	p, err := a.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	b := ukalloc.Bytes(a, p, 64)
	for i := range b {
		b[i] = byte(i)
	}
	np, err := a.Realloc(p, 4096)
	if err != nil {
		t.Fatalf("Realloc grow: %v", err)
	}
	nb := ukalloc.Bytes(a, np, 64)
	for i := range nb {
		if nb[i] != byte(i) {
			t.Fatalf("Realloc lost byte %d: got %d want %d", i, nb[i], byte(i))
		}
	}
	// Shrink keeps contents too.
	sp, err := a.Realloc(np, 32)
	if err != nil {
		t.Fatalf("Realloc shrink: %v", err)
	}
	sb := ukalloc.Bytes(a, sp, 32)
	for i := range sb {
		if sb[i] != byte(i) {
			t.Fatalf("shrink lost byte %d", i)
		}
	}
	// Realloc(nil) == Malloc; Realloc(p, 0) == Free.
	q, err := a.Realloc(0, 128)
	if err != nil || q.IsNil() {
		t.Fatalf("Realloc(nil, 128) = %v, %v", q, err)
	}
	z, err := a.Realloc(q, 0)
	if err != nil || !z.IsNil() {
		t.Fatalf("Realloc(p, 0) = %v, %v; want nil, nil", z, err)
	}
	if err := a.Free(sp); err != nil {
		t.Fatal(err)
	}
}

func testOOM(t *testing.T, mk New, caps Caps) {
	a := mk(256 << 10)
	if _, err := a.Malloc(1 << 30); err != ukalloc.ErrNoMem {
		t.Fatalf("huge Malloc err = %v, want ErrNoMem", err)
	}
	if a.Stats().Failures == 0 {
		t.Error("Failures counter not incremented on OOM")
	}
	// Exhaust the heap with allocations, then verify ErrNoMem is clean
	// (no panic) and, for reclaiming allocators, that freeing restores
	// service.
	var ptrs []ukalloc.Ptr
	for {
		p, err := a.Malloc(4096)
		if err != nil {
			break
		}
		ptrs = append(ptrs, p)
		if len(ptrs) > 1<<16 {
			t.Fatal("allocated implausibly many 4KiB blocks from 256KiB")
		}
	}
	if len(ptrs) == 0 {
		t.Fatal("could not allocate anything")
	}
	if caps.Reclaims {
		for _, p := range ptrs {
			if err := a.Free(p); err != nil {
				t.Fatalf("Free during drain: %v", err)
			}
		}
		if _, err := a.Malloc(4096); err != nil {
			t.Fatalf("Malloc after full drain: %v", err)
		}
	}
}

// testRandomWorkload runs a deterministic random malloc/free/realloc mix
// and continuously verifies that payloads do not stomp each other.
func testRandomWorkload(t *testing.T, mk New, caps Caps) {
	a := mk(8 << 20)
	rng := sim.NewRand(42)
	var lives []live
	check := func(l live) {
		b := ukalloc.Bytes(a, l.p, l.n)
		for i, v := range b {
			if v != l.pattern {
				t.Fatalf("allocation %d (size %d) corrupted at byte %d: got %#x want %#x",
					l.p, l.n, i, v, l.pattern)
			}
		}
	}
	fill := func(l live) {
		b := ukalloc.Bytes(a, l.p, l.n)
		for i := range b {
			b[i] = l.pattern
		}
	}
	steps := 4000
	if testing.Short() {
		steps = 800
	}
	for i := 0; i < steps; i++ {
		op := rng.Intn(100)
		switch {
		case op < 55 || len(lives) == 0: // malloc
			n := 1 + rng.Intn(2048)
			if rng.Intn(20) == 0 {
				n = 1 + rng.Intn(64<<10) // occasional large
			}
			p, err := a.Malloc(n)
			if err != nil {
				continue // heap pressure is fine
			}
			l := live{p: p, n: n, pattern: byte(rng.Intn(255) + 1)}
			fill(l)
			lives = append(lives, l)
		case op < 85 && caps.Reclaims: // free
			i := rng.Intn(len(lives))
			l := lives[i]
			check(l)
			if err := a.Free(l.p); err != nil {
				t.Fatalf("Free(%d): %v", l.p, err)
			}
			lives[i] = lives[len(lives)-1]
			lives = lives[:len(lives)-1]
		default: // realloc
			i := rng.Intn(len(lives))
			l := lives[i]
			check(l)
			n := 1 + rng.Intn(4096)
			np, err := a.Realloc(l.p, n)
			if err != nil {
				continue
			}
			keep := l.n
			if n < keep {
				keep = n
			}
			nl := live{p: np, n: keep, pattern: l.pattern}
			check(nl)
			nl.n = n
			fill(nl)
			lives[i] = nl
		}
		if caps.CheckConsistency != nil && i%64 == 0 {
			if err := caps.CheckConsistency(); err != nil {
				t.Fatalf("consistency after step %d: %v", i, err)
			}
		}
	}
	// Final verification and teardown.
	for _, l := range lives {
		check(l)
		if caps.Reclaims {
			if err := a.Free(l.p); err != nil {
				t.Fatalf("final Free: %v", err)
			}
		}
	}
	if caps.CheckConsistency != nil {
		if err := caps.CheckConsistency(); err != nil {
			t.Fatalf("final consistency: %v", err)
		}
	}
}

// testQuickNonOverlap uses testing/quick to generate allocation size
// vectors and asserts that all returned ranges are disjoint.
func testQuickNonOverlap(t *testing.T, mk New) {
	f := func(sizes []uint16) bool {
		if len(sizes) > 128 {
			sizes = sizes[:128]
		}
		a := mk(16 << 20)
		type span struct{ lo, hi int }
		var spans []span
		for _, s := range sizes {
			n := int(s)%8192 + 1
			p, err := a.Malloc(n)
			if err != nil {
				continue
			}
			if int(p)+n > len(a.Arena()) {
				return false // escaped the arena
			}
			spans = append(spans, span{int(p), int(p) + n})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
					return false // overlap
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// testRecovery verifies a reclaiming allocator gives the heap back: after
// freeing everything, a large fraction of the heap is allocatable as one
// block (buddy/TLSF coalescing must work for this to pass).
func testRecovery(t *testing.T, mk New) {
	const heap = 4 << 20
	a := mk(heap)
	var ptrs []ukalloc.Ptr
	for i := 0; i < 512; i++ {
		p, err := a.Malloc(1024)
		if err != nil {
			break
		}
		ptrs = append(ptrs, p)
	}
	// Free in interleaved order to exercise coalescing paths.
	for i := 0; i < len(ptrs); i += 2 {
		if err := a.Free(ptrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(ptrs); i += 2 {
		if err := a.Free(ptrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	big, err := a.Malloc(heap / 3)
	if err != nil {
		t.Fatalf("Malloc(heap/3) after full free: %v (coalescing broken?)", err)
	}
	if err := a.Free(big); err != nil {
		t.Fatal(err)
	}
}

// testChurn runs a fixed-live-set churn loop (the Redis-like usage
// pattern from Fig 18) and verifies the allocator neither leaks nor
// degrades into OOM.
func testChurn(t *testing.T, mk New, caps Caps) {
	a := mk(8 << 20)
	rng := sim.NewRand(7)
	slots := make([]ukalloc.Ptr, 256)
	sizes := make([]int, 256)
	iters := 20000
	if testing.Short() {
		iters = 2000
	}
	for i := 0; i < iters; i++ {
		s := rng.Intn(len(slots))
		if !slots[s].IsNil() {
			if err := a.Free(slots[s]); err != nil {
				t.Fatalf("iter %d: Free: %v", i, err)
			}
		}
		n := 16 + rng.Intn(1024)
		p, err := a.Malloc(n)
		if err != nil {
			t.Fatalf("iter %d: Malloc(%d): %v (live ~%d KiB)", i, n, err, sumKiB(sizes))
		}
		slots[s], sizes[s] = p, n
	}
	for s, p := range slots {
		if !p.IsNil() {
			if err := a.Free(p); err != nil {
				t.Fatalf("teardown Free slot %d: %v", s, err)
			}
		}
	}
	if caps.CheckConsistency != nil {
		if err := caps.CheckConsistency(); err != nil {
			t.Fatal(err)
		}
	}
}

func sumKiB(sizes []int) int {
	tot := 0
	for _, n := range sizes {
		tot += n
	}
	return tot / 1024
}
