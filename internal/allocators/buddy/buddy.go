// Package buddy implements a binary buddy allocator compatible with the
// ukalloc API, modelled on the Mini-OS page allocator that Unikraft
// inherits from Xen (paper §5.5, [41]).
//
// The allocator manages a power-of-two region of the arena. Every block
// carries a 16-byte header holding its order, a free flag and a
// validation magic; free blocks additionally thread a doubly-linked free
// list through their payload, one list per order. Allocation splits
// larger blocks top-down; freeing coalesces with the buddy (offset XOR
// size) bottom-up — the textbook algorithm, implemented for real over
// the byte arena.
//
// Like Mini-OS, initialization walks every page frame of the managed
// region to set up frame accounting, which is why the paper measures the
// buddy allocator as the slowest-booting backend (Fig 14: 3.07ms for
// nginx vs 0.49ms with the boot allocator).
package buddy

import (
	"math/bits"

	"unikraft/internal/ukalloc"
)

func init() {
	ukalloc.RegisterBackend("buddy", func(sink ukalloc.CostSink) ukalloc.Allocator {
		return New(sink)
	})
}

const (
	// minOrder is the smallest block: 2^5 = 32 bytes (16-byte header +
	// 16-byte minimum payload).
	minOrder = 5
	// maxOrders bounds the per-order free-list array (2^47 block max).
	maxOrders = 48

	headerSize = 16
	// base offsets the managed region so offset 0 is never returned and
	// payloads (block+16) are 16-byte aligned.
	base = 64

	// magic values validate headers on free. magicAligned tags the
	// back-pointer word used by Memalign.
	magicBlock   = 0xB0DD
	magicAligned = 0xA11D

	// nilRef marks an empty free-list link (region-relative offsets are
	// always >= 0, so -1 is safe).
	nilRef = -1

	// pageSize and initCostPerPage model Mini-OS's per-frame boot-time
	// initialization; see the package comment. 72 cycles/frame over the
	// 512MiB power-of-two region of a 1GiB heap gives ~2.6ms of
	// allocator init, matching Fig 14 once the rest of the nginx boot
	// pipeline (~0.7ms) is added.
	pageSize        = 4096
	initCostPerPage = 72
)

// Alloc is the buddy allocator. Offsets in free lists and headers are
// relative to the managed region's origin (arena offset `base`).
type Alloc struct {
	sink  ukalloc.CostSink
	arena []byte

	regionSize int // power of two
	maxOrder   int
	free       [maxOrders]int // head of free list per order, region-relative; nilRef if empty

	stats ukalloc.Stats
	used  int
}

// New returns an uninitialized buddy allocator. sink may be nil.
func New(sink ukalloc.CostSink) *Alloc { return &Alloc{sink: sink} }

// Name implements ukalloc.Allocator.
func (a *Alloc) Name() string { return "buddy" }

func (a *Alloc) charge(c uint64) {
	if a.sink != nil {
		a.sink.Charge(c)
	}
}

// Init implements ukalloc.Allocator.
func (a *Alloc) Init(arena []byte) error {
	if len(arena) < base+(1<<minOrder)*2 {
		return ukalloc.ErrHeapTooSmall
	}
	a.arena = arena
	avail := len(arena) - base
	// Manage the largest power-of-two prefix; the remainder is wasted,
	// as in Mini-OS where the allocator works in naturally aligned
	// power-of-two extents.
	order := bits.Len(uint(avail)) - 1
	a.regionSize = 1 << order
	a.maxOrder = order
	for i := range a.free {
		a.free[i] = nilRef
	}
	// One maximal free block covers the region.
	a.writeHeader(0, order, true)
	a.pushFree(0, order)

	a.used = 0
	a.stats = ukalloc.Stats{HeapBytes: len(arena), FreeBytes: a.regionSize}

	// Mini-OS-style per-frame initialization cost (the algorithmic work
	// is O(1) in this implementation, but the system we reproduce walks
	// the frame table; charge it so boot-time experiments see it).
	frames := a.regionSize / pageSize
	if frames < 1 {
		frames = 1
	}
	a.charge(uint64(frames) * initCostPerPage)
	return nil
}

// header layout (8 bytes at block start, region-relative offset off):
//
//	bits 0..7   order
//	bit  8      free flag
//	bits 48..63 magicBlock
//
// Free blocks keep next/prev free-list links at off+8 and off+16 (the
// link area overlaps the allocated payload, which is fine: a block is
// either free or allocated).
func (a *Alloc) writeHeader(off, order int, free bool) {
	w := uint64(order) & 0xff
	if free {
		w |= 1 << 8
	}
	w |= magicBlock << 48
	le64put(a.mem(off), w)
}

func (a *Alloc) readHeader(off int) (order int, free, ok bool) {
	w := le64(a.mem(off))
	if w>>48 != magicBlock {
		return 0, false, false
	}
	return int(w & 0xff), w&(1<<8) != 0, true
}

// mem returns the arena starting at region-relative offset off.
func (a *Alloc) mem(off int) []byte { return a.arena[base+off:] }

func (a *Alloc) linkNext(off int) int { return int(int64(le64(a.mem(off + 8)))) }
func (a *Alloc) linkPrev(off int) int { return int(int64(le64(a.mem(off + 16)))) }
func (a *Alloc) setNext(off, v int)   { le64put(a.mem(off+8), uint64(int64(v))) }
func (a *Alloc) setPrev(off, v int)   { le64put(a.mem(off+16), uint64(int64(v))) }

func (a *Alloc) pushFree(off, order int) {
	head := a.free[order]
	a.setNext(off, head)
	a.setPrev(off, nilRef)
	if head != nilRef {
		a.setPrev(head, off)
	}
	a.free[order] = off
	a.writeHeader(off, order, true)
}

func (a *Alloc) unlinkFree(off, order int) {
	next, prev := a.linkNext(off), a.linkPrev(off)
	if prev == nilRef {
		a.free[order] = next
	} else {
		a.setNext(prev, next)
	}
	if next != nilRef {
		a.setPrev(next, prev)
	}
}

// orderFor returns the smallest order whose block holds n payload bytes.
func orderFor(n int) int {
	need := n + headerSize
	if need < 1<<minOrder {
		return minOrder
	}
	o := bits.Len(uint(need - 1))
	if o < minOrder {
		o = minOrder
	}
	return o
}

// Malloc implements ukalloc.Allocator.
func (a *Alloc) Malloc(n int) (ukalloc.Ptr, error) {
	if n < 0 {
		return 0, ukalloc.ErrNoMem
	}
	if n == 0 {
		n = 1
	}
	order := orderFor(n)
	off, err := a.allocBlock(order)
	if err != nil {
		return 0, err
	}
	// Clear the word at payload start that Free uses to distinguish
	// aligned allocations (see Memalign).
	le64put(a.mem(off+8), 0)
	a.account(order, +1)
	a.charge(30)
	return ukalloc.Ptr(base + off + headerSize), nil
}

// allocBlock finds or splits a free block of exactly `order`.
func (a *Alloc) allocBlock(order int) (int, error) {
	if order > a.maxOrder {
		a.stats.Failures++
		return 0, ukalloc.ErrNoMem
	}
	work := uint64(0)
	o := order
	for o <= a.maxOrder && a.free[o] == nilRef {
		o++
		work += 4
	}
	if o > a.maxOrder {
		a.stats.Failures++
		a.charge(work)
		return 0, ukalloc.ErrNoMem
	}
	off := a.free[o]
	a.unlinkFree(off, o)
	// Split down to the requested order, returning upper halves to the
	// free lists.
	for o > order {
		o--
		upper := off + (1 << o)
		a.pushFree(upper, o)
		work += 12
	}
	a.writeHeader(off, order, false)
	a.charge(work)
	return off, nil
}

// Free implements ukalloc.Allocator.
func (a *Alloc) Free(p ukalloc.Ptr) error {
	if p.IsNil() {
		return nil
	}
	off, order, err := a.resolve(p)
	if err != nil {
		return err
	}
	a.account(order, -1)
	a.freeBlock(off, order)
	a.stats.Frees++
	a.charge(20)
	return nil
}

// resolve maps a user pointer back to its block's region-relative offset
// and order, handling the Memalign back-pointer.
func (a *Alloc) resolve(p ukalloc.Ptr) (off, order int, err error) {
	abs := int(p)
	if abs < base+headerSize || abs >= len(a.arena) {
		return 0, 0, ukalloc.ErrBadPointer
	}
	blockAbs := abs - headerSize
	if w := le64(a.arena[abs-8:]); w>>48 == magicAligned {
		blockAbs = base + int(w&0xffffffffffff)
	}
	if blockAbs < base || blockAbs >= len(a.arena) {
		return 0, 0, ukalloc.ErrBadPointer
	}
	off = blockAbs - base
	ord, free, ok := a.readHeader(off)
	if !ok || free {
		return 0, 0, ukalloc.ErrBadPointer
	}
	return off, ord, nil
}

// freeBlock returns a block to the free lists, coalescing with its buddy
// while possible.
func (a *Alloc) freeBlock(off, order int) {
	work := uint64(0)
	for order < a.maxOrder {
		buddy := off ^ (1 << order)
		if buddy+(1<<order) > a.regionSize {
			break
		}
		bOrder, bFree, ok := a.readHeader(buddy)
		if !ok || !bFree || bOrder != order {
			break
		}
		a.unlinkFree(buddy, order)
		if buddy < off {
			off = buddy
		}
		order++
		work += 16
	}
	a.pushFree(off, order)
	a.charge(work)
}

func (a *Alloc) account(order int, dir int) {
	sz := 1 << order
	if dir > 0 {
		a.used += sz
		a.stats.Mallocs++
	} else {
		a.used -= sz
	}
	a.stats.FreeBytes = a.regionSize - a.used
	if a.used > a.stats.PeakUsed {
		a.stats.PeakUsed = a.used
	}
}

// Realloc implements ukalloc.Allocator.
func (a *Alloc) Realloc(p ukalloc.Ptr, n int) (ukalloc.Ptr, error) {
	if p.IsNil() {
		return a.Malloc(n)
	}
	if n == 0 {
		return 0, a.Free(p)
	}
	off, order, err := a.resolve(p)
	if err != nil {
		return 0, err
	}
	// Same block still fits (and is not wastefully large): keep it.
	if orderFor(n) == order {
		return p, nil
	}
	np, err := a.Malloc(n)
	if err != nil {
		return 0, err
	}
	oldUsable := (base + off + (1 << order)) - int(p)
	cnt := n
	if oldUsable < cnt {
		cnt = oldUsable
	}
	copy(a.arena[int(np):int(np)+cnt], a.arena[int(p):int(p)+cnt])
	a.charge(uint64(cnt) / 16)
	return np, a.Free(p)
}

// Memalign implements ukalloc.Allocator.
func (a *Alloc) Memalign(align, n int) (ukalloc.Ptr, error) {
	if !ukalloc.IsPow2(align) {
		return 0, ukalloc.ErrBadAlign
	}
	if align <= ukalloc.MinAlign {
		return a.Malloc(n)
	}
	// Allocate enough to place an aligned payload plus the back-pointer
	// word inside the block.
	order := orderFor(n + align)
	off, err := a.allocBlock(order)
	if err != nil {
		return 0, err
	}
	payload := ukalloc.AlignUp(base+off+headerSize+8, align)
	w := uint64(magicAligned)<<48 | uint64(off)
	le64put(a.arena[payload-8:], w)
	a.account(order, +1)
	a.charge(40)
	return ukalloc.Ptr(payload), nil
}

// UsableSize implements ukalloc.Allocator.
func (a *Alloc) UsableSize(p ukalloc.Ptr) int {
	off, order, err := a.resolve(p)
	if err != nil {
		return 0
	}
	return base + off + (1 << order) - int(p)
}

// Arena implements ukalloc.Allocator.
func (a *Alloc) Arena() []byte { return a.arena }

// Stats implements ukalloc.Allocator.
func (a *Alloc) Stats() ukalloc.Stats { return a.stats }

// FreeListLengths reports the number of free blocks per order, used by
// tests to verify coalescing restores the initial single maximal block.
func (a *Alloc) FreeListLengths() map[int]int {
	out := map[int]int{}
	for o := minOrder; o <= a.maxOrder; o++ {
		n := 0
		for off := a.free[o]; off != nilRef; off = a.linkNext(off) {
			n++
		}
		if n > 0 {
			out[o] = n
		}
	}
	return out
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func le64put(b []byte, v uint64) {
	_ = b[7]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}
