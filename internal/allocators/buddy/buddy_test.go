package buddy

import (
	"testing"
	"testing/quick"

	"unikraft/internal/allocators/alloctest"
	"unikraft/internal/ukalloc"
)

func mk(heap int) ukalloc.Allocator {
	a := New(nil)
	if err := a.Init(make([]byte, heap)); err != nil {
		panic(err)
	}
	return a
}

func TestConformance(t *testing.T) {
	alloctest.Run(t, "buddy", mk, alloctest.Caps{Reclaims: true})
}

func TestOrderFor(t *testing.T) {
	cases := []struct{ n, order int }{
		{1, minOrder}, {16, minOrder}, {17, 6}, {48, 6}, {49, 7},
		{112, 7}, {113, 8}, {1000, 10}, {4080, 12}, {4081, 13},
	}
	for _, c := range cases {
		if got := orderFor(c.n); got != c.order {
			t.Errorf("orderFor(%d) = %d, want %d", c.n, got, c.order)
		}
	}
}

// TestCoalesceToSingleBlock verifies that after allocating the entire
// heap as minimum-size blocks and freeing them all, the free lists
// collapse back to the single maximal block.
func TestCoalesceToSingleBlock(t *testing.T) {
	a := New(nil)
	if err := a.Init(make([]byte, (1<<16)+base)); err != nil {
		t.Fatal(err)
	}
	if got := a.FreeListLengths(); len(got) != 1 || got[16] != 1 {
		t.Fatalf("initial free lists = %v, want {16:1}", got)
	}
	var ptrs []ukalloc.Ptr
	for {
		p, err := a.Malloc(16)
		if err != nil {
			break
		}
		ptrs = append(ptrs, p)
	}
	if want := (1 << 16) / (1 << minOrder); len(ptrs) != want {
		t.Fatalf("allocated %d min blocks, want %d", len(ptrs), want)
	}
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.FreeListLengths(); len(got) != 1 || got[16] != 1 {
		t.Fatalf("post-free lists = %v, want single order-16 block", got)
	}
}

// TestBuddyAddressInvariant property: every allocated payload's block is
// naturally aligned to its order within the region.
func TestBuddyAddressInvariant(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := New(nil)
		if err := a.Init(make([]byte, 1<<20)); err != nil {
			return false
		}
		for _, s := range sizes {
			n := int(s)%4096 + 1
			p, err := a.Malloc(n)
			if err != nil {
				continue
			}
			blockOff := int(p) - headerSize - base
			order := orderFor(n)
			if blockOff%(1<<order) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBadPointer(t *testing.T) {
	a := mk(1 << 20).(*Alloc)
	if err := a.Free(ukalloc.Ptr(12345)); err != ukalloc.ErrBadPointer {
		t.Errorf("Free(garbage) = %v, want ErrBadPointer", err)
	}
	p, _ := a.Malloc(64)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err != ukalloc.ErrBadPointer {
		t.Errorf("double Free = %v, want ErrBadPointer", err)
	}
}

func TestInitChargesPerFrame(t *testing.T) {
	var total uint64
	sink := sinkFunc(func(c uint64) { total += c })
	a := New(sink)
	if err := a.Init(make([]byte, 64<<20)); err != nil {
		t.Fatal(err)
	}
	frames := uint64((32 << 20) / pageSize) // region = largest pow2 <= arena
	if total < frames*initCostPerPage {
		t.Errorf("init charged %d cycles, want >= %d (per-frame model)", total, frames*initCostPerPage)
	}
}

type sinkFunc func(uint64)

func (f sinkFunc) Charge(c uint64) { f(c) }
