// Package bootalloc implements ukalloc's region allocator for the boot
// path (§5.5 of the paper): a bump-pointer allocator with near-zero
// initialization cost and no support for reclaiming individual frees.
// The paper uses it to demonstrate the fastest possible boot (Fig 14:
// 0.49ms nginx boot vs 3.07ms with the buddy allocator).
package bootalloc

import (
	"unikraft/internal/ukalloc"
)

func init() {
	ukalloc.RegisterBackend("bootalloc", func(sink ukalloc.CostSink) ukalloc.Allocator {
		return New(sink)
	})
}

// headerSize precedes each allocation and records its usable size so
// UsableSize and Realloc work.
const headerSize = 16

// guard reserves the front of the arena so offset 0 is never a valid
// allocation.
const guard = 64

// Alloc is the boot region allocator.
type Alloc struct {
	sink  ukalloc.CostSink
	arena []byte
	brk   int // next free offset
	stats ukalloc.Stats
}

// New returns an uninitialized boot allocator. sink may be nil.
func New(sink ukalloc.CostSink) *Alloc { return &Alloc{sink: sink} }

// Name implements ukalloc.Allocator.
func (a *Alloc) Name() string { return "bootalloc" }

func (a *Alloc) charge(c uint64) {
	if a.sink != nil {
		a.sink.Charge(c)
	}
}

// Init implements ukalloc.Allocator. A region allocator only records the
// arena bounds: this is what makes it the fastest-booting backend.
func (a *Alloc) Init(arena []byte) error {
	if len(arena) < guard+headerSize+ukalloc.MinAlign {
		return ukalloc.ErrHeapTooSmall
	}
	a.arena = arena
	a.brk = guard
	a.stats = ukalloc.Stats{HeapBytes: len(arena), FreeBytes: len(arena) - guard}
	a.charge(50) // a couple of stores
	return nil
}

// Malloc implements ukalloc.Allocator.
func (a *Alloc) Malloc(n int) (ukalloc.Ptr, error) {
	return a.alloc(ukalloc.MinAlign, n)
}

func (a *Alloc) alloc(align, n int) (ukalloc.Ptr, error) {
	if n < 0 {
		return 0, ukalloc.ErrNoMem
	}
	if n == 0 {
		n = 1
	}
	hdr := ukalloc.AlignUp(a.brk, ukalloc.MinAlign)
	p := ukalloc.AlignUp(hdr+headerSize, align)
	end := p + n
	if end > len(a.arena) {
		a.stats.Failures++
		return 0, ukalloc.ErrNoMem
	}
	a.putSize(p, n)
	a.brk = end
	a.stats.Mallocs++
	a.stats.FreeBytes = len(a.arena) - a.brk
	if used := a.brk; used > a.stats.PeakUsed {
		a.stats.PeakUsed = used
	}
	a.charge(20)
	return ukalloc.Ptr(p), nil
}

func (a *Alloc) putSize(p, n int) {
	le64put(a.arena[p-headerSize:], uint64(n))
}

func (a *Alloc) size(p ukalloc.Ptr) int {
	return int(le64(a.arena[int(p)-headerSize:]))
}

// Free implements ukalloc.Allocator. Individual frees are dropped; the
// region is reclaimed wholesale when the boot allocator is abandoned,
// exactly like Unikraft's boot region allocator.
func (a *Alloc) Free(p ukalloc.Ptr) error {
	if p.IsNil() {
		return nil
	}
	if int(p) < guard+headerSize || int(p) >= len(a.arena) {
		return ukalloc.ErrBadPointer
	}
	a.stats.Frees++
	a.charge(4)
	return nil
}

// Realloc implements ukalloc.Allocator.
func (a *Alloc) Realloc(p ukalloc.Ptr, n int) (ukalloc.Ptr, error) {
	if p.IsNil() {
		return a.Malloc(n)
	}
	if n == 0 {
		return 0, a.Free(p)
	}
	old := a.size(p)
	if n <= old {
		return p, nil
	}
	np, err := a.Malloc(n)
	if err != nil {
		return 0, err
	}
	copy(a.arena[int(np):int(np)+old], a.arena[int(p):int(p)+old])
	a.charge(uint64(old) / 16)
	return np, a.Free(p)
}

// Memalign implements ukalloc.Allocator.
func (a *Alloc) Memalign(align, n int) (ukalloc.Ptr, error) {
	if !ukalloc.IsPow2(align) {
		return 0, ukalloc.ErrBadAlign
	}
	if align < ukalloc.MinAlign {
		align = ukalloc.MinAlign
	}
	return a.alloc(align, n)
}

// UsableSize implements ukalloc.Allocator.
func (a *Alloc) UsableSize(p ukalloc.Ptr) int {
	if p.IsNil() {
		return 0
	}
	return a.size(p)
}

// Arena implements ukalloc.Allocator.
func (a *Alloc) Arena() []byte { return a.arena }

// Stats implements ukalloc.Allocator.
func (a *Alloc) Stats() ukalloc.Stats { return a.stats }

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func le64put(b []byte, v uint64) {
	_ = b[7]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}
