package bootalloc

import (
	"testing"

	"unikraft/internal/allocators/alloctest"
	"unikraft/internal/ukalloc"
)

func mk(heap int) ukalloc.Allocator {
	a := New(nil)
	if err := a.Init(make([]byte, heap)); err != nil {
		panic(err)
	}
	return a
}

func TestConformance(t *testing.T) {
	alloctest.Run(t, "bootalloc", mk, alloctest.Caps{Reclaims: false})
}

// TestBumpNeverReuses: a region allocator must never hand out the same
// byte twice, even across frees.
func TestBumpNeverReuses(t *testing.T) {
	a := mk(1 << 20)
	seen := map[ukalloc.Ptr]bool{}
	var max ukalloc.Ptr
	for i := 0; i < 100; i++ {
		p, err := a.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if seen[p] {
			t.Fatalf("pointer %d returned twice", p)
		}
		if p <= max {
			t.Fatalf("pointer %d not monotonically increasing (max %d)", p, max)
		}
		seen[p], max = true, p
		if err := a.Free(p); err != nil { // free is accepted but a no-op
			t.Fatal(err)
		}
	}
}

// TestInitCostIsTiny: bootalloc exists for Fig 14's fastest-boot story;
// its init must charge orders of magnitude less than buddy's per-frame
// walk would for the same heap.
func TestInitCostIsTiny(t *testing.T) {
	var total uint64
	a := New(sinkFunc(func(c uint64) { total += c }))
	if err := a.Init(make([]byte, 1<<30)); err != nil {
		t.Fatal(err)
	}
	if total > 10_000 {
		t.Errorf("bootalloc init charged %d cycles for 1GiB; want trivial cost", total)
	}
}

func TestExhaustion(t *testing.T) {
	a := mk(4 << 10)
	var got int
	for {
		_, err := a.Malloc(256)
		if err != nil {
			break
		}
		got++
	}
	if got == 0 || got > 16 {
		t.Fatalf("allocated %d 256B blocks from 4KiB heap; want a small positive count", got)
	}
	if a.Stats().Failures == 0 {
		t.Error("no failure recorded at exhaustion")
	}
}

type sinkFunc func(uint64)

func (f sinkFunc) Charge(c uint64) { f(c) }
