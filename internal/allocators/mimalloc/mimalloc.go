// Package mimalloc implements a mimalloc-style allocator (Leijen et al.,
// "Mimalloc: Free List Sharding in Action" [42]), the state-of-the-art
// general-purpose backend in the paper's evaluation and the default
// allocator for its application throughput measurements (§5.3).
//
// The design follows mimalloc's core idea: memory is carved into 64 KiB
// pages, each page serves exactly one size class and keeps its own
// sharded free list, so the malloc fast path is a single pop from the
// current page's list and the free fast path is a push onto the owning
// page's list — no global lists, no list walks. Pages whose blocks are
// all freed are retired and can be re-targeted at any class, bounding
// fragmentation.
//
// The paper notes mimalloc needs a thread for deferred reclamation and a
// pthread dependency; in our single-core simulated machine the deferred
// free list collapses into the local one, which matches mimalloc's
// behaviour when owner and freer are the same thread.
package mimalloc

import (
	"unikraft/internal/ukalloc"
)

func init() {
	ukalloc.RegisterBackend("mimalloc", func(sink ukalloc.CostSink) ukalloc.Allocator {
		return New(sink)
	})
}

const (
	pageShift = 16 // 64 KiB pages
	pageSize  = 1 << pageShift

	// maxSmall is the largest size served from size-class pages; larger
	// requests take the whole-page path.
	maxSmall = 8192

	nilRef = -1
)

// classes lists the block sizes of the size classes: fine-grained at the
// bottom (multiples of 16) and roughly geometric above, mirroring
// mimalloc's class spacing.
var classes = buildClasses()

func buildClasses() []int {
	var cs []int
	for s := 16; s <= 128; s += 16 {
		cs = append(cs, s)
	}
	for s := 160; s <= 256; s += 32 {
		cs = append(cs, s)
	}
	for s := 320; s <= 512; s += 64 {
		cs = append(cs, s)
	}
	for s := 640; s <= 1024; s += 128 {
		cs = append(cs, s)
	}
	for s := 1280; s <= 2048; s += 256 {
		cs = append(cs, s)
	}
	for s := 2560; s <= 4096; s += 512 {
		cs = append(cs, s)
	}
	for s := 5120; s <= maxSmall; s += 1024 {
		cs = append(cs, s)
	}
	return cs
}

// classFor maps a request size to a class index using a computed lookup;
// O(1) without a table walk.
func classFor(n int) int {
	if n <= 128 {
		return (n+15)/16*16/16 /* ceil to 16 */ - 1
	}
	// Geometric region: find the band by leading bit.
	for i := 8; i < len(classes); i++ {
		if classes[i] >= n {
			return i
		}
	}
	return -1
}

// page is the metadata for one 64 KiB page (kept outside the arena, as
// mimalloc keeps page metadata in segment headers).
type page struct {
	class     int // size-class index, or -1 when retired/free
	free      int // head of intrusive free list (arena offset), nilRef if empty
	used      int // live blocks
	capacity  int // total blocks the page can hold
	extendCnt int // blocks handed out so far via lazy extension
	base      int // arena offset of first block
	inPartial bool
	large     int // if > 0, number of pages in a large span starting here
	largeBase int // for aligned large allocations: span base page index
}

// Alloc is the mimalloc-style allocator.
type Alloc struct {
	sink  ukalloc.CostSink
	arena []byte

	pagesStart int // arena offset of page 0 (pageSize-aligned)
	nPages     int
	pages      []page
	bump       int   // next never-used page index
	freePages  []int // retired page indices (LIFO)

	partial [][]int // per-class stack of page indices with free space

	stats ukalloc.Stats
	inUse int
}

// New returns an uninitialized mimalloc-style allocator. sink may be nil.
func New(sink ukalloc.CostSink) *Alloc { return &Alloc{sink: sink} }

// Name implements ukalloc.Allocator.
func (a *Alloc) Name() string { return "mimalloc" }

func (a *Alloc) charge(c uint64) {
	if a.sink != nil {
		a.sink.Charge(c)
	}
}

// Init implements ukalloc.Allocator.
func (a *Alloc) Init(arena []byte) error {
	if len(arena) < 2*pageSize {
		return ukalloc.ErrHeapTooSmall
	}
	a.arena = arena
	a.pagesStart = pageSize // also serves as the never-return-0 guard
	a.nPages = (len(arena) - a.pagesStart) / pageSize
	if a.nPages < 1 {
		return ukalloc.ErrHeapTooSmall
	}
	a.pages = make([]page, a.nPages)
	for i := range a.pages {
		a.pages[i].class = -1
	}
	a.bump = 0
	a.freePages = a.freePages[:0]
	a.partial = make([][]int, len(classes))
	a.inUse = 0
	a.stats = ukalloc.Stats{HeapBytes: len(arena), FreeBytes: a.nPages * pageSize}
	// Segment/heap header setup plus the GC/deferred-free thread spawn
	// the paper mentions (§3.2: mimalloc needs an early allocator to
	// start its thread). Charged as a fixed boot cost.
	a.charge(uint64(len(a.pages))*8 + 1_400_000)
	return nil
}

func (a *Alloc) pageAddr(idx int) int { return a.pagesStart + idx*pageSize }

func (a *Alloc) pageIndex(p ukalloc.Ptr) int {
	return (int(p) - a.pagesStart) >> pageShift
}

// acquirePage obtains a retired or never-used page for class c.
func (a *Alloc) acquirePage(c int) int {
	var idx int
	if n := len(a.freePages); n > 0 {
		idx = a.freePages[n-1]
		a.freePages = a.freePages[:n-1]
	} else if a.bump < a.nPages {
		idx = a.bump
		a.bump++
	} else {
		return nilRef
	}
	size := classes[c]
	pg := &a.pages[idx]
	*pg = page{
		class:    c,
		free:     nilRef,
		capacity: pageSize / size,
		base:     a.pageAddr(idx),
	}
	return idx
}

// popBlock takes one block from page idx; the page must have space.
func (a *Alloc) popBlock(idx int) ukalloc.Ptr {
	pg := &a.pages[idx]
	if pg.free != nilRef {
		p := pg.free
		pg.free = a.readLink(p)
		pg.used++
		return ukalloc.Ptr(p)
	}
	// Lazy extension: hand out the next never-used block.
	p := pg.base + pg.extendCnt*classes[pg.class]
	pg.extendCnt++
	pg.used++
	return ukalloc.Ptr(p)
}

func (a *Alloc) pageHasSpace(pg *page) bool {
	return pg.free != nilRef || pg.extendCnt < pg.capacity
}

func (a *Alloc) readLink(off int) int {
	return int(int64(le64(a.arena[off:])))
}

func (a *Alloc) writeLink(off, v int) {
	le64put(a.arena[off:], uint64(int64(v)))
}

// Malloc implements ukalloc.Allocator.
func (a *Alloc) Malloc(n int) (ukalloc.Ptr, error) {
	if n < 0 {
		return 0, ukalloc.ErrNoMem
	}
	if n == 0 {
		n = 1
	}
	if n > maxSmall {
		return a.mallocLarge(n, 1)
	}
	c := classFor(n)
	// Fast path: a partial page for this class.
	stack := a.partial[c]
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		pg := &a.pages[idx]
		if pg.class != c || !a.pageHasSpace(pg) {
			// Stale entry (page retired or filled); drop it.
			stack = stack[:len(stack)-1]
			pg.inPartial = false
			continue
		}
		p := a.popBlock(idx)
		if !a.pageHasSpace(pg) {
			stack = stack[:len(stack)-1]
			pg.inPartial = false
		}
		a.partial[c] = stack
		a.accountAlloc(classes[c])
		a.charge(12) // mimalloc fast path: pop + bookkeeping
		return p, nil
	}
	a.partial[c] = stack
	// Slow path: acquire a fresh page.
	idx := a.acquirePage(c)
	if idx == nilRef {
		a.stats.Failures++
		a.charge(30)
		return 0, ukalloc.ErrNoMem
	}
	p := a.popBlock(idx)
	pg := &a.pages[idx]
	if a.pageHasSpace(pg) {
		pg.inPartial = true
		a.partial[c] = append(a.partial[c], idx)
	}
	a.accountAlloc(classes[c])
	a.charge(80) // page acquisition
	return p, nil
}

// mallocLarge allocates npages = ceil(n/pageSize) contiguous pages. The
// span is recorded in the head page's metadata. alignPages > 1 requests
// the span start on that page-count boundary.
func (a *Alloc) mallocLarge(n, alignPages int) (ukalloc.Ptr, error) {
	npages := (n + pageSize - 1) / pageSize
	// First fit over retired pages is skipped (retired pages are
	// singletons); carve from the bump region, aligning if requested.
	start := a.bump
	if alignPages > 1 {
		abs := a.pageAddr(start)
		alignedAbs := ukalloc.AlignUp(abs, alignPages*pageSize)
		start += (alignedAbs - abs) / pageSize
	}
	if start+npages > a.nPages {
		a.stats.Failures++
		a.charge(40)
		return 0, ukalloc.ErrNoMem
	}
	// Any skipped pages go to the retired list so they remain usable.
	for i := a.bump; i < start; i++ {
		a.pages[i].class = -1
		a.freePages = append(a.freePages, i)
	}
	a.bump = start + npages
	pg := &a.pages[start]
	*pg = page{class: -1, large: npages, base: a.pageAddr(start), used: 1}
	a.accountAlloc(npages * pageSize)
	a.charge(100)
	return ukalloc.Ptr(pg.base), nil
}

// Free implements ukalloc.Allocator.
func (a *Alloc) Free(p ukalloc.Ptr) error {
	if p.IsNil() {
		return nil
	}
	idx := a.pageIndex(p)
	if idx < 0 || idx >= a.nPages {
		return ukalloc.ErrBadPointer
	}
	pg := &a.pages[idx]
	if pg.large > 0 && int(p) == pg.base {
		return a.freeLarge(idx)
	}
	if pg.class < 0 || pg.used <= 0 {
		return ukalloc.ErrBadPointer
	}
	size := classes[pg.class]
	if (int(p)-pg.base)%size != 0 || int(p) >= pg.base+pg.extendCnt*size {
		return ukalloc.ErrBadPointer
	}
	a.writeLink(int(p), pg.free)
	pg.free = int(p)
	pg.used--
	a.accountFree(size)
	a.stats.Frees++
	if pg.used == 0 {
		// Retire the page for reuse by any class.
		pg.class = -1
		pg.inPartial = false
		a.freePages = append(a.freePages, idx)
		a.charge(30)
		return nil
	}
	if !pg.inPartial {
		pg.inPartial = true
		a.partial[pg.class] = append(a.partial[pg.class], idx)
	}
	a.charge(10) // mimalloc free fast path: one push
	return nil
}

func (a *Alloc) freeLarge(idx int) error {
	pg := &a.pages[idx]
	n := pg.large
	if pg.used == 0 {
		return ukalloc.ErrBadPointer
	}
	pg.used = 0
	pg.large = 0
	for i := 0; i < n; i++ {
		a.pages[idx+i].class = -1
		a.freePages = append(a.freePages, idx+i)
	}
	a.accountFree(n * pageSize)
	a.stats.Frees++
	a.charge(40)
	return nil
}

// Realloc implements ukalloc.Allocator.
func (a *Alloc) Realloc(p ukalloc.Ptr, n int) (ukalloc.Ptr, error) {
	if p.IsNil() {
		return a.Malloc(n)
	}
	if n == 0 {
		return 0, a.Free(p)
	}
	old := a.UsableSize(p)
	if old == 0 {
		return 0, ukalloc.ErrBadPointer
	}
	if n <= old && n > old/4 {
		return p, nil // fits, and not wastefully oversized
	}
	np, err := a.Malloc(n)
	if err != nil {
		return 0, err
	}
	cnt := old
	if n < cnt {
		cnt = n
	}
	copy(a.arena[int(np):int(np)+cnt], a.arena[int(p):int(p)+cnt])
	a.charge(uint64(cnt) / 16)
	return np, a.Free(p)
}

// Memalign implements ukalloc.Allocator.
func (a *Alloc) Memalign(align, n int) (ukalloc.Ptr, error) {
	if !ukalloc.IsPow2(align) {
		return 0, ukalloc.ErrBadAlign
	}
	if align <= ukalloc.MinAlign {
		return a.Malloc(n)
	}
	if n <= maxSmall && align <= maxSmall {
		// Pick the smallest class that is a multiple of align: block
		// addresses are pageBase + k*classSize with pageBase 64Ki-aligned.
		for c := classFor(n); c >= 0 && c < len(classes); c++ {
			if classes[c]%align == 0 {
				return a.mallocClass(c)
			}
		}
	}
	if align <= pageSize {
		return a.mallocLarge(max(n, 1), 1) // page-aligned covers align <= 64Ki
	}
	return a.mallocLarge(max(n, 1), align/pageSize)
}

// mallocClass allocates one block of exactly class c.
func (a *Alloc) mallocClass(c int) (ukalloc.Ptr, error) {
	return a.Malloc(classes[c]) // classFor(classes[c]) == c by construction
}

// UsableSize implements ukalloc.Allocator.
func (a *Alloc) UsableSize(p ukalloc.Ptr) int {
	if p.IsNil() {
		return 0
	}
	idx := a.pageIndex(p)
	if idx < 0 || idx >= a.nPages {
		return 0
	}
	pg := &a.pages[idx]
	if pg.large > 0 && int(p) == pg.base {
		return pg.large * pageSize
	}
	if pg.class < 0 {
		return 0
	}
	return classes[pg.class]
}

// Arena implements ukalloc.Allocator.
func (a *Alloc) Arena() []byte { return a.arena }

// Stats implements ukalloc.Allocator.
func (a *Alloc) Stats() ukalloc.Stats { return a.stats }

func (a *Alloc) accountAlloc(n int) {
	a.inUse += n
	a.stats.Mallocs++
	a.stats.FreeBytes = a.nPages*pageSize - a.inUse
	if a.inUse > a.stats.PeakUsed {
		a.stats.PeakUsed = a.inUse
	}
}

func (a *Alloc) accountFree(n int) {
	a.inUse -= n
	a.stats.FreeBytes = a.nPages*pageSize - a.inUse
}

// Classes exposes the size-class table for tests.
func Classes() []int { return append([]int(nil), classes...) }

// ClassFor exposes the class mapping for tests.
func ClassFor(n int) int { return classFor(n) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func le64put(b []byte, v uint64) {
	_ = b[7]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}
