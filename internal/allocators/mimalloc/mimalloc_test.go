package mimalloc

import (
	"testing"
	"testing/quick"

	"unikraft/internal/allocators/alloctest"
	"unikraft/internal/ukalloc"
)

func mk(heap int) ukalloc.Allocator {
	a := New(nil)
	if err := a.Init(make([]byte, heap)); err != nil {
		panic(err)
	}
	return a
}

func TestConformance(t *testing.T) {
	alloctest.Run(t, "mimalloc", mk, alloctest.Caps{Reclaims: true})
}

// TestClassMapping property: classFor(n) returns a class whose size is
// >= n, and the class below (if any) is < n — i.e. the tightest class.
func TestClassMapping(t *testing.T) {
	f := func(req uint16) bool {
		n := int(req)%maxSmall + 1
		c := classFor(n)
		if c < 0 || c >= len(classes) {
			return false
		}
		if classes[c] < n {
			return false
		}
		if c > 0 && classes[c-1] >= n {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

func TestClassesSorted(t *testing.T) {
	for i := 1; i < len(classes); i++ {
		if classes[i] <= classes[i-1] {
			t.Fatalf("classes not strictly increasing at %d: %v", i, classes)
		}
		if classes[i]%16 != 0 {
			t.Fatalf("class %d = %d not multiple of 16", i, classes[i])
		}
	}
	if classes[len(classes)-1] != maxSmall {
		t.Fatalf("largest class = %d, want %d", classes[len(classes)-1], maxSmall)
	}
}

// TestPageRetirement: a page whose blocks are all freed must be reusable
// by a different size class.
func TestPageRetirement(t *testing.T) {
	a := mk(4 << 20).(*Alloc)
	var ptrs []ukalloc.Ptr
	// Fill exactly one page of 16-byte blocks.
	cap16 := pageSize / 16
	for i := 0; i < cap16; i++ {
		p, err := a.Malloc(16)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	firstPage := a.pageIndex(ptrs[0])
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if a.pages[firstPage].class != -1 {
		t.Fatalf("page %d not retired after all frees (class=%d)", firstPage, a.pages[firstPage].class)
	}
	// Next allocation of a different class should reuse the retired page.
	p, err := a.Malloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.pageIndex(p); got != firstPage {
		t.Logf("note: reused page %d (retired %d); LIFO reuse expected but not required", got, firstPage)
	}
	if a.pages[a.pageIndex(p)].class < 0 {
		t.Fatal("allocation landed on unclaimed page")
	}
}

// TestLargeAllocations covers the whole-page span path.
func TestLargeAllocations(t *testing.T) {
	a := mk(8 << 20).(*Alloc)
	p, err := a.Malloc(3 * pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if int(p)%pageSize != 0 {
		t.Errorf("large alloc offset %d not page aligned", p)
	}
	if us := a.UsableSize(p); us < 3*pageSize {
		t.Errorf("usable = %d, want >= %d", us, 3*pageSize)
	}
	b := ukalloc.Bytes(a, p, 3*pageSize)
	b[0], b[len(b)-1] = 1, 2
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	// Freed span pages become reusable.
	q, err := a.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(q); err != nil {
		t.Fatal(err)
	}
}

// TestFastPathCheaperThanSlowPath checks the cost model mirrors the
// sharded-free-list design: steady-state mallocs are much cheaper than
// page acquisitions.
func TestFastPathCheaperThanSlowPath(t *testing.T) {
	var last uint64
	a := New(sinkFunc(func(c uint64) { last = c }))
	if err := a.Init(make([]byte, 4<<20)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Malloc(64); err != nil { // first: page acquisition
		t.Fatal(err)
	}
	slow := last
	if _, err := a.Malloc(64); err != nil { // second: fast path
		t.Fatal(err)
	}
	fast := last
	if fast >= slow {
		t.Errorf("fast path %d cycles >= slow path %d cycles", fast, slow)
	}
}

type sinkFunc func(uint64)

func (f sinkFunc) Charge(c uint64) { f(c) }
