// Package tinyalloc implements the thi-ng/tinyalloc allocator [67], a
// deliberately small and simple backend the paper evaluates alongside
// buddy, TLSF and mimalloc. It keeps a fixed table of block descriptors
// threaded onto three singly-linked lists (fresh, free, used); allocation
// is address-ordered first fit, and every free triggers an
// address-ordered insert plus a compaction sweep that merges adjacent
// free blocks.
//
// The linear list walks are exactly why the paper measures tinyalloc as
// the fastest backend for small workloads (Fig 16: +31.8% over mimalloc
// at 10 SQLite queries) but ~30% slower under sustained load (Fig 15,
// Fig 18): with many live allocations, the used-list walk on free and
// the compaction sweep dominate.
package tinyalloc

import (
	"unikraft/internal/ukalloc"
)

func init() {
	ukalloc.RegisterBackend("tinyalloc", func(sink ukalloc.CostSink) ukalloc.Allocator {
		return New(sink)
	})
}

const (
	// defaultMaxBlocks mirrors TA_MAX_BLOCKS sized for unikernel heaps.
	defaultMaxBlocks = 1 << 16
	// splitThresh: a block is split when the remainder exceeds this,
	// as in upstream tinyalloc (TA_SPLIT_THRESH, default 16).
	splitThresh = 16
	base        = 64
	nilRef      = -1
)

// block is a descriptor in the static block table. tinyalloc keeps the
// descriptors outside the heap (in C, in a static array), so we mirror
// that with a Go slice; the payload bytes still come from the arena.
type block struct {
	addr int // arena offset of payload
	size int
	next int // list link (index into blocks), nilRef terminates
}

// Alloc is the tinyalloc allocator.
type Alloc struct {
	sink  ukalloc.CostSink
	arena []byte

	blocks []block
	fresh  int // head of unused descriptor list
	free   int // head of free list (address-ordered)
	used   int // head of used list (most-recent-first, as upstream)
	top    int // bump pointer for never-used heap space

	stats ukalloc.Stats
	inUse int
}

// New returns an uninitialized tinyalloc. sink may be nil.
func New(sink ukalloc.CostSink) *Alloc { return &Alloc{sink: sink} }

// Name implements ukalloc.Allocator.
func (a *Alloc) Name() string { return "tinyalloc" }

func (a *Alloc) charge(c uint64) {
	if a.sink != nil {
		a.sink.Charge(c)
	}
}

// Init implements ukalloc.Allocator. Initialization links the block
// descriptor table onto the fresh list — O(maxBlocks), which is the
// middle ground between TLSF's O(1) and buddy's per-frame walk, matching
// its mid-pack boot time in Fig 14 (0.87ms).
func (a *Alloc) Init(arena []byte) error {
	if len(arena) < base+64 {
		return ukalloc.ErrHeapTooSmall
	}
	a.arena = arena
	a.blocks = make([]block, defaultMaxBlocks)
	for i := range a.blocks {
		a.blocks[i].next = i + 1
	}
	a.blocks[len(a.blocks)-1].next = nilRef
	a.fresh = 0
	a.free = nilRef
	a.used = nilRef
	a.top = base
	a.inUse = 0
	a.stats = ukalloc.Stats{HeapBytes: len(arena), FreeBytes: len(arena) - base}
	a.charge(uint64(len(a.blocks)) * 6) // descriptor-table init walk (one link write per entry)
	return nil
}

// allocDescriptor pops a descriptor from the fresh list.
func (a *Alloc) allocDescriptor() int {
	i := a.fresh
	if i != nilRef {
		a.fresh = a.blocks[i].next
		a.blocks[i].next = nilRef
	}
	return i
}

func (a *Alloc) releaseDescriptor(i int) {
	a.blocks[i] = block{next: a.fresh}
	a.fresh = i
}

// Malloc implements ukalloc.Allocator.
func (a *Alloc) Malloc(n int) (ukalloc.Ptr, error) {
	return a.alloc(ukalloc.MinAlign, n)
}

func (a *Alloc) alloc(align, n int) (ukalloc.Ptr, error) {
	if n < 0 {
		return 0, ukalloc.ErrNoMem
	}
	n = ukalloc.AlignUp(n, ukalloc.MinAlign)
	if n == 0 {
		n = ukalloc.MinAlign
	}
	work := uint64(10)
	// First fit over the free list. For align > MinAlign we only accept
	// blocks whose address is already aligned (tinyalloc upstream has no
	// memalign; this is the minimal faithful extension).
	prev := nilRef
	for i := a.free; i != nilRef; prev, i = i, a.blocks[i].next {
		work += 6
		b := &a.blocks[i]
		if b.size < n || b.addr%align != 0 {
			continue
		}
		// Unlink from free list.
		if prev == nilRef {
			a.free = b.next
		} else {
			a.blocks[prev].next = b.next
		}
		// Split if the remainder is worth keeping.
		if b.size-n > splitThresh {
			rest := a.allocDescriptor()
			if rest != nilRef {
				a.blocks[rest].addr = b.addr + n
				a.blocks[rest].size = b.size - n
				b.size = n
				a.insertFreeSorted(rest)
				work += 8
			}
		}
		b.next = a.used
		a.used = i
		a.accountAlloc(n)
		a.charge(work)
		return ukalloc.Ptr(b.addr), nil
	}
	// No free block fits: carve from the never-used top region.
	addr := ukalloc.AlignUp(a.top, align)
	if addr+n > len(a.arena) {
		a.stats.Failures++
		a.charge(work)
		return 0, ukalloc.ErrNoMem
	}
	i := a.allocDescriptor()
	if i == nilRef {
		a.stats.Failures++
		a.charge(work)
		return 0, ukalloc.ErrNoMem
	}
	if gap := addr - a.top; gap >= splitThresh {
		// Keep the alignment gap allocatable.
		g := a.allocDescriptor()
		if g != nilRef {
			a.blocks[g].addr = a.top
			a.blocks[g].size = gap
			a.insertFreeSorted(g)
		}
	}
	a.blocks[i] = block{addr: addr, size: n, next: a.used}
	a.used = i
	a.top = addr + n
	a.accountAlloc(n)
	a.charge(work + 12)
	return ukalloc.Ptr(addr), nil
}

// insertFreeSorted inserts descriptor i into the free list in address
// order, as upstream tinyalloc does to enable compaction.
func (a *Alloc) insertFreeSorted(i int) {
	addr := a.blocks[i].addr
	if a.free == nilRef || a.blocks[a.free].addr > addr {
		a.blocks[i].next = a.free
		a.free = i
		return
	}
	cur := a.free
	for a.blocks[cur].next != nilRef && a.blocks[a.blocks[cur].next].addr < addr {
		cur = a.blocks[cur].next
	}
	a.blocks[i].next = a.blocks[cur].next
	a.blocks[cur].next = i
}

// Free implements ukalloc.Allocator. It walks the used list to find the
// descriptor (linear, as upstream), inserts it into the address-ordered
// free list and runs the compaction sweep.
func (a *Alloc) Free(p ukalloc.Ptr) error {
	if p.IsNil() {
		return nil
	}
	work := uint64(8)
	prev := nilRef
	for i := a.used; i != nilRef; prev, i = i, a.blocks[i].next {
		work += 5
		if a.blocks[i].addr != int(p) {
			continue
		}
		if prev == nilRef {
			a.used = a.blocks[i].next
		} else {
			a.blocks[prev].next = a.blocks[i].next
		}
		a.accountFree(a.blocks[i].size)
		a.insertFreeSorted(i)
		work += a.compact()
		a.stats.Frees++
		a.charge(work)
		return nil
	}
	a.charge(work)
	return ukalloc.ErrBadPointer
}

// compact merges physically adjacent free-list entries (upstream
// ta_compact). Returns the work units spent, for cost accounting.
func (a *Alloc) compact() uint64 {
	work := uint64(0)
	i := a.free
	for i != nilRef {
		work += 4
		next := a.blocks[i].next
		for next != nilRef && a.blocks[i].addr+a.blocks[i].size == a.blocks[next].addr {
			a.blocks[i].size += a.blocks[next].size
			a.blocks[i].next = a.blocks[next].next
			a.releaseDescriptor(next)
			next = a.blocks[i].next
			work += 6
		}
		i = a.blocks[i].next
	}
	return work
}

// Realloc implements ukalloc.Allocator.
func (a *Alloc) Realloc(p ukalloc.Ptr, n int) (ukalloc.Ptr, error) {
	if p.IsNil() {
		return a.Malloc(n)
	}
	if n == 0 {
		return 0, a.Free(p)
	}
	old := a.UsableSize(p)
	if old == 0 {
		return 0, ukalloc.ErrBadPointer
	}
	if n <= old {
		return p, nil
	}
	np, err := a.Malloc(n)
	if err != nil {
		return 0, err
	}
	copy(a.arena[int(np):int(np)+old], a.arena[int(p):int(p)+old])
	a.charge(uint64(old) / 16)
	return np, a.Free(p)
}

// Memalign implements ukalloc.Allocator.
func (a *Alloc) Memalign(align, n int) (ukalloc.Ptr, error) {
	if !ukalloc.IsPow2(align) {
		return 0, ukalloc.ErrBadAlign
	}
	if align < ukalloc.MinAlign {
		align = ukalloc.MinAlign
	}
	return a.alloc(align, n)
}

// UsableSize implements ukalloc.Allocator (linear over the used list,
// like everything else in tinyalloc).
func (a *Alloc) UsableSize(p ukalloc.Ptr) int {
	for i := a.used; i != nilRef; i = a.blocks[i].next {
		if a.blocks[i].addr == int(p) {
			return a.blocks[i].size
		}
	}
	return 0
}

// Arena implements ukalloc.Allocator.
func (a *Alloc) Arena() []byte { return a.arena }

// Stats implements ukalloc.Allocator.
func (a *Alloc) Stats() ukalloc.Stats { return a.stats }

func (a *Alloc) accountAlloc(n int) {
	a.inUse += n
	a.stats.Mallocs++
	a.stats.FreeBytes = len(a.arena) - base - a.inUse
	if a.inUse > a.stats.PeakUsed {
		a.stats.PeakUsed = a.inUse
	}
}

func (a *Alloc) accountFree(n int) {
	a.inUse -= n
	a.stats.FreeBytes = len(a.arena) - base - a.inUse
}

// ListLengths reports (used, free, fresh) list lengths for tests.
func (a *Alloc) ListLengths() (used, free, fresh int) {
	for i := a.used; i != nilRef; i = a.blocks[i].next {
		used++
	}
	for i := a.free; i != nilRef; i = a.blocks[i].next {
		free++
	}
	for i := a.fresh; i != nilRef; i = a.blocks[i].next {
		fresh++
	}
	return
}
