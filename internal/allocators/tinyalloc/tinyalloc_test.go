package tinyalloc

import (
	"testing"

	"unikraft/internal/allocators/alloctest"
	"unikraft/internal/ukalloc"
)

func mk(heap int) ukalloc.Allocator {
	a := New(nil)
	if err := a.Init(make([]byte, heap)); err != nil {
		panic(err)
	}
	return a
}

func TestConformance(t *testing.T) {
	alloctest.Run(t, "tinyalloc", mk, alloctest.Caps{Reclaims: true})
}

// TestCompaction verifies that freeing adjacent blocks merges them into
// one free-list entry and releases descriptors back to the fresh list.
func TestCompaction(t *testing.T) {
	a := mk(1 << 20).(*Alloc)
	var ptrs []ukalloc.Ptr
	for i := 0; i < 8; i++ {
		p, err := a.Malloc(128)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	used0, _, _ := a.ListLengths()
	if used0 != 8 {
		t.Fatalf("used list = %d, want 8", used0)
	}
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	used, free, _ := a.ListLengths()
	if used != 0 {
		t.Errorf("used list = %d after freeing all, want 0", used)
	}
	if free != 1 {
		t.Errorf("free list = %d entries after compaction, want 1 merged block", free)
	}
}

// TestReuseAfterCompaction: a merged free block must satisfy a request
// bigger than any individual freed block.
func TestReuseAfterCompaction(t *testing.T) {
	a := mk(1 << 20).(*Alloc)
	var ptrs []ukalloc.Ptr
	for i := 0; i < 4; i++ {
		p, err := a.Malloc(256)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	top0 := a.top
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	p, err := a.Malloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if int(p) >= top0 {
		t.Errorf("Malloc(1024) carved fresh space at %d (top was %d); want reuse of merged block", p, top0)
	}
}

// TestFreeCostGrowsWithLiveSet demonstrates tinyalloc's characteristic
// degradation (the paper's Fig 16/18 effect): the used-list walk on free
// makes work grow with the number of live allocations.
func TestFreeCostGrowsWithLiveSet(t *testing.T) {
	measure := func(liveCount int) uint64 {
		var total uint64
		a := New(sinkFunc(func(c uint64) { total += c }))
		if err := a.Init(make([]byte, 32<<20)); err != nil {
			t.Fatal(err)
		}
		ptrs := make([]ukalloc.Ptr, liveCount)
		for i := range ptrs {
			p, err := a.Malloc(64)
			if err != nil {
				t.Fatal(err)
			}
			ptrs[i] = p
		}
		total = 0
		// Free the oldest allocation: worst case for the MRU used list.
		if err := a.Free(ptrs[0]); err != nil {
			t.Fatal(err)
		}
		return total
	}
	small, large := measure(16), measure(4096)
	if large < small*8 {
		t.Errorf("free cost at 4096 live = %d, at 16 live = %d; expected linear growth", large, small)
	}
}

type sinkFunc func(uint64)

func (f sinkFunc) Charge(c uint64) { f(c) }
