// Package sqldb is the repository's SQLite stand-in: a small SQL engine
// (tokenizer, parser, executor) over a B-tree row store whose row
// payloads live in a ukalloc arena. The paper's SQLite experiments
// (60k-insert runs, Fig 16/17; allocator sweeps) stress exactly this
// path: per-statement scratch allocations plus per-row payload
// allocations against the selected allocator backend.
package sqldb

import "fmt"

// btree is an in-memory B-tree keyed by int64 rowid. Order chosen so
// nodes fit a few cache lines; the structure is the classic Knuth
// B-tree with splits on the way down.
const btreeOrder = 64 // max children per interior node

type btreeNode struct {
	leaf     bool
	keys     []int64
	vals     []rowRef     // leaf only, parallel to keys
	children []*btreeNode // interior only, len(keys)+1
}

// rowRef locates an encoded row in the arena.
type rowRef struct {
	p tablePtr
	n int
}

// tablePtr aliases ukalloc.Ptr without importing it here (kept local to
// ease testing of the tree in isolation).
type tablePtr int

type btree struct {
	root  *btreeNode
	count int
}

func newBtree() *btree {
	return &btree{root: &btreeNode{leaf: true}}
}

// insert adds (key, ref); duplicate keys are a rowid-allocation bug and
// panic.
func (t *btree) insert(key int64, ref rowRef) {
	if full(t.root) {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.splitChild(t.root, 0)
	}
	t.insertNonFull(t.root, key, ref)
	t.count++
}

func full(n *btreeNode) bool { return len(n.keys) >= btreeOrder-1 }

func (t *btree) splitChild(parent *btreeNode, i int) {
	child := parent.children[i]
	mid := len(child.keys) / 2
	midKey := child.keys[mid]

	right := &btreeNode{leaf: child.leaf}
	if child.leaf {
		// Leaf split: midKey stays in the right leaf (B+-tree style).
		right.keys = append(right.keys, child.keys[mid:]...)
		right.vals = append(right.vals, child.vals[mid:]...)
		child.keys = child.keys[:mid]
		child.vals = child.vals[:mid]
	} else {
		right.keys = append(right.keys, child.keys[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.keys = child.keys[:mid]
		child.children = child.children[:mid+1]
	}

	parent.keys = append(parent.keys, 0)
	copy(parent.keys[i+1:], parent.keys[i:])
	parent.keys[i] = midKey
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

func (t *btree) insertNonFull(n *btreeNode, key int64, ref rowRef) {
	for !n.leaf {
		i := upperBound(n.keys, key)
		if full(n.children[i]) {
			t.splitChild(n, i)
			if key >= n.keys[i] {
				i++
			}
		}
		n = n.children[i]
	}
	i := upperBound(n.keys, key)
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = key
	n.vals = append(n.vals, rowRef{})
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = ref
}

// upperBound returns the first index with keys[i] > key... for interior
// descent; for leaves it is the insertion point.
func upperBound(keys []int64, key int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// get returns the ref for key.
func (t *btree) get(key int64) (rowRef, bool) {
	n := t.root
	for {
		i := upperBound(n.keys, key)
		if n.leaf {
			if i > 0 && n.keys[i-1] == key {
				return n.vals[i-1], true
			}
			return rowRef{}, false
		}
		n = n.children[i]
	}
}

// scan visits all rows in key order; fn returning false stops the scan.
func (t *btree) scan(fn func(key int64, ref rowRef) bool) {
	var walk func(n *btreeNode) bool
	walk = func(n *btreeNode) bool {
		if n.leaf {
			for i, k := range n.keys {
				if !fn(k, n.vals[i]) {
					return false
				}
			}
			return true
		}
		for i := range n.children {
			if !walk(n.children[i]) {
				return false
			}
			if i < len(n.keys) {
				// Interior keys are separators only (B+-style); rows
				// live in leaves.
				_ = i
			}
		}
		return true
	}
	walk(t.root)
}

// remove deletes key from the tree (simplified: leaf removal without
// rebalancing — deletions are rare in the evaluated workloads and the
// tree stays valid, merely possibly under-full).
func (t *btree) remove(key int64) (rowRef, bool) {
	n := t.root
	for {
		i := upperBound(n.keys, key)
		if n.leaf {
			if i > 0 && n.keys[i-1] == key {
				ref := n.vals[i-1]
				n.keys = append(n.keys[:i-1], n.keys[i:]...)
				n.vals = append(n.vals[:i-1], n.vals[i:]...)
				t.count--
				return ref, true
			}
			return rowRef{}, false
		}
		n = n.children[i]
	}
}

// validate checks B-tree invariants (ordering, separator consistency);
// tests call it.
func (t *btree) validate() error {
	var last *int64
	ok := true
	t.scan(func(k int64, _ rowRef) bool {
		if last != nil && k <= *last {
			ok = false
			return false
		}
		v := k
		last = &v
		return true
	})
	if !ok {
		return fmt.Errorf("sqldb: btree keys out of order")
	}
	return nil
}
