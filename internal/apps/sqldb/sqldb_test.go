package sqldb

import (
	"fmt"
	"testing"
	"testing/quick"

	_ "unikraft/internal/allocators/tlsf"
	"unikraft/internal/sim"
	"unikraft/internal/ukalloc"
)

func newDB(t *testing.T) *DB {
	t.Helper()
	a, err := ukalloc.NewBackend("tlsf", sim.NewMachine())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Init(make([]byte, 32<<20)); err != nil {
		t.Fatal(err)
	}
	return New(a)
}

func mustExec(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	r, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return r
}

func TestCreateInsertSelect(t *testing.T) {
	db := newDB(t)
	mustExec(t, db, "CREATE TABLE users (id INT, name TEXT)")
	mustExec(t, db, "INSERT INTO users VALUES (1, 'alice')")
	mustExec(t, db, "INSERT INTO users VALUES (2, 'bob'), (3, 'carol')")
	r := mustExec(t, db, "SELECT * FROM users")
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0][1].Text != "alice" || r.Rows[2][1].Text != "carol" {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Columns[0] != "id" || r.Columns[1] != "name" {
		t.Fatalf("columns = %v", r.Columns)
	}
}

func TestWhereAndProjection(t *testing.T) {
	db := newDB(t)
	mustExec(t, db, "CREATE TABLE t (a INT, b TEXT)")
	for i := 0; i < 50; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, 'row%d')", i%10, i))
	}
	r := mustExec(t, db, "SELECT b FROM t WHERE a = 3")
	if len(r.Rows) != 5 {
		t.Fatalf("WHERE a=3 rows = %d, want 5", len(r.Rows))
	}
	if len(r.Rows[0]) != 1 {
		t.Fatalf("projection width = %d", len(r.Rows[0]))
	}
	r = mustExec(t, db, "SELECT b FROM t WHERE b = 'row7'")
	if len(r.Rows) != 1 || r.Rows[0][0].Text != "row7" {
		t.Fatalf("text WHERE = %v", r.Rows)
	}
	r = mustExec(t, db, "SELECT COUNT(*) FROM t")
	if r.Rows[0][0].Int != 50 {
		t.Fatalf("count = %d", r.Rows[0][0].Int)
	}
}

func TestDelete(t *testing.T) {
	db := newDB(t)
	mustExec(t, db, "CREATE TABLE t (a INT)")
	for i := 0; i < 20; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d)", i%2))
	}
	r := mustExec(t, db, "DELETE FROM t WHERE a = 0")
	if r.Affected != 10 {
		t.Fatalf("deleted = %d", r.Affected)
	}
	if db.Rows("t") != 10 {
		t.Fatalf("remaining = %d", db.Rows("t"))
	}
	if err := db.ValidateTable("t"); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	db := newDB(t)
	if _, err := db.Exec("SELECT * FROM nope"); err != ErrNoTable {
		t.Errorf("missing table = %v", err)
	}
	mustExec(t, db, "CREATE TABLE t (a INT)")
	if _, err := db.Exec("CREATE TABLE t (b INT)"); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := db.Exec("SELECT nope FROM t"); err != ErrNoColumn {
		t.Errorf("missing column = %v", err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (1, 2)"); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := db.Exec("INSERT INTO t VALUES ('unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := db.Exec("BANANAS"); err == nil {
		t.Error("garbage statement accepted")
	}
}

func TestStringEscapes(t *testing.T) {
	db := newDB(t)
	mustExec(t, db, "CREATE TABLE t (s TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES ('it''s quoted')")
	r := mustExec(t, db, "SELECT s FROM t")
	if r.Rows[0][0].Text != "it's quoted" {
		t.Fatalf("escaped string = %q", r.Rows[0][0].Text)
	}
}

func TestNullHandling(t *testing.T) {
	db := newDB(t)
	mustExec(t, db, "CREATE TABLE t (a INT, b TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (NULL, 'x')")
	r := mustExec(t, db, "SELECT a FROM t")
	if !r.Rows[0][0].IsNull {
		t.Fatal("NULL lost")
	}
	// NULL never matches equality.
	r = mustExec(t, db, "SELECT * FROM t WHERE a = 0")
	if len(r.Rows) != 0 {
		t.Fatal("NULL matched =")
	}
}

func TestLargeInsertAndValidate(t *testing.T) {
	db := newDB(t)
	mustExec(t, db, "CREATE TABLE big (n INT, s TEXT)")
	const rows = 5000
	for i := 0; i < rows; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO big VALUES (%d, 'value-%d')", i, i))
	}
	if db.Rows("big") != rows {
		t.Fatalf("rows = %d", db.Rows("big"))
	}
	if err := db.ValidateTable("big"); err != nil {
		t.Fatal(err)
	}
	r := mustExec(t, db, "SELECT s FROM big WHERE n = 4321")
	if len(r.Rows) != 1 || r.Rows[0][0].Text != "value-4321" {
		t.Fatalf("lookup in big table = %v", r.Rows)
	}
}

// TestBtreeProperty: insert random keys, validate order and retrievability.
func TestBtreeProperty(t *testing.T) {
	f := func(keys []int16) bool {
		tree := newBtree()
		seen := map[int64]bool{}
		for _, k := range keys {
			key := int64(k)
			if seen[key] {
				continue
			}
			seen[key] = true
			tree.insert(key, rowRef{p: tablePtr(key), n: 1})
		}
		if tree.count != len(seen) {
			return false
		}
		if tree.validate() != nil {
			return false
		}
		for k := range seen {
			ref, ok := tree.get(k)
			if !ok || ref.p != tablePtr(k) {
				return false
			}
		}
		_, ok := tree.get(99999)
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBtreeRemove(t *testing.T) {
	tree := newBtree()
	for i := int64(0); i < 500; i++ {
		tree.insert(i, rowRef{p: tablePtr(i)})
	}
	for i := int64(0); i < 500; i += 2 {
		if _, ok := tree.remove(i); !ok {
			t.Fatalf("remove(%d) failed", i)
		}
	}
	if tree.count != 250 {
		t.Fatalf("count = %d", tree.count)
	}
	if err := tree.validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := tree.get(100); ok {
		t.Fatal("removed key still present")
	}
	if _, ok := tree.get(101); !ok {
		t.Fatal("kept key lost")
	}
}
