package sqldb

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"unikraft/internal/ukalloc"
)

// Errors.
var (
	ErrSyntax   = errors.New("sqldb: syntax error")
	ErrNoTable  = errors.New("sqldb: no such table")
	ErrNoColumn = errors.New("sqldb: no such column")
	ErrType     = errors.New("sqldb: type mismatch")
)

// ColType is a column type.
type ColType int

// Column types.
const (
	ColInt ColType = iota
	ColText
)

// Column is a table column definition.
type Column struct {
	Name string
	Type ColType
}

// Value is one cell: Int or Text according to the column.
type Value struct {
	IsNull bool
	Int    int64
	Text   string
}

func (v Value) String() string {
	if v.IsNull {
		return "NULL"
	}
	if v.Text != "" || v.Int == 0 && v.Text == "" {
		// ambiguous zero: resolved by column type at render time; keep
		// simple: prefer Text when set.
	}
	if v.Text != "" {
		return v.Text
	}
	return strconv.FormatInt(v.Int, 10)
}

// table is one stored table.
type table struct {
	name    string
	cols    []Column
	rows    *btree
	nextRow int64
	// cellBuf is the table's working buffer (SQLite's per-btree cell
	// scratch); it is periodically reallocated as rows accumulate,
	// freeing a long-lived allocation — the churn pattern behind the
	// Fig 16 allocator differences.
	cellBuf  ukalloc.Ptr
	cellSize int
}

// DB is the database engine.
type DB struct {
	alloc  ukalloc.Allocator
	tables map[string]*table

	// Statements counts executed statements.
	Statements uint64
}

// New creates a database over the given allocator backend.
func New(alloc ukalloc.Allocator) *DB {
	return &DB{alloc: alloc, tables: map[string]*table{}}
}

// Result is a query result set.
type Result struct {
	Columns []string
	Rows    [][]Value
	// Affected counts modified rows for DML.
	Affected int
}

// Exec parses and runs one SQL statement.
func (db *DB) Exec(sql string) (*Result, error) {
	db.Statements++
	toks, err := tokenize(sql)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return &Result{}, nil
	}
	// Per-statement scratch allocation, as SQLite allocates its parse
	// tree and VDBE program per statement — this is the churn that
	// makes allocator choice visible in Fig 16.
	scratch, err := db.alloc.Malloc(256 + len(sql))
	if err != nil {
		return nil, fmt.Errorf("sqldb: scratch: %w", err)
	}
	defer db.alloc.Free(scratch)

	switch strings.ToUpper(toks[0].s) {
	case "CREATE":
		return db.execCreate(toks)
	case "INSERT":
		return db.execInsert(toks)
	case "SELECT":
		return db.execSelect(toks)
	case "DELETE":
		return db.execDelete(toks)
	}
	return nil, fmt.Errorf("%w: unknown statement %q", ErrSyntax, toks[0].s)
}

// --- tokenizer -----------------------------------------------------------

type token struct {
	s     string
	isStr bool // quoted string literal
}

func tokenize(sql string) ([]token, error) {
	var out []token
	i := 0
	for i < len(sql) {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(sql) {
					return nil, fmt.Errorf("%w: unterminated string", ErrSyntax)
				}
				if sql[j] == '\'' {
					if j+1 < len(sql) && sql[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(sql[j])
				j++
			}
			out = append(out, token{s: sb.String(), isStr: true})
			i = j + 1
		case c == '(' || c == ')' || c == ',' || c == ';' || c == '*' || c == '=':
			out = append(out, token{s: string(c)})
			i++
		default:
			j := i
			for j < len(sql) && !strings.ContainsRune(" \t\n\r(),;*='", rune(sql[j])) {
				j++
			}
			out = append(out, token{s: sql[i:j]})
			i = j
		}
	}
	return out, nil
}

// parser cursor helpers.
type cursor struct {
	toks []token
	pos  int
}

func (c *cursor) peek() token {
	if c.pos >= len(c.toks) {
		return token{}
	}
	return c.toks[c.pos]
}

func (c *cursor) next() token {
	t := c.peek()
	c.pos++
	return t
}

func (c *cursor) expect(kw string) error {
	t := c.next()
	if !strings.EqualFold(t.s, kw) || t.isStr {
		return fmt.Errorf("%w: expected %q, got %q", ErrSyntax, kw, t.s)
	}
	return nil
}

// --- CREATE TABLE ---------------------------------------------------------

func (db *DB) execCreate(toks []token) (*Result, error) {
	c := &cursor{toks: toks, pos: 1}
	if err := c.expect("TABLE"); err != nil {
		return nil, err
	}
	name := strings.ToLower(c.next().s)
	if name == "" {
		return nil, ErrSyntax
	}
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("sqldb: table %q exists", name)
	}
	if err := c.expect("("); err != nil {
		return nil, err
	}
	var cols []Column
	for {
		cn := strings.ToLower(c.next().s)
		if cn == "" {
			return nil, ErrSyntax
		}
		ct := strings.ToUpper(c.next().s)
		var typ ColType
		switch ct {
		case "INT", "INTEGER":
			typ = ColInt
		case "TEXT", "VARCHAR":
			typ = ColText
		default:
			return nil, fmt.Errorf("%w: bad column type %q", ErrSyntax, ct)
		}
		cols = append(cols, Column{Name: cn, Type: typ})
		sep := c.next().s
		if sep == ")" {
			break
		}
		if sep != "," {
			return nil, ErrSyntax
		}
	}
	db.tables[name] = &table{name: name, cols: cols, rows: newBtree(), nextRow: 1}
	return &Result{}, nil
}

// --- INSERT ----------------------------------------------------------------

func (db *DB) execInsert(toks []token) (*Result, error) {
	c := &cursor{toks: toks, pos: 1}
	if err := c.expect("INTO"); err != nil {
		return nil, err
	}
	t, ok := db.tables[strings.ToLower(c.next().s)]
	if !ok {
		return nil, ErrNoTable
	}
	if err := c.expect("VALUES"); err != nil {
		return nil, err
	}
	affected := 0
	for {
		if err := c.expect("("); err != nil {
			return nil, err
		}
		vals := make([]Value, 0, len(t.cols))
		for {
			tok := c.next()
			v, err := literal(tok)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			sep := c.next().s
			if sep == ")" {
				break
			}
			if sep != "," {
				return nil, ErrSyntax
			}
		}
		if len(vals) != len(t.cols) {
			return nil, fmt.Errorf("%w: %d values for %d columns", ErrType, len(vals), len(t.cols))
		}
		if err := db.storeRow(t, vals); err != nil {
			return nil, err
		}
		affected++
		if c.peek().s != "," {
			break
		}
		c.next()
	}
	return &Result{Affected: affected}, nil
}

func literal(tok token) (Value, error) {
	if tok.isStr {
		return Value{Text: tok.s}, nil
	}
	if strings.EqualFold(tok.s, "NULL") {
		return Value{IsNull: true}, nil
	}
	n, err := strconv.ParseInt(tok.s, 10, 64)
	if err != nil {
		return Value{}, fmt.Errorf("%w: bad literal %q", ErrSyntax, tok.s)
	}
	return Value{Int: n}, nil
}

// --- row encoding in the ukalloc arena --------------------------------------

// storeRow encodes vals and inserts them under a fresh rowid.
func (db *DB) storeRow(t *table, vals []Value) error {
	size := 0
	for i, v := range vals {
		if t.cols[i].Type == ColInt {
			size += 9
		} else {
			size += 5 + len(v.Text)
		}
	}
	p, err := db.alloc.Malloc(size)
	if err != nil {
		return fmt.Errorf("sqldb: row alloc: %w", err)
	}
	buf := ukalloc.Bytes(db.alloc, p, size)
	off := 0
	for i, v := range vals {
		if v.IsNull {
			buf[off] = 0
		} else {
			buf[off] = 1
		}
		off++
		if t.cols[i].Type == ColInt {
			for s := 0; s < 8; s++ {
				buf[off+s] = byte(uint64(v.Int) >> (8 * s))
			}
			off += 8
		} else {
			n := len(v.Text)
			buf[off] = byte(n)
			buf[off+1] = byte(n >> 8)
			buf[off+2] = byte(n >> 16)
			buf[off+3] = byte(n >> 24)
			off += 4
			copy(buf[off:], v.Text)
			off += n
		}
	}
	t.rows.insert(t.nextRow, rowRef{p: tablePtr(p), n: size})
	t.nextRow++
	// Grow the cell working buffer every 32 rows (amortized realloc, as
	// SQLite grows its balance/cell buffers with page occupancy).
	if t.rows.count%32 == 0 {
		want := 512 + (t.rows.count/32%8)*256
		np, err := db.alloc.Malloc(want)
		if err == nil {
			if !t.cellBuf.IsNil() {
				db.alloc.Free(t.cellBuf)
			}
			t.cellBuf, t.cellSize = np, want
		}
	}
	return nil
}

// loadRow decodes a stored row.
func (db *DB) loadRow(t *table, ref rowRef) []Value {
	buf := ukalloc.Bytes(db.alloc, ukalloc.Ptr(ref.p), ref.n)
	out := make([]Value, len(t.cols))
	off := 0
	for i := range t.cols {
		notNull := buf[off] == 1
		off++
		if t.cols[i].Type == ColInt {
			var u uint64
			for s := 0; s < 8; s++ {
				u |= uint64(buf[off+s]) << (8 * s)
			}
			off += 8
			out[i] = Value{IsNull: !notNull, Int: int64(u)}
		} else {
			n := int(buf[off]) | int(buf[off+1])<<8 | int(buf[off+2])<<16 | int(buf[off+3])<<24
			off += 4
			out[i] = Value{IsNull: !notNull, Text: string(buf[off : off+n])}
			off += n
		}
	}
	return out
}

// --- SELECT / DELETE ---------------------------------------------------------

type whereClause struct {
	col int
	val Value
}

func (db *DB) parseWhere(c *cursor, t *table) (*whereClause, error) {
	if !strings.EqualFold(c.peek().s, "WHERE") {
		return nil, nil
	}
	c.next()
	colName := strings.ToLower(c.next().s)
	col := -1
	for i, cd := range t.cols {
		if cd.Name == colName {
			col = i
			break
		}
	}
	if col < 0 {
		return nil, ErrNoColumn
	}
	if err := c.expect("="); err != nil {
		return nil, err
	}
	v, err := literal(c.next())
	if err != nil {
		return nil, err
	}
	return &whereClause{col: col, val: v}, nil
}

func match(w *whereClause, row []Value) bool {
	if w == nil {
		return true
	}
	a := row[w.col]
	b := w.val
	if a.IsNull || b.IsNull {
		return false
	}
	if a.Text != "" || b.Text != "" {
		return a.Text == b.Text
	}
	return a.Int == b.Int
}

func (db *DB) execSelect(toks []token) (*Result, error) {
	c := &cursor{toks: toks, pos: 1}
	// Projection: * | COUNT ( * ) | col[, col...]
	var wantCols []string
	count := false
	if strings.EqualFold(c.peek().s, "COUNT") {
		c.next()
		if err := c.expect("("); err != nil {
			return nil, err
		}
		if err := c.expect("*"); err != nil {
			return nil, err
		}
		if err := c.expect(")"); err != nil {
			return nil, err
		}
		count = true
	} else if c.peek().s == "*" {
		c.next()
	} else {
		for {
			wantCols = append(wantCols, strings.ToLower(c.next().s))
			if c.peek().s != "," {
				break
			}
			c.next()
		}
	}
	if err := c.expect("FROM"); err != nil {
		return nil, err
	}
	t, ok := db.tables[strings.ToLower(c.next().s)]
	if !ok {
		return nil, ErrNoTable
	}
	where, err := db.parseWhere(c, t)
	if err != nil {
		return nil, err
	}

	proj := make([]int, 0, len(t.cols))
	var names []string
	if len(wantCols) == 0 {
		for i, cd := range t.cols {
			proj = append(proj, i)
			names = append(names, cd.Name)
		}
	} else {
		for _, w := range wantCols {
			found := -1
			for i, cd := range t.cols {
				if cd.Name == w {
					found = i
					break
				}
			}
			if found < 0 {
				return nil, ErrNoColumn
			}
			proj = append(proj, found)
			names = append(names, w)
		}
	}

	res := &Result{Columns: names}
	n := 0
	t.rows.scan(func(_ int64, ref rowRef) bool {
		row := db.loadRow(t, ref)
		if !match(where, row) {
			return true
		}
		n++
		if !count {
			out := make([]Value, len(proj))
			for i, p := range proj {
				out[i] = row[p]
			}
			res.Rows = append(res.Rows, out)
		}
		return true
	})
	if count {
		res.Columns = []string{"count"}
		res.Rows = [][]Value{{{Int: int64(n)}}}
	}
	return res, nil
}

func (db *DB) execDelete(toks []token) (*Result, error) {
	c := &cursor{toks: toks, pos: 1}
	if err := c.expect("FROM"); err != nil {
		return nil, err
	}
	t, ok := db.tables[strings.ToLower(c.next().s)]
	if !ok {
		return nil, ErrNoTable
	}
	where, err := db.parseWhere(c, t)
	if err != nil {
		return nil, err
	}
	var victims []int64
	t.rows.scan(func(key int64, ref rowRef) bool {
		if match(where, db.loadRow(t, ref)) {
			victims = append(victims, key)
		}
		return true
	})
	for _, k := range victims {
		ref, ok := t.rows.remove(k)
		if ok {
			db.alloc.Free(ukalloc.Ptr(ref.p))
		}
	}
	return &Result{Affected: len(victims)}, nil
}

// Rows reports a table's row count (tests).
func (db *DB) Rows(tableName string) int {
	t, ok := db.tables[strings.ToLower(tableName)]
	if !ok {
		return -1
	}
	return t.rows.count
}

// ValidateTable checks the underlying tree invariants (tests).
func (db *DB) ValidateTable(tableName string) error {
	t, ok := db.tables[strings.ToLower(tableName)]
	if !ok {
		return ErrNoTable
	}
	return t.rows.validate()
}
