// Package udpkv is the paper's §6.4 specialized UDP key-value store: a
// single-threaded in-memory store with two server datapaths over the
// same storage —
//
//   - the socket path (recvmsg/sendmsg equivalents through the netstack
//     socket API, the "LWIP" row of Table 4), and
//   - the specialized path coded directly against uknetdev in polling
//     mode, parsing Ethernet/IPv4/UDP inline (the "uknetdev" row that
//     matches DPDK throughput on one core).
//
// The request protocol is one datagram per op: 'G'<key> or
// 'S'<key>'\x00'<value>; responses echo 'V'<value> or '+' / '-'.
package udpkv

import (
	"bytes"

	"unikraft/internal/netstack"
	"unikraft/internal/sim"
	"unikraft/internal/uknetdev"
)

// Store is the shared in-memory table.
type Store struct {
	data map[string][]byte
	// Gets, Sets, Misses count operations.
	Gets, Sets, Misses uint64
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{data: map[string][]byte{}} }

// handle executes one request payload, returning the response payload.
func (st *Store) handle(req []byte) []byte {
	if len(req) < 2 {
		return []byte{'-'}
	}
	switch req[0] {
	case 'G':
		st.Gets++
		if v, ok := st.data[string(req[1:])]; ok {
			return append([]byte{'V'}, v...)
		}
		st.Misses++
		return []byte{'-'}
	case 'S':
		st.Sets++
		rest := req[1:]
		i := bytes.IndexByte(rest, 0)
		if i < 0 {
			return []byte{'-'}
		}
		key := string(rest[:i])
		val := append([]byte(nil), rest[i+1:]...)
		st.data[key] = val
		return []byte{'+'}
	}
	return []byte{'-'}
}

// Len reports stored keys.
func (st *Store) Len() int { return len(st.data) }

// --- socket path (Table 4 "LWIP") ---------------------------------------

// SocketServer serves the store over a bound UDP socket.
type SocketServer struct {
	Store *Store
	conn  *netstack.UDPConn
	// Served counts request/response pairs.
	Served uint64
}

// NewSocketServer binds the server on stack:port.
func NewSocketServer(stack *netstack.Stack, port uint16, st *Store) (*SocketServer, error) {
	conn, err := stack.BindUDP(port)
	if err != nil {
		return nil, err
	}
	return &SocketServer{Store: st, conn: conn}, nil
}

// Poll serves every queued datagram (single-recv-per-syscall shape; the
// batched variant is modelled by the experiment's cost profile, since
// batching changes syscall count, not stack work).
func (s *SocketServer) Poll() int {
	n := 0
	for {
		d, ok := s.conn.RecvFrom()
		if !ok {
			break
		}
		resp := s.Store.handle(d.Data)
		s.conn.SendTo(d.From, resp)
		s.Served++
		n++
	}
	return n
}

// --- specialized path (Table 4 "uknetdev") --------------------------------

// RawServer serves the store straight off a uknetdev device in polling
// mode: no socket layer, no netstack queues, no scheduler — the §6.4
// specialization ("we remove the lwip stack and scheduler altogether
// ... and code against the uknetdev API, which we use in polling
// mode").
type RawServer struct {
	Store *Store
	dev   *uknetdev.VirtioNet
	addr  netstack.IPv4Addr
	port  uint16
	// q is the device queue pair this server polls; machine is the vCPU
	// doing the work. An SMP guest runs one RawServer per core, each on
	// its own queue (see NewRawServerQueue); RSS keeps every flow on one
	// server, so the shared Store never sees a key from two cores.
	q       int
	machine *sim.Machine

	rx   []*uknetdev.Netbuf
	ipID uint16
	// Served counts key-value request/response pairs (ARP replies are
	// not requests); Dropped counts malformed or non-matching frames.
	Served, Dropped uint64
}

// NewRawServer attaches to a started device, polling queue 0 and
// charging the device's machine — the single-core Table 4 shape.
func NewRawServer(dev *uknetdev.VirtioNet, addr netstack.IPv4Addr, port uint16, st *Store) *RawServer {
	return NewRawServerQueue(dev, 0, dev.Machine(), addr, port, st)
}

// NewRawServerQueue attaches one polling server to queue q of a
// multi-queue device, charging request processing to m (the vCPU that
// owns the queue). All servers of one device share the Store.
func NewRawServerQueue(dev *uknetdev.VirtioNet, q int, m *sim.Machine, addr netstack.IPv4Addr, port uint16, st *Store) *RawServer {
	rx := make([]*uknetdev.Netbuf, 32)
	for i := range rx {
		rx[i] = uknetdev.NewNetbuf(0, 2048)
	}
	return &RawServer{Store: st, dev: dev, addr: addr, port: port, q: q, machine: m, rx: rx}
}

// Poll runs one polling iteration: burst-receive, handle, burst-send.
func (s *RawServer) Poll() int {
	served := 0
	for {
		n, more, err := s.dev.RxBurst(s.q, s.rx)
		if err != nil || n == 0 {
			return served
		}
		var replies []*uknetdev.Netbuf
		for _, nb := range s.rx[:n] {
			if out := s.handleFrame(nb.Bytes()); out != nil {
				replies = append(replies, out)
			} else {
				s.Dropped++
			}
		}
		if len(replies) > 0 {
			s.dev.TxBurst(s.q, replies)
			served += len(replies)
		}
		if !more {
			return served
		}
	}
}

// rawPerRequestCycles is the inline header parse + reply build +
// checksum work per request on the specialized path; with the driver
// descriptor costs this lands the Table 4 uknetdev row near the paper's
// 6.3M req/s on one core.
const rawPerRequestCycles = 420

// handleFrame parses an Ethernet/IPv4/UDP request inline and builds the
// reply frame. ARP is answered so a standard client stack can reach us.
func (s *RawServer) handleFrame(frame []byte) *uknetdev.Netbuf {
	s.machine.Charge(rawPerRequestCycles)
	eth, l3, err := netstack.ParseEth(frame)
	if err != nil {
		return nil
	}
	if eth.EtherType == netstack.EtherTypeARP {
		return s.handleARP(l3)
	}
	if eth.EtherType != netstack.EtherTypeIPv4 {
		return nil
	}
	ip, l4, err := netstack.ParseIPv4(l3)
	if err != nil || ip.Proto != netstack.ProtoUDP || ip.Dst != s.addr {
		return nil
	}
	udp, payload, err := netstack.ParseUDP(l4, ip.Src, ip.Dst)
	if err != nil || udp.DstPort != s.port {
		return nil
	}
	resp := s.Store.handle(payload)
	s.Served++

	// Build the reply frame in place.
	total := netstack.EthHeaderLen + netstack.IPv4HeaderLen + netstack.UDPHeaderLen + len(resp)
	out := uknetdev.NewNetbuf(0, total)
	out.Len = total
	buf := out.Bytes()
	netstack.PutEth(buf, netstack.EthHeader{Dst: eth.Src, Src: s.dev.HWAddr(), EtherType: netstack.EtherTypeIPv4})
	s.ipID++
	netstack.PutIPv4(buf[netstack.EthHeaderLen:], netstack.IPv4Header{
		TotalLen: uint16(netstack.IPv4HeaderLen + netstack.UDPHeaderLen + len(resp)),
		ID:       s.ipID, TTL: 64, Proto: netstack.ProtoUDP,
		Src: s.addr, Dst: ip.Src,
	})
	udpStart := netstack.EthHeaderLen + netstack.IPv4HeaderLen
	copy(buf[udpStart+netstack.UDPHeaderLen:], resp)
	netstack.PutUDP(buf[udpStart:],
		netstack.AddrPort{Addr: s.addr, Port: s.port},
		netstack.AddrPort{Addr: ip.Src, Port: udp.SrcPort},
		len(resp))
	return out
}

func (s *RawServer) handleARP(b []byte) *uknetdev.Netbuf {
	p, err := netstack.ParseARP(b)
	if err != nil || p.Op != netstack.ARPRequest || p.TargetIP != s.addr {
		return nil
	}
	out := uknetdev.NewNetbuf(0, netstack.EthHeaderLen+netstack.ARPLen)
	out.Len = netstack.EthHeaderLen + netstack.ARPLen
	buf := out.Bytes()
	netstack.PutEth(buf, netstack.EthHeader{Dst: p.SenderHW, Src: s.dev.HWAddr(), EtherType: netstack.EtherTypeARP})
	netstack.PutARP(buf[netstack.EthHeaderLen:], netstack.ARPPacket{
		Op:       netstack.ARPReply,
		SenderHW: s.dev.HWAddr(), SenderIP: s.addr,
		TargetHW: p.SenderHW, TargetIP: p.SenderIP,
	})
	return out
}

// Client is a simple UDP KV client over the socket API (used by tests
// and the load generators).
type Client struct {
	conn *netstack.UDPConn
	dst  netstack.AddrPort
}

// NewClient binds an ephemeral socket toward dst.
func NewClient(stack *netstack.Stack, dst netstack.AddrPort) (*Client, error) {
	return NewClientFrom(stack, 0, dst)
}

// NewClientFrom binds a specific source port toward dst (0 = ephemeral).
// Multi-queue benchmarks pin source ports so each client flow RSS-hashes
// to a chosen server queue.
func NewClientFrom(stack *netstack.Stack, srcPort uint16, dst netstack.AddrPort) (*Client, error) {
	conn, err := stack.BindUDP(srcPort)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, dst: dst}, nil
}

// Set issues a set request (response read separately via Drain).
func (c *Client) Set(key string, val []byte) error {
	req := append([]byte{'S'}, key...)
	req = append(req, 0)
	req = append(req, val...)
	return c.conn.SendTo(c.dst, req)
}

// Get issues a get request.
func (c *Client) Get(key string) error {
	return c.conn.SendTo(c.dst, append([]byte{'G'}, key...))
}

// Drain reads all pending responses, returning them.
func (c *Client) Drain() [][]byte {
	var out [][]byte
	for {
		d, ok := c.conn.RecvFrom()
		if !ok {
			return out
		}
		out = append(out, d.Data)
	}
}
