// Package webcache is the paper's §6.3 specialization case study: a web
// cache that serves objects either through the standard vfscore path or
// directly from SHFS, the purpose-built hash filesystem ported from
// MiniCache. The two backends expose identical Lookup semantics, so the
// 5-7x open-path difference of Fig 22 is a one-line swap for the app.
package webcache

import (
	"fmt"

	"unikraft/internal/shfs"
	"unikraft/internal/vfscore"
)

// Backend resolves object names to content; the cache is agnostic to
// which filesystem path it is bound to.
type Backend interface {
	// Lookup returns the object's content, or vfscore.ErrNotExist /
	// shfs.ErrNotExist when absent.
	Lookup(name string) ([]byte, error)
	// BackendName labels the configuration in results.
	BackendName() string
}

// VFSBackend serves objects through vfscore (the non-specialized
// configuration: open/fstat/read/close per request).
type VFSBackend struct {
	VFS *vfscore.VFS
}

// BackendName implements Backend.
func (b *VFSBackend) BackendName() string { return "vfscore" }

// Lookup implements Backend via the full VFS open/read/close sequence.
func (b *VFSBackend) Lookup(name string) ([]byte, error) {
	fd, err := b.VFS.Open(name, vfscore.ORdOnly)
	if err != nil {
		return nil, err
	}
	defer b.VFS.Close(fd)
	st, err := b.VFS.StatFD(fd)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, st.Size)
	n, err := b.VFS.Read(fd, buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// SHFSBackend serves objects straight from the hash filesystem (the
// specialized configuration, bypassing the VFS layer entirely).
type SHFSBackend struct {
	Vol *shfs.FS
}

// BackendName implements Backend.
func (b *SHFSBackend) BackendName() string { return "shfs" }

// Lookup implements Backend via a single hash probe + content read.
func (b *SHFSBackend) Lookup(name string) ([]byte, error) {
	h, err := b.Vol.Open(name)
	if err != nil {
		return nil, err
	}
	size, err := b.Vol.Size(h)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	n, err := b.Vol.ReadAt(h, buf, 0)
	if err != nil {
		return nil, err
	}
	b.Vol.Close(h)
	return buf[:n], nil
}

// Cache is the web cache: request counters over a pluggable backend.
type Cache struct {
	backend Backend
	// Hits and Misses count lookups.
	Hits, Misses uint64
}

// New builds a cache over the given backend.
func New(b Backend) *Cache { return &Cache{backend: b} }

// Serve handles one request for an object name, returning an HTTP-ish
// status and the content.
func (c *Cache) Serve(name string) (status int, body []byte) {
	content, err := c.backend.Lookup(name)
	if err != nil {
		c.Misses++
		return 404, nil
	}
	c.Hits++
	return 200, content
}

// Backend reports the bound backend's name.
func (c *Cache) Backend() string { return c.backend.BackendName() }

// PopulateBoth fills an SHFS volume and a ramfs-backed VFS with the same
// n objects (the Fig 22 fixture: files at the filesystem root).
func PopulateBoth(vol *shfs.FS, v *vfscore.VFS, n int) error {
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("/obj%05d.html", i)
		content := []byte(fmt.Sprintf("<html>cached object %d</html>", i))
		if err := vol.Add(name, content); err != nil {
			return err
		}
		fd, err := v.Open(name, vfscore.OCreate|vfscore.OWrOnly)
		if err != nil {
			return err
		}
		if _, err := v.Write(fd, content); err != nil {
			return err
		}
		if err := v.Close(fd); err != nil {
			return err
		}
	}
	return nil
}
