package webcache

import (
	"bytes"
	"fmt"
	"testing"

	"unikraft/internal/ramfs"
	"unikraft/internal/shfs"
	"unikraft/internal/sim"
	"unikraft/internal/vfscore"
)

func fixture(t *testing.T, n int) (*Cache, *Cache, *sim.Machine) {
	t.Helper()
	m := sim.NewMachine()
	vol := shfs.New(m, 4096)
	v := vfscore.New(m)
	if err := v.Mount("/", ramfs.New()); err != nil {
		t.Fatal(err)
	}
	if err := PopulateBoth(vol, v, n); err != nil {
		t.Fatal(err)
	}
	return New(&SHFSBackend{Vol: vol}), New(&VFSBackend{VFS: v}), m
}

func TestBothBackendsServeSameContent(t *testing.T) {
	fast, slow, _ := fixture(t, 100)
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("/obj%05d.html", i)
		s1, b1 := fast.Serve(name)
		s2, b2 := slow.Serve(name)
		if s1 != 200 || s2 != 200 {
			t.Fatalf("%s: status %d/%d", name, s1, s2)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s: content differs: %q vs %q", name, b1, b2)
		}
	}
	if fast.Hits != 100 || slow.Hits != 100 {
		t.Fatalf("hits = %d/%d", fast.Hits, slow.Hits)
	}
}

func TestMisses(t *testing.T) {
	fast, slow, _ := fixture(t, 10)
	for _, c := range []*Cache{fast, slow} {
		status, body := c.Serve("/not-there.html")
		if status != 404 || body != nil {
			t.Fatalf("%s miss = %d %q", c.Backend(), status, body)
		}
		if c.Misses != 1 {
			t.Fatalf("%s misses = %d", c.Backend(), c.Misses)
		}
	}
}

// TestSpecializationGap is Fig 22 at the application level: serving
// through SHFS costs a fraction of serving through the VFS.
func TestSpecializationGap(t *testing.T) {
	fast, slow, m := fixture(t, 1000)
	const loops = 1000
	measure := func(c *Cache) uint64 {
		before := m.CPU.Cycles()
		for i := 0; i < loops; i++ {
			if status, _ := c.Serve(fmt.Sprintf("/obj%05d.html", i%1000)); status != 200 {
				t.Fatal("unexpected miss")
			}
		}
		return (m.CPU.Cycles() - before) / loops
	}
	shfsCost := measure(fast)
	vfsCost := measure(slow)
	if vfsCost < 3*shfsCost {
		t.Errorf("vfs %d cycles vs shfs %d: expected >=3x gap (paper 5-7x on the open path)", vfsCost, shfsCost)
	}
}
