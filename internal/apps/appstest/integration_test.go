// Package appstest holds cross-module integration tests: full client/
// server application flows (HTTP, RESP, the UDP key-value protocol)
// over the simulated network stack and virtio pair — the end-to-end
// paths whose per-request cycle totals the application experiments
// (Figs 12/13/15/18, Table 4) turn into throughput numbers.
package appstest

import (
	"fmt"
	"testing"

	_ "unikraft/internal/allocators/mimalloc"
	_ "unikraft/internal/allocators/tlsf"
	"unikraft/internal/apps/httpd"
	"unikraft/internal/apps/kvstore"
	"unikraft/internal/apps/udpkv"
	"unikraft/internal/netstack"
	"unikraft/internal/sim"
	"unikraft/internal/ukalloc"
	"unikraft/internal/uknetdev"
)

type world struct {
	cm, sm         *sim.Machine
	client, server *netstack.Stack
	serverDev      *uknetdev.VirtioNet
}

func newWorld(t *testing.T) *world {
	t.Helper()
	cm, sm := sim.NewMachine(), sim.NewMachine()
	cd, sd, err := uknetdev.NewPair(cm, sm, uknetdev.VhostNet)
	if err != nil {
		t.Fatal(err)
	}
	return &world{
		cm: cm, sm: sm, serverDev: sd,
		client: netstack.New(cm, cd, netstack.Config{Addr: netstack.IP(10, 0, 0, 1)}),
		server: netstack.New(sm, sd, netstack.Config{Addr: netstack.IP(10, 0, 0, 2)}),
	}
}

func (w *world) alloc(t *testing.T, name string) ukalloc.Allocator {
	t.Helper()
	a, err := ukalloc.NewBackend(name, w.sm)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Init(make([]byte, 32<<20)); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestHTTPEndToEnd(t *testing.T) {
	w := newWorld(t)
	srv, err := httpd.New(w.server, w.alloc(t, "mimalloc"), 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := httpd.NewLoadGen(w.client, netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 80}, 5)
	pump := func() {
		for {
			moved := w.client.Poll() + w.server.Poll()
			srv.Poll()
			moved += w.server.Poll() + w.client.Poll()
			moved += gen.Collect()
			if moved == 0 {
				return
			}
		}
	}
	pump()
	if !gen.Ready() {
		t.Fatal("connections not ready")
	}
	const want = 100
	for gen.Completed < want {
		gen.Fire(1)
		pump()
	}
	if srv.Requests < want {
		t.Fatalf("server requests = %d, want >= %d", srv.Requests, want)
	}
	if srv.Errors != 0 {
		t.Fatalf("server errors = %d", srv.Errors)
	}
	// Each response carries the 612B page.
	if gen.BytesRead != gen.Completed*uint64(len(httpd.DefaultPage)) {
		t.Fatalf("bytes = %d for %d responses of %dB", gen.BytesRead, gen.Completed, len(httpd.DefaultPage))
	}
}

func TestRESPEndToEnd(t *testing.T) {
	w := newWorld(t)
	srv, err := kvstore.New(w.server, w.alloc(t, "tlsf"), 6379)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := w.client.ConnectTCP(netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 6379})
	if err != nil {
		t.Fatal(err)
	}
	pump := func() {
		for {
			moved := w.client.Poll() + w.server.Poll()
			srv.Poll()
			moved += w.server.Poll() + w.client.Poll()
			if moved == 0 {
				return
			}
		}
	}
	pump()
	send := func(cmd string) string {
		conn.Write([]byte(cmd))
		pump()
		buf := make([]byte, 4096)
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("read after %q: %v", cmd, err)
		}
		return string(buf[:n])
	}
	if got := send("*3\r\n$3\r\nSET\r\n$3\r\nfoo\r\n$3\r\nbar\r\n"); got != "+OK\r\n" {
		t.Fatalf("SET reply = %q", got)
	}
	if got := send("*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n"); got != "$3\r\nbar\r\n" {
		t.Fatalf("GET reply = %q", got)
	}
	if got := send("*2\r\n$3\r\nGET\r\n$4\r\nnope\r\n"); got != "$-1\r\n" {
		t.Fatalf("GET missing reply = %q", got)
	}
	if got := send("*2\r\n$3\r\nDEL\r\n$3\r\nfoo\r\n"); got != ":1\r\n" {
		t.Fatalf("DEL reply = %q", got)
	}
	if srv.Keys() != 0 {
		t.Fatalf("keys = %d after DEL", srv.Keys())
	}
	// Pipelined batch: all replies in order.
	batch := "*1\r\n$4\r\nPING\r\n*1\r\n$4\r\nPING\r\n*1\r\n$4\r\nPING\r\n"
	if got := send(batch); got != "+PONG\r\n+PONG\r\n+PONG\r\n" {
		t.Fatalf("pipelined reply = %q", got)
	}
}

func TestUDPKVBothPaths(t *testing.T) {
	// Socket path.
	w := newWorld(t)
	store := udpkv.NewStore()
	srv, err := udpkv.NewSocketServer(w.server, 5000, store)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := udpkv.NewClient(w.client, netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 5000})
	if err != nil {
		t.Fatal(err)
	}
	cli.Set("lang", []byte("go"))
	cli.Get("lang")
	cli.Get("missing")
	netstack.Pump(w.client, w.server)
	srv.Poll()
	netstack.Pump(w.client, w.server)
	replies := cli.Drain()
	if len(replies) != 3 {
		t.Fatalf("replies = %d, want 3", len(replies))
	}
	if string(replies[0]) != "+" || string(replies[1]) != "Vgo" || string(replies[2]) != "-" {
		t.Fatalf("replies = %q", replies)
	}

	// Raw path on a fresh world: the server IS the device owner.
	w2 := newWorld(t)
	store2 := udpkv.NewStore()
	raw := udpkv.NewRawServer(w2.serverDev, netstack.IP(10, 0, 0, 2), 5000, store2)
	cli2, err := udpkv.NewClient(w2.client, netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 5000})
	if err != nil {
		t.Fatal(err)
	}
	pump2 := func() {
		// The first datagram also needs an ARP round trip before the
		// request itself reaches the server: pump until quiescent.
		for i := 0; i < 4; i++ {
			w2.client.Poll()
			raw.Poll()
			w2.client.Poll()
		}
	}
	cli2.Set("k1", []byte("v1"))
	pump2()
	got := cli2.Drain()
	if len(got) != 1 || string(got[0]) != "+" {
		t.Fatalf("raw set replies = %q", got)
	}
	cli2.Get("k1")
	pump2()
	got = cli2.Drain()
	if len(got) != 1 || string(got[0]) != "Vv1" {
		t.Fatalf("raw get replies = %q", got)
	}
	if store2.Len() != 1 || raw.Served != 2 {
		t.Fatalf("store=%d served=%d", store2.Len(), raw.Served)
	}
}

func TestHTTPManyRequestsAcrossAllocators(t *testing.T) {
	for _, alloc := range []string{"mimalloc", "tlsf"} {
		t.Run(alloc, func(t *testing.T) {
			w := newWorld(t)
			srv, err := httpd.New(w.server, w.alloc(t, alloc), 80, []byte("tiny page"))
			if err != nil {
				t.Fatal(err)
			}
			gen := httpd.NewLoadGen(w.client, netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 80}, 10)
			pump := func() {
				for {
					moved := w.client.Poll() + w.server.Poll()
					srv.Poll()
					moved += w.server.Poll() + w.client.Poll()
					moved += gen.Collect()
					if moved == 0 {
						return
					}
				}
			}
			pump()
			for gen.Completed < 500 {
				gen.Fire(2)
				pump()
			}
			if srv.Errors != 0 {
				t.Fatalf("errors = %d", srv.Errors)
			}
		})
	}
}

func TestBadHTTPRequestRejected(t *testing.T) {
	w := newWorld(t)
	srv, err := httpd.New(w.server, w.alloc(t, "tlsf"), 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	conn, _ := w.client.ConnectTCP(netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 80})
	pump := func() {
		for {
			moved := w.client.Poll() + w.server.Poll()
			srv.Poll()
			moved += w.server.Poll() + w.client.Poll()
			if moved == 0 {
				return
			}
		}
	}
	pump()
	conn.Write([]byte("NONSENSE\r\n\r\n"))
	pump()
	buf := make([]byte, 256)
	n, _ := conn.Read(buf)
	if n == 0 {
		t.Fatal("no error response")
	}
	if got := string(buf[:n]); got[:17] != "HTTP/1.1 400 Bad " {
		t.Fatalf("response = %q", got)
	}
	if srv.Errors == 0 {
		t.Fatal("error not counted")
	}
	_ = fmt.Sprint() // keep fmt for future debugging
}
