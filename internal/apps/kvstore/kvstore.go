// Package kvstore is the repository's Redis stand-in: a single-threaded
// in-memory key-value server speaking RESP2 (the real Redis wire
// protocol) over the netstack socket API, with values stored in a
// ukalloc arena so allocator choice shows up in throughput exactly as
// in the paper's Fig 18.
package kvstore

import (
	"bytes"
	"fmt"
	"strconv"

	"unikraft/internal/netstack"
	"unikraft/internal/ukalloc"
)

// value locates a stored value in the allocator arena.
type value struct {
	p ukalloc.Ptr
	n int
}

// Server is the RESP key-value server.
type Server struct {
	stack *netstack.Stack
	alloc ukalloc.Allocator
	lis   *netstack.Listener
	conns []*conn
	data  map[string]value

	// Commands counts processed commands; Errors protocol errors.
	Commands uint64
	Errors   uint64
}

type conn struct {
	tc  *netstack.TCPConn
	buf []byte
	out []byte
}

// New starts the server on port.
func New(stack *netstack.Stack, alloc ukalloc.Allocator, port uint16) (*Server, error) {
	lis, err := stack.ListenTCP(port, 256)
	if err != nil {
		return nil, err
	}
	return &Server{
		stack: stack, alloc: alloc, lis: lis,
		data: map[string]value{},
	}, nil
}

// Poll runs one event-loop iteration.
func (s *Server) Poll() {
	for {
		tc, ok := s.lis.Accept()
		if !ok {
			break
		}
		s.conns = append(s.conns, &conn{tc: tc})
	}
	live := s.conns[:0]
	for _, c := range s.conns {
		if s.serveConn(c) {
			live = append(live, c)
		}
	}
	s.conns = live
}

func (s *Server) serveConn(c *conn) bool {
	var tmp [8192]byte
	for {
		n, err := c.tc.Read(tmp[:])
		if n > 0 {
			c.buf = append(c.buf, tmp[:n]...)
		}
		if err == netstack.ErrWouldBlock {
			break
		}
		if err != nil {
			c.tc.Close()
			return false
		}
	}
	// Process as many complete commands as are buffered (pipelining).
	c.out = c.out[:0]
	for {
		args, rest, ok, perr := parseRESP(c.buf)
		if perr != nil {
			s.Errors++
			c.tc.Close()
			return false
		}
		if !ok {
			break
		}
		c.buf = rest
		s.execute(c, args)
	}
	if len(c.out) > 0 {
		c.tc.Write(c.out)
	}
	return true
}

// execute runs one command, appending the reply to c.out.
func (s *Server) execute(c *conn, args [][]byte) {
	if len(args) == 0 {
		s.Errors++
		c.out = append(c.out, "-ERR empty command\r\n"...)
		return
	}
	s.Commands++
	// Redis-equivalent per-command work: dict lookup machinery, SDS
	// handling, event-loop bookkeeping (~250ns; Fig 12's per-request
	// budget). The reply object is allocated from the backend, as Redis
	// allocates client output buffers — this is what exposes allocator
	// behaviour on the GET path in Fig 18.
	s.stack.Machine().Charge(900)
	if reply, err := s.alloc.Malloc(64); err == nil {
		s.alloc.Free(reply)
	}
	cmd := string(bytes.ToUpper(args[0]))
	switch cmd {
	case "PING":
		c.out = append(c.out, "+PONG\r\n"...)
	case "SET":
		if len(args) != 3 {
			s.errReply(c, "wrong number of arguments for 'set'")
			return
		}
		key := string(args[1])
		if old, exists := s.data[key]; exists {
			s.alloc.Free(old.p)
		}
		p, err := s.alloc.Malloc(len(args[2]))
		if err != nil {
			s.errReply(c, "OOM")
			return
		}
		copy(ukalloc.Bytes(s.alloc, p, len(args[2])), args[2])
		s.data[key] = value{p: p, n: len(args[2])}
		c.out = append(c.out, "+OK\r\n"...)
	case "GET":
		if len(args) != 2 {
			s.errReply(c, "wrong number of arguments for 'get'")
			return
		}
		v, exists := s.data[string(args[1])]
		if !exists {
			c.out = append(c.out, "$-1\r\n"...)
			return
		}
		b := ukalloc.Bytes(s.alloc, v.p, v.n)
		c.out = append(c.out, '$')
		c.out = strconv.AppendInt(c.out, int64(v.n), 10)
		c.out = append(c.out, '\r', '\n')
		c.out = append(c.out, b...)
		c.out = append(c.out, '\r', '\n')
	case "DEL":
		removed := 0
		for _, k := range args[1:] {
			if v, exists := s.data[string(k)]; exists {
				s.alloc.Free(v.p)
				delete(s.data, string(k))
				removed++
			}
		}
		c.out = append(c.out, ':')
		c.out = strconv.AppendInt(c.out, int64(removed), 10)
		c.out = append(c.out, '\r', '\n')
	case "DBSIZE":
		c.out = append(c.out, ':')
		c.out = strconv.AppendInt(c.out, int64(len(s.data)), 10)
		c.out = append(c.out, '\r', '\n')
	case "FLUSHALL":
		for k, v := range s.data {
			s.alloc.Free(v.p)
			delete(s.data, k)
		}
		c.out = append(c.out, "+OK\r\n"...)
	default:
		s.errReply(c, fmt.Sprintf("unknown command '%s'", cmd))
	}
}

func (s *Server) errReply(c *conn, msg string) {
	s.Errors++
	c.out = append(c.out, "-ERR "...)
	c.out = append(c.out, msg...)
	c.out = append(c.out, '\r', '\n')
}

// Keys reports stored keys (tests).
func (s *Server) Keys() int { return len(s.data) }

// parseRESP decodes one RESP array-of-bulk-strings command. ok=false
// means incomplete input; err means protocol violation.
func parseRESP(b []byte) (args [][]byte, rest []byte, ok bool, err error) {
	if len(b) == 0 {
		return nil, b, false, nil
	}
	if b[0] != '*' {
		// Inline command (redis-cli compat): single line.
		i := bytes.Index(b, []byte("\r\n"))
		if i < 0 {
			return nil, b, false, nil
		}
		fields := bytes.Fields(b[:i])
		if len(fields) == 0 {
			return nil, nil, false, fmt.Errorf("kvstore: empty inline command")
		}
		return fields, b[i+2:], true, nil
	}
	cur := b[1:]
	n, cur, lineOK := readIntLine(cur)
	if !lineOK {
		return nil, b, false, nil
	}
	if n < 0 || n > 1024 {
		return nil, nil, false, fmt.Errorf("kvstore: bad array length %d", n)
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if len(cur) == 0 {
			return nil, b, false, nil
		}
		if cur[0] != '$' {
			return nil, nil, false, fmt.Errorf("kvstore: expected bulk string")
		}
		var ln int
		ln, cur, lineOK = readIntLine(cur[1:])
		if !lineOK {
			return nil, b, false, nil
		}
		if ln < 0 || ln > 64<<20 {
			return nil, nil, false, fmt.Errorf("kvstore: bad bulk length %d", ln)
		}
		if len(cur) < ln+2 {
			return nil, b, false, nil
		}
		out = append(out, cur[:ln])
		if cur[ln] != '\r' || cur[ln+1] != '\n' {
			return nil, nil, false, fmt.Errorf("kvstore: missing bulk terminator")
		}
		cur = cur[ln+2:]
	}
	return out, cur, true, nil
}

func readIntLine(b []byte) (int, []byte, bool) {
	i := bytes.Index(b, []byte("\r\n"))
	if i < 0 {
		return 0, b, false
	}
	n, err := strconv.Atoi(string(b[:i]))
	if err != nil {
		return 0, b, false
	}
	return n, b[i+2:], true
}

// Bench is a redis-benchmark-style client: C connections, pipeline
// depth P, alternating GET/SET per the paper's parameters (30 conns,
// 100k requests, pipelining 16).
type Bench struct {
	stack *netstack.Stack
	conns []*benchConn
	// Replies counts responses parsed.
	Replies uint64
	setMode bool
	// seq is shared across connections so the keyspace is walked
	// uniformly (as redis-benchmark's random keyspace does): re-SETs of
	// a key are ~keyspace commands apart, which is what exercises
	// allocator behaviour on long-lived values (Fig 18).
	seq int
}

type benchConn struct {
	tc      *netstack.TCPConn
	pending int
	buf     []byte
}

// NewBench connects C benchmark connections.
func NewBench(stack *netstack.Stack, addr netstack.AddrPort, conns int, set bool) *Bench {
	b := &Bench{stack: stack, setMode: set}
	for i := 0; i < conns; i++ {
		tc, err := stack.ConnectTCP(addr)
		if err == nil {
			b.conns = append(b.conns, &benchConn{tc: tc})
		}
	}
	return b
}

// NewBenchPorts connects one benchmark connection per entry of ports,
// each pinned to that source port so its RSS hash — and therefore the
// server queue/vCPU serving it — is chosen by the caller.
func NewBenchPorts(stack *netstack.Stack, addr netstack.AddrPort, ports []uint16, set bool) *Bench {
	b := &Bench{stack: stack, setMode: set}
	for _, p := range ports {
		tc, err := stack.ConnectTCPFrom(p, addr)
		if err == nil {
			b.conns = append(b.conns, &benchConn{tc: tc})
		}
	}
	return b
}

// Ready reports all connections established.
func (b *Bench) Ready() bool {
	for _, c := range b.conns {
		if !c.tc.Established() {
			return false
		}
	}
	return len(b.conns) > 0
}

// Fire tops every connection up to `depth` outstanding commands. The
// whole pipeline batch is coalesced into a single write, exactly as
// redis-benchmark -P submits pipelined commands.
func (b *Bench) Fire(depth int) {
	for _, c := range b.conns {
		var batch []byte
		queued := 0
		for c.pending+queued < depth {
			key := fmt.Sprintf("key:%06d", (b.seq+queued)%1000)
			if b.setMode {
				val := "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx" // 32B value, redis-benchmark-ish
				batch = append(batch, fmt.Sprintf("*3\r\n$3\r\nSET\r\n$%d\r\n%s\r\n$%d\r\n%s\r\n",
					len(key), key, len(val), val)...)
			} else {
				batch = append(batch, fmt.Sprintf("*2\r\n$3\r\nGET\r\n$%d\r\n%s\r\n", len(key), key)...)
			}
			queued++
		}
		if queued == 0 {
			continue
		}
		if _, err := c.tc.Write(batch); err != nil {
			continue
		}
		b.seq += queued
		c.pending += queued
	}
}

// Collect consumes replies; returns how many completed this call.
func (b *Bench) Collect() int {
	done := 0
	var tmp [8192]byte
	for _, c := range b.conns {
		for {
			n, err := c.tc.Read(tmp[:])
			if n > 0 {
				c.buf = append(c.buf, tmp[:n]...)
			}
			if err != nil || n == 0 {
				break
			}
		}
		for {
			adv, complete := replyLen(c.buf)
			if !complete {
				break
			}
			c.buf = c.buf[adv:]
			c.pending--
			b.Replies++
			done++
		}
	}
	return done
}

// replyLen returns the byte length of one complete RESP reply at the
// head of b, if present.
func replyLen(b []byte) (int, bool) {
	if len(b) == 0 {
		return 0, false
	}
	i := bytes.Index(b, []byte("\r\n"))
	if i < 0 {
		return 0, false
	}
	switch b[0] {
	case '+', '-', ':':
		return i + 2, true
	case '$':
		n, err := strconv.Atoi(string(b[1:i]))
		if err != nil {
			return 0, false
		}
		if n < 0 {
			return i + 2, true // null bulk
		}
		total := i + 2 + n + 2
		return total, len(b) >= total
	}
	return 0, false
}
