package kvstore

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestParseRESPComplete(t *testing.T) {
	msg := []byte("*3\r\n$3\r\nSET\r\n$3\r\nfoo\r\n$3\r\nbar\r\n")
	args, rest, ok, err := parseRESP(msg)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if len(rest) != 0 {
		t.Fatalf("rest = %q", rest)
	}
	if len(args) != 3 || string(args[0]) != "SET" || string(args[2]) != "bar" {
		t.Fatalf("args = %q", args)
	}
}

func TestParseRESPIncremental(t *testing.T) {
	msg := []byte("*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n")
	// Every strict prefix is incomplete, never an error.
	for cut := 0; cut < len(msg); cut++ {
		_, _, ok, err := parseRESP(msg[:cut])
		if err != nil {
			t.Fatalf("prefix %d: err %v", cut, err)
		}
		if ok {
			t.Fatalf("prefix %d parsed as complete", cut)
		}
	}
}

func TestParseRESPPipelined(t *testing.T) {
	var buf []byte
	for i := 0; i < 5; i++ {
		buf = append(buf, fmt.Sprintf("*2\r\n$3\r\nGET\r\n$4\r\nk%03d\r\n", i)...)
	}
	for i := 0; i < 5; i++ {
		args, rest, ok, err := parseRESP(buf)
		if err != nil || !ok {
			t.Fatalf("command %d: ok=%v err=%v", i, ok, err)
		}
		if want := fmt.Sprintf("k%03d", i); string(args[1]) != want {
			t.Fatalf("command %d key = %q", i, args[1])
		}
		buf = rest
	}
	if len(buf) != 0 {
		t.Fatalf("trailing %q", buf)
	}
}

func TestParseRESPMalformed(t *testing.T) {
	cases := [][]byte{
		[]byte("*2\r\nGET\r\n$3\r\nfoo\r\n"), // missing bulk header
		[]byte("*1\r\n$3\r\nGETxx"),          // bad terminator
		[]byte("*99999\r\n"),                 // implausible arity
		[]byte("*1\r\n$-5\r\n\r\n"),          // negative bulk
	}
	for i, c := range cases {
		if _, _, _, err := parseRESP(c); err == nil {
			// Some cases are "incomplete" rather than error until more
			// bytes arrive; force completion check for terminator case.
			if i == 1 {
				continue
			}
			args, _, ok, _ := parseRESP(c)
			if ok {
				t.Fatalf("case %d parsed: %q", i, args)
			}
		}
	}
}

func TestInlineCommands(t *testing.T) {
	args, rest, ok, err := parseRESP([]byte("PING\r\nextra"))
	if err != nil || !ok {
		t.Fatal(err)
	}
	if string(args[0]) != "PING" || string(rest) != "extra" {
		t.Fatalf("args=%q rest=%q", args, rest)
	}
}

// TestRESPRoundTrip property: any command encoded in RESP parses back to
// the same arguments.
func TestRESPRoundTrip(t *testing.T) {
	f := func(rawArgs [][]byte) bool {
		if len(rawArgs) == 0 || len(rawArgs) > 64 {
			return true
		}
		var msg []byte
		msg = append(msg, fmt.Sprintf("*%d\r\n", len(rawArgs))...)
		for _, a := range rawArgs {
			if len(a) > 4096 {
				return true
			}
			msg = append(msg, fmt.Sprintf("$%d\r\n", len(a))...)
			msg = append(msg, a...)
			msg = append(msg, '\r', '\n')
		}
		got, rest, ok, err := parseRESP(msg)
		if err != nil || !ok || len(rest) != 0 || len(got) != len(rawArgs) {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i], rawArgs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReplyLen(t *testing.T) {
	cases := []struct {
		in   string
		n    int
		done bool
	}{
		{"+OK\r\n", 5, true},
		{"-ERR x\r\n", 8, true},
		{":12\r\n", 5, true},
		{"$3\r\nfoo\r\n", 9, true},
		{"$-1\r\n", 5, true},
		{"$3\r\nfo", 0, false},
		{"+OK", 0, false},
	}
	for _, c := range cases {
		n, done := replyLen([]byte(c.in))
		if done != c.done || (done && n != c.n) {
			t.Errorf("replyLen(%q) = %d,%v want %d,%v", c.in, n, done, c.n, c.done)
		}
	}
}
