package httpd

// Static-file backends: the server resolves request paths through a
// FileBackend, which is either the standard vfscore path
// (open/fstat/sendfile-or-read/close per request) or the specialized
// SHFS volume (hash probe + zero-copy content views, bypassing vfscore
// entirely) — the same two configurations the paper's §6.3 web cache
// swaps between, now driving the HTTP datapath end to end.

import (
	"unikraft/internal/shfs"
	"unikraft/internal/vfscore"
)

// FileBackend resolves request paths to open file handles.
type FileBackend interface {
	// Open returns a handle and the file size, or an error (missing
	// paths map to 404).
	Open(path string) (FileHandle, int64, error)
	// BackendName labels the configuration in results.
	BackendName() string
}

// FileHandle is one opened file.
type FileHandle interface {
	// Sendfile streams [off, off+n) to emit page by page without the
	// caller copying content (n < 0 means to EOF); returns bytes
	// emitted.
	Sendfile(off, n int64, emit func(p []byte) error) (int64, error)
	// ReadAt copies content into p — the copying path.
	ReadAt(p []byte, off int64) (int, error)
	// Close releases the handle.
	Close() error
}

// VFSFiles serves through vfscore: the general path every figure prices
// at ~1600 cycles per open. With the VFS's page cache enabled its
// Sendfile hands cached pages through zero-copy.
type VFSFiles struct {
	VFS *vfscore.VFS
}

// BackendName implements FileBackend.
func (b *VFSFiles) BackendName() string { return "vfscore" }

// Open implements FileBackend via open + fstat.
func (b *VFSFiles) Open(path string) (FileHandle, int64, error) {
	fd, err := b.VFS.Open(path, vfscore.ORdOnly)
	if err != nil {
		return nil, 0, err
	}
	st, err := b.VFS.StatFD(fd)
	if err != nil || st.IsDir {
		b.VFS.Close(fd)
		if err == nil {
			err = vfscore.ErrIsDir
		}
		return nil, 0, err
	}
	return &vfsHandle{vfs: b.VFS, fd: fd}, st.Size, nil
}

type vfsHandle struct {
	vfs *vfscore.VFS
	fd  int
}

func (h *vfsHandle) Sendfile(off, n int64, emit func([]byte) error) (int64, error) {
	return h.vfs.Sendfile(h.fd, off, n, emit)
}

func (h *vfsHandle) ReadAt(p []byte, off int64) (int, error) {
	return h.vfs.PRead(h.fd, p, off)
}

func (h *vfsHandle) Close() error { return h.vfs.Close(h.fd) }

// SHFSFiles serves straight from the hash filesystem — the specialized
// ~300-cycle open path of Fig 22, with zero-copy content views.
type SHFSFiles struct {
	Vol *shfs.FS
}

// BackendName implements FileBackend.
func (b *SHFSFiles) BackendName() string { return "shfs" }

// Open implements FileBackend via a single hash probe.
func (b *SHFSFiles) Open(path string) (FileHandle, int64, error) {
	h, err := b.Vol.Open(path)
	if err != nil {
		return nil, 0, err
	}
	size, err := b.Vol.Size(h)
	if err != nil {
		return nil, 0, err
	}
	return &shfsHandle{vol: b.Vol, h: h}, size, nil
}

type shfsHandle struct {
	vol *shfs.FS
	h   shfs.Handle
}

// Sendfile emits zero-copy slices of the volume's content blob in page
// chunks (no per-byte charge — just the handoff, as in MiniCache's
// direct SHFS-to-TX path).
func (h *shfsHandle) Sendfile(off, n int64, emit func([]byte) error) (int64, error) {
	size, err := h.vol.Size(h.h)
	if err != nil {
		return 0, err
	}
	end := size
	if n >= 0 && off+n < end {
		end = off + n
	}
	var total int64
	for pos := off; pos < end; {
		// Chunk at the VFS page size so both backends hand the socket
		// layer equal-sized pieces.
		chunk := int(end - pos)
		if chunk > vfscore.PageSize {
			chunk = vfscore.PageSize
		}
		p, err := h.vol.ReadSlice(h.h, pos, chunk)
		if err != nil {
			return total, err
		}
		if len(p) == 0 {
			break
		}
		if err := emit(p); err != nil {
			return total, err
		}
		total += int64(len(p))
		pos += int64(len(p))
	}
	return total, nil
}

func (h *shfsHandle) ReadAt(p []byte, off int64) (int, error) {
	return h.vol.ReadAt(h.h, p, off)
}

func (h *shfsHandle) Close() error { return h.vol.Close(h.h) }
