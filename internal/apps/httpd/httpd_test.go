package httpd

import (
	"bytes"
	"testing"
)

func TestDefaultPageIs612Bytes(t *testing.T) {
	// Fig 13's workload: "static 612B page".
	if len(DefaultPage) != 612 {
		t.Fatalf("page = %d bytes, want 612", len(DefaultPage))
	}
	if !bytes.HasPrefix(DefaultPage, []byte("<!DOCTYPE html>")) {
		t.Fatal("page is not HTML")
	}
}

func TestContentLength(t *testing.T) {
	cases := []struct {
		head string
		want int
	}{
		{"HTTP/1.1 200 OK\r\nContent-Length: 612\r\nServer: x", 612},
		{"HTTP/1.1 200 OK\r\nContent-Length: 0", 0},
		{"HTTP/1.1 200 OK\r\nServer: x", 0},
		{"Content-Length: 42", 42},
	}
	for _, c := range cases {
		if got := contentLength([]byte(c.head)); got != c.want {
			t.Errorf("contentLength(%q) = %d, want %d", c.head, got, c.want)
		}
	}
}
