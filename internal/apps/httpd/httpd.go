// Package httpd is the repository's nginx stand-in: an event-driven
// HTTP/1.1 server with keep-alive over the netstack socket API. It
// follows nginx's single-worker event-loop structure (the
// configuration the paper benchmarks on one core), and allocates
// per-request scratch memory from a ukalloc backend so that the
// allocator-swap experiments (Fig 15) measure real allocator
// behaviour.
//
// Two serving modes: the fixed 612-byte page (the calibrated Fig 13
// configuration — its charges must not move) and static-file mode
// (NewFileServer), where request paths resolve through a FileBackend —
// vfscore (open/fstat per request at the Fig 22 standard-path cost) or
// the specialized SHFS volume (~300-cycle hash-probe opens) — and
// responses either assemble via a copying read or stream zero-copy
// through Sendfile under TCP_CORK, the fileserve experiment's two
// datapaths.
package httpd

import (
	"bytes"
	"fmt"

	"unikraft/internal/netstack"
	"unikraft/internal/shfs"
	"unikraft/internal/ukalloc"
	"unikraft/internal/vfscore"
)

// DefaultPage is the 612-byte static page the paper's wrk benchmark
// fetches ("static 612B page", Fig 13) — the stock nginx index.html is
// 612 bytes.
var DefaultPage = buildDefaultPage()

func buildDefaultPage() []byte {
	base := "<!DOCTYPE html><html><head><title>Welcome to unikraft!</title></head>" +
		"<body><h1>Welcome to unikraft!</h1><p>If you see this page, the unikernel " +
		"web server is successfully installed and working. Further configuration is required.</p>"
	b := []byte(base)
	for len(b) < 606 {
		b = append(b, byte('a'+len(b)%26))
	}
	return append(b, []byte("</b></html>")[:612-len(b)]...)
}

// poolRing is the number of response buffers kept live before the
// oldest is recycled, modelling nginx's pool behaviour: buffers live
// across requests and are retired in roughly FIFO order when pools are
// reset — the allocation lifetime pattern behind Fig 15's allocator
// differences.
const poolRing = 1024

// Server is the HTTP server instance.
type Server struct {
	stack *netstack.Stack
	alloc ukalloc.Allocator
	lis   *netstack.Listener
	conns []*conn
	page  []byte
	pool  []ukalloc.Ptr // FIFO of live response buffers

	// files switches the server to static-file mode: request paths
	// resolve through the backend (open/stat per request, 404 on
	// misses) instead of the fixed page. sendfile selects the zero-copy
	// response path (pages handed from the backend straight into socket
	// writes) over the copying read-into-buffer path.
	files    FileBackend
	sendfile bool

	// Requests and Errors count served requests and protocol errors;
	// NotFound counts 404 responses (file mode).
	Requests uint64
	Errors   uint64
	NotFound uint64
}

type conn struct {
	tc  *netstack.TCPConn
	buf []byte // partial request bytes
}

// New starts an HTTP server on port with the given page (nil =
// DefaultPage).
func New(stack *netstack.Stack, alloc ukalloc.Allocator, port uint16, page []byte) (*Server, error) {
	if page == nil {
		page = DefaultPage
	}
	lis, err := stack.ListenTCP(port, 256)
	if err != nil {
		return nil, err
	}
	return &Server{stack: stack, alloc: alloc, lis: lis, page: page}, nil
}

// NewFileServer starts a static-file HTTP server on port: request
// paths resolve through files (open/stat per request, Content-Length
// from the stat, 404 for misses). With sendfile set, responses stream
// file pages zero-copy from the backend into socket writes; otherwise
// each response is assembled in an allocator-backed buffer via a
// copying read — the pair of configurations the fileserve experiment
// measures against each other.
func NewFileServer(stack *netstack.Stack, alloc ukalloc.Allocator, port uint16, files FileBackend, sendfile bool) (*Server, error) {
	srv, err := New(stack, alloc, port, nil)
	if err != nil {
		return nil, err
	}
	srv.files = files
	srv.sendfile = sendfile
	return srv, nil
}

// Poll runs one event-loop iteration: accept new connections, then
// process readable ones. Callers pump the stack first.
func (s *Server) Poll() {
	for {
		tc, ok := s.lis.Accept()
		if !ok {
			break
		}
		s.conns = append(s.conns, &conn{tc: tc})
	}
	live := s.conns[:0]
	for _, c := range s.conns {
		if s.serveConn(c) {
			live = append(live, c)
		}
	}
	s.conns = live
}

// serveConn drains requests from one connection; returns false when the
// connection is finished.
func (s *Server) serveConn(c *conn) bool {
	var tmp [4096]byte
	for {
		n, err := c.tc.Read(tmp[:])
		if n > 0 {
			c.buf = append(c.buf, tmp[:n]...)
		}
		if err == netstack.ErrWouldBlock {
			break
		}
		if err != nil {
			c.tc.Close()
			return false
		}
	}
	// Parse complete requests (terminated by CRLFCRLF).
	for {
		idx := bytes.Index(c.buf, []byte("\r\n\r\n"))
		if idx < 0 {
			if len(c.buf) > 16<<10 {
				s.Errors++
				c.tc.Close()
				return false
			}
			return true
		}
		req := c.buf[:idx+4]
		c.buf = c.buf[idx+4:]
		keepAlive := s.handleRequest(c.tc, req)
		if !keepAlive {
			c.tc.Close()
			return false
		}
	}
}

// handleRequest parses one request and writes the response. Returns
// whether the connection stays open.
func (s *Server) handleRequest(tc *netstack.TCPConn, req []byte) bool {
	line := req
	if i := bytes.IndexByte(req, '\r'); i >= 0 {
		line = req[:i]
	}
	parts := bytes.SplitN(line, []byte(" "), 3)
	if len(parts) != 3 || !bytes.HasPrefix(parts[2], []byte("HTTP/1.")) {
		s.Errors++
		s.writeSimple(tc, "400 Bad Request", nil)
		return false
	}
	method := string(parts[0])
	keepAlive := !bytes.Contains(req, []byte("Connection: close"))
	// nginx-equivalent per-request application work: header parsing,
	// virtual-server matching, access logging, timer bookkeeping
	// (~1.4us of the per-request budget implied by Fig 13).
	s.stack.Machine().Charge(5000)
	if method != "GET" && method != "HEAD" {
		s.Errors++
		s.writeSimple(tc, "405 Method Not Allowed", nil)
		return keepAlive
	}
	s.Requests++
	if s.files != nil {
		// A truncated response (send-buffer exhaustion mid-file) poisons
		// the connection's framing — the only honest signal is closing
		// it, Content-Length contract broken.
		if !s.serveFile(tc, string(parts[1]), method) {
			return false
		}
		return keepAlive
	}
	// Build the response in an allocator-backed scratch buffer, as
	// nginx builds response chains from its pools.
	header := fmt.Sprintf("HTTP/1.1 200 OK\r\nServer: ukhttpd\r\nContent-Length: %d\r\nContent-Type: text/html\r\n\r\n", len(s.page))
	total := len(header)
	if method == "GET" {
		total += len(s.page)
	}
	p, err := s.alloc.Malloc(total)
	if err != nil {
		s.Errors++
		s.writeSimple(tc, "500 Internal Server Error", nil)
		return keepAlive
	}
	buf := ukalloc.Bytes(s.alloc, p, total)
	n := copy(buf, header)
	if method == "GET" {
		copy(buf[n:], s.page)
	}
	tc.Write(buf)
	// Retire the buffer through the FIFO pool rather than immediately:
	// nginx keeps output-chain buffers alive across keep-alive requests
	// and recycles pools in bulk.
	s.retire(p)
	return keepAlive
}

// serveFile answers one request in static-file mode: resolve the path
// through the backend (404 only for missing paths; any other open
// failure — fd-table exhaustion, I/O errors — is a 500 and counts as a
// server error), Content-Length from the stat, then either stream
// pages zero-copy (sendfile) or assemble the response in a pooled
// allocator buffer (the copying path). It returns false when the
// response could not be sent in full (the connection must close: the
// client has a Content-Length promise the server can no longer keep).
func (s *Server) serveFile(tc *netstack.TCPConn, path, method string) bool {
	if path == "" || path == "/" {
		path = "/index.html"
	}
	h, size, err := s.files.Open(path)
	if err != nil {
		if isNotExist(err) {
			s.NotFound++
			return s.writeStatus(tc, "404 Not Found")
		}
		s.Errors++
		return s.writeStatus(tc, "500 Internal Server Error")
	}
	defer h.Close()
	header := fmt.Sprintf("HTTP/1.1 200 OK\r\nServer: ukhttpd\r\nContent-Length: %d\r\nContent-Type: text/html\r\n\r\n", size)

	if s.sendfile && method == "GET" {
		// Zero-copy response: the header goes out of a small pooled
		// buffer, then the backend hands file pages straight into
		// socket writes — no response assembly, no content copy. The
		// connection is corked around the scattered writes (as nginx
		// sets TCP_CORK before sendfile) so page-sized emits coalesce
		// into full-MSS segments instead of one fragment per page.
		tc.Cork()
		ok := s.writePooled(tc, []byte(header))
		if ok {
			n, err := h.Sendfile(0, size, func(p []byte) error {
				if !s.writeFull(tc, p) {
					return netstack.ErrBufferFull
				}
				return nil
			})
			// A short emit without error (file shrank between stat and
			// send — e.g. truncated through a shared 9p export) breaks
			// the Content-Length promise just like a write failure.
			if err != nil || n != size {
				s.Errors++
				ok = false
			}
		}
		tc.Uncork()
		return ok
	}

	// Copying path: read the content into an allocator-backed response
	// buffer behind the header, as nginx builds output chains without
	// sendfile.
	total := len(header)
	if method == "GET" {
		total += int(size)
	}
	p, err := s.alloc.Malloc(total)
	if err != nil {
		s.Errors++
		return s.writeStatus(tc, "500 Internal Server Error")
	}
	buf := ukalloc.Bytes(s.alloc, p, total)
	n := copy(buf, header)
	if method == "GET" {
		// Nothing has gone out yet, so a failed or short content read
		// can still be an honest 500 — never a 200 wrapping whatever
		// stale bytes the recycled pool buffer held.
		rn, err := h.ReadAt(buf[n:], 0)
		if err != nil || int64(rn) != size {
			s.Errors++
			s.retire(p)
			return s.writeStatus(tc, "500 Internal Server Error")
		}
	}
	ok := s.writeFull(tc, buf)
	s.retire(p)
	if !ok {
		s.Errors++
	}
	return ok
}

// isNotExist reports whether a backend open failed because the path is
// absent (backend-agnostic: vfscore or shfs).
func isNotExist(err error) bool {
	return err == vfscore.ErrNotExist || err == shfs.ErrNotExist
}

// writeFull pushes all of p through the socket, tolerating short
// writes while the peer drains (TCP flow control); it gives up — and
// reports failure — only when the send buffer itself is exhausted or
// the connection dies. The event loop cannot block, so buffer
// exhaustion (a response larger than the 256 KiB send buffer can
// absorb) is a hard failure, not a wait.
func (s *Server) writeFull(tc *netstack.TCPConn, p []byte) bool {
	for len(p) > 0 {
		n, err := tc.Write(p)
		if err != nil {
			return false
		}
		if n == 0 {
			return false
		}
		p = p[n:]
	}
	return true
}

// writePooled sends data from an allocator-backed buffer retired
// through the FIFO pool (the sendfile path's header write), reporting
// whether it all went out.
func (s *Server) writePooled(tc *netstack.TCPConn, data []byte) bool {
	p, err := s.alloc.Malloc(len(data))
	if err != nil {
		s.Errors++
		return false
	}
	buf := ukalloc.Bytes(s.alloc, p, len(data))
	copy(buf, data)
	ok := s.writeFull(tc, buf)
	s.retire(p)
	if !ok {
		s.Errors++ // same accounting as the copying path's write failure
	}
	return ok
}

// retire queues a response buffer on the FIFO pool, freeing the oldest
// past the ring bound — nginx's pool recycling.
func (s *Server) retire(p ukalloc.Ptr) {
	s.pool = append(s.pool, p)
	if len(s.pool) > poolRing {
		s.alloc.Free(s.pool[0])
		s.pool = s.pool[1:]
	}
}

// writeStatus sends a bodyless status response with checked delivery:
// a dropped or truncated error response breaks keep-alive framing just
// like a truncated 200, so failure means "close the connection" (false)
// rather than a silent desync. File-mode error paths use it; the
// fixed-page mode keeps the calibrated unchecked writeSimple.
func (s *Server) writeStatus(tc *netstack.TCPConn, status string) bool {
	resp := fmt.Sprintf("HTTP/1.1 %s\r\nContent-Length: 0\r\n\r\n", status)
	return s.writeFull(tc, []byte(resp))
}

func (s *Server) writeSimple(tc *netstack.TCPConn, status string, body []byte) {
	resp := fmt.Sprintf("HTTP/1.1 %s\r\nContent-Length: %d\r\n\r\n%s", status, len(body), body)
	tc.Write([]byte(resp))
}

// OpenConns reports live connections (tests).
func (s *Server) OpenConns() int { return len(s.conns) }

// LoadGen is a wrk-like load generator: N keep-alive connections each
// issuing sequential GET requests. With SetPaths it cycles a request
// mix across the site (each connection walks the list round-robin from
// its own offset) instead of hammering one URL.
type LoadGen struct {
	stack *netstack.Stack
	conns []*genConn
	paths [][]byte // pre-rendered requests, nil = the fixed index.html
	// Completed counts full responses received; BytesRead the payload;
	// NotFound the 404 responses among them.
	Completed uint64
	BytesRead uint64
	NotFound  uint64
}

type genConn struct {
	tc      *netstack.TCPConn
	pending int // responses outstanding
	buf     []byte
	expect  int // bytes remaining of current response body
	next    int // round-robin index into paths
}

// NewLoadGen opens n connections to addr.
func NewLoadGen(stack *netstack.Stack, addr netstack.AddrPort, n int) *LoadGen {
	g := &LoadGen{stack: stack}
	for i := 0; i < n; i++ {
		tc, err := stack.ConnectTCP(addr)
		if err == nil {
			g.conns = append(g.conns, &genConn{tc: tc, next: i})
		}
	}
	return g
}

// NewLoadGenPorts opens one connection per entry of ports, each from
// that source port. Multi-queue benchmarks choose the ports so the RSS
// hash spreads connections evenly over the server's queues (wrk pinned
// behind pktgen-style source-port selection).
func NewLoadGenPorts(stack *netstack.Stack, addr netstack.AddrPort, ports []uint16) *LoadGen {
	g := &LoadGen{stack: stack}
	for i, p := range ports {
		tc, err := stack.ConnectTCPFrom(p, addr)
		if err == nil {
			g.conns = append(g.conns, &genConn{tc: tc, next: i})
		}
	}
	return g
}

// SetPaths makes the generator request the given path mix (weighted by
// repetition) instead of the fixed /index.html. Connections start at
// staggered offsets so the mix interleaves across the fleet
// deterministically.
func (g *LoadGen) SetPaths(paths []string) {
	g.paths = g.paths[:0]
	for _, p := range paths {
		g.paths = append(g.paths, []byte("GET "+p+" HTTP/1.1\r\nHost: server\r\n\r\n"))
	}
}

// Ready reports whether all connections are established.
func (g *LoadGen) Ready() bool {
	for _, c := range g.conns {
		if !c.tc.Established() {
			return false
		}
	}
	return len(g.conns) > 0
}

var getRequest = []byte("GET /index.html HTTP/1.1\r\nHost: server\r\n\r\n")

// Fire sends one GET on every connection with fewer than `depth`
// outstanding requests.
func (g *LoadGen) Fire(depth int) {
	for _, c := range g.conns {
		for c.pending < depth {
			req := getRequest
			if len(g.paths) > 0 {
				req = g.paths[c.next%len(g.paths)]
			}
			if _, err := c.tc.Write(req); err != nil {
				break
			}
			if len(g.paths) > 0 {
				c.next++
			}
			c.pending++
		}
	}
}

// Collect consumes responses; returns number completed this call.
func (g *LoadGen) Collect() int {
	done := 0
	var tmp [8192]byte
	for _, c := range g.conns {
		for {
			n, err := c.tc.Read(tmp[:])
			if n > 0 {
				c.buf = append(c.buf, tmp[:n]...)
			}
			if err != nil || n == 0 {
				break
			}
		}
		// Parse responses: header then Content-Length body.
		for {
			if c.expect > 0 {
				take := c.expect
				if take > len(c.buf) {
					take = len(c.buf)
				}
				c.buf = c.buf[take:]
				c.expect -= take
				g.BytesRead += uint64(take)
				if c.expect > 0 {
					break
				}
				c.pending--
				g.Completed++
				done++
				continue
			}
			idx := bytes.Index(c.buf, []byte("\r\n\r\n"))
			if idx < 0 {
				break
			}
			head := c.buf[:idx]
			if bytes.HasPrefix(head, []byte("HTTP/1.1 404")) {
				g.NotFound++
			}
			c.buf = c.buf[idx+4:]
			c.expect = contentLength(head)
			if c.expect == 0 {
				// Bodyless response (404, HEAD): complete immediately —
				// the body loop above only fires for expect > 0.
				c.pending--
				g.Completed++
				done++
			}
		}
	}
	return done
}

func contentLength(head []byte) int {
	const key = "Content-Length: "
	i := bytes.Index(head, []byte(key))
	if i < 0 {
		return 0
	}
	n := 0
	for _, ch := range head[i+len(key):] {
		if ch < '0' || ch > '9' {
			break
		}
		n = n*10 + int(ch-'0')
	}
	return n
}
