// Package httpd is the repository's nginx stand-in: an event-driven
// HTTP/1.1 server with keep-alive over the netstack socket API, serving
// a static page. It follows nginx's single-worker event-loop structure
// (the configuration the paper benchmarks on one core), and allocates
// per-request scratch memory from a ukalloc backend so that the
// allocator-swap experiments (Fig 15) measure real allocator behaviour.
package httpd

import (
	"bytes"
	"fmt"

	"unikraft/internal/netstack"
	"unikraft/internal/ukalloc"
)

// DefaultPage is the 612-byte static page the paper's wrk benchmark
// fetches ("static 612B page", Fig 13) — the stock nginx index.html is
// 612 bytes.
var DefaultPage = buildDefaultPage()

func buildDefaultPage() []byte {
	base := "<!DOCTYPE html><html><head><title>Welcome to unikraft!</title></head>" +
		"<body><h1>Welcome to unikraft!</h1><p>If you see this page, the unikernel " +
		"web server is successfully installed and working. Further configuration is required.</p>"
	b := []byte(base)
	for len(b) < 606 {
		b = append(b, byte('a'+len(b)%26))
	}
	return append(b, []byte("</b></html>")[:612-len(b)]...)
}

// poolRing is the number of response buffers kept live before the
// oldest is recycled, modelling nginx's pool behaviour: buffers live
// across requests and are retired in roughly FIFO order when pools are
// reset — the allocation lifetime pattern behind Fig 15's allocator
// differences.
const poolRing = 1024

// Server is the HTTP server instance.
type Server struct {
	stack *netstack.Stack
	alloc ukalloc.Allocator
	lis   *netstack.Listener
	conns []*conn
	page  []byte
	pool  []ukalloc.Ptr // FIFO of live response buffers

	// Requests and Errors count served requests and protocol errors.
	Requests uint64
	Errors   uint64
}

type conn struct {
	tc  *netstack.TCPConn
	buf []byte // partial request bytes
}

// New starts an HTTP server on port with the given page (nil =
// DefaultPage).
func New(stack *netstack.Stack, alloc ukalloc.Allocator, port uint16, page []byte) (*Server, error) {
	if page == nil {
		page = DefaultPage
	}
	lis, err := stack.ListenTCP(port, 256)
	if err != nil {
		return nil, err
	}
	return &Server{stack: stack, alloc: alloc, lis: lis, page: page}, nil
}

// Poll runs one event-loop iteration: accept new connections, then
// process readable ones. Callers pump the stack first.
func (s *Server) Poll() {
	for {
		tc, ok := s.lis.Accept()
		if !ok {
			break
		}
		s.conns = append(s.conns, &conn{tc: tc})
	}
	live := s.conns[:0]
	for _, c := range s.conns {
		if s.serveConn(c) {
			live = append(live, c)
		}
	}
	s.conns = live
}

// serveConn drains requests from one connection; returns false when the
// connection is finished.
func (s *Server) serveConn(c *conn) bool {
	var tmp [4096]byte
	for {
		n, err := c.tc.Read(tmp[:])
		if n > 0 {
			c.buf = append(c.buf, tmp[:n]...)
		}
		if err == netstack.ErrWouldBlock {
			break
		}
		if err != nil {
			c.tc.Close()
			return false
		}
	}
	// Parse complete requests (terminated by CRLFCRLF).
	for {
		idx := bytes.Index(c.buf, []byte("\r\n\r\n"))
		if idx < 0 {
			if len(c.buf) > 16<<10 {
				s.Errors++
				c.tc.Close()
				return false
			}
			return true
		}
		req := c.buf[:idx+4]
		c.buf = c.buf[idx+4:]
		keepAlive := s.handleRequest(c.tc, req)
		if !keepAlive {
			c.tc.Close()
			return false
		}
	}
}

// handleRequest parses one request and writes the response. Returns
// whether the connection stays open.
func (s *Server) handleRequest(tc *netstack.TCPConn, req []byte) bool {
	line := req
	if i := bytes.IndexByte(req, '\r'); i >= 0 {
		line = req[:i]
	}
	parts := bytes.SplitN(line, []byte(" "), 3)
	if len(parts) != 3 || !bytes.HasPrefix(parts[2], []byte("HTTP/1.")) {
		s.Errors++
		s.writeSimple(tc, "400 Bad Request", nil)
		return false
	}
	method := string(parts[0])
	keepAlive := !bytes.Contains(req, []byte("Connection: close"))
	// nginx-equivalent per-request application work: header parsing,
	// virtual-server matching, access logging, timer bookkeeping
	// (~1.4us of the per-request budget implied by Fig 13).
	s.stack.Machine().Charge(5000)
	if method != "GET" && method != "HEAD" {
		s.Errors++
		s.writeSimple(tc, "405 Method Not Allowed", nil)
		return keepAlive
	}
	s.Requests++
	// Build the response in an allocator-backed scratch buffer, as
	// nginx builds response chains from its pools.
	header := fmt.Sprintf("HTTP/1.1 200 OK\r\nServer: ukhttpd\r\nContent-Length: %d\r\nContent-Type: text/html\r\n\r\n", len(s.page))
	total := len(header)
	if method == "GET" {
		total += len(s.page)
	}
	p, err := s.alloc.Malloc(total)
	if err != nil {
		s.Errors++
		s.writeSimple(tc, "500 Internal Server Error", nil)
		return keepAlive
	}
	buf := ukalloc.Bytes(s.alloc, p, total)
	n := copy(buf, header)
	if method == "GET" {
		copy(buf[n:], s.page)
	}
	tc.Write(buf)
	// Retire the buffer through the FIFO pool rather than immediately:
	// nginx keeps output-chain buffers alive across keep-alive requests
	// and recycles pools in bulk.
	s.pool = append(s.pool, p)
	if len(s.pool) > poolRing {
		s.alloc.Free(s.pool[0])
		s.pool = s.pool[1:]
	}
	return keepAlive
}

func (s *Server) writeSimple(tc *netstack.TCPConn, status string, body []byte) {
	resp := fmt.Sprintf("HTTP/1.1 %s\r\nContent-Length: %d\r\n\r\n%s", status, len(body), body)
	tc.Write([]byte(resp))
}

// OpenConns reports live connections (tests).
func (s *Server) OpenConns() int { return len(s.conns) }

// LoadGen is a wrk-like load generator: N keep-alive connections each
// issuing sequential GET requests.
type LoadGen struct {
	stack *netstack.Stack
	conns []*genConn
	// Completed counts full responses received; BytesRead the payload.
	Completed uint64
	BytesRead uint64
}

type genConn struct {
	tc      *netstack.TCPConn
	pending int // responses outstanding
	buf     []byte
	expect  int // bytes remaining of current response body
}

// NewLoadGen opens n connections to addr.
func NewLoadGen(stack *netstack.Stack, addr netstack.AddrPort, n int) *LoadGen {
	g := &LoadGen{stack: stack}
	for i := 0; i < n; i++ {
		tc, err := stack.ConnectTCP(addr)
		if err == nil {
			g.conns = append(g.conns, &genConn{tc: tc})
		}
	}
	return g
}

// Ready reports whether all connections are established.
func (g *LoadGen) Ready() bool {
	for _, c := range g.conns {
		if !c.tc.Established() {
			return false
		}
	}
	return len(g.conns) > 0
}

var getRequest = []byte("GET /index.html HTTP/1.1\r\nHost: server\r\n\r\n")

// Fire sends one GET on every connection with fewer than `depth`
// outstanding requests.
func (g *LoadGen) Fire(depth int) {
	for _, c := range g.conns {
		for c.pending < depth {
			if _, err := c.tc.Write(getRequest); err != nil {
				break
			}
			c.pending++
		}
	}
}

// Collect consumes responses; returns number completed this call.
func (g *LoadGen) Collect() int {
	done := 0
	var tmp [8192]byte
	for _, c := range g.conns {
		for {
			n, err := c.tc.Read(tmp[:])
			if n > 0 {
				c.buf = append(c.buf, tmp[:n]...)
			}
			if err != nil || n == 0 {
				break
			}
		}
		// Parse responses: header then Content-Length body.
		for {
			if c.expect > 0 {
				take := c.expect
				if take > len(c.buf) {
					take = len(c.buf)
				}
				c.buf = c.buf[take:]
				c.expect -= take
				g.BytesRead += uint64(take)
				if c.expect > 0 {
					break
				}
				c.pending--
				g.Completed++
				done++
				continue
			}
			idx := bytes.Index(c.buf, []byte("\r\n\r\n"))
			if idx < 0 {
				break
			}
			head := c.buf[:idx]
			c.buf = c.buf[idx+4:]
			c.expect = contentLength(head)
		}
	}
	return done
}

func contentLength(head []byte) int {
	const key = "Content-Length: "
	i := bytes.Index(head, []byte(key))
	if i < 0 {
		return 0
	}
	n := 0
	for _, ch := range head[i+len(key):] {
		if ch < '0' || ch > '9' {
			break
		}
		n = n*10 + int(ch-'0')
	}
	return n
}
