package httpd_test

import (
	"fmt"
	"testing"

	_ "unikraft/internal/allocators/tlsf"
	"unikraft/internal/apps/httpd"
	"unikraft/internal/netstack"
	"unikraft/internal/ramfs"
	"unikraft/internal/shfs"
	"unikraft/internal/sim"
	"unikraft/internal/ukalloc"
	"unikraft/internal/uknetdev"
	"unikraft/internal/vfscore"
)

// world wires a client and server stack over a virtio pair.
type world struct {
	cm, sm         *sim.Machine
	client, server *netstack.Stack
}

func newWorld(t *testing.T, zeroCopy bool) *world {
	t.Helper()
	cm, sm := sim.NewMachine(), sim.NewMachine()
	cd, sd, err := uknetdev.NewPair(cm, sm, uknetdev.VhostNet)
	if err != nil {
		t.Fatal(err)
	}
	return &world{
		cm: cm, sm: sm,
		client: netstack.New(cm, cd, netstack.Config{Addr: netstack.IP(10, 0, 0, 1), ZeroCopy: zeroCopy}),
		server: netstack.New(sm, sd, netstack.Config{Addr: netstack.IP(10, 0, 0, 2), ZeroCopy: zeroCopy}),
	}
}

var testFiles = map[string][]byte{
	"/index.html": []byte("<html>index</html>"),
	"/big.bin":    makeContent(10000),
	"/small.txt":  []byte("ok"),
}

func makeContent(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('0' + i%10)
	}
	return b
}

func vfsBackend(t *testing.T, m *sim.Machine, cachePages int) *httpd.VFSFiles {
	t.Helper()
	rfs := ramfs.New()
	for path, data := range testFiles {
		f, err := rfs.Root().Create(path[1:], false)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
	}
	v := vfscore.New(m)
	if err := v.Mount("/", rfs); err != nil {
		t.Fatal(err)
	}
	if cachePages > 0 {
		v.EnablePageCache(cachePages)
	}
	return &httpd.VFSFiles{VFS: v}
}

func shfsBackend(t *testing.T, m *sim.Machine) *httpd.SHFSFiles {
	t.Helper()
	vol := shfs.New(m, 64)
	for path, data := range testFiles {
		if err := vol.Add(path, data); err != nil {
			t.Fatal(err)
		}
	}
	vol.Seal()
	return &httpd.SHFSFiles{Vol: vol}
}

// serveMix drives one request per path through the server and returns
// the generator.
func serveMix(t *testing.T, w *world, srv *httpd.Server, paths []string) *httpd.LoadGen {
	t.Helper()
	// One connection: requests walk `paths` in order, exactly once each.
	gen := httpd.NewLoadGen(w.client, netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 80}, 1)
	gen.SetPaths(paths)
	pump := func() {
		for {
			moved := w.client.Poll() + w.server.Poll()
			srv.Poll()
			moved += w.server.Poll() + w.client.Poll()
			moved += gen.Collect()
			if moved == 0 {
				return
			}
		}
	}
	pump()
	if !gen.Ready() {
		t.Fatal("load generator not connected")
	}
	want := uint64(len(paths))
	for rounds := 0; gen.Completed < want; rounds++ {
		if rounds > 100 {
			t.Fatalf("stalled: %d/%d responses", gen.Completed, want)
		}
		gen.Fire(1)
		pump()
	}
	return gen
}

// TestFileServer: both backends, both datapaths, serve the right bytes
// with correct Content-Length, and missing paths 404 without killing
// the connection.
func TestFileServer(t *testing.T) {
	for _, tc := range []struct {
		name     string
		shfs     bool
		sendfile bool
	}{
		{"vfscore-copy", false, false},
		{"vfscore-sendfile", false, true},
		{"shfs-copy", true, false},
		{"shfs-sendfile", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := newWorld(t, tc.sendfile)
			a, err := ukalloc.NewInitialized("tlsf", w.sm, 32<<20)
			if err != nil {
				t.Fatal(err)
			}
			var backend httpd.FileBackend
			if tc.shfs {
				backend = shfsBackend(t, w.sm)
			} else {
				backend = vfsBackend(t, w.sm, 32)
			}
			srv, err := httpd.NewFileServer(w.server, a, 80, backend, tc.sendfile)
			if err != nil {
				t.Fatal(err)
			}
			paths := []string{"/index.html", "/big.bin", "/missing.html", "/small.txt", "/big.bin", "/"}
			gen := serveMix(t, w, srv, paths)
			if gen.NotFound != 1 {
				t.Errorf("NotFound = %d, want 1", gen.NotFound)
			}
			if srv.NotFound != 1 {
				t.Errorf("server NotFound = %d, want 1", srv.NotFound)
			}
			// "/" serves the index; byte accounting covers both /big.bin
			// fetches, the index twice, and small.txt.
			wantBytes := uint64(2*len(testFiles["/big.bin"]) + 2*len(testFiles["/index.html"]) + len(testFiles["/small.txt"]))
			if gen.BytesRead != wantBytes {
				t.Errorf("BytesRead = %d, want %d", gen.BytesRead, wantBytes)
			}
			if srv.Requests != uint64(len(paths)) {
				t.Errorf("server Requests = %d, want %d", srv.Requests, len(paths))
			}
		})
	}
}

// TestFileServerSendfileCheaper: serving the same mix, the zero-copy
// sendfile configuration spends measurably fewer server cycles per
// request than the copying configuration.
func TestFileServerSendfileCheaper(t *testing.T) {
	run := func(sendfile bool) uint64 {
		w := newWorld(t, sendfile)
		a, err := ukalloc.NewInitialized("tlsf", w.sm, 32<<20)
		if err != nil {
			t.Fatal(err)
		}
		cache := 0
		if sendfile {
			cache = 32
		}
		srv, err := httpd.NewFileServer(w.server, a, 80, vfsBackend(t, w.sm, cache), sendfile)
		if err != nil {
			t.Fatal(err)
		}
		var paths []string
		for i := 0; i < 8; i++ {
			paths = append(paths, "/big.bin")
		}
		start := w.sm.CPU.Cycles()
		serveMix(t, w, srv, paths)
		return w.sm.CPU.Cycles() - start
	}
	copying := run(false)
	zc := run(true)
	if zc >= copying {
		t.Errorf("sendfile path (%d cycles) not below copying path (%d)", zc, copying)
	}
}

// TestFixedPageUnchanged: with no file backend the server still serves
// the fixed page — the calibrated fig13 configuration — and the
// request mix machinery stays out of the way.
func TestFixedPageUnchanged(t *testing.T) {
	w := newWorld(t, false)
	a, err := ukalloc.NewInitialized("tlsf", w.sm, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := httpd.New(w.server, a, 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := serveMix(t, w, srv, []string{"/index.html", "/whatever.html"})
	if gen.BytesRead != uint64(2*len(httpd.DefaultPage)) {
		t.Errorf("fixed-page BytesRead = %d, want %d", gen.BytesRead, 2*len(httpd.DefaultPage))
	}
	if gen.NotFound != 0 {
		t.Errorf("fixed-page mode returned %d 404s", gen.NotFound)
	}
}

var _ = fmt.Sprintf // keep fmt for debug edits
