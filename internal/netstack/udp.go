package netstack

import (
	"unikraft/internal/uksched"
)

// UDPDatagram is one received datagram with its source.
type UDPDatagram struct {
	From AddrPort
	Data []byte
}

// UDPConn is a bound UDP endpoint.
type UDPConn struct {
	stack  *Stack
	local  AddrPort
	queue  []UDPDatagram
	qCap   int
	wq     uksched.WaitQueue
	closed bool
	drops  uint64
}

// BindUDP binds a UDP socket to port (0 = ephemeral).
func (s *Stack) BindUDP(port uint16) (*UDPConn, error) {
	if port == 0 {
		port = s.allocEphemeral(false)
	} else if _, used := s.udpPorts[port]; used {
		return nil, ErrPortInUse
	}
	c := &UDPConn{
		stack: s,
		local: AddrPort{Addr: s.cfg.Addr, Port: port},
		qCap:  512,
	}
	s.udpPorts[port] = c
	return c, nil
}

func (s *Stack) inputUDP(ip IPv4Header, b []byte) {
	s.machine.Charge(costUDPRx)
	h, payload, err := ParseUDP(b, ip.Src, ip.Dst)
	if err != nil {
		s.stats.ChecksumErrors++
		s.stats.RxDropped++
		return
	}
	c, ok := s.udpPorts[h.DstPort]
	if !ok || c.closed {
		s.stats.RxDropped++
		return
	}
	s.stats.UDPIn++
	if len(c.queue) >= c.qCap {
		c.drops++
		return
	}
	data := make([]byte, len(payload))
	copy(data, payload)
	s.chargeSockQueue(len(payload))
	s.machine.Charge(s.cfg.PerDatagramSocketExtra)
	c.queue = append(c.queue, UDPDatagram{
		From: AddrPort{Addr: ip.Src, Port: h.SrcPort},
		Data: data,
	})
	c.wq.WakeAll()
}

// LocalAddr returns the bound endpoint.
func (c *UDPConn) LocalAddr() AddrPort { return c.local }

// SendTo transmits one datagram (the sendmsg path: socket layer + UDP +
// IP + Ethernet + driver).
func (c *UDPConn) SendTo(dst AddrPort, data []byte) error {
	if c.closed {
		return ErrConnClosed
	}
	s := c.stack
	s.chargeSockQueue(len(data))
	s.machine.Charge(costUDPTx + s.cfg.PerDatagramSocketExtra)
	s.stats.UDPOut++
	return s.sendIPv4(dst.Addr, ProtoUDP, UDPHeaderLen+len(data), func(b []byte) int {
		copy(b[UDPHeaderLen:], data)
		PutUDP(b, c.local, dst, len(data))
		return UDPHeaderLen + len(data)
	})
}

// RecvFrom returns the next datagram without blocking; ok reports
// whether one was available (the event-loop API).
func (c *UDPConn) RecvFrom() (UDPDatagram, bool) {
	if len(c.queue) == 0 {
		return UDPDatagram{}, false
	}
	d := c.queue[0]
	c.queue = c.queue[1:]
	c.stack.chargeSockQueue(len(d.Data))
	return d, true
}

// RecvFromBlocking parks the calling thread until a datagram arrives.
func (c *UDPConn) RecvFromBlocking(t *uksched.Thread) (UDPDatagram, error) {
	if err := c.stack.blockingSupported(); err != nil {
		return UDPDatagram{}, err
	}
	for {
		if d, ok := c.RecvFrom(); ok {
			return d, nil
		}
		if c.closed {
			return UDPDatagram{}, ErrConnClosed
		}
		c.wq.Wait(t)
	}
}

// Pending reports queued datagrams.
func (c *UDPConn) Pending() int { return len(c.queue) }

// Drops reports datagrams dropped due to a full socket queue.
func (c *UDPConn) Drops() uint64 { return c.drops }

// Close unbinds the socket.
func (c *UDPConn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	delete(c.stack.udpPorts, c.local.Port)
	c.wq.WakeAll()
}
