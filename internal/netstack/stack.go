package netstack

import (
	"errors"
	"fmt"

	"unikraft/internal/sim"
	"unikraft/internal/uknetdev"
	"unikraft/internal/uksched"
)

// Per-packet processing costs (cycles), the "standard but slow" path of
// the paper's introduction. They accumulate to the few-thousand-cycle
// per-packet budget that separates the socket path (Table 4: 319K req/s
// through lwIP) from the raw uknetdev path (6.3M req/s).
const (
	costEthRx     = 45
	costEthTx     = 40
	costARP       = 120
	costIPRx      = 160 // header validation incl. checksum
	costIPTx      = 150
	costICMP      = 90
	costUDPRx     = 140
	costUDPTx     = 130
	costTCPSeg    = 420 // TCP input state machine per segment
	costTCPTx     = 380
	costSockQueue = 260 // socket buffer enqueue/dequeue + bookkeeping
	costPerByte16 = 16  // bytes copied per cycle in socket buffers

	// costSockQueueZC is the zero-copy socket handoff: the buffer
	// reference moves between app and stack (pbuf-style), so the charge
	// is pointer bookkeeping only, with no per-byte component. This is
	// the specialization lever behind the paper's Fig 12/13 deltas
	// ("zero-copy I/O", §3.1).
	costSockQueueZC = 80
)

// Errors returned by the stack and sockets.
var (
	ErrPortInUse    = errors.New("netstack: port in use")
	ErrConnRefused  = errors.New("netstack: connection refused")
	ErrConnReset    = errors.New("netstack: connection reset")
	ErrConnClosed   = errors.New("netstack: connection closed")
	ErrTimeout      = errors.New("netstack: timed out")
	ErrWouldBlock   = errors.New("netstack: operation would block")
	ErrNoRoute      = errors.New("netstack: no route / ARP unresolved")
	ErrBufferFull   = errors.New("netstack: send buffer full")
	ErrNotListening = errors.New("netstack: not a listening socket")
	ErrAlreadyBound = errors.New("netstack: already bound")
)

// Config parameterizes a Stack.
type Config struct {
	Addr    IPv4Addr
	Netmask IPv4Addr
	// Scheduler enables blocking socket operations; nil restricts the
	// stack to the non-blocking/event-driven API (the run-to-completion
	// configuration from §3.3).
	Scheduler *uksched.Scheduler
	// Name labels the stack in diagnostics.
	Name string
	// PerDatagramSocketExtra adds cycles to every UDP socket send and
	// receive. The Table 4 experiment sets it to model lwIP's costly
	// socket layer (pbuf chain handling, mbox handoff, per-datagram
	// thread wakeup), which is what keeps the paper's "LWIP" row at
	// ~319K req/s while the raw uknetdev path reaches 6.3M.
	PerDatagramSocketExtra uint64
	// ZeroCopy switches the socket layers to zero-copy buffer handoff:
	// send/recv charge pointer bookkeeping (costSockQueueZC) instead of
	// an enqueue plus a per-byte copy. Default off — the copying path is
	// the calibrated baseline the paper's figures measure against.
	ZeroCopy bool
	// RxQueue / TxQueue bind this stack instance to one queue pair of a
	// multi-queue device: Poll drains RxQueue, the output path enqueues
	// on TxQueue. An SMP guest runs one stack shard per vCPU, each on
	// its own queue pair (and its own machine), with RSS steering each
	// flow's packets to a fixed shard. Zero values poll queue 0 — the
	// single-core layout, unchanged.
	RxQueue, TxQueue int
}

// Stats counts stack activity.
type Stats struct {
	RxFrames, TxFrames    uint64
	RxDropped             uint64
	ARPRequests, ARPReps  uint64
	TCPSegsIn, TCPSegsOut uint64
	TCPRetransmits        uint64
	UDPIn, UDPOut         uint64
	ChecksumErrors        uint64
}

// txHeadroom reserves room in pooled TX buffers for the link and
// network headers the output path prepends (Ethernet 14 + IPv4 20,
// rounded up for alignment slack).
const txHeadroom = 64

// Stack is one host's network stack bound to a uknetdev device.
type Stack struct {
	cfg     Config
	machine *sim.Machine
	dev     uknetdev.Device
	// zc is dev's zero-copy capability, nil when the device only
	// implements the copying burst API.
	zc uknetdev.ZeroCopyDevice

	arp     map[IPv4Addr]uknetdev.MAC
	arpWait map[IPv4Addr][]*uknetdev.Netbuf // frames queued pending resolution

	udpPorts  map[uint16]*UDPConn
	tcpConns  map[FourTuple]*TCPConn
	tcpListen map[uint16]*Listener

	ipID      uint16
	ephemeral uint16

	stats Stats

	// txPool recycles outgoing frame buffers; txScratch is the reusable
	// one-element burst for the per-frame transmit path.
	txPool    *uknetdev.NetbufPool
	txScratch [1]*uknetdev.Netbuf

	rxbufs []*uknetdev.Netbuf
	rxzc   []*uknetdev.Netbuf
}

// New creates a stack on machine m bound to dev.
func New(m *sim.Machine, dev uknetdev.Device, cfg Config) *Stack {
	s := &Stack{
		cfg:       cfg,
		machine:   m,
		dev:       dev,
		arp:       map[IPv4Addr]uknetdev.MAC{},
		arpWait:   map[IPv4Addr][]*uknetdev.Netbuf{},
		udpPorts:  map[uint16]*UDPConn{},
		tcpConns:  map[FourTuple]*TCPConn{},
		tcpListen: map[uint16]*Listener{},
		ephemeral: 32768,
		txPool:    uknetdev.NewNetbufPool(txHeadroom, 2048, 16),
	}
	if zc, ok := dev.(uknetdev.ZeroCopyDevice); ok {
		s.zc = zc
		s.rxzc = make([]*uknetdev.Netbuf, 64)
	} else {
		s.rxbufs = make([]*uknetdev.Netbuf, 64)
		for i := range s.rxbufs {
			s.rxbufs[i] = uknetdev.NewNetbuf(0, 2048)
		}
	}
	return s
}

// Addr returns the stack's IPv4 address.
func (s *Stack) Addr() IPv4Addr { return s.cfg.Addr }

// ZeroCopyEnabled reports whether the stack runs the zero-copy socket
// path (layers above, like the syscall shim, surface it to apps).
func (s *Stack) ZeroCopyEnabled() bool { return s.cfg.ZeroCopy }

// Stats returns stack counters.
func (s *Stack) Stats() Stats { return s.stats }

// Machine returns the simulated machine.
func (s *Stack) Machine() *sim.Machine { return s.machine }

// Device returns the bound netdev.
func (s *Stack) Device() uknetdev.Device { return s.dev }

// Poll drains the device RX queue, processes every frame, then runs TCP
// timers. It returns the number of frames processed. Event-loop
// applications call Poll and then check their sockets.
//
// On zero-copy devices the received buffers are borrowed by reference
// for the duration of input processing and recycled to their pools
// afterwards — no per-frame copy or allocation.
func (s *Stack) Poll() int {
	total := 0
	if s.zc != nil {
		for {
			n, more, err := s.zc.RxBurstZC(s.cfg.RxQueue, s.rxzc)
			if err != nil || n == 0 {
				break
			}
			for i, nb := range s.rxzc[:n] {
				s.input(nb.Bytes())
				nb.Release()
				s.rxzc[i] = nil
			}
			total += n
			if !more {
				break
			}
		}
	} else {
		for {
			n, more, err := s.dev.RxBurst(s.cfg.RxQueue, s.rxbufs)
			if err != nil || n == 0 {
				break
			}
			for _, nb := range s.rxbufs[:n] {
				s.input(nb.Bytes())
			}
			total += n
			if !more {
				break
			}
		}
	}
	s.tcpTimers()
	return total
}

// PendingRx reports frames waiting in the device RX queue without
// processing them, or -1 when the device cannot say. Pump uses it to
// skip quiescent stacks.
func (s *Stack) PendingRx() int {
	if p, ok := s.dev.(interface{ Pending(int) int }); ok {
		return p.Pending(s.cfg.RxQueue)
	}
	return -1
}

// Flush charges any coalesced TX kick the device still owes (see
// uknetdev.Tuning). Pump calls it at quiescence so batched runs do not
// under-count VM exits.
func (s *Stack) Flush() {
	if s.zc != nil {
		s.zc.FlushTx()
	}
}

// input processes one received Ethernet frame.
func (s *Stack) input(frame []byte) {
	s.machine.Charge(costEthRx)
	s.stats.RxFrames++
	eth, payload, err := ParseEth(frame)
	if err != nil {
		s.stats.RxDropped++
		return
	}
	switch eth.EtherType {
	case EtherTypeARP:
		s.inputARP(payload)
	case EtherTypeIPv4:
		s.inputIPv4(payload)
	default:
		s.stats.RxDropped++
	}
}

func (s *Stack) inputARP(b []byte) {
	s.machine.Charge(costARP)
	p, err := ParseARP(b)
	if err != nil {
		s.stats.RxDropped++
		return
	}
	// Learn the sender mapping either way.
	s.arpLearn(p.SenderIP, p.SenderHW)
	if p.Op == ARPRequest && p.TargetIP == s.cfg.Addr {
		reply := ARPPacket{
			Op:       ARPReply,
			SenderHW: s.dev.HWAddr(), SenderIP: s.cfg.Addr,
			TargetHW: p.SenderHW, TargetIP: p.SenderIP,
		}
		s.stats.ARPReps++
		s.sendEth(p.SenderHW, EtherTypeARP, func(b []byte) int {
			PutARP(b, reply)
			return ARPLen
		})
	}
}

// SeedARP installs a static neighbor entry, like `ip neigh add ...
// nud permanent`. SMP shard stacks need it: RSS steers ARP (a non-IP
// ethertype) to queue 0, so shards on queues > 0 would never see a
// reply to their own requests. Seeding the peer's MAC into every shard
// models the real SMP design — one ARP cache shared across cores —
// without adding cross-shard state.
func (s *Stack) SeedARP(ip IPv4Addr, mac uknetdev.MAC) {
	s.arpLearn(ip, mac)
}

func (s *Stack) arpLearn(ip IPv4Addr, mac uknetdev.MAC) {
	if ip.IsZero() {
		return
	}
	s.arp[ip] = mac
	if queued, ok := s.arpWait[ip]; ok {
		delete(s.arpWait, ip)
		for _, nb := range queued {
			nb.Prepend(EthHeaderLen)
			PutEth(nb.Bytes(), EthHeader{Dst: mac, Src: s.dev.HWAddr(), EtherType: EtherTypeIPv4})
			s.transmit(nb)
		}
	}
}

func (s *Stack) inputIPv4(b []byte) {
	s.machine.Charge(costIPRx)
	h, payload, err := ParseIPv4(b)
	if err != nil {
		s.stats.ChecksumErrors++
		s.stats.RxDropped++
		return
	}
	if h.Dst != s.cfg.Addr && h.Dst != Broadcast {
		s.stats.RxDropped++
		return
	}
	switch h.Proto {
	case ProtoICMP:
		s.inputICMP(h, payload)
	case ProtoUDP:
		s.inputUDP(h, payload)
	case ProtoTCP:
		s.inputTCP(h, payload)
	default:
		s.stats.RxDropped++
	}
}

func (s *Stack) inputICMP(ip IPv4Header, b []byte) {
	s.machine.Charge(costICMP)
	m, err := ParseICMPEcho(b)
	if err != nil || m.Type != ICMPEchoRequest {
		return
	}
	reply := ICMPEcho{Type: ICMPEchoReply, ID: m.ID, Seq: m.Seq, Payload: m.Payload}
	s.sendIPv4(ip.Src, ProtoICMP, len(b), func(b []byte) int {
		return PutICMPEcho(b, reply)
	})
}

// --- output path -------------------------------------------------------

// sendEth builds and transmits a frame to dst; fill writes the payload
// into the provided buffer and returns its length. The frame is built
// in a pooled netbuf: payload first, headers prepended into headroom.
func (s *Stack) sendEth(dst uknetdev.MAC, etherType uint16, fill func([]byte) int) {
	s.machine.Charge(costEthTx)
	nb := s.txPool.Get()
	nb.Len = fill(nb.Data[nb.Off:])
	nb.Prepend(EthHeaderLen)
	PutEth(nb.Bytes(), EthHeader{Dst: dst, Src: s.dev.HWAddr(), EtherType: etherType})
	s.transmit(nb)
}

// transmit hands one built frame to the device and drops the stack's
// reference; the device (and, on the zero-copy path, the peer) keep the
// buffer alive until the frame is consumed. Unmanaged buffers (the
// oversize fallback) have no reference to drop — the device snapshots
// them.
func (s *Stack) transmit(nb *uknetdev.Netbuf) {
	s.stats.TxFrames++
	s.txScratch[0] = nb
	s.dev.TxBurst(s.cfg.TxQueue, s.txScratch[:])
	s.txScratch[0] = nil
	if nb.Pooled() {
		nb.Release()
	}
}

// sendIPv4 emits one IPv4 packet to dst; fill writes the L4 payload
// (header+data) into the buffer and returns its length. The frame is
// built in a pooled fixed-geometry buffer (2 KiB payload capacity,
// which covers every TCP segment and in-MTU datagram); an oversize
// payloadHint falls back to a right-sized unmanaged buffer so jumbo
// datagrams still build a frame and get dropped at the device MTU
// check, exactly like the pre-pool path.
func (s *Stack) sendIPv4(dst IPv4Addr, proto byte, payloadHint int, fill func([]byte) int) error {
	s.machine.Charge(costIPTx)
	var nb *uknetdev.Netbuf
	if payloadHint+64 <= 2048 {
		nb = s.txPool.Get()
	} else {
		nb = uknetdev.NewNetbuf(txHeadroom, payloadHint+64)
	}
	n := fill(nb.Data[nb.Off:])
	nb.Len = n
	s.ipID++
	nb.Prepend(IPv4HeaderLen)
	PutIPv4(nb.Bytes(), IPv4Header{
		TotalLen: uint16(IPv4HeaderLen + n),
		ID:       s.ipID,
		TTL:      64,
		Proto:    proto,
		Src:      s.cfg.Addr,
		Dst:      dst,
	})

	mac, ok := s.arp[dst]
	if !ok {
		// Queue the frame (keeping the stack's reference) and ask
		// who-has; the Ethernet header is prepended at resolution.
		s.arpWait[dst] = append(s.arpWait[dst], nb)
		s.arpRequest(dst)
		return nil
	}
	nb.Prepend(EthHeaderLen)
	PutEth(nb.Bytes(), EthHeader{Dst: mac, Src: s.dev.HWAddr(), EtherType: EtherTypeIPv4})
	s.machine.Charge(costEthTx)
	s.transmit(nb)
	return nil
}

// chargeSockQueue charges one socket-buffer handoff of n bytes: an
// enqueue/dequeue plus the per-byte copy on the standard path, pointer
// bookkeeping only under zero-copy.
func (s *Stack) chargeSockQueue(n int) {
	if s.cfg.ZeroCopy {
		s.machine.Charge(costSockQueueZC)
		return
	}
	s.machine.Charge(costSockQueue + uint64(n)/costPerByte16)
}

func (s *Stack) arpRequest(dst IPv4Addr) {
	s.stats.ARPRequests++
	req := ARPPacket{
		Op:       ARPRequest,
		SenderHW: s.dev.HWAddr(), SenderIP: s.cfg.Addr,
		TargetIP: dst,
	}
	s.sendEth(BroadcastMAC, EtherTypeARP, func(b []byte) int {
		PutARP(b, req)
		return ARPLen
	})
}

// allocEphemeral returns an unused local port.
func (s *Stack) allocEphemeral(tcp bool) uint16 {
	for i := 0; i < 28000; i++ {
		s.ephemeral++
		if s.ephemeral < 32768 {
			s.ephemeral = 32768
		}
		p := s.ephemeral
		if tcp {
			if _, used := s.tcpListen[p]; used {
				continue
			}
			free := true
			for ft := range s.tcpConns {
				if ft.Local.Port == p {
					free = false
					break
				}
			}
			if free {
				return p
			}
		} else if _, used := s.udpPorts[p]; !used {
			return p
		}
	}
	panic("netstack: ephemeral ports exhausted")
}

// blockingSupported guards blocking socket calls.
func (s *Stack) blockingSupported() error {
	if s.cfg.Scheduler == nil {
		return fmt.Errorf("netstack: blocking op on stack %q without scheduler", s.cfg.Name)
	}
	return nil
}
