package netstack

import (
	"errors"
	"fmt"

	"unikraft/internal/sim"
	"unikraft/internal/uknetdev"
	"unikraft/internal/uksched"
)

// Per-packet processing costs (cycles), the "standard but slow" path of
// the paper's introduction. They accumulate to the few-thousand-cycle
// per-packet budget that separates the socket path (Table 4: 319K req/s
// through lwIP) from the raw uknetdev path (6.3M req/s).
const (
	costEthRx     = 45
	costEthTx     = 40
	costARP       = 120
	costIPRx      = 160 // header validation incl. checksum
	costIPTx      = 150
	costICMP      = 90
	costUDPRx     = 140
	costUDPTx     = 130
	costTCPSeg    = 420 // TCP input state machine per segment
	costTCPTx     = 380
	costSockQueue = 260 // socket buffer enqueue/dequeue + bookkeeping
	costPerByte16 = 16  // bytes copied per cycle in socket buffers
)

// Errors returned by the stack and sockets.
var (
	ErrPortInUse    = errors.New("netstack: port in use")
	ErrConnRefused  = errors.New("netstack: connection refused")
	ErrConnReset    = errors.New("netstack: connection reset")
	ErrConnClosed   = errors.New("netstack: connection closed")
	ErrTimeout      = errors.New("netstack: timed out")
	ErrWouldBlock   = errors.New("netstack: operation would block")
	ErrNoRoute      = errors.New("netstack: no route / ARP unresolved")
	ErrBufferFull   = errors.New("netstack: send buffer full")
	ErrNotListening = errors.New("netstack: not a listening socket")
	ErrAlreadyBound = errors.New("netstack: already bound")
)

// Config parameterizes a Stack.
type Config struct {
	Addr    IPv4Addr
	Netmask IPv4Addr
	// Scheduler enables blocking socket operations; nil restricts the
	// stack to the non-blocking/event-driven API (the run-to-completion
	// configuration from §3.3).
	Scheduler *uksched.Scheduler
	// Name labels the stack in diagnostics.
	Name string
	// PerDatagramSocketExtra adds cycles to every UDP socket send and
	// receive. The Table 4 experiment sets it to model lwIP's costly
	// socket layer (pbuf chain handling, mbox handoff, per-datagram
	// thread wakeup), which is what keeps the paper's "LWIP" row at
	// ~319K req/s while the raw uknetdev path reaches 6.3M.
	PerDatagramSocketExtra uint64
}

// Stats counts stack activity.
type Stats struct {
	RxFrames, TxFrames    uint64
	RxDropped             uint64
	ARPRequests, ARPReps  uint64
	TCPSegsIn, TCPSegsOut uint64
	TCPRetransmits        uint64
	UDPIn, UDPOut         uint64
	ChecksumErrors        uint64
}

// Stack is one host's network stack bound to a uknetdev device.
type Stack struct {
	cfg     Config
	machine *sim.Machine
	dev     uknetdev.Device

	arp     map[IPv4Addr]uknetdev.MAC
	arpWait map[IPv4Addr][][]byte // frames queued pending resolution

	udpPorts  map[uint16]*UDPConn
	tcpConns  map[FourTuple]*TCPConn
	tcpListen map[uint16]*Listener

	ipID      uint16
	ephemeral uint16

	stats Stats

	rxbufs []*uknetdev.Netbuf
}

// New creates a stack on machine m bound to dev.
func New(m *sim.Machine, dev uknetdev.Device, cfg Config) *Stack {
	s := &Stack{
		cfg:       cfg,
		machine:   m,
		dev:       dev,
		arp:       map[IPv4Addr]uknetdev.MAC{},
		arpWait:   map[IPv4Addr][][]byte{},
		udpPorts:  map[uint16]*UDPConn{},
		tcpConns:  map[FourTuple]*TCPConn{},
		tcpListen: map[uint16]*Listener{},
		ephemeral: 32768,
	}
	s.rxbufs = make([]*uknetdev.Netbuf, 64)
	for i := range s.rxbufs {
		s.rxbufs[i] = uknetdev.NewNetbuf(0, 2048)
	}
	return s
}

// Addr returns the stack's IPv4 address.
func (s *Stack) Addr() IPv4Addr { return s.cfg.Addr }

// Stats returns stack counters.
func (s *Stack) Stats() Stats { return s.stats }

// Machine returns the simulated machine.
func (s *Stack) Machine() *sim.Machine { return s.machine }

// Device returns the bound netdev.
func (s *Stack) Device() uknetdev.Device { return s.dev }

// Poll drains the device RX queue, processes every frame, then runs TCP
// timers. It returns the number of frames processed. Event-loop
// applications call Poll and then check their sockets.
func (s *Stack) Poll() int {
	total := 0
	for {
		n, more, err := s.dev.RxBurst(0, s.rxbufs)
		if err != nil || n == 0 {
			break
		}
		for _, nb := range s.rxbufs[:n] {
			s.input(nb.Bytes())
		}
		total += n
		if !more {
			break
		}
	}
	s.tcpTimers()
	return total
}

// input processes one received Ethernet frame.
func (s *Stack) input(frame []byte) {
	s.machine.Charge(costEthRx)
	s.stats.RxFrames++
	eth, payload, err := ParseEth(frame)
	if err != nil {
		s.stats.RxDropped++
		return
	}
	switch eth.EtherType {
	case EtherTypeARP:
		s.inputARP(payload)
	case EtherTypeIPv4:
		s.inputIPv4(payload)
	default:
		s.stats.RxDropped++
	}
}

func (s *Stack) inputARP(b []byte) {
	s.machine.Charge(costARP)
	p, err := ParseARP(b)
	if err != nil {
		s.stats.RxDropped++
		return
	}
	// Learn the sender mapping either way.
	s.arpLearn(p.SenderIP, p.SenderHW)
	if p.Op == ARPRequest && p.TargetIP == s.cfg.Addr {
		reply := ARPPacket{
			Op:       ARPReply,
			SenderHW: s.dev.HWAddr(), SenderIP: s.cfg.Addr,
			TargetHW: p.SenderHW, TargetIP: p.SenderIP,
		}
		s.stats.ARPReps++
		s.sendEth(p.SenderHW, EtherTypeARP, func(b []byte) int {
			PutARP(b, reply)
			return ARPLen
		})
	}
}

func (s *Stack) arpLearn(ip IPv4Addr, mac uknetdev.MAC) {
	if ip.IsZero() {
		return
	}
	s.arp[ip] = mac
	if queued, ok := s.arpWait[ip]; ok {
		delete(s.arpWait, ip)
		for _, frame := range queued {
			PutEth(frame, EthHeader{Dst: mac, Src: s.dev.HWAddr(), EtherType: EtherTypeIPv4})
			s.transmit(frame)
		}
	}
}

func (s *Stack) inputIPv4(b []byte) {
	s.machine.Charge(costIPRx)
	h, payload, err := ParseIPv4(b)
	if err != nil {
		s.stats.ChecksumErrors++
		s.stats.RxDropped++
		return
	}
	if h.Dst != s.cfg.Addr && h.Dst != Broadcast {
		s.stats.RxDropped++
		return
	}
	switch h.Proto {
	case ProtoICMP:
		s.inputICMP(h, payload)
	case ProtoUDP:
		s.inputUDP(h, payload)
	case ProtoTCP:
		s.inputTCP(h, payload)
	default:
		s.stats.RxDropped++
	}
}

func (s *Stack) inputICMP(ip IPv4Header, b []byte) {
	s.machine.Charge(costICMP)
	m, err := ParseICMPEcho(b)
	if err != nil || m.Type != ICMPEchoRequest {
		return
	}
	reply := ICMPEcho{Type: ICMPEchoReply, ID: m.ID, Seq: m.Seq, Payload: m.Payload}
	s.sendIPv4(ip.Src, ProtoICMP, len(b), func(b []byte) int {
		return PutICMPEcho(b, reply)
	})
}

// --- output path -------------------------------------------------------

// sendEth builds and transmits a frame to dst; fill writes the payload
// into the provided buffer and returns its length.
func (s *Stack) sendEth(dst uknetdev.MAC, etherType uint16, fill func([]byte) int) {
	s.machine.Charge(costEthTx)
	buf := make([]byte, EthHeaderLen+2048)
	n := fill(buf[EthHeaderLen:])
	PutEth(buf, EthHeader{Dst: dst, Src: s.dev.HWAddr(), EtherType: etherType})
	s.transmit(buf[:EthHeaderLen+n])
}

func (s *Stack) transmit(frame []byte) {
	nb := &uknetdev.Netbuf{Data: frame, Len: len(frame)}
	s.stats.TxFrames++
	s.dev.TxBurst(0, []*uknetdev.Netbuf{nb})
}

// sendIPv4 emits one IPv4 packet to dst; fill writes the L4 payload
// (header+data) and returns its length. payloadHint sizes the buffer.
func (s *Stack) sendIPv4(dst IPv4Addr, proto byte, payloadHint int, fill func([]byte) int) error {
	s.machine.Charge(costIPTx)
	buf := make([]byte, EthHeaderLen+IPv4HeaderLen+payloadHint+64)
	n := fill(buf[EthHeaderLen+IPv4HeaderLen:])
	s.ipID++
	PutIPv4(buf[EthHeaderLen:], IPv4Header{
		TotalLen: uint16(IPv4HeaderLen + n),
		ID:       s.ipID,
		TTL:      64,
		Proto:    proto,
		Src:      s.cfg.Addr,
		Dst:      dst,
	})
	frame := buf[:EthHeaderLen+IPv4HeaderLen+n]

	mac, ok := s.arp[dst]
	if !ok {
		// Queue the frame and ask who-has.
		s.arpWait[dst] = append(s.arpWait[dst], frame)
		s.arpRequest(dst)
		return nil
	}
	PutEth(frame, EthHeader{Dst: mac, Src: s.dev.HWAddr(), EtherType: EtherTypeIPv4})
	s.machine.Charge(costEthTx)
	s.transmit(frame)
	return nil
}

func (s *Stack) arpRequest(dst IPv4Addr) {
	s.stats.ARPRequests++
	req := ARPPacket{
		Op:       ARPRequest,
		SenderHW: s.dev.HWAddr(), SenderIP: s.cfg.Addr,
		TargetIP: dst,
	}
	s.sendEth(BroadcastMAC, EtherTypeARP, func(b []byte) int {
		PutARP(b, req)
		return ARPLen
	})
}

// allocEphemeral returns an unused local port.
func (s *Stack) allocEphemeral(tcp bool) uint16 {
	for i := 0; i < 28000; i++ {
		s.ephemeral++
		if s.ephemeral < 32768 {
			s.ephemeral = 32768
		}
		p := s.ephemeral
		if tcp {
			if _, used := s.tcpListen[p]; used {
				continue
			}
			free := true
			for ft := range s.tcpConns {
				if ft.Local.Port == p {
					free = false
					break
				}
			}
			if free {
				return p
			}
		} else if _, used := s.udpPorts[p]; !used {
			return p
		}
	}
	panic("netstack: ephemeral ports exhausted")
}

// blockingSupported guards blocking socket calls.
func (s *Stack) blockingSupported() error {
	if s.cfg.Scheduler == nil {
		return fmt.Errorf("netstack: blocking op on stack %q without scheduler", s.cfg.Name)
	}
	return nil
}
