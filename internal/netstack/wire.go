package netstack

import (
	"encoding/binary"
	"errors"

	"unikraft/internal/uknetdev"
)

// Header sizes.
const (
	EthHeaderLen  = 14
	ARPLen        = 28
	IPv4HeaderLen = 20
	UDPHeaderLen  = 8
	TCPHeaderLen  = 20 // without options
	ICMPHeaderLen = 8
)

var (
	errTruncated = errors.New("netstack: truncated packet")
	errBadField  = errors.New("netstack: malformed header field")
)

var be = binary.BigEndian

// Checksum computes the RFC 1071 internet checksum over data with an
// initial partial sum (for pseudo-headers).
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoSum computes the TCP/UDP pseudo-header partial sum.
func pseudoSum(src, dst IPv4Addr, proto byte, length int) uint32 {
	s := uint32(src[0])<<8 | uint32(src[1])
	s += uint32(src[2])<<8 | uint32(src[3])
	s += uint32(dst[0])<<8 | uint32(dst[1])
	s += uint32(dst[2])<<8 | uint32(dst[3])
	s += uint32(proto)
	s += uint32(length)
	return s
}

// --- Ethernet ----------------------------------------------------------

// EthHeader is an Ethernet II frame header.
type EthHeader struct {
	Dst, Src  uknetdev.MAC
	EtherType uint16
}

// PutEth writes an Ethernet header into b.
func PutEth(b []byte, h EthHeader) {
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	be.PutUint16(b[12:14], h.EtherType)
}

// ParseEth reads an Ethernet header, returning it and the payload.
func ParseEth(b []byte) (EthHeader, []byte, error) {
	if len(b) < EthHeaderLen {
		return EthHeader{}, nil, errTruncated
	}
	var h EthHeader
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = be.Uint16(b[12:14])
	return h, b[EthHeaderLen:], nil
}

// --- ARP ----------------------------------------------------------------

// ARP operation codes.
const (
	ARPRequest = 1
	ARPReply   = 2
)

// ARPPacket is an IPv4-over-Ethernet ARP message.
type ARPPacket struct {
	Op                 uint16
	SenderHW, TargetHW uknetdev.MAC
	SenderIP, TargetIP IPv4Addr
}

// PutARP writes an ARP packet into b.
func PutARP(b []byte, p ARPPacket) {
	be.PutUint16(b[0:2], 1)      // htype: Ethernet
	be.PutUint16(b[2:4], 0x0800) // ptype: IPv4
	b[4], b[5] = 6, 4
	be.PutUint16(b[6:8], p.Op)
	copy(b[8:14], p.SenderHW[:])
	copy(b[14:18], p.SenderIP[:])
	copy(b[18:24], p.TargetHW[:])
	copy(b[24:28], p.TargetIP[:])
}

// ParseARP reads an ARP packet.
func ParseARP(b []byte) (ARPPacket, error) {
	if len(b) < ARPLen {
		return ARPPacket{}, errTruncated
	}
	if be.Uint16(b[0:2]) != 1 || be.Uint16(b[2:4]) != 0x0800 || b[4] != 6 || b[5] != 4 {
		return ARPPacket{}, errBadField
	}
	var p ARPPacket
	p.Op = be.Uint16(b[6:8])
	copy(p.SenderHW[:], b[8:14])
	copy(p.SenderIP[:], b[14:18])
	copy(p.TargetHW[:], b[18:24])
	copy(p.TargetIP[:], b[24:28])
	return p, nil
}

// --- IPv4 ----------------------------------------------------------------

// IPv4Header is a 20-byte (option-less) IPv4 header.
type IPv4Header struct {
	TotalLen uint16
	ID       uint16
	TTL      byte
	Proto    byte
	Src, Dst IPv4Addr
}

// PutIPv4 writes the header with a freshly computed checksum.
func PutIPv4(b []byte, h IPv4Header) {
	b[0] = 0x45 // v4, IHL 5
	b[1] = 0
	be.PutUint16(b[2:4], h.TotalLen)
	be.PutUint16(b[4:6], h.ID)
	be.PutUint16(b[6:8], 0x4000) // DF, no fragmentation
	b[8] = h.TTL
	b[9] = h.Proto
	be.PutUint16(b[10:12], 0)
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	be.PutUint16(b[10:12], Checksum(b[:IPv4HeaderLen], 0))
}

// ParseIPv4 validates and reads the header, returning the L4 payload.
func ParseIPv4(b []byte) (IPv4Header, []byte, error) {
	if len(b) < IPv4HeaderLen {
		return IPv4Header{}, nil, errTruncated
	}
	if b[0]>>4 != 4 {
		return IPv4Header{}, nil, errBadField
	}
	ihl := int(b[0]&0xf) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return IPv4Header{}, nil, errBadField
	}
	if Checksum(b[:ihl], 0) != 0 {
		return IPv4Header{}, nil, errors.New("netstack: bad IPv4 checksum")
	}
	var h IPv4Header
	h.TotalLen = be.Uint16(b[2:4])
	h.ID = be.Uint16(b[4:6])
	h.TTL = b[8]
	h.Proto = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if int(h.TotalLen) < ihl || int(h.TotalLen) > len(b) {
		return IPv4Header{}, nil, errBadField
	}
	return h, b[ihl:h.TotalLen], nil
}

// --- ICMP ----------------------------------------------------------------

// ICMP types.
const (
	ICMPEchoReply   = 0
	ICMPEchoRequest = 8
)

// ICMPEcho is an echo request/reply message.
type ICMPEcho struct {
	Type    byte
	ID, Seq uint16
	Payload []byte
}

// PutICMPEcho writes the message and returns total length.
func PutICMPEcho(b []byte, m ICMPEcho) int {
	b[0] = m.Type
	b[1] = 0
	be.PutUint16(b[2:4], 0)
	be.PutUint16(b[4:6], m.ID)
	be.PutUint16(b[6:8], m.Seq)
	n := ICMPHeaderLen + copy(b[8:], m.Payload)
	be.PutUint16(b[2:4], Checksum(b[:n], 0))
	return n
}

// ParseICMPEcho reads an echo message.
func ParseICMPEcho(b []byte) (ICMPEcho, error) {
	if len(b) < ICMPHeaderLen {
		return ICMPEcho{}, errTruncated
	}
	if Checksum(b, 0) != 0 {
		return ICMPEcho{}, errors.New("netstack: bad ICMP checksum")
	}
	return ICMPEcho{
		Type: b[0], ID: be.Uint16(b[4:6]), Seq: be.Uint16(b[6:8]),
		Payload: b[8:],
	}, nil
}

// --- UDP ----------------------------------------------------------------

// UDPHeader is the 8-byte UDP header.
type UDPHeader struct {
	SrcPort, DstPort uint16
	Length           uint16
}

// PutUDP writes header+checksum for the given payload (already placed
// at b[UDPHeaderLen:]).
func PutUDP(b []byte, src, dst AddrPort, payloadLen int) {
	total := UDPHeaderLen + payloadLen
	be.PutUint16(b[0:2], src.Port)
	be.PutUint16(b[2:4], dst.Port)
	be.PutUint16(b[4:6], uint16(total))
	be.PutUint16(b[6:8], 0)
	ck := Checksum(b[:total], pseudoSum(src.Addr, dst.Addr, ProtoUDP, total))
	if ck == 0 {
		ck = 0xffff
	}
	be.PutUint16(b[6:8], ck)
}

// ParseUDP validates and reads the header, returning the payload.
func ParseUDP(b []byte, src, dst IPv4Addr) (UDPHeader, []byte, error) {
	if len(b) < UDPHeaderLen {
		return UDPHeader{}, nil, errTruncated
	}
	var h UDPHeader
	h.SrcPort = be.Uint16(b[0:2])
	h.DstPort = be.Uint16(b[2:4])
	h.Length = be.Uint16(b[4:6])
	if int(h.Length) < UDPHeaderLen || int(h.Length) > len(b) {
		return UDPHeader{}, nil, errBadField
	}
	if be.Uint16(b[6:8]) != 0 { // checksum present
		if Checksum(b[:h.Length], pseudoSum(src, dst, ProtoUDP, int(h.Length))) != 0 {
			return UDPHeader{}, nil, errors.New("netstack: bad UDP checksum")
		}
	}
	return h, b[UDPHeaderLen:h.Length], nil
}

// --- TCP ----------------------------------------------------------------

// TCP flags.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
)

// TCPHeader is a TCP segment header (MSS option supported on SYN).
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            byte
	Window           uint16
	MSS              uint16 // 0 = no option
}

// tcpHeaderLen returns the encoded header size.
func (h TCPHeader) tcpHeaderLen() int {
	if h.MSS != 0 {
		return TCPHeaderLen + 4
	}
	return TCPHeaderLen
}

// PutTCP writes the header and checksums header+payload; the payload
// must already be at b[h.tcpHeaderLen():hl+payloadLen]. It returns the
// header length used.
func PutTCP(b []byte, h TCPHeader, src, dst IPv4Addr, payloadLen int) int {
	hl := h.tcpHeaderLen()
	be.PutUint16(b[0:2], h.SrcPort)
	be.PutUint16(b[2:4], h.DstPort)
	be.PutUint32(b[4:8], h.Seq)
	be.PutUint32(b[8:12], h.Ack)
	b[12] = byte(hl/4) << 4
	b[13] = h.Flags
	be.PutUint16(b[14:16], h.Window)
	be.PutUint16(b[16:18], 0)
	be.PutUint16(b[18:20], 0) // urgent pointer unused
	if h.MSS != 0 {
		b[20], b[21] = 2, 4 // kind=MSS, len=4
		be.PutUint16(b[22:24], h.MSS)
	}
	total := hl + payloadLen
	be.PutUint16(b[16:18], Checksum(b[:total], pseudoSum(src, dst, ProtoTCP, total)))
	return hl
}

// ParseTCP validates and reads a segment, returning header and payload.
func ParseTCP(b []byte, src, dst IPv4Addr) (TCPHeader, []byte, error) {
	if len(b) < TCPHeaderLen {
		return TCPHeader{}, nil, errTruncated
	}
	hl := int(b[12]>>4) * 4
	if hl < TCPHeaderLen || hl > len(b) {
		return TCPHeader{}, nil, errBadField
	}
	if Checksum(b, pseudoSum(src, dst, ProtoTCP, len(b))) != 0 {
		return TCPHeader{}, nil, errors.New("netstack: bad TCP checksum")
	}
	var h TCPHeader
	h.SrcPort = be.Uint16(b[0:2])
	h.DstPort = be.Uint16(b[2:4])
	h.Seq = be.Uint32(b[4:8])
	h.Ack = be.Uint32(b[8:12])
	h.Flags = b[13]
	h.Window = be.Uint16(b[14:16])
	// Scan options for MSS.
	opts := b[TCPHeaderLen:hl]
	for i := 0; i < len(opts); {
		switch opts[i] {
		case 0: // end of options
			i = len(opts)
		case 1: // NOP
			i++
		case 2: // MSS
			if i+3 < len(opts) && opts[i+1] == 4 {
				h.MSS = be.Uint16(opts[i+2 : i+4])
			}
			i += 4
		default:
			if i+1 >= len(opts) || opts[i+1] < 2 {
				return TCPHeader{}, nil, errBadField
			}
			i += int(opts[i+1])
		}
	}
	return h, b[hl:], nil
}

// Sequence-number arithmetic (RFC 793 modular comparisons).

func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }
func seqGT(a, b uint32) bool  { return int32(a-b) > 0 }
func seqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }
