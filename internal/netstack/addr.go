// Package netstack is a from-scratch TCP/IP stack playing the role lwIP
// plays in the paper (Figure 4's "NW STACKS" layer): Ethernet, ARP,
// IPv4, ICMP, UDP and TCP over the uknetdev API, topped by a socket
// layer. It exists both as a real substrate for the application
// experiments (nginx/Redis throughput, the UDP key-value store) and as
// the "standard path" whose per-packet cost the paper's specialized
// uknetdev applications avoid (Table 4).
package netstack

import (
	"fmt"

	"unikraft/internal/uknetdev"
)

// IPv4Addr is a 4-byte IP address.
type IPv4Addr [4]byte

// String renders dotted-quad form.
func (a IPv4Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IsZero reports the unspecified address.
func (a IPv4Addr) IsZero() bool { return a == IPv4Addr{} }

// IP constructs an address from octets.
func IP(a, b, c, d byte) IPv4Addr { return IPv4Addr{a, b, c, d} }

// Broadcast is the limited broadcast address.
var Broadcast = IPv4Addr{255, 255, 255, 255}

// BroadcastMAC is the Ethernet broadcast address.
var BroadcastMAC = uknetdev.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// AddrPort is a transport endpoint.
type AddrPort struct {
	Addr IPv4Addr
	Port uint16
}

// String renders host:port.
func (ap AddrPort) String() string { return fmt.Sprintf("%s:%d", ap.Addr, ap.Port) }

// FourTuple identifies one TCP connection.
type FourTuple struct {
	Local, Remote AddrPort
}

// String renders local<->remote.
func (ft FourTuple) String() string { return ft.Local.String() + "<->" + ft.Remote.String() }

// Protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// EtherTypes.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
)
