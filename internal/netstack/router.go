package netstack

import "unikraft/internal/sim"

// Front-door routing costs. The cluster layer (internal/ukcluster) puts
// an L4/L7 router in front of the host fleet; per-request work on the
// router box is priced here, next to the per-packet costs of the stack
// it reuses, so the router and the guest stacks stay on one calibrated
// cost table. All values are cycles at 3.6 GHz.
//
// The router's fast path is an L4 flow-table hit: parse the Ethernet/
// IPv4/TCP headers (the same costEthRx/costIPRx/costTCPSeg work the
// guest stack charges), look the 5-tuple up in the connection table and
// forward. The first packet of a flow additionally runs the balancing
// policy (L7 decision): a round-robin counter bump, a least-loaded scan
// over per-host counters, or a consistent-hash ring lookup.
const (
	// costRouteConnTrack is the 5-tuple hash + connection-table lookup
	// and the DNAT-style header rewrite on the fast path — the per-
	// packet price of every routed request beyond plain header parsing.
	costRouteConnTrack = 190

	// costRoutePolicyRR is the round-robin decision: a counter
	// increment modulo the active-host count.
	costRoutePolicyRR = 20

	// costRoutePolicyScanPerHost is the per-host cost of the
	// least-loaded scan: one outstanding-work counter load + compare
	// per active host (the router's view, maintained inline).
	costRoutePolicyScanPerHost = 14

	// costRoutePolicyHash is the consistent-hash decision: hashing the
	// session key and binary-searching the virtual-node ring. The ring
	// depth only moves the search by a few cache lines, so one
	// calibrated constant covers the practical ring sizes.
	costRoutePolicyHash = 110

	// costRouteProbePerHost is one health probe: craft the probe packet,
	// send it, and match the reply (or its absence) against the liveness
	// table — charged per probed host per probe round.
	costRouteProbePerHost = 120

	// costRouteReject is the load-shedding fast path: parse the headers
	// and answer with a reject (RST/503) without touching the connection
	// table or running a balancing policy.
	costRouteReject = 90

	// costRouteExpire is the deadline-expiry fast path: parse the
	// headers, compare the carried deadline against the router clock,
	// and answer with a timeout status (504) — the reject path plus the
	// deadline load and compare.
	costRouteExpire = 95
)

// RouterModel prices the front door's per-request work. The zero value
// is the calibrated default; the struct exists so experiments can
// sensitize routing cost without recalibrating the constants.
type RouterModel struct {
	// ExtraCycles is added to every routed request (TLS termination,
	// header-rewrite middleware, ...). Zero for the plain L4 router.
	ExtraCycles uint64
}

// ChargeRoute charges m for routing one request: header parse,
// connection-table work, and the policy decision over activeHosts
// candidates. policyScan selects the least-loaded scan (true) vs a
// constant-cost decision; policyHash the ring lookup. It returns the
// cycles charged so callers converting to latency need not re-derive
// them from the clock.
func (r RouterModel) ChargeRoute(m *sim.Machine, activeHosts int, policyScan, policyHash bool) uint64 {
	cycles := uint64(costEthRx+costIPRx+costTCPSeg+costEthTx+costIPTx) +
		costRouteConnTrack + r.ExtraCycles
	switch {
	case policyHash:
		cycles += costRoutePolicyHash
	case policyScan:
		if activeHosts < 1 {
			activeHosts = 1
		}
		cycles += uint64(activeHosts) * costRoutePolicyScanPerHost
	default:
		cycles += costRoutePolicyRR
	}
	m.Charge(cycles)
	return cycles
}

// ChargeProbe charges m for one health-probe round over hosts targets.
// Probing is real front-door work: while the router pings the fleet it
// is not forwarding requests, so fault detection has a price the
// request pipeline feels.
func (r RouterModel) ChargeProbe(m *sim.Machine, hosts int) uint64 {
	if hosts < 1 {
		hosts = 1
	}
	cycles := uint64(hosts) * costRouteProbePerHost
	m.Charge(cycles)
	return cycles
}

// ChargeReject charges m for shedding one request at the front door:
// header parse plus the reject reply, cheaper than routing because no
// policy runs and no connection-table entry is made.
func (r RouterModel) ChargeReject(m *sim.Machine) uint64 {
	cycles := uint64(costEthRx+costIPRx+costTCPSeg+costEthTx+costIPTx) + costRouteReject
	m.Charge(cycles)
	return cycles
}

// ChargeExpire charges m for dropping one request whose deadline
// already passed at the front door: header parse, deadline compare,
// timeout reply. Like a reject, no policy runs and no connection-table
// entry is made — an expired request must cost almost nothing, or
// expiry itself would congest the router it is protecting.
func (r RouterModel) ChargeExpire(m *sim.Machine) uint64 {
	cycles := uint64(costEthRx+costIPRx+costTCPSeg+costEthTx+costIPTx) + costRouteExpire
	m.Charge(cycles)
	return cycles
}
