package netstack

// Pump drives a set of stacks to quiescence. Tests and benchmarks use
// it as the "world scheduler" connecting client and server stacks over
// a uknetdev pair.
//
// A naive pump re-polls every stack every round, which is
// O(rounds x stacks) even when most stacks went quiet after the first
// exchange. Pump instead skips a stack while it is quiescent: it made
// no progress last round and its device reports no pending RX frames.
// A skipped stack cannot wake spontaneously — its clock only advances
// when it processes work — so the probe is exact, and any peer that
// transmits to it flips its pending count and gets it polled again.
func Pump(stacks ...*Stack) {
	dirty := make([]bool, len(stacks))
	for i := range dirty {
		dirty[i] = true
	}
	for {
		progress := 0
		for i, s := range stacks {
			if !dirty[i] && s.PendingRx() == 0 {
				continue
			}
			moved := s.Poll()
			dirty[i] = moved > 0
			progress += moved
		}
		if progress == 0 {
			// Quiescent: charge any coalesced TX kicks still owed so
			// batched runs account every notification.
			for _, s := range stacks {
				s.Flush()
			}
			return
		}
	}
}

// PumpWithSched interleaves stack polling with scheduler draining, for
// stacks whose sockets are consumed by blocking threads: packet input
// wakes threads, which then run and may emit more packets. Because
// run() can touch any stack (writes, closes, timer-relevant work), all
// stacks are re-polled while any progress is being made.
func PumpWithSched(run func(), stacks ...*Stack) {
	for {
		progress := 0
		for _, s := range stacks {
			progress += s.Poll()
		}
		if run != nil {
			run()
		}
		if progress == 0 {
			for _, s := range stacks {
				s.Flush()
			}
			return
		}
	}
}
