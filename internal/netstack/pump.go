package netstack

// Pump drives a set of stacks to quiescence: it polls each stack in
// turn until a full round processes no frames. Tests and benchmarks use
// it as the "world scheduler" connecting client and server stacks over
// a uknetdev pair.
func Pump(stacks ...*Stack) {
	for {
		progress := 0
		for _, s := range stacks {
			progress += s.Poll()
		}
		if progress == 0 {
			return
		}
	}
}

// PumpWithSched interleaves stack polling with scheduler draining, for
// stacks whose sockets are consumed by blocking threads: packet input
// wakes threads, which then run and may emit more packets.
func PumpWithSched(run func(), stacks ...*Stack) {
	for {
		progress := 0
		for _, s := range stacks {
			progress += s.Poll()
		}
		if run != nil {
			run()
		}
		if progress == 0 {
			return
		}
	}
}
