package netstack

import (
	"testing"

	"unikraft/internal/sim"
	"unikraft/internal/uknetdev"
)

// zcWorld builds a client/server stack pair; zc selects the zero-copy
// socket path on both, and tuning applies kick/IRQ coalescing.
func zcWorld(t *testing.T, zc bool, tuning uknetdev.Tuning) (cm, sm *sim.Machine, client, server *Stack) {
	t.Helper()
	cm, sm = sim.NewMachine(), sim.NewMachine()
	cd, sd, err := uknetdev.NewTunedPair(cm, sm, uknetdev.VhostNet, tuning)
	if err != nil {
		t.Fatal(err)
	}
	client = New(cm, cd, Config{Addr: IP(10, 0, 0, 1), Name: "client", ZeroCopy: zc})
	server = New(sm, sd, Config{Addr: IP(10, 0, 0, 2), Name: "server", ZeroCopy: zc})
	return
}

// run one TCP request/response exchange and return server cycles.
func zcExchange(t *testing.T, zc bool, tuning uknetdev.Tuning) uint64 {
	t.Helper()
	_, sm, client, server := zcWorld(t, zc, tuning)
	lis, err := server.ListenTCP(80, 16)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := client.ConnectTCP(AddrPort{Addr: IP(10, 0, 0, 2), Port: 80})
	if err != nil {
		t.Fatal(err)
	}
	Pump(client, server)
	sc, ok := lis.Accept()
	if !ok || !cc.Established() {
		t.Fatal("handshake failed")
	}
	start := sm.CPU.Cycles()
	req := make([]byte, 256)
	resp := make([]byte, 1024)
	buf := make([]byte, 4096)
	// Pipelined rounds, like the paper's 30-connection load generators:
	// a burst of requests goes in, a burst of responses comes out, so TX
	// kick batching has frames to amortize over.
	for round := 0; round < 10; round++ {
		for i := 0; i < 16; i++ {
			cc.Write(req)
		}
		Pump(client, server)
		for sc.Readable() > 0 {
			sc.Read(buf)
		}
		for i := 0; i < 16; i++ {
			sc.Write(resp)
		}
		Pump(client, server)
		for cc.Readable() > 0 {
			cc.Read(buf)
		}
	}
	return sm.CPU.Cycles() - start
}

// TestZeroCopyCheaper: the zero-copy socket path charges strictly fewer
// server cycles than the copying path for the same exchange, and kick
// batching reduces it further.
func TestZeroCopyCheaper(t *testing.T) {
	copying := zcExchange(t, false, uknetdev.Tuning{})
	zc := zcExchange(t, true, uknetdev.Tuning{})
	zcBatched := zcExchange(t, true, uknetdev.Tuning{TxKickBatch: 16})
	if zc >= copying {
		t.Errorf("zero-copy cycles %d >= copying %d", zc, copying)
	}
	if zcBatched >= zc {
		t.Errorf("batched kicks %d >= unbatched %d", zcBatched, zc)
	}
	if ratio := float64(copying) / float64(zcBatched); ratio < 1.3 {
		t.Errorf("zero-copy+batch speedup = %.2fx, want >= 1.3x", ratio)
	}
}

// TestZeroCopyDataIntact: payloads survive the pooled zero-copy device
// handoff byte for byte.
func TestZeroCopyDataIntact(t *testing.T) {
	_, _, client, server := zcWorld(t, true, uknetdev.Tuning{TxKickBatch: 8})
	lis, err := server.ListenTCP(80, 16)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := client.ConnectTCP(AddrPort{Addr: IP(10, 0, 0, 2), Port: 80})
	if err != nil {
		t.Fatal(err)
	}
	Pump(client, server)
	sc, ok := lis.Accept()
	if !ok {
		t.Fatal("no accepted conn")
	}
	msg := make([]byte, 4000) // spans multiple segments
	for i := range msg {
		msg[i] = byte(i * 31)
	}
	sent := 0
	for sent < len(msg) {
		n, err := cc.Write(msg[sent:])
		if err != nil {
			t.Fatal(err)
		}
		sent += n
		Pump(client, server)
	}
	got := make([]byte, 0, len(msg))
	buf := make([]byte, 1024)
	for sc.Readable() > 0 {
		n, _ := sc.Read(buf)
		got = append(got, buf[:n]...)
	}
	if len(got) != len(msg) {
		t.Fatalf("received %d bytes, want %d", len(got), len(msg))
	}
	for i := range got {
		if got[i] != msg[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], msg[i])
		}
	}
}

// TestOversizeDatagramDroppedNotPanic: a UDP payload beyond the pooled
// TX buffer geometry must fall back to a right-sized frame and be
// dropped at the device MTU check — the pre-pool behaviour — not panic.
func TestOversizeDatagramDroppedNotPanic(t *testing.T) {
	cm, sm := sim.NewMachine(), sim.NewMachine()
	cd, sd, err := uknetdev.NewPair(cm, sm, uknetdev.VhostNet)
	if err != nil {
		t.Fatal(err)
	}
	client := New(cm, cd, Config{Addr: IP(10, 0, 0, 1)})
	server := New(sm, sd, Config{Addr: IP(10, 0, 0, 2)})
	conn, err := client.BindUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.SendTo(AddrPort{Addr: IP(10, 0, 0, 2), Port: 9}, make([]byte, 3000)); err != nil {
		t.Fatalf("SendTo = %v", err)
	}
	Pump(client, server)
	// The jumbo frame reaches the device (after ARP resolution) and is
	// dropped there, never delivered.
	if drops := cd.Stats().TxDrops; drops != 1 {
		t.Errorf("TxDrops = %d, want 1 (frame exceeds MTU)", drops)
	}
	if got := server.Stats().UDPIn; got != 0 {
		t.Errorf("oversize datagram delivered (UDPIn=%d)", got)
	}
}

// TestPumpSkipsQuiescentStacks: with many idle stacks in the set, Pump
// must not re-poll them every round. The device stats prove it: an idle
// stack's machine spends nothing while the busy pair exchanges traffic.
func TestPumpSkipsQuiescentStacks(t *testing.T) {
	cm, sm := sim.NewMachine(), sim.NewMachine()
	cd, sd, err := uknetdev.NewPair(cm, sm, uknetdev.VhostNet)
	if err != nil {
		t.Fatal(err)
	}
	client := New(cm, cd, Config{Addr: IP(10, 0, 0, 1)})
	server := New(sm, sd, Config{Addr: IP(10, 0, 0, 2)})

	// Idle bystanders on their own unconnected devices.
	var idle []*Stack
	for i := 0; i < 8; i++ {
		im := sim.NewMachine()
		id1, _, err := uknetdev.NewPair(im, sim.NewMachine(), uknetdev.VhostNet)
		if err != nil {
			t.Fatal(err)
		}
		idle = append(idle, New(im, id1, Config{Addr: IP(10, 1, 0, byte(i+1))}))
	}

	lis, err := server.ListenTCP(80, 4)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := client.ConnectTCP(AddrPort{Addr: IP(10, 0, 0, 2), Port: 80})
	if err != nil {
		t.Fatal(err)
	}
	all := append([]*Stack{client, server}, idle...)
	Pump(all...)
	if _, ok := lis.Accept(); !ok || !cc.Established() {
		t.Fatal("handshake failed with idle stacks in the pump set")
	}
	cc.Write([]byte("payload"))
	Pump(all...)
	for _, s := range idle {
		if got := s.Machine().CPU.Cycles(); got != 0 {
			t.Errorf("idle stack %s spent %d cycles; quiescent stacks must be skipped", s.Addr(), got)
		}
	}
}
