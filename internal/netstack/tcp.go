package netstack

import (
	"sort"

	"unikraft/internal/uksched"
)

// TCP tuning. The stack implements: three-way handshake, in-order data
// transfer with cumulative ACKs, flow control against the peer's
// advertised window, retransmission with exponential backoff, fast
// retransmit on three duplicate ACKs, and orderly/abortive teardown.
// Out-of-order segments are not reassembled (the receiver dup-ACKs and
// the sender's retransmit recovers) — a documented simplification that
// only costs performance on lossy paths, which the paper's LAN testbed
// does not exercise.
const (
	DefaultMSS    = 1460
	tcpWindow     = 65535
	sndBufCap     = 256 << 10
	rcvBufCap     = 256 << 10
	initialRTO    = 180_000_000 // 50ms at 3.6GHz
	maxRetries    = 8
	timeWaitCycle = 3_600_000_000 // 1s virtual 2MSL (shortened for simulation)
)

// tcpState is the RFC 793 connection state.
type tcpState int

const (
	stClosed tcpState = iota
	stListen
	stSynSent
	stSynRcvd
	stEstablished
	stFinWait1
	stFinWait2
	stCloseWait
	stLastAck
	stClosing
	stTimeWait
)

var tcpStateNames = [...]string{
	"CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
	"FIN_WAIT_1", "FIN_WAIT_2", "CLOSE_WAIT", "LAST_ACK", "CLOSING", "TIME_WAIT",
}

func (s tcpState) String() string { return tcpStateNames[s] }

// tcpSeg is one sent-but-unacknowledged segment.
type tcpSeg struct {
	seq     uint32
	data    []byte
	flags   byte // SYN/FIN occupy sequence space
	sentAt  uint64
	retries int
}

func (sg *tcpSeg) seqLen() uint32 {
	n := uint32(len(sg.data))
	if sg.flags&TCPSyn != 0 {
		n++
	}
	if sg.flags&TCPFin != 0 {
		n++
	}
	return n
}

// TCPConn is one TCP connection endpoint.
type TCPConn struct {
	stack *Stack
	tuple FourTuple
	state tcpState

	iss, irs       uint32
	sndUna, sndNxt uint32
	sndWnd         uint32
	rcvNxt         uint32
	mss            int

	sndBuf     []byte
	retransQ   []tcpSeg
	rcvBuf     []byte
	finPending bool
	finSent    bool
	peerFin    bool

	rto        uint64
	dupAcks    int
	timeWaitAt uint64
	corked     bool

	err error

	lastWnd uint16 // last advertised receive window

	rwq, wwq, cwq uksched.WaitQueue
	parent        *Listener
}

// Listener is a passive TCP socket.
type Listener struct {
	stack   *Stack
	port    uint16
	backlog int
	queue   []*TCPConn // established, awaiting Accept
	wq      uksched.WaitQueue
	closed  bool
}

// --- socket creation ----------------------------------------------------

// ListenTCP opens a passive socket on port.
func (s *Stack) ListenTCP(port uint16, backlog int) (*Listener, error) {
	if _, used := s.tcpListen[port]; used {
		return nil, ErrPortInUse
	}
	if backlog <= 0 {
		backlog = 128
	}
	l := &Listener{stack: s, port: port, backlog: backlog}
	s.tcpListen[port] = l
	return l, nil
}

// ConnectTCP starts an active open to dst and returns immediately with
// the connection in SYN_SENT; use Established()/ConnectBlocking to wait.
func (s *Stack) ConnectTCP(dst AddrPort) (*TCPConn, error) {
	return s.ConnectTCPFrom(s.allocEphemeral(true), dst)
}

// ConnectTCPFrom is ConnectTCP with an explicit local port (SO_REUSEPORT
// style source-port pinning). Multi-queue load generators use it to
// shape the RSS hash: choosing source ports chooses which server queue
// — and therefore which vCPU — each connection lands on, the simulated
// equivalent of pktgen sweeping source ports to exercise every hardware
// queue.
func (s *Stack) ConnectTCPFrom(lport uint16, dst AddrPort) (*TCPConn, error) {
	c := &TCPConn{
		stack: s,
		tuple: FourTuple{
			Local:  AddrPort{Addr: s.cfg.Addr, Port: lport},
			Remote: dst,
		},
		state:  stSynSent,
		mss:    DefaultMSS,
		rto:    initialRTO,
		sndWnd: tcpWindow,
	}
	c.iss = uint32(s.machine.Rand.Uint64())
	c.sndUna, c.sndNxt = c.iss, c.iss
	s.tcpConns[c.tuple] = c
	c.sendSeg(TCPSyn, nil, true)
	return c, nil
}

// ConnectBlocking completes the handshake, parking t while SYN is in
// flight.
func (s *Stack) ConnectBlocking(t *uksched.Thread, dst AddrPort) (*TCPConn, error) {
	if err := s.blockingSupported(); err != nil {
		return nil, err
	}
	c, err := s.ConnectTCP(dst)
	if err != nil {
		return nil, err
	}
	for c.state != stEstablished && c.err == nil {
		c.cwq.Wait(t)
	}
	if c.err != nil {
		return nil, c.err
	}
	return c, nil
}

// --- listener API --------------------------------------------------------

// Accept dequeues an established connection without blocking.
func (l *Listener) Accept() (*TCPConn, bool) {
	if len(l.queue) == 0 {
		return nil, false
	}
	c := l.queue[0]
	l.queue = l.queue[1:]
	return c, true
}

// AcceptBlocking parks t until a connection is ready.
func (l *Listener) AcceptBlocking(t *uksched.Thread) (*TCPConn, error) {
	if err := l.stack.blockingSupported(); err != nil {
		return nil, err
	}
	for {
		if c, ok := l.Accept(); ok {
			return c, nil
		}
		if l.closed {
			return nil, ErrConnClosed
		}
		l.wq.Wait(t)
	}
}

// PendingAccepts reports queued connections.
func (l *Listener) PendingAccepts() int { return len(l.queue) }

// Close stops listening; queued-but-unaccepted connections are reset.
func (l *Listener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	delete(l.stack.tcpListen, l.port)
	for _, c := range l.queue {
		c.abort(ErrConnClosed, true)
	}
	l.queue = nil
	l.wq.WakeAll()
}

// --- input processing ----------------------------------------------------

func (s *Stack) inputTCP(ip IPv4Header, b []byte) {
	s.machine.Charge(costTCPSeg)
	h, payload, err := ParseTCP(b, ip.Src, ip.Dst)
	if err != nil {
		s.stats.ChecksumErrors++
		s.stats.RxDropped++
		return
	}
	s.stats.TCPSegsIn++
	tuple := FourTuple{
		Local:  AddrPort{Addr: ip.Dst, Port: h.DstPort},
		Remote: AddrPort{Addr: ip.Src, Port: h.SrcPort},
	}
	if c, ok := s.tcpConns[tuple]; ok {
		c.segment(h, payload)
		return
	}
	if l, ok := s.tcpListen[h.DstPort]; ok && h.Flags&TCPSyn != 0 && h.Flags&TCPAck == 0 {
		l.newConnection(tuple, h)
		return
	}
	// No socket: RST in response to anything but an RST.
	if h.Flags&TCPRst == 0 {
		s.sendRst(tuple, h)
	}
}

func (s *Stack) sendRst(tuple FourTuple, h TCPHeader) {
	seq := h.Ack
	flags := byte(TCPRst)
	ack := uint32(0)
	if h.Flags&TCPAck == 0 {
		seq = 0
		flags |= TCPAck
		ack = h.Seq + 1
	}
	hdr := TCPHeader{
		SrcPort: tuple.Local.Port, DstPort: tuple.Remote.Port,
		Seq: seq, Ack: ack, Flags: flags, Window: 0,
	}
	s.stats.TCPSegsOut++
	s.sendIPv4(tuple.Remote.Addr, ProtoTCP, TCPHeaderLen, func(b []byte) int {
		return PutTCP(b, hdr, tuple.Local.Addr, tuple.Remote.Addr, 0)
	})
}

// newConnection handles a SYN on a listening port.
func (l *Listener) newConnection(tuple FourTuple, h TCPHeader) {
	s := l.stack
	if len(l.queue) >= l.backlog {
		s.stats.RxDropped++
		return
	}
	c := &TCPConn{
		stack:  s,
		tuple:  tuple,
		state:  stSynRcvd,
		mss:    DefaultMSS,
		rto:    initialRTO,
		sndWnd: uint32(h.Window),
		parent: l,
	}
	if h.MSS != 0 && int(h.MSS) < c.mss {
		c.mss = int(h.MSS)
	}
	c.iss = uint32(s.machine.Rand.Uint64())
	c.sndUna, c.sndNxt = c.iss, c.iss
	c.irs = h.Seq
	c.rcvNxt = h.Seq + 1
	s.tcpConns[tuple] = c
	c.sendSeg(TCPSyn|TCPAck, nil, true)
}

// segment is the per-connection input state machine.
func (c *TCPConn) segment(h TCPHeader, payload []byte) {
	s := c.stack
	if h.Flags&TCPRst != 0 {
		if c.state == stSynSent && h.Flags&TCPAck != 0 && h.Ack != c.sndNxt {
			return // RST not for our SYN
		}
		c.abort(ErrConnReset, false)
		return
	}

	switch c.state {
	case stSynSent:
		if h.Flags&TCPSyn == 0 || h.Flags&TCPAck == 0 || h.Ack != c.iss+1 {
			return
		}
		c.irs = h.Seq
		c.rcvNxt = h.Seq + 1
		if h.MSS != 0 && int(h.MSS) < c.mss {
			c.mss = int(h.MSS)
		}
		c.ackAdvance(h.Ack)
		c.sndWnd = uint32(h.Window)
		c.state = stEstablished
		c.sendAck()
		c.cwq.WakeAll()
		c.trySend()
		return
	case stSynRcvd:
		if h.Flags&TCPAck != 0 && h.Ack == c.iss+1 {
			c.ackAdvance(h.Ack)
			c.sndWnd = uint32(h.Window)
			c.state = stEstablished
			if c.parent != nil && !c.parent.closed {
				c.parent.queue = append(c.parent.queue, c)
				c.parent.wq.WakeAll()
			}
			// Fall through to process any data on the ACK.
		} else if h.Flags&TCPSyn != 0 {
			// Retransmitted SYN: re-send SYN-ACK.
			c.retransmitHead()
			return
		} else {
			return
		}
	}

	// ESTABLISHED and later: ACK processing.
	if h.Flags&TCPAck != 0 {
		c.processAck(h)
	}

	// Data processing (in-order only).
	if len(payload) > 0 {
		switch c.state {
		case stEstablished, stFinWait1, stFinWait2:
			if h.Seq == c.rcvNxt {
				room := rcvBufCap - len(c.rcvBuf)
				take := len(payload)
				if take > room {
					take = room
				}
				c.rcvBuf = append(c.rcvBuf, payload[:take]...)
				s.chargeSockQueue(take)
				c.rcvNxt += uint32(take)
				c.sendAck()
				c.rwq.WakeAll()
			} else {
				// Out of order or duplicate: dup-ACK what we expect.
				c.sendAck()
			}
		}
	}

	// FIN processing (only when all prior data was consumed in-order).
	if h.Flags&TCPFin != 0 && !c.peerFin {
		if finSeq := h.Seq + uint32(len(payload)); finSeq == c.rcvNxt {
			c.peerFin = true
			c.rcvNxt++
			c.sendAck()
			c.rwq.WakeAll()
			switch c.state {
			case stEstablished:
				c.state = stCloseWait
			case stFinWait1:
				// Simultaneous close; our FIN not yet acked.
				c.state = stClosing
			case stFinWait2:
				c.enterTimeWait()
			}
		}
	}
}

// processAck handles acknowledgement and window updates.
func (c *TCPConn) processAck(h TCPHeader) {
	ack := h.Ack
	if seqGT(ack, c.sndNxt) {
		c.sendAck() // acking the future: resync
		return
	}
	if seqGT(ack, c.sndUna) {
		c.ackAdvance(ack)
		c.sndWnd = uint32(h.Window)
		c.dupAcks = 0
		c.rto = initialRTO
		c.wwq.WakeAll()
		// State transitions driven by our FIN being acknowledged.
		if c.finSent && c.sndUna == c.sndNxt {
			switch c.state {
			case stFinWait1:
				c.state = stFinWait2
			case stClosing:
				c.enterTimeWait()
			case stLastAck:
				c.teardown(nil)
				return
			}
		}
	} else if ack == c.sndUna && len(c.retransQ) > 0 {
		c.dupAcks++
		if c.dupAcks == 3 {
			// Fast retransmit.
			c.stack.stats.TCPRetransmits++
			c.retransmitHead()
		}
	} else {
		c.sndWnd = uint32(h.Window)
	}
	// A window update (including a pure ACK reopening a closed window)
	// must restart transmission of queued data.
	c.trySend()
	if len(c.sndBuf) < sndBufCap {
		c.wwq.WakeAll()
	}
}

// ackAdvance drops fully acknowledged segments.
func (c *TCPConn) ackAdvance(ack uint32) {
	c.sndUna = ack
	for len(c.retransQ) > 0 {
		sg := &c.retransQ[0]
		if seqLEQ(sg.seq+sg.seqLen(), ack) {
			c.retransQ = c.retransQ[1:]
		} else {
			break
		}
	}
}

// --- output --------------------------------------------------------------

// sendSeg emits a segment with the given flags and payload, tracking it
// for retransmission when track is set.
func (c *TCPConn) sendSeg(flags byte, payload []byte, track bool) {
	s := c.stack
	s.machine.Charge(costTCPTx)
	h := TCPHeader{
		SrcPort: c.tuple.Local.Port, DstPort: c.tuple.Remote.Port,
		Seq: c.sndNxt, Ack: c.rcvNxt,
		Flags:  flags,
		Window: clampWnd(rcvBufCap - len(c.rcvBuf)),
	}
	if flags&TCPSyn != 0 {
		h.MSS = DefaultMSS
	}
	if flags != TCPSyn { // everything after the first SYN carries ACK
		h.Flags |= TCPAck
	}
	c.lastWnd = h.Window
	s.stats.TCPSegsOut++
	s.sendIPv4(c.tuple.Remote.Addr, ProtoTCP, TCPHeaderLen+4+len(payload), func(b []byte) int {
		hl := PutTCP(b, h, c.tuple.Local.Addr, c.tuple.Remote.Addr, len(payload))
		copy(b[hl:], payload)
		// Recompute checksum with payload in place.
		return PutTCP(b, h, c.tuple.Local.Addr, c.tuple.Remote.Addr, len(payload)) + len(payload)
	})
	if track {
		sg := tcpSeg{seq: c.sndNxt, flags: flags & (TCPSyn | TCPFin), sentAt: s.machine.CPU.Cycles()}
		if len(payload) > 0 {
			sg.data = append([]byte(nil), payload...)
		}
		c.retransQ = append(c.retransQ, sg)
		c.sndNxt += sg.seqLen()
	}
}

// sendAck emits a bare ACK.
func (c *TCPConn) sendAck() {
	c.sendSeg(TCPAck, nil, false)
}

// trySend pushes queued data (and a pending FIN) within the peer window.
func (c *TCPConn) trySend() {
	if c.state != stEstablished && c.state != stCloseWait && c.state != stFinWait1 && c.state != stClosing && c.state != stLastAck {
		return
	}
	for len(c.sndBuf) > 0 {
		if c.corked && len(c.sndBuf) < c.mss {
			// TCP_CORK: hold the partial segment until Uncork — this is
			// how a sendfile loop's page-sized writes coalesce into
			// full-MSS segments instead of one fragment per page.
			return
		}
		inflight := c.sndNxt - c.sndUna
		avail := int(c.sndWnd) - int(inflight)
		if avail <= 0 {
			return
		}
		n := len(c.sndBuf)
		if n > c.mss {
			n = c.mss
		}
		if n > avail {
			n = avail
		}
		chunk := c.sndBuf[:n]
		c.sndBuf = c.sndBuf[n:]
		flags := byte(TCPAck)
		if len(c.sndBuf) == 0 {
			flags |= TCPPsh
		}
		c.sendSeg(flags, chunk, true)
	}
	if c.finPending && !c.finSent && len(c.sndBuf) == 0 {
		c.finSent = true
		c.sendSeg(TCPFin|TCPAck, nil, true)
	}
}

// retransmitHead re-sends the oldest unacknowledged segment.
func (c *TCPConn) retransmitHead() {
	if len(c.retransQ) == 0 {
		return
	}
	sg := &c.retransQ[0]
	s := c.stack
	s.machine.Charge(costTCPTx)
	h := TCPHeader{
		SrcPort: c.tuple.Local.Port, DstPort: c.tuple.Remote.Port,
		Seq: sg.seq, Ack: c.rcvNxt,
		Flags:  sg.flags | TCPAck,
		Window: clampWnd(rcvBufCap - len(c.rcvBuf)),
	}
	if sg.flags&TCPSyn != 0 {
		h.MSS = DefaultMSS
		if c.state == stSynSent {
			h.Flags &^= TCPAck // initial SYN carries no ACK
		}
	}
	s.stats.TCPSegsOut++
	s.sendIPv4(c.tuple.Remote.Addr, ProtoTCP, TCPHeaderLen+4+len(sg.data), func(b []byte) int {
		hl := PutTCP(b, h, c.tuple.Local.Addr, c.tuple.Remote.Addr, len(sg.data))
		copy(b[hl:], sg.data)
		return PutTCP(b, h, c.tuple.Local.Addr, c.tuple.Remote.Addr, len(sg.data)) + len(sg.data)
	})
	sg.sentAt = s.machine.CPU.Cycles()
	sg.retries++
}

// tcpTimers runs retransmission and TIME_WAIT timers; called from Poll.
func (s *Stack) tcpTimers() {
	now := s.machine.CPU.Cycles()
	for _, c := range snapshotConns(s.tcpConns) {
		if c.state == stTimeWait {
			if now >= c.timeWaitAt {
				c.teardown(nil)
			}
			continue
		}
		if len(c.retransQ) == 0 {
			continue
		}
		sg := &c.retransQ[0]
		if now-sg.sentAt < c.rto {
			continue
		}
		if sg.retries >= maxRetries {
			c.abort(ErrTimeout, true)
			continue
		}
		s.stats.TCPRetransmits++
		c.rto *= 2
		c.retransmitHead()
	}
}

// clampWnd bounds the advertised window to the 16-bit field (no window
// scaling option; tcpWindow is the effective cap).
func clampWnd(avail int) uint16 {
	if avail > tcpWindow {
		return tcpWindow
	}
	if avail < 0 {
		return 0
	}
	return uint16(avail)
}

// snapshotConns returns connections in a deterministic order so timer
// processing (and therefore virtual-time event order) is reproducible.
func snapshotConns(m map[FourTuple]*TCPConn) []*TCPConn {
	out := make([]*TCPConn, 0, len(m))
	for _, c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].tuple, out[j].tuple
		if a.Local.Port != b.Local.Port {
			return a.Local.Port < b.Local.Port
		}
		if a.Remote.Port != b.Remote.Port {
			return a.Remote.Port < b.Remote.Port
		}
		return a.Remote.Addr.String() < b.Remote.Addr.String()
	})
	return out
}

// --- connection API --------------------------------------------------------

// State returns a printable state name (for tests/diagnostics).
func (c *TCPConn) State() string { return c.state.String() }

// Established reports whether the handshake completed.
func (c *TCPConn) Established() bool { return c.state == stEstablished }

// Err returns the terminal error, if any.
func (c *TCPConn) Err() error { return c.err }

// Tuple returns the connection's 4-tuple.
func (c *TCPConn) Tuple() FourTuple { return c.tuple }

// Cork delays partial-segment transmission (TCP_CORK): while corked,
// queued data goes out only in full-MSS segments. Response writers
// wrap scattered writes — a header plus sendfile'd file pages — in
// Cork/Uncork so the wire sees the same segmentation as one big write.
func (c *TCPConn) Cork() { c.corked = true }

// Uncork resumes normal transmission and flushes any held partial
// segment.
func (c *TCPConn) Uncork() {
	c.corked = false
	c.trySend()
}

// Write queues data for transmission, returning the bytes accepted
// (short writes happen at send-buffer capacity).
func (c *TCPConn) Write(data []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	switch c.state {
	case stEstablished, stCloseWait:
	default:
		return 0, ErrConnClosed
	}
	room := sndBufCap - len(c.sndBuf)
	n := len(data)
	if n > room {
		n = room
	}
	if n == 0 {
		return 0, ErrBufferFull
	}
	c.stack.chargeSockQueue(n)
	c.sndBuf = append(c.sndBuf, data[:n]...)
	c.trySend()
	return n, nil
}

// WriteBlocking writes all of data, parking t when the buffer is full.
func (c *TCPConn) WriteBlocking(t *uksched.Thread, data []byte) (int, error) {
	if err := c.stack.blockingSupported(); err != nil {
		return 0, err
	}
	total := 0
	for len(data) > 0 {
		n, err := c.Write(data)
		if err == ErrBufferFull {
			c.wwq.Wait(t)
			continue
		}
		if err != nil {
			return total, err
		}
		total += n
		data = data[n:]
	}
	return total, nil
}

// Read copies received data into buf without blocking. At EOF (peer FIN
// consumed) it returns 0, ErrConnClosed; with no data it returns
// 0, ErrWouldBlock.
func (c *TCPConn) Read(buf []byte) (int, error) {
	if len(c.rcvBuf) == 0 {
		if c.err != nil {
			return 0, c.err
		}
		if c.peerFin {
			return 0, ErrConnClosed
		}
		return 0, ErrWouldBlock
	}
	n := copy(buf, c.rcvBuf)
	c.rcvBuf = c.rcvBuf[n:]
	c.stack.chargeSockQueue(n)
	// If we previously advertised a nearly-closed window and draining
	// reopened it, tell the peer so it can resume (window update).
	if c.state == stEstablished && c.lastWnd < tcpWindow/4 && rcvBufCap-len(c.rcvBuf) > rcvBufCap/2 {
		c.sendAck()
	}
	return n, nil
}

// ReadBlocking parks t until data (or EOF/error) is available.
func (c *TCPConn) ReadBlocking(t *uksched.Thread, buf []byte) (int, error) {
	if err := c.stack.blockingSupported(); err != nil {
		return 0, err
	}
	for {
		n, err := c.Read(buf)
		if err != ErrWouldBlock {
			return n, err
		}
		c.rwq.Wait(t)
	}
}

// Readable reports buffered bytes available to Read.
func (c *TCPConn) Readable() int { return len(c.rcvBuf) }

// Close starts an orderly shutdown (FIN after queued data drains).
func (c *TCPConn) Close() error {
	switch c.state {
	case stClosed, stTimeWait, stLastAck, stClosing, stFinWait1, stFinWait2:
		return nil
	case stSynSent:
		c.teardown(ErrConnClosed)
		return nil
	case stCloseWait:
		c.state = stLastAck
	case stEstablished, stSynRcvd:
		c.state = stFinWait1
	}
	c.finPending = true
	c.trySend()
	return nil
}

// abort resets the connection; sendRst emits an RST to the peer.
func (c *TCPConn) abort(err error, sendRst bool) {
	if sendRst && c.state != stClosed {
		h := TCPHeader{
			SrcPort: c.tuple.Local.Port, DstPort: c.tuple.Remote.Port,
			Seq: c.sndNxt, Ack: c.rcvNxt, Flags: TCPRst | TCPAck,
		}
		c.stack.stats.TCPSegsOut++
		c.stack.sendIPv4(c.tuple.Remote.Addr, ProtoTCP, TCPHeaderLen, func(b []byte) int {
			return PutTCP(b, h, c.tuple.Local.Addr, c.tuple.Remote.Addr, 0)
		})
	}
	c.teardown(err)
}

func (c *TCPConn) enterTimeWait() {
	c.state = stTimeWait
	c.timeWaitAt = c.stack.machine.CPU.Cycles() + timeWaitCycle
}

// teardown finalizes the connection and wakes all waiters.
func (c *TCPConn) teardown(err error) {
	if c.err == nil {
		c.err = err
	}
	c.state = stClosed
	delete(c.stack.tcpConns, c.tuple)
	c.retransQ = nil
	c.sndBuf = nil
	c.rwq.WakeAll()
	c.wwq.WakeAll()
	c.cwq.WakeAll()
}
