package netstack

import (
	"bytes"
	"testing"

	"unikraft/internal/sim"
	"unikraft/internal/uknetdev"
	"unikraft/internal/uksched"
)

// world is a two-host test topology: client <-> server over a virtio
// pair.
type world struct {
	cm, sm *sim.Machine
	client *Stack
	server *Stack
}

func newWorld(t *testing.T) *world {
	t.Helper()
	cm, sm := sim.NewMachine(), sim.NewMachine()
	cd, sd, err := uknetdev.NewPair(cm, sm, uknetdev.VhostNet)
	if err != nil {
		t.Fatal(err)
	}
	w := &world{cm: cm, sm: sm}
	w.client = New(cm, cd, Config{Addr: IP(10, 0, 0, 1), Name: "client"})
	w.server = New(sm, sd, Config{Addr: IP(10, 0, 0, 2), Name: "server"})
	return w
}

func (w *world) pump() { Pump(w.client, w.server) }

func TestARPResolution(t *testing.T) {
	w := newWorld(t)
	c, err := w.client.BindUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	// First send triggers ARP; the datagram is queued and flushed on
	// reply.
	if err := c.SendTo(AddrPort{IP(10, 0, 0, 2), 7}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if w.client.Stats().ARPRequests != 1 {
		t.Fatalf("ARPRequests = %d, want 1", w.client.Stats().ARPRequests)
	}
	srv, err := w.server.BindUDP(7)
	if err != nil {
		t.Fatal(err)
	}
	w.pump()
	if _, ok := srv.RecvFrom(); !ok {
		t.Fatal("datagram lost across ARP resolution")
	}
	// Second send must not re-ARP.
	if err := c.SendTo(AddrPort{IP(10, 0, 0, 2), 7}, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if w.client.Stats().ARPRequests != 1 {
		t.Fatalf("ARPRequests = %d after warm cache, want 1", w.client.Stats().ARPRequests)
	}
}

func TestUDPEcho(t *testing.T) {
	w := newWorld(t)
	srv, _ := w.server.BindUDP(9000)
	cli, _ := w.client.BindUDP(0)
	for i := 0; i < 10; i++ {
		msg := []byte{byte(i), 0xAA}
		if err := cli.SendTo(AddrPort{IP(10, 0, 0, 2), 9000}, msg); err != nil {
			t.Fatal(err)
		}
	}
	w.pump()
	if srv.Pending() != 10 {
		t.Fatalf("server pending = %d, want 10", srv.Pending())
	}
	for i := 0; i < 10; i++ {
		d, ok := srv.RecvFrom()
		if !ok {
			t.Fatal("missing datagram")
		}
		if d.Data[0] != byte(i) {
			t.Fatalf("datagram %d out of order: got %d", i, d.Data[0])
		}
		if err := srv.SendTo(d.From, d.Data); err != nil {
			t.Fatal(err)
		}
	}
	w.pump()
	if cli.Pending() != 10 {
		t.Fatalf("client echo pending = %d, want 10", cli.Pending())
	}
}

func TestUDPPortDemux(t *testing.T) {
	w := newWorld(t)
	a, _ := w.server.BindUDP(1000)
	b, _ := w.server.BindUDP(2000)
	cli, _ := w.client.BindUDP(0)
	cli.SendTo(AddrPort{IP(10, 0, 0, 2), 1000}, []byte("a"))
	cli.SendTo(AddrPort{IP(10, 0, 0, 2), 2000}, []byte("b"))
	w.pump()
	if d, ok := a.RecvFrom(); !ok || string(d.Data) != "a" {
		t.Fatalf("port 1000 got %v %v", d, ok)
	}
	if d, ok := b.RecvFrom(); !ok || string(d.Data) != "b" {
		t.Fatalf("port 2000 got %v %v", d, ok)
	}
	if _, err := w.server.BindUDP(1000); err != ErrPortInUse {
		t.Fatalf("duplicate bind err = %v, want ErrPortInUse", err)
	}
}

func TestTCPHandshakeAndData(t *testing.T) {
	w := newWorld(t)
	l, err := w.server.ListenTCP(80, 16)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := w.client.ConnectTCP(AddrPort{IP(10, 0, 0, 2), 80})
	if err != nil {
		t.Fatal(err)
	}
	w.pump()
	if !conn.Established() {
		t.Fatalf("client state = %s, want ESTABLISHED", conn.State())
	}
	sconn, ok := l.Accept()
	if !ok {
		t.Fatal("no accepted connection")
	}
	if !sconn.Established() {
		t.Fatalf("server state = %s", sconn.State())
	}

	// Client -> server data.
	msg := []byte("GET / HTTP/1.1\r\n\r\n")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	w.pump()
	buf := make([]byte, 1024)
	n, err := sconn.Read(buf)
	if err != nil || !bytes.Equal(buf[:n], msg) {
		t.Fatalf("server read %q, %v", buf[:n], err)
	}
	// Server -> client reply.
	reply := []byte("HTTP/1.1 200 OK\r\n\r\nhello")
	if _, err := sconn.Write(reply); err != nil {
		t.Fatal(err)
	}
	w.pump()
	n, err = conn.Read(buf)
	if err != nil || !bytes.Equal(buf[:n], reply) {
		t.Fatalf("client read %q, %v", buf[:n], err)
	}
}

func TestTCPLargeTransfer(t *testing.T) {
	w := newWorld(t)
	l, _ := w.server.ListenTCP(80, 1)
	conn, _ := w.client.ConnectTCP(AddrPort{IP(10, 0, 0, 2), 80})
	w.pump()
	sconn, ok := l.Accept()
	if !ok {
		t.Fatal("no connection")
	}
	// Send 1MB through a 64KB window: requires flow control, segmenting
	// and window updates.
	const total = 1 << 20
	payload := make([]byte, total)
	rng := sim.NewRand(3)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}
	var received []byte
	sent := 0
	buf := make([]byte, 32<<10)
	for sent < total || len(received) < total {
		if sent < total {
			n, err := conn.Write(payload[sent:])
			if err != nil && err != ErrBufferFull {
				t.Fatal(err)
			}
			sent += n
		}
		w.pump()
		for {
			n, err := sconn.Read(buf)
			if n > 0 {
				received = append(received, buf[:n]...)
			}
			if err != nil || n == 0 {
				break
			}
		}
	}
	if !bytes.Equal(received, payload) {
		t.Fatalf("1MB transfer corrupted (got %d bytes)", len(received))
	}
}

func TestTCPOrderlyClose(t *testing.T) {
	w := newWorld(t)
	l, _ := w.server.ListenTCP(80, 1)
	conn, _ := w.client.ConnectTCP(AddrPort{IP(10, 0, 0, 2), 80})
	w.pump()
	sconn, _ := l.Accept()

	conn.Write([]byte("bye"))
	conn.Close()
	w.pump()
	buf := make([]byte, 16)
	n, err := sconn.Read(buf)
	if err != nil || string(buf[:n]) != "bye" {
		t.Fatalf("read before EOF = %q, %v", buf[:n], err)
	}
	if _, err := sconn.Read(buf); err != ErrConnClosed {
		t.Fatalf("read at EOF = %v, want ErrConnClosed", err)
	}
	sconn.Close()
	w.pump()
	// Client entered TIME_WAIT (active closer); server fully closed.
	if got := sconn.State(); got != "CLOSED" {
		t.Fatalf("server state = %s, want CLOSED", got)
	}
	if got := conn.State(); got != "TIME_WAIT" {
		t.Fatalf("client state = %s, want TIME_WAIT", got)
	}
	// 2MSL expiry reclaims the connection.
	w.cm.Charge(timeWaitCycle + 1)
	w.client.Poll()
	if got := conn.State(); got != "CLOSED" {
		t.Fatalf("client state after 2MSL = %s, want CLOSED", got)
	}
}

func TestTCPConnectionRefused(t *testing.T) {
	w := newWorld(t)
	conn, _ := w.client.ConnectTCP(AddrPort{IP(10, 0, 0, 2), 81}) // nobody listening
	w.pump()
	if conn.Err() != ErrConnReset {
		t.Fatalf("err = %v, want ErrConnReset (RST)", conn.Err())
	}
}

// TestTCPRetransmission injects packet loss by dropping the server's RX
// ring contents, then advances virtual time past the RTO.
func TestTCPRetransmission(t *testing.T) {
	w := newWorld(t)
	l, _ := w.server.ListenTCP(80, 1)
	conn, _ := w.client.ConnectTCP(AddrPort{IP(10, 0, 0, 2), 80})
	w.pump()
	sconn, _ := l.Accept()

	if _, err := conn.Write([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	// Drop the data segment before the server sees it.
	dev := w.server.Device().(*uknetdev.VirtioNet)
	drop := make([]*uknetdev.Netbuf, 8)
	for i := range drop {
		drop[i] = uknetdev.NewNetbuf(0, 2048)
	}
	for {
		n, _, _ := dev.RxBurst(0, drop)
		if n == 0 {
			break
		}
	}
	w.pump()
	buf := make([]byte, 16)
	if _, err := sconn.Read(buf); err != ErrWouldBlock {
		t.Fatalf("segment not dropped: %v", err)
	}

	// Advance past RTO; client retransmits.
	w.cm.Charge(initialRTO + 1)
	w.pump()
	if w.client.Stats().TCPRetransmits == 0 {
		t.Fatal("no retransmission recorded")
	}
	n, err := sconn.Read(buf)
	if err != nil || string(buf[:n]) != "lost" {
		t.Fatalf("after retransmit read %q, %v", buf[:n], err)
	}
}

// TestTCPRetransmissionGivesUp: a peer that vanishes entirely leads to
// ErrTimeout after max retries with exponential backoff.
func TestTCPRetransmissionGivesUp(t *testing.T) {
	w := newWorld(t)
	l, _ := w.server.ListenTCP(80, 1)
	conn, _ := w.client.ConnectTCP(AddrPort{IP(10, 0, 0, 2), 80})
	w.pump()
	_, _ = l.Accept()
	conn.Write([]byte("into the void"))

	dev := w.server.Device().(*uknetdev.VirtioNet)
	drop := make([]*uknetdev.Netbuf, 8)
	for i := range drop {
		drop[i] = uknetdev.NewNetbuf(0, 2048)
	}
	for i := 0; i <= maxRetries+2; i++ {
		// Black-hole everything the server would receive.
		for {
			n, _, _ := dev.RxBurst(0, drop[:])
			if n == 0 {
				break
			}
		}
		w.cm.Charge(initialRTO << uint(i+1))
		w.client.Poll()
	}
	if conn.Err() != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", conn.Err())
	}
	if conn.State() != "CLOSED" {
		t.Fatalf("state = %s, want CLOSED", conn.State())
	}
}

func TestICMPEcho(t *testing.T) {
	w := newWorld(t)
	// Hand-craft an echo request from the client.
	payload := []byte("ping payload")
	w.client.sendIPv4(IP(10, 0, 0, 2), ProtoICMP, ICMPHeaderLen+len(payload), func(b []byte) int {
		return PutICMPEcho(b, ICMPEcho{Type: ICMPEchoRequest, ID: 7, Seq: 3, Payload: payload})
	})
	gotReply := false
	w.pump()
	// Intercept at the client by checking device stats: reply delivered
	// means client RxFrames counted an ICMP packet.
	if w.client.Stats().RxFrames > 0 {
		gotReply = true
	}
	if !gotReply {
		t.Fatal("no ICMP echo reply received")
	}
}

func TestBlockingSocketsWithScheduler(t *testing.T) {
	cm, sm := sim.NewMachine(), sim.NewMachine()
	cd, sd, err := uknetdev.NewPair(cm, sm, uknetdev.VhostNet)
	if err != nil {
		t.Fatal(err)
	}
	sched := uksched.New(uksched.Cooperative, sm)
	defer sched.Shutdown()
	client := New(cm, cd, Config{Addr: IP(10, 0, 0, 1)})
	server := New(sm, sd, Config{Addr: IP(10, 0, 0, 2), Scheduler: sched})

	var got []byte
	srvDone := false
	sched.NewThread("server", func(th *uksched.Thread) {
		l, err := server.ListenTCP(80, 4)
		if err != nil {
			t.Error(err)
			return
		}
		conn, err := l.AcceptBlocking(th)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 64)
		n, err := conn.ReadBlocking(th, buf)
		if err != nil {
			t.Error(err)
			return
		}
		got = buf[:n]
		conn.WriteBlocking(th, []byte("pong"))
		srvDone = true
	})
	sched.Run() // server blocks in accept

	conn, _ := client.ConnectTCP(AddrPort{IP(10, 0, 0, 2), 80})
	PumpWithSched(func() { sched.Run() }, client, server)
	conn.Write([]byte("ping"))
	PumpWithSched(func() { sched.Run() }, client, server)

	if string(got) != "ping" {
		t.Fatalf("server got %q", got)
	}
	if !srvDone {
		t.Fatal("server thread incomplete")
	}
	buf := make([]byte, 16)
	n, err := conn.Read(buf)
	if err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("client read %q, %v", buf[:n], err)
	}
}

func TestBlockingWithoutSchedulerFails(t *testing.T) {
	w := newWorld(t)
	l, _ := w.server.ListenTCP(80, 1)
	if _, err := l.AcceptBlocking(nil); err == nil {
		t.Fatal("AcceptBlocking without scheduler should fail")
	}
}

func TestSocketPathCharges(t *testing.T) {
	// The socket path must charge substantially more than the raw
	// uknetdev path: that gap is the entire Table 4 story.
	w := newWorld(t)
	srv, _ := w.server.BindUDP(9000)
	cli, _ := w.client.BindUDP(0)
	cli.SendTo(AddrPort{IP(10, 0, 0, 2), 9000}, []byte("warm"))
	w.pump()
	srv.RecvFrom()

	before := w.sm.CPU.Cycles()
	cli.SendTo(AddrPort{IP(10, 0, 0, 2), 9000}, []byte("0123456789abcdef"))
	w.pump()
	srv.RecvFrom()
	rxCost := w.sm.CPU.Cycles() - before
	if rxCost < 500 {
		t.Errorf("server-side socket RX path = %d cycles; implausibly cheap", rxCost)
	}
}
