package experiments

import (
	"fmt"
	"reflect"
	"time"

	"unikraft/internal/core"
	"unikraft/internal/sim"
	"unikraft/internal/ukalloc"
	"unikraft/internal/ukboot"
	"unikraft/internal/ukbuild"
	"unikraft/internal/ukcluster"
	"unikraft/internal/ukfault"
	"unikraft/internal/ukplat"
	"unikraft/internal/ukpool"
)

func init() {
	register("overload", "Overload control: end-to-end deadlines, adaptive admission, brownout and retry-storm suppression", overloadServe)
}

// overloadRequests is the headline trace size: the overload claim
// (sustain >= 95% of capacity at 2.5x offered load with bounded
// interactive latency) has to hold open-loop at scale, so the headline
// rows push ten million requests each.
const overloadRequests = 10_000_000

// Fleet shape: 2 hosts x 4 cores, one pinned instance per core
// (autoscale off), so serving capacity is exactly cores/serviceTime —
// the single-server-queue-per-core regime where an uncontrolled FIFO
// genuinely collapses under sustained overload.
const (
	overloadHosts = 2
	overloadCores = 4
	// overloadEstService matches the chaos experiment's calibration of
	// the same cost model (4 syscalls + 170K app cycles): ~47us/request.
	overloadEstService = 47 * time.Microsecond
	// overloadRate is ~2.5x the 8-core fleet's ~170K req/s capacity.
	overloadRate = 425_000
	// overloadDeadline is the interactive end-to-end allowance; batch
	// gets ten times that.
	overloadDeadline      = 20 * time.Millisecond
	overloadBatchDeadline = 200 * time.Millisecond
	// overloadAdmitTarget is the admission controller's queue-delay
	// target. The proportional controller settles the estimated delay
	// at roughly overloadRatio x the interactive threshold (3x target),
	// ~7.5ms here — well inside the 20ms deadline.
	overloadAdmitTarget = time.Millisecond
)

// overloadGoodputFloor is the headline gate: with control armed, the
// in-deadline completion rate must stay at or above 95% of measured
// fleet capacity while 2.5x that is being offered.
const overloadGoodputFloor = 0.95

// overloadServe measures the overload-control stack end to end: an
// open-loop trace at 2.5x capacity with no client backpressure, served
// uncontrolled (latency collapse), then with deadlines + adaptive
// admission (bounded latency, sustained goodput), plus staged priority
// shedding, brownout, slow-host steering and retry-storm suppression.
// Everything is deterministic; the armed-but-idle configuration must
// reproduce the unarmed serve byte-for-byte.
func overloadServe(env *Env) (*Result, error) {
	profile, ok := core.AppByName("nginx")
	if !ok {
		return nil, fmt.Errorf("overload: nginx profile not registered")
	}
	img, err := ukbuild.Build(env.Catalog, profile, ukplat.KVMFirecracker.Name, ukbuild.Options{DCE: true, LTO: true})
	if err != nil {
		return nil, err
	}
	backend, err := ukalloc.ResolveBackend(profile.Allocator)
	if err != nil {
		return nil, err
	}
	bootCfg := ukboot.Config{
		Platform:   ukplat.KVMFirecracker,
		MemBytes:   8 << 20,
		ImageBytes: img.Bytes,
		Allocator:  backend,
		NICs:       profile.NICs,
		Libs:       ukboot.ProfileLibs(profile.NICs, profile.Scheduler),
	}

	const hostSalt = 0xA24BAED4963EE407
	const instSalt = 0x9E3779B97F4A7C15
	hostPool := func(hostOpts func(host int) []ukpool.Option) func(host int) (*ukpool.Pool, error) {
		return func(host int) (*ukpool.Pool, error) {
			ctx, err := ukboot.NewContext(bootCfg)
			if err != nil {
				return nil, err
			}
			seed := uint64(host) * hostSalt
			machine := func(id int) *sim.Machine {
				return sim.NewMachineWithSeed(seed + uint64(id)*instSalt)
			}
			opts := []ukpool.Option{
				// One instance pinned per event-loop shard: capacity is
				// cores/serviceTime, nothing hides the queue.
				ukpool.WithWarm(overloadCores), ukpool.WithMaxInstances(overloadCores),
				ukpool.WithServiceCost(4, 170_000),
				ukpool.DisableAutoscale(),
			}
			if hostOpts != nil {
				opts = append(opts, hostOpts(host)...)
			}
			return ukpool.New(func(id int) (*ukboot.VM, error) { return ctx.Boot(machine(id)) }, opts...), nil
		}
	}

	serve := func(cfg ukcluster.Config, w ukpool.Workload, hostOpts func(host int) []ukpool.Option) (*ukcluster.Report, error) {
		cfg.Hosts = overloadHosts
		cfg.Cores = overloadCores
		cfg.InitialActive = overloadHosts
		cfg.MinActive = overloadHosts
		cfg.Policy = ukcluster.LeastLoaded
		cfg.NewPool = hostPool(hostOpts)
		cfg.EstService = overloadEstService
		// Re-target the admission controller often relative to how fast
		// an open-loop trace at 2.5x can deepen the queue.
		cfg.EvalEvery = 2 * time.Millisecond
		c, err := ukcluster.New(cfg)
		if err != nil {
			return nil, err
		}
		defer c.Close()
		return c.Serve(w)
	}

	trace := func(n int, rate float64, mix float64, deadlines bool) *ukpool.Overload {
		w := ukpool.NewOverload(1201, rate, n, 256).Mix(mix)
		if deadlines {
			w.Deadlines(overloadDeadline, overloadBatchDeadline)
		}
		return w
	}

	res := &Result{
		ID: "overload", Title: Title("overload"),
		Headers: []string{"configuration", "requests", "served", "goodput(in-dl)",
			"expired", "shed", "shed-batch", "browned", "retried", "throttled", "int-p99"},
	}
	row := func(name string, rep *ukcluster.Report, inDl float64) {
		res.Rows = append(res.Rows, []string{
			name,
			fmt.Sprintf("%d", rep.Offered),
			fmt.Sprintf("%d", rep.Pool.Completed()),
			fmt.Sprintf("%.3f%%", 100*inDl),
			fmt.Sprintf("%d", rep.Expired+rep.Pool.Expired),
			fmt.Sprintf("%d", rep.Shed),
			fmt.Sprintf("%d", rep.ShedBatch),
			fmt.Sprintf("%d", rep.Pool.Browned),
			fmt.Sprintf("%d", rep.Retried),
			fmt.Sprintf("%d", rep.Throttled),
			rep.Pool.Latency.Quantile(0.99).Round(time.Microsecond).String(),
		})
	}

	// Uncontrolled headline: no deadlines, no admission. Open-loop at
	// 2.5x capacity the FIFO backlog grows without bound; everything is
	// eventually "served", but the fraction served inside the interactive
	// deadline collapses — goodput by the only definition that matters.
	uncontrolled, err := serve(ukcluster.Config{}, trace(overloadRequests, overloadRate, 1, false), nil)
	if err != nil {
		return nil, err
	}
	uncontrolledInDl := uncontrolled.Pool.Latency.FractionBelow(overloadDeadline) *
		float64(uncontrolled.Pool.Completed()) / float64(uncontrolled.Offered)
	row("overload-10M/uncontrolled", uncontrolled, uncontrolledInDl)

	// Controlled headline: the same trace carrying 20ms deadlines, with
	// the adaptive admission controller at the door. Excess load is shed
	// or expired cheaply; what is served completes in deadline, and the
	// fleet stays saturated with useful work.
	controlled, err := serve(ukcluster.Config{AdmitTarget: overloadAdmitTarget},
		trace(overloadRequests, overloadRate, 1, true), nil)
	if err != nil {
		return nil, err
	}
	controlledInDl := float64(controlled.Pool.Completed()) / float64(controlled.Offered)
	row("overload-10M/deadline+admission", controlled, controlledInDl)

	const sideRequests = 2_000_000

	// Brownout: degrade before dropping. Past the configured queue depth
	// pools serve half-work responses, nearly doubling drain rate; the
	// admission controller correspondingly sheds less.
	browned, err := serve(ukcluster.Config{AdmitTarget: overloadAdmitTarget},
		trace(sideRequests, overloadRate, 1, true),
		func(host int) []ukpool.Option { return []ukpool.Option{ukpool.WithBrownout(64)} })
	if err != nil {
		return nil, err
	}
	row("overload-2M/+brownout", browned,
		float64(browned.Pool.Completed())/float64(browned.Offered))

	// Priority staging: a 30/70 interactive/batch mix. Batch sheds from
	// the target up, interactive only past 3x — the staged controller
	// sacrifices batch so interactive barely feels the overload.
	priority, err := serve(ukcluster.Config{AdmitTarget: overloadAdmitTarget},
		trace(sideRequests, overloadRate, 0.3, true), nil)
	if err != nil {
		return nil, err
	}
	row("overload-2M/priority-30-70", priority,
		float64(priority.Pool.Completed())/float64(priority.Offered))

	// Retry storm: partition host 1 for two seconds at moderate load.
	// Lost forwards retry with backoff; unthrottled, every loss spawns
	// up to RetryLimit re-routes. The token bucket (refill 0.05/success)
	// cuts retries once losses outpace successes.
	const stormRate = 150_000
	stormWindow := func() *ukfault.Plan {
		return ukfault.New(977).PartitionHost(1, 2*time.Second, 4*time.Second)
	}
	storm, err := serve(ukcluster.Config{Faults: stormWindow()},
		trace(sideRequests, stormRate, 1, true), nil)
	if err != nil {
		return nil, err
	}
	row("overload-2M/partition-retry-storm", storm,
		float64(storm.Pool.Completed())/float64(storm.Offered))
	throttled, err := serve(ukcluster.Config{Faults: stormWindow(), RetryThrottleRatio: 0.05},
		trace(sideRequests, stormRate, 1, true), nil)
	if err != nil {
		return nil, err
	}
	row("overload-2M/+retry-throttle", throttled,
		float64(throttled.Pool.Completed())/float64(throttled.Offered))

	// Slow host: host 1 runs 3x slower for two seconds. The router's
	// fluid model inflates work forwarded there, least-loaded steers
	// around it, and the pool stretches the services it does start.
	slowPlan := ukfault.New(977).Slow(1, 2*time.Second, 4*time.Second, 3)
	slow, err := serve(ukcluster.Config{Faults: slowPlan, AdmitTarget: overloadAdmitTarget},
		trace(sideRequests, 120_000, 1, true),
		func(host int) []ukpool.Option {
			if s, ok := slowPlan.SlowOf(host); ok {
				return []ukpool.Option{ukpool.WithSlowdown(s.From, s.To, s.Factor)}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	row("overload-2M/slow-host-3x", slow,
		float64(slow.Pool.Completed())/float64(slow.Offered))

	// The contract everything above rests on: overload control that is
	// armed but never triggers must reproduce the unarmed serve byte for
	// byte — deadlines nobody misses and an admission target nobody
	// reaches are free.
	const identityRequests = 200_000
	plain, err := serve(ukcluster.Config{}, trace(identityRequests, 100_000, 1, false), nil)
	if err != nil {
		return nil, err
	}
	idle, err := serve(ukcluster.Config{AdmitTarget: time.Hour, DefaultDeadline: time.Hour},
		trace(identityRequests, 100_000, 1, false), nil)
	if err != nil {
		return nil, err
	}
	identical := reflect.DeepEqual(*plain, *idle)

	// Measured capacity: the controlled run's own mean service time over
	// the fleet's core count. The headline gate is against this, not a
	// hand-derived constant, so recalibrations of the cost model don't
	// silently hollow the claim out.
	meanSvc := float64(controlled.Pool.Busy) / float64(controlled.Pool.Completed())
	capacity := float64(overloadHosts*overloadCores) / meanSvc * float64(time.Second)
	goodputRate := float64(controlled.Pool.Completed()) / controlled.Pool.Duration.Seconds()

	res.Notes = append(res.Notes,
		fmt.Sprintf("open loop at %.1fx capacity (~%s offered vs ~%s served/s): uncontrolled, every request is eventually answered but only %.1f%% inside its 20ms deadline; controlled, %.1f%% of capacity flows as in-deadline completions",
			overloadRate/capacity, krps(overloadRate), krps(capacity), 100*uncontrolledInDl, 100*goodputRate/capacity),
		fmt.Sprintf("controlled interactive p99 %v (uncontrolled %v): expiry at door and queue drops work nobody waits for before any service time is charged",
			controlled.Pool.Latency.Quantile(0.99).Round(time.Microsecond), uncontrolled.Pool.Latency.Quantile(0.99).Round(time.Millisecond)),
		fmt.Sprintf("staged shedding: %d batch vs %d interactive sheds on the 30/70 mix — batch absorbs the overload so interactive barely sheds",
			priority.ShedBatch, priority.Shed-priority.ShedBatch),
		fmt.Sprintf("brownout served %d vs %d plain under identical load by degrading %d responses instead of shedding them",
			browned.Pool.Completed(), int(float64(sideRequests)*float64(controlled.Pool.Completed())/float64(controlled.Offered)), browned.Pool.Browned),
		fmt.Sprintf("retry storm: partition drove %d retries unthrottled; the token bucket cut that to %d (%d throttled) without losing goodput (%.3f vs %.3f)",
			storm.Retried, throttled.Retried, throttled.Throttled, storm.Goodput(), throttled.Goodput()),
		fmt.Sprintf("armed-but-idle control byte-identical to the unarmed serve: %v", identical),
		"accounting: offered = served + expired + shed + failed holds on every row; expired and shed requests got a cheap priced answer (504/503) at the door, never silence",
	)

	if !identical {
		return nil, fmt.Errorf("overload: armed-but-idle control diverged from the unarmed serve")
	}
	if goodputRate < overloadGoodputFloor*capacity {
		return nil, fmt.Errorf("overload: controlled goodput %.0f req/s below %.0f%% of measured capacity %.0f req/s",
			goodputRate, 100*overloadGoodputFloor, capacity)
	}
	if p99 := controlled.Pool.Latency.Quantile(0.99); p99 > overloadDeadline {
		return nil, fmt.Errorf("overload: controlled p99 %v exceeds the %v interactive deadline", p99, overloadDeadline)
	}
	if uncontrolledInDl > 0.5*controlledInDl {
		return nil, fmt.Errorf("overload: uncontrolled in-deadline goodput %.3f did not collapse vs controlled %.3f",
			uncontrolledInDl, controlledInDl)
	}
	if intShed := priority.Shed - priority.ShedBatch; priority.ShedBatch <= 3*intShed {
		return nil, fmt.Errorf("overload: staged shedding not staged (batch=%d interactive=%d)", priority.ShedBatch, intShed)
	}
	if browned.Pool.Browned == 0 {
		return nil, fmt.Errorf("overload: brownout never engaged")
	}
	if throttled.Throttled == 0 || throttled.Retried >= storm.Retried/2 {
		return nil, fmt.Errorf("overload: throttle ineffective (retried %d vs %d, throttled %d)",
			throttled.Retried, storm.Retried, throttled.Throttled)
	}
	for _, rep := range []*ukcluster.Report{uncontrolled, controlled, browned, priority, storm, throttled, slow} {
		if rep.Dropped() != 0 {
			return nil, fmt.Errorf("overload: %d requests unaccounted for", rep.Dropped())
		}
	}
	return res, nil
}
