package experiments

import (
	"fmt"
	"runtime"
	"time"

	"unikraft/internal/sim"
	"unikraft/internal/ukpool"
)

func init() {
	register("engine", "Simulation engine: hierarchical timer wheel vs binary heap on the cluster trace", engineBench)
}

// engineRequests is the headline replay size: the wheel's O(1) claim
// has to hold at the event volume the cluster experiment generates, so
// the main rows push the same ten-million-request diurnal trace
// (two events per request: arrival + completion) through both engines.
const engineRequests = clusterRequests

// engineCompletion is the terminal event of each replayed request; one
// shared instance serves every request, so the steady state allocates
// nothing per event.
type engineCompletion struct{}

func (engineCompletion) Fire(time.Duration) {}

// engineArrival replays request arrivals: each dispatch schedules that
// request's completion after a deterministic pseudo-varied service
// time. The service sequence depends only on the order arrivals
// dispatch in — identical across engines by the dispatch-order
// contract — so both engines run the exact same event population.
type engineArrival struct {
	loop sim.Loop
	comp engineCompletion
	n    int
}

func (a *engineArrival) Fire(time.Duration) {
	svc := time.Duration(1+a.n*7919%997) * time.Microsecond
	a.n++
	a.loop.ScheduleAfter(svc, a.comp)
}

// engineRun is one measured replay: build the engine, bulk-load every
// arrival of the trace (the heap's worst case: the whole trace is a
// standing population), then drain. Wall-clock covers schedule +
// dispatch — the per-event cost a serve pays — and allocations are
// whole-run mallocs over events dispatched.
type engineRun struct {
	events   uint64
	wall     time.Duration
	allocsEv float64
}

// engineTrace materializes the cluster experiment's diurnal arrival
// times once; replays share it so trace generation stays out of the
// measured window and both engines schedule the identical population.
func engineTrace(n int) []time.Duration {
	total := time.Duration(n/65_000) * time.Second
	w := ukpool.NewDiurnal(41, 40_000, 90_000, total,
		total/5, total/8, 500_000, 4096, n, 256)
	arrivals := make([]time.Duration, 0, n)
	for {
		req, ok := w.Next()
		if !ok {
			return arrivals
		}
		arrivals = append(arrivals, req.Arrival)
	}
}

func measureEngine(mk func() sim.Loop, arrivals []time.Duration) engineRun {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	loop := mk()
	arr := &engineArrival{loop: loop}
	for _, at := range arrivals {
		loop.ScheduleAt(at, arr)
	}
	loop.Run()
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	ev := loop.Dispatched()
	return engineRun{
		events:   ev,
		wall:     wall,
		allocsEv: float64(m1.Mallocs-m0.Mallocs) / float64(ev),
	}
}

// measureStanding drains `events` dispatches out of `timers`
// self-rescheduling timers — the steady-state serving regime, where the
// heap pays O(log timers) per event and the wheel stays O(1).
func measureStanding(mk func() sim.Loop, timers, events int) engineRun {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	loop := mk()
	left := events
	var fire sim.Handler
	fire = sim.HandlerFunc(func(time.Duration) {
		if left > 0 {
			left--
			loop.ScheduleAfter(time.Duration(1+left%1024)*time.Microsecond, fire)
		}
	})
	for i := 0; i < timers; i++ {
		loop.ScheduleAfter(time.Duration(1+i%1024)*time.Microsecond, fire)
	}
	for i := 0; i < events; i++ {
		if !loop.Step() {
			break
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	ev := loop.Dispatched()
	return engineRun{
		events:   ev,
		wall:     wall,
		allocsEv: float64(m1.Mallocs-m0.Mallocs) / float64(ev),
	}
}

// bestOf runs a measurement three times and keeps the fastest run.
// Wall-clock noise on a shared host is one-sided — interference only
// ever adds time — so the minimum estimates true engine cost better
// than a single sample or a mean, and keeps the CI-gated speedup ratio
// stable.
func bestOf(measure func() engineRun) engineRun {
	best := measure()
	for i := 0; i < 2; i++ {
		if again := measure(); again.wall < best.wall {
			best = again
		}
	}
	return best
}

// engineBench races the two event-loop engines over identical event
// populations. Engines are interchangeable by contract (the
// differential harness in internal/sim proves dispatch-order
// equality); this experiment prices the exchange. The events column is
// the deterministic check — identical across engines by construction —
// while wall, ev/s and allocs/ev are host measurements and speedup
// (heap wall / wheel wall, per scenario) is the CI-gated headline.
func engineBench(env *Env) (*Result, error) {
	res := &Result{
		ID: "engine", Title: Title("engine"),
		Headers: []string{"engine", "scenario", "events", "wall", "ev/s", "allocs/ev", "speedup"},
	}
	row := func(engine, scenario string, r engineRun, speedup float64) {
		res.Rows = append(res.Rows, []string{
			engine, scenario,
			fmt.Sprintf("%d", r.events),
			r.wall.Round(time.Millisecond).String(),
			mrps(float64(r.events) / r.wall.Seconds()),
			fmt.Sprintf("%.2f", r.allocsEv),
			fmt.Sprintf("%.2fx", speedup),
		})
	}
	wheel := func() sim.Loop { return sim.NewEventLoop() }
	heap := func() sim.Loop { return sim.NewHeapLoop() }

	scenario := fmt.Sprintf("cluster-%dM-replay", engineRequests/1_000_000)
	arrivals := engineTrace(engineRequests)
	heapRun := bestOf(func() engineRun { return measureEngine(heap, arrivals) })
	wheelRun := bestOf(func() engineRun { return measureEngine(wheel, arrivals) })
	if wheelRun.events != heapRun.events {
		return nil, fmt.Errorf("engine: %s dispatched %d events on the wheel, %d on the heap",
			scenario, wheelRun.events, heapRun.events)
	}
	row("wheel", scenario, wheelRun, heapRun.wall.Seconds()/wheelRun.wall.Seconds())
	row("heap", scenario, heapRun, 1)

	const timers, events = 1 << 16, 12_000_000
	standing := fmt.Sprintf("standing-%dK-timers", timers/1024)
	heapStand := bestOf(func() engineRun { return measureStanding(heap, timers, events) })
	wheelStand := bestOf(func() engineRun { return measureStanding(wheel, timers, events) })
	if wheelStand.events != heapStand.events {
		return nil, fmt.Errorf("engine: %s dispatched %d events on the wheel, %d on the heap",
			standing, wheelStand.events, heapStand.events)
	}
	row("wheel", standing, wheelStand, heapStand.wall.Seconds()/wheelStand.wall.Seconds())
	row("heap", standing, heapStand, 1)

	res.Notes = append(res.Notes,
		fmt.Sprintf("replay bulk-loads all %d arrivals (heap worst case: whole-trace standing population); each arrival schedules its completion", engineRequests),
		"dispatch order is engine-independent: the differential harness (internal/sim) replays 57 schedule shapes through both engines and requires identical traces",
	)
	return res, nil
}
