package experiments

import (
	"fmt"
	"time"

	"unikraft/internal/core"
	"unikraft/internal/ukalloc"
	"unikraft/internal/ukboot"
	"unikraft/internal/ukbuild"
	"unikraft/internal/ukplat"
	"unikraft/internal/ukpool"
)

func init() {
	register("serve", "Warm-pool serving: boot-on-demand nginx fleet under 1M-request traffic", serveDensity)
}

// servingRequests is the steady-trace size: the density/serving claim
// is only meaningful at scale, so the experiment pushes a million
// requests through one pool.
const servingRequests = 1_000_000

// serveDensity converts the paper's boot-speed result (Fig 10/14) into
// the serving story: a warm pool of Firecracker nginx unikernels
// absorbing request-driven traffic, cold-booting and autoscaling as the
// trace demands. One steady Poisson trace of a million requests and one
// bursty trace that forces the autoscaler to work for its keep.
func serveDensity(env *Env) (*Result, error) {
	profile, ok := core.AppByName("nginx")
	if !ok {
		return nil, fmt.Errorf("serve: nginx profile not registered")
	}
	img, err := ukbuild.Build(env.Catalog, profile, ukplat.KVMFirecracker.Name, ukbuild.Options{DCE: true, LTO: true})
	if err != nil {
		return nil, err
	}
	backend, err := ukalloc.ResolveBackend(profile.Allocator)
	if err != nil {
		return nil, err
	}
	// 8 MiB guests: density is the point — the paper's Fig 11 shows
	// nginx needs single-digit MiB, and small guests keep a
	// multi-hundred-instance fleet cheap on the host too.
	ctx, err := ukboot.NewContext(ukboot.Config{
		Platform:   ukplat.KVMFirecracker,
		MemBytes:   8 << 20,
		ImageBytes: img.Bytes,
		Allocator:  backend,
		NICs:       profile.NICs,
		Libs:       ukboot.ProfileLibs(profile.NICs, profile.Scheduler),
	})
	if err != nil {
		return nil, err
	}

	newPool := func(opts ...ukpool.Option) *ukpool.Pool {
		return ukpool.New(func(id int) (*ukboot.VM, error) {
			return ctx.Boot(env.NewMachine())
		}, opts...)
	}

	res := &Result{
		ID:    "serve",
		Title: Title("serve"),
		Headers: []string{"trace", "requests", "offered", "served",
			"warm-hit", "cold", "queued", "peak-fleet",
			"boot-p50", "boot-p99", "coldboot-p50", "coldboot-p99",
			"lat-p50", "lat-p99"},
	}
	row := func(name string, offered float64, rep *ukpool.Report) {
		coldQ := func(q float64) string {
			if rep.ColdBoot.Count == 0 {
				return "-"
			}
			return rep.ColdBoot.Quantile(q).Round(time.Microsecond).String()
		}
		res.Rows = append(res.Rows, []string{
			name,
			fmt.Sprintf("%d", rep.Requests),
			krps(offered) + "/s",
			krps(rep.Throughput()) + "/s",
			fmt.Sprintf("%.2f%%", 100*rep.WarmHitRatio()),
			fmt.Sprintf("%d", rep.ColdBoots),
			fmt.Sprintf("%d", rep.Queued),
			fmt.Sprintf("%d", rep.PeakInstances),
			rep.Boot.Quantile(0.5).Round(time.Microsecond).String(),
			rep.Boot.Quantile(0.99).Round(time.Microsecond).String(),
			coldQ(0.5),
			coldQ(0.99),
			rep.Latency.Quantile(0.5).Round(time.Microsecond).String(),
			rep.Latency.Quantile(0.99).Round(time.Microsecond).String(),
		})
	}

	// Steady open-loop Poisson load: the warm set absorbs almost
	// everything; cold boots only appear in the tail of the arrival
	// distribution.
	steady := newPool(ukpool.WithWarm(8), ukpool.WithMaxInstances(256))
	defer steady.Close()
	const steadyRate = 250_000
	rep, err := steady.Serve(ukpool.NewPoisson(1, steadyRate, servingRequests, 256))
	if err != nil {
		return nil, err
	}
	row("poisson-steady", steadyRate, rep)
	steadyHit := rep.WarmHitRatio()

	// Bursty on/off load with a heavier request (~50us of app work) and
	// a tight cold-burst allowance: 10x rate flips every period, and
	// demand-driven boots alone cannot keep up, so the bursts drive
	// cold boots, queueing and both autoscaler directions.
	bursty := newPool(ukpool.WithWarm(8), ukpool.WithMaxInstances(256),
		ukpool.WithServiceCost(4, 170_000), ukpool.WithColdBurst(8),
		ukpool.WithScaleWindow(10*time.Millisecond))
	defer bursty.Close()
	wl := ukpool.NewBursty(2, 50_000, 250_000, 200*time.Millisecond, 0.4, 250_000, 256)
	brep, err := bursty.Serve(wl)
	if err != nil {
		return nil, err
	}
	row("bursty-5x", 0.4*250_000+0.6*50_000, brep)

	res.Notes = append(res.Notes,
		fmt.Sprintf("steady warm-hit ratio %.2f%% (target >90%%); fleet autoscaled %d up / %d down on the bursty trace",
			100*steadyHit, brep.ScaleUps, brep.ScaleDowns),
		fmt.Sprintf("boot p50 %v ~ firecracker total of Fig 10 (%v VMM + guest); warm service is %s of a cold start",
			rep.Boot.Quantile(0.5).Round(time.Microsecond), ukplat.KVMFirecracker.VMMSetup,
			fmt.Sprintf("1/%.0f", float64(rep.Boot.Quantile(0.5))/float64(rep.Latency.Quantile(0.5)))),
	)
	return res, nil
}
