// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a function returning a Result (headers
// + rows + notes); the registry maps experiment IDs ("fig12", "tab1",
// ...) to generators. cmd/ukbench and the root bench_test.go drive them.
//
// Measured rows come from running the simulated systems; transcribed
// rows (comparator OSes we cannot rebuild) are marked "paper" in their
// source column — EXPERIMENTS.md records paper-vs-measured per figure
// and how to read a disagreement.
package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"unikraft/internal/core"
	"unikraft/internal/sim"
)

// Env is the execution environment experiments run against: the
// micro-library catalog builds resolve against and a factory for fresh
// simulated machines. The public SDK threads its *Runtime through here,
// so figures can be regenerated against custom catalogs or machine
// models; each generator takes its machines from the Env instead of
// reaching for package-level state, which is what makes RunAll safe to
// parallelize.
type Env struct {
	// Catalog is the micro-library catalog (read-only during runs).
	Catalog *core.Catalog
	// NewMachine returns a fresh simulated machine.
	NewMachine func() *sim.Machine
}

// DefaultEnv is the environment the paper's evaluation uses: the
// calibrated default catalog and stock machines.
func DefaultEnv() *Env {
	return &Env{Catalog: core.DefaultCatalog(), NewMachine: sim.NewMachine}
}

// Result is one regenerated table/figure.
type Result struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Render prints the result as an aligned text table.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Headers)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Generator produces one experiment result against an environment.
type Generator func(env *Env) (*Result, error)

var registry = map[string]Generator{}
var titles = map[string]string{}

// register adds a generator (called from init functions in this
// package).
func register(id, title string, g Generator) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = g
	titles[id] = title
}

// IDs lists registered experiments, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns an experiment's display title.
func Title(id string) string { return titles[id] }

// Run executes one experiment by ID against env (nil means DefaultEnv).
func Run(env *Env, id string) (*Result, error) {
	g, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	if env == nil {
		env = DefaultEnv()
	}
	return g(env)
}

// RunAll executes every experiment concurrently (each on its own
// simulated machines) and returns the results in ID order. Failed
// experiments leave a nil slot and their errors are joined.
func RunAll(env *Env) ([]*Result, error) {
	if env == nil {
		env = DefaultEnv()
	}
	ids := IDs()
	results := make([]*Result, len(ids))
	errs := make([]error, len(ids))
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r, err := Run(env, id)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", id, err)
				return
			}
			results[i] = r
		}(i, id)
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// helpers ------------------------------------------------------------------

func f1(v float64) string   { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string   { return fmt.Sprintf("%.2f", v) }
func mrps(v float64) string { return fmt.Sprintf("%.2fM", v/1e6) }
func krps(v float64) string { return fmt.Sprintf("%.1fK", v/1e3) }
