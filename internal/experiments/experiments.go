// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a function returning a Result (headers
// + rows + notes); the registry maps experiment IDs ("fig12", "tab1",
// ...) to generators. cmd/ukbench and the root bench_test.go drive them.
//
// Measured rows come from running the simulated systems; transcribed
// rows (comparator OSes we cannot rebuild) are marked "paper" in their
// source column — see DESIGN.md's substitution table.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is one regenerated table/figure.
type Result struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Render prints the result as an aligned text table.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Headers)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Generator produces one experiment result.
type Generator func() (*Result, error)

var registry = map[string]Generator{}
var titles = map[string]string{}

// register adds a generator (called from init functions in this
// package).
func register(id, title string, g Generator) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = g
	titles[id] = title
}

// IDs lists registered experiments, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns an experiment's display title.
func Title(id string) string { return titles[id] }

// Run executes one experiment by ID.
func Run(id string) (*Result, error) {
	g, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return g()
}

// RunAll executes every experiment in ID order.
func RunAll() ([]*Result, error) {
	var out []*Result
	for _, id := range IDs() {
		r, err := Run(id)
		if err != nil {
			return out, fmt.Errorf("%s: %w", id, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// helpers ------------------------------------------------------------------

func f1(v float64) string   { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string   { return fmt.Sprintf("%.2f", v) }
func mrps(v float64) string { return fmt.Sprintf("%.2fM", v/1e6) }
func krps(v float64) string { return fmt.Sprintf("%.1fK", v/1e3) }
