package experiments

import (
	"fmt"
	"time"

	"unikraft/internal/apps/httpd"
	"unikraft/internal/core"
	"unikraft/internal/netstack"
	"unikraft/internal/ramfs"
	"unikraft/internal/shfs"
	"unikraft/internal/ukalloc"
	"unikraft/internal/ukboot"
	"unikraft/internal/ukbuild"
	"unikraft/internal/uknetdev"
	"unikraft/internal/ukplat"
	"unikraft/internal/ukpool"
	"unikraft/internal/vfscore"
)

func init() {
	register("fileserve", "Static-file serving: SHFS vs vfscore backends, zero-copy sendfile, page cache", fileserve)
}

// fileserve wires the filesystem stack into the serving datapath and
// measures it end to end, closing the gap between the storage
// micro-benchmarks (Fig 20's 9pfs latency, Fig 22's SHFS-vs-VFS open
// cost) and served traffic:
//
//   - a wrk-style world (client + server stacks over virtio) serving a
//     mixed static site through httpd's file backends, sweeping the
//     copying read path against zero-copy sendfile (page cache + pooled
//     netbuf handoff, the PR 3 datapath extended to file pages) and the
//     specialized SHFS volume against vfscore+ramfs;
//   - warm-pool traces (1M requests, steady and bursty) over a
//     snapshot-forked file-serving fleet whose clones share the
//     template's populated tree copy-on-write, each request driving the
//     instance's own VFS (open/sendfile/close).
//
// The end-to-end SHFS/vfscore open-cost ratio must hold Fig 22's ~5x
// band, and the zero-copy sendfile path must beat the copying file
// path by >= 1.3x — both asserted by TestFileserveShape and gated in
// CI via BENCH_baseline.json.
func fileserve(env *Env) (*Result, error) {
	files, mix := fileSite()

	res := &Result{
		ID: "fileserve", Title: Title("fileserve"),
		Headers: []string{"backend", "datapath", "trace", "requests",
			"req/s", "speedup", "warm-hit", "cache-hit", "open-cycles"},
	}

	// --- world rows: the wrk-style sweep ------------------------------------
	const worldReqs = 3000
	type worldRow struct {
		backend, datapath string
		cfg               fileWorldConfig
	}
	rows := []worldRow{
		// The copying row is the baseline: copying socket path, no kick
		// batching, response assembled via a copying read — exactly the
		// fig13 datapath pointed at files.
		{"vfscore", "copy", fileWorldConfig{}},
		// The sendfile rows ride the zero-copy datapath: page cache +
		// sendfile on the file side, zero-copy socket handoff + batched
		// kicks on the wire side.
		{"vfscore", "sendfile-zc", fileWorldConfig{sendfile: true, cachePages: 512,
			wc: worldConfig{zeroCopy: true, tuning: uknetdev.Tuning{TxKickBatch: 8}}}},
		{"shfs", "sendfile-zc", fileWorldConfig{backend: "shfs", sendfile: true,
			wc: worldConfig{zeroCopy: true, tuning: uknetdev.Tuning{TxKickBatch: 8}}}},
	}
	var base, sendfileRate float64
	var vfsOpen, shfsOpen float64
	var worldCacheHit float64
	for i, r := range rows {
		m, err := fileRate(env, r.cfg, files, mix, worldReqs)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", r.backend, r.datapath, err)
		}
		if i == 0 {
			base = m.rate
			vfsOpen = m.openCycles
		}
		if r.backend == "vfscore" && r.datapath == "sendfile-zc" {
			sendfileRate = m.rate
		}
		if r.backend == "shfs" {
			shfsOpen = m.openCycles
		}
		cacheHit := "-"
		if r.cfg.cachePages > 0 {
			worldCacheHit = m.cacheHit
			cacheHit = fmt.Sprintf("%.2f%%", 100*m.cacheHit)
		}
		res.Rows = append(res.Rows, []string{
			r.backend, r.datapath, "wrk-mix", fmt.Sprintf("%d", worldReqs),
			krps(m.rate) + "/s", fmt.Sprintf("%.2fx", m.rate/base),
			"-", cacheHit, f1(m.openCycles),
		})
	}

	// --- pool rows: 1M-request traces over a forked file-serving fleet -----
	poolRows := []struct {
		backend string
		trace   string
	}{
		{"vfscore", "poisson-steady-1M"},
		{"shfs", "poisson-steady-1M"},
		{"vfscore", "bursty-5x-1M"},
	}
	for _, pr := range poolRows {
		rep, cacheHit, err := filePool(env, pr.backend, pr.trace, files, mix)
		if err != nil {
			return nil, fmt.Errorf("pool %s/%s: %w", pr.backend, pr.trace, err)
		}
		ch := "-"
		if pr.backend == "vfscore" {
			ch = fmt.Sprintf("%.2f%%", 100*cacheHit)
		}
		res.Rows = append(res.Rows, []string{
			pr.backend, "sendfile-zc", pr.trace, fmt.Sprintf("%d", rep.Requests),
			krps(rep.Throughput()) + "/s", "-",
			fmt.Sprintf("%.2f%%", 100*rep.WarmHitRatio()), ch, "-",
		})
	}

	ratio := vfsOpen / shfsOpen
	sendfileGain := 0.0
	if base > 0 {
		sendfileGain = sendfileRate / base
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("end-to-end open cost: vfscore %.0f vs shfs %.0f cycles = %.1fx (Fig 22 band ~5x; paper 1637/308 = 5.3x)",
			vfsOpen, shfsOpen, ratio),
		fmt.Sprintf("zero-copy sendfile vs copying file path: %.2fx (CI bar >= 1.3x); page-cache hit ratio %.1f%% on the wrk mix",
			sendfileGain, 100*worldCacheHit),
		"pool fleets fork from one template: clones serve the shared site tree copy-on-write (ramfs+CowFS) or through read-only SHFS views")
	return res, nil
}

// fileSite builds the deterministic static site and its request mix: a
// 612-byte index (the Fig 13 page), 4 KiB pages, 16 KiB images and
// 64 KiB blobs, with the mix weighted toward small files and one
// missing path to exercise the 404 path.
func fileSite() (map[string][]byte, []string) {
	files := map[string][]byte{"/index.html": httpd.DefaultPage}
	content := func(n, seed int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + (i+seed)%26)
		}
		return b
	}
	var mix []string
	for i := 0; i < 12; i++ {
		mix = append(mix, "/index.html")
	}
	for i := 0; i < 24; i++ {
		p := fmt.Sprintf("/page%02d.html", i)
		files[p] = content(4096, i)
		mix = append(mix, p)
	}
	for i := 0; i < 8; i++ {
		p := fmt.Sprintf("/img%02d.dat", i)
		files[p] = content(16384, 100+i)
		if i < 4 {
			mix = append(mix, p)
		}
	}
	for i := 0; i < 4; i++ {
		p := fmt.Sprintf("/pkg%02d.bin", i)
		files[p] = content(65536, 200+i)
	}
	mix = append(mix, "/pkg00.bin", "/missing.html")
	return files, mix
}

// fileWorldConfig selects one world-row configuration.
type fileWorldConfig struct {
	wc         worldConfig
	backend    string // "" = vfscore+ramfs, "shfs" = the hash volume
	sendfile   bool
	cachePages int
}

// fileMetrics is what one world run measures.
type fileMetrics struct {
	rate       float64 // requests per second of server-core time
	cacheHit   float64
	openCycles float64 // end-to-end open+close through the backend
}

// fileRate serves `requests` of the mix through httpd's file backend on
// a client/server world and measures the server's sustainable rate,
// then prices the backend's open path end to end (the Fig 22
// measurement, now through the serving stack's own backend objects).
func fileRate(env *Env, fc fileWorldConfig, files map[string][]byte, mix []string, requests int) (fileMetrics, error) {
	var met fileMetrics
	w, err := newTCPWorldCfg(env, fc.wc)
	if err != nil {
		return met, err
	}
	a, err := ukalloc.NewInitialized("tlsf", w.sm, 64<<20)
	if err != nil {
		return met, err
	}

	var backend httpd.FileBackend
	var vfs *vfscore.VFS
	if fc.backend == "shfs" {
		vol := shfs.New(w.sm, 2*len(files))
		for _, p := range ukboot.SortedFilePaths(files) {
			if err := vol.Add(p, files[p]); err != nil {
				return met, err
			}
		}
		vol.Seal()
		backend = &httpd.SHFSFiles{Vol: vol}
	} else {
		rfs := ramfs.New()
		if err := ukboot.PopulateRamfs(rfs, files); err != nil {
			return met, err
		}
		vfs = vfscore.New(w.sm)
		if err := vfs.Mount("/", rfs); err != nil {
			return met, err
		}
		if fc.cachePages > 0 {
			vfs.EnablePageCache(fc.cachePages)
		}
		backend = &httpd.VFSFiles{VFS: vfs}
	}

	srv, err := httpd.NewFileServer(w.server, a, 80, backend, fc.sendfile)
	if err != nil {
		return met, err
	}
	gen := httpd.NewLoadGen(w.client, netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 80}, 30)
	gen.SetPaths(mix)
	pump := func() {
		for {
			moved := w.client.Poll() + w.server.Poll()
			srv.Poll()
			moved += w.server.Poll() + w.client.Poll()
			moved += gen.Collect()
			if moved == 0 {
				return
			}
		}
	}
	pump()
	if !gen.Ready() {
		return met, fmt.Errorf("load generator not connected")
	}
	start := w.sm.CPU.Cycles()
	startDone := gen.Completed
	for gen.Completed-startDone < uint64(requests) {
		before := gen.Completed
		gen.Fire(1)
		pump()
		if gen.Completed == before {
			w.cm.Charge(200_000_000)
			w.sm.Charge(200_000_000)
			start += 200_000_000
			pump()
		}
	}
	served := float64(gen.Completed - startDone)
	cycles := float64(w.sm.CPU.Cycles() - start)
	met.rate = float64(w.sm.CPU.Hz) / (cycles / served)
	if vfs != nil {
		met.cacheHit = vfs.CacheStats().HitRatio()
	}

	// End-to-end open cost through the serving backend (after the run:
	// the rate above is already banked).
	paths := ukboot.SortedFilePaths(files)
	const loops = 1000
	openStart := w.sm.CPU.Cycles()
	for i := 0; i < loops; i++ {
		h, _, err := backend.Open(paths[i%len(paths)])
		if err != nil {
			return met, err
		}
		h.Close()
	}
	met.openCycles = float64(w.sm.CPU.Cycles()-openStart) / loops
	return met, nil
}

// filePool replays one 1M-request trace through a warm pool whose
// instances boot a populated root filesystem and serve a real
// open/sendfile/close per request against it. The fleet instantiates
// by snapshot-fork: every clone shares the template's site tree
// copy-on-write (ramfs) or through a sealed read-only view (shfs).
func filePool(env *Env, backend, trace string, files map[string][]byte, mix []string) (*ukpool.Report, float64, error) {
	profile, ok := core.AppByName("nginx")
	if !ok {
		return nil, 0, fmt.Errorf("nginx profile not registered")
	}
	img, err := ukbuild.Build(env.Catalog, profile, ukplat.KVMFirecracker.Name, ukbuild.Options{DCE: true, LTO: true})
	if err != nil {
		return nil, 0, err
	}
	alloc, err := ukalloc.ResolveBackend(profile.Allocator)
	if err != nil {
		return nil, 0, err
	}
	cfg := ukboot.Config{
		Platform:     ukplat.KVMFirecracker,
		MemBytes:     16 << 20,
		ImageBytes:   img.Bytes,
		Allocator:    alloc,
		NICs:         profile.NICs,
		Libs:         ukboot.ProfileLibs(profile.NICs, profile.Scheduler),
		SnapshotBoot: true,
		RootFS:       ukboot.RootRamfs,
		Files:        files,
	}
	if backend == "shfs" {
		cfg.RootFS = ukboot.RootSHFS
	} else {
		cfg.PageCachePages = 256
	}
	ctx, err := ukboot.NewContext(cfg)
	if err != nil {
		return nil, 0, err
	}
	snap, err := ctx.Snapshot(env.NewMachine())
	if err != nil {
		return nil, 0, err
	}
	defer snap.Close()

	// Per-request instance work: resolve one path of the mix through
	// the instance's own filesystem view. seen collects the fleet's
	// VFS views for the cache-hit aggregate (RequestWork runs on the
	// serve loop's goroutine — no locking needed).
	seen := map[*vfscore.VFS]bool{}
	work := func(vm *ukboot.VM, seq int) {
		path := mix[seq%len(mix)]
		if vm.SHFS != nil {
			h, err := vm.SHFS.Open(path)
			if err != nil {
				return // miss: the 404 path
			}
			size, _ := vm.SHFS.Size(h)
			for off := int64(0); off < size; off += 4096 {
				vm.SHFS.ReadSlice(h, off, 4096)
			}
			vm.SHFS.Close(h)
			return
		}
		seen[vm.VFS] = true
		fd, err := vm.VFS.Open(path, vfscore.ORdOnly)
		if err != nil {
			return
		}
		vm.VFS.Sendfile(fd, 0, -1, func([]byte) error { return nil })
		vm.VFS.Close(fd)
	}

	pool := ukpool.New(
		func(id int) (*ukboot.VM, error) { return ctx.Boot(env.NewMachine()) },
		ukpool.WithWarm(8), ukpool.WithMaxInstances(256),
		ukpool.WithZeroCopy(),
		ukpool.WithRequestWork(work),
		ukpool.WithForkBoot(func(id int) (*ukboot.VM, error) {
			return ctx.Fork(env.NewMachine(), snap)
		}),
	)
	defer pool.Close()

	var w ukpool.Workload
	switch trace {
	case "poisson-steady-1M":
		w = ukpool.NewPoisson(1, 250_000, 1_000_000, 256)
	case "bursty-5x-1M":
		w = ukpool.NewBursty(2, 50_000, 250_000, 200*time.Millisecond, 0.4, 1_000_000, 256)
	default:
		return nil, 0, fmt.Errorf("unknown trace %q", trace)
	}
	rep, err := pool.Serve(w)
	if err != nil {
		return nil, 0, err
	}
	var hits, misses uint64
	for v := range seen {
		st := v.CacheStats()
		hits += st.Hits
		misses += st.Misses
	}
	cacheHit := 0.0
	if hits+misses > 0 {
		cacheHit = float64(hits) / float64(hits+misses)
	}
	return rep, cacheHit, nil
}
