package experiments

import (
	"fmt"

	"unikraft/internal/apps/httpd"
	"unikraft/internal/apps/kvstore"
	"unikraft/internal/apps/sqldb"
	"unikraft/internal/apps/udpkv"
	"unikraft/internal/baselines"
	"unikraft/internal/netstack"
	"unikraft/internal/sim"
	"unikraft/internal/ukalloc"
	"unikraft/internal/uknetdev"
)

func init() {
	register("fig12", "Redis throughput across OSes (GET/SET)", fig12)
	register("fig13", "nginx throughput across OSes", fig13)
	register("fig15", "nginx throughput per allocator", fig15)
	register("fig16", "SQLite speedup vs mimalloc by query count", fig16)
	register("fig17", "60k SQLite insertions: native vs automated port", fig17)
	register("fig18", "Redis throughput per allocator (GET/SET)", fig18)
	register("fig19", "TX throughput vs DPDK (vhost-user/vhost-net)", fig19)
	register("tab4", "Specialized UDP key-value store", table4)
}

// tcpWorld wires a client and a server stack over a virtio pair.
type tcpWorld struct {
	cm, sm         *sim.Machine
	client, server *netstack.Stack
}

// worldConfig selects the data-path variant a world runs on: the
// calibrated copying baseline (zero value) or the zero-copy/coalesced
// path the zerocopy experiment sweeps.
type worldConfig struct {
	zeroCopy bool
	tuning   uknetdev.Tuning
}

func newTCPWorld(env *Env) (*tcpWorld, error) {
	return newTCPWorldCfg(env, worldConfig{})
}

func newTCPWorldCfg(env *Env, wc worldConfig) (*tcpWorld, error) {
	cm, sm := env.NewMachine(), env.NewMachine()
	cd, sd, err := uknetdev.NewTunedPair(cm, sm, uknetdev.VhostNet, wc.tuning)
	if err != nil {
		return nil, err
	}
	return &tcpWorld{
		cm: cm, sm: sm,
		client: netstack.New(cm, cd, netstack.Config{Addr: netstack.IP(10, 0, 0, 1), Name: "client", ZeroCopy: wc.zeroCopy}),
		server: netstack.New(sm, sd, netstack.Config{Addr: netstack.IP(10, 0, 0, 2), Name: "server", ZeroCopy: wc.zeroCopy}),
	}, nil
}

// redisRate measures the simulated Unikraft Redis server's sustainable
// rate (requests/second of server-core time) for GET or SET with the
// paper's parameters (30 connections, pipelining 16).
func redisRate(env *Env, alloc string, set bool, requests int) (float64, error) {
	return redisRateCfg(env, worldConfig{}, alloc, set, requests)
}

func redisRateCfg(env *Env, wc worldConfig, alloc string, set bool, requests int) (float64, error) {
	w, err := newTCPWorldCfg(env, wc)
	if err != nil {
		return 0, err
	}
	a, err := ukalloc.NewInitialized(alloc, w.sm, 64<<20)
	if err != nil {
		return 0, err
	}
	srv, err := kvstore.New(w.server, a, 6379)
	if err != nil {
		return 0, err
	}
	bench := kvstore.NewBench(w.client, netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 6379}, 30, set)
	pump := func() {
		for {
			moved := w.client.Poll() + w.server.Poll()
			srv.Poll()
			moved += w.server.Poll() + w.client.Poll()
			moved += bench.Collect()
			if moved == 0 {
				return
			}
		}
	}
	pump()
	if !bench.Ready() {
		return 0, fmt.Errorf("bench connections not established")
	}
	// Pre-populate keys so GETs hit, then measure.
	if !set {
		seed := kvstore.NewBench(w.client, netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 6379}, 4, true)
		pump()
		for seed.Replies < 2000 {
			seed.Fire(16)
			for {
				moved := w.client.Poll() + w.server.Poll()
				srv.Poll()
				moved += w.server.Poll() + w.client.Poll()
				moved += seed.Collect()
				if moved == 0 {
					break
				}
			}
		}
	}
	start := w.sm.CPU.Cycles()
	startReplies := bench.Replies
	for bench.Replies-startReplies < uint64(requests) {
		before := bench.Replies
		bench.Fire(16)
		pump()
		if bench.Replies == before {
			// Residual packet loss: advance past the RTO so the TCP
			// retransmission timers fire (idle time; not server work).
			w.cm.Charge(200_000_000)
			w.sm.Charge(200_000_000)
			start += 200_000_000 // exclude idle gap from server-cycle accounting
			pump()
		}
	}
	served := float64(bench.Replies - startReplies)
	cycles := float64(w.sm.CPU.Cycles() - start)
	return float64(w.sm.CPU.Hz) / (cycles / served), nil
}

// redisShape is the per-request interaction pattern under pipelining 16
// (segments amortize across ~16 requests), used by the Linux-family
// overhead models.
var redisShape = baselines.RequestShape{Syscalls: 2.0 / 16, Packets: 2.0 / 16, AllocCycles: 60}

func fig12(env *Env) (*Result, error) {
	requests := 20000
	get, err := redisRate(env, "mimalloc", false, requests)
	if err != nil {
		return nil, err
	}
	set, err := redisRate(env, "mimalloc", true, requests)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID: "fig12", Title: Title("fig12"),
		Headers: []string{"system", "GET-req/s", "SET-req/s", "source"},
	}
	m := env.NewMachine()
	appGet := float64(m.CPU.Hz) / get
	appSet := float64(m.CPU.Hz) / set
	for _, rt := range []baselines.Runtime{
		baselines.LinuxFirecracker, baselines.LinuxKVMGuest,
		baselines.DockerNative, baselines.LinuxNative,
	} {
		res.Rows = append(res.Rows, []string{
			rt.Name,
			mrps(rt.Throughput(m, appGet, redisShape)),
			mrps(rt.Throughput(m, appSet, redisShape)),
			"modelled",
		})
	}
	for _, p := range baselines.RedisFig12() {
		if p.System == "unikraft-kvm" || p.System == "linux-native" || p.System == "linux-kvm" ||
			p.System == "docker-native" || p.System == "linux-fc" {
			continue // measured/modelled above
		}
		res.Rows = append(res.Rows, []string{p.System, mrps(p.GetRPS), mrps(p.SetRPS), "paper"})
	}
	res.Rows = append(res.Rows, []string{"unikraft-kvm", mrps(get), mrps(set), "measured"})
	res.Notes = append(res.Notes, "paper unikraft: 2.68M GET / 2.26M SET; ordering: unikraft > native linux > docker > kvm guest")
	return res, nil
}

// nginxRate measures the simulated Unikraft HTTP server.
func nginxRate(env *Env, alloc string, requests int) (float64, error) {
	return nginxRateCfg(env, worldConfig{}, alloc, requests)
}

func nginxRateCfg(env *Env, wc worldConfig, alloc string, requests int) (float64, error) {
	w, err := newTCPWorldCfg(env, wc)
	if err != nil {
		return 0, err
	}
	a, err := ukalloc.NewInitialized(alloc, w.sm, 64<<20)
	if err != nil {
		return 0, err
	}
	srv, err := httpd.New(w.server, a, 80, nil)
	if err != nil {
		return 0, err
	}
	gen := httpd.NewLoadGen(w.client, netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 80}, 30)
	pump := func() {
		for {
			moved := w.client.Poll() + w.server.Poll()
			srv.Poll()
			moved += w.server.Poll() + w.client.Poll()
			moved += gen.Collect()
			if moved == 0 {
				return
			}
		}
	}
	pump()
	if !gen.Ready() {
		return 0, fmt.Errorf("load generator not connected")
	}
	start := w.sm.CPU.Cycles()
	startDone := gen.Completed
	for gen.Completed-startDone < uint64(requests) {
		before := gen.Completed
		gen.Fire(1) // wrk: one outstanding request per connection
		pump()
		if gen.Completed == before {
			w.cm.Charge(200_000_000)
			w.sm.Charge(200_000_000)
			start += 200_000_000
			pump()
		}
	}
	served := float64(gen.Completed - startDone)
	cycles := float64(w.sm.CPU.Cycles() - start)
	return float64(w.sm.CPU.Hz) / (cycles / served), nil
}

// nginxShape: one request per segment pair, ~2 syscalls per request
// (read+write via epoll batching), modest allocator traffic.
var nginxShape = baselines.RequestShape{Syscalls: 2, Packets: 2, AllocCycles: 120}

func fig13(env *Env) (*Result, error) {
	rate, err := nginxRate(env, "tlsf", 6000)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID: "fig13", Title: Title("fig13"),
		Headers: []string{"system", "req/s", "source"},
	}
	m := env.NewMachine()
	appCycles := float64(m.CPU.Hz) / rate
	for _, rt := range []baselines.Runtime{
		baselines.LinuxFirecracker, baselines.LinuxKVMGuest,
		baselines.DockerNative, baselines.LinuxNative,
	} {
		res.Rows = append(res.Rows, []string{rt.Name, krps(rt.Throughput(m, appCycles, nginxShape)), "modelled"})
	}
	for _, p := range baselines.NginxFig13() {
		switch p.System {
		case "unikraft-kvm", "linux-native", "linux-kvm", "docker-native", "linux-fc":
			continue
		}
		res.Rows = append(res.Rows, []string{p.System, krps(p.GetRPS), "paper"})
	}
	res.Rows = append(res.Rows, []string{"unikraft-kvm", krps(rate), "measured"})
	res.Notes = append(res.Notes, "paper unikraft: 291.8K req/s, ~30-80% over docker, ~70-170% over the linux guest")
	return res, nil
}

func fig15(env *Env) (*Result, error) {
	res := &Result{
		ID: "fig15", Title: Title("fig15"),
		Headers: []string{"allocator", "req/s"},
	}
	for _, alloc := range []string{"mimalloc", "tlsf", "buddy", "tinyalloc"} {
		rate, err := nginxRate(env, alloc, 4000)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{alloc, krps(rate)})
	}
	res.Notes = append(res.Notes, "paper: mimalloc 291.2K, tlsf 293.3K, buddy 274.8K, tinyalloc 217.1K")
	return res, nil
}

// sqliteInsertCycles runs N inserts on a fresh DB with the given
// allocator, returning total server cycles (including allocator init,
// as the paper's end-to-end runs do).
func sqliteInsertCycles(env *Env, alloc string, inserts int) (uint64, error) {
	m := env.NewMachine()
	a, err := ukalloc.NewInitialized(alloc, m, 256<<20)
	if err != nil {
		return 0, err
	}
	db := sqldb.New(a)
	// Fixed database-open work (schema setup, first pages, journal
	// header): SQLite pays this regardless of query count, which is why
	// the paper's Fig 16 speedups at 10 queries are tens of percent, not
	// init-cost ratios.
	m.Charge(5_000_000)
	if _, err := db.Exec("CREATE TABLE tab (id INT, name TEXT)"); err != nil {
		return 0, err
	}
	// Per-insert engine work beyond allocator traffic (parse, B-tree,
	// encode): charged by the machinery already; add the SQLite VDBE
	// interpretation cost per statement.
	for i := 0; i < inserts; i++ {
		m.Charge(9000) // bytecode interpretation + journal bookkeeping
		stmt := fmt.Sprintf("INSERT INTO tab VALUES (%d, 'user%06d')", i, i)
		if _, err := db.Exec(stmt); err != nil {
			return 0, err
		}
	}
	return m.CPU.Cycles(), nil
}

func fig16(env *Env) (*Result, error) {
	res := &Result{
		ID: "fig16", Title: Title("fig16"),
		Headers: []string{"queries", "buddy-%", "tinyalloc-%", "tlsf-%"},
	}
	counts := []int{10, 100, 1000, 10000, 60000}
	for _, n := range counts {
		base, err := sqliteInsertCycles(env, "mimalloc", n)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", n)}
		for _, alloc := range []string{"buddy", "tinyalloc", "tlsf"} {
			c, err := sqliteInsertCycles(env, alloc, n)
			if err != nil {
				return nil, err
			}
			// Relative execution speedup vs mimalloc (positive = faster).
			speedup := (float64(base) - float64(c)) / float64(c) * 100
			row = append(row, f1(speedup))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"paper shape: tinyalloc/tlsf fastest at low counts (mimalloc pays thread startup), tinyalloc degrades at high counts, buddy negative throughout")
	return res, nil
}

func fig17(env *Env) (*Result, error) {
	const inserts = 60000
	cycles, err := sqliteInsertCycles(env, "tlsf", inserts)
	if err != nil {
		return nil, err
	}
	m := env.NewMachine()
	muslNative := float64(cycles) / float64(m.CPU.Hz)
	// newlib native: slightly slower libc paths (paper: 1.083 vs 1.065).
	newlibNative := muslNative * 1.083 / 1.065
	// Automated port (externally built + linked): 1.5% slower than the
	// manual port (§5.4).
	muslExternal := muslNative * 1.015
	// Linux bare-metal: the same engine work plus syscall-priced file
	// I/O (paper: 1.153 vs 1.065 — syscall overhead and the default
	// allocator).
	rt := baselines.LinuxNative
	shape := baselines.RequestShape{Syscalls: 2, Packets: 0, AllocCycles: 400}
	linux := muslNative + float64(inserts)*rt.OverheadCycles(shape)/float64(m.CPU.Hz)
	res := &Result{
		ID: "fig17", Title: Title("fig17"),
		Headers: []string{"configuration", "time-s", "source"},
		Rows: [][]string{
			{"linux-native", fmt.Sprintf("%.3f", linux), "modelled"},
			{"newlib-native", fmt.Sprintf("%.3f", newlibNative), "scaled"},
			{"musl-native", fmt.Sprintf("%.3f", muslNative), "measured"},
			{"musl-external", fmt.Sprintf("%.3f", muslExternal), "measured+1.5%"},
		},
		Notes: []string{"paper: 1.153 / 1.083 / 1.065 / 1.121 seconds; automated port within 1.5% of manual"},
	}
	return res, nil
}

func fig18(env *Env) (*Result, error) {
	res := &Result{
		ID: "fig18", Title: Title("fig18"),
		Headers: []string{"allocator", "GET-req/s", "SET-req/s"},
	}
	for _, alloc := range []string{"mimalloc", "tlsf", "buddy", "tinyalloc"} {
		get, err := redisRate(env, alloc, false, 8000)
		if err != nil {
			return nil, err
		}
		set, err := redisRate(env, alloc, true, 8000)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{alloc, mrps(get), mrps(set)})
	}
	res.Notes = append(res.Notes, "paper: mimalloc 2.72/2.22, tlsf 2.47/1.97, buddy 2.32/1.89, tinyalloc 1.01/0.78 (M req/s)")
	return res, nil
}

func fig19(env *Env) (*Result, error) {
	m := env.NewMachine()
	res := &Result{
		ID: "fig19", Title: Title("fig19"),
		Headers: []string{"pkt-bytes", "uk-vhost-user-Mp/s", "uk-vhost-net-Mp/s", "dpdk-vm-vhost-user-Mp/s", "dpdk-vm-vhost-net-Mp/s", "line-rate-Mp/s"},
	}
	// Guest-side per-packet cost: uknetdev driver + minimal generator
	// loop; the DPDK guest in a Linux VM has a comparable PMD cost.
	ukGuest := uknetdev.GuestTxCyclesPerPkt() + 40
	dpdkGuest := uknetdev.GuestTxCyclesPerPkt() + 60
	for _, size := range []int{64, 128, 256, 512, 1024, 1500} {
		row := []string{fmt.Sprintf("%d", size)}
		for _, c := range []struct {
			guest uint64
			b     uknetdev.Backend
		}{
			{ukGuest, uknetdev.VhostUser},
			{ukGuest, uknetdev.VhostNet},
			{dpdkGuest, uknetdev.VhostUser},
			{dpdkGuest, uknetdev.VhostNet},
		} {
			rate := uknetdev.SustainableTxRate(m, c.guest, c.b, uknetdev.TenGbE, size)
			row = append(row, f2(rate/1e6))
		}
		row = append(row, f2(uknetdev.TenGbE.MaxPacketsPerSecond(size)/1e6))
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"vhost-user tracks DPDK-in-VM and approaches line rate at 64B; vhost-net saturates ~1.3Mp/s; all converge at 1500B (Fig 19 shape)")
	return res, nil
}

// table4 measures the two Unikraft datapaths and reports the published
// Linux rows.
func table4(env *Env) (*Result, error) {
	res := &Result{
		ID: "tab4", Title: Title("tab4"),
		Headers: []string{"setup", "mode", "req/s", "source"},
	}
	for _, p := range baselines.Table4Published() {
		res.Rows = append(res.Rows, []string{p.Setup, p.Mode, krps(p.ReqPerSec), "paper"})
	}

	// --- Unikraft socket path (lwIP) --------------------------------------
	cm, sm := env.NewMachine(), env.NewMachine()
	cd, sd, err := uknetdev.NewPair(cm, sm, uknetdev.VhostUser)
	if err != nil {
		return nil, err
	}
	client := netstack.New(cm, cd, netstack.Config{Addr: netstack.IP(10, 0, 0, 1)})
	server := netstack.New(sm, sd, netstack.Config{
		Addr: netstack.IP(10, 0, 0, 2),
		// lwIP's socket layer: pbuf chain handling, mbox handoff and the
		// per-datagram thread wakeup, calibrated to Table 4's LWIP row.
		PerDatagramSocketExtra: 4300,
	})
	store := udpkv.NewStore()
	sockSrv, err := udpkv.NewSocketServer(server, 5000, store)
	if err != nil {
		return nil, err
	}
	cli, err := udpkv.NewClient(client, netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 5000})
	if err != nil {
		return nil, err
	}
	cli.Set("k", []byte("v"))
	netstack.Pump(client, server)
	sockSrv.Poll()
	netstack.Pump(client, server)
	cli.Drain()

	const reqs = 5000
	start := sm.CPU.Cycles()
	done := 0
	for done < reqs {
		for i := 0; i < 32 && done+i < reqs; i++ {
			cli.Get("k")
		}
		netstack.Pump(client, server)
		sockSrv.Poll()
		netstack.Pump(client, server)
		done += len(cli.Drain())
	}
	sockRate := float64(sm.CPU.Hz) / (float64(sm.CPU.Cycles()-start) / float64(done))
	res.Rows = append(res.Rows, []string{"unikraft-guest", "lwip-sockets", krps(sockRate), "measured"})

	// --- Unikraft specialized path (raw uknetdev, polling) -----------------
	cm2, sm2 := env.NewMachine(), env.NewMachine()
	cd2, sd2, err := uknetdev.NewPair(cm2, sm2, uknetdev.VhostUser)
	if err != nil {
		return nil, err
	}
	client2 := netstack.New(cm2, cd2, netstack.Config{Addr: netstack.IP(10, 0, 0, 1)})
	rawSrv := udpkv.NewRawServer(sd2, netstack.IP(10, 0, 0, 2), 5000, udpkv.NewStore())
	cli2, err := udpkv.NewClient(client2, netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 5000})
	if err != nil {
		return nil, err
	}
	cli2.Set("k", []byte("v"))
	client2.Poll()
	rawSrv.Poll()
	client2.Poll()
	cli2.Drain()

	start2 := sm2.CPU.Cycles()
	done = 0
	for done < reqs {
		for i := 0; i < 32 && done+i < reqs; i++ {
			cli2.Get("k")
		}
		client2.Poll()
		rawSrv.Poll()
		client2.Poll()
		done += len(cli2.Drain())
	}
	rawRate := float64(sm2.CPU.Hz) / (float64(sm2.CPU.Cycles()-start2) / float64(done))
	res.Rows = append(res.Rows, []string{"unikraft-guest", "uknetdev-polling", krps(rawRate), "measured"})
	res.Rows = append(res.Rows, []string{"unikraft-guest", "dpdk", krps(rawRate * 0.99), "measured (DPDK PMD ~ uknetdev)"})
	res.Notes = append(res.Notes,
		"paper: lwip 319K, uknetdev 6.3M, dpdk 6.3M req/s — specialization buys ~20x over the socket path")
	return res, nil
}
