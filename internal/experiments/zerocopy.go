package experiments

import (
	"fmt"

	"unikraft/internal/uknetdev"
)

func init() {
	register("zerocopy", "Zero-copy data path + kick coalescing sweep (nginx/Redis)", zerocopySweep)
}

// zerocopySweep measures the specialization levers this repo's data
// path exposes: zero-copy socket buffer handoff and TX kick batching,
// swept against the calibrated copying baseline for the two headline
// servers (nginx of Fig 13, Redis GET of Fig 12). The copying,
// unbatched row is exactly the configuration fig12/fig13 measure, so
// the speedup column reads as "what the paper's zero-copy + batching
// design buys over a straightforward copying stack" (§3.1; UKL and
// Mirage identify the same copy boundary as the dominant lever).
func zerocopySweep(env *Env) (*Result, error) {
	const (
		nginxReqs = 3000
		redisReqs = 5000
	)
	configs := []struct {
		name string
		wc   worldConfig
	}{
		{"copy", worldConfig{}},
		{"copy+kick8", worldConfig{tuning: uknetdev.Tuning{TxKickBatch: 8}}},
		{"zerocopy", worldConfig{zeroCopy: true}},
		{"zerocopy+kick8", worldConfig{zeroCopy: true, tuning: uknetdev.Tuning{TxKickBatch: 8}}},
		{"zerocopy+kick32", worldConfig{zeroCopy: true, tuning: uknetdev.Tuning{TxKickBatch: 32}}},
	}

	res := &Result{
		ID: "zerocopy", Title: Title("zerocopy"),
		Headers: []string{"datapath", "nginx-req/s", "nginx-speedup", "redis-GET-req/s", "redis-speedup"},
	}
	var baseNginx, baseRedis float64
	for i, c := range configs {
		nginx, err := nginxRateCfg(env, c.wc, "tlsf", nginxReqs)
		if err != nil {
			return nil, fmt.Errorf("%s nginx: %w", c.name, err)
		}
		redis, err := redisRateCfg(env, c.wc, "mimalloc", false, redisReqs)
		if err != nil {
			return nil, fmt.Errorf("%s redis: %w", c.name, err)
		}
		if i == 0 {
			baseNginx, baseRedis = nginx, redis
		}
		res.Rows = append(res.Rows, []string{
			c.name,
			krps(nginx), fmt.Sprintf("%.2fx", nginx/baseNginx),
			mrps(redis), fmt.Sprintf("%.2fx", redis/baseRedis),
		})
	}
	last := res.Rows[len(res.Rows)-1]
	res.Notes = append(res.Notes,
		fmt.Sprintf("zero-copy + batched kicks: nginx %s, redis GET %s vs the copying path (target >= 1.30x nginx)",
			last[2], last[4]),
		"copy row = the calibrated fig12/fig13 configuration; kicks dominate the per-request budget on vhost-net, so batching is the bigger lever at small payloads")
	return res, nil
}
