package experiments

import (
	"fmt"
	"reflect"
	"time"

	"unikraft/internal/core"
	"unikraft/internal/sim"
	"unikraft/internal/ukalloc"
	"unikraft/internal/ukboot"
	"unikraft/internal/ukbuild"
	"unikraft/internal/ukcluster"
	"unikraft/internal/ukplat"
	"unikraft/internal/ukpool"
)

func init() {
	register("cluster", "Multi-host cluster serving: front-door routing, autoscaling and snapshot-image handoff", clusterServe)
}

// clusterRequests is the headline trace size: the control-plane claim
// (route, spill, hand off, drain — without dropping anything) has to
// hold at the scale a real front door sees, so the main row pushes ten
// million requests through an eight-host cluster.
const clusterRequests = 10_000_000

// clusterServe scales the serving story across hosts: a fleet of
// simulated machines, each running its own snapshot-forked nginx pool,
// behind the ukcluster front door. One headline diurnal+flash-crowd
// trace of ten million requests over eight hosts, policy-comparison
// rows at two million, and a handoff-vs-remote-cold-boot pair that
// prices what shipping the template image buys at spill time.
func clusterServe(env *Env) (*Result, error) {
	profile, ok := core.AppByName("nginx")
	if !ok {
		return nil, fmt.Errorf("cluster: nginx profile not registered")
	}
	img, err := ukbuild.Build(env.Catalog, profile, ukplat.KVMFirecracker.Name, ukbuild.Options{DCE: true, LTO: true})
	if err != nil {
		return nil, err
	}
	backend, err := ukalloc.ResolveBackend(profile.Allocator)
	if err != nil {
		return nil, err
	}
	bootCfg := ukboot.Config{
		Platform:   ukplat.KVMFirecracker,
		MemBytes:   8 << 20,
		ImageBytes: img.Bytes,
		Allocator:  backend,
		NICs:       profile.NICs,
		Libs:       ukboot.ProfileLibs(profile.NICs, profile.Scheduler),
	}

	// Each host owns a boot context (its own arena), a template
	// snapshot, and a fork-boot pool — host-distinct deterministic
	// seeds, the same derivation the public SDK uses.
	const hostSalt = 0xA24BAED4963EE407
	const instSalt = 0x9E3779B97F4A7C15
	hostPool := func(host int) (*ukpool.Pool, error) {
		ctx, err := ukboot.NewContext(bootCfg)
		if err != nil {
			return nil, err
		}
		seed := uint64(host) * hostSalt
		snap, err := ctx.Snapshot(sim.NewMachineWithSeed(seed))
		if err != nil {
			return nil, err
		}
		machine := func(id int) *sim.Machine {
			return sim.NewMachineWithSeed(seed + uint64(id)*instSalt)
		}
		return ukpool.New(func(id int) (*ukboot.VM, error) { return ctx.Boot(machine(id)) },
			ukpool.WithWarm(8), ukpool.WithMaxInstances(256),
			ukpool.WithServiceCost(4, 170_000), ukpool.WithColdBurst(8),
			ukpool.WithScaleWindow(10*time.Millisecond),
			ukpool.WithForkBoot(func(id int) (*ukboot.VM, error) { return ctx.Fork(machine(id), snap) }),
			ukpool.WithOnClose(snap.Close),
		), nil
	}

	// Price activation from a probe capture of the same template: the
	// handoff ships the boot write-set (page-table pages, heap
	// metadata, one descriptor per COW page), the no-handoff
	// alternative re-mints the template remotely.
	probeCtx, err := ukboot.NewContext(bootCfg)
	if err != nil {
		return nil, err
	}
	probe, err := probeCtx.Snapshot(env.NewMachine())
	if err != nil {
		return nil, err
	}
	handoff := ukcluster.Activation{
		Handoff:    true,
		ImageBytes: probe.PrivateOverheadBytes() + probe.HeapMetaBytes() + probe.MarkedPages()*16,
		ColdBoot:   probe.Template().Report.Total(),
	}
	remoteCold := ukcluster.Activation{ColdBoot: probe.Template().Report.Total()}
	probe.Close()
	handoff.Attach = bootCfg.Platform.ForkSetup +
		time.Duration(bootCfg.NICs)*bootCfg.Platform.ForkNICSetup

	// The trace: a diurnal swing with a flash crowd burning at ~6x the
	// initial two hosts' capacity (~85K req/s at ~47us/request over
	// 2 hosts x 2 cores), forcing spill-driven activations mid-trace
	// and drains after the crowd passes.
	trace := func(n int) ukpool.Workload {
		total := time.Duration(n/65_000) * time.Second // keep the shape across sizes
		return ukpool.NewDiurnal(41, 40_000, 90_000, total,
			total/5, total/8, 500_000, 4096, n, 256)
	}

	serve := func(policy ukcluster.Policy, act ukcluster.Activation, hosts, active, n int) (*ukcluster.Report, error) {
		c, err := ukcluster.New(ukcluster.Config{
			Hosts: hosts, Cores: 2, InitialActive: active, MinActive: active,
			Policy: policy, NewPool: hostPool,
			EstService: 47 * time.Microsecond,
			Activation: act,
		})
		if err != nil {
			return nil, err
		}
		defer c.Close()
		return c.Serve(trace(n))
	}

	res := &Result{
		ID: "cluster", Title: Title("cluster"),
		Headers: []string{"configuration", "hosts", "requests", "served",
			"warm-hit", "peak-active", "activations", "handoffs", "drains",
			"requeued", "dropped", "act-p50", "route-p99", "lat-p50", "lat-p99"},
	}
	row := func(name string, rep *ukcluster.Report) {
		actP50 := "-"
		if rep.Activation.Count > 0 {
			actP50 = rep.Activation.Quantile(0.5).Round(time.Microsecond).String()
		}
		res.Rows = append(res.Rows, []string{
			name,
			fmt.Sprintf("%d", rep.Hosts),
			fmt.Sprintf("%d", rep.Offered),
			fmt.Sprintf("%d", rep.Pool.Requests),
			fmt.Sprintf("%.2f%%", 100*rep.Pool.WarmHitRatio()),
			fmt.Sprintf("%d", rep.ActivePeak),
			fmt.Sprintf("%d", rep.Activations),
			fmt.Sprintf("%d", rep.Handoffs),
			fmt.Sprintf("%d", rep.Drains),
			fmt.Sprintf("%d", rep.Requeued),
			fmt.Sprintf("%d", rep.Dropped()),
			actP50,
			rep.Route.Quantile(0.99).Round(time.Microsecond).String(),
			rep.Pool.Latency.Quantile(0.5).Round(time.Microsecond).String(),
			rep.Pool.Latency.Quantile(0.99).Round(time.Microsecond).String(),
		})
	}

	headline, err := serve(ukcluster.LeastLoaded, handoff, 8, 2, clusterRequests)
	if err != nil {
		return nil, err
	}
	row("diurnal-flash-10M/least-loaded+handoff", headline)

	const policyRequests = 2_000_000
	policyRows := []struct {
		name   string
		policy ukcluster.Policy
		act    ukcluster.Activation
	}{
		{"diurnal-flash-2M/least-loaded+handoff", ukcluster.LeastLoaded, handoff},
		{"diurnal-flash-2M/round-robin+handoff", ukcluster.RoundRobin, handoff},
		{"diurnal-flash-2M/hash+handoff", ukcluster.ConsistentHash, handoff},
		{"diurnal-flash-2M/least-loaded+remote-cold", ukcluster.LeastLoaded, remoteCold},
	}
	var handoffRep, coldRep *ukcluster.Report
	for _, pr := range policyRows {
		rep, err := serve(pr.policy, pr.act, 8, 2, policyRequests)
		if err != nil {
			return nil, err
		}
		row(pr.name, rep)
		switch pr.name {
		case "diurnal-flash-2M/least-loaded+handoff":
			handoffRep = rep
		case "diurnal-flash-2M/least-loaded+remote-cold":
			coldRep = rep
		}
	}

	// The degenerate cluster: one host, no front door — must be
	// byte-identical to serving the same trace through the host's pool
	// directly. This is the contract that makes the cluster layer free
	// until there is something to cluster.
	soloPool, err := hostPool(0)
	if err != nil {
		return nil, err
	}
	soloRep, err := soloPool.ServeParallel(trace(200_000), 2)
	if err != nil {
		return nil, err
	}
	soloPool.Close()
	one, err := serve(ukcluster.LeastLoaded, ukcluster.Activation{}, 1, 1, 200_000)
	if err != nil {
		return nil, err
	}
	identical := reflect.DeepEqual(*soloRep, one.Pool)

	// Per-host utilization spread on the headline run: the balancing
	// claim in one line.
	minU, maxU := 1.0, 0.0
	for _, h := range headline.PerHost {
		if h.Utilization < minU {
			minU = h.Utilization
		}
		if h.Utilization > maxU {
			maxU = h.Utilization
		}
	}

	res.Notes = append(res.Notes,
		fmt.Sprintf("headline: %d requests over %d hosts x 2 cores, %d activated under the flash crowd, dropped=%d (the cluster queues, never sheds)",
			headline.Offered, headline.Hosts, headline.Activations, headline.Dropped()),
		fmt.Sprintf("per-host utilization on the headline run spans %.1f%%..%.1f%% of a host's 2 cores", 100*minU, 100*maxU),
		fmt.Sprintf("handoff ships %s of template write-set per activation (act-p50 %v) vs re-minting remotely (act-p50 %v) — measured, not assumed",
			fmtBytes(handoff.ImageBytes), handoffRep.Activation.Quantile(0.5).Round(time.Microsecond),
			coldRep.Activation.Quantile(0.5).Round(time.Microsecond)),
		fmt.Sprintf("hosts=1 cluster report byte-identical to Pool.Serve on the same trace: %v", identical),
		"paper: no multi-host evaluation exists in the source paper; this experiment extends its single-host serving claims (Fig 10/14 boot economics) to a cluster control plane — disagreement with any external baseline should be read as model, not measurement",
	)
	if !identical {
		return nil, fmt.Errorf("cluster: hosts=1 report diverged from plain Pool.Serve")
	}
	if headline.Dropped() != 0 {
		return nil, fmt.Errorf("cluster: headline run dropped %d requests", headline.Dropped())
	}
	return res, nil
}

// fmtBytes renders a byte count at KiB/MiB granularity for notes.
func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
