package experiments

import (
	"encoding/binary"
	"fmt"

	"unikraft/internal/apps/httpd"
	"unikraft/internal/apps/kvstore"
	"unikraft/internal/apps/udpkv"
	"unikraft/internal/netstack"
	"unikraft/internal/sim"
	"unikraft/internal/ukalloc"
	"unikraft/internal/uknetdev"
)

func init() {
	register("smpscale", "SMP multi-queue scaling: req/s vs core count", smpscale)
}

// smpCoreCounts is the scaling sweep: 1 core is the calibrated
// single-queue baseline, 8 is the virtio-net queue maximum.
var smpCoreCounts = []int{1, 2, 4, 8}

const (
	smpClientIP   = "10.0.0.1"
	smpServerPort = 5000
)

func smpIP32(a netstack.IPv4Addr) uint32 { return binary.BigEndian.Uint32(a[:]) }

// smpPorts picks one source port per queue such that the RSS hash of
// (srcIP, dstIP, port, dstPort, proto) steers queue i's traffic to
// queue i — the benchmark-side analog of a real load generator's
// SO_REUSEPORT + connect() spraying until the flows spread. count
// ports are returned per queue, interleaved [q0 q1 ... qN q0 q1 ...],
// so slicing a prefix of length k*queues keeps the spread exactly even.
func smpPorts(srcIP, dstIP netstack.IPv4Addr, dstPort uint16, proto byte, queues, count int) []uint16 {
	perQueue := make([][]uint16, queues)
	need := queues * count
	have := 0
	for p := uint16(40000); have < need && p != 0; p++ {
		q := uknetdev.RSSQueue(smpIP32(srcIP), smpIP32(dstIP), p, dstPort, proto, queues)
		if len(perQueue[q]) < count {
			perQueue[q] = append(perQueue[q], p)
			have++
		}
	}
	out := make([]uint16, 0, need)
	for i := 0; i < count; i++ {
		for q := 0; q < queues; q++ {
			out = append(out, perQueue[q][i])
		}
	}
	return out
}

// udpkvSMPRate measures the specialized udpkv datapath (Table 4's
// uknetdev-polling row) over a multi-queue device: one RawServer per
// core, each polling its own queue on its own vCPU clock, client flows
// pinned by source port so RSS spreads them evenly. The rate is
// requests per second of the busiest core — the quantity that scales
// with cores when the datapath truly shares nothing. cores=1 runs the
// exact single-queue arithmetic of tab4.
func udpkvSMPRate(env *Env, cores, reqs int) (float64, error) {
	cm := env.NewMachine()
	ms := make([]*sim.Machine, cores)
	for i := range ms {
		ms[i] = env.NewMachine()
	}
	cd, sd, err := uknetdev.NewMultiQueuePair(cm, ms, uknetdev.VhostUser, uknetdev.Tuning{})
	if err != nil {
		return 0, err
	}
	clientIP, serverIP := netstack.IP(10, 0, 0, 1), netstack.IP(10, 0, 0, 2)
	client := netstack.New(cm, cd, netstack.Config{Addr: clientIP})
	store := udpkv.NewStore()
	servers := make([]*udpkv.RawServer, cores)
	for i := range servers {
		servers[i] = udpkv.NewRawServerQueue(sd, i, ms[i], serverIP, smpServerPort, store)
	}
	ports := smpPorts(clientIP, serverIP, smpServerPort, netstack.ProtoUDP, cores, 1)
	clients := make([]*udpkv.Client, cores)
	for i := range clients {
		c, err := udpkv.NewClientFrom(client, ports[i], netstack.AddrPort{Addr: serverIP, Port: smpServerPort})
		if err != nil {
			return 0, err
		}
		clients[i] = c
	}

	poll := func() {
		client.Poll()
		for _, s := range servers {
			s.Poll()
		}
		client.Poll()
	}
	// Warm up: resolve ARP (steered to queue 0) and seed the key, off
	// the measured clock.
	clients[0].Set("k", []byte("v"))
	for round := 0; store.Len() == 0 && round < 8; round++ {
		poll()
	}
	if store.Len() == 0 {
		return 0, fmt.Errorf("smpscale: udpkv warmup did not store the key")
	}
	poll()
	for _, c := range clients {
		c.Drain()
	}

	starts := make([]uint64, cores)
	for i, m := range ms {
		starts[i] = m.CPU.Cycles()
	}
	done := 0
	for done < reqs {
		n := reqs - done
		if n > 32 {
			n = 32
		}
		for i := 0; i < n; i++ {
			clients[i%cores].Get("k")
		}
		poll()
		for _, c := range clients {
			done += len(c.Drain())
		}
	}
	var maxCycles uint64
	for i, m := range ms {
		if c := m.CPU.Cycles() - starts[i]; c > maxCycles {
			maxCycles = c
		}
	}
	return float64(ms[0].CPU.Hz) / (float64(maxCycles) / float64(done)), nil
}

// smpWorld is an N-core TCP serving topology: one load-generator stack
// on its own machine, N server netstack shards over one multi-queue
// device — shard i polling queue i on core i with its own allocator
// arena (nothing shared on the datapath but the NIC).
type smpWorld struct {
	cm     *sim.Machine
	ms     []*sim.Machine
	client *netstack.Stack
	shards []*netstack.Stack
	allocs *ukalloc.Shards
	ports  []uint16
}

func newSMPWorld(env *Env, cores, conns int, alloc string) (*smpWorld, error) {
	w := &smpWorld{cm: env.NewMachine(), ms: make([]*sim.Machine, cores)}
	for i := range w.ms {
		w.ms[i] = env.NewMachine()
	}
	cd, sd, err := uknetdev.NewMultiQueuePair(w.cm, w.ms, uknetdev.VhostNet, uknetdev.Tuning{})
	if err != nil {
		return nil, err
	}
	clientIP, serverIP := netstack.IP(10, 0, 0, 1), netstack.IP(10, 0, 0, 2)
	w.client = netstack.New(w.cm, cd, netstack.Config{Addr: clientIP, Name: "client"})
	sinks := make([]ukalloc.CostSink, cores)
	for i, m := range w.ms {
		sinks[i] = m
	}
	w.allocs, err = ukalloc.NewShards(alloc, cores, 64<<20, sinks)
	if err != nil {
		return nil, err
	}
	w.shards = make([]*netstack.Stack, cores)
	for i := range w.shards {
		w.shards[i] = netstack.New(w.ms[i], sd, netstack.Config{
			Addr: serverIP, Name: fmt.Sprintf("server%d", i),
			RxQueue: i, TxQueue: i,
		})
		// RSS steers ARP to queue 0 only; the other shards learn the
		// client's address from the shared neighbor table.
		if i > 0 {
			w.shards[i].SeedARP(clientIP, cd.HWAddr())
		}
	}
	w.ports = smpPorts(clientIP, serverIP, 80, netstack.ProtoTCP, cores, (conns+cores-1)/cores)[:conns]
	return w, nil
}

func (w *smpWorld) pump(app func(i int), collect func() int) {
	for {
		moved := w.client.Poll()
		for i, s := range w.shards {
			moved += s.Poll()
			app(i)
			moved += s.Poll()
		}
		moved += w.client.Poll()
		moved += collect()
		if moved == 0 {
			return
		}
	}
}

// measure runs fire/pump rounds until the generator completes reqs
// requests, excluding retransmission-timeout idle gaps, and returns
// requests per second of the busiest core.
func (w *smpWorld) measure(reqs int, completed func() uint64, fire func(), pump func()) float64 {
	starts := make([]uint64, len(w.ms))
	for i, m := range w.ms {
		starts[i] = m.CPU.Cycles()
	}
	startDone := completed()
	for completed()-startDone < uint64(reqs) {
		before := completed()
		fire()
		pump()
		if completed() == before {
			// Residual packet loss: advance every clock past the RTO so
			// the TCP retransmission timers fire (idle, not server work).
			w.cm.Charge(200_000_000)
			for i, m := range w.ms {
				m.Charge(200_000_000)
				starts[i] += 200_000_000
			}
			pump()
		}
	}
	served := float64(completed() - startDone)
	var maxCycles uint64
	for i, m := range w.ms {
		if c := m.CPU.Cycles() - starts[i]; c > maxCycles {
			maxCycles = c
		}
	}
	return float64(w.cm.CPU.Hz) / (float64(maxCycles) / served)
}

// nginxSMPRate measures the HTTP server over cores netstack shards.
func nginxSMPRate(env *Env, cores, reqs int) (float64, error) {
	const conns = 32
	w, err := newSMPWorld(env, cores, conns, "tlsf")
	if err != nil {
		return 0, err
	}
	srvs := make([]*httpd.Server, cores)
	for i := range srvs {
		srvs[i], err = httpd.New(w.shards[i], w.allocs.Shard(i), 80, nil)
		if err != nil {
			return 0, err
		}
	}
	gen := httpd.NewLoadGenPorts(w.client, netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 80}, w.ports)
	pump := func() { w.pump(func(i int) { srvs[i].Poll() }, gen.Collect) }
	pump()
	if !gen.Ready() {
		return 0, fmt.Errorf("smpscale: nginx load generator not connected")
	}
	rate := w.measure(reqs,
		func() uint64 { return gen.Completed },
		func() { gen.Fire(1) },
		pump)
	return rate, nil
}

// redisSMPRate measures the Redis-like server (SET workload) over cores
// netstack shards.
func redisSMPRate(env *Env, cores, reqs int) (float64, error) {
	const conns = 32
	w, err := newSMPWorld(env, cores, conns, "mimalloc")
	if err != nil {
		return 0, err
	}
	srvs := make([]*kvstore.Server, cores)
	for i := range srvs {
		srvs[i], err = kvstore.New(w.shards[i], w.allocs.Shard(i), 6379)
		if err != nil {
			return 0, err
		}
	}
	ports := smpPorts(netstack.IP(10, 0, 0, 1), netstack.IP(10, 0, 0, 2), 6379, netstack.ProtoTCP, cores, (conns+cores-1)/cores)[:conns]
	bench := kvstore.NewBenchPorts(w.client, netstack.AddrPort{Addr: netstack.IP(10, 0, 0, 2), Port: 6379}, ports, true)
	pump := func() { w.pump(func(i int) { srvs[i].Poll() }, bench.Collect) }
	pump()
	if !bench.Ready() {
		return 0, fmt.Errorf("smpscale: redis bench not connected")
	}
	rate := w.measure(reqs,
		func() uint64 { return bench.Replies },
		func() { bench.Fire(16) },
		pump)
	return rate, nil
}

// smpscale sweeps the three serving workloads from 1 to 8 cores and
// reports absolute rate plus speedup over the workload's own 1-core
// row. The udpkv path is shared-nothing end to end (per-core queue,
// server and clock), so it scales linearly by construction — the row
// the baseline gates. The TCP workloads shard the whole netstack and
// allocator per core and land near-linear, paying only for uneven
// flow-to-connection work.
func smpscale(env *Env) (*Result, error) {
	res := &Result{
		ID: "smpscale", Title: Title("smpscale"),
		Headers: []string{"app", "cores", "req/s", "speedup", "source"},
	}
	type workload struct {
		name string
		reqs int
		run  func(env *Env, cores, reqs int) (float64, error)
	}
	for _, wl := range []workload{
		{"udpkv-raw", 5000, udpkvSMPRate},
		{"nginx", 3000, nginxSMPRate},
		{"redis-set", 6000, redisSMPRate},
	} {
		var base float64
		for _, cores := range smpCoreCounts {
			rate, err := wl.run(env, cores, wl.reqs)
			if err != nil {
				return nil, err
			}
			if cores == 1 {
				base = rate
			}
			res.Rows = append(res.Rows, []string{
				wl.name, fmt.Sprintf("%d", cores), krps(rate), f2(rate / base), "measured",
			})
		}
	}
	res.Notes = append(res.Notes,
		"shared-nothing per-core queues/stacks/arenas; udpkv-raw at 1 core reproduces tab4's uknetdev-polling row, 8 cores is 8.00x by RSS-even flow spread")
	return res, nil
}
