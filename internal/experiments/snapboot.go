package experiments

import (
	"fmt"
	"time"

	"unikraft/internal/core"
	"unikraft/internal/sim"
	"unikraft/internal/ukalloc"
	"unikraft/internal/ukboot"
	"unikraft/internal/ukbuild"
	"unikraft/internal/ukplat"
	"unikraft/internal/ukpool"
)

func init() {
	register("snapboot", "Snapshot-fork instantiation vs cold boot vs warm reset", snapboot)
}

// snapboot measures the three instantiation paths per application —
// the full Fig 10 cold-boot pipeline, a copy-on-write fork of a
// captured snapshot, and VM.Reset of an already-live instance — then
// replays a million-request bursty trace through a full-boot fleet and
// a fork-boot fleet to show what cheaper cold starts buy at the tail.
// The cold rows reproduce the fig10 shape (VMM setup dominating, guest
// constructors behind it); the fork rows charge only snapshot restore
// plus private-page faults.
func snapboot(env *Env) (*Result, error) {
	res := &Result{
		ID: "snapboot", Title: Title("snapboot"),
		Headers: []string{"app", "mode", "ms", "speedup"},
	}

	appCtx := func(name string) (*ukboot.Context, error) {
		profile, ok := core.AppByName(name)
		if !ok {
			return nil, fmt.Errorf("snapboot: app %s not registered", name)
		}
		img, err := ukbuild.Build(env.Catalog, profile, ukplat.KVMFirecracker.Name, ukbuild.Options{DCE: true, LTO: true})
		if err != nil {
			return nil, err
		}
		backend, err := ukalloc.ResolveBackend(profile.Allocator)
		if err != nil {
			return nil, err
		}
		return ukboot.NewContext(ukboot.Config{
			Platform:   ukplat.KVMFirecracker,
			MemBytes:   8 << 20,
			ImageBytes: img.Bytes,
			Allocator:  backend,
			NICs:       profile.NICs,
			Libs:       ukboot.ProfileLibs(profile.NICs, profile.Scheduler),
		})
	}

	ms := func(d time.Duration) string { return fmt.Sprintf("%.4g", float64(d)/float64(time.Millisecond)) }
	x := func(f float64) string { return fmt.Sprintf("%.2fx", f) }

	var nginxCtx *ukboot.Context
	var nginxSnap *ukboot.Snapshot
	for _, app := range []string{"helloworld", "nginx", "redis"} {
		ctx, err := appCtx(app)
		if err != nil {
			return nil, err
		}
		cold, err := ctx.Boot(env.NewMachine())
		if err != nil {
			return nil, err
		}
		snap, err := ctx.Snapshot(env.NewMachine())
		if err != nil {
			return nil, err
		}
		fork, err := ctx.Fork(env.NewMachine(), snap)
		if err != nil {
			return nil, err
		}
		// Reset recycles the live cold instance: dirty its heap first,
		// the way a serving tenant would have.
		if _, err := cold.Heap.Malloc(256 << 10); err != nil {
			return nil, err
		}
		m := cold.Machine
		start := m.CPU.Cycles()
		if err := cold.Reset(); err != nil {
			return nil, err
		}
		reset := m.CPU.Duration(m.CPU.Cycles() - start)

		coldT, forkT := cold.Report.Total(), fork.Report.Total()
		res.Rows = append(res.Rows,
			[]string{app, "cold", ms(coldT), x(1)},
			[]string{app, "fork", ms(forkT), x(float64(coldT) / float64(forkT))},
			[]string{app, "reset", ms(reset), x(float64(coldT) / float64(reset))},
		)
		fork.Close()
		if app == "nginx" {
			nginxCtx, nginxSnap = ctx, snap
			cold.Close() // keep the snapshot for the serving comparison
		} else {
			cold.Close()
			snap.Close()
		}
	}
	defer nginxSnap.Close()

	// The serving story: the same million-request bursty nginx trace
	// through a demand-driven fleet, once with full cold boots and once
	// with snapshot forks. Tight cold-burst allowance and heavy requests
	// (~47us) put cold starts on the critical path during bursts.
	const burstyRequests = 1_000_000
	trace := func() ukpool.Workload {
		return ukpool.NewBursty(2, 50_000, 250_000, 200*time.Millisecond, 0.4, burstyRequests, 256)
	}
	serveOpts := func(extra ...ukpool.Option) []ukpool.Option {
		return append([]ukpool.Option{
			ukpool.WithWarm(8), ukpool.WithMaxInstances(256),
			ukpool.WithServiceCost(4, 170_000), ukpool.WithColdBurst(8),
			ukpool.WithScaleWindow(10 * time.Millisecond),
		}, extra...)
	}
	bootPool := ukpool.New(func(id int) (*ukboot.VM, error) {
		return nginxCtx.Boot(sim.NewMachineWithSeed(uint64(id)))
	}, serveOpts()...)
	defer bootPool.Close()
	bootRep, err := bootPool.Serve(trace())
	if err != nil {
		return nil, err
	}
	forkPool := ukpool.New(func(id int) (*ukboot.VM, error) {
		return nginxCtx.Boot(sim.NewMachineWithSeed(uint64(id)))
	}, serveOpts(ukpool.WithForkBoot(func(id int) (*ukboot.VM, error) {
		return nginxCtx.Fork(sim.NewMachineWithSeed(uint64(id)), nginxSnap)
	}))...)
	defer forkPool.Close()
	forkRep, err := forkPool.Serve(trace())
	if err != nil {
		return nil, err
	}

	bp99 := bootRep.Latency.Quantile(0.99)
	fp99 := forkRep.Latency.Quantile(0.99)
	res.Rows = append(res.Rows,
		[]string{"nginx", "bursty-1M-boot", ms(bp99), x(1)},
		[]string{"nginx", "bursty-1M-fork", ms(fp99), x(float64(bp99) / float64(fp99))},
	)
	res.Notes = append(res.Notes,
		"cold/fork/reset rows: instantiation time (VMM + guest); fork charges snapshot restore + COW faults only",
		fmt.Sprintf("bursty rows: end-to-end p99 over a %d-request on/off nginx trace (cold starts on the burst edge)", burstyRequests),
		fmt.Sprintf("fork fleet: cold p99 %v vs %v full-boot; %d forks, fleet peak %d vs %d",
			forkRep.ColdBoot.Quantile(0.99).Round(time.Microsecond),
			bootRep.ColdBoot.Quantile(0.99).Round(time.Microsecond),
			forkRep.ForkBoots, forkRep.PeakInstances, bootRep.PeakInstances),
		"prefer VM.Reset to recycle a live instance between tenants; prefer fork to mint new instances under burst or for per-request isolation",
	)
	return res, nil
}
