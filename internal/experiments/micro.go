package experiments

import (
	"fmt"
	"time"

	_ "unikraft/internal/allocators/bootalloc"
	_ "unikraft/internal/allocators/buddy"
	_ "unikraft/internal/allocators/mimalloc"
	_ "unikraft/internal/allocators/tinyalloc"
	_ "unikraft/internal/allocators/tlsf"
	"unikraft/internal/baselines"
	"unikraft/internal/core"
	"unikraft/internal/depgraph"
	"unikraft/internal/ninepfs"
	"unikraft/internal/porting"
	"unikraft/internal/ramfs"
	"unikraft/internal/shfs"
	"unikraft/internal/sim"
	"unikraft/internal/syscalls"
	"unikraft/internal/ukboot"
	"unikraft/internal/ukbuild"
	"unikraft/internal/ukplat"
	"unikraft/internal/ukshim"
	"unikraft/internal/vfscore"
)

func init() {
	register("tab1", "Cost of binary compatibility/syscalls (cycles, ns)", table1)
	register("tab2", "Automated porting matrix (musl/newlib, compat layer)", table2)
	register("fig1", "Linux kernel component dependencies", fig1)
	register("fig2", "nginx Unikraft dependency graph", fig2)
	register("fig3", "helloworld Unikraft dependency graph", fig3)
	register("fig5", "Syscalls required by 30 server apps vs supported", fig5)
	register("fig6", "Porting-effort survey over time", fig6)
	register("fig7", "Per-app syscall support progression", fig7)
	register("fig8", "Unikraft image sizes with/without LTO and DCE", fig8)
	register("fig9", "Image sizes: Unikraft vs other OSes", fig9)
	register("fig10", "Boot time per VMM", fig10)
	register("fig11", "Minimum memory per OS", fig11)
	register("fig14", "nginx boot time per allocator", fig14)
	register("fig20", "9pfs read/write latency vs Linux", fig20)
	register("fig21", "Static vs dynamic page-table boot", fig21)
	register("fig22", "Specialized filesystem (SHFS) vs VFS open cost", fig22)
	register("txt1", "9pfs boot-time overhead (KVM vs Xen)", text9pfsBoot)
}

// --- Table 1 ----------------------------------------------------------------

func table1(env *Env) (*Result, error) {
	m := env.NewMachine()
	nsPerCycle := 1e9 / float64(m.CPU.Hz)
	row := func(platform, routine string, mode ukshim.Mode) []string {
		sh := ukshim.New(m, mode)
		sh.Register(39, "getpid", func([6]uint64) int64 { return 1 })
		before := m.CPU.Cycles()
		const iters = 1000
		for i := 0; i < iters; i++ {
			sh.Invoke(39, [6]uint64{})
		}
		cycles := float64(m.CPU.Cycles()-before) / iters
		return []string{platform, routine, f1(cycles), f2(cycles * nsPerCycle)}
	}
	res := &Result{
		ID: "tab1", Title: Title("tab1"),
		Headers: []string{"platform", "routine", "cycles", "nsecs"},
	}
	res.Rows = append(res.Rows, row("linux-kvm", "syscall", ukshim.ModeLinuxTrap))
	res.Rows = append(res.Rows, row("linux-kvm", "syscall-no-mitig", ukshim.ModeLinuxTrapNoMitig))
	res.Rows = append(res.Rows, row("unikraft-kvm", "syscall", ukshim.ModeUnikraftTrap))
	res.Rows = append(res.Rows, row("both", "function-call", ukshim.ModeFunctionCall))
	res.Notes = append(res.Notes, "paper: 222.0 / 154.0 / 84.0 / 4.0 cycles")
	return res, nil
}

// --- Table 2 / Fig 6 ---------------------------------------------------------

func table2(env *Env) (*Result, error) {
	rows := porting.Table2()
	stats := porting.AnalyzeTable2(rows)
	res := &Result{
		ID: "tab2", Title: Title("tab2"),
		Headers: []string{"library", "musl-MB", "musl-std", "musl-compat", "newlib-MB", "newlib-std", "newlib-compat", "glue-loc"},
	}
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, []string{
			r.Name, fmt.Sprintf("%.3f", r.MuslMB), yn(r.MuslStd), yn(r.MuslCompat),
			fmt.Sprintf("%.3f", r.NewlibMB), yn(r.NewlibStd), yn(r.NewlibCompat),
			fmt.Sprintf("%d", r.GlueLoC),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d/%d libraries build with the musl compat layer; %d need zero glue code; max glue %d LoC",
			stats.MuslCompatOK, stats.Libs, stats.ZeroGlue, stats.MaxGlueLoC))
	return res, nil
}

func fig6(env *Env) (*Result, error) {
	qs := porting.Fig6Survey()
	trend := porting.AnalyzeSurvey(qs)
	res := &Result{
		ID: "fig6", Title: Title("fig6"),
		Headers: []string{"quarter", "libraries", "lib-deps", "os-primitives", "build-primitives", "total"},
	}
	for _, q := range qs {
		res.Rows = append(res.Rows, []string{
			q.Quarter, f1(q.Libraries), f1(q.LibraryDeps), f1(q.OSPrimitives), f1(q.BuildPrimitives), f1(q.Total()),
		})
	}
	res.Notes = append(res.Notes, fmt.Sprintf("total effort %0.f -> %0.f working days over four quarters", trend.FirstTotal, trend.LastTotal))
	return res, nil
}

// --- dependency graphs (Figs 1-3) ---------------------------------------------

func fig1(env *Env) (*Result, error) {
	g := depgraph.LinuxKernelGraph()
	res := &Result{
		ID: "fig1", Title: Title("fig1"),
		Headers: []string{"metric", "value"},
		Rows: [][]string{
			{"components", fmt.Sprintf("%d", g.NodeCount())},
			{"dependency edges", fmt.Sprintf("%d", g.EdgeCount())},
			{"cross-component references", fmt.Sprintf("%d", g.TotalWeight())},
			{"graph density", f2(g.Density())},
			{"avg out-degree", f2(g.AvgDegree())},
		},
		Notes: []string{"DOT export available via ukdeps -linux"},
	}
	return res, nil
}

func imageGraph(env *Env, appName string) (*depgraph.Graph, error) {
	cat := env.Catalog
	app, ok := core.AppByName(appName)
	if !ok {
		return nil, fmt.Errorf("unknown app %s", appName)
	}
	providers := ukbuild.Providers(app, "kvm")
	closure, err := cat.Closure([]string{app.Lib}, providers)
	if err != nil {
		return nil, err
	}
	return depgraph.FromClosure(appName, closure, providers), nil
}

func graphResult(env *Env, id, app string) (*Result, error) {
	g, err := imageGraph(env, app)
	if err != nil {
		return nil, err
	}
	linux := depgraph.LinuxKernelGraph()
	cmp := depgraph.Analyze(linux, g)
	res := &Result{
		ID: id, Title: Title(id),
		Headers: []string{"metric", "value"},
		Rows: [][]string{
			{"micro-libraries", fmt.Sprintf("%d", g.NodeCount())},
			{"dependency edges", fmt.Sprintf("%d", g.EdgeCount())},
			{"density", f2(g.Density())},
			{"linux/image density ratio", f1(cmp.DensityRatio)},
			{"libraries", joinNames(g.Nodes)},
		},
	}
	return res, nil
}

func joinNames(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ","
		}
		out += x
	}
	return out
}

func fig2(env *Env) (*Result, error) { return graphResult(env, "fig2", "nginx") }
func fig3(env *Env) (*Result, error) { return graphResult(env, "fig3", "helloworld") }

// --- syscall compatibility (Figs 5, 7) -----------------------------------------

func fig5(env *Env) (*Result, error) {
	a := syscalls.Analyze(syscalls.Top30Apps(), syscalls.SupportedNumbers)
	needed := 0
	neededSupported := 0
	for nr, cnt := range a.UsageCount {
		if cnt > 0 {
			needed++
			if a.Supported[nr] {
				neededSupported++
			}
		}
	}
	res := &Result{
		ID: "fig5", Title: Title("fig5"),
		Headers: []string{"metric", "value"},
		Rows: [][]string{
			{"syscalls on the map", fmt.Sprintf("%d", syscalls.MaxNr+1)},
			{"supported by unikraft", fmt.Sprintf("%d", len(syscalls.SupportedNumbers))},
			{"required by >=1 of 30 apps", fmt.Sprintf("%d", needed)},
			{"required and supported", fmt.Sprintf("%d", neededSupported)},
		},
		Notes: []string{
			"more than half the syscall table is unused by popular server apps (paper §4.1)",
			"heatmap: uksyscalls -heatmap",
		},
	}
	return res, nil
}

func fig7(env *Env) (*Result, error) {
	a := syscalls.Analyze(syscalls.Top30Apps(), syscalls.SupportedNumbers)
	res := &Result{
		ID: "fig7", Title: Title("fig7"),
		Headers: []string{"app", "supported%", "+top5%", "+top10%", "full%"},
	}
	for _, row := range a.Fig7() {
		res.Rows = append(res.Rows, []string{
			row.App, f1(row.Base), f1(row.Top5), f1(row.Top10), f1(row.Complete),
		})
	}
	top5 := a.TopMissing(5)
	names := ""
	for i, nr := range top5 {
		if i > 0 {
			names += ","
		}
		names += syscalls.Name(nr)
	}
	res.Notes = append(res.Notes, "top-5 missing: "+names)
	return res, nil
}

// --- image sizes (Figs 8, 9) ----------------------------------------------------

func fig8(env *Env) (*Result, error) {
	cat := env.Catalog
	res := &Result{
		ID: "fig8", Title: Title("fig8"),
		Headers: []string{"app", "default", "+lto", "+dce", "+dce+lto"},
	}
	for _, name := range []string{"helloworld", "nginx", "redis", "sqlite"} {
		app, _ := core.AppByName(name)
		var cells []string
		cells = append(cells, name)
		for _, opts := range []ukbuild.Options{{}, {LTO: true}, {DCE: true}, {DCE: true, LTO: true}} {
			img, err := ukbuild.Build(cat, app, "kvm", opts)
			if err != nil {
				return nil, err
			}
			cells = append(cells, ukbuild.KB(img.Bytes))
		}
		res.Rows = append(res.Rows, cells)
	}
	res.Notes = append(res.Notes, "paper row (nginx): 1.6MB / 1.2MB / 832.8KB / 832.8KB")
	return res, nil
}

func fig9(env *Env) (*Result, error) {
	cat := env.Catalog
	res := &Result{
		ID: "fig9", Title: Title("fig9"),
		Headers: []string{"system", "hello", "nginx", "redis", "sqlite", "source"},
	}
	// Unikraft row: built by our linker (stripped, no LTO/DCE = default).
	var uk []string
	uk = append(uk, "unikraft")
	for _, name := range []string{"helloworld", "nginx", "redis", "sqlite"} {
		app, _ := core.AppByName(name)
		img, err := ukbuild.Build(cat, app, "kvm", ukbuild.Options{DCE: true})
		if err != nil {
			return nil, err
		}
		uk = append(uk, ukbuild.KB(img.Bytes))
	}
	uk = append(uk, "measured")
	res.Rows = append(res.Rows, uk)
	sz := func(b int) string {
		if b == 0 {
			return "-"
		}
		return ukbuild.KB(b)
	}
	for _, s := range baselines.Fig9Sizes() {
		res.Rows = append(res.Rows, []string{
			s.System, sz(s.Hello), sz(s.Nginx), sz(s.Redis), sz(s.SQLite), "paper",
		})
	}
	return res, nil
}

// --- boot (Figs 10, 11, 14, 21; txt1) --------------------------------------------

func bootHello(env *Env, p ukplat.Platform, nics int) (ukboot.Report, error) {
	m := env.NewMachine()
	vm, err := ukboot.Boot(m, ukboot.Config{
		Platform:   p,
		MemBytes:   8 << 20,
		ImageBytes: 256 << 10,
		PTMode:     ukboot.PTStatic,
		Allocator:  "bootalloc",
		NICs:       nics,
	})
	if err != nil {
		return ukboot.Report{}, err
	}
	defer vm.Close()
	return vm.Report, nil
}

func fig10(env *Env) (*Result, error) {
	res := &Result{
		ID: "fig10", Title: Title("fig10"),
		Headers: []string{"vmm", "vmm-ms", "guest-ms", "total-ms"},
	}
	cases := []struct {
		label string
		plat  ukplat.Platform
		nics  int
	}{
		{"qemu", ukplat.KVMQemu, 0},
		{"qemu-1nic", ukplat.KVMQemu, 1},
		{"qemu-microvm", ukplat.KVMQemuMicroVM, 0},
		{"solo5", ukplat.Solo5, 0},
		{"firecracker", ukplat.KVMFirecracker, 0},
	}
	for _, c := range cases {
		r, err := bootHello(env, c.plat, c.nics)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			c.label, ms(r.VMM), ms(r.Guest), ms(r.Total()),
		})
	}
	for _, b := range baselines.PublishedBootTimes() {
		res.Rows = append(res.Rows, []string{b.System + "/" + b.VMM, "-", "-", f1(b.MS) + " (paper)"})
	}
	res.Notes = append(res.Notes, "paper totals: qemu 38.4ms, qemu-1nic 42.7ms, microvm 9.1ms, solo5 3.1ms, firecracker 3.1ms")
	return res, nil
}

func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond)) }
func us(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d)/float64(time.Microsecond)) }

func fig11(env *Env) (*Result, error) {
	res := &Result{
		ID: "fig11", Title: Title("fig11"),
		Headers: []string{"system", "hello-MB", "nginx-MB", "redis-MB", "sqlite-MB", "source"},
	}
	// Unikraft row: probed by booting with growing memory until the app
	// footprint fits. App floors: startup heap demands.
	floors := map[string]int{"helloworld": 256 << 10, "nginx": 2 << 20, "redis": 4 << 20, "sqlite": 1 << 20}
	imageKB := map[string]int{"helloworld": 257, "nginx": 1600, "redis": 1800, "sqlite": 1600}
	var row []string
	row = append(row, "unikraft")
	for _, app := range []string{"helloworld", "nginx", "redis", "sqlite"} {
		cfg := ukboot.Config{
			Platform:   ukplat.KVMQemu,
			ImageBytes: imageKB[app] << 10,
			PTMode:     ukboot.PTStatic,
			Allocator:  "tlsf",
		}
		min, err := ukboot.MinMemory(cfg, floors[app])
		if err != nil {
			return nil, err
		}
		row = append(row, fmt.Sprintf("%d", min>>20))
	}
	row = append(row, "measured")
	res.Rows = append(res.Rows, row)
	for _, b := range baselines.Fig11MinMemory() {
		cell := func(v int) string {
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf("%d", v)
		}
		res.Rows = append(res.Rows, []string{b.System, cell(b.Hello), cell(b.Nginx), cell(b.Redis), cell(b.SQLite), "paper"})
	}
	res.Notes = append(res.Notes, "paper unikraft row: 2 / 5 / 7 / 4 MB")
	return res, nil
}

func fig14(env *Env) (*Result, error) {
	res := &Result{
		ID: "fig14", Title: Title("fig14"),
		Headers: []string{"allocator", "guest-boot-ms"},
	}
	for _, alloc := range []string{"buddy", "mimalloc", "bootalloc", "tinyalloc", "tlsf"} {
		m := env.NewMachine()
		vm, err := ukboot.Boot(m, ukboot.Config{
			Platform:   ukplat.KVMQemu,
			MemBytes:   1 << 30,
			ImageBytes: 1600 << 10,
			PTMode:     ukboot.PTStatic,
			Allocator:  alloc,
			NICs:       1,
			Libs:       []string{"lwip", "vfscore", "ramfs", "pthreads"},
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{alloc, ms(vm.Report.Guest)})
		vm.Close()
	}
	res.Notes = append(res.Notes, "paper: buddy 3.07, mimalloc 0.94, bootalloc 0.49, tinyalloc 0.87, tlsf 0.51 (ms)")
	return res, nil
}

func fig21(env *Env) (*Result, error) {
	res := &Result{
		ID: "fig21", Title: Title("fig21"),
		Headers: []string{"pagetable", "memory", "boot-us"},
	}
	pt := func(mode ukboot.PTMode, mem int) (time.Duration, error) {
		m := env.NewMachine()
		vm, err := ukboot.Boot(m, ukboot.Config{
			Platform:   ukplat.Solo5,
			MemBytes:   mem,
			ImageBytes: 256 << 10,
			PTMode:     mode,
			Allocator:  "bootalloc",
		})
		if err != nil {
			return 0, err
		}
		defer vm.Close()
		for _, s := range vm.Report.Steps {
			if s.Name == "pagetable" {
				return s.Duration, nil
			}
		}
		return 0, fmt.Errorf("no pagetable step")
	}
	d, err := pt(ukboot.PTStatic, 1<<30)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, []string{"static", "1GB", us(d)})
	for _, mem := range []int{32 << 20, 64 << 20, 128 << 20, 256 << 20, 512 << 20, 1 << 30, 2 << 30, 3 << 30} {
		d, err := pt(ukboot.PTDynamic, mem)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{"dynamic", ukbuild.KB(mem), us(d)})
	}
	res.Notes = append(res.Notes, "paper: static-1GB 29us; dynamic 46..114us from 32MB to 3GB")
	return res, nil
}

func text9pfsBoot(env *Env) (*Result, error) {
	res := &Result{
		ID: "txt1", Title: Title("txt1"),
		Headers: []string{"platform", "9pfs-mount-ms"},
	}
	for _, p := range []ukplat.Platform{ukplat.KVMQemu, ukplat.Xen} {
		m := env.NewMachine()
		with, err := ukboot.Boot(m, ukboot.Config{
			Platform: p, MemBytes: 64 << 20, ImageBytes: 1 << 20,
			PTMode: ukboot.PTStatic, Allocator: "tlsf", Mount9pfs: true,
		})
		if err != nil {
			return nil, err
		}
		with.Close()
		var mount time.Duration
		for _, s := range with.Report.Steps {
			if s.Name == "9pfs" {
				mount = s.Duration
			}
		}
		res.Rows = append(res.Rows, []string{p.VMM, ms(mount)})
	}
	res.Notes = append(res.Notes, "paper: 0.3ms on KVM, 2.7ms on Xen")
	return res, nil
}

// --- filesystems (Figs 20, 22) ----------------------------------------------------

func fig20(env *Env) (*Result, error) {
	res := &Result{
		ID: "fig20", Title: Title("fig20"),
		Headers: []string{"block-KB", "uk-read-us", "uk-write-us", "linux-read-us", "linux-write-us"},
	}
	// Unikraft side: measured through the real 9P client/server.
	setup := func(rttBase uint64, perByteNum uint64) (*ninepfs.FS, *sim.Machine, error) {
		host := ramfs.New()
		f, err := host.Root().Create("data.bin", false)
		if err != nil {
			return nil, nil, err
		}
		payload := make([]byte, 1<<20)
		if _, err := f.WriteAt(payload, 0); err != nil {
			return nil, nil, err
		}
		m := env.NewMachine()
		srv := ninepfs.NewServer(host)
		tr := ninepfs.NewTransport(m, srv)
		tr.RTTBaseCycles = rttBase
		tr.PerByteNum = perByteNum
		fs, err := ninepfs.Mount(tr)
		return fs, m, err
	}
	measure := func(fs *ninepfs.FS, m *sim.Machine, block int, write bool) (time.Duration, error) {
		node, err := fs.Root().Lookup("data.bin")
		if err != nil {
			return 0, err
		}
		buf := make([]byte, block)
		// Warm open, then measure 16 ops.
		if _, err := node.ReadAt(buf[:16], 0); err != nil {
			return 0, err
		}
		const ops = 16
		before := m.CPU.Cycles()
		for i := 0; i < ops; i++ {
			off := int64(i * block)
			if write {
				_, err = node.WriteAt(buf, off)
			} else {
				_, err = node.ReadAt(buf, off)
			}
			if err != nil {
				return 0, err
			}
		}
		return m.CPU.Duration((m.CPU.Cycles() - before) / ops), nil
	}
	// Unikraft virtio-9p vs Linux v9fs-in-guest (adds syscall + VFS +
	// page-cache management per op: higher fixed and per-byte costs).
	ukFS, ukM, err := setup(30_000, 6)
	if err != nil {
		return nil, err
	}
	lxFS, lxM, err := setup(198_000, 10)
	if err != nil {
		return nil, err
	}
	for _, kb := range []int{4, 8, 16, 32, 64} {
		block := kb << 10
		ukR, err := measure(ukFS, ukM, block, false)
		if err != nil {
			return nil, err
		}
		ukW, err := measure(ukFS, ukM, block, true)
		if err != nil {
			return nil, err
		}
		lxR, err := measure(lxFS, lxM, block, false)
		if err != nil {
			return nil, err
		}
		lxW, err := measure(lxFS, lxM, block, true)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", kb), us(ukR), us(ukW), us(lxR), us(lxW),
		})
	}
	res.Notes = append(res.Notes, "unikraft read/write latency below the Linux guest at every block size (paper Fig 20)")
	return res, nil
}

func fig22(env *Env) (*Result, error) {
	m := env.NewMachine()
	// SHFS volume with 1000 files at the root (the paper's setup).
	vol := shfs.New(m, 4096)
	for i := 0; i < 1000; i++ {
		if err := vol.Add(fmt.Sprintf("/f%04d.html", i), []byte("cache object")); err != nil {
			return nil, err
		}
	}
	// Unikraft VFS with the same files on ramfs.
	v := vfscore.New(m)
	rfs := ramfs.New()
	if err := v.Mount("/", rfs); err != nil {
		return nil, err
	}
	for i := 0; i < 1000; i++ {
		fd, err := v.Open(fmt.Sprintf("/f%04d.html", i), vfscore.OCreate|vfscore.OWrOnly)
		if err != nil {
			return nil, err
		}
		v.Close(fd)
	}
	avg := func(fn func(i int) error) (float64, error) {
		const loops = 1000
		before := m.CPU.Cycles()
		for i := 0; i < loops; i++ {
			if err := fn(i); err != nil {
				return 0, err
			}
		}
		return float64(m.CPU.Cycles()-before) / loops, nil
	}
	shfsHit, err := avg(func(i int) error {
		_, err := vol.Open(fmt.Sprintf("/f%04d.html", i%1000))
		return err
	})
	if err != nil {
		return nil, err
	}
	shfsMiss, _ := avg(func(i int) error {
		if _, err := vol.Open(fmt.Sprintf("/missing%04d", i)); err != shfs.ErrNotExist {
			return fmt.Errorf("unexpected hit")
		}
		return nil
	})
	vfsHit, err := avg(func(i int) error {
		fd, err := v.Open(fmt.Sprintf("/f%04d.html", i%1000), vfscore.ORdOnly)
		if err != nil {
			return err
		}
		return v.Close(fd)
	})
	if err != nil {
		return nil, err
	}
	vfsMiss, _ := avg(func(i int) error {
		if _, err := v.Open(fmt.Sprintf("/missing%04d", i), vfscore.ORdOnly); err != vfscore.ErrNotExist {
			return fmt.Errorf("unexpected hit")
		}
		return nil
	})
	// Linux guest VFS: the same walk plus trap and heavier dentry path
	// (factors vs our measured unikraft VFS, calibrated to Fig 22).
	linuxNoMitig := vfsHit*1.55 + 154
	linuxNoMitigMiss := vfsMiss*1.55 + 154
	linux := vfsHit*2.2 + 222
	linuxMiss := vfsMiss*2.2 + 222

	res := &Result{
		ID: "fig22", Title: Title("fig22"),
		Headers: []string{"config", "file-exists-cycles", "no-file-cycles"},
		Rows: [][]string{
			{"unikraft-shfs", f1(shfsHit), f1(shfsMiss)},
			{"unikraft-vfs", f1(vfsHit), f1(vfsMiss)},
			{"linux-vfs-no-mitig", f1(linuxNoMitig), f1(linuxNoMitigMiss)},
			{"linux-vfs", f1(linux), f1(linuxMiss)},
		},
		Notes: []string{"paper: shfs 308/291, unikraft-vfs 1637/2219, linux rows derived with documented factors"},
	}
	return res, nil
}
