package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestRegistryComplete: every table/figure of the evaluation is
// regenerable.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"tab1", "tab2", "tab4",
		"fig1", "fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "txt1",
		"serve", "zerocopy", "snapboot", "fileserve", "cluster", "smpscale",
		"chaos", "overload", "engine",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
		if Title(id) == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registered %d experiments, want %d", len(IDs()), len(want))
	}
}

// TestFastExperiments runs every cheap experiment end to end and checks
// structural sanity. The expensive throughput experiments have their own
// targeted tests below and full runs in the benchmarks.
func TestFastExperiments(t *testing.T) {
	fast := []string{
		"tab1", "tab2", "fig1", "fig2", "fig3", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig14", "fig19", "fig20",
		"fig21", "fig22", "txt1",
	}
	for _, id := range fast {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(DefaultEnv(), id)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, row := range res.Rows {
				if len(row) != len(res.Headers) {
					t.Fatalf("row width %d != header width %d: %v", len(row), len(res.Headers), row)
				}
			}
			if !strings.Contains(res.Render(), res.ID) {
				t.Fatal("render missing ID")
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run(DefaultEnv(), "fig99"); err == nil {
		t.Fatal("unknown experiment ran")
	}
}

// TestTable4Shape runs the real Table 4 measurement and validates the
// specialization ordering: raw uknetdev >> socket path, and the raw path
// lands in the paper's millions-per-second regime.
func TestTable4Shape(t *testing.T) {
	res, err := Run(DefaultEnv(), "tab4")
	if err != nil {
		t.Fatal(err)
	}
	var sock, raw float64
	for _, row := range res.Rows {
		if row[0] == "unikraft-guest" && row[1] == "lwip-sockets" {
			sock = parseK(t, row[2])
		}
		if row[0] == "unikraft-guest" && row[1] == "uknetdev-polling" {
			raw = parseK(t, row[2])
		}
	}
	if sock == 0 || raw == 0 {
		t.Fatalf("missing measured rows: %v", res.Rows)
	}
	if raw < 8*sock {
		t.Errorf("specialization speedup = %.1fx, want >= 8x (paper ~20x)", raw/sock)
	}
	if raw < 3000 || raw > 12000 { // K req/s
		t.Errorf("raw path = %.0fK req/s, want paper-regime ~6300K", raw)
	}
	if sock < 150 || sock > 900 {
		t.Errorf("socket path = %.0fK req/s, want paper-regime ~319K", sock)
	}
}

// TestServeShape runs the full serving experiment (a million-request
// steady trace plus a bursty one) and validates the acceptance bar:
// warm-hit ratio above 90% under steady load, boot percentiles in the
// platform's calibrated range, and real autoscaler traffic on the
// bursty trace.
func TestServeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput run")
	}
	res, err := Run(DefaultEnv(), "serve")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("want 2 traces, got rows %v", res.Rows)
	}
	col := map[string]int{}
	for i, h := range res.Headers {
		col[h] = i
	}
	steady := res.Rows[0]
	if steady[0] != "poisson-steady" {
		t.Fatalf("first row is %q", steady[0])
	}
	if n, _ := strconv.Atoi(steady[col["requests"]]); n < 1_000_000 {
		t.Errorf("steady trace served %d requests, want >= 1M", n)
	}
	hit, err := strconv.ParseFloat(strings.TrimSuffix(steady[col["warm-hit"]], "%"), 64)
	if err != nil || hit <= 90 {
		t.Errorf("steady warm-hit = %q, want > 90%% (%v)", steady[col["warm-hit"]], err)
	}
	// Boot p50 must sit in the calibrated firecracker regime: above the
	// 2.4ms VMM floor, under 10ms.
	p50, err := time.ParseDuration(steady[col["boot-p50"]])
	if err != nil || p50 < 2400*time.Microsecond || p50 > 10*time.Millisecond {
		t.Errorf("boot p50 = %q, want in (2.4ms, 10ms] (%v)", steady[col["boot-p50"]], err)
	}
	bursty := res.Rows[1]
	if cold, _ := strconv.Atoi(bursty[col["cold"]]); cold == 0 {
		t.Error("bursty trace never cold-booted")
	}
}

// TestSnapbootShape runs the snapshot-fork experiment and validates
// the acceptance bar: fork-boot at least 5x faster than cold boot for
// nginx, the bursty 1M-request trace at a lower p99 with fork-based
// cold boots, and VM.Reset cheapest of the three paths everywhere.
func TestSnapbootShape(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput run")
	}
	res, err := Run(DefaultEnv(), "snapboot")
	if err != nil {
		t.Fatal(err)
	}
	cell := map[string]map[string]float64{} // app -> mode -> ms
	for _, row := range res.Rows {
		if cell[row[0]] == nil {
			cell[row[0]] = map[string]float64{}
		}
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", row[2], err)
		}
		cell[row[0]][row[1]] = v
	}
	for _, app := range []string{"helloworld", "nginx", "redis"} {
		m := cell[app]
		if m["cold"] == 0 || m["fork"] == 0 || m["reset"] == 0 {
			t.Fatalf("%s rows incomplete: %v", app, m)
		}
		if m["fork"] >= m["cold"] {
			t.Errorf("%s: fork %vms not below cold %vms", app, m["fork"], m["cold"])
		}
		if m["reset"] >= m["fork"] {
			t.Errorf("%s: reset %vms not below fork %vms", app, m["reset"], m["fork"])
		}
	}
	if f := cell["nginx"]["cold"] / cell["nginx"]["fork"]; f < 5 {
		t.Errorf("nginx fork speedup %.2fx, want >= 5x", f)
	}
	boot, fork := cell["nginx"]["bursty-1M-boot"], cell["nginx"]["bursty-1M-fork"]
	if boot == 0 || fork == 0 {
		t.Fatalf("bursty rows missing: %v", cell["nginx"])
	}
	if fork >= boot {
		t.Errorf("bursty p99 with forks %vms not below full boots %vms", fork, boot)
	}
}

// TestFileserveShape runs the static-file serving experiment and
// validates the acceptance bar: the zero-copy sendfile path at least
// 1.3x over the copying file path, SHFS outperforming the
// vfscore+ramfs path end to end with the open-cost ratio inside
// Fig 22's band, and the 1M-request pool traces hitting warm and
// page-cache ratios above 90%.
func TestFileserveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput run")
	}
	res, err := Run(DefaultEnv(), "fileserve")
	if err != nil {
		t.Fatal(err)
	}
	col := map[string]int{}
	for i, h := range res.Headers {
		col[h] = i
	}
	rate := map[string]float64{}
	for _, row := range res.Rows {
		key := row[col["backend"]] + "/" + row[col["datapath"]] + "/" + row[col["trace"]]
		rate[key] = parseK(t, strings.TrimSuffix(row[col["req/s"]], "/s"))
	}
	copyRate := rate["vfscore/copy/wrk-mix"]
	sendfileRate := rate["vfscore/sendfile-zc/wrk-mix"]
	shfsRate := rate["shfs/sendfile-zc/wrk-mix"]
	if copyRate == 0 || sendfileRate == 0 || shfsRate == 0 {
		t.Fatalf("world rows missing: %v", rate)
	}
	if f := sendfileRate / copyRate; f < 1.3 {
		t.Errorf("zero-copy sendfile speedup = %.2fx, want >= 1.3x", f)
	}
	if shfsRate <= sendfileRate {
		t.Errorf("shfs (%.1fK) not above vfscore sendfile (%.1fK) end to end", shfsRate, sendfileRate)
	}

	var vfsOpen, shfsOpen float64
	for _, row := range res.Rows {
		if row[col["trace"]] != "wrk-mix" || row[col["open-cycles"]] == "-" {
			continue
		}
		v, err := strconv.ParseFloat(row[col["open-cycles"]], 64)
		if err != nil {
			t.Fatalf("open-cycles %q: %v", row[col["open-cycles"]], err)
		}
		switch row[col["backend"]] {
		case "vfscore":
			vfsOpen = v
		case "shfs":
			shfsOpen = v
		}
	}
	if vfsOpen == 0 || shfsOpen == 0 {
		t.Fatal("open-cost cells missing")
	}
	if ratio := vfsOpen / shfsOpen; ratio < 4 || ratio > 7 {
		t.Errorf("end-to-end SHFS/vfscore open ratio = %.1fx, want in Fig 22's ~5x band [4, 7]", ratio)
	}

	pct := func(row []string, name string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[col[name]], "%"), 64)
		if err != nil {
			t.Fatalf("%s %q: %v", name, row[col[name]], err)
		}
		return v
	}
	poolRows := 0
	for _, row := range res.Rows {
		if row[col["trace"]] == "wrk-mix" {
			continue
		}
		poolRows++
		if n, _ := strconv.Atoi(row[col["requests"]]); n < 1_000_000 {
			t.Errorf("pool trace %s served %d requests, want >= 1M", row[col["trace"]], n)
		}
		if hit := pct(row, "warm-hit"); hit <= 90 {
			t.Errorf("pool trace %s warm-hit %.2f%%, want > 90%%", row[col["trace"]], hit)
		}
		if row[col["cache-hit"]] != "-" {
			if hit := pct(row, "cache-hit"); hit <= 90 {
				t.Errorf("pool trace %s cache-hit %.2f%%, want > 90%%", row[col["trace"]], hit)
			}
		}
	}
	if poolRows < 3 {
		t.Errorf("want >= 3 pool trace rows, got %d", poolRows)
	}
}

// TestZeroCopyShape runs the zerocopy sweep and validates the
// acceptance bar: zero-copy with batched kicks buys >= 1.3x simulated
// nginx throughput over the copying path, speedups are monotone in the
// batching knob, and the copy baseline stays on the calibrated fig13
// operating point.
func TestZeroCopyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput run")
	}
	res, err := Run(DefaultEnv(), "zerocopy")
	if err != nil {
		t.Fatal(err)
	}
	nginx := map[string]float64{}
	redis := map[string]float64{}
	for _, row := range res.Rows {
		nginx[row[0]] = parseK(t, row[1])
		redis[row[0]] = parseM(t, row[3])
	}
	for _, name := range []string{"copy", "zerocopy", "zerocopy+kick8", "zerocopy+kick32"} {
		if nginx[name] == 0 || redis[name] == 0 {
			t.Fatalf("missing datapath row %q: %v", name, res.Rows)
		}
	}
	if f := nginx["zerocopy+kick32"] / nginx["copy"]; f < 1.3 {
		t.Errorf("nginx zero-copy+batched speedup = %.2fx, want >= 1.3x", f)
	}
	if redis["zerocopy+kick32"] <= redis["copy"] {
		t.Errorf("redis zero-copy+batched (%.2fM) not above copy (%.2fM)",
			redis["zerocopy+kick32"], redis["copy"])
	}
	if !(nginx["zerocopy+kick32"] >= nginx["zerocopy+kick8"] && nginx["zerocopy+kick8"] > nginx["zerocopy"]) {
		t.Errorf("nginx speedup not monotone in kick batch: %v", nginx)
	}
	// The copy row is the calibrated fig13 configuration; it must stay
	// on that operating point (~208K req/s at this request count).
	if nginx["copy"] < 150 || nginx["copy"] > 300 {
		t.Errorf("copy baseline drifted: %.0fK req/s", nginx["copy"])
	}
}

// TestFig12Shape checks the headline result at reduced request count:
// Unikraft beats the modelled Linux family in order.
func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput run")
	}
	res, err := Run(DefaultEnv(), "fig12")
	if err != nil {
		t.Fatal(err)
	}
	get := map[string]float64{}
	for _, row := range res.Rows {
		get[row[0]] = parseM(t, row[1])
	}
	uk := get["unikraft-kvm"]
	if uk == 0 {
		t.Fatal("no unikraft row")
	}
	for _, sys := range []string{"linux-native", "docker", "linux-kvm", "linux-firecracker"} {
		if get[sys] == 0 {
			t.Fatalf("missing %s", sys)
		}
		if uk <= get[sys] {
			t.Errorf("unikraft (%.2fM) not above %s (%.2fM)", uk, sys, get[sys])
		}
	}
	if !(get["linux-native"] > get["linux-kvm"] && get["linux-kvm"] > get["linux-firecracker"]) {
		t.Errorf("linux family ordering broken: %v", get)
	}
	// Factor vs the KVM guest: paper 1.74x; accept a broad band.
	if f := uk / get["linux-kvm"]; f < 1.15 || f > 3.0 {
		t.Errorf("unikraft/linux-kvm = %.2fx, want ~1.7x", f)
	}
}

// TestClusterShape runs the multi-host cluster experiment and validates
// the acceptance bar: the 10M-request headline trace over 8 hosts with
// zero drops, flash-crowd activations all via snapshot handoff, and the
// handoff activation priced below the remote cold mint.
func TestClusterShape(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput run")
	}
	res, err := Run(DefaultEnv(), "cluster")
	if err != nil {
		t.Fatal(err)
	}
	col := map[string]int{}
	for i, h := range res.Headers {
		col[h] = i
	}
	rows := map[string][]string{}
	for _, row := range res.Rows {
		rows[row[0]] = row
	}
	headline := rows["diurnal-flash-10M/least-loaded+handoff"]
	if headline == nil {
		t.Fatalf("no headline row: %v", res.Rows)
	}
	num := func(row []string, h string) int {
		t.Helper()
		v, err := strconv.Atoi(row[col[h]])
		if err != nil {
			t.Fatalf("parse %s=%q: %v", h, row[col[h]], err)
		}
		return v
	}
	if n := num(headline, "served"); n != 10_000_000 {
		t.Errorf("headline served %d, want exactly 10M", n)
	}
	if n := num(headline, "hosts"); n < 8 {
		t.Errorf("headline ran on %d hosts, want >= 8", n)
	}
	if n := num(headline, "dropped"); n != 0 {
		t.Errorf("headline dropped %d requests", n)
	}
	if num(headline, "activations") == 0 {
		t.Error("flash crowd never forced an activation")
	}
	if num(headline, "handoffs") != num(headline, "activations") {
		t.Errorf("want all activations via handoff: %d of %d",
			num(headline, "handoffs"), num(headline, "activations"))
	}
	// Handoff vs remote cold mint: same trace, same policy, activation
	// p50 must be cheaper when the image ships instead of re-minting.
	ho, cold := rows["diurnal-flash-2M/least-loaded+handoff"], rows["diurnal-flash-2M/least-loaded+remote-cold"]
	if ho == nil || cold == nil {
		t.Fatalf("policy rows missing: %v", res.Rows)
	}
	hp50, err := time.ParseDuration(ho[col["act-p50"]])
	if err != nil {
		t.Fatalf("handoff act-p50 %q: %v", ho[col["act-p50"]], err)
	}
	cp50, err := time.ParseDuration(cold[col["act-p50"]])
	if err != nil {
		t.Fatalf("cold act-p50 %q: %v", cold[col["act-p50"]], err)
	}
	if hp50 >= cp50 {
		t.Errorf("handoff activation p50 %v not below remote cold %v", hp50, cp50)
	}
	for _, row := range res.Rows {
		if n := num(row, "dropped"); n != 0 {
			t.Errorf("%s dropped %d requests", row[0], n)
		}
	}
}

// TestChaosShape runs the fault-injection experiment and validates the
// acceptance bar: the 10M-request headline loses a host at peak load
// and keeps goodput >= 99.9% (gated inside the experiment, re-checked
// here), detection triggers a replacement activation, the no-standby
// row actually sheds, and the hazard-storm row trips the breaker.
func TestChaosShape(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput run")
	}
	res, err := Run(DefaultEnv(), "chaos")
	if err != nil {
		t.Fatal(err)
	}
	col := map[string]int{}
	for i, h := range res.Headers {
		col[h] = i
	}
	rows := map[string][]string{}
	for _, row := range res.Rows {
		rows[row[0]] = row
	}
	num := func(row []string, h string) int {
		t.Helper()
		v, err := strconv.Atoi(row[col[h]])
		if err != nil {
			t.Fatalf("parse %s=%q: %v", h, row[col[h]], err)
		}
		return v
	}
	headline := rows["chaos-10M/crash-at-peak"]
	if headline == nil {
		t.Fatalf("no headline row: %v", res.Rows)
	}
	goodput, err := strconv.ParseFloat(strings.TrimSuffix(headline[col["goodput"]], "%"), 64)
	if err != nil {
		t.Fatalf("parse goodput %q: %v", headline[col["goodput"]], err)
	}
	if goodput < 99.9 {
		t.Errorf("headline goodput %.3f%%, want >= 99.9%%", goodput)
	}
	if n := num(headline, "crashes"); n != 1 {
		t.Errorf("headline crashes %d, want exactly 1", n)
	}
	if num(headline, "replacements") == 0 {
		t.Error("crash detection never activated a replacement")
	}
	if num(headline, "retried") == 0 {
		t.Error("no forwards retried onto survivors")
	}
	if _, err := time.ParseDuration(headline[col["recovery"]]); err != nil {
		t.Errorf("headline recovery %q not a duration: %v", headline[col["recovery"]], err)
	}
	rejoinRow := rows["chaos-2M/crash+rejoin"]
	if rejoinRow == nil {
		t.Fatalf("no rejoin row: %v", res.Rows)
	}
	noStandby := rows["chaos-2M/crash-no-standby"]
	if noStandby == nil {
		t.Fatalf("no no-standby row: %v", res.Rows)
	}
	if num(noStandby, "shed") == 0 {
		t.Error("losing half a two-host cluster at peak never shed — admission control dead")
	}
	storm := rows["chaos-2M/hazard-storm+breaker"]
	if storm == nil {
		t.Fatalf("no hazard-storm row: %v", res.Rows)
	}
	if num(storm, "vm-crashes") == 0 {
		t.Error("hazard storm produced no VM crashes")
	}
}

func parseK(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "K"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func parseM(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "M"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// TestSMPScaleShape runs the multi-queue scaling sweep and validates
// the acceptance bar: the udpkv 1-core row reproduces Table 4's
// uknetdev-polling regime, and every workload scales at least 6x from
// 1 to 8 cores (the shared-nothing udpkv path is exactly 8x by
// construction).
func TestSMPScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput run")
	}
	res, err := Run(DefaultEnv(), "smpscale")
	if err != nil {
		t.Fatal(err)
	}
	if want := len([]string{"udpkv-raw", "nginx", "redis-set"}) * len(smpCoreCounts); len(res.Rows) != want {
		t.Fatalf("got %d rows, want %d: %v", len(res.Rows), want, res.Rows)
	}
	rate := map[string]map[string]float64{}
	for _, row := range res.Rows {
		if rate[row[0]] == nil {
			rate[row[0]] = map[string]float64{}
		}
		rate[row[0]][row[1]] = parseK(t, row[2])
	}
	if r := rate["udpkv-raw"]["1"]; r < 3000 || r > 12000 {
		t.Errorf("udpkv-raw 1-core = %.0fK req/s, want tab4 regime ~6228K", r)
	}
	for app, rows := range rate {
		one, eight := rows["1"], rows["8"]
		if one == 0 || eight == 0 {
			t.Fatalf("%s missing 1- or 8-core row: %v", app, rows)
		}
		if s := eight / one; s < 6 {
			t.Errorf("%s scaled %.2fx from 1 to 8 cores, want >= 6x", app, s)
		}
	}
}

// TestSMPScaleLinearity is the cheap always-on check: the shared-nothing
// udpkv datapath doubles exactly when the core count doubles.
func TestSMPScaleLinearity(t *testing.T) {
	env := DefaultEnv()
	one, err := udpkvSMPRate(env, 1, 800)
	if err != nil {
		t.Fatal(err)
	}
	four, err := udpkvSMPRate(env, 4, 800)
	if err != nil {
		t.Fatal(err)
	}
	if s := four / one; s < 3.9 || s > 4.1 {
		t.Errorf("udpkv 4-core speedup = %.3fx, want 4.00x (shared-nothing)", s)
	}
}

// TestOverloadShape runs the full overload-control experiment (two
// 10M-request open-loop traces at 2.5x capacity plus the satellite
// rows) and validates the headline claims the gates encode: collapse
// without control, sustained in-deadline goodput with it.
func TestOverloadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput run")
	}
	res, err := Run(DefaultEnv(), "overload")
	if err != nil {
		t.Fatal(err) // the experiment gates its own claims
	}
	col := map[string]int{}
	for i, h := range res.Headers {
		col[h] = i
	}
	rows := map[string][]string{}
	for _, row := range res.Rows {
		rows[row[0]] = row
	}
	goodput := func(name string) float64 {
		t.Helper()
		row := rows[name]
		if row == nil {
			t.Fatalf("no %s row: %v", name, res.Rows)
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[col["goodput(in-dl)"]], "%"), 64)
		if err != nil {
			t.Fatalf("parse goodput %q: %v", row[col["goodput(in-dl)"]], err)
		}
		return v
	}
	un, ctl := goodput("overload-10M/uncontrolled"), goodput("overload-10M/deadline+admission")
	if un > 5 {
		t.Errorf("uncontrolled in-deadline goodput %.3f%%, want collapse (< 5%%)", un)
	}
	if ctl < 35 {
		t.Errorf("controlled in-deadline goodput %.3f%% of offered, want >= 35%% (2.5x overload caps it near 40%%)", ctl)
	}
	if p99 := rows["overload-10M/deadline+admission"][col["int-p99"]]; strings.Contains(p99, "s") && !strings.Contains(p99, "ms") && !strings.Contains(p99, "µs") {
		t.Errorf("controlled p99 %s in whole seconds — latency not bounded", p99)
	}
}
