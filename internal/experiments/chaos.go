package experiments

import (
	"fmt"
	"reflect"
	"time"

	"unikraft/internal/core"
	"unikraft/internal/sim"
	"unikraft/internal/ukalloc"
	"unikraft/internal/ukboot"
	"unikraft/internal/ukbuild"
	"unikraft/internal/ukcluster"
	"unikraft/internal/ukfault"
	"unikraft/internal/ukplat"
	"unikraft/internal/ukpool"
)

func init() {
	register("chaos", "Deterministic fault injection: host crashes at peak load, failover, retries and recovery", chaosServe)
}

// chaosRequests is the headline trace size: the failover claim (lose a
// host at peak load, keep goodput >= 99.9%) has to hold at front-door
// scale, so the main row pushes ten million requests through an
// eight-host cluster and kills a host mid-flash-crowd.
const chaosRequests = 10_000_000

// chaosGoodputFloor is the headline gate: out of every thousand
// requests offered while a host fail-stops at peak load, at most one
// may be lost to the crash.
const chaosGoodputFloor = 0.999

// chaosSeries is the latency-series window recovery analysis reads:
// fine enough to localize the post-crash p99 excursion, coarse enough
// that per-window histograms stay populated at the headline rate.
const chaosSeries = 50 * time.Millisecond

// chaosServe injects seeded, virtual-time fault plans into the cluster
// serve: fail-stop host crashes with detection/retry/replacement at
// the front door, per-request VM crash hazard with in-pool restart and
// a circuit breaker, and admission-control shedding when the surviving
// capacity drowns. Everything is deterministic — the same plan against
// the same trace reproduces the same report byte-for-byte, including
// the empty plan, which must reproduce the fault-free serve exactly.
func chaosServe(env *Env) (*Result, error) {
	profile, ok := core.AppByName("nginx")
	if !ok {
		return nil, fmt.Errorf("chaos: nginx profile not registered")
	}
	img, err := ukbuild.Build(env.Catalog, profile, ukplat.KVMFirecracker.Name, ukbuild.Options{DCE: true, LTO: true})
	if err != nil {
		return nil, err
	}
	backend, err := ukalloc.ResolveBackend(profile.Allocator)
	if err != nil {
		return nil, err
	}
	bootCfg := ukboot.Config{
		Platform:   ukplat.KVMFirecracker,
		MemBytes:   8 << 20,
		ImageBytes: img.Bytes,
		Allocator:  backend,
		NICs:       profile.NICs,
		Libs:       ukboot.ProfileLibs(profile.NICs, profile.Scheduler),
	}

	// Host pools: the same host-salted derivation the SDK and the
	// cluster experiment use, plus the per-window latency series that
	// recovery analysis reads. extra carries per-row options (VM crash
	// hazard, breaker threshold).
	const hostSalt = 0xA24BAED4963EE407
	const instSalt = 0x9E3779B97F4A7C15
	hostPool := func(extra ...ukpool.Option) func(host int) (*ukpool.Pool, error) {
		return func(host int) (*ukpool.Pool, error) {
			ctx, err := ukboot.NewContext(bootCfg)
			if err != nil {
				return nil, err
			}
			seed := uint64(host) * hostSalt
			snap, err := ctx.Snapshot(sim.NewMachineWithSeed(seed))
			if err != nil {
				return nil, err
			}
			machine := func(id int) *sim.Machine {
				return sim.NewMachineWithSeed(seed + uint64(id)*instSalt)
			}
			opts := []ukpool.Option{
				ukpool.WithWarm(8), ukpool.WithMaxInstances(256),
				ukpool.WithServiceCost(4, 170_000), ukpool.WithColdBurst(8),
				ukpool.WithScaleWindow(10 * time.Millisecond),
				ukpool.WithLatencySeries(chaosSeries),
				ukpool.WithForkBoot(func(id int) (*ukboot.VM, error) { return ctx.Fork(machine(id), snap) }),
				ukpool.WithOnClose(snap.Close),
			}
			return ukpool.New(func(id int) (*ukboot.VM, error) { return ctx.Boot(machine(id)) },
				append(opts, extra...)...), nil
		}
	}

	// Activation by snapshot handoff — the same re-handoff that seeds a
	// replacement host after a crash detection.
	probeCtx, err := ukboot.NewContext(bootCfg)
	if err != nil {
		return nil, err
	}
	probe, err := probeCtx.Snapshot(env.NewMachine())
	if err != nil {
		return nil, err
	}
	handoff := ukcluster.Activation{
		Handoff:    true,
		ImageBytes: probe.PrivateOverheadBytes() + probe.HeapMetaBytes() + probe.MarkedPages()*16,
		ColdBoot:   probe.Template().Report.Total(),
	}
	probe.Close()
	handoff.Attach = bootCfg.Platform.ForkSetup +
		time.Duration(bootCfg.NICs)*bootCfg.Platform.ForkNICSetup

	// The trace: the cluster experiment's diurnal shape, but with the
	// flash crowd at ~75% of full-fleet capacity (8 hosts x 2 cores at
	// ~47us/request is ~340K req/s) instead of 150% — failover is about
	// losing a host the fleet could have spared, not about drowning the
	// fleet and blaming the crash.
	shape := func(n int) (w ukpool.Workload, flashAt, flashDur time.Duration) {
		total := time.Duration(n/65_000) * time.Second
		flashAt, flashDur = total/5, total/8
		return ukpool.NewDiurnal(43, 40_000, 90_000, total,
			flashAt, flashDur, 250_000, 4096, n, 256), flashAt, flashDur
	}

	serve := func(plan *ukfault.Plan, hosts, active, n int, extra ...ukpool.Option) (*ukcluster.Report, error) {
		c, err := ukcluster.New(ukcluster.Config{
			Hosts: hosts, Cores: 2, InitialActive: active, MinActive: active,
			Policy: ukcluster.LeastLoaded, NewPool: hostPool(extra...),
			EstService: 47 * time.Microsecond,
			Activation: handoff,
			Faults:     plan,
		})
		if err != nil {
			return nil, err
		}
		defer c.Close()
		w, _, _ := shape(n)
		return c.Serve(w)
	}

	res := &Result{
		ID: "chaos", Title: Title("chaos"),
		Headers: []string{"configuration", "hosts", "requests", "served", "goodput",
			"crashes", "vm-crashes", "retried", "failed", "shed", "replacements",
			"recovery", "lat-p99"},
	}
	row := func(name string, rep *ukcluster.Report, recovery string) {
		res.Rows = append(res.Rows, []string{
			name,
			fmt.Sprintf("%d", rep.Hosts),
			fmt.Sprintf("%d", rep.Offered),
			fmt.Sprintf("%d", rep.Pool.Requests),
			fmt.Sprintf("%.3f%%", 100*rep.Goodput()),
			fmt.Sprintf("%d", rep.Crashes),
			fmt.Sprintf("%d", rep.Pool.Crashes),
			fmt.Sprintf("%d", rep.Retried+rep.Pool.Retried),
			fmt.Sprintf("%d", rep.Failed+rep.Pool.Failed),
			fmt.Sprintf("%d", rep.Shed),
			fmt.Sprintf("%d", rep.Replacements),
			recovery,
			rep.Pool.Latency.Quantile(0.99).Round(time.Microsecond).String(),
		})
	}

	// Headline: kill host 1 — serving since t=0, loaded — in the middle
	// of the flash crowd, with six standby hosts for the detector to
	// re-handoff onto.
	_, flashAt, flashDur := shape(chaosRequests)
	crashAt := flashAt + flashDur/2
	headlinePlan := ukfault.New(977).CrashHost(1, crashAt)
	headline, err := serve(headlinePlan, 8, 2, chaosRequests)
	if err != nil {
		return nil, err
	}
	recovery := recoveryTime(headline.Pool.Series, crashAt)
	row("chaos-10M/crash-at-peak", headline, recovery.Round(time.Millisecond).String())

	const sideRequests = 2_000_000
	_, sFlashAt, sFlashDur := shape(sideRequests)
	sCrashAt := sFlashAt + sFlashDur/2

	// Crash + rejoin: the host comes back as a cold standby after the
	// crowd passes and can be re-activated by a later spill.
	rejoinRep, err := serve(ukfault.New(977).CrashHostRejoin(1, sCrashAt, sFlashDur), 8, 2, sideRequests)
	if err != nil {
		return nil, err
	}
	row("chaos-2M/crash+rejoin", rejoinRep, recoveryTime(rejoinRep.Pool.Series, sCrashAt).Round(time.Millisecond).String())

	// VM hazard: every request carries an independent chance of
	// crashing its serving instance mid-flight. Partial work is charged,
	// the instance restarts by fork, the request retries in-pool.
	hazardRep, err := serve(nil, 8, 2, sideRequests,
		ukpool.WithCrashHazard(1e-4, ukfault.Mix(977, 0xBAD)))
	if err != nil {
		return nil, err
	}
	row("chaos-2M/vm-hazard-1e-4", hazardRep, "-")

	// Hazard storm: a crash rate high enough that some instances crash
	// repeatedly and the circuit breaker retires them instead of
	// restarting forever.
	stormRep, err := serve(nil, 8, 2, sideRequests,
		ukpool.WithCrashHazard(1e-2, ukfault.Mix(977, 0xBAD)),
		ukpool.WithBreaker(2))
	if err != nil {
		return nil, err
	}
	row("chaos-2M/hazard-storm+breaker", stormRep, "-")

	// No standby to fail over to: a two-host cluster loses half its
	// capacity at peak and admission control sheds what the survivor
	// cannot absorb — shed, not silently dropped.
	shedRep, err := serve(ukfault.New(977).CrashHost(1, sCrashAt), 2, 2, sideRequests)
	if err != nil {
		return nil, err
	}
	row("chaos-2M/crash-no-standby", shedRep, recoveryTime(shedRep.Pool.Series, sCrashAt).Round(time.Millisecond).String())

	// The contract everything above rests on: an empty fault plan must
	// reproduce the fault-free serve byte-for-byte — the fault engine
	// costs nothing until a fault is planned.
	const identityRequests = 200_000
	plainRep, err := serve(nil, 8, 2, identityRequests)
	if err != nil {
		return nil, err
	}
	emptyRep, err := serve(ukfault.New(977), 8, 2, identityRequests)
	if err != nil {
		return nil, err
	}
	identical := reflect.DeepEqual(*plainRep, *emptyRep)

	res.Notes = append(res.Notes,
		fmt.Sprintf("headline: host 1 fail-stops at %v (mid-flash, peak load); detection via missed probes, %d forwards retried onto survivors, %d replacement activated by snapshot re-handoff, goodput %.4f%%",
			crashAt.Round(time.Millisecond), headline.Retried, headline.Replacements, 100*headline.Goodput()),
		fmt.Sprintf("recovery: cluster p99 back inside its pre-crash band %v after the crash (%v windows)", recovery.Round(time.Millisecond), chaosSeries),
		fmt.Sprintf("accounting: offered = served + shed + failed holds on every row (headline dropped=%d); shed requests got a fast reject at the door, failed ones exhausted the retry policy or died in the wreck", headline.Dropped()),
		fmt.Sprintf("hazard storm: %d instances breaker-retired after consecutive mid-request crashes instead of restarting forever", stormRep.Pool.BreakerTrips),
		fmt.Sprintf("empty fault plan byte-identical to the fault-free serve: %v", identical),
		"model: fail-stop only — a crashed host loses its in-flight requests (counted failed), forwards in flight on the link retry against survivors; no byzantine faults, no partial failures",
	)
	if !identical {
		return nil, fmt.Errorf("chaos: empty fault plan diverged from the fault-free serve")
	}
	if g := headline.Goodput(); g < chaosGoodputFloor {
		return nil, fmt.Errorf("chaos: headline goodput %.4f below the %.3f floor (shed=%d failed=%d pool-failed=%d retried=%d offered=%d served=%d)",
			g, chaosGoodputFloor, headline.Shed, headline.Failed, headline.Pool.Failed, headline.Retried, headline.Offered, headline.Pool.Requests)
	}
	for _, rep := range []*ukcluster.Report{headline, rejoinRep, hazardRep, stormRep, shedRep} {
		if rep.Dropped() != 0 {
			return nil, fmt.Errorf("chaos: %d requests unaccounted for", rep.Dropped())
		}
	}
	return res, nil
}

// recoveryTime reads the per-window latency series and reports how long
// after crashAt the cluster-wide p99 stayed above its pre-crash band:
// the band is the worst windowed p99 seen strictly before the crash,
// and recovery ends at the close of the last window that exceeds it.
// Zero means the crash never pushed p99 outside what the trace had
// already shown.
func recoveryTime(series []ukpool.StreamHist, crashAt time.Duration) time.Duration {
	crashWin := int(crashAt / chaosSeries)
	var band time.Duration
	for i := 0; i < crashWin && i < len(series); i++ {
		if series[i].Count == 0 {
			continue
		}
		if p := series[i].Quantile(0.99); p > band {
			band = p
		}
	}
	var recoveredAt time.Duration
	for i := crashWin; i < len(series); i++ {
		if series[i].Count == 0 {
			continue
		}
		if series[i].Quantile(0.99) > band {
			recoveredAt = time.Duration(i+1) * chaosSeries
		}
	}
	if recoveredAt == 0 {
		return 0
	}
	return recoveredAt - crashAt
}
