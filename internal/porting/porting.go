// Package porting encodes and analyzes the paper's porting studies:
// Table 2 (automated porting of 24 libraries via externally-built
// archives against musl and newlib, with and without the glibc
// compatibility layer) and Figure 6 (the developer survey of porting
// effort over the project's first four quarters).
package porting

import (
	"fmt"
	"sort"
	"strings"
)

// LibPort is one Table 2 row.
type LibPort struct {
	Name string
	// MuslMB / NewlibMB are image sizes in MB.
	MuslMB, NewlibMB float64
	// MuslStd / NewlibStd: whether the port builds without the glibc
	// compatibility layer.
	MuslStd, NewlibStd bool
	// MuslCompat / NewlibCompat: with the compat layer.
	MuslCompat, NewlibCompat bool
	// GlueLoC is the hand-written glue code needed.
	GlueLoC int
}

// Table2 is the paper's porting matrix, transcribed.
func Table2() []LibPort {
	return []LibPort{
		{"lib-axtls", 0.364, 0.436, false, false, true, true, 0},
		{"lib-bzip2", 0.324, 0.388, false, false, true, true, 0},
		{"lib-c-ares", 0.328, 0.424, false, false, true, true, 0},
		{"lib-duktape", 0.756, 0.856, true, false, true, true, 7},
		{"lib-farmhash", 0.256, 0.340, true, true, true, true, 0},
		{"lib-fft2d", 0.364, 0.440, true, false, true, true, 0},
		{"lib-helloworld", 0.248, 0.332, true, true, true, true, 0},
		{"lib-httpreply", 0.252, 0.372, true, false, true, true, 0},
		{"lib-libucontext", 0.248, 0.332, true, false, true, true, 0},
		{"lib-libunwind", 0.248, 0.328, true, true, true, true, 0},
		{"lib-lighttpd", 0.676, 0.788, false, false, true, true, 6},
		{"lib-memcached", 0.536, 0.660, false, false, true, true, 6},
		{"lib-micropython", 0.648, 0.708, true, false, true, true, 7},
		{"lib-nginx", 0.704, 0.792, false, false, true, true, 5},
		{"lib-open62541", 0.252, 0.336, true, true, true, true, 13},
		{"lib-openssl", 2.9, 3.0, false, false, true, true, 0},
		{"lib-pcre", 0.356, 0.432, true, false, true, true, 0},
		{"lib-python3", 3.1, 3.2, false, false, true, true, 26},
		{"lib-redis-client", 0.660, 0.764, false, false, true, true, 29},
		{"lib-redis-server", 1.3, 1.4, false, false, true, true, 32},
		{"lib-ruby", 5.6, 5.7, false, false, true, true, 37},
		{"lib-sqlite", 1.4, 1.4, false, false, true, true, 5},
		{"lib-zlib", 0.368, 0.432, false, false, true, true, 0},
		{"lib-zydis", 0.688, 0.756, true, false, true, true, 0},
	}
}

// Table2Stats summarizes the porting matrix (the §4 claims).
type Table2Stats struct {
	Libs           int
	MuslStdOK      int // build with plain musl
	NewlibStdOK    int
	MuslCompatOK   int // build with the glibc compat layer
	NewlibCompatOK int
	ZeroGlue       int // ports needing no hand-written code
	TotalGlueLoC   int
	MaxGlueLoC     int
	MeanMuslMB     float64
}

// AnalyzeTable2 computes the summary.
func AnalyzeTable2(rows []LibPort) Table2Stats {
	var s Table2Stats
	s.Libs = len(rows)
	var sizeSum float64
	for _, r := range rows {
		if r.MuslStd {
			s.MuslStdOK++
		}
		if r.NewlibStd {
			s.NewlibStdOK++
		}
		if r.MuslCompat {
			s.MuslCompatOK++
		}
		if r.NewlibCompat {
			s.NewlibCompatOK++
		}
		if r.GlueLoC == 0 {
			s.ZeroGlue++
		}
		s.TotalGlueLoC += r.GlueLoC
		if r.GlueLoC > s.MaxGlueLoC {
			s.MaxGlueLoC = r.GlueLoC
		}
		sizeSum += r.MuslMB
	}
	if s.Libs > 0 {
		s.MeanMuslMB = sizeSum / float64(s.Libs)
	}
	return s
}

// SurveyQuarter is one Figure 6 time bucket of the developer survey
// (working days spent porting, by category).
type SurveyQuarter struct {
	Quarter         string
	Libraries       float64
	LibraryDeps     float64
	OSPrimitives    float64
	BuildPrimitives float64
}

// Total sums all categories.
func (q SurveyQuarter) Total() float64 {
	return q.Libraries + q.LibraryDeps + q.OSPrimitives + q.BuildPrimitives
}

// Fig6Survey is the survey dataset (Figure 6): total porting effort per
// quarter, decreasing as the common code base matured.
func Fig6Survey() []SurveyQuarter {
	return []SurveyQuarter{
		{Quarter: "Q2-2019", Libraries: 132, LibraryDeps: 60, OSPrimitives: 31, BuildPrimitives: 16},
		{Quarter: "Q3-2019", Libraries: 88, LibraryDeps: 22, OSPrimitives: 21, BuildPrimitives: 18},
		{Quarter: "Q4-2019", Libraries: 43, LibraryDeps: 1, OSPrimitives: 46, BuildPrimitives: 0},
		{Quarter: "Q1-2020", Libraries: 24, LibraryDeps: 0, OSPrimitives: 4, BuildPrimitives: 0},
	}
}

// SurveyTrend verifies the Figure 6 claim quantitatively: effort on
// dependencies and missing primitives trends to zero.
type SurveyTrend struct {
	FirstTotal, LastTotal float64
	// OverheadShare is (deps+primitives)/total per quarter: the share of
	// effort NOT spent on the library itself.
	OverheadShare []float64
}

// AnalyzeSurvey computes the trend.
func AnalyzeSurvey(qs []SurveyQuarter) SurveyTrend {
	var t SurveyTrend
	if len(qs) == 0 {
		return t
	}
	t.FirstTotal = qs[0].Total()
	t.LastTotal = qs[len(qs)-1].Total()
	for _, q := range qs {
		total := q.Total()
		if total == 0 {
			t.OverheadShare = append(t.OverheadShare, 0)
			continue
		}
		t.OverheadShare = append(t.OverheadShare,
			(q.LibraryDeps+q.OSPrimitives+q.BuildPrimitives)/total)
	}
	return t
}

// RenderTable2 prints the matrix in the paper's layout.
func RenderTable2(rows []LibPort) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %5s %7s %8s %5s %7s %6s\n",
		"library", "musl MB", "std", "compat", "newlibMB", "std", "compat", "glue")
	sorted := append([]LibPort(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	mark := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "x"
	}
	for _, r := range sorted {
		fmt.Fprintf(&b, "%-18s %8.3f %5s %7s %8.3f %5s %7s %6d\n",
			r.Name, r.MuslMB, mark(r.MuslStd), mark(r.MuslCompat),
			r.NewlibMB, mark(r.NewlibStd), mark(r.NewlibCompat), r.GlueLoC)
	}
	return b.String()
}
