package porting

import (
	"strings"
	"testing"
)

func TestTable2Claims(t *testing.T) {
	rows := Table2()
	if len(rows) != 24 {
		t.Fatalf("rows = %d, want 24", len(rows))
	}
	s := AnalyzeTable2(rows)
	// §4's headline: with the compat layer, everything builds.
	if s.MuslCompatOK != 24 || s.NewlibCompatOK != 24 {
		t.Fatalf("compat: musl %d, newlib %d; want 24/24", s.MuslCompatOK, s.NewlibCompatOK)
	}
	// Without it, newlib is much worse than musl ("this approach is not
	// effective with newlib but it is with musl").
	if s.NewlibStdOK >= s.MuslStdOK {
		t.Fatalf("newlib std %d >= musl std %d", s.NewlibStdOK, s.MuslStdOK)
	}
	// Most ports need zero glue; the worst is tens of lines (ruby, 37).
	if s.ZeroGlue < 12 {
		t.Errorf("zero-glue ports = %d", s.ZeroGlue)
	}
	if s.MaxGlueLoC != 37 {
		t.Errorf("max glue = %d, want 37 (ruby)", s.MaxGlueLoC)
	}
}

func TestNewlibImagesLarger(t *testing.T) {
	for _, r := range Table2() {
		if r.NewlibMB < r.MuslMB {
			t.Errorf("%s: newlib %.3fMB < musl %.3fMB", r.Name, r.NewlibMB, r.MuslMB)
		}
	}
}

func TestFig6Trend(t *testing.T) {
	qs := Fig6Survey()
	if len(qs) != 4 {
		t.Fatalf("quarters = %d", len(qs))
	}
	tr := AnalyzeSurvey(qs)
	// Total effort declines steeply as the code base matures.
	if tr.LastTotal >= tr.FirstTotal/4 {
		t.Errorf("effort %0.f -> %0.f; want a steep decline", tr.FirstTotal, tr.LastTotal)
	}
	// Dependency + primitive overhead share ends near zero.
	last := tr.OverheadShare[len(tr.OverheadShare)-1]
	if last > 0.25 {
		t.Errorf("final overhead share = %.2f", last)
	}
	for i := 1; i < len(qs); i++ {
		if qs[i].Total() > qs[i-1].Total() && i != 2 {
			// Q4-2019 has an OS-primitives bump in the paper's data; any
			// other increase is a transcription error.
			t.Errorf("quarter %s total increased", qs[i].Quarter)
		}
	}
}

func TestRenderTable2(t *testing.T) {
	out := RenderTable2(Table2())
	if !strings.Contains(out, "lib-sqlite") || !strings.Contains(out, "glue") {
		t.Fatalf("render missing fields:\n%s", out)
	}
	if strings.Count(out, "\n") != 25 { // header + 24 rows
		t.Fatalf("lines = %d", strings.Count(out, "\n"))
	}
}
