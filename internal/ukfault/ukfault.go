// Package ukfault describes deterministic fault plans for the serving
// stack: fail-stop host crashes (with optional rejoin), degraded or
// partitioned front-door↔host links, and a per-request VM crash hazard.
//
// A plan is data, not behavior: the cluster router and the pool engine
// read it and derive every fault decision from the plan's seed and the
// identity of the thing failing (host id, request fields, attempt
// number) via splitmix64 hashing — never from Go's runtime randomness
// or wall-clock time. The same seed and the same plan over the same
// trace therefore produce byte-identical reports, which is what makes
// chaos runs regression-gateable: a failover bug shows up as a diff,
// not as flakiness.
package ukfault

import (
	"fmt"
	"time"
)

// HostCrash fail-stops one host at virtual time At: everything in
// flight on the host (in service, queued, waiting on boots) is lost,
// and forwards dispatched to it after At are lost until the router's
// probe machinery detects the crash. If Rejoin > 0 the host comes back
// At+Rejoin later as a cold standby (its previous fleet is gone; the
// autoscaler re-activates it via a fresh snapshot handoff when load
// warrants).
type HostCrash struct {
	Host   int
	At     time.Duration
	Rejoin time.Duration // measured from At; 0 = the host never returns
}

// LinkFault degrades the front-door↔host link of one host (or every
// host, Host = -1) during [From, To). To <= From means "until the
// trace ends". ExtraDelay is added to every forward's link latency;
// Loss drops each forward independently with the given probability;
// Partition drops every forward in the window (detection and retries
// then behave exactly as for a crash, but the host's in-flight work
// survives and the host serves again once the window closes).
type LinkFault struct {
	Host       int
	From, To   time.Duration
	ExtraDelay time.Duration
	Loss       float64
	Partition  bool
}

// SlowHost degrades one host's service rate by Factor during
// [From, To) — a noisy neighbor, thermal throttling, a dying disk:
// the host still answers, just Factor times slower. To <= From means
// "until the trace ends". The pool stretches every service started in
// the window by Factor, and the cluster router inflates its fluid
// estimate of work forwarded there by the same factor, so least-loaded
// steers around the sick host and the admission controller sees the
// backlog it causes. A slow host is the overload controller's natural
// prey: it creates sustained queue-delay pressure without any crash.
type SlowHost struct {
	Host     int
	From, To time.Duration
	Factor   float64
}

// VMFaults is the pool-level hazard: each request drawn against the
// plan seed crashes its serving instance mid-request with probability
// Hazard. The partial service burned before the crash is charged, the
// instance is restarted in its slot (a fork clone when the pool has a
// snapshot template), and the request is retried on another instance.
type VMFaults struct {
	Hazard float64
}

// Plan is one seeded fault schedule. The zero value (or nil) is the
// perfect world every existing test assumes; Empty reports whether a
// plan is equivalent to it.
type Plan struct {
	Seed    uint64
	Crashes []HostCrash
	Links   []LinkFault
	Slows   []SlowHost
	VM      VMFaults
}

// New returns an empty plan with the given seed.
func New(seed uint64) *Plan { return &Plan{Seed: seed} }

// CrashHost schedules a fail-stop crash of host at virtual time at.
func (p *Plan) CrashHost(host int, at time.Duration) *Plan {
	p.Crashes = append(p.Crashes, HostCrash{Host: host, At: at})
	return p
}

// CrashHostRejoin schedules a crash at at with the host returning as a
// cold standby rejoin after the crash.
func (p *Plan) CrashHostRejoin(host int, at, rejoin time.Duration) *Plan {
	p.Crashes = append(p.Crashes, HostCrash{Host: host, At: at, Rejoin: rejoin})
	return p
}

// DegradeLink adds delay and loss to host's link during [from, to).
func (p *Plan) DegradeLink(host int, from, to, extraDelay time.Duration, loss float64) *Plan {
	p.Links = append(p.Links, LinkFault{Host: host, From: from, To: to, ExtraDelay: extraDelay, Loss: loss})
	return p
}

// PartitionHost cuts host off from the front door during [from, to).
func (p *Plan) PartitionHost(host int, from, to time.Duration) *Plan {
	p.Links = append(p.Links, LinkFault{Host: host, From: from, To: to, Partition: true})
	return p
}

// Slow degrades host's service rate by factor during [from, to).
func (p *Plan) Slow(host int, from, to time.Duration, factor float64) *Plan {
	p.Slows = append(p.Slows, SlowHost{Host: host, From: from, To: to, Factor: factor})
	return p
}

// WithVMHazard sets the per-request instance crash probability.
func (p *Plan) WithVMHazard(hazard float64) *Plan {
	p.VM.Hazard = hazard
	return p
}

// Empty reports whether the plan injects nothing — the serving stack
// treats an empty plan exactly like no plan at all, byte for byte.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Crashes) == 0 && len(p.Links) == 0 &&
		len(p.Slows) == 0 && p.VM.Hazard == 0)
}

// ClusterFaults reports whether the plan carries faults the cluster
// router must arm its probe/retry machinery for (crashes, link faults
// or slow hosts — a pure VM hazard is handled inside each host's
// pool).
func (p *Plan) ClusterFaults() bool {
	return p != nil && (len(p.Crashes) > 0 || len(p.Links) > 0 || len(p.Slows) > 0)
}

// Validate rejects plans the engines cannot execute deterministically.
func (p *Plan) Validate(hosts int) error {
	if p == nil {
		return nil
	}
	seen := make(map[int]bool, len(p.Crashes))
	for _, c := range p.Crashes {
		if c.Host < 0 || c.Host >= hosts {
			return fmt.Errorf("ukfault: crash host %d out of range [0,%d)", c.Host, hosts)
		}
		if seen[c.Host] {
			return fmt.Errorf("ukfault: host %d crashes more than once", c.Host)
		}
		seen[c.Host] = true
		if c.At < 0 || c.Rejoin < 0 {
			return fmt.Errorf("ukfault: negative crash time on host %d", c.Host)
		}
	}
	for i, l := range p.Links {
		if l.Host < -1 || l.Host >= hosts {
			return fmt.Errorf("ukfault: link fault %d host %d out of range", i, l.Host)
		}
		if l.Loss < 0 || l.Loss > 1 {
			return fmt.Errorf("ukfault: link fault %d loss %v outside [0,1]", i, l.Loss)
		}
		if l.ExtraDelay < 0 {
			return fmt.Errorf("ukfault: link fault %d negative delay", i)
		}
	}
	slowed := make(map[int]bool, len(p.Slows))
	for _, s := range p.Slows {
		if s.Host < 0 || s.Host >= hosts {
			return fmt.Errorf("ukfault: slow host %d out of range [0,%d)", s.Host, hosts)
		}
		if slowed[s.Host] {
			return fmt.Errorf("ukfault: host %d slowed more than once", s.Host)
		}
		slowed[s.Host] = true
		if s.Factor < 1 {
			return fmt.Errorf("ukfault: slow host %d factor %v below 1", s.Host, s.Factor)
		}
		if s.From < 0 {
			return fmt.Errorf("ukfault: negative slow window on host %d", s.Host)
		}
	}
	if p.VM.Hazard < 0 || p.VM.Hazard > 1 {
		return fmt.Errorf("ukfault: vm hazard %v outside [0,1]", p.VM.Hazard)
	}
	return nil
}

// CrashOf returns host's scheduled crash, if any. Validate guarantees
// at most one per host.
func (p *Plan) CrashOf(host int) (HostCrash, bool) {
	if p == nil {
		return HostCrash{}, false
	}
	for _, c := range p.Crashes {
		if c.Host == host {
			return c, true
		}
	}
	return HostCrash{}, false
}

// SlowOf returns host's scheduled slowdown, if any. Validate guarantees
// at most one per host.
func (p *Plan) SlowOf(host int) (SlowHost, bool) {
	if p == nil {
		return SlowHost{}, false
	}
	for _, s := range p.Slows {
		if s.Host == host {
			return s, true
		}
	}
	return SlowHost{}, false
}

// SlowAt returns host's service-time multiplier at time t (1 when the
// host is running at full speed).
func (p *Plan) SlowAt(host int, t time.Duration) float64 {
	s, ok := p.SlowOf(host)
	if !ok || t < s.From {
		return 1
	}
	if s.To > s.From && t >= s.To {
		return 1
	}
	return s.Factor
}

// mix64 is the splitmix64 finalizer — the avalanche step every fault
// draw goes through.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Mix folds any number of identity words into one hash. Draws are
// domain-separated by what goes in: a request's crash draw mixes the
// plan seed with the request's own fields, a link-loss draw mixes the
// seed with the host and the forward's dispatch time, and so on.
func Mix(seed uint64, parts ...uint64) uint64 {
	h := mix64(seed)
	for _, v := range parts {
		h = mix64(h ^ v)
	}
	return h
}

// Frac maps a hash to a uniform float64 in [0, 1) — the Bernoulli
// coin every probabilistic fault flips.
func Frac(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// Draw decides whether a request crashes its instance mid-service and,
// if so, at what fraction of the service time the crash lands (clamped
// to [0.05, 0.95] so a crash is never free and never indistinguishable
// from a completion). Identity is the request's own fields plus the
// retry attempt, never dispatch ordinals: the draw is invariant under
// the pool's shard partitioning, preserving the shards=1 ≡ sequential
// equivalence for fault-free requests and determinism for faulty ones.
func (v VMFaults) Draw(seed uint64, arrival time.Duration, bytes int, key uint64, attempt int) (crash bool, frac float64) {
	if v.Hazard <= 0 {
		return false, 0
	}
	h := Mix(seed, uint64(arrival), uint64(bytes), key, uint64(attempt))
	if Frac(h) >= v.Hazard {
		return false, 0
	}
	return true, 0.05 + 0.9*Frac(mix64(h))
}
