package ukfault

import (
	"testing"
	"time"
)

func TestEmptyPlan(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Fatal("nil plan must be empty")
	}
	if nilPlan.ClusterFaults() {
		t.Fatal("nil plan must not arm cluster faults")
	}
	p := New(7)
	if !p.Empty() {
		t.Fatal("fresh plan must be empty")
	}
	p.CrashHost(1, time.Second)
	if p.Empty() || !p.ClusterFaults() {
		t.Fatal("crash plan must be non-empty with cluster faults")
	}
	if New(1).WithVMHazard(1e-4).ClusterFaults() {
		t.Fatal("pure VM hazard must not arm cluster faults")
	}
}

func TestValidate(t *testing.T) {
	if err := New(1).CrashHost(3, time.Second).Validate(8); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	cases := []*Plan{
		New(1).CrashHost(8, time.Second),                             // host out of range
		New(1).CrashHost(2, time.Second).CrashHost(2, 2*time.Second), // double crash
		New(1).DegradeLink(0, 0, time.Second, 0, 1.5),                // loss > 1
		New(1).DegradeLink(-2, 0, time.Second, 0, 0.1),               // host < -1
		New(1).WithVMHazard(2),                                       // hazard > 1
	}
	for i, p := range cases {
		if err := p.Validate(8); err == nil {
			t.Errorf("case %d: invalid plan accepted", i)
		}
	}
}

func TestCrashOf(t *testing.T) {
	p := New(1).CrashHostRejoin(2, time.Second, 3*time.Second)
	c, ok := p.CrashOf(2)
	if !ok || c.At != time.Second || c.Rejoin != 3*time.Second {
		t.Fatalf("CrashOf(2) = %+v, %v", c, ok)
	}
	if _, ok := p.CrashOf(1); ok {
		t.Fatal("CrashOf(1) must miss")
	}
}

func TestDrawDeterministicAndShardInvariant(t *testing.T) {
	v := VMFaults{Hazard: 0.5}
	c1, f1 := v.Draw(42, time.Millisecond, 256, 7, 0)
	c2, f2 := v.Draw(42, time.Millisecond, 256, 7, 0)
	if c1 != c2 || f1 != f2 {
		t.Fatal("Draw must be deterministic")
	}
	// A different attempt is a fresh coin.
	if c3, f3 := v.Draw(42, time.Millisecond, 256, 7, 1); c1 == c3 && f1 == f3 {
		t.Log("attempt 1 drew identically — allowed but unexpected")
	}
	if crash, _ := (VMFaults{}).Draw(42, time.Millisecond, 256, 7, 0); crash {
		t.Fatal("zero hazard must never crash")
	}
}

func TestDrawRate(t *testing.T) {
	// The empirical crash rate over many identities must track Hazard.
	v := VMFaults{Hazard: 0.1}
	crashes := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		crash, frac := v.Draw(9, time.Duration(i)*time.Microsecond, 256, uint64(i%1024), 0)
		if crash {
			crashes++
			if frac < 0.05 || frac > 0.95 {
				t.Fatalf("crash fraction %v outside [0.05, 0.95]", frac)
			}
		}
	}
	got := float64(crashes) / n
	if got < 0.09 || got > 0.11 {
		t.Fatalf("empirical crash rate %v, want ~0.1", got)
	}
}
