package core

import (
	"fmt"
	"sort"
)

// This file implements the Kconfig-style configuration model: boolean
// options, choice groups (exactly-one provider per API), and dependency
// expressions, mirroring the paper's menu-driven build system ("a
// Kconfig-based menu for users to select which micro-libraries to use",
// §3).

// OptionType distinguishes config entry kinds.
type OptionType int

// Option types.
const (
	// BoolOption enables/disables a micro-library or feature.
	BoolOption OptionType = iota
	// ChoiceOption selects exactly one value from Choices (e.g. which
	// allocator backend provides ukalloc).
	ChoiceOption
	// IntOption carries a numeric parameter (heap size, queue depth).
	IntOption
)

// Option is one Kconfig entry.
type Option struct {
	Name    string
	Type    OptionType
	Help    string
	Default any
	Choices []string // ChoiceOption only
	// DependsOn lists option names that must be enabled (bools) for
	// this option to be settable.
	DependsOn []string
}

// Menu is the option schema.
type Menu struct {
	opts  map[string]*Option
	order []string
}

// NewMenu returns an empty menu.
func NewMenu() *Menu { return &Menu{opts: map[string]*Option{}} }

// Add registers an option.
func (m *Menu) Add(o *Option) *Menu {
	if _, dup := m.opts[o.Name]; dup {
		panic("core: duplicate option " + o.Name)
	}
	m.opts[o.Name] = o
	m.order = append(m.order, o.Name)
	return m
}

// Option returns a schema entry.
func (m *Menu) Option(name string) (*Option, bool) {
	o, ok := m.opts[name]
	return o, ok
}

// Options lists entries in declaration order.
func (m *Menu) Options() []*Option {
	out := make([]*Option, len(m.order))
	for i, n := range m.order {
		out[i] = m.opts[n]
	}
	return out
}

// Config is a concrete assignment of option values.
type Config struct {
	menu   *Menu
	values map[string]any
}

// NewConfig starts from the menu's defaults.
func (m *Menu) NewConfig() *Config {
	c := &Config{menu: m, values: map[string]any{}}
	for _, o := range m.Options() {
		if o.Default != nil {
			c.values[o.Name] = o.Default
		}
	}
	return c
}

// Set assigns a value, validating type, choice membership and
// dependencies.
func (c *Config) Set(name string, value any) error {
	o, ok := c.menu.opts[name]
	if !ok {
		return fmt.Errorf("core: unknown option %q", name)
	}
	for _, dep := range o.DependsOn {
		if !c.Bool(dep) {
			return fmt.Errorf("core: option %q depends on %q which is disabled", name, dep)
		}
	}
	switch o.Type {
	case BoolOption:
		if _, ok := value.(bool); !ok {
			return fmt.Errorf("core: option %q wants bool, got %T", name, value)
		}
	case IntOption:
		if _, ok := value.(int); !ok {
			return fmt.Errorf("core: option %q wants int, got %T", name, value)
		}
	case ChoiceOption:
		s, ok := value.(string)
		if !ok {
			return fmt.Errorf("core: option %q wants string choice, got %T", name, value)
		}
		valid := false
		for _, ch := range o.Choices {
			if ch == s {
				valid = true
				break
			}
		}
		if !valid {
			return fmt.Errorf("core: option %q: %q not in %v", name, s, o.Choices)
		}
	}
	c.values[name] = value
	return nil
}

// Bool reads a boolean option (false if unset).
func (c *Config) Bool(name string) bool {
	v, _ := c.values[name].(bool)
	return v
}

// Int reads an integer option (0 if unset).
func (c *Config) Int(name string) int {
	v, _ := c.values[name].(int)
	return v
}

// Choice reads a choice option ("" if unset).
func (c *Config) Choice(name string) string {
	v, _ := c.values[name].(string)
	return v
}

// Names lists set options, sorted (diffing configs in tests).
func (c *Config) Names() []string {
	out := make([]string, 0, len(c.values))
	for n := range c.values {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Validate re-checks every dependency (catching enable-then-disable
// sequences).
func (c *Config) Validate() error {
	for name := range c.values {
		o := c.menu.opts[name]
		if o == nil {
			return fmt.Errorf("core: stale option %q", name)
		}
		if o.Type == BoolOption && !c.Bool(name) {
			continue // disabled bools do not need their deps
		}
		for _, dep := range o.DependsOn {
			if !c.Bool(dep) {
				return fmt.Errorf("core: %q set but dependency %q disabled", name, dep)
			}
		}
	}
	return nil
}
