package core

import (
	"fmt"
	"sort"
	"sync"
)

// This file is the mutable application/library registry behind the
// catalog: the default app table seeds it, and callers (examples, tests,
// future workloads) extend it at run time via RegisterApp and
// RegisterLibrary without touching the calibrated catalog source. It
// mirrors how KraftKit's package catalog is an open set rather than a
// hard-coded table.

var (
	regMu sync.RWMutex
	// appProfiles is the app registry, keyed by profile name.
	appProfiles = map[string]AppProfile{}
	// extraLibs holds libraries registered at run time; DefaultCatalog
	// folds them in after the calibrated built-ins.
	extraLibs = map[string]libSpec{}
	// catalogGen counts library registrations so catalog consumers can
	// cache DefaultCatalog results and invalidate on change.
	catalogGen int64
)

// CatalogGeneration returns a counter that changes whenever a library
// registration would alter DefaultCatalog's contents.
func CatalogGeneration() int64 {
	regMu.RLock()
	defer regMu.RUnlock()
	return catalogGen
}

func init() {
	for _, a := range defaultApps() {
		appProfiles[a.Name] = a
	}
}

// defaultApps is the seed app table used across the paper's evaluation.
func defaultApps() []AppProfile {
	return []AppProfile{
		{Name: "helloworld", Lib: "app-helloworld", Libc: "nolibc", Allocator: "ukallocbuddy"},
		{Name: "nginx", Lib: "app-nginx", Libc: "musl", Allocator: "ukalloctlsf", Scheduler: "ukschedcoop", NICs: 1},
		{Name: "redis", Lib: "app-redis", Libc: "musl", Allocator: "ukallocmim", Scheduler: "ukschedcoop", NICs: 1},
		{Name: "sqlite", Lib: "app-sqlite", Libc: "musl", Allocator: "ukalloctlsf", Scheduler: "ukschedcoop"},
		{Name: "webcache", Lib: "app-webcache", Libc: "nolibc", Allocator: "ukalloctlsf", NICs: 1},
		{Name: "udpkv", Lib: "app-udpkv", Libc: "nolibc", Allocator: "ukallocboot", NICs: 1},
	}
}

// Apps lists the registered application profiles, sorted by name so the
// listing is deterministic across runs.
func Apps() []AppProfile {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]AppProfile, 0, len(appProfiles))
	for _, a := range appProfiles {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AppNames lists registered application names, sorted.
func AppNames() []string {
	apps := Apps()
	out := make([]string, len(apps))
	for i, a := range apps {
		out[i] = a.Name
	}
	return out
}

// AppByName returns the profile for name.
func AppByName(name string) (AppProfile, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	a, ok := appProfiles[name]
	return a, ok
}

// RegisterApp adds an application profile to the registry so it can be
// built and booted like the canonical apps. The profile's Lib must name a
// library already in the catalog (built-in or added via RegisterLibrary).
// Empty Libc and Allocator default to "nolibc" and "ukalloctlsf".
func RegisterApp(p AppProfile) error {
	if p.Name == "" {
		return fmt.Errorf("core: RegisterApp: profile has no name")
	}
	if p.Lib == "" {
		return fmt.Errorf("core: RegisterApp(%s): profile has no Lib (register one with RegisterLibrary)", p.Name)
	}
	if p.Libc == "" {
		p.Libc = "nolibc"
	}
	if p.Allocator == "" {
		p.Allocator = "ukalloctlsf"
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := appProfiles[p.Name]; dup {
		return fmt.Errorf("core: RegisterApp: app %q already registered", p.Name)
	}
	if _, ok := specs[p.Lib]; !ok {
		if _, ok := extraLibs[p.Lib]; !ok {
			return fmt.Errorf("core: RegisterApp(%s): library %q not in catalog (register it with RegisterLibrary)", p.Name, p.Lib)
		}
	}
	appProfiles[p.Name] = p
	return nil
}

// LibraryConfig describes a custom micro-library for RegisterLibrary.
// Byte counts feed the same calibrated symbol synthesis as the built-in
// catalog, so DCE/LTO behave identically for registered libraries.
type LibraryConfig struct {
	// UsedBytes is reachable code/data; UnusedBytes is removed by DCE;
	// ComdatBytes by either LTO or DCE.
	UsedBytes, UnusedBytes, ComdatBytes int
	// Provides/Needs/Deps follow the micro-library model of §3.
	Provides, Needs, Deps []string
	// Platform restricts the library to one platform ("" = generic).
	Platform string
	// App marks an application root library.
	App bool
}

// RegisterLibrary adds a custom micro-library to every catalog built
// after the call. Names must not collide with built-ins.
func RegisterLibrary(name string, cfg LibraryConfig) error {
	if name == "" {
		return fmt.Errorf("core: RegisterLibrary: library has no name")
	}
	if cfg.UsedBytes <= 0 {
		return fmt.Errorf("core: RegisterLibrary(%s): UsedBytes must be positive", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := specs[name]; dup {
		return fmt.Errorf("core: RegisterLibrary: %q is a built-in library", name)
	}
	if _, dup := extraLibs[name]; dup {
		return fmt.Errorf("core: RegisterLibrary: %q already registered", name)
	}
	catalogGen++
	// Copy the slices: the registry is process-wide and must not alias
	// buffers the caller may reuse or mutate.
	clone := func(xs []string) []string {
		if len(xs) == 0 {
			return nil
		}
		return append([]string(nil), xs...)
	}
	extraLibs[name] = libSpec{
		used:     cfg.UsedBytes,
		unused:   cfg.UnusedBytes,
		comdat:   cfg.ComdatBytes,
		provides: clone(cfg.Provides),
		needs:    clone(cfg.Needs),
		deps:     clone(cfg.Deps),
		platform: cfg.Platform,
		isApp:    cfg.App,
	}
	return nil
}

// registeredLibs snapshots the run-time registered libraries in sorted
// order for deterministic catalog construction.
func registeredLibs() []struct {
	name string
	spec libSpec
} {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(extraLibs))
	for n := range extraLibs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]struct {
		name string
		spec libSpec
	}, len(names))
	for i, n := range names {
		out[i] = struct {
			name string
			spec libSpec
		}{n, extraLibs[n]}
	}
	return out
}
