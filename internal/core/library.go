// Package core implements the paper's primary contribution: the
// micro-library model and the Kconfig-based build system that composes
// micro-libraries into specialized unikernel images (§3).
//
// Every OS primitive is a stand-alone micro-library with explicit
// provided APIs and dependencies; APIs are micro-libraries themselves,
// so a build can swap any provider (five allocators behind ukalloc, two
// schedulers behind uksched, two libc flavors, ...). The catalog in this
// package mirrors the library set of the paper's Figures 2-4, and its
// symbol tables are calibrated so the linker in internal/ukbuild
// reproduces the Figure 8 image sizes.
package core

import (
	"fmt"
	"sort"
)

// SymKind classifies a symbol for link-time treatment.
type SymKind int

// Symbol kinds.
const (
	// SymUsed code/data referenced from the image entry closure.
	SymUsed SymKind = iota
	// SymUnused is static-library baggage never referenced (removed by
	// dead code elimination, i.e. --gc-sections).
	SymUnused
	// SymComdat is an out-of-line copy of an inline helper that every
	// call site actually inlines: LTO proves it unreferenced and drops
	// it; section GC (DCE) also removes it. Only a default link keeps
	// it.
	SymComdat
)

// Symbol is one linker-visible code/data unit.
type Symbol struct {
	Name string
	Size int
	Kind SymKind
	// Refs are names of symbols this one references (the call graph
	// edges that reachability-based DCE walks).
	Refs []string
}

// Library is one micro-library.
type Library struct {
	// Name is the Kconfig-level identifier (e.g. "ukallocbuddy").
	Name string
	// Provides lists API names this library implements ("ukalloc",
	// "uksched", "libc", ...). Libraries providing the same API are
	// interchangeable (§3: "All micro-libraries that implement the same
	// API are interchangeable").
	Provides []string
	// Needs lists APIs that must be satisfied by some selected provider.
	Needs []string
	// Deps are hard library dependencies (always linked in).
	Deps []string
	// Platform restricts the library to one platform ("" = generic).
	Platform string
	// IsApp marks application libraries.
	IsApp bool
	// Symbols is the library's object contents.
	Symbols []Symbol
}

// Size sums all symbol sizes (the default-link contribution).
func (l *Library) Size() int {
	t := 0
	for _, s := range l.Symbols {
		t += s.Size
	}
	return t
}

// SizeOf sums symbols of one kind.
func (l *Library) SizeOf(kind SymKind) int {
	t := 0
	for _, s := range l.Symbols {
		if s.Kind == kind {
			t += s.Size
		}
	}
	return t
}

// EntrySymbol returns the library's root symbol name (the constructor /
// API entry the image references).
func (l *Library) EntrySymbol() string { return l.Name + ".init" }

// Catalog is a set of registered libraries.
type Catalog struct {
	libs map[string]*Library
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{libs: map[string]*Library{}} }

// Add registers a library; duplicate names are a configuration bug.
func (c *Catalog) Add(l *Library) {
	if _, dup := c.libs[l.Name]; dup {
		panic("core: duplicate library " + l.Name)
	}
	c.libs[l.Name] = l
}

// Get returns a library by name.
func (c *Catalog) Get(name string) (*Library, bool) {
	l, ok := c.libs[name]
	return l, ok
}

// Names lists registered libraries, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.libs))
	for n := range c.libs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Providers lists libraries providing an API, sorted.
func (c *Catalog) Providers(api string) []*Library {
	var out []*Library
	for _, l := range c.libs {
		for _, p := range l.Provides {
			if p == api {
				out = append(out, l)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Closure resolves the transitive dependency set for the given root
// libraries under a selection of API providers. It verifies that every
// needed API is satisfied by exactly one selected provider and returns
// the closure sorted by name.
func (c *Catalog) Closure(roots []string, providers map[string]string) ([]*Library, error) {
	seen := map[string]bool{}
	var order []string
	var visit func(name string) error
	visit = func(name string) error {
		if seen[name] {
			return nil
		}
		lib, ok := c.libs[name]
		if !ok {
			return fmt.Errorf("core: unknown library %q", name)
		}
		seen[name] = true
		order = append(order, name)
		for _, dep := range lib.Deps {
			if err := visit(dep); err != nil {
				return fmt.Errorf("%s -> %w", name, err)
			}
		}
		for _, api := range lib.Needs {
			prov, ok := providers[api]
			if !ok {
				avail := c.Providers(api)
				if len(avail) == 1 {
					prov = avail[0].Name // unambiguous default
				} else {
					names := make([]string, len(avail))
					for i, a := range avail {
						names[i] = a.Name
					}
					return fmt.Errorf("core: %s needs API %q: choose one of %v", name, api, names)
				}
			}
			p, ok := c.libs[prov]
			if !ok {
				return fmt.Errorf("core: provider %q for API %q not in catalog", prov, api)
			}
			if !provides(p, api) {
				return fmt.Errorf("core: %q does not provide API %q", prov, api)
			}
			if err := visit(prov); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := visit(r); err != nil {
			return nil, err
		}
	}
	sort.Strings(order)
	out := make([]*Library, len(order))
	for i, n := range order {
		out[i] = c.libs[n]
	}
	return out, nil
}

func provides(l *Library, api string) bool {
	for _, p := range l.Provides {
		if p == api {
			return true
		}
	}
	return false
}
