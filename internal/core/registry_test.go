package core

import (
	"sort"
	"strings"
	"testing"
)

func TestAppsSortedDeterministic(t *testing.T) {
	names := AppNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("AppNames() not sorted: %v", names)
	}
	for i := 0; i < 3; i++ {
		if got := strings.Join(AppNames(), ","); got != strings.Join(names, ",") {
			t.Fatalf("AppNames() unstable: %v vs %v", got, names)
		}
	}
	apps := Apps()
	for i := 1; i < len(apps); i++ {
		if apps[i-1].Name >= apps[i].Name {
			t.Errorf("Apps() not sorted at %d: %s >= %s", i, apps[i-1].Name, apps[i].Name)
		}
	}
}

func TestRegisterAppValidation(t *testing.T) {
	if err := RegisterApp(AppProfile{}); err == nil {
		t.Error("nameless profile registered")
	}
	if err := RegisterApp(AppProfile{Name: "noprofile-lib"}); err == nil {
		t.Error("libless profile registered")
	}
	if err := RegisterApp(AppProfile{Name: "ghost", Lib: "app-ghost"}); err == nil {
		t.Error("profile with unknown library registered")
	}
	if err := RegisterApp(AppProfile{Name: "nginx", Lib: "app-nginx"}); err == nil {
		t.Error("duplicate of built-in app registered")
	}
}

func TestRegisterLibraryValidation(t *testing.T) {
	if err := RegisterLibrary("", LibraryConfig{UsedBytes: 1}); err == nil {
		t.Error("nameless library registered")
	}
	if err := RegisterLibrary("app-empty", LibraryConfig{}); err == nil {
		t.Error("zero-size library registered")
	}
	if err := RegisterLibrary("lwip", LibraryConfig{UsedBytes: 1}); err == nil {
		t.Error("built-in name shadowed")
	}
}

// register tolerates "already registered" so the test is idempotent
// under -count=N (the registry is process-global).
func register(t *testing.T, err error) {
	t.Helper()
	if err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
}

func TestRegisterCustomAppInCatalog(t *testing.T) {
	register(t, RegisterLibrary("app-regtest", LibraryConfig{
		UsedBytes: 8 << 10, UnusedBytes: 4 << 10, App: true,
		Needs: []string{"libc"},
		Deps:  []string{"ukboot"},
	}))
	if err := RegisterLibrary("app-regtest", LibraryConfig{UsedBytes: 1}); err == nil {
		t.Error("duplicate custom library registered")
	}
	register(t, RegisterApp(AppProfile{Name: "regtest", Lib: "app-regtest"}))
	p, ok := AppByName("regtest")
	if !ok {
		t.Fatal("registered app not found")
	}
	// Empty libc/allocator defaulted.
	if p.Libc != "nolibc" || p.Allocator != "ukalloctlsf" {
		t.Errorf("defaults not applied: %+v", p)
	}
	// The library lands in freshly built catalogs and resolves a closure.
	c := DefaultCatalog()
	if _, ok := c.Get("app-regtest"); !ok {
		t.Fatal("registered library missing from DefaultCatalog")
	}
	closure, err := c.Closure([]string{p.Lib}, map[string]string{
		"libc": p.Libc, "ukalloc": p.Allocator, "plat": "plat-kvm",
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range closure {
		if l.Name == "app-regtest" {
			found = l.IsApp
		}
	}
	if !found {
		t.Errorf("closure %v missing app-regtest app library", len(closure))
	}
}
