package core

import (
	"strings"
	"testing"
)

func TestCatalogCalibration(t *testing.T) {
	c := DefaultCatalog()
	// Every spec'd library present, symbol totals match the spec.
	for name, sp := range specs {
		lib, ok := c.Get(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if got := lib.SizeOf(SymUsed); got != sp.used {
			t.Errorf("%s used = %d, want %d", name, got, sp.used)
		}
		if got := lib.SizeOf(SymUnused); got != sp.unused {
			t.Errorf("%s unused = %d, want %d", name, got, sp.unused)
		}
		if got := lib.SizeOf(SymComdat); got != sp.comdat {
			t.Errorf("%s comdat = %d, want %d", name, got, sp.comdat)
		}
		if lib.Size() != sp.used+sp.unused+sp.comdat {
			t.Errorf("%s total mismatch", name)
		}
	}
}

// TestUsedChainReachable: every used symbol is reachable from the
// library entry via refs (the invariant DCE relies on).
func TestUsedChainReachable(t *testing.T) {
	c := DefaultCatalog()
	for _, name := range c.Names() {
		lib, _ := c.Get(name)
		byName := map[string]Symbol{}
		for _, s := range lib.Symbols {
			byName[s.Name] = s
		}
		reached := map[string]bool{}
		queue := []string{lib.EntrySymbol()}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			if reached[n] {
				continue
			}
			reached[n] = true
			queue = append(queue, byName[n].Refs...)
		}
		for _, s := range lib.Symbols {
			if s.Kind == SymUsed && !reached[s.Name] {
				t.Fatalf("%s: used symbol %s unreachable from entry", name, s.Name)
			}
			if s.Kind != SymUsed && reached[s.Name] {
				t.Fatalf("%s: kind-%d symbol %s reachable", name, int(s.Kind), s.Name)
			}
		}
	}
}

func TestClosureDefaults(t *testing.T) {
	c := DefaultCatalog()
	// Ambiguous API without explicit provider fails with a helpful error.
	_, err := c.Closure([]string{"ukboot"}, map[string]string{"plat": "plat-kvm"})
	if err == nil || !strings.Contains(err.Error(), "ukalloc") {
		t.Fatalf("ambiguous ukalloc err = %v", err)
	}
	// Fully specified succeeds.
	libs, err := c.Closure([]string{"ukboot"}, map[string]string{
		"plat": "plat-kvm", "ukalloc": "ukalloctlsf",
	})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, l := range libs {
		names[l.Name] = true
	}
	for _, want := range []string{"ukboot", "ukargparse", "plat-kvm", "ukalloctlsf", "ukalloc"} {
		if !names[want] {
			t.Errorf("closure missing %s: %v", want, names)
		}
	}
	// Wrong provider for an API is rejected.
	if _, err := c.Closure([]string{"ukboot"}, map[string]string{
		"plat": "plat-kvm", "ukalloc": "musl",
	}); err == nil {
		t.Error("musl accepted as ukalloc provider")
	}
	// Unknown root.
	if _, err := c.Closure([]string{"no-such-lib"}, nil); err == nil {
		t.Error("unknown root accepted")
	}
}

func TestProviders(t *testing.T) {
	c := DefaultCatalog()
	allocs := c.Providers("ukalloc")
	if len(allocs) != 5 {
		t.Fatalf("ukalloc providers = %d, want the 5 backends (buddy/tlsf/tiny/mimalloc/boot)", len(allocs))
	}
	scheds := c.Providers("uksched")
	if len(scheds) != 2 {
		t.Fatalf("uksched providers = %d", len(scheds))
	}
	libcs := c.Providers("libc")
	if len(libcs) != 3 {
		t.Fatalf("libc providers = %d", len(libcs))
	}
}

func TestKconfigMenu(t *testing.T) {
	m := DefaultMenu(DefaultCatalog())
	cfg := m.NewConfig()
	// Defaults applied.
	if cfg.Choice("PLAT") != "plat-kvm" || cfg.Int("HEAP_MB") != 64 {
		t.Fatalf("defaults: %v / %d", cfg.Choice("PLAT"), cfg.Int("HEAP_MB"))
	}
	// Type checking.
	if err := cfg.Set("LTO", "yes"); err == nil {
		t.Error("string accepted for bool option")
	}
	if err := cfg.Set("LTO", true); err != nil {
		t.Error(err)
	}
	if err := cfg.Set("ALLOC", "not-an-allocator"); err == nil {
		t.Error("invalid choice accepted")
	}
	if err := cfg.Set("ALLOC", "ukallocmim"); err != nil {
		t.Error(err)
	}
	if err := cfg.Set("NO_SUCH_OPTION", 1); err == nil {
		t.Error("unknown option accepted")
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}

func TestKconfigDependencies(t *testing.T) {
	m := NewMenu()
	m.Add(&Option{Name: "NET", Type: BoolOption, Default: false})
	m.Add(&Option{Name: "NET_POLLING", Type: BoolOption, DependsOn: []string{"NET"}})
	cfg := m.NewConfig()
	if err := cfg.Set("NET_POLLING", true); err == nil {
		t.Fatal("dependent option set while dependency disabled")
	}
	if err := cfg.Set("NET", true); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Set("NET_POLLING", true); err != nil {
		t.Fatal(err)
	}
	// Disabling the dependency afterwards is caught by Validate.
	if err := cfg.Set("NET", false); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate missed a broken dependency")
	}
}

func TestAppProfiles(t *testing.T) {
	if len(Apps()) < 6 {
		t.Fatalf("apps = %d", len(Apps()))
	}
	for _, a := range Apps() {
		if _, ok := AppByName(a.Name); !ok {
			t.Errorf("AppByName(%s) failed", a.Name)
		}
		c := DefaultCatalog()
		if _, ok := c.Get(a.Lib); !ok {
			t.Errorf("%s references missing lib %s", a.Name, a.Lib)
		}
	}
	if _, ok := AppByName("nope"); ok {
		t.Error("AppByName accepted garbage")
	}
}
