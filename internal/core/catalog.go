package core

import (
	"fmt"
	"sort"
)

// This file builds the default Unikraft micro-library catalog with
// symbol tables calibrated against the paper's image-size measurements.
//
// Calibration (Fig 8, bytes are KB unless noted):
//
//	            default   +LTO    +DCE   +DCE+LTO
//	helloworld   256.7    256.7   192.7   192.7
//	nginx       1600     1200     832.8   832.8
//	redis       1800     1400    1100    1100
//	sqlite      1600     1300     832.8   832.8
//
// The identities DCE+LTO == DCE and (hello) LTO == default pin the
// model: SymComdat bytes are removed by either LTO or DCE, SymUnused
// bytes only by DCE, and the hello closure contains no comdats.

// libSpec is the calibration row for one library: bytes of used,
// unused (DCE-removable) and comdat (LTO- or DCE-removable) code.
type libSpec struct {
	used, unused, comdat  int // bytes
	provides, needs, deps []string
	platform              string
	isApp                 bool
}

const kb = 1024

// specs lists the calibrated catalog. Shared-library splits were chosen
// so every app closure sums exactly to the Fig 8 column values (see the
// tests).
var specs = map[string]libSpec{
	// Platform libraries (API "plat").
	"plat-kvm":    {used: 120 * kb, unused: 30 * kb, provides: []string{"plat"}, platform: "kvm"},
	"plat-xen":    {used: 22 * kb, unused: 6 * kb, provides: []string{"plat"}, platform: "xen"},
	"plat-linuxu": {used: 90 * kb, unused: 20 * kb, provides: []string{"plat"}, platform: "linuxu"},
	"plat-solo5":  {used: 58 * kb, unused: 12 * kb, provides: []string{"plat"}, platform: "solo5"},

	// libc layer (API "libc").
	"nolibc": {used: 12 * kb, unused: 16 * kb, provides: []string{"libc"}},
	"musl":   {used: 180 * kb, unused: 70 * kb, comdat: 100 * kb, provides: []string{"libc"}, deps: []string{"syscall-shim"}},
	"newlib": {used: 230 * kb, unused: 90 * kb, comdat: 110 * kb, provides: []string{"libc"}, deps: []string{"syscall-shim"}},

	// Boot & misc core.
	"ukboot":     {used: 25 * kb, unused: 10 * kb, needs: []string{"plat", "ukalloc"}, deps: []string{"ukargparse"}},
	"ukargparse": {used: 5 * kb},
	"ukdebug":    {used: 10 * kb, unused: 5 * kb},
	"uktime":     {used: 10 * kb, unused: 5 * kb},
	"uklock":     {used: 8 * kb, unused: 5 * kb},

	// Memory allocation (API "ukalloc" + backends).
	"ukalloc":      {used: 12 * kb, unused: 4 * kb, provides: []string{"ukalloc-api"}},
	"ukallocbuddy": {used: 15 * kb, unused: 4 * kb, provides: []string{"ukalloc"}, deps: []string{"ukalloc"}},
	"ukalloctlsf":  {used: 18 * kb, unused: 4 * kb, provides: []string{"ukalloc"}, deps: []string{"ukalloc"}},
	"ukalloctiny":  {used: 6 * kb, unused: 2 * kb, provides: []string{"ukalloc"}, deps: []string{"ukalloc"}},
	"ukallocmim":   {used: 48 * kb, unused: 10 * kb, provides: []string{"ukalloc"}, deps: []string{"ukalloc", "uksched"}},
	"ukallocboot":  {used: 3 * kb, unused: 1 * kb, provides: []string{"ukalloc"}, deps: []string{"ukalloc"}},

	// Scheduling (API "uksched" + policies).
	"uksched":        {used: 12 * kb, unused: 10 * kb, comdat: 20 * kb, provides: []string{"uksched-api"}},
	"ukschedcoop":    {used: 8 * kb, unused: 5 * kb, provides: []string{"uksched"}, deps: []string{"uksched"}},
	"ukschedpreempt": {used: 11 * kb, unused: 5 * kb, provides: []string{"uksched"}, deps: []string{"uksched"}},

	// POSIX layer.
	"syscall-shim":  {used: 20 * kb, unused: 5 * kb},
	"posix-fdtab":   {used: 15 * kb, unused: 5 * kb, needs: []string{"vfs"}},
	"posix-process": {used: 10 * kb, unused: 5 * kb},
	"posix-socket":  {used: 20 * kb, unused: 10 * kb, comdat: 20 * kb, needs: []string{"netstack"}},

	// Filesystems (API "vfs" and implementations).
	"vfscore": {used: 35 * kb, unused: 12 * kb, comdat: 30 * kb, provides: []string{"vfs"}},
	"ramfs":   {used: 15 * kb, unused: 5 * kb, provides: []string{"rootfs"}, deps: []string{"vfscore"}},
	"9pfs":    {used: 25 * kb, unused: 8 * kb, provides: []string{"rootfs"}, deps: []string{"vfscore"}},
	"shfs":    {used: 12 * kb, unused: 2 * kb},

	// Networking.
	"uknetdev":   {used: 30 * kb, unused: 10 * kb, provides: []string{"netdev"}},
	"virtio-net": {used: 22 * kb, unused: 6 * kb, deps: []string{"uknetdev"}, platform: "kvm"},
	"netfront":   {used: 20 * kb, unused: 6 * kb, deps: []string{"uknetdev"}, platform: "xen"},
	"lwip":       {used: 150 * kb, unused: 40 * kb, comdat: 80 * kb, provides: []string{"netstack"}, needs: []string{"netdev"}, deps: []string{"uktime"}},
	"mtcp":       {used: 180 * kb, unused: 30 * kb, comdat: 40 * kb, provides: []string{"netstack"}, needs: []string{"netdev"}},

	// Applications. The app residuals absorb per-image calibration (see
	// package comment).
	"app-helloworld": {used: 3788, isApp: true, needs: []string{"libc"}, deps: []string{"ukboot"}},
	"app-nginx": {used: 135987, unused: 130252, comdat: 150 * kb, isApp: true,
		needs: []string{"libc", "uksched", "ukalloc"},
		deps:  []string{"posix-socket", "posix-fdtab", "posix-process", "vfscore", "ramfs", "lwip", "uklock", "uktime", "ukdebug", "ukboot"}},
	"app-redis": {used: 409600, unused: 61440, comdat: 150 * kb, isApp: true,
		needs: []string{"libc", "uksched", "ukalloc"},
		deps:  []string{"posix-socket", "posix-fdtab", "posix-process", "vfscore", "ramfs", "lwip", "uklock", "uktime", "ukdebug", "ukboot"}},
	"app-sqlite": {used: 340787, unused: 294093, comdat: 150 * kb, isApp: true,
		needs: []string{"libc", "uksched", "ukalloc"},
		deps:  []string{"posix-fdtab", "posix-process", "vfscore", "ramfs", "uklock", "uktime", "ukdebug", "ukboot"}},
	"app-webcache": {used: 40 * kb, unused: 8 * kb, isApp: true,
		needs: []string{"libc", "ukalloc"},
		deps:  []string{"shfs", "lwip", "ukboot", "uktime"}},
	"app-udpkv": {used: 20 * kb, unused: 4 * kb, isApp: true,
		needs: []string{"libc", "ukalloc"},
		deps:  []string{"uknetdev", "ukboot"}},
}

// symbolChunk is the granularity synthetic symbols are generated at.
const symbolChunk = 2048

// DefaultCatalog builds the calibrated catalog plus any libraries added
// via RegisterLibrary. Symbol tables are synthesized deterministically:
// used symbols form a reference chain rooted at the library's entry
// symbol, unused and comdat symbols are unreferenced. Libraries are
// added in sorted name order so catalogs are identical across runs.
func DefaultCatalog() *Catalog {
	c := NewCatalog()
	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c.Add(buildLibrary(name, specs[name]))
	}
	for _, l := range registeredLibs() {
		c.Add(buildLibrary(l.name, l.spec))
	}
	return c
}

func buildLibrary(name string, sp libSpec) *Library {
	l := &Library{
		Name:     name,
		Provides: sp.provides,
		Needs:    sp.needs,
		Deps:     sp.deps,
		Platform: sp.platform,
		IsApp:    sp.isApp,
	}
	// Used symbols: entry -> chain so they are reachable exactly when
	// the entry is referenced.
	chunks := func(total int) []int {
		var out []int
		for total > 0 {
			n := symbolChunk
			if total < n {
				n = total
			}
			out = append(out, n)
			total -= n
		}
		return out
	}
	prev := ""
	for i, size := range chunks(sp.used) {
		sym := Symbol{Size: size, Kind: SymUsed}
		if i == 0 {
			sym.Name = l.EntrySymbol()
		} else {
			sym.Name = fmt.Sprintf("%s.fn%d", name, i)
			// Chain from the previous symbol so reachability holds.
		}
		if prev != "" {
			// Append a forward ref from the previous symbol.
			l.Symbols[len(l.Symbols)-1].Refs = append(l.Symbols[len(l.Symbols)-1].Refs, sym.Name)
		}
		l.Symbols = append(l.Symbols, sym)
		prev = sym.Name
	}
	for i, size := range chunks(sp.unused) {
		l.Symbols = append(l.Symbols, Symbol{
			Name: fmt.Sprintf("%s.unused%d", name, i), Size: size, Kind: SymUnused,
		})
	}
	for i, size := range chunks(sp.comdat) {
		l.Symbols = append(l.Symbols, Symbol{
			Name: fmt.Sprintf("cmdt.inline%d.%s", i, name), Size: size, Kind: SymComdat,
		})
	}
	return l
}

// AppProfile describes a buildable application target.
type AppProfile struct {
	Name      string
	Lib       string
	Libc      string // default libc provider
	Allocator string // default ukalloc provider
	Scheduler string // default uksched provider ("" = none)
	NICs      int
}

// DefaultMenu builds the Kconfig menu for the catalog: a platform
// choice, API provider choices, and per-feature bools.
func DefaultMenu(c *Catalog) *Menu {
	m := NewMenu()
	m.Add(&Option{Name: "PLAT", Type: ChoiceOption, Default: "plat-kvm",
		Choices: []string{"plat-kvm", "plat-xen", "plat-solo5", "plat-linuxu"},
		Help:    "target platform"})
	m.Add(&Option{Name: "LIBC", Type: ChoiceOption, Default: "nolibc",
		Choices: []string{"nolibc", "musl", "newlib"},
		Help:    "C library"})
	m.Add(&Option{Name: "ALLOC", Type: ChoiceOption, Default: "ukallocbuddy",
		Choices: []string{"ukallocbuddy", "ukalloctlsf", "ukalloctiny", "ukallocmim", "ukallocboot"},
		Help:    "ukalloc backend"})
	m.Add(&Option{Name: "SCHED", Type: ChoiceOption, Default: "ukschedcoop",
		Choices: []string{"ukschedcoop", "ukschedpreempt", "none"},
		Help:    "uksched policy (none = run-to-completion)"})
	m.Add(&Option{Name: "NETSTACK", Type: ChoiceOption, Default: "lwip",
		Choices: []string{"lwip", "mtcp", "none"},
		Help:    "network stack provider"})
	m.Add(&Option{Name: "LTO", Type: BoolOption, Default: false, Help: "link-time optimization"})
	m.Add(&Option{Name: "DCE", Type: BoolOption, Default: false, Help: "dead code elimination (--gc-sections)"})
	m.Add(&Option{Name: "HEAP_MB", Type: IntOption, Default: 64, Help: "guest heap size"})
	return m
}
