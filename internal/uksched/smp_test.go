package uksched

import (
	"testing"

	"unikraft/internal/sim"
)

func newSMP(n int) (*SMP, []*sim.Machine) {
	ms := make([]*sim.Machine, n)
	for i := range ms {
		ms[i] = sim.NewMachine()
	}
	return NewSMP(Cooperative, ms), ms
}

// A 1-core SMP group must behave exactly like the plain Scheduler: same
// execution order, same cycle count.
func TestSMPOneCoreMatchesScheduler(t *testing.T) {
	work := func(spawn func(name string, fn func(*Thread))) {
		for i := 0; i < 4; i++ {
			spawn("w", func(th *Thread) {
				for r := 0; r < 3; r++ {
					th.Charge(1000)
					th.Yield()
				}
			})
		}
	}

	m1 := sim.NewMachine()
	plain := New(Cooperative, m1)
	defer plain.Shutdown()
	work(func(name string, fn func(*Thread)) { plain.NewThread(name, fn) })
	plain.Run()

	smp, ms := newSMP(1)
	defer smp.Shutdown()
	work(func(name string, fn func(*Thread)) { smp.NewThread(0, name, fn) })
	smp.Run()

	if got, want := ms[0].CPU.Cycles(), m1.CPU.Cycles(); got != want {
		t.Fatalf("1-core SMP spent %d cycles, plain Scheduler %d", got, want)
	}
	if smp.Steals != 0 {
		t.Fatalf("1-core SMP stole %d threads", smp.Steals)
	}
}

// Two identical SMP runs must produce identical per-core cycle counts
// and steal counters.
func TestSMPDeterminism(t *testing.T) {
	run := func() ([]uint64, uint64) {
		smp, ms := newSMP(4)
		defer smp.Shutdown()
		// Skewed load: everything lands on core 0.
		for i := 0; i < 16; i++ {
			smp.NewThread(0, "w", func(th *Thread) {
				for r := 0; r < 4; r++ {
					th.Charge(5000)
					th.Yield()
				}
			})
		}
		smp.Run()
		cycles := make([]uint64, len(ms))
		for i, m := range ms {
			cycles[i] = m.CPU.Cycles()
		}
		return cycles, smp.Steals
	}
	c1, s1 := run()
	c2, s2 := run()
	if s1 != s2 {
		t.Fatalf("steal counts differ across identical runs: %d vs %d", s1, s2)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("core %d cycles differ across identical runs: %d vs %d", i, c1[i], c2[i])
		}
	}
}

// Work stealing must spread a skewed load: threads all created on core
// 0 end up running on other cores too, and every core's clock advances.
func TestSMPStealingBalancesSkew(t *testing.T) {
	smp, ms := newSMP(4)
	defer smp.Shutdown()
	ran := make([]int, 4)
	for i := 0; i < 32; i++ {
		smp.NewThread(0, "w", func(th *Thread) {
			for r := 0; r < 8; r++ {
				th.Charge(10_000)
				th.Yield()
			}
		})
	}
	// Record which core each dispatch lands on via the thread's current
	// scheduler home after Run: instead, count per-core work by clock.
	if blocked := smp.Run(); blocked != 0 {
		t.Fatalf("Run left %d blocked threads", blocked)
	}
	if smp.Steals == 0 {
		t.Fatal("no steals on a fully skewed load")
	}
	for i, m := range ms {
		if m.CPU.Cycles() == 0 {
			t.Fatalf("core %d did no work (cycles=0); steals=%d stolenTo=%v ran=%v",
				i, smp.Steals, smp.StolenTo, ran)
		}
	}
}

// With stealing disabled, threads stay pinned: only the creation core's
// clock advances.
func TestSMPStealingDisabledPins(t *testing.T) {
	smp, ms := newSMP(4)
	defer smp.Shutdown()
	smp.SetStealing(false)
	for i := 0; i < 8; i++ {
		smp.NewThread(1, "w", func(th *Thread) { th.Charge(1000) })
	}
	smp.Run()
	if smp.Steals != 0 {
		t.Fatalf("stealing disabled but Steals = %d", smp.Steals)
	}
	for i, m := range ms {
		if i == 1 {
			if m.CPU.Cycles() == 0 {
				t.Fatal("home core did no work")
			}
			continue
		}
		if m.CPU.Cycles() != 0 {
			t.Fatalf("core %d advanced %d cycles with stealing off", i, m.CPU.Cycles())
		}
	}
}

// Lone runnable threads are never stolen (migration would just move the
// imbalance).
func TestSMPNoStealOfLoneThread(t *testing.T) {
	smp, _ := newSMP(2)
	defer smp.Shutdown()
	smp.NewThread(0, "only", func(th *Thread) {
		for r := 0; r < 4; r++ {
			th.Charge(1000)
			th.Yield()
		}
	})
	smp.Run()
	if smp.Steals != 0 {
		t.Fatalf("stole a lone thread: Steals = %d", smp.Steals)
	}
}

// Sleepers on different cores advance their own clocks independently.
func TestSMPPerCoreSleep(t *testing.T) {
	smp, ms := newSMP(2)
	defer smp.Shutdown()
	smp.NewThread(0, "short", func(th *Thread) { th.Sleep(1_000_000) })
	smp.NewThread(1, "long", func(th *Thread) { th.Sleep(5_000_000) })
	if blocked := smp.Run(); blocked != 0 {
		t.Fatalf("Run left %d blocked threads", blocked)
	}
	if ms[0].CPU.Cycles() < 1_000_000 {
		t.Fatalf("core 0 advanced only %d cycles", ms[0].CPU.Cycles())
	}
	if ms[1].CPU.Cycles() < 5_000_000 {
		t.Fatalf("core 1 advanced only %d cycles", ms[1].CPU.Cycles())
	}
	if ms[0].CPU.Cycles() >= ms[1].CPU.Cycles() {
		t.Fatalf("per-core clocks not independent: core0=%d core1=%d",
			ms[0].CPU.Cycles(), ms[1].CPU.Cycles())
	}
}

// Blocked threads are reported across cores and Shutdown unwinds them
// all, wherever stealing left them.
func TestSMPShutdownAfterSteals(t *testing.T) {
	smp, _ := newSMP(3)
	var wq WaitQueue
	for i := 0; i < 6; i++ {
		smp.NewThread(0, "mix", func(th *Thread) {
			th.Charge(1000)
			th.Yield()
			wq.Wait(th)
		})
	}
	if blocked := smp.Run(); blocked != 6 {
		t.Fatalf("blocked = %d, want 6", blocked)
	}
	if smp.LiveThreads() != 6 {
		t.Fatalf("LiveThreads = %d, want 6", smp.LiveThreads())
	}
	smp.Shutdown() // must not hang or panic, even with migrated threads
	smp.Shutdown() // idempotent
	if smp.LiveThreads() != 0 {
		t.Fatalf("LiveThreads after Shutdown = %d", smp.LiveThreads())
	}
}

// Steal accounting: the thief pays StealCycles, the victim pays
// nothing for the migration.
func TestSMPStealCharge(t *testing.T) {
	smp, ms := newSMP(2)
	defer smp.Shutdown()
	// Three no-op threads on core 0: the first dispatch round runs one
	// on core 0, leaving two runnable — enough for idle core 1 to steal
	// (a lone thread is never migrated).
	smp.NewThread(0, "a", func(th *Thread) {})
	smp.NewThread(0, "b", func(th *Thread) {})
	smp.NewThread(0, "c", func(th *Thread) {})
	smp.Run()
	if smp.Steals != 1 {
		t.Fatalf("Steals = %d, want 1", smp.Steals)
	}
	if smp.StolenTo[1] != 1 {
		t.Fatalf("StolenTo = %v, want core 1 to have stolen once", smp.StolenTo)
	}
	if ms[1].CPU.Cycles() < StealCycles {
		t.Fatalf("thief charged %d cycles, want >= StealCycles (%d)", ms[1].CPU.Cycles(), StealCycles)
	}
}
