package uksched

// WaitQueue parks threads waiting for a condition, the primitive under
// uklock's mutexes/semaphores and the netstack's blocking socket
// operations (the paper's uknetdev interrupt callback "could be used to
// unblock a receiving or sending thread", §3.1).
type WaitQueue struct {
	waiters []*Thread
}

// Wait parks t until WakeOne/WakeAll selects it. Must be called by t
// itself.
func (wq *WaitQueue) Wait(t *Thread) {
	wq.waiters = append(wq.waiters, t)
	t.block()
}

// WaitFor parks t repeatedly until cond() holds. The condition is
// re-checked after every wake-up, making it safe against spurious or
// broadcast wake-ups (condition-variable semantics).
func (wq *WaitQueue) WaitFor(t *Thread, cond func() bool) {
	for !cond() {
		wq.Wait(t)
	}
}

// WakeOne makes the oldest waiter runnable. Returns false if none waited.
func (wq *WaitQueue) WakeOne() bool {
	if len(wq.waiters) == 0 {
		return false
	}
	t := wq.waiters[0]
	wq.waiters = wq.waiters[1:]
	t.sched.wake(t)
	return true
}

// WakeAll makes every waiter runnable and returns how many there were.
func (wq *WaitQueue) WakeAll() int {
	n := len(wq.waiters)
	for _, t := range wq.waiters {
		t.sched.wake(t)
	}
	wq.waiters = wq.waiters[:0]
	return n
}

// Empty reports whether no thread is waiting.
func (wq *WaitQueue) Empty() bool { return len(wq.waiters) == 0 }

// Len reports the number of waiting threads.
func (wq *WaitQueue) Len() int { return len(wq.waiters) }
