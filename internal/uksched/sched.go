package uksched

import (
	"container/heap"
	"fmt"

	"unikraft/internal/sim"
)

// Policy selects the scheduling discipline for a Scheduler, the choice
// the paper's Kconfig menu exposes (ukschedcoop vs ukpreempt).
type Policy int

// Available policies.
const (
	// Cooperative runs each thread until it yields, blocks, sleeps or
	// exits (ukschedcoop). The paper selects this for Redis because it
	// "fits well with Redis's single threaded approach" (§5.3).
	Cooperative Policy = iota
	// Preemptive additionally charges a timer-interrupt context switch
	// whenever a thread exceeds its timeslice between yield points
	// (ukpreempt). Preemption happens at safe points — exactly how a
	// guest timer interrupt lands at the next instruction boundary.
	Preemptive
)

func (p Policy) String() string {
	if p == Cooperative {
		return "coop"
	}
	return "preempt"
}

// DefaultTimeslice is the preemptive policy's quantum: 10ms at 3.6GHz,
// the Linux CFS-ish default granularity magnitude.
const DefaultTimeslice = 36_000_000

// Scheduler multiplexes threads over one virtual CPU.
type Scheduler struct {
	policy    Policy
	machine   *sim.Machine
	timeslice uint64

	nextID   int
	threads  []*Thread
	runq     []*Thread
	sleepers sleepHeap

	current *Thread

	// Switches counts context switches, Preemptions the involuntary
	// ones (preemptive policy only).
	Switches    uint64
	Preemptions uint64

	shutdown bool
}

// New creates a scheduler with the given policy on the machine.
func New(policy Policy, m *sim.Machine) *Scheduler {
	return &Scheduler{policy: policy, machine: m, timeslice: DefaultTimeslice}
}

// Name returns the policy name, matching the micro-library naming in the
// paper's Figure 4 (ukschedcoop / ukpreempt).
func (s *Scheduler) Name() string { return "uksched" + s.policy.String() }

// Policy reports the scheduling discipline.
func (s *Scheduler) Policy() Policy { return s.policy }

// SetTimeslice overrides the preemption quantum (cycles).
func (s *Scheduler) SetTimeslice(cycles uint64) { s.timeslice = cycles }

// NewThread creates a thread that will run fn and queues it.
func (s *Scheduler) NewThread(name string, fn func(*Thread)) *Thread {
	if s.shutdown {
		panic("uksched: NewThread after Shutdown")
	}
	s.nextID++
	t := &Thread{
		ID:     s.nextID,
		Name:   name,
		fn:     fn,
		sched:  s,
		state:  StateReady,
		resume: make(chan bool),
		park:   make(chan parkMsg),
	}
	s.threads = append(s.threads, t)
	s.runq = append(s.runq, t)
	t.start()
	return t
}

// Current returns the running thread, or nil outside Run.
func (s *Scheduler) Current() *Thread { return s.current }

// wake moves a blocked thread back to the run queue. Wait queues call
// this; it is idempotent for already-runnable threads.
func (s *Scheduler) wake(t *Thread) {
	switch t.state {
	case StateBlocked, StateSleeping:
		t.state = StateReady
		s.runq = append(s.runq, t)
	}
}

// Run executes threads until the system is quiescent: no thread is
// runnable and no thread is sleeping (blocked threads may remain; they
// wait for external events such as packet arrival, after which the
// caller invokes Run again). It returns the number of threads still
// blocked.
func (s *Scheduler) Run() int {
	for {
		if len(s.runq) == 0 {
			// Virtual-time jump: if someone is sleeping, advance the
			// clock to the earliest deadline and wake the sleepers due.
			if s.sleepers.Len() == 0 {
				break
			}
			earliest := s.sleepers.peek().wakeAt
			if now := s.machine.CPU.Cycles(); earliest > now {
				s.machine.Charge(earliest - now)
			}
			s.wakeDueSleepers()
			continue
		}
		t := s.pick()
		s.dispatch(t)
		s.wakeDueSleepers()
	}
	blocked := 0
	for _, t := range s.threads {
		if t.state == StateBlocked {
			blocked++
		}
	}
	return blocked
}

// pick removes and returns the next runnable thread (FIFO round-robin
// for both policies; they differ in preemption accounting).
func (s *Scheduler) pick() *Thread {
	t := s.runq[0]
	s.runq = s.runq[1:]
	return t
}

// dispatch switches to t and processes its park message.
func (s *Scheduler) dispatch(t *Thread) {
	s.Switches++
	t.CtxSwitches++
	s.machine.Charge(s.machine.Costs.ContextSwitch)
	s.current = t
	t.state = StateRunning
	sliceStart := s.machine.CPU.Cycles()

	t.resume <- true
	msg := <-t.park
	s.current = nil

	if s.policy == Preemptive {
		// Charge timer interrupts for every expired quantum the thread
		// consumed before reaching this yield point. This is the
		// "jitter caused by a scheduler within the guest" the paper's
		// run-to-completion configurations avoid (§3.3).
		ran := s.machine.CPU.Cycles() - sliceStart
		for q := ran / s.timeslice; q > 0; q-- {
			s.Preemptions++
			s.machine.Charge(s.machine.Costs.ContextSwitch)
		}
	}

	switch msg.reason {
	case parkYield:
		s.runq = append(s.runq, t)
	case parkBlock:
		// Stays off the run queue until woken.
	case parkSleep:
		heap.Push(&s.sleepers, t)
	case parkExit:
		// Goroutine has finished.
	}
}

// wakeDueSleepers moves sleepers whose deadline has passed to the run
// queue.
func (s *Scheduler) wakeDueSleepers() {
	now := s.machine.CPU.Cycles()
	for s.sleepers.Len() > 0 && s.sleepers.peek().wakeAt <= now {
		t := heap.Pop(&s.sleepers).(*Thread)
		t.state = StateReady
		s.runq = append(s.runq, t)
	}
}

// Quiescent reports whether Run would return immediately.
func (s *Scheduler) Quiescent() bool {
	return len(s.runq) == 0 && s.sleepers.Len() == 0
}

// LiveThreads counts threads that have not exited.
func (s *Scheduler) LiveThreads() int {
	n := 0
	for _, t := range s.threads {
		if t.state != StateExited {
			n++
		}
	}
	return n
}

// Shutdown unwinds every non-exited thread's goroutine. The scheduler
// must be quiescent (not inside Run). It is safe to call multiple times.
func (s *Scheduler) Shutdown() {
	if s.shutdown {
		return
	}
	s.shutdown = true
	for _, t := range s.threads {
		if t.state == StateExited {
			continue
		}
		if t.state == StateRunning {
			panic(fmt.Sprintf("uksched: Shutdown with running %v", t))
		}
		t.resume <- false
		t.state = StateExited
	}
	s.runq = nil
	s.sleepers = nil
}

// sleepHeap orders sleeping threads by wake deadline.
type sleepHeap []*Thread

func (h sleepHeap) Len() int           { return len(h) }
func (h sleepHeap) Less(i, j int) bool { return h[i].wakeAt < h[j].wakeAt }
func (h sleepHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *sleepHeap) Push(x any)        { *h = append(*h, x.(*Thread)) }
func (h *sleepHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}
func (h sleepHeap) peek() *Thread { return h[0] }
