package uksched

import (
	"fmt"

	"unikraft/internal/sim"
)

// StealCycles is the price of migrating one thread between cores: the
// remote run-queue lock plus the cacheline/working-set migration the
// thief eats when it first touches the stolen thread's state. Charged
// to the stealing core.
const StealCycles = 900

// SMP multiplexes threads over N virtual CPUs. Each core is a complete
// single-core Scheduler — its own run queue, sleeper heap and machine
// (clock) — and idle cores steal runnable threads from busy ones, so
// skewed workloads (all flows hashing to one queue, one long-running
// handler) still keep every core busy.
//
// Determinism: exactly one thread runs at any moment. Run interleaves
// cores round-robin, one dispatch per core per round, and steal victims
// are scanned in a fixed order — so two SMP runs over the same threads
// produce identical per-core cycle counts and steal counts, and the
// whole structure is safe under the race detector without locks.
//
// A 1-core SMP behaves bit-identically to its underlying Scheduler:
// the round-robin loop degenerates to the single-core Run loop and no
// steal is ever possible.
type SMP struct {
	cores    []*Scheduler
	stealing bool

	// Steals counts threads migrated between cores; StolenTo counts
	// them per receiving core.
	Steals   uint64
	StolenTo []uint64
}

// NewSMP builds an N-core scheduler group, one core per machine, all
// running the same policy. Work stealing starts enabled.
func NewSMP(policy Policy, machines []*sim.Machine) *SMP {
	if len(machines) == 0 {
		panic("uksched: NewSMP with no machines")
	}
	cores := make([]*Scheduler, len(machines))
	for i, m := range machines {
		cores[i] = New(policy, m)
	}
	return &SMP{cores: cores, stealing: true, StolenTo: make([]uint64, len(machines))}
}

// Cores reports the core count.
func (s *SMP) Cores() int { return len(s.cores) }

// Core returns core i's Scheduler (its machine is Core(i).Machine()).
func (s *SMP) Core(i int) *Scheduler { return s.cores[i] }

// Machine returns core i's clock.
func (s *SMP) Machine(i int) *sim.Machine { return s.cores[i].machine }

// SetStealing toggles work stealing; disabling it pins every thread to
// its creation core (the with/without comparison in the smpscale
// experiment).
func (s *SMP) SetStealing(on bool) { s.stealing = on }

// NewThread creates a thread pinned initially to core's run queue; work
// stealing may migrate it later.
func (s *SMP) NewThread(core int, name string, fn func(*Thread)) *Thread {
	if core < 0 || core >= len(s.cores) {
		panic(fmt.Sprintf("uksched: NewThread on core %d of %d", core, len(s.cores)))
	}
	return s.cores[core].NewThread(name, fn)
}

// steal tries to move one runnable thread to idle core i, scanning
// victims in fixed order starting after i. It takes from the victim's
// run-queue tail (the coldest entry — FIFO order means the tail ran
// least recently), re-homes the thread and charges StealCycles to the
// thief. Returns true if a thread was stolen.
func (s *SMP) steal(i int) bool {
	n := len(s.cores)
	thief := s.cores[i]
	for off := 1; off < n; off++ {
		victim := s.cores[(i+off)%n]
		if len(victim.runq) < 2 {
			// Leave a lone runnable thread where it is: migrating the
			// victim's only work just moves the imbalance.
			continue
		}
		t := victim.runq[len(victim.runq)-1]
		victim.runq = victim.runq[:len(victim.runq)-1]
		t.sched = thief
		thief.runq = append(thief.runq, t)
		thief.machine.Charge(StealCycles)
		s.Steals++
		s.StolenTo[i]++
		return true
	}
	return false
}

// Run executes threads on all cores until the group is quiescent: no
// core has a runnable or sleeping thread (blocked threads may remain,
// exactly as in Scheduler.Run). It returns the number of threads still
// blocked across all cores.
func (s *SMP) Run() int {
	for {
		progress := false
		for i, c := range s.cores {
			if c.shutdown {
				continue
			}
			if len(c.runq) == 0 && s.stealing {
				s.steal(i)
			}
			if len(c.runq) == 0 {
				continue
			}
			t := c.pick()
			c.dispatch(t)
			c.wakeDueSleepers()
			progress = true
		}
		if progress {
			continue
		}
		// Every run queue is empty and nothing could be stolen. If any
		// core has sleepers, jump that core's clock to its earliest
		// deadline (cores advance independently — per-core virtual
		// time, like per-CPU tick stops) and go around again.
		jumped := false
		for _, c := range s.cores {
			if len(c.runq) > 0 || c.sleepers.Len() == 0 {
				continue
			}
			earliest := c.sleepers.peek().wakeAt
			if now := c.machine.CPU.Cycles(); earliest > now {
				c.machine.Charge(earliest - now)
			}
			c.wakeDueSleepers()
			jumped = true
		}
		if !jumped {
			break
		}
	}
	blocked := 0
	for _, c := range s.cores {
		for _, t := range c.threads {
			if t.state == StateBlocked {
				blocked++
			}
		}
	}
	return blocked
}

// Quiescent reports whether Run would return immediately.
func (s *SMP) Quiescent() bool {
	for _, c := range s.cores {
		if !c.Quiescent() {
			return false
		}
	}
	return true
}

// LiveThreads counts non-exited threads across all cores.
func (s *SMP) LiveThreads() int {
	n := 0
	for _, c := range s.cores {
		n += c.LiveThreads()
	}
	return n
}

// Shutdown unwinds every thread on every core. Each thread is killed by
// the core that created it (its home threads list), regardless of where
// stealing left it queued.
func (s *SMP) Shutdown() {
	for _, c := range s.cores {
		c.Shutdown()
	}
}
