// Package uksched is the scheduling API of the Unikraft reproduction
// (paper §3.3). Scheduling is available but optional: images can be built
// with no scheduler at all (run-to-completion event loops, the VNF case),
// with the cooperative scheduler, or with the preemptive scheduler.
//
// Threads are coroutines backed by goroutines with a strict handshake:
// exactly one thread (or the scheduler) runs at a time, so simulation
// state needs no locking and execution is fully deterministic. The
// scheduler also owns virtual time: when every thread is asleep, the
// clock jumps to the earliest deadline, which is how TCP retransmission
// timers and boot-time delays execute instantly in wall time.
package uksched

import (
	"fmt"
	"time"

	"unikraft/internal/sim"
)

// State is a thread's lifecycle state.
type State int

// Thread states.
const (
	StateReady State = iota
	StateRunning
	StateBlocked
	StateSleeping
	StateExited
)

var stateNames = [...]string{"ready", "running", "blocked", "sleeping", "exited"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// parkReason tells the scheduler why a thread handed control back.
type parkReason int

const (
	parkYield parkReason = iota
	parkBlock
	parkSleep
	parkExit
)

type parkMsg struct {
	reason   parkReason
	deadline uint64 // for parkSleep: absolute cycle count
}

// killed is the panic value used to unwind a thread's goroutine when its
// scheduler shuts down.
type killed struct{}

// Thread is a schedulable execution context.
type Thread struct {
	// ID is unique within one scheduler.
	ID int
	// Name is a diagnostic label.
	Name string

	state State
	fn    func(*Thread)
	sched *Scheduler

	resume chan bool    // scheduler -> thread; false means die
	park   chan parkMsg // thread -> scheduler

	wakeAt uint64 // valid when sleeping

	// CtxSwitches counts how many times this thread was switched in.
	CtxSwitches uint64
}

// State reports the thread's current state.
func (t *Thread) State() State { return t.state }

// Scheduler returns the owning scheduler.
func (t *Thread) Scheduler() *Scheduler { return t.sched }

// String implements fmt.Stringer.
func (t *Thread) String() string {
	return fmt.Sprintf("thread(%d:%s,%s)", t.ID, t.Name, t.state)
}

// start launches the thread's goroutine, parked until first resume.
func (t *Thread) start() {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killed); ok {
					return // scheduler shutdown
				}
				panic(r)
			}
		}()
		if !<-t.resume {
			panic(killed{})
		}
		t.fn(t)
		t.state = StateExited
		t.park <- parkMsg{reason: parkExit}
	}()
}

// handoff parks the current thread with the given message and waits to
// be resumed. Must be called from the thread's own goroutine.
func (t *Thread) handoff(m parkMsg) {
	t.park <- m
	if !<-t.resume {
		panic(killed{})
	}
}

// Yield voluntarily gives up the CPU; the thread stays runnable.
func (t *Thread) Yield() {
	t.state = StateReady
	t.handoff(parkMsg{reason: parkYield})
	t.state = StateRunning
}

// Block parks the thread until some other agent calls its scheduler's
// Wake. Callers normally use WaitQueue.Wait instead.
func (t *Thread) block() {
	t.state = StateBlocked
	t.handoff(parkMsg{reason: parkBlock})
	t.state = StateRunning
}

// Sleep parks the thread for d cycles of virtual time.
func (t *Thread) Sleep(cycles uint64) {
	t.state = StateSleeping
	t.wakeAt = t.sched.machine.CPU.Cycles() + cycles
	t.handoff(parkMsg{reason: parkSleep, deadline: t.wakeAt})
	t.state = StateRunning
}

// SleepDuration parks the thread for a wall-clock duration of virtual
// time.
func (t *Thread) SleepDuration(d time.Duration) {
	t.Sleep(t.sched.machine.CPU.ToCycles(d))
}

// Charge advances virtual time on behalf of this thread's work.
func (t *Thread) Charge(cycles uint64) { t.sched.machine.Charge(cycles) }

// Machine returns the simulated machine this thread runs on.
func (t *Thread) Machine() *sim.Machine { return t.sched.machine }
