package uksched

import (
	"testing"

	"unikraft/internal/sim"
)

func newSched(p Policy) *Scheduler {
	return New(p, sim.NewMachine())
}

func TestRoundRobinOrder(t *testing.T) {
	s := newSched(Cooperative)
	defer s.Shutdown()
	var order []int
	for i := 1; i <= 3; i++ {
		i := i
		s.NewThread("worker", func(th *Thread) {
			for round := 0; round < 3; round++ {
				order = append(order, i)
				th.Yield()
			}
		})
	}
	if blocked := s.Run(); blocked != 0 {
		t.Fatalf("Run left %d blocked threads", blocked)
	}
	want := []int{1, 2, 3, 1, 2, 3, 1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunToCompletionWithoutYield(t *testing.T) {
	s := newSched(Cooperative)
	defer s.Shutdown()
	done := 0
	s.NewThread("a", func(th *Thread) { done++ })
	s.NewThread("b", func(th *Thread) { done++ })
	s.Run()
	if done != 2 {
		t.Fatalf("done = %d, want 2", done)
	}
	if s.LiveThreads() != 0 {
		t.Fatalf("LiveThreads = %d, want 0", s.LiveThreads())
	}
}

func TestBlockAndWake(t *testing.T) {
	s := newSched(Cooperative)
	defer s.Shutdown()
	var wq WaitQueue
	got := ""
	s.NewThread("consumer", func(th *Thread) {
		wq.Wait(th)
		got += "consumed"
	})
	if blocked := s.Run(); blocked != 1 {
		t.Fatalf("blocked = %d, want 1", blocked)
	}
	if got != "" {
		t.Fatalf("consumer ran before wake: %q", got)
	}
	// External event (e.g. packet arrival) wakes the thread.
	wq.WakeOne()
	if blocked := s.Run(); blocked != 0 {
		t.Fatalf("blocked after wake = %d, want 0", blocked)
	}
	if got != "consumed" {
		t.Fatalf("got = %q", got)
	}
}

func TestWaitForCondition(t *testing.T) {
	s := newSched(Cooperative)
	defer s.Shutdown()
	var wq WaitQueue
	ready := false
	woke := 0
	s.NewThread("waiter", func(th *Thread) {
		wq.WaitFor(th, func() bool { return ready })
		woke++
	})
	s.Run()
	// Spurious wake: condition still false, thread must re-park.
	wq.WakeAll()
	if blocked := s.Run(); blocked != 1 {
		t.Fatalf("blocked after spurious wake = %d, want 1", blocked)
	}
	if woke != 0 {
		t.Fatal("WaitFor returned on spurious wake")
	}
	ready = true
	wq.WakeAll()
	s.Run()
	if woke != 1 {
		t.Fatalf("woke = %d, want 1", woke)
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	m := sim.NewMachine()
	s := New(Cooperative, m)
	defer s.Shutdown()
	const nap = 1_000_000 // cycles
	s.NewThread("sleeper", func(th *Thread) {
		th.Sleep(nap)
	})
	start := m.CPU.Cycles()
	s.Run()
	if got := m.CPU.Cycles() - start; got < nap {
		t.Fatalf("virtual time advanced %d cycles, want >= %d", got, nap)
	}
}

func TestSleepOrdering(t *testing.T) {
	m := sim.NewMachine()
	s := New(Cooperative, m)
	defer s.Shutdown()
	var order []string
	s.NewThread("late", func(th *Thread) {
		th.Sleep(2_000_000)
		order = append(order, "late")
	})
	s.NewThread("early", func(th *Thread) {
		th.Sleep(1_000_000)
		order = append(order, "early")
	})
	s.Run()
	if len(order) != 2 || order[0] != "early" || order[1] != "late" {
		t.Fatalf("order = %v, want [early late]", order)
	}
}

func TestContextSwitchCost(t *testing.T) {
	m := sim.NewMachine()
	s := New(Cooperative, m)
	defer s.Shutdown()
	s.NewThread("spinner", func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Yield()
		}
	})
	s.Run()
	wantMin := s.Switches * m.Costs.ContextSwitch
	if got := m.CPU.Cycles(); got < wantMin {
		t.Fatalf("cycles = %d, want >= %d (%d switches)", got, wantMin, s.Switches)
	}
}

func TestPreemptionAccounting(t *testing.T) {
	m := sim.NewMachine()
	s := New(Preemptive, m)
	defer s.Shutdown()
	s.SetTimeslice(1000)
	s.NewThread("hog", func(th *Thread) {
		th.Charge(10_500) // consumes 10.5 quanta before yielding
	})
	s.Run()
	if s.Preemptions < 10 {
		t.Fatalf("Preemptions = %d, want >= 10", s.Preemptions)
	}

	// The same work under the cooperative policy suffers no preemption
	// jitter — the paper's motivation for run-to-completion images.
	m2 := sim.NewMachine()
	c := New(Cooperative, m2)
	defer c.Shutdown()
	c.NewThread("hog", func(th *Thread) { th.Charge(10_500) })
	c.Run()
	if c.Preemptions != 0 {
		t.Fatalf("cooperative Preemptions = %d, want 0", c.Preemptions)
	}
	if m2.CPU.Cycles() >= m.CPU.Cycles() {
		t.Fatalf("cooperative (%d cycles) not cheaper than preemptive (%d)", m2.CPU.Cycles(), m.CPU.Cycles())
	}
}

func TestShutdownUnwindsBlockedThreads(t *testing.T) {
	s := newSched(Cooperative)
	var wq WaitQueue
	for i := 0; i < 5; i++ {
		s.NewThread("stuck", func(th *Thread) { wq.Wait(th) })
	}
	if blocked := s.Run(); blocked != 5 {
		t.Fatalf("blocked = %d, want 5", blocked)
	}
	s.Shutdown() // must not hang or panic
	s.Shutdown() // idempotent
}

func TestManyThreads(t *testing.T) {
	s := newSched(Cooperative)
	defer s.Shutdown()
	const n = 500
	count := 0
	for i := 0; i < n; i++ {
		s.NewThread("w", func(th *Thread) {
			th.Yield()
			count++
		})
	}
	s.Run()
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
}
