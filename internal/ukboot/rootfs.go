package ukboot

// This file mounts the root filesystem during boot — the step that
// turns the filesystem micro-libraries (vfscore, ramfs, shfs, 9pfs)
// from isolated micro-benchmarks into live state the serving datapath
// opens, stats and sendfiles against. Config.RootFS picks the backend
// per spec, the way the paper's §6.3 case study picks SHFS over
// vfscore for its web cache: the VFS path is the general standard-path
// configuration, SHFS the specialized one, 9pfs the shared host
// export.

import (
	"fmt"
	"sort"
	"strings"

	"unikraft/internal/ninepfs"
	"unikraft/internal/ramfs"
	"unikraft/internal/shfs"
	"unikraft/internal/sim"
	"unikraft/internal/vfscore"
)

// Root filesystem population costs (cycles). ramfs populates in-guest
// at boot (per-file node creation plus the content copy); an SHFS
// volume is built offline MiniCache-style, so attaching it charges
// only a per-object table insert; the 9pfs host tree is populated on
// the host side, for free, and the guest pays the mount.
const (
	costRamfsFile  = 800 // node create + dentry insert per populated file
	costSHFSObject = 120 // bucket insert per object (volume built offline)
)

// RootFS backend names accepted by Config.RootFS.
const (
	RootNone  = ""
	RootRamfs = "ramfs"
	RootSHFS  = "shfs"
	Root9pfs  = "9pfs"
)

// RootFSNames lists the mountable root filesystem backends.
func RootFSNames() []string { return []string{RootRamfs, RootSHFS, Root9pfs} }

// ValidRootFS reports whether name is "" or a known backend.
func ValidRootFS(name string) bool {
	switch name {
	case RootNone, RootRamfs, RootSHFS, Root9pfs:
		return true
	}
	return false
}

// SortedFilePaths returns a file map's paths in deterministic order —
// shared by the boot populate step, the snapshot cache key and the
// fileserve experiment.
func SortedFilePaths(files map[string][]byte) []string {
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// mountRootFS builds the instance's root filesystem on m, populates it
// from cfg.Files, and attaches it to the VM: VFS+RootFS for
// vfscore-backed backends, SHFS for the specialized volume. Charges
// model in-guest population (ramfs), offline volume attach (shfs) or
// the virtio-9p mount (9pfs).
func (c *Context) mountRootFS(vm *VM, m *sim.Machine) error {
	switch c.cfg.RootFS {
	case RootRamfs:
		fs := ramfs.New()
		if err := PopulateRamfs(fs, c.cfg.Files); err != nil {
			return err
		}
		for _, data := range c.cfg.Files {
			m.Charge(costRamfsFile + uint64(len(data))/16)
		}
		return attachVFS(vm, m, fs, c.cfg.PageCachePages)

	case RootSHFS:
		vol := shfs.New(m, 2*len(c.cfg.Files)+16)
		for _, path := range SortedFilePaths(c.cfg.Files) {
			m.Charge(costSHFSObject)
			if err := vol.Add(path, c.cfg.Files[path]); err != nil {
				return fmt.Errorf("shfs %s: %w", path, err)
			}
		}
		vol.Seal()
		vm.SHFS = vol
		return nil

	case Root9pfs:
		host := ramfs.New()
		if err := PopulateRamfs(host, c.cfg.Files); err != nil {
			return err
		}
		m.ChargeDuration(c.cfg.Platform.Mount9pfs)
		fs, err := mount9p(m, host)
		if err != nil {
			return err
		}
		vm.NinePHost = host
		return attachVFS(vm, m, fs, c.cfg.PageCachePages)
	}
	return fmt.Errorf("ukboot: unknown root filesystem %q (have %v)", c.cfg.RootFS, RootFSNames())
}

// PopulateRamfs writes files (path -> content) into fs, creating
// parent directories as needed — host-side population, uncharged (the
// boot step charges separately per backend).
func PopulateRamfs(fs *ramfs.FS, files map[string][]byte) error {
	for _, path := range SortedFilePaths(files) {
		if err := writeTree(fs.Root(), path, files[path]); err != nil {
			return fmt.Errorf("populate %s: %w", path, err)
		}
	}
	return nil
}

// writeTree creates path (absolute, '/'-separated) under root with the
// given content.
func writeTree(root vfscore.Node, path string, data []byte) error {
	if len(path) == 0 || path[0] != '/' {
		return fmt.Errorf("path must be absolute, got %q", path)
	}
	node := root
	rest := path[1:]
	for {
		i := strings.IndexByte(rest, '/')
		if i < 0 {
			break
		}
		name := rest[:i]
		rest = rest[i+1:]
		if name == "" {
			continue
		}
		child, err := node.Lookup(name)
		if err != nil {
			if child, err = node.Create(name, true); err != nil {
				return err
			}
		}
		node = child
	}
	if rest == "" {
		return fmt.Errorf("path %q names no file", path)
	}
	f, err := node.Create(rest, false)
	if err != nil {
		return err
	}
	_, err = f.WriteAt(data, 0)
	return err
}

// attachVFS mounts fs at / on a fresh VFS bound to m and enables the
// page cache when the config asks for one.
func attachVFS(vm *VM, m *sim.Machine, fs vfscore.FS, cachePages int) error {
	v := vfscore.New(m)
	if err := v.Mount("/", fs); err != nil {
		return err
	}
	if cachePages > 0 {
		v.EnablePageCache(cachePages)
	}
	vm.VFS = v
	vm.RootFS = fs
	return nil
}

// mount9p attaches a 9p client (with its own server and transport on m)
// over the shared host tree — per-instance fid tables over one export,
// exactly how multiple guests share a virtio-9p host directory.
func mount9p(m *sim.Machine, host *ramfs.FS) (vfscore.FS, error) {
	srv := ninepfs.NewServer(host)
	tr := ninepfs.NewTransport(m, srv)
	return ninepfs.Mount(tr)
}

// forkRootFS attaches the clone's view of the template's root
// filesystem — the storage half of the COW fork:
//
//   - ramfs: a CowFS over the template tree. Reads (and page-cache
//     fills) share the template's bytes zero-copy; the first write to a
//     file privatizes it into the clone, charging the copy like any
//     other write fault.
//   - shfs: a read-only View of the sealed volume charging the clone's
//     machine. The volume is immutable, so sharing is trivially safe.
//   - 9pfs: a fresh mount (own fids, own transport on the clone's
//     machine) over the template's host export — shared host state by
//     design, as with real virtio-9p.
func (c *Context) forkRootFS(vm *VM, m *sim.Machine, template *VM) error {
	switch c.cfg.RootFS {
	case RootNone:
		return nil
	case RootRamfs:
		cow := vfscore.NewCOW(template.RootFS)
		cow.Charge = m.Charge
		return attachVFS(vm, m, cow, c.cfg.PageCachePages)
	case RootSHFS:
		view, err := template.SHFS.View(m)
		if err != nil {
			return err
		}
		vm.SHFS = view
		return nil
	case Root9pfs:
		m.ChargeDuration(c.cfg.Platform.Mount9pfs)
		fs, err := mount9p(m, template.NinePHost)
		if err != nil {
			return err
		}
		vm.NinePHost = template.NinePHost
		return attachVFS(vm, m, fs, c.cfg.PageCachePages)
	}
	return fmt.Errorf("ukboot: unknown root filesystem %q", c.cfg.RootFS)
}
