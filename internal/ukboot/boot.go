// Package ukboot implements the boot micro-library: the ordered
// initialization pipeline that takes a Unikraft image from first guest
// instruction to the application's main(), plus the guest page-table
// strategies of §6.1. Timing is charged to the simulated machine, split
// into VMM time and guest time exactly as the paper measures them
// (Fig 10, Fig 14, Fig 21).
package ukboot

import (
	"fmt"
	"time"

	"unikraft/internal/ramfs"
	"unikraft/internal/shfs"
	"unikraft/internal/sim"
	"unikraft/internal/ukalloc"
	"unikraft/internal/ukplat"
	"unikraft/internal/uksched"
	"unikraft/internal/vfscore"
)

// libInitCycles is the guest-side constructor cost of each micro-library
// that registers boot work, calibrated so that the Fig 14 nginx boot
// breakdown (virtio/vfscore/ukbus/rootfs/pthreads/plat/misc/lwip/alloc)
// sums to the paper's per-allocator totals.
var libInitCycles = map[string]uint64{
	"plat":         36_000,    // memregion + console + traps + clock (10us)
	"ukbus":        61_200,    // virtio bus scan (17us)
	"virtio-net":   1_080_000, // per-NIC driver+queue init (300us)
	"virtio-blk":   360_000,   // block device init (100us)
	"lwip":         1_100_000, // network stack init incl. memory pools (306us)
	"uknetdev":     43_200,    // netdev registry (12us)
	"vfscore":      90_000,    // VFS + fd table (25us)
	"ramfs":        54_000,    // rootfs populate (15us)
	"posix":        36_000,    // posix-fdtab/process glue (10us)
	"pthreads":     54_000,    // pthread_embedded init (15us)
	"uksched":      36_000,    // scheduler + idle thread (10us)
	"syscall-shim": 18_000,    // syscall table registration (5us)
	"ukdebug":      7_200,
	"misc":         36_000, // remaining constructors (10us)
}

// SMP/multi-queue guest-side init costs. Like libInitCycles these are
// per-unit constructor charges; both are zero-impact at the defaults
// (1 vCPU, 1 queue), keeping every calibrated figure untouched.
const (
	// smpAPInitCycles per application processor: SIPI trampoline,
	// per-CPU areas, idle thread (25us at 3.6GHz).
	smpAPInitCycles = 90_000
	// netQueueInitCycles per extra queue pair on one NIC: vring
	// allocation + MSI-X vector + ioeventfd wiring (37.5us) — a slice
	// of the full 300us virtio-net constructor.
	netQueueInitCycles = 135_000
)

// LibInitCost exposes the constructor-cost table (read-only use).
func LibInitCost(lib string) (uint64, bool) {
	c, ok := libInitCycles[lib]
	return c, ok
}

// ProfileLibs is the boot-time micro-library list an application
// profile implies: lwip for NIC-bearing apps, the VFS stack, and
// uksched when the profile declares a scheduler. The SDK's boot path
// and the serving experiment both derive their Config.Libs from it, so
// a pool instance charges exactly what a one-off Runtime.Run boots.
func ProfileLibs(nics int, scheduler string) []string {
	var libs []string
	if nics > 0 {
		libs = append(libs, "lwip")
	}
	libs = append(libs, "vfscore", "ramfs")
	if scheduler != "" {
		libs = append(libs, "uksched")
	}
	return libs
}

// Config describes one unikernel instance to boot.
type Config struct {
	// Platform selects the hypervisor/VMM model.
	Platform ukplat.Platform
	// MemBytes is total guest memory.
	MemBytes int
	// ImageBytes is the kernel image size (affects layout & min-memory).
	ImageBytes int
	// StackBytes defaults to 64 KiB.
	StackBytes int
	// PTMode selects the §6.1 paging strategy.
	PTMode PTMode
	// Allocator names the ukalloc backend to initialize as the default
	// heap allocator ("bootalloc", "buddy", "tlsf", "tinyalloc",
	// "mimalloc").
	Allocator string
	// NICs counts attached network devices.
	NICs int
	// VCPUs is the guest vCPU count; 0 or 1 boots the calibrated
	// single-core image. Each application processor beyond the first
	// charges smpAPInitCycles (trampoline + per-CPU areas + idle
	// thread) in an "smp" boot step right after platform init.
	VCPUs int
	// NetQueues is the RX/TX queue-pair count per NIC; 0 or 1 is the
	// single-queue default. Extra queue pairs add monitor-side
	// NICQueueSetup (tap fds, vhost workers, ioeventfds) per NIC and
	// per-queue ring init cycles to each virtio-net constructor.
	NetQueues int
	// Mount9pfs adds the virtio-9p mount step (§5.2 boot cost).
	Mount9pfs bool
	// Libs lists additional micro-libraries whose constructors run at
	// boot, in order (e.g. "lwip", "vfscore", "ramfs").
	Libs []string
	// Scheduler, if non-nil creation is requested, selects the policy;
	// include "uksched" in Libs to create one.
	Scheduler uksched.Policy
	// RootFS mounts a populated root filesystem at boot: "ramfs" (the
	// general vfscore path), "shfs" (the specialized MiniCache volume,
	// bypassing vfscore) or "9pfs" (a shared host export over virtio-9p).
	// Empty means no filesystem state — the calibrated baseline every
	// figure boots with.
	RootFS string
	// Files populates the root filesystem (absolute path -> content).
	Files map[string][]byte
	// PageCachePages bounds the instance's VFS page cache (0 disables;
	// only meaningful for vfscore-backed root filesystems).
	PageCachePages int
	// ParallelInit charges independent constructors in topologically
	// sorted stages — libs with no ordering constraint between them
	// charge max instead of sum, modelling a multi-queue init table.
	// The allocator→scheduler→NIC ordering invariants are preserved:
	// plat, page table and allocator stay strictly sequential, virtio
	// devices wait for the bus scan, lwip waits for its NIC. Off by
	// default; the sequential pipeline is the calibrated baseline.
	ParallelInit bool
	// SnapshotBoot marks the config as destined for snapshot-fork
	// instantiation (Context.Snapshot + Context.Fork). Boot itself is
	// unaffected; MinMemory additionally reserves the clone's private
	// page-table pages so a fork can never boot with less memory than
	// it can fault in.
	SnapshotBoot bool
}

// Step records one timed boot phase.
type Step struct {
	Name     string
	Duration time.Duration
}

// Report is the timing outcome of a boot.
type Report struct {
	VMM   time.Duration
	Guest time.Duration
	Steps []Step
}

// Total is VMM + guest time: the paper's "total boot time".
func (r Report) Total() time.Duration { return r.VMM + r.Guest }

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("boot: vmm=%v guest=%v total=%v", r.VMM, r.Guest, r.Total())
}

// VM is a booted unikernel instance.
type VM struct {
	Machine   *sim.Machine
	Platform  ukplat.Platform
	Config    Config
	Allocs    ukalloc.Registry
	Heap      ukalloc.Allocator
	PageTable *PageTable
	Sched     *uksched.Scheduler
	Regions   []ukplat.MemRegion
	Report    Report
	// VFS is the instance's live virtual filesystem (Config.RootFS
	// "ramfs"/"9pfs"; nil otherwise), with RootFS the filesystem mounted
	// at /. SHFS is the specialized flat volume when Config.RootFS is
	// "shfs" — it bypasses vfscore entirely, as in the paper's §6.3.
	VFS    *vfscore.VFS
	RootFS vfscore.FS
	SHFS   *shfs.FS
	// NinePHost is the host-side export behind a 9pfs root (shared
	// across forked clones, like a real virtio-9p host directory).
	NinePHost *ramfs.FS
	// InitLibs is the ordered list of boot steps this instance ran (or,
	// for a fork, inherited from its template) — the guest-visible
	// initialized lib set.
	InitLibs []string
	// Forked marks instances instantiated via Context.Fork rather than
	// the full boot pipeline.
	Forked bool
}

// stepKind discriminates the precomputed steps a Context replays.
type stepKind uint8

const (
	stepCharge    stepKind = iota // fixed cycle charge
	stepChargeDur                 // fixed wall-duration charge
	stepPageTable                 // build the guest page table
	stepAlloc                     // initialize the heap allocator
	stepSched                     // charge + create the scheduler
	stepRootFS                    // mount + populate the root filesystem
)

type ctxStep struct {
	name   string
	kind   stepKind
	cycles uint64
	dur    time.Duration
}

// Context is a reusable boot recipe: the config is validated once, the
// memory layout and the ordered step list with their constructor costs
// are precomputed, and each Boot call only replays the charges and runs
// the genuinely stateful steps (page table, heap allocator, scheduler).
// Booting a fleet of identical instances through one Context — what the
// ukpool serving layer does for every warm or cold start — therefore
// skips all per-boot validation, map lookups and closure allocation
// while charging exactly the virtual time a one-off Boot would.
type Context struct {
	cfg       Config
	vmmDurs   []time.Duration
	steps     []ctxStep
	regions   []ukplat.MemRegion
	heapBytes int
	// initLibs is the ordered step-name list, recorded on every booted
	// (or forked) VM as its initialized lib set.
	initLibs []string
	// stages groups step indices into parallel init stages when
	// cfg.ParallelInit is set (nil otherwise: sequential pipeline).
	stages [][]int
}

// NewContext validates cfg (filling the stack-size and allocator
// defaults) and precomputes the boot recipe.
func NewContext(cfg Config) (*Context, error) {
	if cfg.MemBytes <= 0 {
		return nil, fmt.Errorf("ukboot: MemBytes must be positive")
	}
	if cfg.StackBytes == 0 {
		cfg.StackBytes = 64 << 10
	}
	if cfg.Allocator == "" {
		cfg.Allocator = "tlsf"
	}
	if !ValidRootFS(cfg.RootFS) {
		return nil, fmt.Errorf("ukboot: unknown root filesystem %q (have %v)", cfg.RootFS, RootFSNames())
	}
	if len(cfg.Files) > 0 && cfg.RootFS == RootNone {
		return nil, fmt.Errorf("ukboot: Files set but no RootFS selected (have %v)", RootFSNames())
	}
	if cfg.VCPUs < 0 {
		return nil, fmt.Errorf("ukboot: VCPUs must be non-negative, got %d", cfg.VCPUs)
	}
	if cfg.NetQueues < 0 {
		return nil, fmt.Errorf("ukboot: NetQueues must be non-negative, got %d", cfg.NetQueues)
	}
	c := &Context{cfg: cfg}

	// VMM phase: monitor start plus per-NIC plumbing (and, for
	// multi-queue NICs, per-extra-queue-pair plumbing). Kept as separate
	// durations so cycle rounding matches the one-off pipeline exactly.
	c.vmmDurs = append(c.vmmDurs, cfg.Platform.VMMSetup)
	for i := 0; i < cfg.NICs; i++ {
		c.vmmDurs = append(c.vmmDurs, cfg.Platform.NICSetup)
		for q := 1; q < cfg.NetQueues; q++ {
			c.vmmDurs = append(c.vmmDurs, cfg.Platform.NICQueueSetup)
		}
	}

	charge := func(name string) {
		cyc, ok := libInitCycles[name]
		if !ok {
			cyc = libInitCycles["misc"]
		}
		c.steps = append(c.steps, ctxStep{name: name, kind: stepCharge, cycles: cyc})
	}

	charge("plat")
	if cfg.Platform.GuestExtra > 0 {
		c.steps = append(c.steps, ctxStep{name: "plat-extra", kind: stepChargeDur, dur: cfg.Platform.GuestExtra})
	}
	if cfg.VCPUs > 1 {
		// AP bringup sits in the sequential platform prefix: application
		// processors come up one SIPI at a time before paging and the
		// heap exist, so this step never joins a parallel stage.
		c.steps = append(c.steps, ctxStep{name: "smp", kind: stepCharge,
			cycles: uint64(cfg.VCPUs-1) * smpAPInitCycles})
	}
	c.steps = append(c.steps, ctxStep{name: "pagetable", kind: stepPageTable})

	c.regions = ukplat.Layout(cfg.ImageBytes, cfg.MemBytes, cfg.StackBytes)
	for _, r := range c.regions {
		if r.Kind == ukplat.RegionHeap {
			c.heapBytes = r.Bytes
		}
	}
	c.steps = append(c.steps, ctxStep{name: "alloc:" + cfg.Allocator, kind: stepAlloc})

	if cfg.NICs > 0 || cfg.Mount9pfs || cfg.RootFS == Root9pfs {
		charge("ukbus")
	}
	for i := 0; i < cfg.NICs; i++ {
		// Extra queue pairs extend the driver constructor in place (same
		// step name, so stage deps and the initialized-lib list are
		// unchanged); at one queue the charge is bit-identical to the
		// calibrated single-queue constructor.
		cyc := libInitCycles["virtio-net"]
		if cfg.NetQueues > 1 {
			cyc += uint64(cfg.NetQueues-1) * netQueueInitCycles
		}
		c.steps = append(c.steps, ctxStep{name: "virtio-net", kind: stepCharge, cycles: cyc})
	}
	if cfg.Mount9pfs {
		c.steps = append(c.steps, ctxStep{name: "9pfs", kind: stepChargeDur, dur: cfg.Platform.Mount9pfs})
	}
	for _, lib := range cfg.Libs {
		if lib == "uksched" {
			c.steps = append(c.steps, ctxStep{name: "uksched", kind: stepSched, cycles: libInitCycles["uksched"]})
			continue
		}
		charge(lib)
	}
	if cfg.RootFS != RootNone {
		c.steps = append(c.steps, ctxStep{name: "rootfs:" + cfg.RootFS, kind: stepRootFS})
	}
	charge("misc")
	for _, st := range c.steps {
		c.initLibs = append(c.initLibs, st.name)
	}
	if cfg.ParallelInit {
		c.computeStages()
	}
	return c, nil
}

// initStageDeps captures the genuine ordering constraints between
// post-allocator constructors: virtio devices need the bus scan, lwip
// needs its NIC driver and netdev registry, ramfs/posix mount on
// vfscore, pthreads needs the scheduler. Everything else only depends
// on the allocator and parallelizes freely.
var initStageDeps = map[string][]string{
	"virtio-net": {"ukbus"},
	"virtio-blk": {"ukbus"},
	"9pfs":       {"ukbus"},
	"uknetdev":   {"ukbus"},
	"lwip":       {"virtio-net", "uknetdev"},
	"ramfs":      {"vfscore"},
	"posix":      {"vfscore"},
	"pthreads":   {"uksched"},
}

// computeStages topologically levels the step list into parallel init
// stages. The prefix up to and including the allocator step is strictly
// sequential (each step its own stage: plat brings up the console and
// traps the page table needs, the page table maps the memory the heap
// carves up); the trailing "misc" catch-all is pinned to a final stage
// of its own. Steps sharing a level charge max, not sum, when booted.
func (c *Context) computeStages() {
	allocIdx := -1
	for i, st := range c.steps {
		if st.kind == stepAlloc {
			allocIdx = i
		}
	}
	for i := 0; i <= allocIdx; i++ {
		c.stages = append(c.stages, []int{i})
	}
	var body, miscIdx, statefulIdx []int
	levels := map[string]int{}
	for i := allocIdx + 1; i < len(c.steps); i++ {
		if c.steps[i].name == "misc" {
			miscIdx = append(miscIdx, i)
			continue
		}
		if c.steps[i].kind == stepRootFS {
			// Stateful post-allocator steps (the rootfs mount) run in
			// their own sequential stage after the constructor levels:
			// the mount needs vfscore (and, for 9pfs, the bus scan)
			// initialized, and bootStaged only parallelizes pure
			// charges.
			statefulIdx = append(statefulIdx, i)
			continue
		}
		body = append(body, i)
		levels[c.steps[i].name] = 0
	}
	// Fixpoint leveling: lvl(step) = 1 + max lvl of its present deps.
	// Iterating to stability handles deps regardless of list order; the
	// dep graph is a shallow DAG, so this converges in a few passes.
	for changed := true; changed; {
		changed = false
		for _, i := range body {
			name := c.steps[i].name
			lvl := 0
			for _, dep := range initStageDeps[name] {
				if dl, ok := levels[dep]; ok && dl+1 > lvl {
					lvl = dl + 1
				}
			}
			if lvl > levels[name] {
				levels[name] = lvl
				changed = true
			}
		}
	}
	byLevel := map[int][]int{}
	maxLvl := -1
	for _, i := range body {
		lvl := levels[c.steps[i].name]
		byLevel[lvl] = append(byLevel[lvl], i)
		if lvl > maxLvl {
			maxLvl = lvl
		}
	}
	for lvl := 0; lvl <= maxLvl; lvl++ {
		if len(byLevel[lvl]) > 0 {
			c.stages = append(c.stages, byLevel[lvl])
		}
	}
	for _, i := range statefulIdx {
		c.stages = append(c.stages, []int{i})
	}
	if len(miscIdx) > 0 {
		c.stages = append(c.stages, miscIdx)
	}
}

// Stages reports the parallel init-stage step names (nil unless the
// config asked for ParallelInit) — tests assert the ordering invariants
// against it.
func (c *Context) Stages() [][]string {
	if c.stages == nil {
		return nil
	}
	out := make([][]string, len(c.stages))
	for i, idxs := range c.stages {
		for _, idx := range idxs {
			out[i] = append(out[i], c.steps[idx].name)
		}
	}
	return out
}

// Boot runs the precomputed pipeline on machine m and returns the
// booted VM. All time costs are charged to m's clock; the Report
// additionally itemizes them.
func (c *Context) Boot(m *sim.Machine) (*VM, error) {
	vm := &VM{Machine: m, Platform: c.cfg.Platform, Config: c.cfg, Regions: c.regions, InitLibs: c.initLibs}

	// --- VMM phase -----------------------------------------------------
	vmmStart := m.CPU.Cycles()
	for _, d := range c.vmmDurs {
		m.ChargeDuration(d)
	}
	vm.Report.VMM = m.CPU.Duration(m.CPU.Cycles() - vmmStart)

	// --- Guest phase ---------------------------------------------------
	guestStart := m.CPU.Cycles()
	if c.stages == nil {
		vm.Report.Steps = make([]Step, 0, len(c.steps))
		for _, st := range c.steps {
			s := m.CPU.Cycles()
			if err := c.runStep(vm, m, st); err != nil {
				return nil, err
			}
			vm.Report.Steps = append(vm.Report.Steps, Step{
				Name:     st.name,
				Duration: m.CPU.Duration(m.CPU.Cycles() - s),
			})
		}
	} else if err := c.bootStaged(vm, m); err != nil {
		return nil, err
	}
	vm.Report.Guest = m.CPU.Duration(m.CPU.Cycles() - guestStart)
	return vm, nil
}

// runStep executes one boot step, charging its cost and building any
// stateful pieces (page table, heap allocator, scheduler).
func (c *Context) runStep(vm *VM, m *sim.Machine, st ctxStep) error {
	switch st.kind {
	case stepCharge, stepSched:
		m.Charge(st.cycles)
		if st.kind == stepSched {
			vm.Sched = uksched.New(c.cfg.Scheduler, m)
		}
	case stepChargeDur:
		m.ChargeDuration(st.dur)
	case stepPageTable:
		pt, err := buildPageTable(m.Charge, c.cfg.PTMode, c.cfg.MemBytes)
		if err != nil {
			return fmt.Errorf("ukboot: step %s: %w", st.name, err)
		}
		vm.PageTable = pt
	case stepAlloc:
		a, err := ukalloc.NewInitialized(c.cfg.Allocator, m, c.heapBytes)
		if err != nil {
			return fmt.Errorf("ukboot: step %s: %w", st.name, err)
		}
		vm.Allocs.Register(a)
		vm.Heap = a
	case stepRootFS:
		if err := c.mountRootFS(vm, m); err != nil {
			return fmt.Errorf("ukboot: step %s: %w", st.name, err)
		}
	}
	return nil
}

// bootStaged replays the guest pipeline stage by stage: singleton
// stages run exactly like the sequential path; a multi-step stage
// models its members initializing concurrently, so the stage charges
// the max member cost instead of the sum. Stateful members (scheduler
// creation) still run — only the time accounting is parallel.
func (c *Context) bootStaged(vm *VM, m *sim.Machine) error {
	vm.Report.Steps = make([]Step, 0, len(c.stages))
	for _, idxs := range c.stages {
		s := m.CPU.Cycles()
		if len(idxs) == 1 {
			st := c.steps[idxs[0]]
			if err := c.runStep(vm, m, st); err != nil {
				return err
			}
			vm.Report.Steps = append(vm.Report.Steps, Step{
				Name:     st.name,
				Duration: m.CPU.Duration(m.CPU.Cycles() - s),
			})
			continue
		}
		var max uint64
		name := "stage("
		for i, idx := range idxs {
			st := c.steps[idx]
			var cyc uint64
			switch st.kind {
			case stepCharge:
				cyc = st.cycles
			case stepChargeDur:
				cyc = m.CPU.ToCycles(st.dur)
			case stepSched:
				cyc = st.cycles
				vm.Sched = uksched.New(c.cfg.Scheduler, m)
			default:
				// Stateful steps (page table, allocator) must stay in
				// the sequential prefix; reaching one here means
				// computeStages regressed, and silently skipping it
				// would boot a VM with no heap.
				return fmt.Errorf("ukboot: stateful step %s in a parallel stage", st.name)
			}
			if cyc > max {
				max = cyc
			}
			if i > 0 {
				name += "+"
			}
			name += st.name
		}
		m.Charge(max)
		vm.Report.Steps = append(vm.Report.Steps, Step{
			Name:     name + ")",
			Duration: m.CPU.Duration(m.CPU.Cycles() - s),
		})
	}
	return nil
}

// HeapBytes reports the size of the heap region instances booted from
// this context manage.
func (c *Context) HeapBytes() int { return c.heapBytes }

// Boot runs the full pipeline on machine m and returns the booted VM.
// All time costs are charged to m's clock; the Report additionally
// itemizes them. One-off boots build a fresh Context; fleets should
// build the Context once and call its Boot repeatedly.
func Boot(m *sim.Machine, cfg Config) (*VM, error) {
	c, err := NewContext(cfg)
	if err != nil {
		return nil, err
	}
	return c.Boot(m)
}

// Reset recycles a booted VM into a pristine warm instance: the heap
// allocator is re-initialized over the heap region, dropping every
// guest allocation, and the re-init cost is charged to the machine.
// That is orders of magnitude cheaper than a fresh boot (no VMM
// instantiation, no page-table build, no driver constructors), which is
// what makes keeping a warm pool worthwhile at all.
func (vm *VM) Reset() error {
	backend, err := ukalloc.ResolveBackend(vm.Config.Allocator)
	if err != nil {
		return fmt.Errorf("ukboot: reset: %w", err)
	}
	a, err := ukalloc.NewBackend(backend, vm.Machine)
	if err != nil {
		return fmt.Errorf("ukboot: reset: %w", err)
	}
	// Re-initialize over the existing arena: the guest's heap region
	// does not move across a recycle, and reusing it keeps host-side
	// reset cost at the allocator's metadata rebuild, not a fresh
	// multi-megabyte allocation.
	if err := a.Init(vm.Heap.Arena()); err != nil {
		return fmt.Errorf("ukboot: reset: %w", err)
	}
	vm.Allocs = ukalloc.Registry{}
	vm.Allocs.Register(a)
	vm.Heap = a
	// Drop the guest's open descriptors: a recycled instance starts with
	// a pristine fd table (the mount table and page cache survive, like
	// a kernel's across process churn).
	if vm.VFS != nil {
		vm.VFS.Reset()
	}
	return nil
}

// Close releases VM resources (scheduler goroutines).
func (vm *VM) Close() {
	if vm.Sched != nil {
		vm.Sched.Shutdown()
	}
}

// SnapshotPrivateBytes is the guest memory a forked clone must hold
// beyond a plain boot's demand: private copies of every page-table page
// it can privatize while faulting in its whole address space (one PML4
// plus the PDPT/PD/PT pages covering MemBytes). A clone that boots
// without this reserve can run out of frames mid-fault — which is why
// MinMemory adds it for SnapshotBoot configs.
func SnapshotPrivateBytes(cfg Config) int {
	if cfg.PTMode == PTNone {
		return 0
	}
	ceil := func(a, b int) int { return (a + b - 1) / b }
	pages := ceil(cfg.MemBytes, PageSize)
	pt := ceil(pages, entryCount)
	pd := ceil(pt, entryCount)
	pdpt := ceil(pd, entryCount)
	return (1 + pdpt + pd + pt) * PageSize
}

// MinMemory probes the smallest total guest memory (in the platform's
// granularity) at which cfg boots and the application can allocate
// appFloor bytes of startup heap — the Fig 11 measurement ("minimum
// amount of memory required to boot various applications"). For
// SnapshotBoot configs the probe additionally reserves the forked
// clone's private page-table pages (SnapshotPrivateBytes), so the
// reported minimum is safe for fork-instantiated instances too.
func MinMemory(cfg Config, appFloor int) (int, error) {
	gran := cfg.Platform.MemGranularity
	if gran <= 0 {
		gran = 1 << 20
	}
	for mem := gran; mem <= 1<<30; mem += gran {
		c := cfg
		c.MemBytes = mem
		if ok := bootsWithFloor(c, appFloor); ok {
			return mem, nil
		}
	}
	return 0, fmt.Errorf("ukboot: no memory size up to 1GiB boots %+v", cfg)
}

func bootsWithFloor(cfg Config, appFloor int) bool {
	m := sim.NewMachine()
	vm, err := Boot(m, cfg)
	if err != nil {
		return false
	}
	defer vm.Close()
	if cfg.SnapshotBoot {
		// A forked clone's page-table copies come out of guest memory:
		// reserve them up front so the probed minimum can never admit a
		// clone that would run out of frames while faulting in.
		appFloor += SnapshotPrivateBytes(cfg)
	}
	// Simulate app startup allocations in 64KiB chunks (buffers, pools,
	// arenas) — all must succeed for the app to come up.
	const chunk = 64 << 10
	for got := 0; got < appFloor; got += chunk {
		n := chunk
		if appFloor-got < n {
			n = appFloor - got
		}
		if _, err := vm.Heap.Malloc(n); err != nil {
			return false
		}
	}
	return true
}
