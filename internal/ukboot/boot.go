// Package ukboot implements the boot micro-library: the ordered
// initialization pipeline that takes a Unikraft image from first guest
// instruction to the application's main(), plus the guest page-table
// strategies of §6.1. Timing is charged to the simulated machine, split
// into VMM time and guest time exactly as the paper measures them
// (Fig 10, Fig 14, Fig 21).
package ukboot

import (
	"fmt"
	"time"

	"unikraft/internal/sim"
	"unikraft/internal/ukalloc"
	"unikraft/internal/ukplat"
	"unikraft/internal/uksched"
)

// libInitCycles is the guest-side constructor cost of each micro-library
// that registers boot work, calibrated so that the Fig 14 nginx boot
// breakdown (virtio/vfscore/ukbus/rootfs/pthreads/plat/misc/lwip/alloc)
// sums to the paper's per-allocator totals.
var libInitCycles = map[string]uint64{
	"plat":         36_000,    // memregion + console + traps + clock (10us)
	"ukbus":        61_200,    // virtio bus scan (17us)
	"virtio-net":   1_080_000, // per-NIC driver+queue init (300us)
	"virtio-blk":   360_000,   // block device init (100us)
	"lwip":         1_100_000, // network stack init incl. memory pools (306us)
	"uknetdev":     43_200,    // netdev registry (12us)
	"vfscore":      90_000,    // VFS + fd table (25us)
	"ramfs":        54_000,    // rootfs populate (15us)
	"posix":        36_000,    // posix-fdtab/process glue (10us)
	"pthreads":     54_000,    // pthread_embedded init (15us)
	"uksched":      36_000,    // scheduler + idle thread (10us)
	"syscall-shim": 18_000,    // syscall table registration (5us)
	"ukdebug":      7_200,
	"misc":         36_000, // remaining constructors (10us)
}

// LibInitCost exposes the constructor-cost table (read-only use).
func LibInitCost(lib string) (uint64, bool) {
	c, ok := libInitCycles[lib]
	return c, ok
}

// Config describes one unikernel instance to boot.
type Config struct {
	// Platform selects the hypervisor/VMM model.
	Platform ukplat.Platform
	// MemBytes is total guest memory.
	MemBytes int
	// ImageBytes is the kernel image size (affects layout & min-memory).
	ImageBytes int
	// StackBytes defaults to 64 KiB.
	StackBytes int
	// PTMode selects the §6.1 paging strategy.
	PTMode PTMode
	// Allocator names the ukalloc backend to initialize as the default
	// heap allocator ("bootalloc", "buddy", "tlsf", "tinyalloc",
	// "mimalloc").
	Allocator string
	// NICs counts attached network devices.
	NICs int
	// Mount9pfs adds the virtio-9p mount step (§5.2 boot cost).
	Mount9pfs bool
	// Libs lists additional micro-libraries whose constructors run at
	// boot, in order (e.g. "lwip", "vfscore", "ramfs").
	Libs []string
	// Scheduler, if non-nil creation is requested, selects the policy;
	// include "uksched" in Libs to create one.
	Scheduler uksched.Policy
}

// Step records one timed boot phase.
type Step struct {
	Name     string
	Duration time.Duration
}

// Report is the timing outcome of a boot.
type Report struct {
	VMM   time.Duration
	Guest time.Duration
	Steps []Step
}

// Total is VMM + guest time: the paper's "total boot time".
func (r Report) Total() time.Duration { return r.VMM + r.Guest }

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("boot: vmm=%v guest=%v total=%v", r.VMM, r.Guest, r.Total())
}

// VM is a booted unikernel instance.
type VM struct {
	Machine   *sim.Machine
	Platform  ukplat.Platform
	Config    Config
	Allocs    ukalloc.Registry
	Heap      ukalloc.Allocator
	PageTable *PageTable
	Sched     *uksched.Scheduler
	Regions   []ukplat.MemRegion
	Report    Report
}

// Boot runs the full pipeline on machine m and returns the booted VM.
// All time costs are charged to m's clock; the Report additionally
// itemizes them.
func Boot(m *sim.Machine, cfg Config) (*VM, error) {
	if cfg.MemBytes <= 0 {
		return nil, fmt.Errorf("ukboot: MemBytes must be positive")
	}
	if cfg.StackBytes == 0 {
		cfg.StackBytes = 64 << 10
	}
	if cfg.Allocator == "" {
		cfg.Allocator = "tlsf"
	}
	vm := &VM{Machine: m, Platform: cfg.Platform, Config: cfg}

	// --- VMM phase -----------------------------------------------------
	vmmStart := m.CPU.Cycles()
	m.ChargeDuration(cfg.Platform.VMMSetup)
	for i := 0; i < cfg.NICs; i++ {
		m.ChargeDuration(cfg.Platform.NICSetup)
	}
	vm.Report.VMM = m.CPU.Duration(m.CPU.Cycles() - vmmStart)

	// --- Guest phase ---------------------------------------------------
	guestStart := m.CPU.Cycles()
	step := func(name string, fn func() error) error {
		s := m.CPU.Cycles()
		if fn != nil {
			if err := fn(); err != nil {
				return fmt.Errorf("ukboot: step %s: %w", name, err)
			}
		}
		vm.Report.Steps = append(vm.Report.Steps, Step{
			Name:     name,
			Duration: m.CPU.Duration(m.CPU.Cycles() - s),
		})
		return nil
	}
	chargeLib := func(name string) func() error {
		return func() error {
			c, ok := libInitCycles[name]
			if !ok {
				c = libInitCycles["misc"]
			}
			m.Charge(c)
			return nil
		}
	}

	if err := step("plat", chargeLib("plat")); err != nil {
		return nil, err
	}
	if cfg.Platform.GuestExtra > 0 {
		if err := step("plat-extra", func() error {
			m.ChargeDuration(cfg.Platform.GuestExtra)
			return nil
		}); err != nil {
			return nil, err
		}
	}

	if err := step("pagetable", func() error {
		pt, err := buildPageTable(m.Charge, cfg.PTMode, cfg.MemBytes)
		vm.PageTable = pt
		return err
	}); err != nil {
		return nil, err
	}

	// Memory layout and heap allocator initialization over the real
	// heap region.
	vm.Regions = ukplat.Layout(cfg.ImageBytes, cfg.MemBytes, cfg.StackBytes)
	var heapBytes int
	for _, r := range vm.Regions {
		if r.Kind == ukplat.RegionHeap {
			heapBytes = r.Bytes
		}
	}
	if err := step("alloc:"+cfg.Allocator, func() error {
		a, err := ukalloc.NewInitialized(cfg.Allocator, m, heapBytes)
		if err != nil {
			return err
		}
		vm.Allocs.Register(a)
		vm.Heap = a
		return nil
	}); err != nil {
		return nil, err
	}

	if cfg.NICs > 0 || cfg.Mount9pfs {
		if err := step("ukbus", chargeLib("ukbus")); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.NICs; i++ {
		if err := step("virtio-net", chargeLib("virtio-net")); err != nil {
			return nil, err
		}
	}
	if cfg.Mount9pfs {
		if err := step("9pfs", func() error {
			m.ChargeDuration(cfg.Platform.Mount9pfs)
			return nil
		}); err != nil {
			return nil, err
		}
	}

	for _, lib := range cfg.Libs {
		lib := lib
		if lib == "uksched" {
			if err := step("uksched", func() error {
				m.Charge(libInitCycles["uksched"])
				vm.Sched = uksched.New(cfg.Scheduler, m)
				return nil
			}); err != nil {
				return nil, err
			}
			continue
		}
		if err := step(lib, chargeLib(lib)); err != nil {
			return nil, err
		}
	}

	if err := step("misc", chargeLib("misc")); err != nil {
		return nil, err
	}

	vm.Report.Guest = m.CPU.Duration(m.CPU.Cycles() - guestStart)
	return vm, nil
}

// Close releases VM resources (scheduler goroutines).
func (vm *VM) Close() {
	if vm.Sched != nil {
		vm.Sched.Shutdown()
	}
}

// MinMemory probes the smallest total guest memory (in the platform's
// granularity) at which cfg boots and the application can allocate
// appFloor bytes of startup heap — the Fig 11 measurement ("minimum
// amount of memory required to boot various applications").
func MinMemory(cfg Config, appFloor int) (int, error) {
	gran := cfg.Platform.MemGranularity
	if gran <= 0 {
		gran = 1 << 20
	}
	for mem := gran; mem <= 1<<30; mem += gran {
		c := cfg
		c.MemBytes = mem
		if ok := bootsWithFloor(c, appFloor); ok {
			return mem, nil
		}
	}
	return 0, fmt.Errorf("ukboot: no memory size up to 1GiB boots %+v", cfg)
}

func bootsWithFloor(cfg Config, appFloor int) bool {
	m := sim.NewMachine()
	vm, err := Boot(m, cfg)
	if err != nil {
		return false
	}
	defer vm.Close()
	// Simulate app startup allocations in 64KiB chunks (buffers, pools,
	// arenas) — all must succeed for the app to come up.
	const chunk = 64 << 10
	for got := 0; got < appFloor; got += chunk {
		n := chunk
		if appFloor-got < n {
			n = appFloor - got
		}
		if _, err := vm.Heap.Malloc(n); err != nil {
			return false
		}
	}
	return true
}
