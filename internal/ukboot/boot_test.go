package ukboot

import (
	"testing"
	"testing/quick"
	"time"

	_ "unikraft/internal/allocators/bootalloc"
	_ "unikraft/internal/allocators/buddy"
	_ "unikraft/internal/allocators/mimalloc"
	_ "unikraft/internal/allocators/tinyalloc"
	_ "unikraft/internal/allocators/tlsf"
	"unikraft/internal/sim"
	"unikraft/internal/ukplat"
)

func helloCfg(p ukplat.Platform) Config {
	return Config{
		Platform:   p,
		MemBytes:   8 << 20,
		ImageBytes: 256 << 10,
		PTMode:     PTStatic,
		Allocator:  "bootalloc",
	}
}

func TestBootHelloQEMU(t *testing.T) {
	m := sim.NewMachine()
	vm, err := Boot(m, helloCfg(ukplat.KVMQemu))
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Close()
	r := vm.Report
	// Fig 10: QEMU total ~38.4ms dominated by the VMM; guest boot tens
	// of microseconds.
	if r.VMM < 30*time.Millisecond || r.VMM > 50*time.Millisecond {
		t.Errorf("VMM time = %v, want ~38ms", r.VMM)
	}
	if r.Guest < 20*time.Microsecond || r.Guest > 200*time.Microsecond {
		t.Errorf("guest time = %v, want tens of us", r.Guest)
	}
	if r.Total() != r.VMM+r.Guest {
		t.Errorf("Total mismatch")
	}
}

func TestBootVMMOrdering(t *testing.T) {
	// Fig 10's ordering: Solo5 ~ Firecracker < microVM < QEMU.
	total := func(p ukplat.Platform) time.Duration {
		m := sim.NewMachine()
		vm, err := Boot(m, helloCfg(p))
		if err != nil {
			t.Fatal(err)
		}
		defer vm.Close()
		return vm.Report.Total()
	}
	qemu := total(ukplat.KVMQemu)
	micro := total(ukplat.KVMQemuMicroVM)
	fc := total(ukplat.KVMFirecracker)
	solo := total(ukplat.Solo5)
	if !(solo < micro && fc < micro && micro < qemu) {
		t.Errorf("ordering violated: qemu=%v micro=%v fc=%v solo5=%v", qemu, micro, fc, solo)
	}
	if fc > 4*time.Millisecond || solo > 4*time.Millisecond {
		t.Errorf("fc=%v solo=%v, want ~3.1ms", fc, solo)
	}
}

func TestBootNICAddsGuestTime(t *testing.T) {
	boot := func(nics int) Report {
		m := sim.NewMachine()
		cfg := helloCfg(ukplat.KVMQemu)
		cfg.NICs = nics
		vm, err := Boot(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer vm.Close()
		return vm.Report
	}
	without, with := boot(0), boot(1)
	if with.Guest <= without.Guest {
		t.Errorf("1 NIC guest %v <= 0 NIC guest %v", with.Guest, without.Guest)
	}
	// Fig 10: with one NIC the guest portion reaches hundreds of us.
	if with.Guest < 200*time.Microsecond || with.Guest > 900*time.Microsecond {
		t.Errorf("1 NIC guest = %v, want hundreds of us", with.Guest)
	}
	if with.VMM <= without.VMM {
		t.Errorf("NIC did not add VMM time")
	}
}

func TestMount9pfsBootCost(t *testing.T) {
	// §5.2: "Enabling the 9pfs device adds 0.3ms to the boot time of
	// Unikraft VMs on KVM, and 2.7ms on Xen."
	guest := func(p ukplat.Platform, mount bool) time.Duration {
		m := sim.NewMachine()
		cfg := helloCfg(p)
		cfg.Mount9pfs = mount
		vm, err := Boot(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer vm.Close()
		return vm.Report.Guest
	}
	kvmDelta := guest(ukplat.KVMQemu, true) - guest(ukplat.KVMQemu, false)
	xenDelta := guest(ukplat.Xen, true) - guest(ukplat.Xen, false)
	if kvmDelta < 250*time.Microsecond || kvmDelta > 450*time.Microsecond {
		t.Errorf("KVM 9pfs delta = %v, want ~0.3ms", kvmDelta)
	}
	if xenDelta < 2500*time.Microsecond || xenDelta > 3000*time.Microsecond {
		t.Errorf("Xen 9pfs delta = %v, want ~2.7ms", xenDelta)
	}
}

func TestAllocatorBootOrdering(t *testing.T) {
	// Fig 14: buddy slowest by far; bootalloc and tlsf fastest.
	guest := func(alloc string) time.Duration {
		m := sim.NewMachine()
		cfg := Config{
			Platform:   ukplat.KVMQemu,
			MemBytes:   1 << 30,
			ImageBytes: 1600 << 10,
			PTMode:     PTStatic,
			Allocator:  alloc,
			NICs:       1,
			Libs:       []string{"lwip", "vfscore", "ramfs", "pthreads"},
		}
		vm, err := Boot(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer vm.Close()
		return vm.Report.Guest
	}
	buddy := guest("buddy")
	boot := guest("bootalloc")
	tlsf := guest("tlsf")
	tiny := guest("tinyalloc")
	mi := guest("mimalloc")
	if !(boot < tiny && boot < mi && boot < buddy) {
		t.Errorf("bootalloc %v not fastest (tiny=%v mi=%v buddy=%v)", boot, tiny, mi, buddy)
	}
	if !(buddy > 2*tlsf) {
		t.Errorf("buddy %v not dominating tlsf %v", buddy, tlsf)
	}
	if buddy < 2*time.Millisecond || buddy > 5*time.Millisecond {
		t.Errorf("buddy nginx boot = %v, want ~3ms (Fig 14)", buddy)
	}
	if boot > time.Millisecond {
		t.Errorf("bootalloc nginx boot = %v, want ~0.5ms (Fig 14)", boot)
	}
}

func TestPageTableModes(t *testing.T) {
	// Fig 21 series: static 1GB ~29us; dynamic grows with memory and
	// exceeds static even at 32MB.
	ptCost := func(mode PTMode, mem int) time.Duration {
		m := sim.NewMachine()
		cfg := helloCfg(ukplat.Solo5)
		cfg.PTMode = mode
		cfg.MemBytes = mem
		vm, err := Boot(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer vm.Close()
		for _, s := range vm.Report.Steps {
			if s.Name == "pagetable" {
				return s.Duration
			}
		}
		t.Fatal("no pagetable step")
		return 0
	}
	static1G := ptCost(PTStatic, 1<<30)
	if static1G < 25*time.Microsecond || static1G > 35*time.Microsecond {
		t.Errorf("static 1GB = %v, want ~29us", static1G)
	}
	prev := time.Duration(0)
	for _, mem := range []int{32 << 20, 128 << 20, 512 << 20, 1 << 30, 2 << 30} {
		d := ptCost(PTDynamic, mem)
		if d <= prev {
			t.Errorf("dynamic %dMB = %v, not increasing (prev %v)", mem>>20, d, prev)
		}
		prev = d
	}
	dyn32 := ptCost(PTDynamic, 32<<20)
	if dyn32 <= static1G {
		t.Errorf("dynamic 32MB (%v) should exceed static 1GB (%v), Fig 21", dyn32, static1G)
	}
	dyn2G := ptCost(PTDynamic, 2<<30)
	if dyn2G < 80*time.Microsecond || dyn2G > 120*time.Microsecond {
		t.Errorf("dynamic 2GB = %v, want ~93us", dyn2G)
	}
	none := ptCost(PTNone, 1<<30)
	if none >= static1G {
		t.Errorf("PTNone (%v) should be cheapest (static %v)", none, static1G)
	}
}

func TestMinMemoryHello(t *testing.T) {
	cfg := helloCfg(ukplat.KVMQemu)
	cfg.MemBytes = 0
	min, err := MinMemory(cfg, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 11: Unikraft hello needs ~2MB.
	if min < 1<<20 || min > 3<<20 {
		t.Errorf("hello min memory = %dMB, want ~2MB", min>>20)
	}
}

func TestMinMemoryMonotoneInFloor(t *testing.T) {
	cfg := helloCfg(ukplat.KVMQemu)
	cfg.MemBytes = 0
	small, err := MinMemory(cfg, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	big, err := MinMemory(cfg, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Errorf("min memory with 8MB floor (%d) <= with 128KB floor (%d)", big, small)
	}
}

// --- page table unit tests ---------------------------------------------

func TestPageTableMapTranslate(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0, 0, 4<<20); err != nil {
		t.Fatal(err)
	}
	for _, virt := range []uint64{0, 4096, 123456, (4 << 20) - 1} {
		phys, err := pt.Translate(virt)
		if err != nil {
			t.Fatalf("Translate(%#x): %v", virt, err)
		}
		if phys != virt {
			t.Fatalf("Translate(%#x) = %#x, want identity", virt, phys)
		}
	}
	if _, err := pt.Translate(4 << 20); err != ErrUnmapped {
		t.Errorf("Translate beyond mapping = %v, want ErrUnmapped", err)
	}
}

func TestPageTableNonIdentity(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0xffff_0000, 0x10_0000, 8192); err != nil {
		t.Fatal(err)
	}
	phys, err := pt.Translate(0xffff_0000 + 4096 + 12)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(0x10_0000 + 4096 + 12); phys != want {
		t.Fatalf("phys = %#x, want %#x", phys, want)
	}
}

func TestPageTableUnmap(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0, 0, 8192); err != nil {
		t.Fatal(err)
	}
	if err := pt.Unmap(4096); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.Translate(4096); err != ErrUnmapped {
		t.Errorf("Translate after Unmap = %v, want ErrUnmapped", err)
	}
	if _, err := pt.Translate(0); err != nil {
		t.Errorf("neighbour page lost: %v", err)
	}
	if err := pt.Unmap(4096); err != ErrUnmapped {
		t.Errorf("double Unmap = %v, want ErrUnmapped", err)
	}
}

func TestPageTableUnaligned(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(123, 0, 4096); err == nil {
		t.Error("unaligned Map succeeded")
	}
}

// TestPageTableTableCount property: tables = 1 PML4 + ceil-divisions of
// each level for a [0, bytes) identity mapping.
func TestPageTableTableCount(t *testing.T) {
	f := func(mb uint8) bool {
		bytes := (int(mb)%512 + 1) << 20
		pt := NewPageTable()
		if err := pt.Map(0, 0, bytes); err != nil {
			return false
		}
		pages := bytes / PageSize
		ceil := func(a, b int) int { return (a + b - 1) / b }
		ptTables := ceil(pages, 512)
		pdTables := ceil(ptTables, 512)
		pdptTables := ceil(pdTables, 512)
		want := 1 + pdptTables + pdTables + ptTables
		return pt.Tables == want && pt.Mapped == pages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
