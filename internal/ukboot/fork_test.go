package ukboot

import (
	"reflect"
	"testing"
	"time"

	_ "unikraft/internal/allocators/bootalloc"
	_ "unikraft/internal/allocators/tlsf"
	"unikraft/internal/sim"
	"unikraft/internal/ukplat"
	"unikraft/internal/uksched"
)

// nginxCfg is the Fig 14-shaped nginx boot: firecracker, one NIC, the
// full profile lib set including a scheduler.
func nginxCfg() Config {
	return Config{
		Platform:   ukplat.KVMFirecracker,
		MemBytes:   64 << 20,
		ImageBytes: 1600 << 10,
		PTMode:     PTStatic,
		Allocator:  "tlsf",
		NICs:       1,
		Libs:       []string{"lwip", "vfscore", "ramfs", "uksched"},
		Scheduler:  uksched.Cooperative,
	}
}

// TestForkBootEquivalence: a forked clone must be observationally
// identical to a freshly booted VM — same memory layout, same heap size
// and pristine allocator state, same initialized lib set, same
// scheduler presence — only cheaper to reach.
func TestForkBootEquivalence(t *testing.T) {
	for _, cfg := range []Config{
		nginxCfg(),
		{Platform: ukplat.KVMQemu, MemBytes: 8 << 20, ImageBytes: 256 << 10, Allocator: "bootalloc"},
		{Platform: ukplat.Solo5, MemBytes: 32 << 20, ImageBytes: 512 << 10, PTMode: PTDynamic, Allocator: "tlsf", Libs: []string{"vfscore"}},
		{Platform: ukplat.LinuxUserspace, MemBytes: 8 << 20, ImageBytes: 256 << 10, PTMode: PTNone, Allocator: "tlsf"},
	} {
		ctx, err := NewContext(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := ctx.Boot(sim.NewMachine())
		if err != nil {
			t.Fatal(err)
		}
		defer ref.Close()
		snap, err := ctx.Snapshot(sim.NewMachine())
		if err != nil {
			t.Fatal(err)
		}
		defer snap.Close()
		clone, err := ctx.Fork(sim.NewMachine(), snap)
		if err != nil {
			t.Fatal(err)
		}
		defer clone.Close()

		if !clone.Forked {
			t.Error("clone not marked Forked")
		}
		if !reflect.DeepEqual(clone.Regions, ref.Regions) {
			t.Errorf("%s: regions differ: %+v vs %+v", cfg.Platform.VMM, clone.Regions, ref.Regions)
		}
		if !reflect.DeepEqual(clone.InitLibs, ref.InitLibs) {
			t.Errorf("%s: lib set differs: %v vs %v", cfg.Platform.VMM, clone.InitLibs, ref.InitLibs)
		}
		cs, rs := clone.Heap.Stats(), ref.Heap.Stats()
		if cs.HeapBytes != rs.HeapBytes || cs.FreeBytes != rs.FreeBytes || cs.Mallocs != 0 {
			t.Errorf("%s: heap state differs: clone %+v vs boot %+v", cfg.Platform.VMM, cs, rs)
		}
		if clone.Heap.Name() != ref.Heap.Name() {
			t.Errorf("%s: allocator %s vs %s", cfg.Platform.VMM, clone.Heap.Name(), ref.Heap.Name())
		}
		if (clone.Sched == nil) != (ref.Sched == nil) {
			t.Errorf("%s: scheduler presence differs", cfg.Platform.VMM)
		}
		if (clone.PageTable == nil) != (ref.PageTable == nil) {
			t.Errorf("%s: page table presence differs", cfg.Platform.VMM)
		}
		if clone.PageTable != nil {
			// An untouched mid-heap page still translates like the
			// template's identity map; the clone shares it. (The stack
			// and heap metadata pages were faulted private at fork.)
			probe := uint64(cfg.MemBytes) / 2
			phys, err := clone.PageTable.Translate(probe)
			if err != nil || phys != probe {
				t.Errorf("%s: clone Translate(%#x) = %#x, %v", cfg.Platform.VMM, probe, phys, err)
			}
		}
		// The clone serves allocations like a fresh boot.
		if _, err := clone.Heap.Malloc(64 << 10); err != nil {
			t.Errorf("%s: clone heap Malloc: %v", cfg.Platform.VMM, err)
		}
		// And recycles like one (the pool keeps VM.Reset for warm reuse).
		if err := clone.Reset(); err != nil {
			t.Errorf("%s: clone Reset: %v", cfg.Platform.VMM, err)
		}
	}
}

// TestForkSpeedup: the acceptance bar — fork-boot at least 5x faster
// than a cold boot for the nginx config, and well below a millisecond
// on firecracker.
func TestForkSpeedup(t *testing.T) {
	ctx, err := NewContext(nginxCfg())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := ctx.Boot(sim.NewMachine())
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	snap, err := ctx.Snapshot(sim.NewMachine())
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	fork, err := ctx.Fork(sim.NewMachine(), snap)
	if err != nil {
		t.Fatal(err)
	}
	defer fork.Close()

	if 5*fork.Report.Total() > cold.Report.Total() {
		t.Errorf("fork %v not 5x below cold boot %v", fork.Report.Total(), cold.Report.Total())
	}
	if fork.Report.Total() > time.Millisecond {
		t.Errorf("fork total %v, want sub-millisecond on firecracker", fork.Report.Total())
	}
	if fork.Report.Guest <= 0 || fork.Report.VMM <= 0 {
		t.Errorf("fork charged nothing: %+v", fork.Report)
	}
}

// TestCOWInvariants: writes in one clone are never visible in the
// template or in sibling clones, faults charge once, and the faulted
// page visibly moves to a private frame.
func TestCOWInvariants(t *testing.T) {
	cfg := nginxCfg()
	ctx, err := NewContext(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ctx.Snapshot(sim.NewMachine())
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	mA, mB := sim.NewMachine(), sim.NewMachine()
	a, err := ctx.Fork(mA, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ctx.Fork(mB, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const virt = uint64(16 << 20) // an untouched page in the heap
	before := mA.CPU.Cycles()
	copied, err := a.PageTable.WriteFault(mA.Charge, virt)
	if err != nil || !copied {
		t.Fatalf("first write fault: copied=%v err=%v", copied, err)
	}
	if mA.CPU.Cycles() == before {
		t.Error("first fault charged nothing")
	}
	physA, err := a.PageTable.Translate(virt)
	if err != nil {
		t.Fatal(err)
	}
	if physA == virt {
		t.Errorf("faulted page still translates to the shared frame %#x", physA)
	}

	// Template and sibling still see the original shared frame.
	for name, pt := range map[string]*PageTable{"template": snap.Template().PageTable, "sibling": b.PageTable} {
		phys, err := pt.Translate(virt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if phys != virt {
			t.Errorf("%s sees clone A's write: %#x", name, phys)
		}
	}

	// Second write to the same page: already private, free of charge.
	before = mA.CPU.Cycles()
	copied, err = a.PageTable.WriteFault(mA.Charge, virt+8)
	if err != nil || copied {
		t.Fatalf("second fault: copied=%v err=%v", copied, err)
	}
	if mA.CPU.Cycles() != before {
		t.Error("second write to a private page charged")
	}

	// Unmap in a clone privatizes the path too: the template and the
	// sibling keep the mapping.
	if err := a.PageTable.Unmap(virt + PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := a.PageTable.Translate(virt + PageSize); err != ErrUnmapped {
		t.Errorf("clone Translate after Unmap = %v, want ErrUnmapped", err)
	}
	for name, pt := range map[string]*PageTable{"template": snap.Template().PageTable, "sibling": b.PageTable} {
		if phys, err := pt.Translate(virt + PageSize); err != nil || phys != virt+PageSize {
			t.Errorf("%s lost its mapping to clone A's Unmap: %#x, %v", name, phys, err)
		}
	}

	// Clone heaps are disjoint memory: dirtying one arena leaves the
	// others (and the template's) untouched.
	aArena, bArena, tArena := a.Heap.Arena(), b.Heap.Arena(), snap.Template().Heap.Arena()
	p, err := a.Heap.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	aArena[int(p)] = 0xAB
	if bArena[int(p)] == 0xAB || tArena[int(p)] == 0xAB {
		t.Error("clone A's heap write visible in sibling or template arena")
	}
	if a.PageTable.PrivatePages == 0 || a.PageTable.SharedTables == 0 {
		t.Errorf("clone accounting: private=%d shared=%d", a.PageTable.PrivatePages, a.PageTable.SharedTables)
	}
}

// TestForkDeterminism: forks of the same snapshot charge identical
// virtual time — the property pool fleets rely on.
func TestForkDeterminism(t *testing.T) {
	ctx, err := NewContext(nginxCfg())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ctx.Snapshot(sim.NewMachine())
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	var first Report
	for i := 0; i < 3; i++ {
		vm, err := ctx.Fork(sim.NewMachine(), snap)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = vm.Report
		} else if !reflect.DeepEqual(vm.Report, first) {
			t.Errorf("fork %d report %+v differs from first %+v", i, vm.Report, first)
		}
		vm.Close()
	}
}

// TestInitStages: the staged init-table scheduler must honor the boot
// ordering invariants (allocator before everything, bus before virtio,
// NIC before lwip, vfscore before ramfs) while charging independent
// libs max instead of sum — so the staged guest boot is strictly
// faster, but never faster than its critical path.
func TestInitStages(t *testing.T) {
	cfg := nginxCfg()
	seqCtx, err := NewContext(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ParallelInit = true
	stagedCtx, err := NewContext(cfg)
	if err != nil {
		t.Fatal(err)
	}

	stageOf := map[string]int{}
	for i, names := range stagedCtx.Stages() {
		for _, n := range names {
			stageOf[n] = i
		}
	}
	order := [][2]string{
		{"plat", "pagetable"},
		{"pagetable", "alloc:tlsf"},
		{"alloc:tlsf", "ukbus"},
		{"alloc:tlsf", "uksched"},
		{"ukbus", "virtio-net"},
		{"virtio-net", "lwip"},
		{"vfscore", "ramfs"},
		{"ramfs", "misc"},
	}
	for _, o := range order {
		a, aok := stageOf[o[0]]
		b, bok := stageOf[o[1]]
		if !aok || !bok {
			t.Fatalf("step %q or %q missing from stages %v", o[0], o[1], stagedCtx.Stages())
		}
		if a >= b {
			t.Errorf("ordering violated: %s (stage %d) not before %s (stage %d)", o[0], a, o[1], b)
		}
	}

	seq, err := seqCtx.Boot(sim.NewMachine())
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	staged, err := stagedCtx.Boot(sim.NewMachine())
	if err != nil {
		t.Fatal(err)
	}
	defer staged.Close()
	if staged.Report.Guest >= seq.Report.Guest {
		t.Errorf("staged guest boot %v not below sequential %v", staged.Report.Guest, seq.Report.Guest)
	}
	// Critical path floor: lwip is the most expensive constructor and
	// must still be fully charged somewhere.
	lwip, _ := LibInitCost("lwip")
	if floor := sim.NewMachine().CPU.Duration(lwip); staged.Report.Guest < floor {
		t.Errorf("staged guest boot %v below the lwip critical path %v", staged.Report.Guest, floor)
	}
	if seq.Report.VMM != staged.Report.VMM {
		t.Errorf("staging changed VMM time: %v vs %v", staged.Report.VMM, seq.Report.VMM)
	}
}

// TestMinMemorySnapshotBoot: the probed minimum for a SnapshotBoot
// config reserves the clone's private page-table pages, so it can only
// be at or above the plain minimum — and strictly above once the app
// floor leaves less slack than the reserve.
func TestMinMemorySnapshotBoot(t *testing.T) {
	// A fine-grained monitor (4KiB granules, well below the page-table
	// reserve) makes the reserve visible: with any coarser granularity
	// the probe's slack can hide it, which is exactly how the original
	// bug survived.
	fine := ukplat.Platform{
		Name: "test", VMM: "test",
		VMMSetup:       time.Millisecond,
		MemGranularity: 4 << 10,
	}
	base := Config{
		Platform:   fine,
		ImageBytes: 256 << 10,
		PTMode:     PTStatic,
		Allocator:  "bootalloc",
	}
	forked := base
	forked.SnapshotBoot = true

	const floor = 2 << 20
	plain, err := MinMemory(base, floor)
	if err != nil {
		t.Fatal(err)
	}
	fork, err := MinMemory(forked, floor)
	if err != nil {
		t.Fatal(err)
	}
	overhead := SnapshotPrivateBytes(Config{PTMode: PTStatic, MemBytes: plain})
	if overhead <= 0 {
		t.Fatal("no private-page overhead for a paged config")
	}
	if fork <= plain {
		t.Errorf("fork min %d not above plain min %d despite a %d-byte private reserve", fork, plain, overhead)
	}
	if fork < plain+overhead-2*fine.MemGranularity || fork > plain+overhead+2*fine.MemGranularity {
		t.Errorf("fork min %d not ~reserve above plain min %d (overhead %d)", fork, plain, overhead)
	}

	// PTNone clones share nothing table-shaped: no reserve.
	if got := SnapshotPrivateBytes(Config{PTMode: PTNone, MemBytes: 1 << 30}); got != 0 {
		t.Errorf("PTNone overhead = %d, want 0", got)
	}
}
