package ukboot

import (
	"fmt"

	"unikraft/internal/sim"
	"unikraft/internal/ukalloc"
	"unikraft/internal/ukplat"
	"unikraft/internal/uksched"
)

// This file implements snapshot-fork instantiation: boot one template
// VM per config, capture its post-init state as an immutable Snapshot,
// then stamp out clones copy-on-write. A fork charges only the VMM's
// snapshot-restore cost (ukplat.Platform.ForkSetup/ForkNICSetup), the
// clone's private-page faults (boot stack + heap allocator metadata)
// and a scheduler resume — not the full per-lib constructor chain — so
// cold instantiation drops from Fig 10's milliseconds to the
// sub-millisecond regime the paper's §6.1 argues specialized init makes
// possible.

// Fork calibration, in cycles at 3.6 GHz.
const (
	// schedResumeCycles rebuilds the clone's run queue and re-arms the
	// idle thread from the template's captured scheduler state — far
	// below the full uksched constructor (libInitCycles["uksched"]).
	schedResumeCycles = 9_000
	// heapAttachCycles re-seats the allocator over the clone's COW heap
	// view: pointer fixup of the metadata the faults just privatized.
	heapAttachCycles = 3_000
	// snapMarkPerTableCycles is the per-page-table cost of the one-time
	// MarkCOW pass at capture time (clear RW, set the COW bit, flush).
	snapMarkPerTableCycles = 700
)

// Snapshot is the captured post-init state of a template VM: the
// COW-marked page table, the heap arena metadata footprint and the
// initialized lib set. It is immutable once captured — every clone
// shares its pages read-only and privatizes on write — and safe to
// fork from concurrently.
type Snapshot struct {
	ctx      *Context
	template *VM
	pt       *PageTable // template's table, COW-marked; nil for PTNone
	// heapMetaBytes is the allocator's boot-time write-set: the pages
	// of the template arena that hold non-zero bytes right after init
	// (free-list heads, pool headers, boundary tags) — the only heap
	// pages a clone must fault in before serving. Measured by scanning
	// the real arena, not estimated: Stats' free-byte accounting counts
	// fragmentation holes the allocator never wrote, which would make
	// buddy-style backends look orders of magnitude dirtier than their
	// init path really is.
	heapMetaBytes int
	markedPages   int
}

// Snapshot boots a template instance on m through the full pipeline,
// then freezes it: the page table is COW-marked (charged to m — the
// capture pass is part of template setup, never of a fork) and the
// post-init heap footprint recorded. The returned snapshot owns the
// template; Close releases it.
func (c *Context) Snapshot(m *sim.Machine) (*Snapshot, error) {
	vm, err := c.Boot(m)
	if err != nil {
		return nil, fmt.Errorf("ukboot: snapshot template: %w", err)
	}
	snap := &Snapshot{ctx: c, template: vm}
	if vm.PageTable != nil {
		snap.markedPages = vm.PageTable.MarkCOW()
		snap.pt = vm.PageTable
		m.Charge(uint64(vm.PageTable.Tables) * snapMarkPerTableCycles)
	}
	if vm.Heap != nil {
		snap.heapMetaBytes = dirtyBytes(vm.Heap.Arena())
	}
	return snap, nil
}

// dirtyBytes counts the written (non-zero) pages of an arena, in bytes.
func dirtyBytes(arena []byte) int {
	pages := 0
	for off := 0; off < len(arena); off += PageSize {
		end := off + PageSize
		if end > len(arena) {
			end = len(arena)
		}
		for _, b := range arena[off:end] {
			if b != 0 {
				pages++
				break
			}
		}
	}
	return pages * PageSize
}

// Template returns the frozen template VM (read-only: its boot report
// and configuration identify what clones inherit).
func (s *Snapshot) Template() *VM { return s.template }

// MarkedPages reports how many 4KiB pages the capture marked COW.
func (s *Snapshot) MarkedPages() int { return s.markedPages }

// HeapMetaBytes reports the allocator metadata footprint clones fault
// in at fork time.
func (s *Snapshot) HeapMetaBytes() int { return s.heapMetaBytes }

// PrivateOverheadBytes is the clone-side guest memory reserve forks
// need beyond a plain boot (see SnapshotPrivateBytes).
func (s *Snapshot) PrivateOverheadBytes() int { return SnapshotPrivateBytes(s.ctx.cfg) }

// Close releases the template VM's resources. Outstanding clones stay
// valid: they only share immutable page-table pages.
func (s *Snapshot) Close() {
	if s.template != nil {
		s.template.Close()
	}
}

// forkSink redirects allocator cost charges. During fork-time heap
// re-initialization it is detached (the metadata rebuild is hidden
// behind the COW faults already charged — the clone resumes with the
// template's ready-made heap, it does not re-run the constructor);
// attach() then wires subsequent allocator work to the clone's machine.
type forkSink struct{ m *sim.Machine }

func (s *forkSink) Charge(n uint64) {
	if s.m != nil {
		s.m.Charge(n)
	}
}

// Fork instantiates a clone of snap on machine m, copy-on-write. The
// clone charges the monitor's snapshot-restore cost, a private root
// table, write faults for the pages every boot dirties (the stack and
// the heap allocator metadata) and a scheduler resume — then it is
// observationally identical to a freshly booted VM: same regions, same
// heap size and allocator state, same initialized lib set.
func (c *Context) Fork(m *sim.Machine, snap *Snapshot) (*VM, error) {
	if snap == nil || snap.ctx != c {
		return nil, fmt.Errorf("ukboot: Fork needs a snapshot captured from this context")
	}
	vm := &VM{
		Machine:  m,
		Platform: c.cfg.Platform,
		Config:   c.cfg,
		Regions:  c.regions,
		InitLibs: c.initLibs,
		Forked:   true,
	}

	// --- VMM phase: restore from snapshot, not cold start --------------
	vmmStart := m.CPU.Cycles()
	m.ChargeDuration(c.cfg.Platform.ForkSetup)
	for i := 0; i < c.cfg.NICs; i++ {
		m.ChargeDuration(c.cfg.Platform.ForkNICSetup)
		// Multi-queue NICs remap one descriptor ring pair per clone per
		// queue; the template's tap/vhost plumbing is shared, so each
		// extra queue costs queue wiring, not NIC setup.
		for q := 1; q < c.cfg.NetQueues; q++ {
			m.ChargeDuration(c.cfg.Platform.NICQueueSetup)
		}
	}
	vm.Report.VMM = m.CPU.Duration(m.CPU.Cycles() - vmmStart)

	// --- Guest phase: private pages + dirty-state fixup -----------------
	guestStart := m.CPU.Cycles()
	step := func(name string, fn func() error) error {
		s := m.CPU.Cycles()
		if err := fn(); err != nil {
			return fmt.Errorf("ukboot: fork step %s: %w", name, err)
		}
		vm.Report.Steps = append(vm.Report.Steps, Step{
			Name:     name,
			Duration: m.CPU.Duration(m.CPU.Cycles() - s),
		})
		return nil
	}

	if err := step("cow-pagetable", func() error {
		if snap.pt != nil {
			vm.PageTable = snap.pt.Fork(m.Charge)
		} else {
			m.Charge(forkRootCycles) // PTNone: attach the flat address space
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if err := step("cow-faults", func() error {
		return c.faultDirtyPages(m, vm, snap)
	}); err != nil {
		return nil, err
	}

	if err := step("heap-attach", func() error {
		// The clone's heap view starts as the template's post-init
		// arena: rebuilding the same deterministic metadata over a
		// private arena models the COW copy without double-charging —
		// the sink is detached during init (the metadata pages were
		// faulted in above), then attached so later allocator work
		// charges the clone's machine.
		sink := &forkSink{}
		a, err := ukalloc.NewInitialized(c.cfg.Allocator, sink, c.heapBytes)
		if err != nil {
			return err
		}
		sink.m = m
		m.Charge(heapAttachCycles)
		vm.Allocs.Register(a)
		vm.Heap = a
		return nil
	}); err != nil {
		return nil, err
	}

	if c.hasSched() {
		if err := step("sched-resume", func() error {
			m.Charge(schedResumeCycles)
			vm.Sched = uksched.New(c.cfg.Scheduler, m)
			return nil
		}); err != nil {
			return nil, err
		}
	}

	if c.cfg.RootFS != RootNone {
		// The clone's filesystem view: COW over the template's ramfs
		// tree (reads share the template bytes, writes privatize), a
		// read-only View of the sealed SHFS volume, or a fresh 9p mount
		// over the shared host export — see forkRootFS.
		if err := step("rootfs-cow", func() error {
			return c.forkRootFS(vm, m, snap.template)
		}); err != nil {
			return nil, err
		}
	}

	vm.Report.Guest = m.CPU.Duration(m.CPU.Cycles() - guestStart)
	return vm, nil
}

// faultDirtyPages charges the clone's unavoidable first writes: every
// page of the boot stack (the fork resumes mid-call-chain) and the heap
// allocator's metadata pages. With a real page table each fault goes
// through WriteFault (privatizing the table path as it goes); under
// PTNone the same per-page copy cost is charged directly.
func (c *Context) faultDirtyPages(m *sim.Machine, vm *VM, snap *Snapshot) error {
	fault := func(base uint64, bytes int) error {
		if bytes <= 0 {
			return nil
		}
		if vm.PageTable == nil {
			pages := (bytes + PageSize - 1) / PageSize
			m.Charge(uint64(pages) * cowFaultCycles)
			return nil
		}
		end := base + uint64(bytes)
		for virt := base &^ uint64(PageSize-1); virt < end; virt += PageSize {
			if _, err := vm.PageTable.WriteFault(m.Charge, virt); err != nil {
				return fmt.Errorf("fault %#x: %w", virt, err)
			}
		}
		return nil
	}
	for _, r := range c.regions {
		switch r.Kind {
		case ukplat.RegionStack:
			if err := fault(r.Base, r.Bytes); err != nil {
				return err
			}
		case ukplat.RegionHeap:
			meta := snap.heapMetaBytes
			if meta > r.Bytes {
				meta = r.Bytes
			}
			if err := fault(r.Base, meta); err != nil {
				return err
			}
		}
	}
	return nil
}

// hasSched reports whether the boot recipe creates a scheduler.
func (c *Context) hasSched() bool {
	for _, st := range c.steps {
		if st.kind == stepSched {
			return true
		}
	}
	return false
}
