package ukboot

import (
	"testing"

	_ "unikraft/internal/allocators/tlsf"
	"unikraft/internal/sim"
)

// BenchmarkBoot measures the full cold-boot pipeline through a reusable
// Context — the pool's cold-start path before snapshot forking.
// ReportAllocs guards the precomputed-step design: a boot should cost a
// handful of allocations (VM, page table, heap arena), not per-step
// closures or map lookups.
func BenchmarkBoot(b *testing.B) {
	ctx, err := NewContext(nginxCfg())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var virtUS float64
	for i := 0; i < b.N; i++ {
		vm, err := ctx.Boot(sim.NewMachine())
		if err != nil {
			b.Fatal(err)
		}
		virtUS = float64(vm.Report.Total().Microseconds())
		vm.Close()
	}
	b.ReportMetric(virtUS, "virt-boot-us")
}

// BenchmarkForkBoot measures snapshot-fork instantiation: one template
// snapshot amortized over the run, one COW fork per iteration. The
// simulated cost (virt-boot-us) must sit far below BenchmarkBoot's,
// and allocs/op below the full pipeline's; B/op stays comparable
// because each clone owns a real private arena — the simulation models
// guest-side COW, not host-side arena sharing.
func BenchmarkForkBoot(b *testing.B) {
	ctx, err := NewContext(nginxCfg())
	if err != nil {
		b.Fatal(err)
	}
	snap, err := ctx.Snapshot(sim.NewMachine())
	if err != nil {
		b.Fatal(err)
	}
	defer snap.Close()
	b.ReportAllocs()
	b.ResetTimer()
	var virtUS float64
	for i := 0; i < b.N; i++ {
		vm, err := ctx.Fork(sim.NewMachine(), snap)
		if err != nil {
			b.Fatal(err)
		}
		virtUS = float64(vm.Report.Total().Microseconds())
		vm.Close()
	}
	b.ReportMetric(virtUS, "virt-boot-us")
}
