package ukboot

import (
	"bytes"
	"testing"

	"unikraft/internal/sim"
	"unikraft/internal/ukplat"
	"unikraft/internal/vfscore"
)

var testSite = map[string][]byte{
	"/index.html":    []byte("<html>hello</html>"),
	"/assets/a.css":  []byte("body{}"),
	"/assets/b.js":   bytes.Repeat([]byte("x"), 5000),
	"/data/blob.bin": bytes.Repeat([]byte("y"), 70000),
}

func rootfsConfig(rootFS string) Config {
	return Config{
		Platform:       ukplat.KVMQemu,
		MemBytes:       32 << 20,
		ImageBytes:     1 << 20,
		PTMode:         PTStatic,
		Allocator:      "tlsf",
		Libs:           []string{"vfscore", "ramfs"},
		RootFS:         rootFS,
		Files:          testSite,
		PageCachePages: 64,
	}
}

func readAll(t *testing.T, v *vfscore.VFS, path string) []byte {
	t.Helper()
	fd, err := v.Open(path, vfscore.ORdOnly)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer v.Close(fd)
	var out []byte
	if _, err := v.Sendfile(fd, 0, -1, func(p []byte) error {
		out = append(out, p...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBootRootFSRamfs: a boot with RootFS "ramfs" owns a live VFS
// holding the populated site (nested directories included), and the
// population charged guest time.
func TestBootRootFSRamfs(t *testing.T) {
	bare, err := Boot(sim.NewMachine(), func() Config { c := rootfsConfig(""); c.Files = nil; return c }())
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	vm, err := Boot(sim.NewMachine(), rootfsConfig(RootRamfs))
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Close()
	if vm.VFS == nil || vm.RootFS == nil || vm.SHFS != nil {
		t.Fatalf("ramfs boot: VFS=%v RootFS=%v SHFS=%v", vm.VFS, vm.RootFS, vm.SHFS)
	}
	for path, want := range testSite {
		if got := readAll(t, vm.VFS, path); !bytes.Equal(got, want) {
			t.Errorf("%s: got %d bytes, want %d", path, len(got), len(want))
		}
	}
	if vm.Report.Guest <= bare.Report.Guest {
		t.Errorf("populated boot (%v) not above bare boot (%v)", vm.Report.Guest, bare.Report.Guest)
	}
	found := false
	for _, s := range vm.Report.Steps {
		if s.Name == "rootfs:ramfs" {
			found = true
			if s.Duration <= 0 {
				t.Error("rootfs step charged nothing")
			}
		}
	}
	if !found {
		t.Errorf("no rootfs step in report: %v", vm.Report.Steps)
	}
}

// TestBootRootFSSHFS: the specialized volume is attached, sealed, and
// holds every object.
func TestBootRootFSSHFS(t *testing.T) {
	vm, err := Boot(sim.NewMachine(), func() Config {
		c := rootfsConfig(RootSHFS)
		c.PageCachePages = 0 // no vfscore underneath
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Close()
	if vm.SHFS == nil || vm.VFS != nil {
		t.Fatalf("shfs boot: SHFS=%v VFS=%v", vm.SHFS, vm.VFS)
	}
	if !vm.SHFS.Sealed() {
		t.Error("boot-time volume not sealed")
	}
	for path, want := range testSite {
		h, err := vm.SHFS.Open(path)
		if err != nil {
			t.Fatalf("shfs open %s: %v", path, err)
		}
		if size, _ := vm.SHFS.Size(h); size != int64(len(want)) {
			t.Errorf("%s: size %d, want %d", path, size, len(want))
		}
	}
}

// TestBootRootFS9pfs: the 9p-mounted root serves the host export
// through the guest VFS.
func TestBootRootFS9pfs(t *testing.T) {
	vm, err := Boot(sim.NewMachine(), rootfsConfig(Root9pfs))
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Close()
	if vm.VFS == nil || vm.NinePHost == nil {
		t.Fatalf("9pfs boot: VFS=%v host=%v", vm.VFS, vm.NinePHost)
	}
	if got := readAll(t, vm.VFS, "/index.html"); !bytes.Equal(got, testSite["/index.html"]) {
		t.Errorf("/index.html through 9pfs = %q", got)
	}
}

// TestNinePfsPageCacheHits: the guest page cache must actually hit
// across separate opens of the same 9pfs path — which requires the 9p
// client's dentry cache to hand back stable node identities — and a
// write through one descriptor must invalidate what another cached.
func TestNinePfsPageCacheHits(t *testing.T) {
	vm, err := Boot(sim.NewMachine(), rootfsConfig(Root9pfs))
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Close()
	for i := 0; i < 3; i++ {
		if got := readAll(t, vm.VFS, "/assets/b.js"); !bytes.Equal(got, testSite["/assets/b.js"]) {
			t.Fatalf("read %d mismatch", i)
		}
	}
	st := vm.VFS.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("no page-cache hits across repeat 9pfs opens (stats %+v): node identity unstable?", st)
	}

	// Write via a fresh descriptor, then re-read through yet another:
	// the cache must serve the new bytes.
	fd, err := vm.VFS.Open("/assets/b.js", vfscore.OWrOnly|vfscore.OTrunc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.VFS.Write(fd, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	vm.VFS.Close(fd)
	if got := readAll(t, vm.VFS, "/assets/b.js"); string(got) != "fresh" {
		t.Fatalf("stale page served after cross-descriptor write: %q", got)
	}
}

// TestNinePfsSharedExportCoherence: 9pfs clones share one mutable host
// tree; a remove+recreate by one clone must become visible to a
// sibling that had already looked the path up (dentry revalidation by
// qid), including through its page cache (the replacement is a new
// node, so no stale pages can hit).
func TestNinePfsSharedExportCoherence(t *testing.T) {
	ctx, err := NewContext(func() Config {
		c := rootfsConfig(Root9pfs)
		c.SnapshotBoot = true
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ctx.Snapshot(sim.NewMachine())
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	a, err := ctx.Fork(sim.NewMachine(), snap)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ctx.Fork(sim.NewMachine(), snap)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// A reads (warming its dentry and page caches)...
	if got := readAll(t, a.VFS, "/index.html"); !bytes.Equal(got, testSite["/index.html"]) {
		t.Fatalf("clone A initial read = %q", got)
	}
	// ...B replaces the file on the shared export...
	if err := b.VFS.Unlink("/index.html"); err != nil {
		t.Fatal(err)
	}
	fd, err := b.VFS.Open("/index.html", vfscore.OCreate|vfscore.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.VFS.Write(fd, []byte("replaced-by-B")); err != nil {
		t.Fatal(err)
	}
	b.VFS.Close(fd)
	// ...and A must observe the replacement, not its cached object.
	if got := readAll(t, a.VFS, "/index.html"); string(got) != "replaced-by-B" {
		t.Fatalf("clone A sees stale shared-export content: %q", got)
	}
	// A removal alone is visible too.
	if err := b.VFS.Unlink("/index.html"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.VFS.Open("/index.html", vfscore.ORdOnly); err != vfscore.ErrNotExist {
		t.Fatalf("clone A still opens a file B removed: %v", err)
	}
}

// TestBootRootFSValidation: unknown backends and files-without-rootfs
// fail fast at context construction.
func TestBootRootFSValidation(t *testing.T) {
	bad := rootfsConfig("ext4")
	if _, err := NewContext(bad); err == nil {
		t.Error("unknown rootfs accepted")
	}
	orphan := rootfsConfig("")
	if _, err := NewContext(orphan); err == nil {
		t.Error("Files without RootFS accepted")
	}
}

// TestRootFSStaged: with ParallelInit the rootfs mount runs in its own
// sequential stage after the constructor levels — never parallelized
// with the charges it depends on.
func TestRootFSStaged(t *testing.T) {
	cfg := rootfsConfig(RootRamfs)
	cfg.ParallelInit = true
	ctx, err := NewContext(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stages := ctx.Stages()
	rootStage := -1
	vfsStage := -1
	for i, names := range stages {
		for _, n := range names {
			switch n {
			case "rootfs:ramfs":
				rootStage = i
				if len(names) != 1 {
					t.Errorf("rootfs shares stage %v", names)
				}
			case "vfscore":
				vfsStage = i
			}
		}
	}
	if rootStage < 0 || vfsStage < 0 {
		t.Fatalf("stages missing rootfs/vfscore: %v", stages)
	}
	if rootStage <= vfsStage {
		t.Errorf("rootfs stage %d not after vfscore stage %d", rootStage, vfsStage)
	}
	vm, err := ctx.Boot(sim.NewMachine())
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Close()
	if vm.VFS == nil {
		t.Error("staged boot lost the VFS")
	}
}

// TestForkSharesRootFSCOW: forked clones read the template's site
// without duplicating it, writes in one clone are invisible to the
// template and siblings, and SHFS clones get sealed views charging
// their own machines.
func TestForkSharesRootFSCOW(t *testing.T) {
	ctx, err := NewContext(func() Config {
		c := rootfsConfig(RootRamfs)
		c.SnapshotBoot = true
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ctx.Snapshot(sim.NewMachine())
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	a, err := ctx.Fork(sim.NewMachine(), snap)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ctx.Fork(sim.NewMachine(), snap)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if a.VFS == nil || b.VFS == nil {
		t.Fatal("clones have no VFS")
	}
	want := testSite["/assets/b.js"]
	if got := readAll(t, a.VFS, "/assets/b.js"); !bytes.Equal(got, want) {
		t.Fatalf("clone A read %d bytes, want %d", len(got), len(want))
	}

	// Clone A rewrites the index; B and the template must not see it.
	fd, err := a.VFS.Open("/index.html", vfscore.OWrOnly|vfscore.OTrunc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.VFS.Write(fd, []byte("A-PRIVATE")); err != nil {
		t.Fatal(err)
	}
	a.VFS.Close(fd)
	if got := readAll(t, a.VFS, "/index.html"); string(got) != "A-PRIVATE" {
		t.Fatalf("clone A sees %q after its own write", got)
	}
	if got := readAll(t, b.VFS, "/index.html"); !bytes.Equal(got, testSite["/index.html"]) {
		t.Fatalf("COW leak: clone B sees %q", got)
	}
	if got := readAll(t, snap.Template().VFS, "/index.html"); !bytes.Equal(got, testSite["/index.html"]) {
		t.Fatalf("COW leak: template sees %q", got)
	}
}

// TestForkSHFSView: shfs-rooted clones share the sealed volume through
// per-clone views billing their own machines.
func TestForkSHFSView(t *testing.T) {
	ctx, err := NewContext(func() Config {
		c := rootfsConfig(RootSHFS)
		c.PageCachePages = 0
		c.SnapshotBoot = true
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ctx.Snapshot(sim.NewMachine())
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	m := sim.NewMachine()
	clone, err := ctx.Fork(m, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer clone.Close()
	if clone.SHFS == nil {
		t.Fatal("clone has no SHFS view")
	}
	if err := clone.SHFS.Add("/new", nil); err == nil {
		t.Error("sealed view accepted Add")
	}
	before := m.CPU.Cycles()
	if _, err := clone.SHFS.Open("/index.html"); err != nil {
		t.Fatal(err)
	}
	if m.CPU.Cycles() == before {
		t.Error("view open charged the template's machine, not the clone's")
	}
}

// TestResetClearsVFSFDs: recycling an instance drops its open
// descriptors.
func TestResetClearsVFSFDs(t *testing.T) {
	vm, err := Boot(sim.NewMachine(), rootfsConfig(RootRamfs))
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Close()
	if _, err := vm.VFS.Open("/index.html", vfscore.ORdOnly); err != nil {
		t.Fatal(err)
	}
	if vm.VFS.OpenFDs() == 0 {
		t.Fatal("no fds open before reset")
	}
	if err := vm.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := vm.VFS.OpenFDs(); got != 0 {
		t.Errorf("OpenFDs after Reset = %d", got)
	}
}
