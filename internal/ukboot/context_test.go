package ukboot

import (
	"testing"

	"unikraft/internal/sim"
	"unikraft/internal/ukplat"
)

// TestContextBootMatchesBoot: a reusable Context must charge exactly
// the virtual time a one-off Boot does, step for step, across repeated
// boots — that equivalence is what lets the pool layer boot fleets
// through one Context without skewing the paper's boot numbers.
func TestContextBootMatchesBoot(t *testing.T) {
	cfgs := []Config{
		{Platform: ukplat.KVMQemu, MemBytes: 64 << 20, ImageBytes: 1 << 20, NICs: 1,
			Libs: []string{"lwip", "vfscore", "ramfs"}},
		{Platform: ukplat.KVMFirecracker, MemBytes: 8 << 20, ImageBytes: 512 << 10,
			Allocator: "buddy", Mount9pfs: true},
		{Platform: ukplat.Xen, MemBytes: 32 << 20, ImageBytes: 256 << 10,
			PTMode: PTDynamic, Libs: []string{"vfscore"}},
	}
	for _, cfg := range cfgs {
		ref, err := Boot(sim.NewMachine(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer ref.Close()
		ctx, err := NewContext(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			vm, err := ctx.Boot(sim.NewMachine())
			if err != nil {
				t.Fatal(err)
			}
			defer vm.Close()
			if vm.Report.VMM != ref.Report.VMM || vm.Report.Guest != ref.Report.Guest {
				t.Errorf("%s round %d: context boot %v+%v, one-off %v+%v",
					cfg.Platform.Name, round, vm.Report.VMM, vm.Report.Guest,
					ref.Report.VMM, ref.Report.Guest)
			}
			if len(vm.Report.Steps) != len(ref.Report.Steps) {
				t.Fatalf("%s: %d steps vs %d", cfg.Platform.Name,
					len(vm.Report.Steps), len(ref.Report.Steps))
			}
			for i, s := range vm.Report.Steps {
				if s != ref.Report.Steps[i] {
					t.Errorf("%s step %d: %+v vs %+v", cfg.Platform.Name, i, s, ref.Report.Steps[i])
				}
			}
		}
	}
}

// TestVMReset: recycling must leave a usable pristine heap and cost far
// less than a boot.
func TestVMReset(t *testing.T) {
	m := sim.NewMachine()
	vm, err := Boot(m, Config{Platform: ukplat.KVMFirecracker, MemBytes: 8 << 20, ImageBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Close()
	bootCycles := m.CPU.Cycles()

	// Dirty the heap, then lose the pointers (a tenant's garbage).
	for i := 0; i < 100; i++ {
		if _, err := vm.Heap.Malloc(4 << 10); err != nil {
			t.Fatal(err)
		}
	}
	used := vm.Heap.Stats().HeapBytes - vm.Heap.Stats().FreeBytes

	start := m.CPU.Cycles()
	if err := vm.Reset(); err != nil {
		t.Fatal(err)
	}
	resetCycles := m.CPU.Cycles() - start
	if resetCycles == 0 {
		t.Error("reset charged nothing; heap re-init has a real cost")
	}
	if resetCycles*10 > bootCycles {
		t.Errorf("reset cost %d cycles, want <10%% of the %d-cycle boot", resetCycles, bootCycles)
	}
	if vm.Heap.Stats().Mallocs != 0 {
		t.Error("reset heap still carries old counters")
	}
	fresh := vm.Heap.Stats().HeapBytes - vm.Heap.Stats().FreeBytes
	if fresh >= used {
		t.Errorf("reset did not reclaim the heap: %d used before, %d after", used, fresh)
	}
	if _, err := vm.Heap.Malloc(1 << 10); err != nil {
		t.Errorf("allocation on reset heap failed: %v", err)
	}
	if vm.Allocs.Default() != vm.Heap {
		t.Error("registry default not rewired to the reset heap")
	}
}
