package ukboot

import (
	"errors"
	"fmt"
)

// This file implements a real x86-64 4-level page table builder. The
// paper's §6.1 compares three guest paging strategies: a page table
// pre-initialized at link time and simply activated at boot (static),
// dynamic population of the whole table at boot (needed when the app
// will mmap), and no paging at all (32-bit protected mode). Figure 21
// measures static-1GB boot at 29us and dynamic boot rising from 46us
// (32MB) to 114us (3GB); the per-table work done here, charged through
// the machine cost model, reproduces that series.

// Page table geometry (x86-64, 4KiB pages).
const (
	PageSize   = 4096
	entryCount = 512

	pteP  = 1 << 0 // present
	pteRW = 1 << 1 // writable
	ptePS = 1 << 7 // huge page (unused: the guest maps 4KiB pages)
	// pteCOW is a software bit (x86-64 leaves 9-11 to the OS): the page
	// is shared with a snapshot template and must be copied on the first
	// write. Entries carrying it have pteRW cleared so real hardware
	// would fault exactly where WriteFault charges.
	pteCOW = 1 << 9
)

// ErrUnmapped is returned by Translate for addresses without a mapping.
var ErrUnmapped = errors.New("ukboot: address not mapped")

// table is one 512-entry page-table page.
type table struct {
	entries [entryCount]uint64
	// children mirrors entries for interior tables (index -> table).
	children [entryCount]*table
}

// PageTable is a 4-level x86-64 page table (PML4 -> PDPT -> PD -> PT).
type PageTable struct {
	root *table
	// Tables counts page-table pages allocated; boot charges per table.
	Tables int
	// Mapped counts 4KiB mappings installed.
	Mapped int

	// COW clone state (zero for ordinary tables). owned marks the table
	// pages this clone allocated privately; every other reachable table
	// still belongs to the snapshot template and must be copied before
	// any entry in it changes. privBase is the guest-physical base the
	// clone's private page copies are placed at (beyond the template's
	// identity-mapped memory, so a faulted page translates to a visibly
	// different frame than the shared original).
	owned    map[*table]bool
	privBase uint64
	// SharedTables counts template table pages this clone still
	// references; PrivateTables counts path copies made by write faults;
	// PrivatePages counts 4KiB data pages copied on first write.
	SharedTables  int
	PrivateTables int
	PrivatePages  int
}

// NewPageTable returns an empty 4-level table (one PML4 page).
func NewPageTable() *PageTable {
	return &PageTable{root: &table{}, Tables: 1}
}

// indices splits a canonical virtual address into the four level indices.
func indices(virt uint64) (i4, i3, i2, i1 int) {
	i4 = int(virt >> 39 & 0x1ff)
	i3 = int(virt >> 30 & 0x1ff)
	i2 = int(virt >> 21 & 0x1ff)
	i1 = int(virt >> 12 & 0x1ff)
	return
}

// walk returns the PT-level table for virt, allocating interior tables
// as needed. On a COW clone, shared interior tables are privatized
// before being returned so no mutation can ever reach the template.
func (pt *PageTable) walk(virt uint64) *table {
	i4, i3, i2, _ := indices(virt)
	t := pt.root
	for _, idx := range []int{i4, i3, i2} {
		child := t.children[idx]
		switch {
		case child == nil:
			child = &table{}
			t.children[idx] = child
			t.entries[idx] = pteP | pteRW // interior entries: present+rw
			pt.Tables++
			if pt.owned != nil {
				pt.owned[child] = true
			}
		case pt.owned != nil && !pt.owned[child]:
			child = pt.privatize(t, idx, child)
		}
		t = child
	}
	return t
}

// privatize replaces the shared child table at parent.children[idx]
// with a private copy owned by this clone (entries and grandchildren
// pointers are copied shallowly — grandchildren stay shared until they
// are privatized in turn). Callers on the calibrated fault path charge
// cowTableCopyCycles per copy; the walk/Unmap safety paths privatize
// uncharged — they exist so stray mutations cannot reach the template,
// not as a modeled boot cost.
func (pt *PageTable) privatize(parent *table, idx int, shared *table) *table {
	cp := &table{entries: shared.entries, children: shared.children}
	parent.children[idx] = cp
	pt.owned[cp] = true
	pt.Tables++
	pt.PrivateTables++
	pt.SharedTables--
	return cp
}

// Map installs an identity-style mapping of length bytes from virt to
// phys (both must be page-aligned). Ranges sharing a leaf table are
// filled with one walk, so mapping large regions is O(tables) walks
// rather than O(pages).
func (pt *PageTable) Map(virt, phys uint64, bytes int) error {
	if virt%PageSize != 0 || phys%PageSize != 0 {
		return fmt.Errorf("ukboot: unaligned mapping %#x -> %#x", virt, phys)
	}
	end := virt + uint64(bytes)
	for cur := virt; cur < end; {
		t := pt.walk(cur)
		_, _, _, i1 := indices(cur)
		for ; i1 < entryCount && cur < end; i1++ {
			t.entries[i1] = (phys + (cur - virt)) | pteP | pteRW
			pt.Mapped++
			cur += PageSize
		}
	}
	return nil
}

// Translate resolves a virtual address to the physical address.
func (pt *PageTable) Translate(virt uint64) (uint64, error) {
	i4, i3, i2, i1 := indices(virt)
	t := pt.root
	for _, idx := range []int{i4, i3, i2} {
		if t.children[idx] == nil {
			return 0, ErrUnmapped
		}
		t = t.children[idx]
	}
	e := t.entries[i1]
	if e&pteP == 0 {
		return 0, ErrUnmapped
	}
	return e&^uint64(0xfff) | virt&0xfff, nil
}

// Unmap removes the mapping for one page. On a COW clone the path is
// privatized first, so the unmap never reaches the template or sibling
// clones.
func (pt *PageTable) Unmap(virt uint64) error {
	i4, i3, i2, i1 := indices(virt)
	t := pt.root
	for _, idx := range []int{i4, i3, i2} {
		child := t.children[idx]
		if child == nil {
			return ErrUnmapped
		}
		if pt.owned != nil && !pt.owned[child] {
			child = pt.privatize(t, idx, child)
		}
		t = child
	}
	if t.entries[i1]&pteP == 0 {
		return ErrUnmapped
	}
	t.entries[i1] = 0
	pt.Mapped--
	return nil
}

// PTMode selects the guest paging strategy from §6.1.
type PTMode int

// Paging strategies.
const (
	// PTStatic: the image ships a pre-initialized page table; boot just
	// loads CR3 and enables paging (29us for 1GB, Fig 21).
	PTStatic PTMode = iota
	// PTDynamic: the entire table is populated at boot so the app can
	// later alter its address space (46-114us depending on memory).
	PTDynamic
	// PTNone: 32-bit protected mode, paging disabled entirely (§6.1:
	// "run in protected (32 bit) mode, disabling guest paging").
	PTNone
)

func (m PTMode) String() string {
	switch m {
	case PTStatic:
		return "static"
	case PTDynamic:
		return "dynamic"
	default:
		return "none"
	}
}

// Page-table boot cost calibration (Fig 21), in cycles at 3.6GHz.
const (
	// staticPTCycles: activate the pre-built table: 29us.
	staticPTCycles = 104_400
	// dynamicPTBaseCycles: fixed dynamic-path overhead (table walk setup,
	// CR3 load, TLB flush): ~44us — the 32MB point lands at 46us.
	dynamicPTBaseCycles = 160_000
	// dynamicPerTableCycles: cost to allocate+fill one 512-entry table
	// page: the 1GB..3GB slope is ~21.5us/GB = ~151 cycles per table.
	dynamicPerTableCycles = 151
	// noPTCycles: protected-mode setup without paging.
	noPTCycles = 18_000
)

// COW fork calibration, in cycles at 3.6GHz.
const (
	// cowFaultCycles is one copy-on-write fault: the write traps to the
	// hypervisor (VM-exit class, ~1.2us), the 4KiB page is copied
	// (~256 cycles at 16B/cycle) and the PTE is rewritten writable.
	cowFaultCycles = 4_700
	// cowTableCopyCycles copies one 512-entry page-table page while
	// privatizing the fault path (no exit: the table copy happens inside
	// the fault that is already being serviced).
	cowTableCopyCycles = 400
	// forkRootCycles sets up a clone's private PML4 and loads CR3.
	forkRootCycles = 2_000
)

// privatePhysBase is where a clone's private page copies are placed in
// guest-physical space: 1TiB, far beyond any guest memory this model
// boots, so a faulted page visibly translates to a different frame than
// the template's shared original.
const privatePhysBase = uint64(1) << 40

// MarkCOW freezes pt as an immutable snapshot template: every present
// leaf mapping loses its write bit and gains the software COW mark, so
// clones produced by Fork trap (WriteFault) on first write. Returns the
// number of pages marked. Marking is idempotent.
func (pt *PageTable) MarkCOW() int {
	marked := 0
	var mark func(t *table, level int)
	mark = func(t *table, level int) {
		if t == nil {
			return
		}
		if level == 1 { // PT level: leaf entries
			for i, e := range t.entries {
				if e&pteP != 0 {
					t.entries[i] = e&^uint64(pteRW) | pteCOW
					marked++
				}
			}
			return
		}
		for _, c := range t.children {
			mark(c, level-1)
		}
	}
	mark(pt.root, 4)
	return marked
}

// Fork returns a copy-on-write clone of a MarkCOW'd template: the clone
// gets a private root (PML4) whose entries point at the template's
// shared lower-level tables; charge receives the root-copy cost. Every
// mapping is shared until the clone's first write to it — WriteFault
// privatizes the path (PDPT/PD/PT copies) and the data page. The
// template itself must never be written again; MarkCOW enforces that
// for real hardware and the clone's bookkeeping enforces it here.
func (pt *PageTable) Fork(charge func(uint64)) *PageTable {
	root := &table{entries: pt.root.entries, children: pt.root.children}
	clone := &PageTable{
		root:         root,
		Tables:       1,
		Mapped:       pt.Mapped,
		owned:        map[*table]bool{root: true},
		privBase:     privatePhysBase,
		SharedTables: pt.Tables - 1,
	}
	if charge != nil {
		charge(forkRootCycles)
	}
	return clone
}

// IsForked reports whether pt is a COW clone produced by Fork.
func (pt *PageTable) IsForked() bool { return pt.owned != nil }

// WriteFault services the clone's first write to the page containing
// virt: the path from the root to the leaf is privatized (shared
// PDPT/PD/PT pages copied), the data page is copied to a private frame
// and the PTE is rewritten writable. Costs are charged through charge
// (which may be nil). The second and later writes to the same page find
// a writable private mapping and return copied=false at no cost —
// exactly the fault-once semantics that make fork boots cheap.
func (pt *PageTable) WriteFault(charge func(uint64), virt uint64) (copied bool, err error) {
	if pt.owned == nil {
		return false, nil // not a clone: all mappings are already private
	}
	i4, i3, i2, i1 := indices(virt)
	t := pt.root
	for _, idx := range []int{i4, i3, i2} {
		child := t.children[idx]
		if child == nil {
			return false, ErrUnmapped
		}
		if !pt.owned[child] {
			child = pt.privatize(t, idx, child)
			if charge != nil {
				charge(cowTableCopyCycles)
			}
		}
		t = child
	}
	e := t.entries[i1]
	if e&pteP == 0 {
		return false, ErrUnmapped
	}
	if e&pteCOW == 0 {
		return false, nil // already private and writable
	}
	t.entries[i1] = pt.privBase + uint64(pt.PrivatePages)*PageSize | pteP | pteRW
	pt.PrivatePages++
	if charge != nil {
		charge(cowFaultCycles)
	}
	return true, nil
}

// buildPageTable constructs (for PTDynamic) or activates (PTStatic) the
// guest page table for memBytes of RAM, charging the calibrated cost,
// and returns the table (nil for PTNone).
func buildPageTable(charge func(uint64), mode PTMode, memBytes int) (*PageTable, error) {
	switch mode {
	case PTStatic:
		// Pre-initialized at link time: boot only enables paging. We
		// still materialize the table so Translate works afterwards,
		// but the boot-time charge is the fixed activation cost.
		pt := NewPageTable()
		if err := pt.Map(0, 0, memBytes); err != nil {
			return nil, err
		}
		charge(staticPTCycles)
		return pt, nil
	case PTDynamic:
		pt := NewPageTable()
		if err := pt.Map(0, 0, memBytes); err != nil {
			return nil, err
		}
		charge(dynamicPTBaseCycles + uint64(pt.Tables)*dynamicPerTableCycles)
		return pt, nil
	case PTNone:
		charge(noPTCycles)
		return nil, nil
	}
	return nil, fmt.Errorf("ukboot: unknown PT mode %d", mode)
}
