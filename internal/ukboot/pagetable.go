package ukboot

import (
	"errors"
	"fmt"
)

// This file implements a real x86-64 4-level page table builder. The
// paper's §6.1 compares three guest paging strategies: a page table
// pre-initialized at link time and simply activated at boot (static),
// dynamic population of the whole table at boot (needed when the app
// will mmap), and no paging at all (32-bit protected mode). Figure 21
// measures static-1GB boot at 29us and dynamic boot rising from 46us
// (32MB) to 114us (3GB); the per-table work done here, charged through
// the machine cost model, reproduces that series.

// Page table geometry (x86-64, 4KiB pages).
const (
	PageSize   = 4096
	entryCount = 512

	pteP  = 1 << 0 // present
	pteRW = 1 << 1 // writable
	ptePS = 1 << 7 // huge page (unused: the guest maps 4KiB pages)
)

// ErrUnmapped is returned by Translate for addresses without a mapping.
var ErrUnmapped = errors.New("ukboot: address not mapped")

// table is one 512-entry page-table page.
type table struct {
	entries [entryCount]uint64
	// children mirrors entries for interior tables (index -> table).
	children [entryCount]*table
}

// PageTable is a 4-level x86-64 page table (PML4 -> PDPT -> PD -> PT).
type PageTable struct {
	root *table
	// Tables counts page-table pages allocated; boot charges per table.
	Tables int
	// Mapped counts 4KiB mappings installed.
	Mapped int
}

// NewPageTable returns an empty 4-level table (one PML4 page).
func NewPageTable() *PageTable {
	return &PageTable{root: &table{}, Tables: 1}
}

// indices splits a canonical virtual address into the four level indices.
func indices(virt uint64) (i4, i3, i2, i1 int) {
	i4 = int(virt >> 39 & 0x1ff)
	i3 = int(virt >> 30 & 0x1ff)
	i2 = int(virt >> 21 & 0x1ff)
	i1 = int(virt >> 12 & 0x1ff)
	return
}

// walk returns the PT-level table for virt, allocating interior tables
// as needed.
func (pt *PageTable) walk(virt uint64) *table {
	i4, i3, i2, _ := indices(virt)
	t := pt.root
	for _, idx := range []int{i4, i3, i2} {
		child := t.children[idx]
		if child == nil {
			child = &table{}
			t.children[idx] = child
			t.entries[idx] = pteP | pteRW // interior entries: present+rw
			pt.Tables++
		}
		t = child
	}
	return t
}

// Map installs an identity-style mapping of length bytes from virt to
// phys (both must be page-aligned). Ranges sharing a leaf table are
// filled with one walk, so mapping large regions is O(tables) walks
// rather than O(pages).
func (pt *PageTable) Map(virt, phys uint64, bytes int) error {
	if virt%PageSize != 0 || phys%PageSize != 0 {
		return fmt.Errorf("ukboot: unaligned mapping %#x -> %#x", virt, phys)
	}
	end := virt + uint64(bytes)
	for cur := virt; cur < end; {
		t := pt.walk(cur)
		_, _, _, i1 := indices(cur)
		for ; i1 < entryCount && cur < end; i1++ {
			t.entries[i1] = (phys + (cur - virt)) | pteP | pteRW
			pt.Mapped++
			cur += PageSize
		}
	}
	return nil
}

// Translate resolves a virtual address to the physical address.
func (pt *PageTable) Translate(virt uint64) (uint64, error) {
	i4, i3, i2, i1 := indices(virt)
	t := pt.root
	for _, idx := range []int{i4, i3, i2} {
		if t.children[idx] == nil {
			return 0, ErrUnmapped
		}
		t = t.children[idx]
	}
	e := t.entries[i1]
	if e&pteP == 0 {
		return 0, ErrUnmapped
	}
	return e&^uint64(0xfff) | virt&0xfff, nil
}

// Unmap removes the mapping for one page.
func (pt *PageTable) Unmap(virt uint64) error {
	i4, i3, i2, i1 := indices(virt)
	t := pt.root
	for _, idx := range []int{i4, i3, i2} {
		if t.children[idx] == nil {
			return ErrUnmapped
		}
		t = t.children[idx]
	}
	if t.entries[i1]&pteP == 0 {
		return ErrUnmapped
	}
	t.entries[i1] = 0
	pt.Mapped--
	return nil
}

// PTMode selects the guest paging strategy from §6.1.
type PTMode int

// Paging strategies.
const (
	// PTStatic: the image ships a pre-initialized page table; boot just
	// loads CR3 and enables paging (29us for 1GB, Fig 21).
	PTStatic PTMode = iota
	// PTDynamic: the entire table is populated at boot so the app can
	// later alter its address space (46-114us depending on memory).
	PTDynamic
	// PTNone: 32-bit protected mode, paging disabled entirely (§6.1:
	// "run in protected (32 bit) mode, disabling guest paging").
	PTNone
)

func (m PTMode) String() string {
	switch m {
	case PTStatic:
		return "static"
	case PTDynamic:
		return "dynamic"
	default:
		return "none"
	}
}

// Page-table boot cost calibration (Fig 21), in cycles at 3.6GHz.
const (
	// staticPTCycles: activate the pre-built table: 29us.
	staticPTCycles = 104_400
	// dynamicPTBaseCycles: fixed dynamic-path overhead (table walk setup,
	// CR3 load, TLB flush): ~44us — the 32MB point lands at 46us.
	dynamicPTBaseCycles = 160_000
	// dynamicPerTableCycles: cost to allocate+fill one 512-entry table
	// page: the 1GB..3GB slope is ~21.5us/GB = ~151 cycles per table.
	dynamicPerTableCycles = 151
	// noPTCycles: protected-mode setup without paging.
	noPTCycles = 18_000
)

// buildPageTable constructs (for PTDynamic) or activates (PTStatic) the
// guest page table for memBytes of RAM, charging the calibrated cost,
// and returns the table (nil for PTNone).
func buildPageTable(charge func(uint64), mode PTMode, memBytes int) (*PageTable, error) {
	switch mode {
	case PTStatic:
		// Pre-initialized at link time: boot only enables paging. We
		// still materialize the table so Translate works afterwards,
		// but the boot-time charge is the fixed activation cost.
		pt := NewPageTable()
		if err := pt.Map(0, 0, memBytes); err != nil {
			return nil, err
		}
		charge(staticPTCycles)
		return pt, nil
	case PTDynamic:
		pt := NewPageTable()
		if err := pt.Map(0, 0, memBytes); err != nil {
			return nil, err
		}
		charge(dynamicPTBaseCycles + uint64(pt.Tables)*dynamicPerTableCycles)
		return pt, nil
	case PTNone:
		charge(noPTCycles)
		return nil, nil
	}
	return nil, fmt.Errorf("ukboot: unknown PT mode %d", mode)
}
