package ukcluster

import (
	"fmt"
	"strings"
	"time"

	"unikraft/internal/ukpool"
)

// Report is what a cluster serve measured: the merged pool report
// (end-to-end latencies, measured from the client-side arrival at the
// front door), the control-plane counters, and a per-host breakdown.
type Report struct {
	// Hosts and Cores echo the cluster shape; Policy the balancing
	// policy the front door ran.
	Hosts, Cores int
	Policy       Policy

	// Offered is how many requests the front door consumed from the
	// workload. The cluster queues rather than drops, so
	// Pool.Requests == Offered after every serve; Dropped makes the
	// invariant auditable in reports and gates.
	Offered int

	// ActiveStart/ActivePeak/ActiveEnd track the serving set: size at
	// the first arrival, its high-water mark, and after the trace
	// drained.
	ActiveStart, ActivePeak, ActiveEnd int

	// Activations counts standby hosts brought into the serving set;
	// Handoffs of those, how many were seeded by snapshot-image
	// handoff (HandoffBytes shipped total) and RemoteColdBoots how
	// many paid a full remote template mint instead.
	Activations, Handoffs, RemoteColdBoots int
	HandoffBytes                           int64

	// Drains counts hosts retired by scale-down; Requeued the in-flight
	// requests those drains bounced back through the front door.
	Drains, Requeued int

	// Fault-plan counters, all zero without a fault plan. Crashes is
	// fail-stop host losses the detector confirmed; Rejoins hosts that
	// came back (as cold standbys); Replacements standby activations
	// triggered by a detection rather than load; Probes individual
	// host probes the front door paid for. Retried counts forwards
	// that timed out and were re-sent; Failed forwards abandoned after
	// the retry limit or budget; Shed fresh arrivals rejected at the
	// door by admission control.
	Crashes, Rejoins, Replacements, Probes int
	Retried, Failed, Shed                  int

	// Overload-control counters, all zero unless the corresponding
	// feature is armed. Expired counts requests the *router* dropped
	// because their deadline had already passed when it would have
	// dispatched them (host pools count their own queue expiries in
	// Pool.Expired); Throttled counts retries the token bucket cut
	// (those requests are also counted Failed); ShedBatch is the share
	// of Shed that was batch-class traffic — under staged admission
	// control Shed-ShedBatch is the interactive casualty count, which
	// priority staging exists to keep near zero.
	Expired, Throttled, ShedBatch int

	// Route holds per-request front-door delay (router queueing +
	// processing + forward link); Activation per-activation bring-up
	// latency (handoff transfer + attach, or remote cold mint).
	Route, Activation ukpool.Histogram

	// Pool is the host reports merged in host order — the cluster-wide
	// serving totals. Its Latency histogram is end-to-end: client
	// arrival at the front door to completion on the serving host.
	Pool ukpool.Report

	// PerHost breaks the serve down by host, in host-id order; hosts
	// that never served (standby throughout) are omitted.
	PerHost []HostReport
}

// HostReport is one host's share of a serve.
type HostReport struct {
	Host                                             int
	Requests, WarmHits, ColdBoots, ForkBoots, Queued int
	// Peak and Final are the host's instance fleet sizes.
	Peak, Final int
	// Busy is the host's aggregate service time; Utilization is
	// Busy / (cluster makespan x cores) — how much of the host's
	// capacity the serve used.
	Busy        time.Duration
	Utilization float64
	// LatencyP50/P99 are the host-local end-to-end quantiles.
	LatencyP50, LatencyP99 time.Duration
	// ActivatedAt is when a spill brought the host up (-1: serving
	// from the start); Drained marks hosts retired mid-serve;
	// Crashed marks rows that belong to a host lost to a fail-stop
	// fault (its pre-crash work).
	ActivatedAt time.Duration
	Drained     bool
	Crashed     bool
}

// Dropped is the number of offered requests the report cannot account
// for — zero by construction. Every offered request either reached a
// pool (Pool.Requests, which includes pool-level failures and
// expiries), was shed at the door, expired at the door, or was
// abandoned by the router's retry policy.
func (r *Report) Dropped() int {
	return r.Offered - r.Pool.Requests - r.Shed - r.Failed - r.Expired
}

// Goodput is the fraction of offered requests that completed
// successfully: pool completions over offered load. 1.0 without faults.
func (r *Report) Goodput() float64 {
	if r.Offered == 0 {
		return 1
	}
	return float64(r.Pool.Completed()) / float64(r.Offered)
}

// hostMeta is the per-host identity fillPerHost renders a row from.
// serveHosts builds one per report slot — a crashed host contributes a
// wreck row (its pre-crash work) and possibly a live row (post-rejoin).
type hostMeta struct {
	id          int
	activatedAt time.Duration
	drained     bool
	crashed     bool
}

// fillPerHost derives the per-host section from the per-host pool
// reports (parallel slices, slot order) and the cluster makespan.
func (r *Report) fillPerHost(reps []*ukpool.Report, metas []hostMeta) {
	r.PerHost = r.PerHost[:0]
	for i, hr := range reps {
		m := metas[i]
		util := 0.0
		if r.Pool.Duration > 0 && r.Cores > 0 {
			util = float64(hr.Busy) / (float64(r.Pool.Duration) * float64(r.Cores))
		}
		r.PerHost = append(r.PerHost, HostReport{
			Host: m.id, Requests: hr.Requests,
			WarmHits: hr.WarmHits, ColdBoots: hr.ColdBoots,
			ForkBoots: hr.ForkBoots, Queued: hr.Queued,
			Peak: hr.PeakInstances, Final: hr.FinalInstances,
			Busy: hr.Busy, Utilization: util,
			LatencyP50: hr.Latency.Quantile(0.50), LatencyP99: hr.Latency.Quantile(0.99),
			ActivatedAt: m.activatedAt, Drained: m.drained, Crashed: m.crashed,
		})
	}
}

// String renders the multi-line summary ukserve prints for clusters:
// the control-plane lines, then the merged pool report, then one line
// per serving host.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster  %d host(s) x %d core(s), policy %s\n",
		r.Hosts, r.Cores, r.Policy)
	if r.Hosts > 1 {
		fmt.Fprintf(&b, "active   start=%d peak=%d end=%d", r.ActiveStart, r.ActivePeak, r.ActiveEnd)
		if r.Activations > 0 {
			fmt.Fprintf(&b, " activations=%d", r.Activations)
			if r.Handoffs > 0 {
				fmt.Fprintf(&b, " (handoff=%d, %.1f MB shipped)", r.Handoffs, float64(r.HandoffBytes)/1e6)
			}
			if r.RemoteColdBoots > 0 {
				fmt.Fprintf(&b, " (remote cold=%d)", r.RemoteColdBoots)
			}
		}
		if r.Drains > 0 {
			fmt.Fprintf(&b, " drains=%d requeued=%d", r.Drains, r.Requeued)
		}
		fmt.Fprintf(&b, " dropped=%d\n", r.Dropped())
		if r.Crashes > 0 || r.Retried > 0 || r.Failed > 0 || r.Shed > 0 {
			fmt.Fprintf(&b, "faults   crashes=%d rejoins=%d replacements=%d retried=%d failed=%d shed=%d goodput=%.4f\n",
				r.Crashes, r.Rejoins, r.Replacements, r.Retried, r.Failed, r.Shed, r.Goodput())
		}
		fmt.Fprintf(&b, "route    %v\n", &r.Route)
		if r.Activation.Count > 0 {
			fmt.Fprintf(&b, "activate %v\n", &r.Activation)
		}
	}
	if r.Expired > 0 || r.Throttled > 0 || r.ShedBatch > 0 {
		fmt.Fprintf(&b, "overload expired=%d throttled=%d shed-batch=%d shed-interactive=%d goodput=%.4f\n",
			r.Expired, r.Throttled, r.ShedBatch, r.Shed-r.ShedBatch, r.Goodput())
	}
	b.WriteString(r.Pool.String())
	for _, h := range r.PerHost {
		fmt.Fprintf(&b, "\nhost %-3d reqs=%-8d util=%5.1f%% warm=%d cold=%d queued=%d p50=%v p99=%v",
			h.Host, h.Requests, 100*h.Utilization, h.WarmHits, h.ColdBoots, h.Queued,
			h.LatencyP50.Round(time.Microsecond), h.LatencyP99.Round(time.Microsecond))
		switch {
		case h.Crashed:
			b.WriteString(" [crashed]")
		case h.Drained:
			b.WriteString(" [drained]")
		case h.ActivatedAt >= 0:
			fmt.Fprintf(&b, " [spilled at %v]", h.ActivatedAt.Round(time.Millisecond))
		}
	}
	return b.String()
}
