package ukcluster

import (
	"math"
	"time"

	"unikraft/internal/ukfault"
	"unikraft/internal/ukpool"
)

// The fault engine runs entirely inside phase one, interleaved with the
// routing pass on the same virtual timeline. Its key property is that
// every fault consequence is computable at a deterministic moment:
//
//   - A host crash at T is *detected* at detectTime(T) — derived from
//     the probe schedule alone, never from arrival timing — and only
//     then does the router stop routing to the host, requeue what it
//     can, and seed a replacement by snapshot re-handoff.
//   - A forward dispatched into a dead host or a lossy/partitioned link
//     fails at min(dispatch+ReplyTimeout, detection) and re-enters the
//     front door with exponential backoff, bounded per request
//     (RetryLimit) and per trace (RetryBudget).
//   - The dead host's pool and its pre-crash sub-trace detach into a
//     "wreck": phase two serves the wreck with a fail-stop cutoff at T,
//     so completions before the crash count and everything in flight at
//     T is Failed — the requests no failover machinery can save.
//
// With a nil (or empty) plan none of this state exists and the routing
// pass is bit-for-bit the pre-fault code path.

// faultState is the per-serve fault bookkeeping hanging off routeState.
type faultState struct {
	plan *ukfault.Plan

	crashes    []crashEvent // ordered by detectAt (ties: host id)
	nextCrash  int
	rejoins    []rejoinEvent // ordered by at (ties: host id)
	nextRejoin int

	probeAt time.Duration // next probe round

	retries  retryHeap
	retrySeq uint64
	used     int // retries consumed from the per-trace budget

	// throttle is the retry token bucket (starts at RetryThrottleBurst;
	// successful forwards refill it at RetryThrottleRatio per forward,
	// each retry spends 1). Only consulted when the throttle is armed.
	throttle float64

	shedding bool // admission control tripped (set per autoscale window)

	wrecks []*wreck
}

// crashEvent is one planned fail-stop with its precomputed detection.
type crashEvent struct {
	host         int
	at, detectAt time.Duration
}

type rejoinEvent struct {
	host int
	at   time.Duration
}

// wreck is a crashed host's detached serving state: the pool that died
// and the sub-trace it had received before the crash. Phase two serves
// it with CrashAt as the fail-stop cutoff and then closes the pool.
type wreck struct {
	hostID      int
	pool        *ukpool.Pool
	assigned    []ukpool.Request
	crashedAt   time.Duration
	activatedAt time.Duration
}

// retryEntry is one lost forward waiting to re-enter the front door.
type retryEntry struct {
	at  time.Duration
	seq uint64
	req ukpool.Request
}

// retryHeap is a min-heap over (at, seq) — same tie-break discipline as
// the sim event loop, so retry firing order is reproducible.
type retryHeap []retryEntry

func (h *retryHeap) push(e retryEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *retryHeap) pop() retryEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = retryEntry{}
	*h = s[:n]
	s = *h
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && s.less(left, smallest) {
			smallest = left
		}
		if right < n && s.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

func (h retryHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// newFaultState arms the engine for one serve, or returns nil when the
// plan carries nothing the router must act on.
func (c *Cluster) newFaultState() *faultState {
	p := c.cfg.Faults
	if !p.ClusterFaults() {
		return nil
	}
	f := &faultState{plan: p, probeAt: c.cfg.ProbeEvery, throttle: c.cfg.RetryThrottleBurst}
	for _, cr := range p.Crashes {
		f.crashes = append(f.crashes, crashEvent{
			host: cr.Host, at: cr.At, detectAt: c.detectTime(cr.At),
		})
		if cr.Rejoin > 0 {
			f.rejoins = append(f.rejoins, rejoinEvent{host: cr.Host, at: cr.At + cr.Rejoin})
		}
	}
	sortStableBy(f.crashes, func(a, b crashEvent) bool {
		if a.detectAt != b.detectAt {
			return a.detectAt < b.detectAt
		}
		return a.host < b.host
	})
	sortStableBy(f.rejoins, func(a, b rejoinEvent) bool {
		if a.at != b.at {
			return a.at < b.at
		}
		return a.host < b.host
	})
	return f
}

// detectTime is when the router concludes a host that fail-stopped at
// `at` is dead: the first full probe round after the crash goes
// unanswered, ProbeMisses-1 further rounds confirm, and the last
// probe's timeout expires.
func (c *Cluster) detectTime(at time.Duration) time.Duration {
	pe := c.cfg.ProbeEvery
	first := (at/pe + 1) * pe
	return first + time.Duration(c.cfg.ProbeMisses-1)*pe + c.cfg.ProbeTimeout
}

// advance processes every control-plane event due by now in
// deterministic time order: autoscaler evaluations, probe rounds, crash
// detections, rejoins and retry firings (ties resolve in that fixed
// order). Without a fault plan it is exactly the pre-fault autoscale
// loop.
func (c *Cluster) advance(st *routeState, now time.Duration) {
	f := st.f
	if f == nil {
		c.autoscale(st, now)
		return
	}
	const (
		kNone = iota
		kEval
		kProbe
		kDetect
		kRejoin
		kRetry
	)
	for {
		t := time.Duration(math.MaxInt64)
		kind := kNone
		pick := func(at time.Duration, k int) {
			if at <= now && at < t {
				t, kind = at, k
			}
		}
		pick(st.evalAt, kEval)
		pick(f.probeAt, kProbe)
		if f.nextCrash < len(f.crashes) {
			pick(f.crashes[f.nextCrash].detectAt, kDetect)
		}
		if f.nextRejoin < len(f.rejoins) {
			pick(f.rejoins[f.nextRejoin].at, kRejoin)
		}
		if len(f.retries) > 0 {
			pick(f.retries[0].at, kRetry)
		}
		switch kind {
		case kNone:
			return
		case kEval:
			c.autoscaleStep(st, st.evalAt)
			st.evalAt += c.cfg.EvalEvery
		case kProbe:
			c.probe(st, f.probeAt)
			f.probeAt += c.cfg.ProbeEvery
		case kDetect:
			c.detectCrash(st, f.crashes[f.nextCrash])
			f.nextCrash++
		case kRejoin:
			c.rejoin(st, f.rejoins[f.nextRejoin])
			f.nextRejoin++
		case kRetry:
			e := f.retries.pop()
			req := e.req
			req.Arrival = e.at
			c.routeOne(st, req, e.at)
		}
	}
}

// drainFaults runs the control plane past the last arrival until no
// crash detection, rejoin or retry is pending — a retry scheduled after
// the final request must still re-enter the trace or the request would
// silently vanish.
func (c *Cluster) drainFaults(st *routeState) {
	f := st.f
	if f == nil {
		return
	}
	for {
		t := time.Duration(math.MaxInt64)
		if f.nextCrash < len(f.crashes) && f.crashes[f.nextCrash].detectAt < t {
			t = f.crashes[f.nextCrash].detectAt
		}
		if f.nextRejoin < len(f.rejoins) && f.rejoins[f.nextRejoin].at < t {
			t = f.rejoins[f.nextRejoin].at
		}
		if len(f.retries) > 0 && f.retries[0].at < t {
			t = f.retries[0].at
		}
		if t == time.Duration(math.MaxInt64) {
			return
		}
		c.advance(st, t)
	}
}

// probe is one health-probe round: the router pings every host it
// believes is serving and matches replies. The round is priced on the
// router's pipeline — while the front door probes, it is not routing.
// Detection itself derives from the probe *schedule* (detectTime), so
// the round here is the cost and the counters, not a liveness scan.
func (c *Cluster) probe(st *routeState, t time.Duration) {
	n := 0
	for _, h := range c.hosts {
		if h.active {
			n++
		}
	}
	if n == 0 {
		return
	}
	start := t
	if st.busyUntil > start {
		start = st.busyUntil
	}
	cycles := c.cfg.Router.ChargeProbe(st.m, n)
	st.busyUntil = start + st.m.CPU.Duration(cycles)
	st.rep.Probes += n
}

// detectCrash applies a crash the probe schedule just confirmed: pull
// the host from the serving set, detach its pool and pre-crash
// sub-trace into a wreck for phase two, and — because the router now
// knows it is short a host — seed a replacement standby immediately by
// the normal activation path (snapshot re-handoff when enabled).
func (c *Cluster) detectCrash(st *routeState, ev crashEvent) {
	h := c.hosts[ev.host]
	f := st.f
	st.rep.Crashes++
	wasActive := h.active
	h.crashed = true
	h.active = false
	h.drained = false
	st.ringDirty = true
	if h.pool != nil || len(h.assigned) > 0 {
		f.wrecks = append(f.wrecks, &wreck{
			hostID:      h.id,
			pool:        h.pool,
			assigned:    h.assigned,
			crashedAt:   ev.at,
			activatedAt: h.activatedAt,
		})
	}
	h.pool = nil
	h.assigned = nil
	h.backlog = 0
	for i, id := range st.activated {
		if id == ev.host {
			st.activated = append(st.activated[:i], st.activated[i+1:]...)
			break
		}
	}
	if wasActive {
		before := st.rep.Activations
		c.activate(st, ev.detectAt)
		if st.rep.Activations > before {
			st.rep.Replacements++
		}
	}
}

// rejoin returns a crashed host to the standby set. It comes back
// cold — its old fleet died with it — and pays the usual activation
// (handoff + attach) if and when the autoscaler brings it back in.
func (c *Cluster) rejoin(st *routeState, ev rejoinEvent) {
	h := c.hosts[ev.host]
	h.crashed = false
	h.crashedAt = 0
	st.rep.Rejoins++
}

// linkAt folds the link faults covering host at time t: extra one-way
// delay, combined loss probability, and whether a partition is cutting
// the host off entirely.
func (f *faultState) linkAt(host int, t time.Duration) (extra time.Duration, loss float64, part bool) {
	for _, l := range f.plan.Links {
		if l.Host != -1 && l.Host != host {
			continue
		}
		if t < l.From {
			continue
		}
		if l.To > l.From && t >= l.To {
			continue
		}
		extra += l.ExtraDelay
		loss = 1 - (1-loss)*(1-l.Loss)
		part = part || l.Partition
	}
	return extra, loss, part
}

// maxBackoffShift caps the exponential-backoff doubling: beyond it the
// delay saturates instead of growing. Attempts are normally bounded by
// RetryLimit (default 3), but the limit is caller-settable — a shift of
// 64 or more is undefined behavior in hardware terms and in Go produces
// garbage durations (zero or negative backoff, i.e. a hot retry loop),
// so the cap keeps a generous-but-sane ceiling (~16s at the default
// 250µs base) no matter the configuration.
const maxBackoffShift = 16

// loseForward handles a forward the plan kills: the router learns of
// the loss at failAt (reply timeout, or crash detection if sooner) and
// the request re-enters the front door with exponential backoff —
// unless its retries, the trace's budget, or the retry token bucket are
// exhausted, in which case it is Failed for good.
func (c *Cluster) loseForward(st *routeState, req ukpool.Request, origin, failAt time.Duration) {
	f := st.f
	if req.Attempt >= c.cfg.RetryLimit ||
		(c.cfg.RetryBudget > 0 && f.used >= c.cfg.RetryBudget) {
		st.rep.Failed++
		return
	}
	if c.cfg.RetryThrottleRatio > 0 {
		if f.throttle < 1 {
			// The bucket is dry: losses are outpacing successes badly
			// enough that retrying would only feed the storm. Fail fast
			// and count the cut so reports show the throttle working.
			st.rep.Failed++
			st.rep.Throttled++
			return
		}
		f.throttle--
	}
	f.used++
	st.rep.Retried++
	shift := uint(req.Attempt)
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	backoff := c.cfg.RetryBackoff << shift
	f.retrySeq++
	f.retries.push(retryEntry{
		at:  failAt + backoff,
		seq: f.retrySeq,
		req: ukpool.Request{
			Bytes: req.Bytes, Key: req.Key,
			Origin:   origin,
			Attempt:  req.Attempt + 1,
			Deadline: req.Deadline, Class: req.Class,
		},
	})
}

// shed rejects one arrival at the front door under admission control:
// priced (cheaply) on the router, counted separately from failures —
// a shed client got a fast no, not silence. The class splits the count
// so reports can show staged shedding sacrificing batch first.
func (c *Cluster) shed(st *routeState, at time.Duration, class int) {
	start := at
	if st.busyUntil > start {
		start = st.busyUntil
	}
	cycles := c.cfg.Router.ChargeReject(st.m)
	st.busyUntil = start + st.m.CPU.Duration(cycles)
	st.rep.Shed++
	if class >= ukpool.ClassBatch {
		st.rep.ShedBatch++
	}
}

// sortStableBy is a tiny insertion sort: fault schedules are a handful
// of entries, and keeping it dependency-free beats pulling in
// sort.Slice closures for two call sites.
func sortStableBy[T any](s []T, less func(a, b T) bool) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
