package ukcluster

import (
	"reflect"
	"testing"
	"time"

	"unikraft/internal/ukfault"
	"unikraft/internal/ukpool"
)

// overloadTestConfig pins one instance per core on two always-active
// hosts (~85K req/s fleet capacity at 47us/request), so an open-loop
// trace above that genuinely overloads the cluster.
func overloadTestConfig(t testing.TB) Config {
	return Config{
		Hosts: 2, Cores: 2, InitialActive: 2, MinActive: 2,
		Policy:     LeastLoaded,
		EstService: 47 * time.Microsecond,
		EvalEvery:  2 * time.Millisecond,
		NewPool: func(host int) (*ukpool.Pool, error) {
			return ukpool.New(hostBoot(t, host),
				ukpool.WithWarm(2), ukpool.WithMaxInstances(2),
				ukpool.DisableAutoscale(), ukpool.WithServiceCost(4, 170_000)), nil
		},
	}
}

func overloadTestTrace(n int, rate, mix float64, deadline time.Duration) *ukpool.Overload {
	w := ukpool.NewOverload(53, rate, n, 256).Mix(mix)
	if deadline > 0 {
		w.Deadlines(deadline, 10*deadline)
	}
	return w
}

// TestArmedIdleOverloadIdentity: overload control that is armed but
// never triggers — a deadline nobody misses, an admission target nobody
// reaches, a throttle bucket never drained — must reproduce the unarmed
// serve byte-for-byte.
func TestArmedIdleOverloadIdentity(t *testing.T) {
	serve := func(arm func(*Config)) *Report {
		cfg := overloadTestConfig(t)
		if arm != nil {
			arm(&cfg)
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rep, err := c.Serve(overloadTestTrace(30_000, 40_000, 1, 0))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := serve(nil)
	armed := serve(func(cfg *Config) {
		cfg.DefaultDeadline = time.Hour
		cfg.AdmitTarget = time.Hour
		cfg.RetryThrottleRatio = 0.1
	})
	if !reflect.DeepEqual(plain, armed) {
		t.Errorf("armed-but-idle overload control diverged from unarmed serve:\n%v\n----\n%v", plain, armed)
	}
	if plain.Expired != 0 || plain.Shed != 0 || plain.Throttled != 0 {
		t.Errorf("underloaded serve recorded expired=%d shed=%d throttled=%d",
			plain.Expired, plain.Shed, plain.Throttled)
	}
}

// TestOverloadControlDeterministic: the whole overload stack — door
// expiry, adaptive admission, priority staging, retry throttle under a
// partition — reproduces bit-for-bit across runs.
func TestOverloadControlDeterministic(t *testing.T) {
	run := func() *Report {
		cfg := overloadTestConfig(t)
		cfg.DefaultDeadline = 10 * time.Millisecond
		cfg.AdmitTarget = time.Millisecond
		cfg.RetryThrottleRatio = 0.05
		cfg.Faults = ukfault.New(17).PartitionHost(1, 100*time.Millisecond, 200*time.Millisecond)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rep, err := c.Serve(overloadTestTrace(60_000, 200_000, 0.3, 10*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical overload runs diverged:\n%v\n----\n%v", a, b)
	}
	if a.Shed == 0 {
		t.Error("2.4x overload never shed through the admission controller")
	}
	if a.Dropped() != 0 {
		t.Errorf("%d requests unaccounted for", a.Dropped())
	}
}

// TestAdmissionStagedByClass: under sustained overload the proportional
// controller sheds batch traffic from the target up but interactive
// traffic only past three times the target — on a 30/70 mix batch must
// absorb the bulk of the shedding.
func TestAdmissionStagedByClass(t *testing.T) {
	cfg := overloadTestConfig(t)
	cfg.AdmitTarget = time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Serve(overloadTestTrace(100_000, 200_000, 0.3, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	intShed := rep.Shed - rep.ShedBatch
	if rep.ShedBatch == 0 {
		t.Fatal("overload shed no batch traffic")
	}
	if rep.ShedBatch <= intShed {
		t.Errorf("shedding not staged: batch=%d <= interactive=%d", rep.ShedBatch, intShed)
	}
	if rep.Dropped() != 0 {
		t.Errorf("%d requests unaccounted for", rep.Dropped())
	}
}

// TestRetryThrottleSuppressesStorm: a partitioned host under
// least-loaded routing ignites a retry storm (lost forwards never
// inflate the dead host's backlog, so retries keep feeding it). The
// token bucket must cut aggregate retries by an order of magnitude and
// account every cut as Throttled + Failed.
func TestRetryThrottleSuppressesStorm(t *testing.T) {
	serve := func(ratio float64) *Report {
		cfg := overloadTestConfig(t)
		cfg.RetryThrottleRatio = ratio
		cfg.Faults = ukfault.New(17).PartitionHost(1, 100*time.Millisecond, 600*time.Millisecond)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rep, err := c.Serve(overloadTestTrace(60_000, 40_000, 1, 20*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Dropped() != 0 {
			t.Fatalf("%d requests unaccounted for", rep.Dropped())
		}
		return rep
	}
	storm := serve(0)
	throttled := serve(0.05)
	if storm.Retried == 0 {
		t.Fatal("partition under least-loaded never stormed")
	}
	if storm.Throttled != 0 {
		t.Errorf("unthrottled run counted %d throttled", storm.Throttled)
	}
	if throttled.Throttled == 0 {
		t.Fatal("dry token bucket never throttled a retry")
	}
	if throttled.Retried >= storm.Retried/2 {
		t.Errorf("throttle ineffective: %d retries vs %d unthrottled", throttled.Retried, storm.Retried)
	}
}

// TestRetryBackoffShiftCap: regression for the unbounded
// RetryBackoff << Attempt shift. A tiny base backoff and a high retry
// limit push attempts past 63; uncapped, the shifted backoff overflows
// int64 and schedules retries at negative timestamps. Capped, the serve
// terminates with a sane virtual makespan and full accounting.
func TestRetryBackoffShiftCap(t *testing.T) {
	cfg := overloadTestConfig(t)
	cfg.RetryLimit = 80
	cfg.RetryBackoff = time.Nanosecond
	// Partition host 1 for most of the trace: least-loaded keeps
	// routing retries at the silent host, so attempts climb to the
	// limit within the window.
	cfg.Faults = ukfault.New(17).PartitionHost(1, 50*time.Millisecond, 2*time.Second)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Serve(overloadTestTrace(40_000, 40_000, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed == 0 {
		t.Fatal("80-attempt retry chains inside a 1.95s partition never exhausted the limit")
	}
	if rep.Pool.Duration <= 0 || rep.Pool.Duration > time.Hour {
		t.Errorf("virtual makespan %v insane — backoff shift overflowed", rep.Pool.Duration)
	}
	if rep.Dropped() != 0 {
		t.Errorf("%d requests unaccounted for", rep.Dropped())
	}
}

// TestDoorExpiryChargesCheaply: requests whose deadline passes while
// queued at the front door are answered with a priced 504 — counted
// Expired at the router, never forwarded, never serviced — and the
// deadline also rides to the host pool, which expires what the door
// could not foresee.
func TestDoorExpiryEndToEnd(t *testing.T) {
	cfg := overloadTestConfig(t)
	cfg.DefaultDeadline = 2 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// No workload-stamped deadlines: DefaultDeadline alone must arm the
	// end-to-end path.
	rep, err := c.Serve(overloadTestTrace(100_000, 200_000, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Expired+rep.Pool.Expired == 0 {
		t.Fatal("2.4x overload with a 2ms deadline expired nothing")
	}
	if rep.Pool.Expired == 0 {
		t.Error("deadline never expired a request at the host queue")
	}
	if rep.Dropped() != 0 {
		t.Errorf("%d requests unaccounted for", rep.Dropped())
	}
	// Whatever completed was dispatched while live.
	if frac := rep.Pool.Latency.FractionBelow(8 * time.Millisecond); frac < 1 {
		t.Errorf("%.4f of completions blew past deadline + service bound", 1-frac)
	}
}
