package ukcluster

import (
	"sort"
	"time"

	"unikraft/internal/sim"
	"unikraft/internal/ukfault"
	"unikraft/internal/ukpool"
)

// routeState is the front door's per-serve bookkeeping: the router
// box's pipeline clock, the balancing state, and the autoscaler's
// hysteresis streaks. The whole phase is a single sequential pass, so
// nothing here needs synchronization.
type routeState struct {
	rep *Report
	m   *sim.Machine // the router box

	// busyUntil models the router as a single-core store-and-forward
	// box: requests queue behind each other at the front door, so a
	// hot enough trace makes the router itself the bottleneck — which
	// is the truth a fluid model must not hide.
	busyUntil time.Duration

	rr int // round-robin cursor

	ring      []ringPoint // consistent-hash ring over serving hosts
	ringDirty bool

	evalAt                  time.Duration // next autoscaler evaluation
	spillStreak, drainCount int

	// activated (this serve, in order) — drains pop LIFO so the most
	// recently added capacity retires first and long-lived hosts keep
	// their caches.
	activated []int

	// f is the fault engine's per-serve state; nil when no cluster-level
	// fault plan is armed (the byte-identical fast path).
	f *faultState

	// adm is the adaptive admission controller; nil when AdmitTarget is
	// unset (the byte-identical fast path, independently of f).
	adm *admitState
}

// admitState is the adaptive admission controller's per-serve state:
// one drop probability per priority class, recomputed every autoscaler
// evaluation window from the router's fluid queue-delay estimate. The
// controller is proportional — shed the fraction of arrivals by which
// the estimated delay exceeds the class's target — so the backlog
// settles near the target instead of cliff-diving the way a static
// threshold does: at any sustained overload ratio rho > 1, dropping
// (d-T)/d of arrivals is exactly what holds d at rho*T.
type admitState struct {
	seed   uint64
	target float64 // AdmitTarget, in float ns (the perCore unit)
	mult   float64 // interactive threshold = mult * target
	pBatch float64 // current batch-class drop probability
	pInt   float64 // current interactive-class drop probability
}

// update recomputes the per-class drop probabilities from the current
// estimated queue delay d (float ns). Batch sheds past the target,
// interactive only past mult times it — staged sacrifice: by the time
// interactive traffic is touched, batch is already being cut hard.
func (a *admitState) update(d float64) {
	a.pBatch, a.pInt = 0, 0
	if d > a.target {
		a.pBatch = (d - a.target) / d
	}
	if hi := a.mult * a.target; d > hi {
		a.pInt = (d - hi) / d
	}
}

// drop decides whether to shed req under the current probabilities.
// The draw is keyed on the request's own identity (never an arrival
// ordinal or a rate counter), so the same request gets the same verdict
// regardless of shard count, host count, or what was routed before it.
func (a *admitState) drop(req ukpool.Request) bool {
	p := a.pInt
	if req.Class >= ukpool.ClassBatch {
		p = a.pBatch
	}
	if p <= 0 {
		return false
	}
	draw := ukfault.Frac(ukfault.Mix(a.seed^0x61646D69, // "admi": domain separation
		uint64(req.Arrival), uint64(req.Bytes), req.Key, uint64(req.Class)))
	return draw < p
}

type ringPoint struct {
	hash uint64
	host int
}

// splitmix64 is the ring/key hash: cheap, well-mixed, deterministic.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// route is phase one: consume the workload, price the front door, pick
// a host per request (activating and draining hosts along the way) and
// leave each host's sub-trace in host.assigned. The emitted Request
// keeps the client-side arrival in Origin and carries the post-router,
// post-link timestamp in Arrival, so host pools measure end-to-end
// latency while scheduling on host-local time.
func (c *Cluster) route(w ukpool.Workload) (*routeState, error) {
	rep := &Report{Hosts: c.cfg.Hosts, Cores: c.cfg.Cores, Policy: c.cfg.Policy}
	st := &routeState{rep: rep, m: c.cfg.NewMachine(), evalAt: c.cfg.EvalEvery, ringDirty: true}
	st.f = c.newFaultState()
	if c.cfg.AdmitTarget > 0 {
		st.adm = &admitState{
			seed:   c.cfg.AdmitSeed,
			target: float64(c.cfg.AdmitTarget),
			mult:   c.cfg.AdmitInteractiveMult,
		}
	}

	for _, h := range c.hosts {
		h.assigned = nil
		h.drained = false
		h.backlog = 0
		h.lastUpd = 0
		h.readyAt = 0
		h.crashed = false
		h.crashedAt = 0
		if h.active {
			h.activatedAt = -1
			rep.ActiveStart++
		}
	}
	rep.ActivePeak = rep.ActiveStart

	for {
		req, ok := w.Next()
		if !ok {
			break
		}
		rep.Offered++
		if c.cfg.DefaultDeadline > 0 && req.Deadline == 0 {
			req.Deadline = req.Arrival + c.cfg.DefaultDeadline
		}
		c.advance(st, req.Arrival)
		if st.f != nil && st.f.shedding {
			c.shed(st, req.Arrival, req.Class)
			continue
		}
		// Adaptive admission sheds fresh arrivals only; retries and
		// drain requeues already consumed router and link work, so
		// cutting them here would waste what the deadline check bounds
		// anyway.
		if st.adm != nil && st.adm.drop(req) {
			c.shed(st, req.Arrival, req.Class)
			continue
		}
		c.routeOne(st, req, req.Arrival)
	}
	// Run the control plane past the last arrival: pending retries,
	// detections and rejoins still land (or requests would vanish).
	c.drainFaults(st)

	return st, nil
}

// routeOne prices one routing decision on the router box and forwards
// the request to the chosen host. at is when the request reaches the
// front door (the client arrival on first pass, the bounce moment for
// drain requeues); the router processes in order on its own pipeline —
// the decision lands when the box gets to this request — so a hot
// enough trace makes the front door itself the bottleneck.
func (c *Cluster) routeOne(st *routeState, req ukpool.Request, at time.Duration) {
	start := at
	if st.busyUntil > start {
		start = st.busyUntil
	}
	// A request whose deadline already passed while it queued at the
	// front door (or backed off between retries) gets a cheap priced
	// expiry instead of a forward: no policy runs, no link is charged,
	// no host burns service time on an answer nobody is waiting for.
	if req.Deadline > 0 && start >= req.Deadline {
		cycles := c.cfg.Router.ChargeExpire(st.m)
		st.busyUntil = start + st.m.CPU.Duration(cycles)
		st.rep.Expired++
		return
	}
	scan := c.cfg.Policy == LeastLoaded ||
		(c.cfg.Policy == ConsistentHash && req.Key == 0)
	hash := c.cfg.Policy == ConsistentHash && req.Key != 0
	cycles := c.cfg.Router.ChargeRoute(st.m, c.serving(), scan, hash)
	st.busyUntil = start + st.m.CPU.Duration(cycles)
	h := c.pickHost(st, req.Key, st.busyUntil)
	if h == nil {
		// Reachable only under faults: every host is crashed or standby
		// with nothing activatable. Nobody can serve this request.
		st.rep.Failed++
		return
	}
	c.assign(st, h, req, st.busyUntil)
}

// assign forwards req to host h at router-dispatch time dispatch:
// charge the link, stamp Origin/Arrival, and grow the fluid backlog.
// Under a fault plan the forward can die on the way: into a partition,
// to a loss draw, or at a host the plan has already fail-stopped (the
// router won't know until detection) — those forwards never reach a
// pool and go through the retry machinery instead.
func (c *Cluster) assign(st *routeState, h *host, req ukpool.Request, dispatch time.Duration) {
	origin := req.Arrival
	if req.Origin != 0 {
		origin = req.Origin
	}
	base := dispatch
	if h.readyAt > base {
		// Only under faults: every ready host crashed, and the forward
		// waits for the replacement's handoff to land.
		base = h.readyAt
	}
	fwd := c.cfg.Link.ForwardDelay(req.Bytes)
	if f := st.f; f != nil {
		extra, loss, part := f.linkAt(h.id, base)
		arrival := base + fwd + extra
		lost, detect := part, time.Duration(0)
		if !lost && loss > 0 {
			draw := ukfault.Frac(ukfault.Mix(f.plan.Seed^0x6C696E6B, uint64(h.id), uint64(base)))
			lost = draw < loss
		}
		// Forwards landing in the host's dead window die there. A
		// rejoined host serves again — only the window between crash
		// and rejoin swallows traffic.
		if cr, ok := f.plan.CrashOf(h.id); ok && arrival > cr.At &&
			(cr.Rejoin == 0 || arrival < cr.At+cr.Rejoin) {
			lost = true
			detect = c.detectTime(cr.At)
		}
		if lost {
			failAt := base + c.cfg.ReplyTimeout
			if detect > 0 && detect < failAt {
				failAt = detect
			}
			c.loseForward(st, req, origin, failAt)
			return
		}
		st.rep.Route.Record(arrival - origin)
		h.decay(base, c.cfg.Cores)
		est := c.cfg.EstService
		if fac := f.plan.SlowAt(h.id, base); fac > 1 {
			// A slowed host works its backlog off slower than the fluid
			// model's uniform decay assumes; inflating what we add keeps
			// the model honest, steers least-loaded around the sick host,
			// and lets the admission controller see the pressure it causes.
			est = time.Duration(float64(est) * fac)
		}
		h.backlog += est
		if c.cfg.RetryThrottleRatio > 0 {
			// A forward that made it through earns the retry bucket its
			// keep (capped): retries stay a bounded fraction of success.
			f.throttle += c.cfg.RetryThrottleRatio
			if f.throttle > c.cfg.RetryThrottleBurst {
				f.throttle = c.cfg.RetryThrottleBurst
			}
		}
		h.assigned = append(h.assigned, ukpool.Request{
			Arrival: arrival, Bytes: req.Bytes, Key: req.Key, Origin: origin,
			Attempt: req.Attempt, Deadline: req.Deadline, Class: req.Class,
		})
		return
	}
	arrival := dispatch + fwd
	st.rep.Route.Record(arrival - origin)
	h.decay(dispatch, c.cfg.Cores)
	h.backlog += c.cfg.EstService
	h.assigned = append(h.assigned, ukpool.Request{
		Arrival: arrival, Bytes: req.Bytes, Key: req.Key, Origin: origin,
		Deadline: req.Deadline, Class: req.Class,
	})
}

// decay drains the fluid backlog model to time t: the host works the
// outstanding estimate off at Cores' worth of service per unit time.
func (h *host) decay(t time.Duration, cores int) {
	if t <= h.lastUpd {
		return
	}
	worked := (t - h.lastUpd) * time.Duration(cores)
	if worked >= h.backlog {
		h.backlog = 0
	} else {
		h.backlog -= worked
	}
	h.lastUpd = t
}

// serving counts hosts in the serving set (active, not draining).
func (c *Cluster) serving() int {
	n := 0
	for _, h := range c.hosts {
		if h.active {
			n++
		}
	}
	return n
}

// pickHost runs the balancing policy over the hosts that are active
// and ready (activation complete) at dispatch time. At least one host
// is always ready: the serving set never shrinks below MinActive >= 1
// and initial hosts are ready at t=0.
func (c *Cluster) pickHost(st *routeState, key uint64, dispatch time.Duration) *host {
	ready := readyHosts(c.hosts, dispatch)
	if len(ready) == 0 {
		// Reachable only under faults: every ready host crashed and the
		// replacement is still activating. Forward to the soonest-ready
		// active host — assign holds the forward until its handoff
		// lands. Nil when nothing is active at all.
		var best *host
		for _, h := range c.hosts {
			if h.active && (best == nil || h.readyAt < best.readyAt) {
				best = h
			}
		}
		return best
	}
	switch c.cfg.Policy {
	case RoundRobin:
		h := ready[st.rr%len(ready)]
		st.rr++
		return h
	case ConsistentHash:
		if key != 0 {
			return c.ringLookup(st, key, dispatch)
		}
	}
	return leastLoaded(ready, dispatch, c.cfg.Cores)
}

// readyHosts collects the active hosts whose activation has completed
// by time t, in host-id order.
func readyHosts(hosts []*host, t time.Duration) []*host {
	ready := make([]*host, 0, len(hosts))
	for _, h := range hosts {
		if h.active && h.readyAt <= t {
			ready = append(ready, h)
		}
	}
	return ready
}

// leastLoaded picks the ready host with the smallest decayed backlog,
// ties to the lowest host id.
func leastLoaded(ready []*host, t time.Duration, cores int) *host {
	best := ready[0]
	best.decay(t, cores)
	for _, h := range ready[1:] {
		h.decay(t, cores)
		if h.backlog < best.backlog {
			best = h
		}
	}
	return best
}

// ringLookup maps a session key onto the virtual-node ring, walking
// clockwise past hosts that are still warming up. The ring covers the
// whole serving set (ready or not) so placements stay stable across
// the brief warm-up window instead of re-shuffling twice.
func (c *Cluster) ringLookup(st *routeState, key uint64, dispatch time.Duration) *host {
	if st.ringDirty {
		st.ring = st.ring[:0]
		for _, h := range c.hosts {
			if !h.active {
				continue
			}
			// Two-round hash: vnode points must live in a different
			// input domain than raw session keys, or small keys (1..N)
			// collide exactly with host 0's vnodes (0<<20|v = v) and
			// the whole key space lands on one host.
			hostSalt := splitmix64(uint64(h.id) + 1)
			for v := 0; v < c.cfg.VirtualNodes; v++ {
				st.ring = append(st.ring, ringPoint{
					hash: splitmix64(hostSalt + uint64(v)),
					host: h.id,
				})
			}
		}
		sort.Slice(st.ring, func(i, j int) bool {
			if st.ring[i].hash != st.ring[j].hash {
				return st.ring[i].hash < st.ring[j].hash
			}
			return st.ring[i].host < st.ring[j].host
		})
		st.ringDirty = false
	}
	kh := splitmix64(key)
	i := sort.Search(len(st.ring), func(i int) bool { return st.ring[i].hash >= kh })
	for probe := 0; probe < len(st.ring); probe++ {
		p := st.ring[(i+probe)%len(st.ring)]
		h := c.hosts[p.host]
		if h.active && h.readyAt <= dispatch {
			return h
		}
	}
	// No ring member ready (all just activated) — fall back.
	return leastLoaded(readyHosts(c.hosts, dispatch), dispatch, c.cfg.Cores)
}

// autoscale runs every evaluation window that elapsed before time now —
// the no-fault path; the fault engine interleaves autoscaleStep with
// its own events via advance instead.
func (c *Cluster) autoscale(st *routeState, now time.Duration) {
	for st.evalAt <= now {
		t := st.evalAt
		st.evalAt += c.cfg.EvalEvery
		c.autoscaleStep(st, t)
	}
}

// autoscaleStep is one evaluation window at time t. Spills and drains
// both require their condition to hold for a streak of consecutive
// windows (hysteresis), and act one host at a time.
func (c *Cluster) autoscaleStep(st *routeState, t time.Duration) {
	// Average decayed backlog per core across the serving set —
	// the router's congestion signal.
	serving, standby := 0, 0
	var total time.Duration
	for _, h := range c.hosts {
		if !h.active {
			if !h.crashed {
				standby++
			}
			continue
		}
		serving++
		h.decay(t, c.cfg.Cores)
		total += h.backlog
	}
	if serving == 0 {
		if st.f != nil {
			st.f.shedding = true // nothing serving: reject at the door
		}
		return
	}
	perCore := float64(total) / float64(serving*c.cfg.Cores)
	est := float64(c.cfg.EstService)

	if perCore > c.cfg.HighWater*est && serving < c.cfg.Hosts {
		st.spillStreak++
		if st.spillStreak >= c.cfg.SpillAfter {
			c.activate(st, t)
			st.spillStreak = 0
		}
	} else {
		st.spillStreak = 0
	}

	if perCore < c.cfg.LowWater*est && serving > c.cfg.MinActive {
		st.drainCount++
		if st.drainCount >= c.cfg.DrainAfter {
			c.drain(st, t)
			st.drainCount = 0
		}
	} else {
		st.drainCount = 0
	}

	// Admission control, armed only with a fault plan and only once
	// scale-out is exhausted: with standby capacity left, a deep
	// backlog is the spill path's problem; with none — the fleet maxed
	// or the spares crashed — shed new arrivals at the door rather
	// than queueing them into a latency cliff.
	if st.f != nil {
		st.f.shedding = standby == 0 && perCore > c.cfg.ShedWater*est
	}

	// The adaptive admission controller re-targets on the same signal
	// (estimated queue delay per core) each window. Unlike the static
	// shed above it does not wait for scale-out to exhaust: spilling
	// takes an activation latency, and the controller's job is to keep
	// the queue bounded *through* that window too.
	if st.adm != nil {
		st.adm.update(perCore)
	}
}

// activate brings the lowest-id standby host into the serving set,
// paying the activation price: snapshot-image handoff (ship the warm
// template over the link, attach) when enabled, a full remote template
// mint otherwise. The host joins immediately for placement stability
// but only becomes ready — eligible for requests — once the image is
// in place.
func (c *Cluster) activate(st *routeState, t time.Duration) {
	var h *host
	for _, cand := range c.hosts {
		if !cand.active && !cand.crashed {
			h = cand
			break
		}
	}
	if h == nil {
		return
	}
	if h.pool == nil {
		pool, err := c.cfg.NewPool(h.id)
		if err != nil {
			// Pool construction is deterministic; a failure here would
			// have failed in New for the initial hosts too. Leave the
			// host on standby rather than abort a serve mid-trace.
			return
		}
		h.pool = pool
	}

	var lat time.Duration
	act := c.cfg.Activation
	if act.Handoff {
		lat = c.cfg.Link.Transfer(act.ImageBytes) + act.Attach
		st.rep.Handoffs++
		st.rep.HandoffBytes += int64(act.ImageBytes)
	} else {
		lat = c.cfg.Link.RTT + act.ColdBoot
		st.rep.RemoteColdBoots++
	}

	h.active = true
	h.drained = false
	h.activatedAt = t
	h.readyAt = t + lat
	h.backlog = 0
	h.lastUpd = t + lat
	st.rep.Activations++
	st.rep.Activation.Record(lat)
	st.activated = append(st.activated, h.id)
	st.ringDirty = true
	if s := c.serving(); s > st.rep.ActivePeak {
		st.rep.ActivePeak = s
	}
}

// drain retires one host from the serving set: the most recently
// activated one (LIFO), never host 0 — the template holder seeds every
// handoff, so the floor always keeps it — and never below MinActive.
// Requests already forwarded but still in flight on the link bounce
// back to the front door and are re-routed deterministically.
func (c *Cluster) drain(st *routeState, t time.Duration) {
	var h *host
	for i := len(st.activated) - 1; i >= 0; i-- {
		cand := c.hosts[st.activated[i]]
		if cand.active && cand.id != 0 {
			h = cand
			st.activated = append(st.activated[:i], st.activated[i+1:]...)
			break
		}
	}
	if h == nil {
		// Nothing activated this serve — retire the highest-id initial
		// host instead (host 0 stays).
		for i := len(c.hosts) - 1; i > 0; i-- {
			if c.hosts[i].active {
				h = c.hosts[i]
				break
			}
		}
	}
	if h == nil {
		return
	}

	h.active = false
	h.drained = true
	st.rep.Drains++
	st.ringDirty = true

	// In-flight requeue: anything assigned to h that has not yet
	// arrived there (Arrival > t) returns to the front door and is
	// re-routed — re-priced through the router, re-forwarded over the
	// link, original Origin preserved. Requests already at the host
	// stay: the host finishes its queue before going dark.
	kept := h.assigned[:0]
	var bounced []ukpool.Request
	for _, r := range h.assigned {
		if r.Arrival > t {
			bounced = append(bounced, r)
		} else {
			kept = append(kept, r)
		}
	}
	h.assigned = kept
	for _, r := range bounced {
		// Re-enter the front door at the bounce moment: same router
		// box, same cost model, Origin preserved so end-to-end latency
		// still counts from the client arrival.
		c.routeOne(st, ukpool.Request{
			Arrival: t, Bytes: r.Bytes, Key: r.Key, Origin: r.Origin,
			Deadline: r.Deadline, Class: r.Class,
		}, t)
		st.rep.Requeued++
	}
}
