// Package ukcluster is the multi-host control plane: it scales the
// warm-pool serving layer (internal/ukpool) from one simulated host to
// a fleet of them. A Cluster owns N hosts — each with its own ukpool
// fleet, per-host machines and (during a serve) its own event-loop
// shard — behind a front-door L4/L7 router that balances requests
// across hosts (round-robin, least-loaded, or consistent-hash session
// affinity), autoscales the *host* set by spilling load onto standby
// hosts with hysteresis, and seeds newly activated hosts by
// snapshot-image handoff: the warm boot template minted on the seed
// host is shipped over a priced inter-host link so remote scale-out
// pays transfer + attach instead of a full cold template boot.
//
// Determinism is inherited from ukpool's sharded execution model: a
// serve runs in two phases. Phase one — the front door — is a single
// sequential pass over the trace that prices routing on the router's
// own machine, tracks per-host outstanding work with a fluid decay
// model (the router's view: it sees what it forwarded, not guest
// internals), and makes every placement, spill and drain decision.
// Phase two serves each host's sub-trace on its own event loop(s) in
// parallel and merges the host reports in host order, exactly like
// Pool.ServeParallel merges shards. Same trace, same config, same
// report — regardless of goroutine scheduling — and a cluster of one
// single-core host is byte-identical to a plain Pool.Serve.
package ukcluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"unikraft/internal/netstack"
	"unikraft/internal/sim"
	"unikraft/internal/ukfault"
	"unikraft/internal/ukpool"
)

// Policy selects the front door's balancing decision for the first
// packet of each request.
type Policy int

const (
	// LeastLoaded routes to the host with the least outstanding work in
	// the router's fluid model (ties to the lowest host id). The
	// default: it absorbs skew the static policies cannot.
	LeastLoaded Policy = iota
	// RoundRobin cycles through the serving hosts in id order.
	RoundRobin
	// ConsistentHash pins each session key to a host via a virtual-node
	// hash ring, so a session keeps hitting the same host's caches as
	// the serving set grows and shrinks; anonymous requests (key 0)
	// fall back to least-loaded.
	ConsistentHash
)

// String names the policy the way flags and reports spell it.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case ConsistentHash:
		return "hash"
	default:
		return "least-loaded"
	}
}

// PolicyByName parses a policy name ("least-loaded", "round-robin",
// "hash").
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "", "least-loaded":
		return LeastLoaded, nil
	case "round-robin":
		return RoundRobin, nil
	case "hash", "consistent-hash":
		return ConsistentHash, nil
	}
	return 0, fmt.Errorf("ukcluster: unknown affinity policy %q (have least-loaded, round-robin, hash)", name)
}

// Link prices the network between the front door and the hosts (and
// between hosts, for snapshot-image handoff).
type Link struct {
	// BytesPerSec is the link bandwidth (default 1.25e9: 10 GbE).
	BytesPerSec int64
	// RTT is the round-trip time between any two boxes (default 40µs,
	// a same-rack figure).
	RTT time.Duration
}

// serialize is the store-and-forward serialization delay of bytes.
func (l Link) serialize(bytes int) time.Duration {
	if bytes <= 0 || l.BytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / float64(l.BytesPerSec) * float64(time.Second))
}

// ForwardDelay is the one-way latency of forwarding a request of the
// given size to a host: half an RTT plus serialization.
func (l Link) ForwardDelay(bytes int) time.Duration {
	return l.RTT/2 + l.serialize(bytes)
}

// Transfer is the cost of shipping a bulk payload host-to-host: a full
// RTT (request + first byte back) plus serialization.
func (l Link) Transfer(bytes int) time.Duration {
	return l.RTT + l.serialize(bytes)
}

// Activation prices bringing a standby host into the serving set.
type Activation struct {
	// Handoff enables snapshot-image handoff: the template image ships
	// over the link and is attached, instead of being re-minted by a
	// full boot pipeline on the new host.
	Handoff bool
	// ImageBytes is the serialized template size: the COW-marked pages
	// plus the heap write-set and region metadata (what
	// ukboot.Snapshot captured).
	ImageBytes int
	// ColdBoot is the full template mint on the remote host — the
	// no-handoff price of scale-out (a template boot through the whole
	// pipeline).
	ColdBoot time.Duration
	// Attach is the receive-side cost of installing a shipped image
	// (mapping pages, COW-arming the table) before the first fork.
	Attach time.Duration
}

// Config parameterizes a Cluster. The zero value is not useful; New
// fills every unset field with the defaults documented per field.
type Config struct {
	// Hosts is the total host count, standby included (default 1).
	Hosts int
	// Cores is the per-host serving parallelism: each host serves its
	// sub-trace over this many deterministic event-loop shards
	// (Pool.ServeParallel; default 1).
	Cores int
	// InitialActive is how many hosts (ids 0..n-1) serve from the
	// start; the remainder are standby, activated by spill (default
	// Hosts: a static fleet).
	InitialActive int
	// MinActive is the scale-down floor: drains never shrink the
	// serving set below it, and host 0 — the template holder — is
	// never drained at all (default 1).
	MinActive int
	// Policy is the balancing policy (default LeastLoaded).
	Policy Policy
	// NewPool builds host id's warm pool on first use. Required.
	// Called sequentially (from New for initial hosts, from the
	// routing phase on activation), so implementations need no
	// locking; each host's pool must boot instances on its own
	// machines with host-distinct deterministic seeds.
	NewPool func(host int) (*ukpool.Pool, error)
	// EstService is the router's estimate of per-request work, feeding
	// its fluid outstanding-work model (default 20µs). The router is a
	// front door, not an oracle: it sees its own forwarding decisions,
	// never guest-internal state.
	EstService time.Duration
	// Router prices the front door's per-request work.
	Router netstack.RouterModel
	// Link prices request forwarding and image handoff.
	Link Link
	// Activation prices standby-host bring-up.
	Activation Activation
	// EvalEvery is the cluster autoscaler's evaluation period (default
	// 10ms of virtual time).
	EvalEvery time.Duration
	// HighWater and LowWater are the spill/drain thresholds, in units
	// of EstService of backlog per core (defaults 8 and 1): spill when
	// the serving hosts hold more than HighWater requests' worth of
	// work per core, drain when below LowWater.
	HighWater, LowWater float64
	// SpillAfter and DrainAfter are the hysteresis: how many
	// consecutive evaluation windows the condition must hold before
	// acting (defaults 2 and 8 — the cluster grows eagerly and shrinks
	// reluctantly).
	SpillAfter, DrainAfter int
	// VirtualNodes is the consistent-hash ring density per host
	// (default 64).
	VirtualNodes int
	// NewMachine builds the front door's own machine (default
	// sim.NewMachine).
	NewMachine func() *sim.Machine

	// Faults, when non-nil and carrying cluster-level faults (host
	// crashes or link faults), arms the failure-detection and retry
	// machinery below. A nil or empty plan leaves the serve byte-
	// identical to a cluster built without one.
	Faults *ukfault.Plan
	// ProbeEvery is the health-probe round period (default 5ms);
	// ProbeMisses how many unanswered rounds declare a host dead
	// (default 2); ProbeTimeout the per-probe reply deadline (default
	// 4x Link.RTT). Together they set the failure-detection latency:
	// a crash at T is detected at the ProbeMisses-th missed round's
	// timeout — see detectTime.
	ProbeEvery   time.Duration
	ProbeMisses  int
	ProbeTimeout time.Duration
	// ReplyTimeout is how long the router waits for a forwarded
	// request's reply before declaring the forward lost (default 1ms).
	// Crash detection can beat it: whichever signal lands first
	// triggers the retry.
	ReplyTimeout time.Duration
	// RetryLimit bounds per-request retries of lost forwards (default
	// 3); RetryBackoff is the base of the exponential backoff between
	// attempts (default 250µs); RetryBudget caps retries per trace
	// (default 0: unbounded) so a partition cannot turn the front door
	// into a retry storm.
	RetryLimit   int
	RetryBackoff time.Duration
	RetryBudget  int
	// ShedWater is the admission-control threshold, in units of
	// EstService of backlog per core (default 4x HighWater, evaluated
	// only when a fault plan is armed). Shedding is a last resort:
	// it triggers only when no activatable standby remains — the
	// fleet maxed out or the spares crashed — and the surviving
	// hosts' backlog still exceeds the threshold; arrivals then get a
	// cheap reject instead of queueing without bound.
	ShedWater float64

	// Overload control (all off by default; a config that leaves every
	// field below at its zero value serves byte-identically to one that
	// predates them).

	// AdmitTarget, when > 0, arms the adaptive admission controller:
	// every autoscaler evaluation window the router compares its
	// estimated queue delay (fluid backlog per core) against this
	// target and sheds a proportional fraction of new arrivals when the
	// delay exceeds it — CoDel's insight (control on queueing *delay*,
	// not queue length) applied at the front door, replacing the static
	// ShedWater cliff with a controller that stabilizes the backlog
	// near the target at any overload ratio. Shedding is staged by
	// priority class: batch traffic sheds as soon as the delay crosses
	// AdmitTarget, interactive traffic only past AdmitInteractiveMult
	// times the target. Drop decisions are identity-keyed deterministic
	// draws (AdmitSeed), never rate counters, so they are invariant
	// across shard counts and byte-identical across runs.
	AdmitTarget time.Duration
	// AdmitInteractiveMult is the interactive shed threshold as a
	// multiple of AdmitTarget (default 3).
	AdmitInteractiveMult float64
	// AdmitSeed domain-separates the admission drop draws.
	AdmitSeed uint64
	// DefaultDeadline, when > 0, stamps arrival + DefaultDeadline on
	// every request that reaches the front door without a deadline of
	// its own. The router drops a request whose deadline has passed by
	// the time it dispatches it (a cheap priced expiry instead of a
	// forward), and the deadline rides to the host pool, which drops
	// it from its queue the same way — no service time is ever charged
	// for an answer nobody is waiting for.
	DefaultDeadline time.Duration
	// RetryThrottleRatio, when > 0, arms the retry token bucket: every
	// successful forward earns the bucket RetryThrottleRatio tokens
	// (capped at RetryThrottleBurst) and every retry of a lost forward
	// spends one. When losses outpace successes the bucket empties and
	// further retries are cut (counted Throttled, the request Failed) —
	// retries can never exceed ~RetryThrottleRatio of successful
	// traffic, which bounds the retry-storm positive feedback that
	// RetryLimit and RetryBackoff alone cannot (they bound each
	// request, not the aggregate).
	RetryThrottleRatio float64
	// RetryThrottleBurst is the bucket capacity and initial fill
	// (default 50 when the throttle is armed).
	RetryThrottleBurst float64
}

// overloadControl reports whether any overload-control feature needs
// the front door (admission, default deadlines, retry throttling) —
// the single-host router bypass must not take those away.
func (c *Config) overloadControl() bool {
	return c.AdmitTarget > 0 || c.DefaultDeadline > 0 || c.RetryThrottleRatio > 0
}

// host is one simulated box in the fleet.
type host struct {
	id   int
	pool *ukpool.Pool

	active      bool
	readyAt     time.Duration // activation completes (template present)
	activatedAt time.Duration // -1: initially active

	// Router-side fluid load model: outstanding forwarded work,
	// decaying at Cores' worth of service per unit time.
	backlog time.Duration
	lastUpd time.Duration

	// assigned is this host's sub-trace for the serve in progress.
	assigned []ukpool.Request
	drained  bool

	// crashed marks a host between crash detection and rejoin: out of
	// the serving set and not activatable. crashedAt is the fail-stop
	// instant (not the detection).
	crashed   bool
	crashedAt time.Duration
}

// Cluster is a fleet of hosts behind one front door. All methods are
// safe for concurrent use; concurrent Serve calls serialize.
type Cluster struct {
	cfg Config

	mu     sync.Mutex
	hosts  []*host
	closed bool
}

// New builds a cluster over cfg, constructing the pools of the
// initially active hosts. Standby hosts stay unbuilt until a spill
// activates them.
func New(cfg Config) (*Cluster, error) {
	if cfg.NewPool == nil {
		return nil, fmt.Errorf("ukcluster: Config.NewPool is required")
	}
	if cfg.Hosts < 1 {
		cfg.Hosts = 1
	}
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.InitialActive < 1 || cfg.InitialActive > cfg.Hosts {
		cfg.InitialActive = cfg.Hosts
	}
	if cfg.MinActive < 1 {
		cfg.MinActive = 1
	}
	if cfg.MinActive > cfg.InitialActive {
		cfg.MinActive = cfg.InitialActive
	}
	if cfg.EstService <= 0 {
		cfg.EstService = 20 * time.Microsecond
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 10 * time.Millisecond
	}
	if cfg.HighWater <= 0 {
		cfg.HighWater = 8
	}
	if cfg.LowWater <= 0 {
		cfg.LowWater = 1
	}
	if cfg.LowWater >= cfg.HighWater {
		cfg.LowWater = cfg.HighWater / 8
	}
	if cfg.SpillAfter < 1 {
		cfg.SpillAfter = 2
	}
	if cfg.DrainAfter < 1 {
		cfg.DrainAfter = 8
	}
	if cfg.VirtualNodes < 1 {
		cfg.VirtualNodes = 64
	}
	if cfg.Link.BytesPerSec == 0 {
		cfg.Link.BytesPerSec = 1_250_000_000 // 10 GbE
	}
	if cfg.Link.RTT == 0 {
		cfg.Link.RTT = 40 * time.Microsecond
	}
	if cfg.NewMachine == nil {
		cfg.NewMachine = sim.NewMachine
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 5 * time.Millisecond
	}
	if cfg.ProbeMisses < 1 {
		cfg.ProbeMisses = 2
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 4 * cfg.Link.RTT
	}
	if cfg.ReplyTimeout <= 0 {
		cfg.ReplyTimeout = time.Millisecond
	}
	if cfg.RetryLimit < 1 {
		cfg.RetryLimit = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 250 * time.Microsecond
	}
	if cfg.ShedWater <= 0 {
		cfg.ShedWater = 4 * cfg.HighWater
	}
	if cfg.AdmitTarget > 0 && cfg.AdmitInteractiveMult <= 0 {
		cfg.AdmitInteractiveMult = 3
	}
	if cfg.RetryThrottleRatio > 0 && cfg.RetryThrottleBurst <= 0 {
		cfg.RetryThrottleBurst = 50
	}
	if err := cfg.Faults.Validate(cfg.Hosts); err != nil {
		return nil, err
	}

	c := &Cluster{cfg: cfg, hosts: make([]*host, cfg.Hosts)}
	for i := range c.hosts {
		c.hosts[i] = &host{id: i, activatedAt: -1}
	}
	for i := 0; i < cfg.InitialActive; i++ {
		pool, err := cfg.NewPool(i)
		if err != nil {
			return nil, fmt.Errorf("ukcluster: host %d pool: %w", i, err)
		}
		c.hosts[i].pool = pool
		c.hosts[i].active = true
	}
	return c, nil
}

// Hosts reports the total host count.
func (c *Cluster) Hosts() int { return c.cfg.Hosts }

// Active reports how many hosts are currently in the serving set.
func (c *Cluster) Active() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, h := range c.hosts {
		if h.active {
			n++
		}
	}
	return n
}

// Close retires every host's pool. The cluster must not be serving.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, h := range c.hosts {
		if h.pool != nil {
			h.pool.Close()
		}
	}
}

// Serve routes every request of w through the fleet and reports what
// happened. With one host the front door is bypassed entirely — the
// report's Pool section is then byte-identical to what that host's
// Pool.Serve (or ServeParallel for Cores > 1) returns. With more, the
// two-phase deterministic engine runs: route sequentially, serve hosts
// in parallel, merge in host order.
func (c *Cluster) Serve(w ukpool.Workload) (*Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("ukcluster: serve on closed cluster")
	}

	if c.cfg.Hosts == 1 && !c.cfg.Faults.ClusterFaults() && !c.cfg.overloadControl() {
		rep, err := c.hosts[0].pool.ServeParallel(w, c.cfg.Cores)
		if err != nil {
			return nil, err
		}
		out := &Report{Hosts: 1, Cores: c.cfg.Cores, Policy: c.cfg.Policy,
			Offered: rep.Requests, ActiveStart: 1, ActivePeak: 1, ActiveEnd: 1, Pool: *rep}
		out.fillPerHost([]*ukpool.Report{rep}, []hostMeta{{id: 0, activatedAt: -1}})
		return out, nil
	}

	st, err := c.route(w)
	if err != nil {
		return nil, err
	}
	if err := c.serveHosts(st); err != nil {
		return st.rep, err
	}
	return st.rep, nil
}

// serveHosts is phase two: every host with work (or warm capacity)
// serves its sub-trace on its own event-loop shard(s), concurrently,
// and the reports merge in host order. Wrecks — the detached serving
// state of crashed hosts — serve the same way but with a fail-stop
// cutoff at their crash instant, and merge in host order right before
// any post-rejoin incarnation of the same host.
func (c *Cluster) serveHosts(st *routeState) error {
	rep := st.rep
	type slot struct {
		h    *host
		wr   *wreck
		meta hostMeta
		rep  *ukpool.Report
		err  error
	}
	sortTrace := func(reqs []ukpool.Request) {
		// The sub-trace must be non-decreasing in arrival for the
		// pool; routing emits near-sorted order (size-dependent
		// serialization and requeues can invert neighbors), so
		// restore the invariant deterministically.
		sort.SliceStable(reqs, func(i, j int) bool {
			return reqs[i].Arrival < reqs[j].Arrival
		})
	}
	wreckOf := map[int]*wreck{}
	if st.f != nil {
		for _, wr := range st.f.wrecks {
			wreckOf[wr.hostID] = wr // at most one: a host crashes once per plan
		}
	}
	var slots []*slot
	for _, h := range c.hosts {
		if wr := wreckOf[h.id]; wr != nil {
			sortTrace(wr.assigned)
			slots = append(slots, &slot{h: h, wr: wr, meta: hostMeta{
				id: h.id, activatedAt: wr.activatedAt, crashed: true,
			}})
		}
		if h.pool != nil && (len(h.assigned) > 0 || h.active) {
			sortTrace(h.assigned)
			slots = append(slots, &slot{h: h, meta: hostMeta{
				id: h.id, activatedAt: h.activatedAt, drained: h.drained,
			}})
		}
	}
	// Host loops are independent, so they run under the bounded
	// deterministic worker pool; each slot writes only its own fields
	// and the merge below walks slots in host order, so the report is
	// identical however the workers interleave (and byte-identical to a
	// sequential pass when the pool degenerates to one worker).
	sim.ParallelFor(len(slots), func(i int) {
		s := slots[i]
		if s.wr != nil {
			if len(s.wr.assigned) == 0 {
				// Crashed before any request reached it (e.g. mid
				// handoff): nothing to serve, but the host still
				// shows up per-host as crashed.
				s.rep = &ukpool.Report{}
				return
			}
			s.rep, s.err = s.wr.pool.ServeWith(ukpool.NewTrace(s.wr.assigned),
				ukpool.ServeOpts{Shards: c.cfg.Cores, CrashAt: s.wr.crashedAt})
			return
		}
		s.rep, s.err = s.h.pool.ServeParallel(ukpool.NewTrace(s.h.assigned), c.cfg.Cores)
	})

	reps := make([]*ukpool.Report, 0, len(slots))
	metas := make([]hostMeta, 0, len(slots))
	var firstErr error
	for _, s := range slots {
		if s.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("ukcluster: host %d: %w", s.h.id, s.err)
		}
		if s.rep != nil {
			rep.Pool.Merge(s.rep)
			reps = append(reps, s.rep)
			metas = append(metas, s.meta)
		}
		if s.wr != nil {
			if s.wr.pool != nil {
				s.wr.pool.Close() // the dead fleet; nothing else owns it now
			}
			s.wr.assigned = nil
		} else {
			s.h.assigned = nil
		}
	}
	rep.ActiveEnd = c.serving()
	rep.fillPerHost(reps, metas)
	return firstErr
}
