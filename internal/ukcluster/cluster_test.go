package ukcluster

import (
	"reflect"
	"testing"
	"time"

	_ "unikraft/internal/allocators/buddy"
	_ "unikraft/internal/allocators/tlsf"
	"unikraft/internal/sim"
	"unikraft/internal/ukboot"
	"unikraft/internal/ukplat"
	"unikraft/internal/ukpool"
)

// hostBoot builds the BootFunc for one host: its own boot context (own
// arena) and host-distinct deterministic instance seeds — the same
// derivation the public Runtime layer uses.
func hostBoot(t testing.TB, hostID int) ukpool.BootFunc {
	t.Helper()
	ctx, err := ukboot.NewContext(ukboot.Config{
		Platform:   ukplat.KVMFirecracker,
		MemBytes:   8 << 20,
		ImageBytes: 1 << 20,
		Allocator:  "tlsf",
	})
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(hostID)*0xA24BAED4963EE407 + 1
	return func(id int) (*ukboot.VM, error) {
		return ctx.Boot(sim.NewMachineWithSeed(seed + uint64(id)*0x9E3779B97F4A7C15))
	}
}

func testPoolOpts() []ukpool.Option {
	return []ukpool.Option{
		ukpool.WithWarm(4), ukpool.WithMaxInstances(64), ukpool.WithColdBurst(4),
	}
}

// newTestCluster builds a cluster whose hosts each get their own boot
// context and seeds, with cfg's zero fields defaulted by New.
func newTestCluster(t testing.TB, cfg Config) *Cluster {
	t.Helper()
	if cfg.NewPool == nil {
		cfg.NewPool = func(host int) (*ukpool.Pool, error) {
			return ukpool.New(hostBoot(t, host), testPoolOpts()...), nil
		}
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func flashTrace(n int) ukpool.Workload {
	return ukpool.NewDiurnal(11, 2000, 6000, 2*time.Second,
		200*time.Millisecond, 300*time.Millisecond, 120_000, 64, n, 256)
}

// TestSingleHostIdentity: a one-host single-core cluster must produce a
// Pool section byte-identical to serving the same trace through a
// plain standalone pool — the front door is bypassed entirely, so the
// cluster layer costs nothing when you don't cluster.
func TestSingleHostIdentity(t *testing.T) {
	solo := ukpool.New(hostBoot(t, 0), testPoolOpts()...)
	defer solo.Close()
	want, err := solo.Serve(flashTrace(20_000))
	if err != nil {
		t.Fatal(err)
	}

	c := newTestCluster(t, Config{Hosts: 1})
	defer c.Close()
	rep, err := c.Serve(flashTrace(20_000))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*want, rep.Pool) {
		t.Errorf("1-host cluster diverged from plain Pool.Serve\npool:    %v\ncluster: %v", want, &rep.Pool)
	}
	if rep.Dropped() != 0 {
		t.Errorf("dropped %d requests", rep.Dropped())
	}
}

// TestClusterDeterminism: the full engine — multi-host, multi-core,
// autoscaling, handoff, drains — reproduces bit-for-bit across runs.
func TestClusterDeterminism(t *testing.T) {
	run := func() *Report {
		c := newTestCluster(t, Config{
			Hosts: 6, Cores: 2, InitialActive: 2, MinActive: 1,
			Activation: Activation{Handoff: true, ImageBytes: 3 << 20, Attach: 50 * time.Microsecond},
			DrainAfter: 4,
		})
		defer c.Close()
		rep, err := c.Serve(flashTrace(40_000))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical cluster runs diverged:\n%v\n----\n%v", a, b)
	}
	if a.Activations == 0 {
		t.Error("flash crowd never spilled to a standby host")
	}
	if a.Dropped() != 0 {
		t.Errorf("dropped %d requests", a.Dropped())
	}
}

// TestRoundRobinSpread: a static fleet under round-robin gets an even
// request split.
func TestRoundRobinSpread(t *testing.T) {
	c := newTestCluster(t, Config{Hosts: 4, MinActive: 4, Policy: RoundRobin})
	defer c.Close()
	rep, err := c.Serve(ukpool.NewPoisson(3, 20_000, 8000, 256))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerHost) != 4 {
		t.Fatalf("want 4 serving hosts, got %d", len(rep.PerHost))
	}
	for _, h := range rep.PerHost {
		if h.Requests != 2000 {
			t.Errorf("host %d served %d requests, want 2000", h.Host, h.Requests)
		}
	}
}

// TestConsistentHashAffinity: with session keys and a static fleet,
// every session sticks to exactly one host.
func TestConsistentHashAffinity(t *testing.T) {
	c := newTestCluster(t, Config{Hosts: 4, MinActive: 4, Policy: ConsistentHash})
	defer c.Close()

	// Route only (phase one) so the placement is observable per host.
	w := ukpool.NewDiurnal(5, 20_000, 20_000, time.Second, 0, 0, 0, 32, 6000, 128)
	rep, err := c.route(w)
	if err != nil {
		t.Fatal(err)
	}
	owner := map[uint64]int{}
	for _, h := range c.hosts {
		for _, r := range h.assigned {
			if prev, seen := owner[r.Key]; seen && prev != h.id {
				t.Fatalf("session %d split across hosts %d and %d", r.Key, prev, h.id)
			}
			owner[r.Key] = h.id
		}
		h.assigned = nil
	}
	if len(owner) != 32 {
		t.Errorf("saw %d sessions, want 32", len(owner))
	}
	hostsUsed := map[int]bool{}
	for _, h := range owner {
		hostsUsed[h] = true
	}
	if len(hostsUsed) < 2 {
		t.Errorf("ring put all 32 sessions on one host")
	}
	_ = rep
}

// TestScaleDownFloor: aggressive drains stop at MinActive and never
// touch host 0 — the template holder every handoff is seeded from.
func TestScaleDownFloor(t *testing.T) {
	c := newTestCluster(t, Config{
		Hosts: 4, InitialActive: 4, MinActive: 2,
		LowWater: 4, HighWater: 1 << 20, // drain-happy, never spill
		DrainAfter: 2,
	})
	defer c.Close()
	// A long quiet trace: backlog sits at ~0, every window votes drain.
	rep, err := c.Serve(ukpool.NewPoisson(9, 500, 2000, 128))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drains != 2 {
		t.Errorf("drains = %d, want exactly 2 (4 hosts down to floor 2)", rep.Drains)
	}
	if rep.ActiveEnd != 2 {
		t.Errorf("ActiveEnd = %d, want MinActive floor 2", rep.ActiveEnd)
	}
	for _, h := range rep.PerHost {
		if h.Host == 0 && h.Drained {
			t.Error("template holder (host 0) was drained")
		}
	}
	if rep.Dropped() != 0 {
		t.Errorf("dropped %d requests", rep.Dropped())
	}
}

// TestDrainRequeue: a drain with requests still in flight on a slow
// link bounces them back through the front door — deterministically,
// with none lost and end-to-end latency still measured from the
// original arrival.
func TestDrainRequeue(t *testing.T) {
	run := func() *Report {
		c := newTestCluster(t, Config{
			Hosts: 3, InitialActive: 3, MinActive: 1,
			Policy:   RoundRobin,
			Link:     Link{RTT: 20 * time.Millisecond}, // 10ms in flight each way
			LowWater: 4, HighWater: 1 << 20,
			DrainAfter: 2,
		})
		defer c.Close()
		rep, err := c.Serve(ukpool.NewPoisson(13, 2000, 4000, 128))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a := run()
	if a.Drains == 0 {
		t.Fatal("quiet trace never drained a host")
	}
	if a.Requeued == 0 {
		t.Error("drain with a 10ms forward delay bounced no in-flight requests")
	}
	if a.Dropped() != 0 {
		t.Errorf("requeue lost requests: dropped %d", a.Dropped())
	}
	if b := run(); !reflect.DeepEqual(a, b) {
		t.Error("drain/requeue runs diverged — requeue is not deterministic")
	}
}

// TestHandoffCheaperThanRemoteCold: the same spill-heavy trace with
// snapshot-image handoff vs remote template mints — activation latency
// must drop, and the shipped bytes must be accounted.
func TestHandoffCheaperThanRemoteCold(t *testing.T) {
	serve := func(act Activation) *Report {
		c := newTestCluster(t, Config{
			Hosts: 6, InitialActive: 2, Activation: act,
		})
		defer c.Close()
		rep, err := c.Serve(flashTrace(40_000))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Activations == 0 {
			t.Fatal("flash crowd never activated a standby host")
		}
		return rep
	}
	// The shipped image is the snapshot write-set (marked pages + heap
	// metadata), hundreds of KB — not the full guest memory.
	cold := serve(Activation{ColdBoot: 2 * time.Millisecond})
	hand := serve(Activation{Handoff: true, ImageBytes: 256 << 10, Attach: 50 * time.Microsecond})

	if hand.Handoffs != hand.Activations || hand.RemoteColdBoots != 0 {
		t.Errorf("handoff cluster minted remotely: handoffs=%d cold=%d of %d activations",
			hand.Handoffs, hand.RemoteColdBoots, hand.Activations)
	}
	if cold.RemoteColdBoots != cold.Activations || cold.Handoffs != 0 {
		t.Errorf("cold cluster handed off: handoffs=%d cold=%d", cold.Handoffs, cold.RemoteColdBoots)
	}
	if hand.Activation.Mean() >= cold.Activation.Mean() {
		t.Errorf("handoff activation (%v mean) not cheaper than remote cold boot (%v mean)",
			hand.Activation.Mean(), cold.Activation.Mean())
	}
	if want := int64(hand.Handoffs) * (256 << 10); hand.HandoffBytes != want {
		t.Errorf("HandoffBytes = %d, want %d", hand.HandoffBytes, want)
	}
}

// TestRouterIsPriced: front-door delay is never free — every routed
// request records a positive route latency (router cycles + link).
func TestRouterIsPriced(t *testing.T) {
	c := newTestCluster(t, Config{Hosts: 2})
	defer c.Close()
	rep, err := c.Serve(ukpool.NewPoisson(21, 10_000, 4000, 256))
	if err != nil {
		t.Fatal(err)
	}
	if int(rep.Route.Count) != rep.Offered {
		t.Fatalf("route histogram has %d entries for %d requests", rep.Route.Count, rep.Offered)
	}
	if rep.Route.MinV <= 0 {
		t.Errorf("min route delay %v, want > 0", rep.Route.MinV)
	}
	// End-to-end latency includes the route delay: the cluster's median
	// cannot be below the route minimum.
	if rep.Pool.Latency.Quantile(0.5) < rep.Route.MinV {
		t.Errorf("median e2e latency %v below min route delay %v — Origin accounting broken",
			rep.Pool.Latency.Quantile(0.5), rep.Route.MinV)
	}
}

// BenchmarkClusterServe: the two-phase engine end to end — 8 hosts,
// 2 cores each, autoscaling and handoff on. Tracks the control plane's
// real-time overhead and its allocation behavior.
func BenchmarkClusterServe(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := newTestCluster(b, Config{
			Hosts: 8, Cores: 2, InitialActive: 2,
			Activation: Activation{Handoff: true, ImageBytes: 3 << 20, Attach: 50 * time.Microsecond},
		})
		b.StartTimer()
		rep, err := c.Serve(flashTrace(30_000))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Dropped() != 0 {
			b.Fatalf("dropped %d", rep.Dropped())
		}
		b.StopTimer()
		c.Close()
		b.StartTimer()
	}
}
