package ukcluster

import (
	"reflect"
	"testing"
	"time"

	"unikraft/internal/ukfault"
	"unikraft/internal/ukpool"
)

// faultTestConfig is the shared shape for fault tests: six hosts, two
// serving from the start, snapshot handoff priced like the determinism
// test uses.
func faultTestConfig(plan *ukfault.Plan) Config {
	return Config{
		Hosts: 6, Cores: 2, InitialActive: 2, MinActive: 1,
		Activation: Activation{Handoff: true, ImageBytes: 3 << 20, Attach: 50 * time.Microsecond},
		DrainAfter: 4,
		Faults:     plan,
	}
}

// TestEmptyPlanIdentity: arming an empty fault plan must not change a
// single byte of the report — the fault engine is free until a fault
// is actually planned.
func TestEmptyPlanIdentity(t *testing.T) {
	serve := func(plan *ukfault.Plan) *Report {
		c := newTestCluster(t, faultTestConfig(plan))
		defer c.Close()
		rep, err := c.Serve(flashTrace(40_000))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain, empty := serve(nil), serve(ukfault.New(123))
	if !reflect.DeepEqual(plain, empty) {
		t.Errorf("empty fault plan diverged from fault-free serve:\n%v\n----\n%v", plain, empty)
	}
}

// TestFailoverDeterminism: the full fault engine — crash, detection,
// retries, replacement activation, link faults, VM hazard — reproduces
// bit-for-bit across runs with the same seed and plan.
func TestFailoverDeterminism(t *testing.T) {
	run := func() *Report {
		plan := ukfault.New(31).
			CrashHost(1, 250*time.Millisecond).
			DegradeLink(0, 300*time.Millisecond, 400*time.Millisecond, 20*time.Microsecond, 0.01)
		cfg := faultTestConfig(plan)
		cfg.NewPool = func(host int) (*ukpool.Pool, error) {
			opts := append(testPoolOpts(),
				ukpool.WithCrashHazard(1e-3, ukfault.Mix(31, uint64(host))))
			return ukpool.New(hostBoot(t, host), opts...), nil
		}
		c := newTestCluster(t, cfg)
		defer c.Close()
		rep, err := c.Serve(flashTrace(40_000))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical fault runs diverged:\n%v\n----\n%v", a, b)
	}
	if a.Crashes != 1 {
		t.Errorf("crashes = %d, want 1", a.Crashes)
	}
	if a.Retried == 0 {
		t.Error("crash at peak never lost a forward to the retry path")
	}
	if a.Pool.Crashes == 0 {
		t.Error("VM hazard never crashed an instance")
	}
	if a.Dropped() != 0 {
		t.Errorf("%d requests unaccounted for", a.Dropped())
	}
}

// TestCrashFailover: losing a serving host must be detected from the
// probe schedule, replace itself from standby, mark the dead host's
// rows, and keep every request accounted. The crash lands before the
// flash crowd so standbys are still available for the replacement.
func TestCrashFailover(t *testing.T) {
	plan := ukfault.New(7).CrashHost(1, 150*time.Millisecond)
	cfg := faultTestConfig(plan)
	cfg.MinActive = 2 // keep host 1 serving until the crash takes it
	c := newTestCluster(t, cfg)
	defer c.Close()
	rep, err := c.Serve(flashTrace(40_000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", rep.Crashes)
	}
	if rep.Replacements == 0 {
		t.Error("detection never activated a replacement from standby")
	}
	if rep.Probes == 0 {
		t.Error("failure detection ran without a single priced probe")
	}
	if rep.Dropped() != 0 {
		t.Errorf("%d requests unaccounted for", rep.Dropped())
	}
	crashedRows := 0
	for _, h := range rep.PerHost {
		if h.Crashed {
			crashedRows++
			if h.Host != 1 {
				t.Errorf("host %d marked crashed, plan killed host 1", h.Host)
			}
		}
	}
	if crashedRows == 0 {
		t.Error("no per-host row marked crashed")
	}
	if g := rep.Goodput(); g < 0.95 {
		t.Errorf("goodput %.4f collapsed — failover not absorbing the crash", g)
	}
}

// TestCrashDuringHandoff: a host that fail-stops while its activation
// handoff is still in flight must not wedge the serve — the wreck is
// empty or tiny, a replacement takes over, and nothing is lost
// silently. A punishingly slow link keeps the handoff window open for
// hundreds of milliseconds so the crash is guaranteed to land inside
// it.
func TestCrashDuringHandoff(t *testing.T) {
	run := func() *Report {
		plan := ukfault.New(17).CrashHost(2, 260*time.Millisecond)
		cfg := faultTestConfig(plan)
		cfg.Link = Link{BytesPerSec: 4 << 20, RTT: 200 * time.Microsecond}
		c := newTestCluster(t, cfg)
		defer c.Close()
		rep, err := c.Serve(flashTrace(40_000))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()
	if rep.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", rep.Crashes)
	}
	if rep.Dropped() != 0 {
		t.Errorf("%d requests unaccounted for", rep.Dropped())
	}
	if other := run(); !reflect.DeepEqual(rep, other) {
		t.Error("crash-during-handoff run is not deterministic")
	}
}

// TestRejoinServesAgain: a crashed host that rejoins comes back as a
// cold standby; only the dead window between crash and rejoin swallows
// forwards.
func TestRejoinServesAgain(t *testing.T) {
	plan := ukfault.New(19).CrashHostRejoin(1, 250*time.Millisecond, 100*time.Millisecond)
	c := newTestCluster(t, faultTestConfig(plan))
	defer c.Close()
	rep, err := c.Serve(flashTrace(40_000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejoins != 1 {
		t.Errorf("rejoins = %d, want 1", rep.Rejoins)
	}
	if rep.Dropped() != 0 {
		t.Errorf("%d requests unaccounted for", rep.Dropped())
	}
}

// TestFloorSurvivesCrashes: crash every host but one under light load —
// the autoscaler must never drain the last healthy host, and the serve
// must still account for everything.
func TestFloorSurvivesCrashes(t *testing.T) {
	plan := ukfault.New(23).
		CrashHost(1, 50*time.Millisecond).
		CrashHost(2, 60*time.Millisecond)
	c := newTestCluster(t, Config{
		Hosts: 3, Cores: 2, InitialActive: 3, MinActive: 1,
		Activation: Activation{Handoff: true, ImageBytes: 3 << 20, Attach: 50 * time.Microsecond},
		DrainAfter: 2,
		Faults:     plan,
	})
	defer c.Close()
	rep, err := c.Serve(flashTrace(40_000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes != 2 {
		t.Fatalf("crashes = %d, want 2", rep.Crashes)
	}
	if rep.ActiveEnd < 1 {
		t.Errorf("active end = %d — the floor drained the last healthy host", rep.ActiveEnd)
	}
	if rep.Dropped() != 0 {
		t.Errorf("%d requests unaccounted for", rep.Dropped())
	}
	// Host 0 is the survivor; it must have served the bulk.
	var host0 int
	for _, h := range rep.PerHost {
		if h.Host == 0 && !h.Crashed {
			host0 = h.Requests
		}
	}
	if host0 == 0 {
		t.Error("surviving host 0 served nothing")
	}
}

// TestPartitionRetries: a front-door partition makes every forward to
// the host die of reply timeout and re-route; the host serves nothing
// while cut off, yet nothing is dropped.
func TestPartitionRetries(t *testing.T) {
	plan := ukfault.New(29).PartitionHost(1, 100*time.Millisecond, 200*time.Millisecond)
	c := newTestCluster(t, Config{
		Hosts: 2, Cores: 2, InitialActive: 2, MinActive: 2,
		Policy: RoundRobin,
		Faults: plan,
	})
	defer c.Close()
	rep, err := c.Serve(flashTrace(40_000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retried == 0 {
		t.Error("partition never forced a retry")
	}
	if rep.Dropped() != 0 {
		t.Errorf("%d requests unaccounted for", rep.Dropped())
	}
}

// TestRetryBudgetExhaustion: with a hard per-trace retry budget, losses
// beyond it fail instead of retrying — bounded, explicit, counted.
func TestRetryBudgetExhaustion(t *testing.T) {
	plan := ukfault.New(37).PartitionHost(1, 100*time.Millisecond, 400*time.Millisecond)
	cfg := Config{
		Hosts: 2, Cores: 2, InitialActive: 2, MinActive: 2,
		Policy:      RoundRobin,
		Faults:      plan,
		RetryBudget: 50,
	}
	c := newTestCluster(t, cfg)
	defer c.Close()
	rep, err := c.Serve(flashTrace(40_000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retried > 50 {
		t.Errorf("retried %d forwards, budget was 50", rep.Retried)
	}
	if rep.Failed == 0 {
		t.Error("budget exhaustion never failed a forward")
	}
	if rep.Dropped() != 0 {
		t.Errorf("%d requests unaccounted for", rep.Dropped())
	}
}

// TestClusterCloseIdempotentAndServeErrors: Close twice is safe and a
// closed cluster refuses to serve instead of panicking.
func TestClusterCloseIdempotentAndServeErrors(t *testing.T) {
	c := newTestCluster(t, Config{Hosts: 2})
	c.Close()
	c.Close()
	if _, err := c.Serve(flashTrace(1_000)); err == nil {
		t.Error("Serve on closed cluster returned nil error")
	}
}

// TestPlanValidation: an out-of-range crash host must be rejected at
// construction, not discovered mid-serve.
func TestPlanValidation(t *testing.T) {
	cfg := Config{Hosts: 2, Faults: ukfault.New(1).CrashHost(5, time.Millisecond)}
	cfg.NewPool = func(host int) (*ukpool.Pool, error) {
		return ukpool.New(hostBoot(t, host), testPoolOpts()...), nil
	}
	if _, err := New(cfg); err == nil {
		t.Error("plan crashing host 5 of a 2-host cluster passed validation")
	}
}
