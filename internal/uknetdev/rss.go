package uknetdev

// Receive-side scaling: multi-queue devices steer incoming flows to RX
// queues by hashing the connection 4-tuple, so every packet of a flow
// lands on the same queue (and therefore the same vCPU) while distinct
// flows spread across queues. The hash is the same domain-separated
// splitmix64 the cluster router uses for its consistent-hash ring —
// cheap, well-mixed, deterministic — seeded with an RSS-specific salt
// so queue placement and host placement never correlate.
//
// Steering happens "in hardware": the host side of the device picks the
// ring while depositing the frame, exactly like a multi-queue virtio
// device with VIRTIO_NET_F_MQ + an RSS indirection table, so no guest
// cycles are charged for the hash.

// rssSalt domain-separates the RSS hash from every other splitmix64
// user in the tree (the cluster ring salts with host ids instead).
const rssSalt uint64 = 0x52535320756B6E64 // "RSS uknd"

// splitmix64 is the standard finalizer-quality mixer (same constants as
// the cluster router's ring hash).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// RSSQueue maps a flow 4-tuple onto one of `queues` RX queues. It is
// the exact function multi-queue devices apply on delivery, exported so
// load generators and tests can predict (or deliberately shape) the
// flow→queue placement — the simulated analogue of pktgen picking
// source ports to hit every hardware queue evenly. queues <= 1 always
// returns 0.
func RSSQueue(srcIP, dstIP uint32, srcPort, dstPort uint16, proto byte, queues int) int {
	if queues <= 1 {
		return 0
	}
	k1 := uint64(srcIP)<<32 | uint64(dstIP)
	k2 := uint64(srcPort)<<32 | uint64(dstPort)<<16 | uint64(proto)
	h := splitmix64(splitmix64(k1^rssSalt) + k2)
	return int(h % uint64(queues))
}

// Ethernet/IPv4 field offsets for the steering parser. The device only
// needs enough of a header walk to extract the 4-tuple; anything it
// cannot parse (ARP, truncated frames, non-initial fragments) falls
// back to queue 0, mirroring real NIC RSS behaviour.
const (
	ethHeaderLen   = 14
	ethTypeOff     = 12
	etherTypeIPv4  = 0x0800
	ipProtoOff     = 9
	ipSrcOff       = 12
	ipDstOff       = 16
	ipFragOff      = 6
	ipProtoTCP     = 6
	ipProtoUDP     = 17
	minIPHeaderLen = 20
)

// rssSteer parses an Ethernet frame and returns its RX queue. Frames
// without a hashable tuple go to queue 0 (the "default queue" of real
// RSS indirection tables), which keeps broadcast/ARP handling on the
// primary core.
func rssSteer(frame []byte, queues int) int {
	if queues <= 1 || len(frame) < ethHeaderLen+minIPHeaderLen {
		return 0
	}
	if int(frame[ethTypeOff])<<8|int(frame[ethTypeOff+1]) != etherTypeIPv4 {
		return 0
	}
	ip := frame[ethHeaderLen:]
	ihl := int(ip[0]&0x0F) * 4
	if ihl < minIPHeaderLen || len(ip) < ihl {
		return 0
	}
	proto := ip[ipProtoOff]
	src := uint32(ip[ipSrcOff])<<24 | uint32(ip[ipSrcOff+1])<<16 |
		uint32(ip[ipSrcOff+2])<<8 | uint32(ip[ipSrcOff+3])
	dst := uint32(ip[ipDstOff])<<24 | uint32(ip[ipDstOff+1])<<16 |
		uint32(ip[ipDstOff+2])<<8 | uint32(ip[ipDstOff+3])
	var sport, dport uint16
	if proto == ipProtoTCP || proto == ipProtoUDP {
		// Hash ports only for the first fragment (offset 0); later
		// fragments carry no L4 header, and hashing IPs alone keeps all
		// fragments of a datagram on one queue.
		frag := int(ip[ipFragOff]&0x1F)<<8 | int(ip[ipFragOff+1])
		if frag == 0 && len(ip) >= ihl+4 {
			sport = uint16(ip[ihl])<<8 | uint16(ip[ihl+1])
			dport = uint16(ip[ihl+2])<<8 | uint16(ip[ihl+3])
		}
	}
	return RSSQueue(src, dst, sport, dport, proto, queues)
}
