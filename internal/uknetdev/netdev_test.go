package uknetdev

import (
	"bytes"
	"testing"
	"testing/quick"

	"unikraft/internal/sim"
)

func newPair(t *testing.T) (*VirtioNet, *VirtioNet, *sim.Machine, *sim.Machine) {
	t.Helper()
	ma, mb := sim.NewMachine(), sim.NewMachine()
	a, b, err := NewPair(ma, mb, VhostNet)
	if err != nil {
		t.Fatal(err)
	}
	return a, b, ma, mb
}

func mkPkt(payload []byte) *Netbuf {
	nb := NewNetbuf(64, 1514)
	copy(nb.Data[nb.Off:], payload)
	nb.Len = len(payload)
	return nb
}

func TestTxRxRoundTrip(t *testing.T) {
	a, b, _, _ := newPair(t)
	msg := []byte("hello unikraft")
	n, _, err := a.TxBurst(0, []*Netbuf{mkPkt(msg)})
	if err != nil || n != 1 {
		t.Fatalf("TxBurst = %d, %v", n, err)
	}
	rx := []*Netbuf{NewNetbuf(0, 2048)}
	n, more, err := b.RxBurst(0, rx)
	if err != nil || n != 1 {
		t.Fatalf("RxBurst = %d, %v", n, err)
	}
	if more {
		t.Error("more = true with empty ring")
	}
	if !bytes.Equal(rx[0].Bytes(), msg) {
		t.Fatalf("payload = %q, want %q", rx[0].Bytes(), msg)
	}
}

func TestBurstSemantics(t *testing.T) {
	a, b, _, _ := newPair(t)
	var pkts []*Netbuf
	for i := 0; i < 10; i++ {
		pkts = append(pkts, mkPkt([]byte{byte(i)}))
	}
	if n, _, _ := a.TxBurst(0, pkts); n != 10 {
		t.Fatalf("TxBurst = %d, want 10", n)
	}
	rx := make([]*Netbuf, 4)
	for i := range rx {
		rx[i] = NewNetbuf(0, 2048)
	}
	n, more, _ := b.RxBurst(0, rx)
	if n != 4 || !more {
		t.Fatalf("first RxBurst = %d more=%v, want 4 true", n, more)
	}
	n, more, _ = b.RxBurst(0, rx)
	if n != 4 || !more {
		t.Fatalf("second RxBurst = %d more=%v, want 4 true", n, more)
	}
	n, more, _ = b.RxBurst(0, rx)
	if n != 2 || more {
		t.Fatalf("third RxBurst = %d more=%v, want 2 false", n, more)
	}
}

func TestRingOverflowDrops(t *testing.T) {
	a, b, _, _ := newPair(t)
	const ring = 4096 // NewPair ring size
	for i := 0; i < ring+50; i++ {
		a.TxBurst(0, []*Netbuf{mkPkt([]byte("x"))})
	}
	if got := b.Stats().RxDrops; got != 50 {
		t.Fatalf("RxDrops = %d, want 50", got)
	}
	if got := b.Pending(0); got != ring {
		t.Fatalf("Pending = %d, want %d", got, ring)
	}
}

func TestInterruptFiresOnceAndRearms(t *testing.T) {
	ma, mb := sim.NewMachine(), sim.NewMachine()
	fired := 0
	a := NewVirtioNet(ma, MAC{2, 0, 0, 0, 0, 1}, VhostNet)
	b := NewVirtioNet(mb, MAC{2, 0, 0, 0, 0, 2}, VhostNet)
	Connect(a, b)
	for _, d := range []*VirtioNet{a, b} {
		if err := d.Configure(1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.RxQueueSetup(0, QueueConfig{IntrHandler: func() { fired++ }}); err != nil {
		t.Fatal(err)
	}
	if err := b.TxQueueSetup(0, QueueConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := a.RxQueueSetup(0, QueueConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := a.TxQueueSetup(0, QueueConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}

	if err := b.EnableRxInterrupt(0); err != nil {
		t.Fatal(err)
	}
	a.TxBurst(0, []*Netbuf{mkPkt([]byte("1"))})
	a.TxBurst(0, []*Netbuf{mkPkt([]byte("2"))})
	if fired != 1 {
		t.Fatalf("interrupts fired = %d, want 1 (storm avoidance)", fired)
	}
	// Drain, re-enable: pending work should fire immediately when armed
	// with a non-empty ring.
	rx := []*Netbuf{NewNetbuf(0, 2048), NewNetbuf(0, 2048)}
	b.RxBurst(0, rx[:1])
	if err := b.EnableRxInterrupt(0); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("interrupts fired = %d, want 2 (level semantics)", fired)
	}
}

func TestKickAccounting(t *testing.T) {
	ma, mb := sim.NewMachine(), sim.NewMachine()
	a, _, err := NewPair(ma, mb, VhostNet)
	if err != nil {
		t.Fatal(err)
	}
	var burst []*Netbuf
	for i := 0; i < 16; i++ {
		burst = append(burst, mkPkt([]byte("x")))
	}
	before := ma.CPU.Cycles()
	a.TxBurst(0, burst)
	batched := ma.CPU.Cycles() - before
	if got := a.Stats().Kicks; got != 1 {
		t.Fatalf("Kicks = %d, want 1 per burst", got)
	}
	// One kick per packet would cost far more: batching matters.
	perPkt := uint64(16)*driverTxCycles + 16*VhostNet.KickCycles
	if batched >= perPkt {
		t.Fatalf("batched cost %d >= per-packet cost %d", batched, perPkt)
	}

	// vhost-user polls: no kicks at all.
	mc, md := sim.NewMachine(), sim.NewMachine()
	c, _, err := NewPair(mc, md, VhostUser)
	if err != nil {
		t.Fatal(err)
	}
	c.TxBurst(0, burst)
	if got := c.Stats().Kicks; got != 0 {
		t.Fatalf("vhost-user Kicks = %d, want 0", got)
	}
}

func TestNetbufHeadroom(t *testing.T) {
	nb := NewNetbuf(32, 100)
	nb.Len = 10
	if got := nb.Prepend(14); len(got) != 14 {
		t.Fatalf("Prepend(14) len = %d", len(got))
	}
	if nb.Len != 24 || nb.Off != 18 {
		t.Fatalf("after prepend: off=%d len=%d", nb.Off, nb.Len)
	}
	nb.Trim(14)
	if nb.Len != 10 || nb.Off != 32 {
		t.Fatalf("after trim: off=%d len=%d", nb.Off, nb.Len)
	}
	nb2 := NewNetbuf(4, 10)
	if nb2.Prepend(8) != nil {
		t.Fatal("Prepend beyond headroom succeeded")
	}
}

// TestFig19Shape verifies the TX bottleneck model's qualitative
// properties across packet sizes (the full figure is produced by the
// experiments package).
func TestFig19Shape(t *testing.T) {
	m := sim.NewMachine()
	guest := GuestTxCyclesPerPkt() + 40 // driver + minimal app loop
	at := func(b Backend, size int) float64 {
		return SustainableTxRate(m, guest, b, TenGbE, size)
	}
	// vhost-user beats vhost-net by ~10x at small packets.
	vu64, vn64 := at(VhostUser, 64), at(VhostNet, 64)
	if vu64 < 5*vn64 {
		t.Errorf("64B: vhost-user %.1fMp/s vs vhost-net %.1fMp/s; want >=5x", vu64/1e6, vn64/1e6)
	}
	if vu64 < 10e6 || vu64 > 14.3e6 {
		t.Errorf("64B vhost-user = %.1fMp/s, want ~13Mp/s (Fig 19)", vu64/1e6)
	}
	// At 1500B the wire is the bottleneck and both converge.
	vu1500, vn1500 := at(VhostUser, 1500), at(VhostNet, 1500)
	line := TenGbE.MaxPacketsPerSecond(1500)
	if vu1500 != line {
		t.Errorf("1500B vhost-user = %.2fMp/s, want line rate %.2fMp/s", vu1500/1e6, line/1e6)
	}
	if vn1500 > vu1500 {
		t.Errorf("vhost-net above vhost-user at 1500B")
	}
}

// TestLineRateMonotone property: line-rate packet bound decreases with
// frame size.
func TestLineRateMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a)%1437+64, int(b)%1437+64
		if x > y {
			x, y = y, x
		}
		return TenGbE.MaxPacketsPerSecond(x) >= TenGbE.MaxPacketsPerSecond(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
