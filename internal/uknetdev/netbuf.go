package uknetdev

import "fmt"

// Netbuf is the uk_netbuf packet wrapper (§3.1): meta-information around
// an application-owned buffer. The layout is under the application's
// control; drivers only read Data[Off:Off+Len].
//
// A Netbuf is either unmanaged (built directly or via NewNetbuf; the
// owner controls its lifetime and drivers snapshot its payload) or
// pool-managed (from NetbufPool.Get; reference-counted, recycled on the
// pool's free list when the last reference is released, and handed
// through the datapath without payload copies).
type Netbuf struct {
	// Data is the backing buffer, allocated by the application or
	// network stack (possibly from a ukalloc pool).
	Data []byte
	// Off is the start of packet bytes within Data (headroom before it
	// lets stacks prepend headers without copying).
	Off int
	// Len is the packet length.
	Len int
	// Priv is per-packet application state (lwIP pbuf pointer etc.).
	Priv any

	// refs is the reference count for pool-managed buffers; 0 on
	// unmanaged buffers.
	refs int32
	// pool is the owning free list, nil for unmanaged buffers.
	pool *NetbufPool
}

// Bytes returns the packet payload view.
func (nb *Netbuf) Bytes() []byte {
	nb.checkLive("Bytes")
	return nb.Data[nb.Off : nb.Off+nb.Len]
}

// Prepend grows the packet at the front by n bytes (consuming headroom)
// and returns the new front slice, or nil if headroom is insufficient.
func (nb *Netbuf) Prepend(n int) []byte {
	nb.checkLive("Prepend")
	if nb.Off < n {
		return nil
	}
	nb.Off -= n
	nb.Len += n
	return nb.Data[nb.Off : nb.Off+n]
}

// Trim removes n bytes from the front (after parsing a header).
func (nb *Netbuf) Trim(n int) {
	nb.checkLive("Trim")
	if n > nb.Len {
		n = nb.Len
	}
	nb.Off += n
	nb.Len -= n
}

// Pooled reports whether the buffer is pool-managed (refcounted,
// zero-copy capable).
func (nb *Netbuf) Pooled() bool { return nb.pool != nil }

// Refs reports the current reference count (0 for unmanaged buffers).
func (nb *Netbuf) Refs() int { return int(nb.refs) }

// Ref takes an additional reference on a pool-managed buffer and
// returns nb for chaining. Unmanaged buffers are returned unchanged —
// their owner manages their lifetime.
func (nb *Netbuf) Ref() *Netbuf {
	if nb.pool == nil {
		return nb
	}
	nb.checkLive("Ref")
	nb.refs++
	return nb
}

// Release drops one reference; the last release returns the buffer to
// its pool's free list. Releasing a dead or unmanaged buffer panics —
// a double free in the datapath is a correctness bug, not a condition
// to limp past.
func (nb *Netbuf) Release() {
	if nb.pool == nil {
		panic("uknetdev: Release of unmanaged netbuf")
	}
	if nb.refs <= 0 {
		panic("uknetdev: netbuf double free")
	}
	nb.refs--
	if nb.refs == 0 {
		nb.pool.put(nb)
	}
}

// checkLive panics on use-after-release of a pool-managed buffer.
// Unmanaged buffers skip the check (refs stays 0 by construction).
func (nb *Netbuf) checkLive(op string) {
	if nb.pool != nil && nb.refs <= 0 {
		panic(fmt.Sprintf("uknetdev: %s on released netbuf", op))
	}
}

// NewNetbuf allocates an unmanaged netbuf with the given headroom and
// payload capacity from plain Go memory (stacks with pools use their
// own).
func NewNetbuf(headroom, capacity int) *Netbuf {
	return &Netbuf{Data: make([]byte, headroom+capacity), Off: headroom}
}

// NetbufPool is a free list of fixed-geometry netbufs. The datapath
// recycles buffers through it instead of allocating per packet: Get pops
// a recycled buffer (or allocates on a cold pool), the last Release puts
// it back. Pools are single-goroutine, like the stacks and devices that
// own them; independent simulated machines use independent pools.
type NetbufPool struct {
	headroom, capacity int
	free               []*Netbuf

	// Gets, News and Puts count pool traffic: News is the number of
	// buffers that had to be allocated because the free list was empty —
	// on a warmed-up datapath it stops growing.
	Gets, News, Puts uint64
}

// NewNetbufPool builds a pool of buffers with the given headroom and
// payload capacity, pre-populating prealloc buffers on the free list.
func NewNetbufPool(headroom, capacity, prealloc int) *NetbufPool {
	p := &NetbufPool{headroom: headroom, capacity: capacity}
	for i := 0; i < prealloc; i++ {
		nb := NewNetbuf(headroom, capacity)
		nb.pool = p
		p.free = append(p.free, nb)
	}
	return p
}

// Get returns a live buffer with one reference, full headroom and zero
// length.
func (p *NetbufPool) Get() *Netbuf {
	p.Gets++
	var nb *Netbuf
	if n := len(p.free); n > 0 {
		nb = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	} else {
		p.News++
		nb = NewNetbuf(p.headroom, p.capacity)
		nb.pool = p
	}
	nb.Off = p.headroom
	nb.Len = 0
	nb.Priv = nil
	nb.refs = 1
	return nb
}

// put returns a dead buffer to the free list (called by Release).
func (p *NetbufPool) put(nb *Netbuf) {
	p.Puts++
	p.free = append(p.free, nb)
}

// FreeLen reports buffers currently on the free list (tests).
func (p *NetbufPool) FreeLen() int { return len(p.free) }
