// Package uknetdev implements the paper's core networking API (§3.1): a
// driver-side interface decoupling network drivers from network stacks,
// designed after DPDK's rte_netdev but supporting polling,
// interrupt-driven and mixed operation.
//
// The API mirrors the paper's C signatures: applications own all memory
// (uk_netbuf wrappers around app-allocated buffers), drivers register
// send/receive callbacks, and uk_netdev_tx_burst/rx_burst move arrays of
// packet buffers with counts passed in and out.
package uknetdev

import (
	"errors"
	"fmt"

	"unikraft/internal/sim"
)

// MAC is an Ethernet hardware address.
type MAC [6]byte

// String renders the conventional colon form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Errors returned by devices.
var (
	ErrDevStopped = errors.New("uknetdev: device not started")
	ErrBadQueue   = errors.New("uknetdev: no such queue")
)

// Info describes driver capabilities the application reads before
// configuring the device ("API interfaces for applications to provide
// necessary information (e.g., supported number of queues and
// offloading features)", §3.1).
type Info struct {
	MaxRxQueues, MaxTxQueues int
	MaxMTU                   int
	// Backend names the host-side datapath (vhost-net, vhost-user...).
	Backend string
}

// QueueConfig configures one queue; memory management stays with the
// application, which is why the ring size is here but no buffer pool.
type QueueConfig struct {
	Ring int // descriptor count (power of two)
	// IntrHandler, when non-nil, is invoked when the queue transitions
	// to "work available" while in interrupt mode.
	IntrHandler func()
	// Machine, when non-nil, is the vCPU that owns this queue: driver
	// descriptor work, kicks and IRQs for the queue are charged to it
	// instead of the device's machine. Single-core guests leave it nil
	// and every queue charges the device machine, exactly as before
	// multi-queue support existed.
	Machine *sim.Machine
}

// Stats counts device activity.
type Stats struct {
	TxPackets, RxPackets uint64
	TxBytes, RxBytes     uint64
	TxDrops, RxDrops     uint64
	Kicks                uint64 // guest->host notifications (VM exits)
	IRQs                 uint64 // host->guest interrupts delivered
	// KicksElided and IRQsElided count notifications that coalescing
	// suppressed (batch accounting; see Tuning).
	KicksElided, IRQsElided uint64
	// ZCPackets counts packets that crossed the device without a payload
	// copy (pool-managed netbuf handoff).
	ZCPackets uint64
}

// Tuning coalesces device notifications, the §3.1 batching axis
// ("supporting high performance features like ... packet batching").
// The zero value is the paper's default driver behaviour: one kick per
// TX burst, one interrupt per queue-empty-to-non-empty transition.
type Tuning struct {
	// TxKickBatch amortizes guest→host kicks (VM-exit-class cost) over
	// batches: with a batch of N the driver charges exactly one
	// notification per N enqueued frames, carrying remainders across
	// bursts (stragglers below a full batch are charged by FlushTx).
	// 0 or 1 keeps the calibrated default: one kick per TX burst.
	TxKickBatch int
	// RxIRQBatch moderates host→guest interrupts: an armed queue fires
	// only once RxIRQBatch frames are pending (0 or 1 fires on the first
	// frame). Re-arming via EnableRxInterrupt keeps level semantics and
	// fires immediately on any pending work, so moderated stragglers are
	// picked up at the next poll point.
	RxIRQBatch int
}

func (t Tuning) txBatch() int {
	if t.TxKickBatch < 1 {
		return 1
	}
	return t.TxKickBatch
}

func (t Tuning) rxBatch() int {
	if t.RxIRQBatch < 1 {
		return 1
	}
	return t.RxIRQBatch
}

// ZeroCopyDevice is the optional fast-path capability: drivers that can
// hand pool-managed netbufs across without payload copies implement it
// in addition to Device. RxBurstZC transfers buffer ownership to the
// caller (one reference per returned buffer, Release when done);
// FlushTx charges any kick still owed for frames below a full
// TxKickBatch.
type ZeroCopyDevice interface {
	Device
	RxBurstZC(q int, pkts []*Netbuf) (n int, more bool, err error)
	FlushTx()
}

// Device is the uk_netdev interface. Drivers register their callbacks in
// a uk_netdev structure; here, they implement this interface.
type Device interface {
	// Info reports capabilities.
	Info() Info
	// HWAddr returns the device MAC.
	HWAddr() MAC
	// Configure sets queue counts; must precede queue setup.
	Configure(rxQueues, txQueues int) error
	// RxQueueSetup / TxQueueSetup prepare one queue.
	RxQueueSetup(q int, cfg QueueConfig) error
	TxQueueSetup(q int, cfg QueueConfig) error
	// Start enables the datapath.
	Start() error

	// TxBurst enqueues as many of pkts as fit on queue q. It returns
	// the count enqueued and whether the queue has room for more
	// (mirroring the paper's status flags).
	TxBurst(q int, pkts []*Netbuf) (n int, more bool, err error)
	// RxBurst fills pkts with received packets. It returns the count
	// received and whether more packets are already waiting.
	RxBurst(q int, pkts []*Netbuf) (n int, more bool, err error)

	// EnableRxInterrupt switches queue q to interrupt mode: when the
	// device has packets and the queue is empty-polled, the registered
	// IntrHandler fires once, then the line disarms until re-enabled
	// (the paper's storm-avoidance design: "the interrupt line is
	// inactive until the transmit or receive function activates it
	// again", §3.1).
	EnableRxInterrupt(q int) error
	DisableRxInterrupt(q int) error

	// Stats returns counters.
	Stats() Stats
}
