// Package uknetdev implements the paper's core networking API (§3.1): a
// driver-side interface decoupling network drivers from network stacks,
// designed after DPDK's rte_netdev but supporting polling,
// interrupt-driven and mixed operation.
//
// The API mirrors the paper's C signatures: applications own all memory
// (uk_netbuf wrappers around app-allocated buffers), drivers register
// send/receive callbacks, and uk_netdev_tx_burst/rx_burst move arrays of
// packet buffers with counts passed in and out.
package uknetdev

import (
	"errors"
	"fmt"
)

// MAC is an Ethernet hardware address.
type MAC [6]byte

// String renders the conventional colon form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Netbuf is the uk_netbuf packet wrapper (§3.1): meta-information around
// an application-owned buffer. The layout is under the application's
// control; drivers only read Data[Off:Off+Len].
type Netbuf struct {
	// Data is the backing buffer, allocated by the application or
	// network stack (possibly from a ukalloc pool).
	Data []byte
	// Off is the start of packet bytes within Data (headroom before it
	// lets stacks prepend headers without copying).
	Off int
	// Len is the packet length.
	Len int
	// Priv is per-packet application state (lwIP pbuf pointer etc.).
	Priv any
}

// Bytes returns the packet payload view.
func (nb *Netbuf) Bytes() []byte { return nb.Data[nb.Off : nb.Off+nb.Len] }

// Prepend grows the packet at the front by n bytes (consuming headroom)
// and returns the new front slice, or nil if headroom is insufficient.
func (nb *Netbuf) Prepend(n int) []byte {
	if nb.Off < n {
		return nil
	}
	nb.Off -= n
	nb.Len += n
	return nb.Data[nb.Off : nb.Off+n]
}

// Trim removes n bytes from the front (after parsing a header).
func (nb *Netbuf) Trim(n int) {
	if n > nb.Len {
		n = nb.Len
	}
	nb.Off += n
	nb.Len -= n
}

// NewNetbuf allocates a netbuf with the given headroom and payload
// capacity from plain Go memory (stacks with pools use their own).
func NewNetbuf(headroom, capacity int) *Netbuf {
	return &Netbuf{Data: make([]byte, headroom+capacity), Off: headroom}
}

// Errors returned by devices.
var (
	ErrDevStopped = errors.New("uknetdev: device not started")
	ErrBadQueue   = errors.New("uknetdev: no such queue")
)

// Info describes driver capabilities the application reads before
// configuring the device ("API interfaces for applications to provide
// necessary information (e.g., supported number of queues and
// offloading features)", §3.1).
type Info struct {
	MaxRxQueues, MaxTxQueues int
	MaxMTU                   int
	// Backend names the host-side datapath (vhost-net, vhost-user...).
	Backend string
}

// QueueConfig configures one queue; memory management stays with the
// application, which is why the ring size is here but no buffer pool.
type QueueConfig struct {
	Ring int // descriptor count (power of two)
	// IntrHandler, when non-nil, is invoked when the queue transitions
	// to "work available" while in interrupt mode.
	IntrHandler func()
}

// Stats counts device activity.
type Stats struct {
	TxPackets, RxPackets uint64
	TxBytes, RxBytes     uint64
	TxDrops, RxDrops     uint64
	Kicks                uint64 // guest->host notifications (VM exits)
	IRQs                 uint64 // host->guest interrupts delivered
}

// Device is the uk_netdev interface. Drivers register their callbacks in
// a uk_netdev structure; here, they implement this interface.
type Device interface {
	// Info reports capabilities.
	Info() Info
	// HWAddr returns the device MAC.
	HWAddr() MAC
	// Configure sets queue counts; must precede queue setup.
	Configure(rxQueues, txQueues int) error
	// RxQueueSetup / TxQueueSetup prepare one queue.
	RxQueueSetup(q int, cfg QueueConfig) error
	TxQueueSetup(q int, cfg QueueConfig) error
	// Start enables the datapath.
	Start() error

	// TxBurst enqueues as many of pkts as fit on queue q. It returns
	// the count enqueued and whether the queue has room for more
	// (mirroring the paper's status flags).
	TxBurst(q int, pkts []*Netbuf) (n int, more bool, err error)
	// RxBurst fills pkts with received packets. It returns the count
	// received and whether more packets are already waiting.
	RxBurst(q int, pkts []*Netbuf) (n int, more bool, err error)

	// EnableRxInterrupt switches queue q to interrupt mode: when the
	// device has packets and the queue is empty-polled, the registered
	// IntrHandler fires once, then the line disarms until re-enabled
	// (the paper's storm-avoidance design: "the interrupt line is
	// inactive until the transmit or receive function activates it
	// again", §3.1).
	EnableRxInterrupt(q int) error
	DisableRxInterrupt(q int) error

	// Stats returns counters.
	Stats() Stats
}
