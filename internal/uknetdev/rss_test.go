package uknetdev

import (
	"testing"

	"unikraft/internal/sim"
)

// udpFrame builds a minimal Ethernet/IPv4/UDP frame carrying the given
// 4-tuple, for steering tests.
func udpFrame(srcIP, dstIP [4]byte, srcPort, dstPort uint16) *Netbuf {
	nb := NewNetbuf(0, 64)
	b := nb.Data
	b[ethTypeOff], b[ethTypeOff+1] = 0x08, 0x00
	ip := b[ethHeaderLen:]
	ip[0] = 0x45 // IPv4, 20-byte header
	ip[ipProtoOff] = ipProtoUDP
	copy(ip[ipSrcOff:], srcIP[:])
	copy(ip[ipDstOff:], dstIP[:])
	ip[20], ip[21] = byte(srcPort>>8), byte(srcPort)
	ip[22], ip[23] = byte(dstPort>>8), byte(dstPort)
	nb.Len = 64
	return nb
}

var (
	rssSrc = [4]byte{10, 0, 0, 1}
	rssDst = [4]byte{10, 0, 0, 2}
)

func ip32(a [4]byte) uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

func TestRSSQueueStable(t *testing.T) {
	for queues := 2; queues <= 8; queues *= 2 {
		for port := uint16(40000); port < 40064; port++ {
			q1 := RSSQueue(ip32(rssSrc), ip32(rssDst), port, 5000, ipProtoUDP, queues)
			q2 := RSSQueue(ip32(rssSrc), ip32(rssDst), port, 5000, ipProtoUDP, queues)
			if q1 != q2 {
				t.Fatalf("RSSQueue not stable: %d vs %d", q1, q2)
			}
			if q1 < 0 || q1 >= queues {
				t.Fatalf("RSSQueue = %d out of [0,%d)", q1, queues)
			}
		}
	}
}

func TestRSSQueueSingleQueueAlwaysZero(t *testing.T) {
	for port := uint16(1); port < 200; port++ {
		if q := RSSQueue(ip32(rssSrc), ip32(rssDst), port, 80, ipProtoTCP, 1); q != 0 {
			t.Fatalf("queues=1 steered to %d", q)
		}
	}
}

// Every queue must be reachable: a load generator scanning source ports
// finds a port for each of 8 queues quickly.
func TestRSSQueueCoversAllQueues(t *testing.T) {
	const queues = 8
	seen := map[int]bool{}
	for port := uint16(40000); port < 41000 && len(seen) < queues; port++ {
		seen[RSSQueue(ip32(rssSrc), ip32(rssDst), port, 5000, ipProtoUDP, queues)] = true
	}
	if len(seen) != queues {
		t.Fatalf("1000 source ports covered only %d of %d queues", len(seen), queues)
	}
}

func TestRSSSteerMatchesRSSQueue(t *testing.T) {
	for port := uint16(40000); port < 40032; port++ {
		frame := udpFrame(rssSrc, rssDst, port, 5000)
		want := RSSQueue(ip32(rssSrc), ip32(rssDst), port, 5000, ipProtoUDP, 4)
		if got := rssSteer(frame.Bytes(), 4); got != want {
			t.Fatalf("rssSteer = %d, RSSQueue = %d for port %d", got, want, port)
		}
	}
}

func TestRSSSteerNonIPToQueueZero(t *testing.T) {
	arp := NewNetbuf(0, 64)
	arp.Len = 64
	arp.Data[ethTypeOff], arp.Data[ethTypeOff+1] = 0x08, 0x06 // ARP
	if q := rssSteer(arp.Bytes(), 8); q != 0 {
		t.Fatalf("ARP steered to queue %d, want 0", q)
	}
	runt := NewNetbuf(0, 8)
	runt.Len = 8
	if q := rssSteer(runt.Bytes(), 8); q != 0 {
		t.Fatalf("runt frame steered to queue %d, want 0", q)
	}
}

// Non-initial fragments carry no L4 header; all fragments of a datagram
// must land on one queue (hashed by IPs alone).
func TestRSSSteerFragments(t *testing.T) {
	first := udpFrame(rssSrc, rssDst, 41234, 5000)
	frag := udpFrame(rssSrc, rssDst, 0x6162, 0x6364) // "payload" bytes, not ports
	frag.Data[ethHeaderLen+ipFragOff+1] = 5          // fragment offset 5
	frag2 := udpFrame(rssSrc, rssDst, 0x7172, 0x7374)
	frag2.Data[ethHeaderLen+ipFragOff+1] = 9
	q1 := rssSteer(frag.Bytes(), 8)
	q2 := rssSteer(frag2.Bytes(), 8)
	if q1 != q2 {
		t.Fatalf("fragments of one flow steered apart: %d vs %d", q1, q2)
	}
	_ = first
}

// Multi-queue delivery: frames land on the RSS-chosen ring and their
// driver-side RX cost is charged to that queue's own machine.
func TestMultiQueueSteeringAndCharging(t *testing.T) {
	mc := sim.NewMachine()
	cores := []*sim.Machine{sim.NewMachine(), sim.NewMachine(), sim.NewMachine(), sim.NewMachine()}
	client, server, err := NewMultiQueuePair(mc, cores, VhostUser, Tuning{})
	if err != nil {
		t.Fatal(err)
	}
	// One frame per queue, ports chosen to hit queues 0..3.
	ports := map[int]uint16{}
	for p := uint16(40000); len(ports) < 4; p++ {
		q := RSSQueue(ip32(rssSrc), ip32(rssDst), p, 5000, ipProtoUDP, 4)
		if _, ok := ports[q]; !ok {
			ports[q] = p
		}
	}
	for q := 0; q < 4; q++ {
		if _, _, err := client.TxBurst(0, []*Netbuf{udpFrame(rssSrc, rssDst, ports[q], 5000)}); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < 4; q++ {
		if server.Pending(q) != 1 {
			t.Fatalf("queue %d has %d pending, want 1", q, server.Pending(q))
		}
	}
	rx := []*Netbuf{NewNetbuf(0, 2048)}
	for q := 0; q < 4; q++ {
		before := cores[q].CPU.Cycles()
		if n, _, _ := server.RxBurst(q, rx); n != 1 {
			t.Fatalf("RxBurst(%d) = %d, want 1", q, n)
		}
		if got := cores[q].CPU.Cycles() - before; got != driverRxCycles {
			t.Fatalf("queue %d charged %d cycles, want %d on its own core", q, got, driverRxCycles)
		}
		// No cross-charging: the other cores' clocks are untouched.
		for o := q + 1; o < 4; o++ {
			if cores[o].CPU.Cycles() != 0 {
				t.Fatalf("core %d advanced before its queue was polled", o)
			}
		}
	}
}

// A 1-core multi-queue pair is bit-identical to the plain NewPair
// datapath: same charges for the same traffic.
func TestMultiQueueSingleCoreIdentity(t *testing.T) {
	run := func(mk func(mc, ms *sim.Machine) (*VirtioNet, *VirtioNet, error)) (uint64, uint64) {
		mc, ms := sim.NewMachine(), sim.NewMachine()
		c, s, err := mk(mc, ms)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 16; i++ {
			c.TxBurst(0, []*Netbuf{udpFrame(rssSrc, rssDst, uint16(40000+i), 5000)})
		}
		rx := make([]*Netbuf, 32)
		for i := range rx {
			rx[i] = NewNetbuf(0, 2048)
		}
		s.RxBurst(0, rx)
		s.TxBurst(0, rx[:16])
		return mc.CPU.Cycles(), ms.CPU.Cycles()
	}
	c1, s1 := run(func(mc, ms *sim.Machine) (*VirtioNet, *VirtioNet, error) {
		return NewPair(mc, ms, VhostUser)
	})
	c2, s2 := run(func(mc, ms *sim.Machine) (*VirtioNet, *VirtioNet, error) {
		return NewMultiQueuePair(mc, []*sim.Machine{ms}, VhostUser, Tuning{})
	})
	if c1 != c2 || s1 != s2 {
		t.Fatalf("single-core multi-queue differs from NewPair: client %d vs %d, server %d vs %d", c1, c2, s1, s2)
	}
}

// Kick coalescing is per-queue state: each queue's remainder and kick
// charges are independent, and FlushTx settles every queue.
func TestMultiQueuePerQueueKicks(t *testing.T) {
	mc := sim.NewMachine()
	cores := []*sim.Machine{sim.NewMachine(), sim.NewMachine()}
	_, server, err := NewMultiQueuePair(mc, cores, VhostNet, Tuning{TxKickBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	frames := func(n int) []*Netbuf {
		out := make([]*Netbuf, n)
		for i := range out {
			out[i] = udpFrame(rssDst, rssSrc, 5000, uint16(40000+i))
		}
		return out
	}
	// 3 frames on each queue: under the batch of 4, no kicks yet.
	server.TxBurst(0, frames(3))
	server.TxBurst(1, frames(3))
	if got := server.Stats().Kicks; got != 0 {
		t.Fatalf("Kicks = %d before batch filled, want 0", got)
	}
	// One more on queue 0 fills ITS batch; queue 1's remainder must not
	// leak into it.
	server.TxBurst(0, frames(1))
	if got := server.Stats().Kicks; got != 1 {
		t.Fatalf("Kicks = %d after queue 0's batch filled, want 1", got)
	}
	kick0 := cores[0].CPU.Cycles()
	if kick0 == 0 {
		t.Fatal("queue 0's kick not charged to core 0")
	}
	// FlushTx settles queue 1's remainder on core 1's clock.
	before1 := cores[1].CPU.Cycles()
	server.FlushTx()
	if got := server.Stats().Kicks; got != 2 {
		t.Fatalf("Kicks = %d after FlushTx, want 2", got)
	}
	if cores[1].CPU.Cycles() == before1 {
		t.Fatal("FlushTx did not charge queue 1's core")
	}
}
