package uknetdev

import "unikraft/internal/sim"

// Backend models the host-side datapath a virtio-net device attaches to.
// On KVM, uknetdev "can be configured to use the standard virtio-net
// protocol and tap devices in the host (vhost-net ...), but it can also
// offload the datapath to vhost-user (a DPDK-based virtio transport
// running in host userspace) for higher performance — at the cost of
// polling in the host" (§6.2).
//
// The host datapath runs on its own pinned core in the paper's setup, so
// its per-packet cost does not consume guest cycles; it instead bounds
// sustainable throughput. HostCyclesPerPkt is that bound's reciprocal.
type Backend struct {
	Name string

	// HostCyclesPerPkt is the host-core cost to move one packet
	// (tap write + softirq for vhost-net; DPDK ring ops for vhost-user).
	HostCyclesPerPkt uint64
	// HostCyclesPerByte adds a copy cost component on the host side.
	HostCyclesPerByteNum, HostCyclesPerByteDen uint64

	// KickCycles is the guest-side cost of notifying the host (a VM
	// exit). Polling backends (vhost-user) need no kicks.
	KickCycles uint64
	// KicksPerBurst: notifications are amortized over burst enqueues.
	NeedsKick bool

	// IRQCycles is the guest-side cost of taking a host interrupt.
	IRQCycles uint64
}

// Host backend catalog. Guest/driver costs live in the driver; these are
// host-core datapath costs calibrated so Fig 19 reproduces: vhost-user
// sustains ~13Mp/s at 64B (just under 10GbE line rate), vhost-net
// saturates around 1.3Mp/s.
var (
	// VhostNet is the kernel tap datapath (QEMU default).
	VhostNet = Backend{
		Name:                 "vhost-net",
		HostCyclesPerPkt:     2600, // skb alloc + tap copy + softirq ≈ 720ns
		HostCyclesPerByteNum: 1, HostCyclesPerByteDen: 8,
		KickCycles: 4320, // VM exit ≈ 1.2us
		NeedsKick:  true,
		IRQCycles:  2000,
	}

	// VhostUser is the DPDK-based userspace datapath, polling in the
	// host ("at the cost of polling in the host").
	VhostUser = Backend{
		Name:                 "vhost-user",
		HostCyclesPerPkt:     265, // DPDK vhost PMD dequeue+enqueue ≈ 74ns
		HostCyclesPerByteNum: 1, HostCyclesPerByteDen: 16,
		KickCycles: 0, // host polls; no notification needed
		NeedsKick:  false,
		IRQCycles:  2000,
	}

	// Loopback is a zero-cost in-process wire for unit tests.
	Loopback = Backend{Name: "loopback"}
)

// HostCost returns the host-core cycles to move one packet of n bytes.
func (b Backend) HostCost(n int) uint64 {
	c := b.HostCyclesPerPkt
	if b.HostCyclesPerByteDen != 0 {
		c += uint64(n) * b.HostCyclesPerByteNum / b.HostCyclesPerByteDen
	}
	return c
}

// LineRate models the physical NIC: 10GbE with standard framing overhead
// (paper testbed: Intel X520 82599EB).
type LineRate struct {
	BitsPerSecond uint64
	// OverheadBytes is per-frame framing cost on the wire: preamble(8) +
	// IFG(12) + FCS(4).
	OverheadBytes int
}

// TenGbE is the paper's NIC.
var TenGbE = LineRate{BitsPerSecond: 10_000_000_000, OverheadBytes: 24}

// MaxPacketsPerSecond returns the line-rate bound for a given frame size
// (Ethernet frame bytes, excluding FCS/preamble/IFG).
func (lr LineRate) MaxPacketsPerSecond(frameBytes int) float64 {
	wire := float64(frameBytes+lr.OverheadBytes) * 8
	return float64(lr.BitsPerSecond) / wire
}

// SustainableTxRate computes the steady-state TX packet rate for a
// driver/backend pair: the pipeline bottleneck across the guest core,
// the host datapath core, and the wire — the Fig 19 model.
func SustainableTxRate(m *sim.Machine, guestCyclesPerPkt uint64, b Backend, lr LineRate, frameBytes int) float64 {
	hz := float64(m.CPU.Hz)
	guest := hz / float64(guestCyclesPerPkt)
	host := guest
	if hc := b.HostCost(frameBytes); hc > 0 {
		host = hz / float64(hc)
	}
	wire := lr.MaxPacketsPerSecond(frameBytes)
	rate := guest
	if host < rate {
		rate = host
	}
	if wire < rate {
		rate = wire
	}
	return rate
}
