package uknetdev

import (
	"testing"

	"unikraft/internal/sim"
)

// BenchmarkTxBurst drives pooled frames through TxBurst/RxBurstZC — the
// zero-copy datapath. With the netbuf pool warmed up it must not
// allocate per packet; ReportAllocs makes a regression fail loudly in
// review.
func BenchmarkTxBurst(b *testing.B) {
	ma, mb := sim.NewMachine(), sim.NewMachine()
	tx, rx, err := NewTunedPair(ma, mb, VhostNet, Tuning{TxKickBatch: 32})
	if err != nil {
		b.Fatal(err)
	}
	pool := NewNetbufPool(64, 2048, 64)
	const burst = 32
	pkts := make([]*Netbuf, burst)
	out := make([]*Netbuf, burst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range pkts {
			nb := pool.Get()
			nb.Len = 60
			pkts[j] = nb
		}
		if n, _, err := tx.TxBurst(0, pkts); n != burst || err != nil {
			b.Fatalf("TxBurst = %d, %v", n, err)
		}
		for _, nb := range pkts {
			nb.Release()
		}
		n, _, err := rx.RxBurstZC(0, out)
		if n != burst || err != nil {
			b.Fatalf("RxBurstZC = %d, %v", n, err)
		}
		for _, nb := range out[:n] {
			nb.Release()
		}
	}
	b.ReportMetric(float64(tx.Stats().Kicks)/float64(b.N), "kicks/burst")
}

// BenchmarkTxBurstSnapshot is the compatibility path (unmanaged
// buffers): still alloc-free per frame thanks to the DMA snapshot pool.
func BenchmarkTxBurstSnapshot(b *testing.B) {
	ma, mb := sim.NewMachine(), sim.NewMachine()
	tx, rx, err := NewPair(ma, mb, VhostNet)
	if err != nil {
		b.Fatal(err)
	}
	nb := NewNetbuf(64, 2048)
	nb.Len = 60
	rxbuf := []*Netbuf{NewNetbuf(0, 2048)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n, _, err := tx.TxBurst(0, []*Netbuf{nb}); n != 1 || err != nil {
			b.Fatalf("TxBurst = %d, %v", n, err)
		}
		if n, _, err := rx.RxBurst(0, rxbuf); n != 1 || err != nil {
			b.Fatalf("RxBurst = %d, %v", n, err)
		}
	}
}
