package uknetdev

import (
	"bytes"
	"testing"

	"unikraft/internal/sim"
)

func TestNetbufPoolRecycles(t *testing.T) {
	p := NewNetbufPool(64, 2048, 2)
	if p.FreeLen() != 2 {
		t.Fatalf("prealloc free = %d, want 2", p.FreeLen())
	}
	a := p.Get()
	if a.Off != 64 || a.Len != 0 || a.Refs() != 1 || !a.Pooled() {
		t.Fatalf("fresh netbuf off=%d len=%d refs=%d pooled=%v", a.Off, a.Len, a.Refs(), a.Pooled())
	}
	a.Release()
	b := p.Get()
	if b != a {
		t.Error("free list did not recycle the released buffer (LIFO)")
	}
	if p.News != 0 {
		t.Errorf("News = %d, want 0 with a warm pool", p.News)
	}
	b.Release()
}

func TestNetbufPoolColdAllocates(t *testing.T) {
	p := NewNetbufPool(0, 128, 0)
	a, b := p.Get(), p.Get()
	if p.News != 2 {
		t.Errorf("News = %d, want 2 on a cold pool", p.News)
	}
	a.Release()
	b.Release()
	if p.FreeLen() != 2 {
		t.Errorf("free = %d after releases, want 2", p.FreeLen())
	}
}

func TestNetbufRefKeepsAlive(t *testing.T) {
	p := NewNetbufPool(0, 128, 1)
	nb := p.Get()
	nb.Ref()
	nb.Release()
	if nb.Refs() != 1 || p.FreeLen() != 0 {
		t.Fatalf("refs=%d free=%d after Ref+Release, want 1/0", nb.Refs(), p.FreeLen())
	}
	nb.Bytes() // still live: must not panic
	nb.Release()
	if p.FreeLen() != 1 {
		t.Fatalf("buffer not recycled after final release")
	}
}

func TestNetbufDoubleFreePanics(t *testing.T) {
	p := NewNetbufPool(0, 128, 1)
	nb := p.Get()
	nb.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	nb.Release()
}

func TestNetbufUseAfterReleasePanics(t *testing.T) {
	p := NewNetbufPool(16, 128, 1)
	for _, op := range []struct {
		name string
		f    func(nb *Netbuf)
	}{
		{"Bytes", func(nb *Netbuf) { nb.Bytes() }},
		{"Prepend", func(nb *Netbuf) { nb.Prepend(4) }},
		{"Trim", func(nb *Netbuf) { nb.Trim(1) }},
		{"Ref", func(nb *Netbuf) { nb.Ref() }},
	} {
		nb := p.Get()
		nb.Release()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on released netbuf did not panic", op.name)
				}
			}()
			op.f(nb)
		}()
		// Revive for the next iteration: Get returns the same buffer.
	}
}

func TestNetbufUnmanagedReleasePanics(t *testing.T) {
	nb := NewNetbuf(0, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("Release of unmanaged netbuf did not panic")
		}
	}()
	nb.Release()
}

// TestZeroCopyHandoff: a pooled TX buffer crosses the device without a
// snapshot and comes back out of RxBurstZC as the same backing array.
func TestZeroCopyHandoff(t *testing.T) {
	a, b, _, _ := newPair(t)
	pool := NewNetbufPool(64, 2048, 4)
	nb := pool.Get()
	nb.Len = copy(nb.Data[nb.Off:], "zero copy payload")
	if n, _, err := a.TxBurst(0, []*Netbuf{nb}); n != 1 || err != nil {
		t.Fatalf("TxBurst = %d, %v", n, err)
	}
	if nb.Refs() != 2 {
		t.Fatalf("refs after TxBurst = %d, want 2 (caller + ring)", nb.Refs())
	}
	nb.Release() // caller's reference; ring still holds one
	out := make([]*Netbuf, 4)
	n, _, err := b.RxBurstZC(0, out)
	if n != 1 || err != nil {
		t.Fatalf("RxBurstZC = %d, %v", n, err)
	}
	if out[0] != nb {
		t.Error("RxBurstZC returned a different buffer: payload was copied")
	}
	if !bytes.Equal(out[0].Bytes(), []byte("zero copy payload")) {
		t.Errorf("payload = %q", out[0].Bytes())
	}
	if got := a.Stats().ZCPackets; got != 1 {
		t.Errorf("ZCPackets = %d, want 1", got)
	}
	out[0].Release()
	if pool.FreeLen() != 4 {
		t.Errorf("pool free = %d after round trip, want 4", pool.FreeLen())
	}
}

// TestUnmanagedTxSnapshots: the compatibility path still snapshots, so a
// caller reusing its buffer cannot corrupt in-flight frames.
func TestUnmanagedTxSnapshots(t *testing.T) {
	a, b, _, _ := newPair(t)
	nb := mkPkt([]byte("first"))
	a.TxBurst(0, []*Netbuf{nb})
	copy(nb.Data[nb.Off:], "XXXXX") // reuse before the peer drains
	rx := []*Netbuf{NewNetbuf(0, 2048)}
	if n, _, _ := b.RxBurst(0, rx); n != 1 {
		t.Fatal("no frame received")
	}
	if !bytes.Equal(rx[0].Bytes(), []byte("first")) {
		t.Errorf("in-flight frame corrupted by sender reuse: %q", rx[0].Bytes())
	}
}

// TestKickCoalescing: with TxKickBatch=N the device charges one VM exit
// per N frames, and FlushTx charges the straggler kick.
func TestKickCoalescing(t *testing.T) {
	ma, mb := sim.NewMachine(), sim.NewMachine()
	a, _, err := NewTunedPair(ma, mb, VhostNet, Tuning{TxKickBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		a.TxBurst(0, []*Netbuf{mkPkt([]byte("x"))})
	}
	if got := a.Stats().Kicks; got != 2 {
		t.Fatalf("Kicks = %d after 20 frames at batch 8, want 2", got)
	}
	if got := a.Stats().KicksElided; got != 18 {
		t.Fatalf("KicksElided = %d, want 18", got)
	}
	a.FlushTx()
	if got := a.Stats().Kicks; got != 3 {
		t.Fatalf("Kicks = %d after flush, want 3", got)
	}
	a.FlushTx() // idempotent: nothing owed
	if got := a.Stats().Kicks; got != 3 {
		t.Fatalf("Kicks = %d after second flush, want 3", got)
	}
}

// TestKickCoalescingDeterministic: two identical runs produce identical
// kick counts and cycle charges regardless of burst partitioning
// internals.
func TestKickCoalescingDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		ma, mb := sim.NewMachine(), sim.NewMachine()
		a, _, err := NewTunedPair(ma, mb, VhostNet, Tuning{TxKickBatch: 5})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 17; i++ {
			burst := make([]*Netbuf, 1+i%3)
			for j := range burst {
				burst[j] = mkPkt([]byte{byte(i), byte(j)})
			}
			a.TxBurst(0, burst)
		}
		a.FlushTx()
		return a.Stats().Kicks, ma.CPU.Cycles()
	}
	k1, c1 := run()
	k2, c2 := run()
	if k1 != k2 || c1 != c2 {
		t.Fatalf("non-deterministic coalescing: kicks %d/%d cycles %d/%d", k1, k2, c1, c2)
	}
}

// TestIRQCoalescing: with RxIRQBatch=N an armed queue interrupts only
// once N frames are pending; re-arming stays level-triggered.
func TestIRQCoalescing(t *testing.T) {
	ma, mb := sim.NewMachine(), sim.NewMachine()
	fired := 0
	a := NewVirtioNet(ma, MAC{2, 0, 0, 0, 0, 1}, VhostNet)
	b := NewVirtioNet(mb, MAC{2, 0, 0, 0, 0, 2}, VhostNet)
	b.SetTuning(Tuning{RxIRQBatch: 3})
	Connect(a, b)
	for _, d := range []*VirtioNet{a, b} {
		if err := d.Configure(1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.RxQueueSetup(0, QueueConfig{IntrHandler: func() { fired++ }}); err != nil {
		t.Fatal(err)
	}
	for _, d := range []*VirtioNet{a, b} {
		if d == a {
			if err := d.RxQueueSetup(0, QueueConfig{}); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.TxQueueSetup(0, QueueConfig{}); err != nil {
			t.Fatal(err)
		}
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.EnableRxInterrupt(0); err != nil {
		t.Fatal(err)
	}
	a.TxBurst(0, []*Netbuf{mkPkt([]byte("1"))})
	a.TxBurst(0, []*Netbuf{mkPkt([]byte("2"))})
	if fired != 0 {
		t.Fatalf("interrupt fired below the moderation threshold (fired=%d)", fired)
	}
	if got := b.Stats().IRQsElided; got != 2 {
		t.Fatalf("IRQsElided = %d, want 2", got)
	}
	a.TxBurst(0, []*Netbuf{mkPkt([]byte("3"))})
	if fired != 1 {
		t.Fatalf("interrupt did not fire at the threshold (fired=%d)", fired)
	}
	// Drain one frame, re-arm: level semantics fire immediately on any
	// pending work even below the batch.
	rx := []*Netbuf{NewNetbuf(0, 2048)}
	b.RxBurst(0, rx)
	if err := b.EnableRxInterrupt(0); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("re-arm with pending work did not fire (fired=%d)", fired)
	}
}
